package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3}), 2, 1e-12, "Mean")
	approx(t, Mean(nil), 0, 0, "Mean(nil)")
}

func TestSD(t *testing.T) {
	// Population SD of {2,4,4,4,5,5,7,9} is exactly 2.
	approx(t, SD([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2, 1e-12, "SD")
	approx(t, SD([]float64{5}), 0, 0, "SD(single)")
	approx(t, SD(nil), 0, 0, "SD(nil)")
}

func TestMinMaxRange(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	approx(t, Min(xs), -1, 0, "Min")
	approx(t, Max(xs), 7, 0, "Max")
	approx(t, Range(xs), 8, 0, "Range")
	approx(t, Min(nil), 0, 0, "Min(nil)")
	approx(t, Max(nil), 0, 0, "Max(nil)")
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, Percentile(xs, 0), 1, 0, "P0")
	approx(t, Percentile(xs, 50), 3, 1e-12, "P50")
	approx(t, Percentile(xs, 100), 5, 0, "P100")
	approx(t, Percentile(xs, 25), 2, 1e-12, "P25")
	approx(t, Percentile(nil, 50), 0, 0, "P50(nil)")
	// Does not mutate input.
	ys := []float64{9, 1, 5}
	Percentile(ys, 50)
	if ys[0] != 9 || ys[1] != 1 || ys[2] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 3})
	if s.N != 2 {
		t.Fatalf("N = %d", s.N)
	}
	approx(t, s.Mean, 2, 1e-12, "Summary.Mean")
	approx(t, s.SD, 1, 1e-12, "Summary.SD")
	approx(t, s.Min, 1, 0, "Summary.Min")
	approx(t, s.Max, 3, 0, "Summary.Max")
}

func TestFormula1AvgTotalRuntime(t *testing.T) {
	// (r1+r2+r3)/3
	approx(t, AvgTotalRuntime([]float64{10, 20, 30}), 20, 1e-12, "formula (1)")
}

func TestFormula2AvgTotalThroughput(t *testing.T) {
	// ((j1/r1)+(j2/r2)+(j3/r3))/3
	jobs := []float64{100, 100, 100}
	rts := []float64{10, 20, 25}
	want := (10.0 + 5.0 + 4.0) / 3.0
	approx(t, AvgTotalThroughput(jobs, rts), want, 1e-12, "formula (2)")
}

func TestFormula2SkipsZeroRuntimes(t *testing.T) {
	got := AvgTotalThroughput([]float64{100, 100}, []float64{0, 10})
	approx(t, got, 10, 1e-12, "formula (2) zero runtime")
	approx(t, AvgTotalThroughput(nil, nil), 0, 0, "formula (2) empty")
}

func TestFormula3And4MatchDefinitions(t *testing.T) {
	// (3): sum(d_i)/N over all DAGMans in all repetition batches.
	d := []float64{4, 6, 8, 6}
	approx(t, AvgRuntimeAcrossDAGMans(d), 6, 1e-12, "formula (3)")
	// (4): sum(j_i/r_i)/N.
	j := []float64{8, 12, 8, 12}
	want := (2.0 + 2.0 + 1.0 + 2.0) / 4.0
	approx(t, AvgThroughputAcrossDAGMans(j, d), want, 1e-12, "formula (4)")
}

func TestFormula5InstantThroughput(t *testing.T) {
	approx(t, InstantThroughput(30, 2), 15, 1e-12, "formula (5)")
	approx(t, InstantThroughput(30, 0), 0, 0, "formula (5) t=0")
}

func TestFormula6AvgInstantThroughput(t *testing.T) {
	approx(t, AvgInstantThroughput([]float64{0, 10, 20}), 10, 1e-12, "formula (6)")
}

func TestFormula7BurstCost(t *testing.T) {
	// Paper: $0.0017/min; 1000 VDC minutes => $1.70.
	approx(t, BurstCost(1000, 0.0017), 1.7, 1e-12, "formula (7)")
}

func TestPctChangeAndDecrease(t *testing.T) {
	approx(t, PctChange(10, 33.09), 230.9, 1e-9, "PctChange")
	approx(t, PctDecrease(100, 43.2), 56.8, 1e-9, "PctDecrease")
	approx(t, PctChange(0, 5), 0, 0, "PctChange zero base")
}

func TestPropertyMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySDNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		return SD(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyShiftInvariance(t *testing.T) {
	// SD is invariant under constant shifts; Mean shifts by the constant.
	f := func(raw []int16, shiftRaw int16) bool {
		if len(raw) < 2 {
			return true
		}
		shift := float64(shiftRaw)
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			ys[i] = float64(r) + shift
		}
		if math.Abs(SD(xs)-SD(ys)) > 1e-6 {
			return false
		}
		return math.Abs(Mean(ys)-Mean(xs)-shift) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
