package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readAll(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return string(b)
}

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestCommitReplacesDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := readAll(t, path); got != "old" {
		t.Fatalf("destination changed before Commit: %q", got)
	}
	if _, err := io.WriteString(f, "new"); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, path); got != "new" {
		t.Fatalf("after Commit got %q, want %q", got, "new")
	}
	if names := listDir(t, dir); len(names) != 1 || names[0] != "out.txt" {
		t.Fatalf("temp residue left behind: %v", names)
	}
}

// TestAbortLeavesOldContent is the crash-equivalence property: a write
// that never reaches Commit (a kill, a failed encoder, an early return)
// must leave the previous complete file in place and no temp residue.
func TestAbortLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.npy")
	if err := os.WriteFile(path, []byte("valid-cache"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, "half-writt"); err != nil {
		t.Fatal(err)
	}
	f.Close() // abort
	if got := readAll(t, path); got != "valid-cache" {
		t.Fatalf("abort corrupted destination: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 || names[0] != "cache.npy" {
		t.Fatalf("temp residue left behind: %v", names)
	}
}

func TestCreateNewFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.csv")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "a,b\n1,2\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, path); got != "a,b\n1,2\n" {
		t.Fatalf("got %q", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("committed file mode = %o, want 644", perm)
	}
}

// TestWriteFileErrorAborts: a failing write callback must not disturb
// an existing destination and must clean up its temp file.
func TestWriteFileErrorAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.txt")
	if err := os.WriteFile(path, []byte("complete report"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encoder exploded")
	err := WriteFile(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "partial re"); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if got := readAll(t, path); got != "complete report" {
		t.Fatalf("failed write disturbed destination: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("temp residue left behind: %v", names)
	}
}

func TestDoubleFinalize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	f.Close() // must be a no-op, not remove the committed file
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Close after Commit removed the destination: %v", err)
	}
	if err := f.Commit(); err == nil || !strings.Contains(err.Error(), "already") {
		t.Fatalf("second Commit = %v, want already-finalized error", err)
	}
	if _, err := f.Write([]byte("late")); err == nil {
		t.Fatal("Write after finalize succeeded")
	}
}

func TestNameReportsDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Name() != path {
		t.Fatalf("Name() = %q, want %q", f.Name(), path)
	}
}
