package htcondor

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"fdw/internal/classad"
)

// SubmitFile is a parsed HTCondor submit-description file: an ordered
// set of commands plus a queue count. FDW generates one submit file per
// workflow phase.
type SubmitFile struct {
	Commands map[string]string // lower-cased keys
	Plus     map[string]string // +Attr custom attributes, original case
	QueueN   int
}

// ParseSubmit reads submit-description syntax: "key = value" lines,
// "+Attr = expr" custom attributes, comments (#), and a final
// "queue [N]" statement. Continuation lines end with a backslash.
func ParseSubmit(r io.Reader) (*SubmitFile, error) {
	sf := &SubmitFile{
		Commands: map[string]string{},
		Plus:     map[string]string{},
		QueueN:   0,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	var pending string
	sawQueue := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if pending != "" {
			line = pending + line
			pending = ""
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasSuffix(line, "\\") {
			pending = strings.TrimSuffix(line, "\\")
			continue
		}
		lower := strings.ToLower(line)
		if lower == "queue" || strings.HasPrefix(lower, "queue ") {
			if sawQueue {
				return nil, fmt.Errorf("htcondor: line %d: multiple queue statements", lineNo)
			}
			sawQueue = true
			n := 1
			if rest := strings.TrimSpace(line[len("queue"):]); rest != "" {
				v, err := strconv.Atoi(rest)
				if err != nil || v < 0 {
					return nil, fmt.Errorf("htcondor: line %d: bad queue count %q", lineNo, rest)
				}
				n = v
			}
			sf.QueueN = n
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("htcondor: line %d: expected key = value, got %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("htcondor: line %d: empty key", lineNo)
		}
		if strings.HasPrefix(key, "+") {
			sf.Plus[key[1:]] = val
		} else {
			sf.Commands[strings.ToLower(key)] = val
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pending != "" {
		return nil, fmt.Errorf("htcondor: dangling continuation line")
	}
	if !sawQueue {
		return nil, fmt.Errorf("htcondor: missing queue statement")
	}
	return sf, nil
}

// expandMacros substitutes $(Process) and $(Cluster) (case-insensitive).
func expandMacros(s string, cluster, proc int) string {
	rep := strings.NewReplacer(
		"$(Process)", strconv.Itoa(proc),
		"$(process)", strconv.Itoa(proc),
		"$(PROCESS)", strconv.Itoa(proc),
		"$(Cluster)", strconv.Itoa(cluster),
		"$(cluster)", strconv.Itoa(cluster),
		"$(CLUSTER)", strconv.Itoa(cluster),
	)
	return rep.Replace(s)
}

// parseSizeMB parses HTCondor memory/disk request values: a bare number
// is MB, with optional KB/MB/GB suffix.
func parseSizeMB(s string) (int, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "KB"):
		mult = 1.0 / 1024
		s = strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "MB"):
		s = strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "GB"):
		mult = 1024
		s = strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "K"):
		mult = 1.0 / 1024
		s = strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		s = strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult = 1024
		s = strings.TrimSuffix(s, "G")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("htcondor: bad size %q", s)
	}
	return int(v * mult), nil
}

// Materialize expands the submit file into QueueN jobs for the given
// cluster id and owner. BaseExecSeconds and transfer sizes come from
// the +FDW* attributes when present (the FDW work model sets them).
func (sf *SubmitFile) Materialize(cluster int, owner string) ([]*Job, error) {
	jobs := make([]*Job, 0, sf.QueueN)
	cpus := 1
	if v, ok := sf.Commands["request_cpus"]; ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("htcondor: bad request_cpus %q", v)
		}
		cpus = n
	}
	memMB := 1024
	if v, ok := sf.Commands["request_memory"]; ok {
		m, err := parseSizeMB(v)
		if err != nil {
			return nil, err
		}
		memMB = m
	}
	diskMB := 1024
	if v, ok := sf.Commands["request_disk"]; ok {
		d, err := parseSizeMB(v)
		if err != nil {
			return nil, err
		}
		diskMB = d
	}
	for proc := 0; proc < sf.QueueN; proc++ {
		j := &Job{
			Cluster:         cluster,
			Proc:            proc,
			Owner:           owner,
			Executable:      expandMacros(sf.Commands["executable"], cluster, proc),
			Arguments:       expandMacros(sf.Commands["arguments"], cluster, proc),
			RequestCpus:     cpus,
			RequestMemoryMB: memMB,
			RequestDiskMB:   diskMB,
			Requirements:    sf.Commands["requirements"],
			Attrs:           classad.Ad{},
			Status:          Idle,
		}
		for k, raw := range sf.Plus {
			expr, err := classad.Parse(expandMacros(raw, cluster, proc))
			if err != nil {
				return nil, fmt.Errorf("htcondor: +%s: %w", k, err)
			}
			j.Attrs[k] = expr.Eval(nil, nil)
		}
		if v, ok := j.Attrs.Lookup("FDWExecSeconds"); ok {
			if f, defined := v.AsNumber(); defined {
				j.BaseExecSeconds = f
			}
		}
		if v, ok := j.Attrs.Lookup("FDWInputBytes"); ok {
			if f, defined := v.AsNumber(); defined {
				j.InputBytes = int64(f)
			}
		}
		if v, ok := j.Attrs.Lookup("FDWOutputBytes"); ok {
			if f, defined := v.AsNumber(); defined {
				j.OutputBytes = int64(f)
			}
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// Write renders the submit description in the syntax ParseSubmit
// accepts, commands first (sorted), then +attributes, then queue.
func (sf *SubmitFile) Write(w io.Writer) error {
	keys := make([]string, 0, len(sf.Commands))
	for k := range sf.Commands {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s = %s\n", k, sf.Commands[k]); err != nil {
			return err
		}
	}
	plus := make([]string, 0, len(sf.Plus))
	for k := range sf.Plus {
		plus = append(plus, k)
	}
	sort.Strings(plus)
	for _, k := range plus {
		if _, err := fmt.Fprintf(w, "+%s = %s\n", k, sf.Plus[k]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "queue %d\n", sf.QueueN)
	return err
}
