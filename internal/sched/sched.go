// Package sched is the fault-tolerant campaign scheduler: a
// deterministic, sim-clock-driven coordinator that drives N logical
// workers over a shardable campaign's cells, using the manifest-bundle
// machinery (internal/expt, DESIGN.md §13) as its only durable state.
//
// The control plane is a discrete-event simulation on its own
// sim.Kernel — distinct from the kernels inside each cell's
// simulation. A cell's control-plane duration is its simulated
// makespan (the manifest's per-cell SimEnd), optionally stretched by a
// slow-worker factor, so fleet dynamics (who finishes first, which
// lease expires when) play out in the same simulated time base the
// cells themselves report.
//
// Protocol (DESIGN.md §16):
//
//   - the coordinator leases cells to idle workers in canonical cell
//     order, worker index order breaking ties; a lease carries a TTL
//     and is renewed by worker heartbeats;
//   - a worker checkpoints its bundle atomically after every completed
//     cell, then acks; checkpoint-before-ack makes the protocol
//     at-least-once, and digest arbitration makes it exactly-once;
//   - when heartbeats stop (crash, blackout) the lease expires and the
//     cell is requeued — to any worker under work-stealing, reserved
//     for its original worker otherwise;
//   - duplicate completions (steal races, hedged stragglers, late acks
//     after a blackout, recovered checkpoints) are arbitrated by digest
//     equality; a mismatch is a hard error naming the cell and both
//     digests, never silent last-write-wins;
//   - crashed workers restart after a delay and re-report completions
//     recovered from their durable bundle.
//
// Every scheduling decision is a deterministic function of the crash
// plan, worker count, and steal policy; no randomness enters the
// control plane. Since cell results are deterministic per cell id and
// the final report is produced by the same finalize code path as an
// unsharded run, the merged report and CSV are byte-identical to the
// unsharded run for every crash schedule — the property the sched
// tests pin.
package sched

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"fdw/internal/dagman"
	"fdw/internal/expt"
	"fdw/internal/faults"
	"fdw/internal/obs"
	"fdw/internal/sim"
)

// Source is the campaign a scheduler run drives: stable canonical cell
// ids, an options fingerprint for bundle compatibility checks, and a
// deterministic per-cell runner. expt.CampaignHandle implements it;
// tests substitute scripted fakes and Memoize wraps any Source with a
// result cache.
type Source interface {
	Name() string
	Fingerprint() string
	CellIDs() []string
	RunCell(id string) (expt.CellRecord, error)
}

// Config parameterizes one scheduler run.
type Config struct {
	// Workers is the logical fleet size (>= 1).
	Workers int
	// Steal lets reclaimed cells go to any idle worker; without it a
	// reclaimed cell stays reserved for the worker that lost it.
	Steal bool
	// Hedge duplicates a straggling cell onto an idle worker once its
	// lease has been held longer than HedgeFactor times the longest
	// completed cell; the duplicate completions are digest-arbitrated.
	Hedge bool
	// HedgeFactor is the lease-age multiple of the longest completed
	// cell that marks a straggler (default 4).
	HedgeFactor float64
	// LeaseTTL is how long a lease survives without a heartbeat
	// renewal (default 1800 sim-seconds).
	LeaseTTL sim.Time
	// Heartbeat is the renewal period; must be shorter than LeaseTTL
	// (default LeaseTTL/3).
	Heartbeat sim.Time
	// RestartDelay is how long a crashed worker stays down unless its
	// WorkerCrash overrides it (default 2×LeaseTTL).
	RestartDelay sim.Time
	// Plan scripts worker-level faults (the zero plan injects none).
	Plan faults.WorkerPlan
	// Dir is the worker-bundle directory (required).
	Dir string
	// MaxCells, when positive, halts the coordinator after that many
	// acked completions — the deterministic model of a mid-run
	// coordinator kill. Run returns expt.ErrIncomplete; a Resume run
	// over the same Dir finishes the campaign from bundles alone.
	MaxCells int
	// Resume loads existing worker bundles from Dir instead of starting
	// fresh.
	Resume bool
	// Obs, when set, receives lease/steal/requeue/crash counters and
	// per-worker cell spans. Purely passive: scheduling decisions never
	// read it, and output bytes are identical with it on or off.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 1800
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.LeaseTTL / 3
	}
	if c.RestartDelay <= 0 {
		c.RestartDelay = 2 * c.LeaseTTL
	}
	if c.HedgeFactor <= 0 {
		c.HedgeFactor = 4
	}
	return c
}

func (c Config) validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("sched: %d workers, want >= 1", c.Workers)
	}
	if c.Heartbeat >= c.LeaseTTL {
		return fmt.Errorf("sched: heartbeat period %v must be shorter than lease TTL %v", c.Heartbeat, c.LeaseTTL)
	}
	if c.Dir == "" {
		return fmt.Errorf("sched: no bundle directory")
	}
	if c.MaxCells < 0 {
		return fmt.Errorf("sched: negative cell budget %d", c.MaxCells)
	}
	return c.Plan.Validate()
}

// Stats counts one run's control-plane events.
type Stats struct {
	LeasesGranted    uint64 `json:"leases_granted"`
	LeasesRenewed    uint64 `json:"leases_renewed"`
	LeasesExpired    uint64 `json:"leases_expired"`
	CellsRequeued    uint64 `json:"cells_requeued"`
	CellsStolen      uint64 `json:"cells_stolen"`
	CellsHedged      uint64 `json:"cells_hedged"`
	Duplicates       uint64 `json:"duplicate_completions"`
	AcksLate         uint64 `json:"late_acks"`
	Recovered        uint64 `json:"recovered_completions"`
	Checkpoints      uint64 `json:"checkpoints"`
	CheckpointsTorn  uint64 `json:"torn_checkpoints"`
	WorkerCrashes    uint64 `json:"worker_crashes"`
	WorkerRestarts   uint64 `json:"worker_restarts"`
	HeartbeatsMissed uint64 `json:"missed_heartbeats"`
}

// Result is a finished (or budget-halted) scheduler run.
type Result struct {
	Campaign string
	Workers  int
	// Records is the arbitrated exactly-once ledger, one record per
	// completed cell; feed it to CampaignHandle.Finalize for the
	// byte-identical report.
	Records map[string]expt.CellRecord
	Stats   Stats
	// Makespan is the control-plane clock at termination.
	Makespan sim.Time
	// BundlePaths lists the per-worker durable bundles, worker order.
	BundlePaths []string
}

// WorkerBundlePath is the conventional bundle name for worker index
// (0-based) of a fleet.
func WorkerBundlePath(dir, campaign string, worker, workers int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.worker%dof%d.json", campaign, worker+1, workers))
}

// maxCheckpointFails bounds consecutive torn checkpoints per worker
// before the run fails loudly instead of crash-looping.
const maxCheckpointFails = 3

type workerState int

const (
	workerIdle workerState = iota
	workerBusy
	workerDown
)

// assignment is one live lease: a cell granted to a worker, with its
// expiry event and renewal history.
type assignment struct {
	cell     string
	worker   int
	granted  sim.Time
	renewals int
	hedged   bool
	expired  bool
	expiry   *sim.Event
}

type worker struct {
	id     int
	bundle string
	slow   float64

	state       workerState
	done        map[string]expt.CellRecord // durably checkpointed completions
	completions int                        // len(done); the crash-trigger odometer

	cur        *assignment
	rec        expt.CellRecord // computed result of the in-flight cell
	dur        sim.Time
	completion *sim.Event
	midCrash   *sim.Event
	hbStop     func()
	span       *obs.Span

	checkpointFails int
}

type scheduler struct {
	cfg Config
	src Source
	k   *sim.Kernel

	ids []string
	pos map[string]int

	pending    map[string]int // queued cell -> reserved worker id (-1 = any)
	holders    map[string][]*assignment
	lastHolder map[string]int
	done       map[string]expt.CellRecord
	doneBy     map[string]int
	workers    []*worker
	crashSpent []bool // parallel to cfg.Plan.Crashes; each fires once

	stats     Stats
	maxDur    sim.Time // longest acked cell SimEnd — the hedge baseline
	acked     int
	halted    bool
	budgetHit bool
	err       error
}

// Run drives src's cells to completion under cfg, returning the
// arbitrated exactly-once record set. A MaxCells budget halt returns
// the partial Result alongside expt.ErrIncomplete.
func Run(src Source, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ids := src.CellIDs()
	if len(ids) == 0 {
		return nil, fmt.Errorf("sched: campaign %s has no cells", src.Name())
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &scheduler{
		cfg:        cfg,
		src:        src,
		k:          sim.NewKernel(1),
		ids:        ids,
		pos:        make(map[string]int, len(ids)),
		pending:    make(map[string]int, len(ids)),
		holders:    map[string][]*assignment{},
		lastHolder: map[string]int{},
		done:       make(map[string]expt.CellRecord, len(ids)),
		doneBy:     map[string]int{},
		crashSpent: make([]bool, len(cfg.Plan.Crashes)),
	}
	for i, id := range ids {
		s.pos[id] = i
		s.pending[id] = -1
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id:     i,
			bundle: WorkerBundlePath(cfg.Dir, src.Name(), i, cfg.Workers),
			slow:   slowFactor(cfg.Plan, i),
			done:   map[string]expt.CellRecord{},
		}
		if cfg.Resume {
			if err := s.loadBundle(w); err != nil {
				return nil, err
			}
		}
		s.workers = append(s.workers, w)
	}

	// Join at t=0: every worker writes its durable bundle (so even a
	// worker that never completes a cell leaves a mergeable empty
	// bundle), reports completions recovered from a Resume load, and
	// retires crash triggers its recovered odometer has already passed.
	for _, w := range s.workers {
		if err := s.checkpoint(w); err != nil {
			return nil, fmt.Errorf("sched: worker %d initial checkpoint: %w", w.id, err)
		}
		s.spendPassedCrashes(w)
		s.reportRecovered(w)
		if s.err != nil {
			return nil, s.err
		}
		if s.halted {
			break
		}
	}
	if !s.halted {
		s.dispatch()
	}
	for s.err == nil && !s.halted && s.k.Step() {
	}
	if s.err != nil {
		return nil, s.err
	}

	res := &Result{
		Campaign: src.Name(),
		Workers:  cfg.Workers,
		Records:  make(map[string]expt.CellRecord, len(s.done)),
		Stats:    s.stats,
		Makespan: s.k.Now(),
	}
	for _, id := range s.ids {
		if rec, ok := s.done[id]; ok {
			res.Records[id] = rec
		}
	}
	for _, w := range s.workers {
		res.BundlePaths = append(res.BundlePaths, w.bundle)
	}
	if len(s.done) < len(s.ids) {
		if !s.budgetHit {
			return nil, fmt.Errorf("sched: stalled with %d of %d cells incomplete", len(s.ids)-len(s.done), len(s.ids))
		}
		return res, fmt.Errorf("%w: %d of %d cells acked (budget %d; rerun with Resume over %s)",
			expt.ErrIncomplete, len(s.done), len(s.ids), cfg.MaxCells, cfg.Dir)
	}
	return res, nil
}

func (s *scheduler) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *scheduler) planName() string {
	if s.cfg.Plan.Name == "" {
		return "none"
	}
	return s.cfg.Plan.Name
}

func (s *scheduler) counter(name string, kv ...string) *obs.Counter {
	if s.cfg.Obs == nil {
		return new(obs.Counter) // zero Counter: Add/Inc are no-ops
	}
	kv = append(kv, "plan", s.planName())
	return s.cfg.Obs.Counter(name, kv...)
}

func (s *scheduler) busyGauge() {
	if s.cfg.Obs == nil {
		return
	}
	busy := 0
	for _, w := range s.workers {
		if w.state == workerBusy {
			busy++
		}
	}
	s.cfg.Obs.Gauge("fdw_sched_workers_busy", "plan", s.planName()).Set(float64(busy))
}

// slowFactor is the straggler multiplier for a worker (>= 1).
func slowFactor(p faults.WorkerPlan, id int) float64 {
	f := 1.0
	for _, sw := range p.Slow {
		if sw.Worker == id && sw.Factor > f {
			f = sw.Factor
		}
	}
	return f
}

func (s *scheduler) blackedOut(id int, t sim.Time) bool {
	for _, b := range s.cfg.Plan.Blackouts {
		if b.Worker == id && b.Contains(t) {
			return true
		}
	}
	return false
}

// matchCrash returns the index of the first unspent crash for worker
// id that satisfies the trigger predicate, or -1.
func (s *scheduler) matchCrash(id int, trigger func(faults.WorkerCrash) bool) int {
	for i, c := range s.cfg.Plan.Crashes {
		if !s.crashSpent[i] && c.Worker == id && trigger(c) {
			return i
		}
	}
	return -1
}

// spendPassedCrashes retires crash triggers whose completion count the
// worker's recovered odometer has already passed — a restart must not
// replay a crash that durably happened before the coordinator died.
func (s *scheduler) spendPassedCrashes(w *worker) {
	for i, c := range s.cfg.Plan.Crashes {
		if c.Worker == w.id && c.AfterCells <= w.completions {
			s.crashSpent[i] = true
		}
	}
}

// dispatch hands queued cells to idle workers: workers in index order,
// each taking the first queued cell (canonical order) that is
// unreserved or reserved for it.
func (s *scheduler) dispatch() {
	if s.halted || s.err != nil {
		return
	}
	for _, w := range s.workers {
		if w.state != workerIdle {
			continue
		}
		cell, ok := s.nextCellFor(w.id)
		if !ok {
			continue
		}
		s.assign(w, cell)
		if s.halted || s.err != nil {
			return
		}
	}
	s.busyGauge()
}

func (s *scheduler) nextCellFor(id int) (string, bool) {
	for _, cell := range s.ids {
		if reserved, ok := s.pending[cell]; ok && (reserved < 0 || reserved == id) {
			return cell, true
		}
	}
	return "", false
}

// assign leases cell to w and starts the cell running: the result is
// computed host-side now (deterministically), the completion lands on
// the control clock after the cell's simulated makespan.
func (s *scheduler) assign(w *worker, cell string) {
	delete(s.pending, cell)
	now := s.k.Now()
	a := &assignment{cell: cell, worker: w.id, granted: now}
	s.holders[cell] = append(s.holders[cell], a)
	if last, ok := s.lastHolder[cell]; ok && last != w.id {
		s.stats.CellsStolen++
		s.counter("fdw_sched_cells_stolen_total").Inc()
	}
	s.lastHolder[cell] = w.id
	s.stats.LeasesGranted++
	s.counter("fdw_sched_leases_granted_total").Inc()
	w.state = workerBusy
	w.cur = a

	rec, err := s.src.RunCell(cell)
	// Cell simulations may rebind a shared registry's clock; point it
	// back at the control clock for the scheduler's own instruments.
	if s.cfg.Obs != nil {
		s.cfg.Obs.SetClock(s.k.Now)
	}
	if err != nil {
		s.fail(fmt.Errorf("sched: cell %q on worker %d: %w", cell, w.id, err))
		return
	}
	w.rec = rec
	dur := sim.Time(float64(rec.SimEnd) * w.slow)
	if dur <= 0 {
		dur = 1
	}
	w.dur = dur
	if s.cfg.Obs != nil {
		w.span = s.cfg.Obs.StartSpan("sched_cell", fmt.Sprintf("w%d/%s", w.id, cell))
	}
	a.expiry = s.k.After(s.cfg.LeaseTTL, func() { s.expire(a) })
	w.hbStop = s.k.Ticker(now+s.cfg.Heartbeat, s.cfg.Heartbeat, func(sim.Time) { s.heartbeat(w, a) })
	w.completion = s.k.After(dur, func() { s.complete(w) })
	if ci := s.matchCrash(w.id, func(c faults.WorkerCrash) bool {
		return c.MidCell && c.AfterCells == w.completions+1
	}); ci >= 0 {
		s.crashSpent[ci] = true
		restartAfter := s.cfg.Plan.Crashes[ci].RestartAfter
		w.midCrash = s.k.After(dur/2, func() { s.crash(w, restartAfter, "mid-cell") })
	}
}

// heartbeat renews w's lease unless the worker is blacked out. Renewal
// is also where straggler hedging is evaluated: lease age is the only
// signal the coordinator has about a slow worker.
func (s *scheduler) heartbeat(w *worker, a *assignment) {
	if w.state != workerBusy || w.cur != a {
		return
	}
	if s.blackedOut(w.id, s.k.Now()) {
		s.stats.HeartbeatsMissed++
		s.counter("fdw_sched_heartbeats_missed_total").Inc()
		return
	}
	if a.expired {
		// The lease was reclaimed during a blackout; the worker keeps
		// computing and its completion will arrive as a late ack.
		return
	}
	a.renewals++
	s.stats.LeasesRenewed++
	a.expiry.Cancel()
	a.expiry = s.k.After(s.cfg.LeaseTTL, func() { s.expire(a) })
	s.maybeHedge(a)
}

func (s *scheduler) maybeHedge(a *assignment) {
	if !s.cfg.Hedge || a.hedged || s.maxDur <= 0 {
		return
	}
	if _, done := s.done[a.cell]; done {
		return
	}
	if float64(s.k.Now()-a.granted) <= s.cfg.HedgeFactor*float64(s.maxDur) {
		return
	}
	for _, other := range s.workers {
		if other.state == workerIdle {
			a.hedged = true
			s.stats.CellsHedged++
			s.counter("fdw_sched_cells_hedged_total").Inc()
			s.assign(other, a.cell)
			s.busyGauge()
			return
		}
	}
}

// expire fires when a lease's TTL lapses without renewal: the cell is
// reclaimed and — unless it is done, already queued, or still covered
// by another live lease — requeued, reserved for its original worker
// unless work-stealing is on.
func (s *scheduler) expire(a *assignment) {
	a.expired = true
	a.expiry = nil
	s.stats.LeasesExpired++
	s.counter("fdw_sched_leases_expired_total").Inc()
	s.dropHolder(a)
	if _, done := s.done[a.cell]; done {
		return
	}
	if _, queued := s.pending[a.cell]; queued {
		return
	}
	if len(s.holders[a.cell]) > 0 {
		return
	}
	reserve := -1
	if !s.cfg.Steal {
		reserve = a.worker
	}
	s.pending[a.cell] = reserve
	s.stats.CellsRequeued++
	s.counter("fdw_sched_cells_requeued_total").Inc()
	s.dispatch()
}

func (s *scheduler) dropHolder(a *assignment) {
	hs := s.holders[a.cell]
	for i, h := range hs {
		if h == a {
			s.holders[a.cell] = append(hs[:i], hs[i+1:]...)
			break
		}
	}
	if len(s.holders[a.cell]) == 0 {
		delete(s.holders, a.cell)
	}
}

// complete fires when a worker finishes computing its cell: durable
// checkpoint first, ack second — the at-least-once order the recovery
// path depends on.
func (s *scheduler) complete(w *worker) {
	w.completion = nil
	a := w.cur
	rec := w.rec
	w.done[rec.ID] = rec
	w.completions++
	if err := s.checkpoint(w); err != nil {
		// A failed bundle write is a torn checkpoint: atomicfile left
		// the previous complete bundle on disk, so the death of this
		// worker loses only the in-flight cell. Model it as a crash and
		// recover from the last durable state.
		delete(w.done, rec.ID)
		w.completions--
		w.checkpointFails++
		s.stats.CheckpointsTorn++
		s.counter("fdw_sched_torn_checkpoints_total").Inc()
		if w.checkpointFails >= maxCheckpointFails {
			s.fail(fmt.Errorf("sched: worker %d failed %d consecutive checkpoints: %w", w.id, w.checkpointFails, err))
			return
		}
		s.crash(w, 0, "torn-checkpoint")
		return
	}
	w.checkpointFails = 0
	s.stats.Checkpoints++
	s.counter("fdw_sched_checkpoints_total").Inc()

	if ci := s.matchCrash(w.id, func(c faults.WorkerCrash) bool {
		return c.BeforeAck && c.AfterCells == w.completions
	}); ci >= 0 {
		s.crashSpent[ci] = true
		s.crash(w, s.cfg.Plan.Crashes[ci].RestartAfter, "before-ack")
		return
	}

	late := a.expired
	s.finishCell(w, "complete")
	if late {
		s.stats.AcksLate++
		s.counter("fdw_sched_late_acks_total").Inc()
	}
	s.deliver(w.id, rec)
	if s.halted || s.err != nil {
		return
	}
	if ci := s.matchCrash(w.id, func(c faults.WorkerCrash) bool {
		return !c.MidCell && !c.BeforeAck && c.AfterCells == w.completions
	}); ci >= 0 {
		s.crashSpent[ci] = true
		s.crash(w, s.cfg.Plan.Crashes[ci].RestartAfter, "after-cells")
		return
	}
	s.dispatch()
}

// finishCell releases w's assignment bookkeeping and returns it to the
// idle pool.
func (s *scheduler) finishCell(w *worker, status string) {
	a := w.cur
	if a == nil {
		return
	}
	if a.expiry != nil {
		a.expiry.Cancel()
		a.expiry = nil
	}
	if !a.expired {
		s.dropHolder(a)
	}
	if w.hbStop != nil {
		w.hbStop()
		w.hbStop = nil
	}
	if w.span != nil {
		w.span.End(status)
		w.span = nil
	}
	w.cur = nil
	w.rec = expt.CellRecord{}
	w.state = workerIdle
}

// deliver is the coordinator-side ack: first completion wins the
// ledger slot, duplicates must agree by digest.
func (s *scheduler) deliver(wid int, rec expt.CellRecord) {
	if prev, ok := s.done[rec.ID]; ok {
		s.stats.Duplicates++
		s.counter("fdw_sched_duplicate_completions_total").Inc()
		if prev.Digest != rec.Digest {
			s.fail(fmt.Errorf("sched: cell %q completed twice with conflicting digests: %s (worker %d) vs %s (worker %d) — refusing last-write-wins",
				rec.ID, prev.Digest, s.doneBy[rec.ID], rec.Digest, wid))
		}
		return
	}
	s.done[rec.ID] = rec
	s.doneBy[rec.ID] = wid
	delete(s.pending, rec.ID)
	s.acked++
	s.counter("fdw_sched_cells_completed_total").Inc()
	if rec.SimEnd > s.maxDur {
		s.maxDur = rec.SimEnd
	}
	if len(s.done) == len(s.ids) {
		s.halted = true
		return
	}
	if s.cfg.MaxCells > 0 && s.acked >= s.cfg.MaxCells {
		s.halted = true
		s.budgetHit = true
	}
}

// crash kills a worker. Its in-flight lease is deliberately NOT
// released: the coordinator only learns of the death when heartbeats
// stop and the lease expires. The worker restarts from its durable
// bundle after the delay.
func (s *scheduler) crash(w *worker, restartAfter float64, cause string) {
	s.stats.WorkerCrashes++
	s.counter("fdw_sched_worker_crashes_total", "cause", cause).Inc()
	if w.completion != nil {
		w.completion.Cancel()
		w.completion = nil
	}
	if w.midCrash != nil {
		w.midCrash.Cancel()
		w.midCrash = nil
	}
	if w.hbStop != nil {
		w.hbStop()
		w.hbStop = nil
	}
	if w.span != nil {
		w.span.End("crashed:" + cause)
		w.span = nil
	}
	w.cur = nil
	w.rec = expt.CellRecord{}
	w.state = workerDown
	s.busyGauge()
	delay := sim.Time(restartAfter)
	if delay <= 0 {
		delay = s.cfg.RestartDelay
	}
	s.k.After(delay, func() { s.restart(w) })
}

// restart brings a crashed worker back: it reloads its durable bundle
// — in-memory state is gone by definition — and re-reports every
// checkpointed completion, so an ack lost to a before-ack crash is
// recovered through digest arbitration instead of re-execution.
func (s *scheduler) restart(w *worker) {
	s.stats.WorkerRestarts++
	s.counter("fdw_sched_worker_restarts_total").Inc()
	if err := s.loadBundle(w); err != nil {
		s.fail(err)
		return
	}
	s.spendPassedCrashes(w)
	w.state = workerIdle
	s.reportRecovered(w)
	if s.err != nil || s.halted {
		return
	}
	s.dispatch()
}

// reportRecovered replays w's durable completions to the coordinator:
// unknown cells are delivered (the lost-ack recovery path), known ones
// are digest-checked.
func (s *scheduler) reportRecovered(w *worker) {
	for _, id := range s.ids {
		rec, ok := w.done[id]
		if !ok {
			continue
		}
		if prev, known := s.done[id]; known {
			if prev.Digest != rec.Digest {
				s.fail(fmt.Errorf("sched: cell %q completed twice with conflicting digests: %s (worker %d) vs %s (worker %d, recovered) — refusing last-write-wins",
					id, prev.Digest, s.doneBy[id], rec.Digest, w.id))
				return
			}
			continue
		}
		s.stats.Recovered++
		s.counter("fdw_sched_recovered_completions_total").Inc()
		s.deliver(w.id, rec)
		if s.err != nil || s.halted {
			return
		}
	}
}

// checkpoint atomically rewrites w's durable bundle: a leased
// CampaignManifest holding its checkpointed cells in canonical order.
func (s *scheduler) checkpoint(w *worker) error {
	m := &expt.CampaignManifest{
		Format:      expt.CampaignManifestFormat,
		Campaign:    s.src.Name(),
		Shard:       expt.ShardSpec{Index: w.id + 1, Total: s.cfg.Workers},
		Leased:      true,
		Fingerprint: s.src.Fingerprint(),
		Ledger: dagman.Manifest{
			Format: dagman.ManifestFormat,
			DAG:    fmt.Sprintf("%s-worker%dof%d", s.src.Name(), w.id+1, s.cfg.Workers),
		},
	}
	for _, id := range s.ids {
		rec, ok := w.done[id]
		if !ok {
			continue
		}
		m.Ledger.Nodes = append(m.Ledger.Nodes, dagman.ManifestNode{Name: id, Done: true})
		m.Cells = append(m.Cells, rec)
		if rec.SimEnd > m.SimMax {
			m.SimMax = rec.SimEnd
		}
	}
	return m.WriteFile(w.bundle)
}

// loadBundle restores w's durable state from disk; a missing bundle is
// a fresh worker.
func (s *scheduler) loadBundle(w *worker) error {
	w.done = map[string]expt.CellRecord{}
	w.completions = 0
	m, err := expt.ReadCampaignManifestFile(w.bundle)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("sched: worker %d bundle: %w", w.id, err)
	}
	if !m.Leased || m.Campaign != s.src.Name() || m.Shard.Index != w.id+1 || m.Shard.Total != s.cfg.Workers {
		return fmt.Errorf("sched: worker %d bundle %s is campaign %s shard %s (leased=%t), want leased %s worker %d/%d",
			w.id, w.bundle, m.Campaign, m.Shard, m.Leased, s.src.Name(), w.id+1, s.cfg.Workers)
	}
	if m.Fingerprint != s.src.Fingerprint() {
		return fmt.Errorf("sched: worker %d bundle fingerprint %s does not match options fingerprint %s (different scale/seeds?)",
			w.id, m.Fingerprint, s.src.Fingerprint())
	}
	for _, rec := range m.Cells {
		if _, ok := s.pos[rec.ID]; !ok {
			return fmt.Errorf("sched: worker %d bundle has unknown cell %q", w.id, rec.ID)
		}
		w.done[rec.ID] = rec
	}
	w.completions = len(w.done)
	return nil
}

// Memoize wraps a Source with a per-cell result cache. Sources are
// deterministic per cell id, so memoization is observationally
// invisible; it exists so drivers that legitimately re-run cells
// (steal re-execution, hedged duplicates, the A/B matrix sweeping many
// plans over one campaign) pay each cell's simulation once.
func Memoize(src Source) Source {
	return &memoSource{src: src, cache: map[string]expt.CellRecord{}}
}

type memoSource struct {
	src   Source
	mu    sync.Mutex
	cache map[string]expt.CellRecord
}

func (m *memoSource) Name() string        { return m.src.Name() }
func (m *memoSource) Fingerprint() string { return m.src.Fingerprint() }
func (m *memoSource) CellIDs() []string   { return m.src.CellIDs() }

func (m *memoSource) RunCell(id string) (expt.CellRecord, error) {
	m.mu.Lock()
	rec, ok := m.cache[id]
	m.mu.Unlock()
	if ok {
		return rec, nil
	}
	rec, err := m.src.RunCell(id)
	if err != nil {
		return expt.CellRecord{}, err
	}
	m.mu.Lock()
	m.cache[id] = rec
	m.mu.Unlock()
	return rec, nil
}
