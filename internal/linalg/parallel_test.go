package linalg

import (
	"math"
	"runtime"
	"testing"
)

// deterministic pseudo-random fill (splitmix64), independent of
// math/rand so the fixtures are stable.
type testRNG uint64

func (r *testRNG) next() float64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53)*2 - 1
}

func randomMatrix(rows, cols int, seed uint64) *Matrix {
	r := testRNG(seed)
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.next()
	}
	return m
}

// spdMatrix builds a covariance-like symmetric positive-definite matrix
// with exponentially decaying off-diagonal correlation.
func spdMatrix(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Data[i*n+j] = math.Exp(-math.Abs(float64(i-j)) / (float64(n)/8 + 1))
		}
	}
	m.AddDiag(1e-10)
	return m
}

func bitsEqual(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: element %d differs: %x vs %x (%v vs %v)",
				name, i, math.Float64bits(a[i]), math.Float64bits(b[i]), a[i], b[i])
		}
	}
}

// Sizes straddle the serial cutoff, odd chunk boundaries, and the
// benchmark sizes' shape (capped for test speed).
var paritySizes = []int{1, 2, 3, 7, 16, 33, 64, 129, 256}

func TestParallelCholeskyBitIdentical(t *testing.T) {
	for _, n := range paritySizes {
		m := spdMatrix(n)
		want, err := Cholesky(m)
		if err != nil {
			t.Fatalf("n=%d serial: %v", n, err)
		}
		got, err := ParallelCholesky(m)
		if err != nil {
			t.Fatalf("n=%d parallel: %v", n, err)
		}
		bitsEqual(t, "cholesky", want.Data, got.Data)
	}
}

func TestParallelCholeskyErrors(t *testing.T) {
	if _, err := ParallelCholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	bad := NewMatrix(64, 64) // all-zero: not positive definite
	if _, err := ParallelCholesky(bad); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestParallelMulBitIdentical(t *testing.T) {
	for _, n := range paritySizes {
		a := randomMatrix(n, n+3, uint64(n))
		b := randomMatrix(n+3, n+1, uint64(n)+1000)
		want, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.ParallelMul(b)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "mul", want.Data, got.Data)
	}
	a := NewMatrix(2, 3)
	if _, err := a.ParallelMul(NewMatrix(4, 2)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestParallelMulVecBitIdentical(t *testing.T) {
	for _, n := range paritySizes {
		a := randomMatrix(n, 2*n+1, uint64(n))
		x := randomMatrix(1, 2*n+1, uint64(n)+5000).Data
		want, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.ParallelMulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "mulvec", want, got)
	}
	if _, err := NewMatrix(2, 3).ParallelMulVec(make([]float64, 5)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// The kernels must give the same bits whatever GOMAXPROCS says, since
// each element's reduction is never split across workers.
func TestParallelKernelsAcrossGOMAXPROCS(t *testing.T) {
	n := 192
	m := spdMatrix(n)
	a := randomMatrix(n, n, 9)
	b := randomMatrix(n, n, 10)

	old := runtime.GOMAXPROCS(1)
	l1, err := ParallelCholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := a.ParallelMul(b)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(old)

	lN, err := ParallelCholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	pN, err := a.ParallelMul(b)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "cholesky gomaxprocs", l1.Data, lN.Data)
	bitsEqual(t, "mul gomaxprocs", p1.Data, pN.Data)
}

func TestParallelFor(t *testing.T) {
	// Covers every index exactly once, for chunked and inline paths.
	for _, n := range []int{0, 1, 5, 64, 1000} {
		seen := make([]int, n)
		ParallelFor(n, 3, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}
