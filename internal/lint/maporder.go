package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// simPath and obsPath are the packages whose APIs turn a map-ordered
// loop body into a determinism hazard.
const (
	simPath = modulePath + "/internal/sim"
	obsPath = modulePath + "/internal/obs"
)

// kernelScheduling are the sim.Kernel methods that put events on the
// calendar; calling them in map order scrambles the (time, seq)
// tie-break that makes runs reproducible.
var kernelScheduling = map[string]bool{"At": true, "After": true, "Ticker": true}

// obsRecording are the obs mutators; spans and gauge sets are
// order-sensitive records.
var obsRecording = map[string]bool{
	"Add": true, "Inc": true, "Set": true, "Observe": true,
	"StartSpan": true, "Annotate": true, "AnnotateAt": true, "End": true,
}

// MaporderAnalyzer flags order-sensitive work performed while ranging
// over a map: Go randomizes map iteration order per run, so anything
// the body appends, writes, schedules, draws, or records leaks that
// randomness into outputs. The one blessed idiom is collect-and-sort —
// append only the keys (or values) to a slice that is sorted later in
// the same function.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag appends/writes/sim-events/RNG-draws/obs-records inside map iteration unless keys are collected and sorted",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			parents := parentMap(f)
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(pass.Pkg.Info, rs) {
					return true
				}
				checkMapRange(pass, rs, enclosingFuncBody(parents, rs))
				return true
			})
		}
	},
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration containing n (nil at package scope, which cannot hold
// a range statement anyway).
func enclosingFuncBody(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for cur := n; cur != nil; cur = parents[cur] {
		switch fn := cur.(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// appendSink is one `dst = append(dst, ...)` inside a map-range body.
type appendSink struct {
	call *ast.CallExpr
	obj  types.Object // root variable of dst, nil if not resolvable
	expr string
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.Pkg.Info
	mapExpr := types.ExprString(rs.X)
	var appends []appendSink

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapRange(info, inner) {
			return false // the nested map range gets its own check
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(info, call, "append") && len(call.Args) > 0 {
			dst := ast.Unparen(call.Args[0])
			appends = append(appends, appendSink{
				call: call, obj: rootObject(info, dst), expr: types.ExprString(dst),
			})
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case funcPkgPath(fn) == "fmt" && (strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")):
			pass.Reportf(call.Pos(),
				"fmt.%s inside iteration over map %s: map order is random, so the output order is too — collect the keys and sort them first", fn.Name(), mapExpr)
		case strings.HasPrefix(fn.Name(), "Write"):
			pass.Reportf(call.Pos(),
				"%s inside iteration over map %s writes output in random map order — collect the keys and sort them first", fn.Name(), mapExpr)
		case methodOn(fn, simPath) && recvTypeName(fn) == "Kernel" && kernelScheduling[fn.Name()]:
			pass.Reportf(call.Pos(),
				"sim.Kernel.%s inside iteration over map %s schedules events in random map order, breaking the calendar's deterministic tie-break", fn.Name(), mapExpr)
		case methodOn(fn, simPath) && recvTypeName(fn) == "RNG":
			pass.Reportf(call.Pos(),
				"sim.RNG.%s inside iteration over map %s draws variates in random map order, making results irreproducible", fn.Name(), mapExpr)
		case methodOn(fn, obsPath) && obsRecording[fn.Name()]:
			pass.Reportf(call.Pos(),
				"obs record %s inside iteration over map %s happens in random map order — record outside the loop or sort the keys", fn.Name(), mapExpr)
		}
		return true
	})

	for _, a := range appends {
		if a.obj != nil && sortedAfter(info, funcBody, rs, a.obj) {
			continue // the collect-and-sort idiom
		}
		pass.Reportf(a.call.Pos(),
			"append to %s inside iteration over map %s without a later sort: map order is random — sort %s (sort or slices package) before it is used", a.expr, mapExpr, a.expr)
	}
}

// rootObject resolves the base identifier of an lvalue expression
// (x, x.f, x[i], ...) to its object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether, after the range statement, the enclosing
// function calls into package sort or slices with dst as (part of) an
// argument — the signature of the collect-and-sort idiom.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt, dst types.Object) bool {
	if funcBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if p := funcPkgPath(fn); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				// A comparator closure mentioning dst does not sort
				// dst; only dst appearing in the sorted operand does.
				if _, ok := an.(*ast.FuncLit); ok {
					return false
				}
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == dst {
					sorted = true
				}
				return !sorted
			})
		}
		return true
	})
	return sorted
}
