package expt

import (
	"bytes"
	"fmt"
	"sort"

	"fdw/internal/core"
	"fdw/internal/stats"
)

// Fig4Data holds one concurrency level's per-job and per-second views
// (§5.2.3/§5.2.4): execution and wait time distributions, instant
// throughput, and the running-job footprint of the first DAGMan.
type Fig4Data struct {
	DAGMans int

	// Per-job distributions (minutes), across all DAGMans in the batch.
	WaveformExecMin stats.Summary
	WaveformWaitMin stats.Summary
	RuptureExecMin  stats.Summary
	RuptureWaitMin  stats.Summary

	// Sorted per-job series for the Fig. 4 duration plots.
	ExecSortedMin []float64
	WaitSortedMin []float64

	// Per-second series for the first DAGMan.
	InstantJPM  []core.SeriesPoint
	RunningJobs []core.SeriesPoint

	PeakRunning    int
	PeakInstantJPM float64
}

// Fig4 reruns the §5.2.3/§5.2.4 measurements for each concurrency
// level, reusing the Fig. 3 batch construction with per-second probes.
func Fig4(opt Options) ([]Fig4Data, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	w := opt.out()
	total := opt.scaleN(Fig3Total)
	fmt.Fprintf(w, "Fig. 4 — job execution/wait times and per-second footprints (%d waveforms)\n", total)
	seed := opt.Seeds[0]
	// Each concurrency level is an independent simulation; fan the four
	// levels out and print in ladder order afterwards.
	out := make([]Fig4Data, len(Fig3Concurrency))
	err := forEachIndex(opt.workers(), len(Fig3Concurrency), func(li int) error {
		n := Fig3Concurrency[li]
		env, err := core.NewEnvObs(seed, opt.Pool, opt.Obs)
		if err != nil {
			return err
		}
		var wfs []*core.Workflow
		var logs []*bytes.Buffer
		for i := 0; i < n; i++ {
			cfg := core.DefaultConfig()
			cfg.Name = fmt.Sprintf("fig4-n%d-d%d", n, i)
			cfg.Waveforms = total / n
			cfg.Seed = seed*1000 + uint64(i)
			buf := &bytes.Buffer{}
			wf, err := core.NewWorkflow(cfg, env.Kernel, env.Pool, buf)
			if err != nil {
				return err
			}
			wfs = append(wfs, wf)
			logs = append(logs, buf)
		}
		if err := core.RunBatch(env, wfs, opt.Horizon); err != nil {
			return fmt.Errorf("fig4 n=%d: %w", n, err)
		}

		data := Fig4Data{DAGMans: n}
		var wExec, wWait, rExec, rWait []float64
		for _, wf := range wfs {
			for _, j := range wf.Schedd.AllJobs() {
				if j.ExecSeconds() <= 0 {
					continue
				}
				execMin := j.ExecSeconds() / 60
				waitMin := j.WaitSeconds() / 60
				switch {
				case j.Executable == "fdw_phase_C.sh":
					wExec = append(wExec, execMin)
					wWait = append(wWait, waitMin)
				case j.Executable == "fdw_phase_A.sh":
					rExec = append(rExec, execMin)
					rWait = append(rWait, waitMin)
				}
				data.ExecSortedMin = append(data.ExecSortedMin, execMin)
				data.WaitSortedMin = append(data.WaitSortedMin, waitMin)
			}
		}
		sort.Float64s(data.ExecSortedMin)
		sort.Float64s(data.WaitSortedMin)
		data.WaveformExecMin = stats.Summarize(wExec)
		data.WaveformWaitMin = stats.Summarize(wWait)
		data.RuptureExecMin = stats.Summarize(rExec)
		data.RuptureWaitMin = stats.Summarize(rWait)

		// Per-second series from the first DAGMan's HTCondor log.
		events := wfs[0].Schedd.Log().Events()
		data.InstantJPM = core.InstantThroughputSeries(events, 1)
		data.RunningJobs = core.RunningJobsSeries(events, 1)
		for _, p := range data.InstantJPM {
			if p.V > data.PeakInstantJPM {
				data.PeakInstantJPM = p.V
			}
		}
		for _, p := range data.RunningJobs {
			if int(p.V) > data.PeakRunning {
				data.PeakRunning = int(p.V)
			}
		}
		out[li] = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, data := range out {
		fmt.Fprintf(w, "  n=%d: waveform exec %.1f min (sd %.1f), wait %.1f min (sd %.1f); rupture exec %.1f min; peak running %d; peak instant %.1f JPM\n",
			data.DAGMans, data.WaveformExecMin.Mean, data.WaveformExecMin.SD,
			data.WaveformWaitMin.Mean, data.WaveformWaitMin.SD,
			data.RuptureExecMin.Mean, data.PeakRunning, data.PeakInstantJPM)
	}
	return out, nil
}
