package npy

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"fdw/internal/linalg"
	"fdw/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	m, _ := linalg.FromRows([][]float64{{1.5, -2.25, 0}, {math.Pi, 1e-300, 1e300}})
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 2 || got.Cols != 3 {
		t.Fatalf("shape %dx%d, want 2x3", got.Rows, got.Cols)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("data[%d] = %v, want %v", i, got.Data[i], m.Data[i])
		}
	}
}

func TestHeaderIs64ByteAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, linalg.NewMatrix(3, 5)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	hlen := int(binary.LittleEndian.Uint16(b[8:10]))
	if (10+hlen)%64 != 0 {
		t.Fatalf("header end at %d not 64-aligned", 10+hlen)
	}
	if b[10+hlen-1] != '\n' {
		t.Fatal("header not newline-terminated")
	}
}

func TestMagicValidation(t *testing.T) {
	if _, err := Read(strings.NewReader("not an npy file at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestRejectsUnsupportedDtype(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, linalg.NewMatrix(1, 1)); err != nil {
		t.Fatal(err)
	}
	b := bytes.Replace(buf.Bytes(), []byte("'<f8'"), []byte("'<f4'"), 1)
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("unsupported dtype accepted")
	}
}

func TestRejectsFortranOrder(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, linalg.NewMatrix(1, 1)); err != nil {
		t.Fatal(err)
	}
	b := bytes.Replace(buf.Bytes(), []byte("False"), []byte("True "), 1)
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("fortran order accepted")
	}
}

func TestTruncatedDataRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, linalg.NewMatrix(4, 4)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-8])); err == nil {
		t.Fatal("truncated data accepted")
	}
}

func TestParseHeader1D(t *testing.T) {
	rows, cols, err := parseHeader("{'descr': '<f8', 'fortran_order': False, 'shape': (7,), }")
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 || cols != 7 {
		t.Fatalf("1-D shape parsed as %dx%d", rows, cols)
	}
}

func TestParseHeader3DRejected(t *testing.T) {
	if _, _, err := parseHeader("{'descr': '<f8', 'fortran_order': False, 'shape': (2, 2, 2), }"); err == nil {
		t.Fatal("3-D shape accepted")
	}
}

func TestParseHeaderMalformed(t *testing.T) {
	for _, h := range []string{
		"{'descr': '<f8', 'fortran_order': False}",
		"{'descr': '<f8', 'fortran_order': False, 'shape': )(, }",
		"{'descr': '<f8', 'fortran_order': False, 'shape': (x, 2), }",
	} {
		if _, _, err := parseHeader(h); err == nil {
			t.Fatalf("malformed header accepted: %q", h)
		}
	}
}

func TestPropertyRoundTripArbitraryMatrices(t *testing.T) {
	rng := sim.NewRNG(4)
	f := func(seed uint64, rRaw, cRaw uint8) bool {
		rows := int(rRaw%20) + 1
		cols := int(cRaw%20) + 1
		r := rng.Split(seed)
		m := linalg.NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.Normal(0, 1e6)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Rows != rows || got.Cols != cols {
			return false
		}
		for i := range m.Data {
			if got.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, linalg.NewMatrix(0, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 0 || got.Cols != 0 {
		t.Fatalf("empty matrix round-tripped as %dx%d", got.Rows, got.Cols)
	}
}
