package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fdw"
)

// makeLog runs a small workflow and writes its HTCondor log to disk.
func makeLog(t *testing.T) string {
	t.Helper()
	env, err := fdw.NewEnv(3, fdw.DefaultPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fdw.DefaultConfig()
	cfg.Name = "montest"
	cfg.Waveforms = 64
	cfg.Stations = 2
	var buf bytes.Buffer
	w, err := fdw.NewWorkflow(cfg, env, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := fdw.RunBatch(env, []*fdw.Workflow{w}, 48*3600); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.log")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFdwmonAnalyzesLog(t *testing.T) {
	if err := run(makeLog(t), 60); err != nil {
		t.Fatal(err)
	}
}

func TestFdwmonMissingFile(t *testing.T) {
	if err := run("/nonexistent/run.log", 60); err == nil {
		t.Fatal("missing log accepted")
	}
}

func TestFdwmonCorruptLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.log")
	if err := os.WriteFile(path, []byte("garbage in here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 60); err == nil {
		t.Fatal("corrupt log accepted")
	}
}

func TestSparkline(t *testing.T) {
	series := []fdw.SeriesPoint{{T: 0, V: 0}, {T: 1, V: 5}, {T: 2, V: 10}}
	s := sparkline(series, 3)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q has wrong width", s)
	}
	if sparkline(nil, 10) != "(no data)" {
		t.Fatal("empty series not handled")
	}
	// All-zero series should not divide by zero.
	flat := []fdw.SeriesPoint{{V: 0}, {V: 0}}
	if got := sparkline(flat, 2); len([]rune(got)) != 2 {
		t.Fatalf("flat sparkline %q", got)
	}
}
