package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel(1)
	if k.Now() != 0 {
		t.Fatalf("new kernel at %v, want 0", k.Now())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
	if k.Now() != 5 {
		t.Fatalf("clock at %v, want 5", k.Now())
	}
}

func TestEqualTimestampsRunFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(7, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(10, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(5, func() {})
}

func TestCancelPreventsExecution(t *testing.T) {
	k := NewKernel(1)
	ran := false
	e := k.At(1, func() { ran = true })
	e.Cancel()
	k.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.At(10, func() {
		k.After(5, func() { at = k.Now() })
	})
	k.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	k := NewKernel(1)
	k.At(3, func() {})
	k.RunUntil(100)
	if k.Now() != 100 {
		t.Fatalf("clock at %v, want 100", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("%d events pending, want 0", k.Pending())
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.At(50, func() { ran = true })
	k.RunUntil(10)
	if ran {
		t.Fatal("future event ran early")
	}
	if k.Now() != 10 {
		t.Fatalf("clock at %v, want 10", k.Now())
	}
	k.Run()
	if !ran {
		t.Fatal("future event never ran")
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	k := NewKernel(1)
	var ticks []Time
	stop := k.Ticker(0, 10, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			// stop is captured below; stopping from inside the callback
			// must prevent further ticks.
		}
	})
	k.RunUntil(44)
	stop()
	k.RunUntil(200)
	want := []Time{0, 10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var stop func()
	stop = k.Ticker(0, 1, func(Time) {
		n++
		if n == 3 {
			stop()
		}
	})
	k.Run()
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
}

func TestNestedSchedulingPreservesCausality(t *testing.T) {
	// A chain of events, each scheduling the next, must run serially.
	k := NewKernel(1)
	const depth = 1000
	n := 0
	var step func()
	step = func() {
		n++
		if n < depth {
			k.After(1, step)
		}
	}
	k.At(0, step)
	k.Run()
	if n != depth {
		t.Fatalf("chain ran %d deep, want %d", n, depth)
	}
	if k.Now() != Time(depth-1) {
		t.Fatalf("clock %v, want %v", k.Now(), depth-1)
	}
}

func TestPropertyEventOrderIsSorted(t *testing.T) {
	// Property: for arbitrary batches of timestamps, execution order is
	// the sorted order of the (non-negative) timestamps.
	f := func(raw []uint16) bool {
		k := NewKernel(42)
		var want []Time
		for _, r := range raw {
			at := Time(r)
			want = append(want, at)
			at2 := at
			k.At(at2, func() {})
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []Time
		for k.Step() {
			got = append(got, k.Now())
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	tt := Time(3 * 3600)
	if tt.Hours() != 3 {
		t.Fatalf("Hours = %v, want 3", tt.Hours())
	}
	if tt.Minutes() != 180 {
		t.Fatalf("Minutes = %v, want 180", tt.Minutes())
	}
	if got := Time(90).String(); got != "1m30s" {
		t.Fatalf("String = %q, want 1m30s", got)
	}
}

func TestRunWhile(t *testing.T) {
	k := NewKernel(1)
	n := 0
	for i := 0; i < 10; i++ {
		k.At(Time(i), func() { n++ })
	}
	k.RunWhile(func() bool { return n < 4 })
	if n != 4 {
		t.Fatalf("RunWhile ran %d events, want 4", n)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(1)
	s1 := root.Split(1)
	s2 := root.Split(2)
	eq := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			eq++
		}
	}
	if eq > 0 {
		t.Fatalf("split streams collided %d times in 1000 draws", eq)
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean %v, want ~10", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Fatalf("normal sd %v, want ~2", sd)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(30)
	}
	if mean := sum / n; math.Abs(mean-30) > 0.5 {
		t.Fatalf("exp mean %v, want ~30", mean)
	}
}

func TestTruncNormalRespectsBounds(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(0, 100, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestTruncNormalDegenerateBounds(t *testing.T) {
	r := NewRNG(6)
	// Bounds far from the mean force the clamping fallback.
	v := r.TruncNormal(0, 0.001, 50, 60)
	if v < 50 || v > 60 {
		t.Fatalf("fallback clamp out of bounds: %v", v)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal non-positive: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	frac := float64(n) / trials
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestCancelledEventsAreReaped(t *testing.T) {
	k := NewKernel(1)
	// Schedule many timers and cancel almost all of them, the pattern a
	// deadline/hedge-heavy pool produces. Without reaping the heap
	// retains every tombstone until its timestamp is reached.
	const n = 10000
	events := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		events = append(events, k.At(Time(1000+i), func() {}))
	}
	live := 0
	for i, e := range events {
		if i%100 == 0 {
			live++
			continue
		}
		e.Cancel()
	}
	if got := k.Pending(); got != live {
		t.Fatalf("Pending() = %d, want %d live events", got, live)
	}
	// Reaping keeps the heap proportional to live events: with 1% of
	// timers surviving, well under half the tombstones may remain.
	if got := len(k.events); got >= 2*live+reapMinEvents {
		t.Fatalf("heap holds %d entries for %d live events; tombstones not reaped", got, live)
	}
	ran := 0
	k.At(20000, func() {})
	for k.Step() {
		ran++
	}
	if ran != live+1 {
		t.Fatalf("%d events ran, want %d", ran, live+1)
	}
}

func TestCancelAfterFireIsNoOp(t *testing.T) {
	k := NewKernel(1)
	e := k.At(1, func() {})
	k.Run()
	e.Cancel() // must not corrupt the tombstone accounting
	e.Cancel()
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d after empty run", k.Pending())
	}
	k.At(2, func() {})
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
}
