package expt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"fdw/internal/dagman"
	"fdw/internal/obs"
)

// The distributed campaign runner: fdwexp -shard i/N partitions a
// campaign's cells across N independent invocations by a stable hash
// of cell identity, each shard checkpointing a CampaignManifest after
// every completed cell; fdwexp -merge stitches the manifests back into
// the byte-identical unsharded report. The cell list, the shard
// assignment, and the checkpoint todo order are all derived from
// identity strings, never from worker count or map order, so the
// partition is reproducible on any machine.

// ErrIncomplete marks a shard run that stopped before finishing every
// owned cell (the -cells budget); the manifest on disk is valid and a
// -resume run will pick up the remaining cells. fdwexp exits 3 on it.
var ErrIncomplete = errors.New("expt: shard incomplete (resume to finish)")

// ShardRun configures one RunShard invocation.
type ShardRun struct {
	// Campaign is the campaign name (see ShardableCampaigns).
	Campaign string
	// Index/Total place this run in the partition (1-based).
	Index, Total int
	// Path is the manifest file this run checkpoints to.
	Path string
	// MaxCells, when positive, stops the run after that many cells —
	// the deterministic model of a mid-campaign kill (the todo list is
	// truncated in canonical order before any cell runs).
	MaxCells int
	// Resume loads Path and re-executes only cells its ledger does not
	// mark done. Without Resume an existing manifest is overwritten.
	Resume bool
}

// RunShard executes the cells of opt's campaign owned by shard
// Index/Total, checkpointing the manifest to Path after every
// completed cell (atomic rewrite, so a kill leaves the last good
// checkpoint). It returns the final manifest; the error is
// ErrIncomplete when a MaxCells budget stopped the run early.
func RunShard(opt Options, run ShardRun) (*CampaignManifest, error) {
	c, err := campaignByName(run.Campaign)
	if err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	spec := ShardSpec{Index: run.Index, Total: run.Total}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	ids, err := c.cells(opt)
	if err != nil {
		return nil, err
	}
	owned := ShardCells(c.name, ids, run.Index, run.Total)
	fp, err := opt.Fingerprint(c.name)
	if err != nil {
		return nil, err
	}

	// The completion ledger rides on the dagman rescue machinery: one
	// flat DAG node per owned cell, resume = ApplyManifest.
	dagName := fmt.Sprintf("%s-shard%s", c.name, spec)
	d := dagman.NewDAG()
	for _, id := range owned {
		if err := d.AddNode(&dagman.Node{Name: id, SubmitFile: id}); err != nil {
			return nil, err
		}
	}

	stored := map[string]CellRecord{}
	var prior *obs.Snapshot
	if run.Resume {
		old, err := ReadCampaignManifestFile(run.Path)
		if err != nil {
			return nil, fmt.Errorf("expt: resume: %w", err)
		}
		if old.Campaign != c.name || old.Shard != spec {
			return nil, fmt.Errorf("expt: resume: manifest is %s shard %s, want %s shard %s",
				old.Campaign, old.Shard, c.name, spec)
		}
		if old.Fingerprint != fp {
			return nil, fmt.Errorf("expt: resume: manifest fingerprint %s does not match options fingerprint %s",
				old.Fingerprint, fp)
		}
		if err := d.ApplyManifest(old.Ledger); err != nil {
			return nil, fmt.Errorf("expt: resume: %w", err)
		}
		for _, rec := range old.Cells {
			stored[rec.ID] = rec
		}
		prior = old.Metrics
	}

	var todo []string
	for _, id := range owned {
		if !d.Nodes[id].Done {
			todo = append(todo, id)
		}
	}
	incomplete := false
	if run.MaxCells > 0 && len(todo) > run.MaxCells {
		todo = todo[:run.MaxCells]
		incomplete = true
	}

	// snapshot assembles the manifest from current state; checkpoint
	// serializes concurrent cell completions and atomically rewrites
	// Path. Cells appear in canonical owned order regardless of
	// completion order.
	var mu sync.Mutex
	snapshot := func() *CampaignManifest {
		m := &CampaignManifest{
			Format:      CampaignManifestFormat,
			Campaign:    c.name,
			Shard:       spec,
			Fingerprint: fp,
			Ledger:      dagman.Manifest{Format: dagman.ManifestFormat, DAG: dagName},
		}
		for _, id := range owned {
			rec, done := stored[id]
			m.Ledger.Nodes = append(m.Ledger.Nodes, dagman.ManifestNode{Name: id, Done: done})
			if done {
				m.Cells = append(m.Cells, rec)
				if rec.SimEnd > m.SimMax {
					m.SimMax = rec.SimEnd
				}
			}
		}
		if opt.Obs != nil {
			m.Metrics = obs.MergeSnapshots(prior, opt.Obs.Snapshot())
		} else {
			m.Metrics = prior
		}
		return m
	}
	checkpoint := func(rec CellRecord) error {
		mu.Lock()
		defer mu.Unlock()
		stored[rec.ID] = rec
		return snapshot().WriteFile(run.Path)
	}

	// Index cells once so shard workers address them by canonical
	// position; the campaign ctx is shared so fig5/fig6 traces build
	// once per process.
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	ctx := &campaignCtx{}
	err = forEachIndex(opt.workers(), len(todo), func(i int) error {
		id := todo[i]
		result, end, err := c.run(opt, ctx, pos[id])
		if err != nil {
			return err
		}
		raw, err := marshalCell(result)
		if err != nil {
			return fmt.Errorf("expt: cell %q: %w", id, err)
		}
		return checkpoint(CellRecord{ID: id, Result: raw, Digest: cellDigest(raw), SimEnd: end})
	})
	if err != nil {
		return nil, err
	}

	// A shard with nothing left to run (all resumed, or owning zero
	// cells) still writes its manifest so merge has a complete bundle.
	mu.Lock()
	final := snapshot()
	err = final.WriteFile(run.Path)
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if incomplete {
		return final, fmt.Errorf("%w: %d of %d cells done (shard %s of %s)",
			ErrIncomplete, final.Ledger.DoneCount(), len(owned), spec, c.name)
	}
	return final, nil
}

// MergeResult is a verified, finalized sharded campaign.
type MergeResult struct {
	Campaign string
	// CSVName is the conventional CSV file name for this campaign.
	CSVName string
	// Rows is the finalize output, same dynamic type as the unsharded
	// entry point returns ([]Fig2Row, []Fig5Cell, ...).
	Rows any
	// Metrics is the cross-shard rollup, nil when no shard embedded a
	// snapshot.
	Metrics *obs.Snapshot
	c       *campaign
}

// WriteCSV renders the merged rows as the campaign's CSV.
func (r *MergeResult) WriteCSV(w io.Writer) error { return r.c.writeCSV(w, r.Rows) }

// MergeManifests verifies a set of shard manifests covers opt's
// campaign exactly — same campaign, same fingerprint, same partition
// width, every shard complete, every cell present with an intact
// digest — then decodes the stored results in canonical cell order and
// finalizes, printing the report to opt.Out. Finalize is the same code
// the unsharded run uses on in-memory results, and Go's JSON float
// round-trip is exact, so the printed report and CSV are byte-identical
// to an unsharded run.
func MergeManifests(opt Options, manifests []*CampaignManifest) (*MergeResult, error) {
	if len(manifests) == 0 {
		return nil, fmt.Errorf("expt: merge: no manifests")
	}
	name := manifests[0].Campaign
	c, err := campaignByName(name)
	if err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	fp, err := opt.Fingerprint(name)
	if err != nil {
		return nil, err
	}
	total := manifests[0].Shard.Total
	leased := manifests[0].Leased
	byIndex := map[int]*CampaignManifest{}
	accepted := manifests[:0:0]
	for _, m := range manifests {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if m.Campaign != name {
			return nil, fmt.Errorf("expt: merge: mixed campaigns %s and %s", name, m.Campaign)
		}
		if m.Leased != leased {
			return nil, fmt.Errorf("expt: merge: cannot mix leased worker bundles and hash-partitioned shard bundles")
		}
		if m.Shard.Total != total {
			return nil, fmt.Errorf("expt: merge: mixed partitions /%d and /%d", total, m.Shard.Total)
		}
		if m.Fingerprint != fp {
			return nil, fmt.Errorf("expt: merge: shard %s fingerprint %s does not match options fingerprint %s",
				m.Shard, m.Fingerprint, fp)
		}
		if dup, ok := byIndex[m.Shard.Index]; ok {
			// The same slot supplied twice is benign only if the bundles
			// agree cell for cell; a conflict is reported by cell and
			// digest pair, never resolved last-write-wins.
			if cell, d1, d2, conflict := manifestConflict(dup, m); conflict {
				return nil, fmt.Errorf("expt: merge: shard %s supplied twice with conflicting cell %q (digest %s vs %s)",
					m.Shard, cell, d1, d2)
			}
			if !leased {
				// Skip so the duplicate's metrics are not double counted.
				continue
			}
			// Leased duplicates fall through to the union: checkpoints of
			// the same worker at different times may not be subsets in a
			// fixed direction, and worker bundles carry no metrics, so
			// unioning both is lossless.
		}
		if !leased && !m.Complete() {
			return nil, fmt.Errorf("%w: shard %s has %d of %d cells (resume it before merging)",
				ErrIncomplete, m.Shard, m.Ledger.DoneCount(), len(m.Ledger.Nodes))
		}
		byIndex[m.Shard.Index] = m
		accepted = append(accepted, m)
	}

	ids, err := c.cells(opt)
	if err != nil {
		return nil, err
	}
	results := make([]any, len(ids))
	var snaps []*obs.Snapshot
	for _, m := range accepted {
		snaps = append(snaps, m.Metrics)
	}
	if leased {
		// Leased bundles carry no ownership invariant: coverage is the
		// union of worker ledgers, and a cell checkpointed by several
		// workers (steal races, hedged stragglers, late acks) must agree
		// by digest — a mismatch is a determinism violation and fails
		// the merge by cell and digest pair.
		merged := map[string]CellRecord{}
		mergedBy := map[string]ShardSpec{}
		for _, m := range accepted {
			for _, rec := range m.Cells {
				prev, ok := merged[rec.ID]
				if !ok {
					merged[rec.ID] = rec
					mergedBy[rec.ID] = m.Shard
					continue
				}
				if prev.Digest != rec.Digest {
					return nil, fmt.Errorf("expt: merge: cell %q completed with conflicting digests: %s (worker %s) vs %s (worker %s) — refusing last-write-wins",
						rec.ID, prev.Digest, mergedBy[rec.ID], rec.Digest, m.Shard)
				}
			}
		}
		for i, id := range ids {
			rec, ok := merged[id]
			if !ok {
				return nil, fmt.Errorf("%w: cell %q not completed by any worker bundle (%d of %d cells done)",
					ErrIncomplete, id, len(merged), len(ids))
			}
			v, err := c.decode(rec.Result)
			if err != nil {
				return nil, fmt.Errorf("expt: merge: cell %q: %w", id, err)
			}
			results[i] = v
		}
	} else {
		for i, id := range ids {
			owner := shardOf(name, id, total)
			m, ok := byIndex[owner]
			if !ok {
				return nil, fmt.Errorf("expt: merge: cell %q belongs to shard %d/%d, which was not supplied", id, owner, total)
			}
			rec, ok := m.result(id)
			if !ok {
				return nil, fmt.Errorf("expt: merge: shard %s is missing cell %q", m.Shard, id)
			}
			v, err := c.decode(rec.Result)
			if err != nil {
				return nil, fmt.Errorf("expt: merge: cell %q: %w", id, err)
			}
			results[i] = v
		}
	}

	rows, err := c.finalize(opt, results)
	if err != nil {
		return nil, err
	}
	res := &MergeResult{Campaign: name, CSVName: c.csvName, Rows: rows, c: c}
	merged := obs.MergeSnapshots(snaps...)
	for _, s := range snaps {
		if s != nil {
			res.Metrics = merged
			break
		}
	}
	return res, nil
}

// MergeManifestFiles is MergeManifests over manifest bundle paths.
func MergeManifestFiles(opt Options, paths []string) (*MergeResult, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("expt: merge: no manifest files")
	}
	manifests := make([]*CampaignManifest, len(paths))
	for i, p := range paths {
		m, err := ReadCampaignManifestFile(p)
		if err != nil {
			return nil, err
		}
		manifests[i] = m
	}
	return MergeManifests(opt, manifests)
}

// manifestConflict compares two bundles claiming the same shard slot
// cell by cell, returning the first cell (in b's canonical order)
// whose stored digests disagree. Identical bundles — the same file
// supplied twice, or byte-equal copies — are not a conflict.
func manifestConflict(a, b *CampaignManifest) (cell, digestA, digestB string, conflict bool) {
	inA := make(map[string]string, len(a.Cells))
	for _, rec := range a.Cells {
		inA[rec.ID] = rec.Digest
	}
	for _, rec := range b.Cells {
		if d, ok := inA[rec.ID]; ok && d != rec.Digest {
			return rec.ID, d, rec.Digest, true
		}
	}
	return "", "", "", false
}

// marshalCell encodes one cell result for manifest storage — always
// compact json.Marshal bytes, the form digests are computed over and
// the form Go's encoder passes through RawMessage unchanged.
func marshalCell(v any) (json.RawMessage, error) {
	return json.Marshal(v)
}
