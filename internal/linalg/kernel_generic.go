//go:build !amd64

package linalg

// Portable fallback: every architecture without the assembly
// micro-kernel runs goKern4x8, whose math.FMA chains round exactly
// like the amd64 VFMADD path — the blocked kernels are bit-identical
// across architectures, not just across worker counts.

const useAsmKern = false

func kern4x8(kc int, a []float64, lda int, b []float64, c []float64, ldc int) {
	if kc <= 0 {
		return
	}
	goKern4x8(kc, a, lda, b, c, ldc)
}
