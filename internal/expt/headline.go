package expt

import (
	"fmt"

	"fdw/internal/baseline"
	"fdw/internal/core"
	"fdw/internal/stats"
)

// HeadlineResult is the §6 comparison: FDW versus an automated
// single-machine FakeQuakes run for 1,024 full-input waveforms, plus
// the abstract's throughput multiple between 1,024 and 50,000.
type HeadlineResult struct {
	Waveforms      int
	FDWHours       float64
	BaselineHours  float64
	DecreasePct    float64 // the paper reports 56.8%
	JPMAt1024      float64
	JPMAt50000     float64
	ThroughputGain float64 // the paper reports ≈5×
}

// Headline reruns the headline measurements.
func Headline(opt Options) (*HeadlineResult, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	w := opt.out()
	n1024 := opt.scaleN(1024)
	n50000 := opt.scaleN(50000)

	run := func(q int) (float64, float64, error) {
		var rts, jpms []float64
		for _, seed := range opt.Seeds {
			cfg := core.DefaultConfig()
			cfg.Name = fmt.Sprintf("headline-%d", q)
			cfg.Waveforms = q
			cfg.Seed = seed
			rt, jpm, _, err := runOne(opt, cfg, seed)
			if err != nil {
				return 0, 0, err
			}
			rts = append(rts, rt)
			jpms = append(jpms, jpm)
		}
		return stats.Mean(rts), stats.Mean(jpms), nil
	}

	fdwH, jpmSmall, err := run(n1024)
	if err != nil {
		return nil, fmt.Errorf("headline FDW run: %w", err)
	}
	_, jpmBig, err := run(n50000)
	if err != nil {
		return nil, fmt.Errorf("headline 50k run: %w", err)
	}

	cfg := core.DefaultConfig()
	cfg.Waveforms = n1024
	bl, err := baseline.Run(baseline.AWSInstance(), cfg)
	if err != nil {
		return nil, err
	}

	res := &HeadlineResult{
		Waveforms:     n1024,
		FDWHours:      fdwH,
		BaselineHours: bl.TotalHours(),
		DecreasePct:   stats.PctDecrease(bl.TotalHours(), fdwH),
		JPMAt1024:     jpmSmall,
		JPMAt50000:    jpmBig,
	}
	if jpmSmall > 0 {
		res.ThroughputGain = jpmBig / jpmSmall
	}
	fmt.Fprintf(w, "Headline — %d full-input waveforms: FDW %.2f h vs single machine %.2f h → %.1f%% decrease (paper: 56.8%%)\n",
		res.Waveforms, res.FDWHours, res.BaselineHours, res.DecreasePct)
	fmt.Fprintf(w, "Throughput gain %d→%d waveforms: %.2f× (paper: ≈5×)\n",
		n1024, n50000, res.ThroughputGain)
	return res, nil
}
