// EEW: the downstream use-case that motivates the whole paper —
// training an earthquake-early-warning magnitude estimator on
// synthetic FakeQuakes data (Lin et al. 2021; Ruhl et al. 2017).
//
// It generates a training set of rupture scenarios across magnitudes,
// fits the classic PGD scaling relation
//
//	log10(PGD) = A + B·Mw + C·Mw·log10(R)
//
// by least squares, then estimates the magnitudes of held-out "events"
// from their station PGDs alone — exactly what an EEW system does in
// the seconds after origin time.
//
//	go run ./examples/eew
package main

import (
	"fmt"
	"log"
	"math"

	"fdw"
	"fdw/internal/linalg"
)

const stationsPerEvent = 6

func main() {
	// 1. Training set: synthetic events across the magnitude range.
	fmt.Println("generating synthetic training events (FakeQuakes)...")
	var rows [][]float64
	var obs []float64
	trainMws := []float64{7.6, 7.9, 8.2, 8.5, 8.8, 9.1}
	for i, mw := range trainMws {
		sc, err := fdw.GenerateScenario(uint64(1000+i), mw, stationsPerEvent)
		if err != nil {
			log.Fatal(err)
		}
		for si, w := range sc.Waveforms {
			pgd := w.PGD()
			r := sc.HypocentralDistanceKm(si)
			if pgd <= 0 || r <= 0 {
				continue
			}
			actual := sc.Rupture.ActualMw
			rows = append(rows, []float64{1, actual, actual * math.Log10(r)})
			obs = append(obs, math.Log10(pgd))
		}
		fmt.Printf("  event Mw %.2f: %d station observations\n", sc.Rupture.ActualMw, len(sc.Waveforms))
	}

	// 2. Fit the scaling relation.
	a, err := linalg.FromRows(rows)
	if err != nil {
		log.Fatal(err)
	}
	coef, err := linalg.LeastSquares(a, obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitted: log10(PGD) = %.3f + %.3f·Mw + %.3f·Mw·log10(R)  (%d observations)\n",
		coef[0], coef[1], coef[2], len(obs))

	// 3. Evaluate on held-out events: invert the relation per station
	//    and average (the EEW point estimate).
	fmt.Println("\nheld-out event magnitude estimates:")
	var worst float64
	for i, mw := range []float64{7.7, 8.35, 9.0} {
		sc, err := fdw.GenerateScenario(uint64(2000+i), mw, stationsPerEvent)
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		var n int
		for si, w := range sc.Waveforms {
			pgd := w.PGD()
			r := sc.HypocentralDistanceKm(si)
			if pgd <= 0 || r <= 0 {
				continue
			}
			// Mw = (log10(PGD) - A) / (B + C·log10(R))
			den := coef[1] + coef[2]*math.Log10(r)
			if den == 0 {
				continue
			}
			sum += (math.Log10(pgd) - coef[0]) / den
			n++
		}
		if n == 0 {
			log.Fatal("no usable observations for held-out event")
		}
		est := sum / float64(n)
		errMw := est - sc.Rupture.ActualMw
		if math.Abs(errMw) > worst {
			worst = math.Abs(errMw)
		}
		fmt.Printf("  true Mw %.2f → estimated %.2f (error %+.2f)\n", sc.Rupture.ActualMw, est, errMw)
	}
	fmt.Printf("\nworst-case error %.2f magnitude units — synthetic FakeQuakes data trains a\n", worst)
	fmt.Println("usable large-event magnitude estimator, which is why accelerating its")
	fmt.Println("generation (the paper's contribution) matters for EEW research.")
}
