//go:build amd64

package linalg

import "testing"

// TestAsmKernelBitIdenticalToPortable forces the portable math.FMA
// micro-kernel and checks the assembly path produced exactly the same
// bits — the cross-architecture half of the determinism contract: a
// result computed on an AVX2 host must match one from any other
// machine bit for bit.
func TestAsmKernelBitIdenticalToPortable(t *testing.T) {
	if !useAsmKern {
		t.Skip("no AVX2+FMA on this host")
	}
	for _, s := range [][3]int{{64, 64, 64}, {37, 129, 53}, {257, 31, 260}} {
		a := randomMatrix(s[0], s[1], uint64(s[0]))
		b := randomMatrix(s[1], s[2], uint64(s[1])+3)
		asm, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		useAsmKern = false
		pure, err := a.Mul(b)
		useAsmKern = true
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "asm-vs-portable", pure.Data, asm.Data)

		m := spdMatrix(s[0])
		lAsm, err := Cholesky(m)
		if err != nil {
			t.Fatal(err)
		}
		useAsmKern = false
		lPure, err := Cholesky(m)
		useAsmKern = true
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "cholesky asm-vs-portable", lPure.Data, lAsm.Data)
	}
}
