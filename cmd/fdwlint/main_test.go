package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fdw/internal/lint"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run -list = %d, stderr %s", code, errb.String())
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("run -only nope = %d, want 2", code)
	}
}

// TestJSONOnFixture runs the CLI against a known-bad fixture and
// checks exit status and the machine-readable output shape.
func TestJSONOnFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-C", "../..", "-only", "wallclock",
		"./internal/lint/testdata/src/wallclock_bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (stderr %s)", code, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics decoded")
	}
	for _, d := range diags {
		if d.Analyzer != "wallclock" || d.File == "" || d.Line == 0 {
			t.Errorf("malformed diagnostic: %+v", d)
		}
	}
}

// TestCleanFixture checks the zero-diagnostic exit path.
func TestCleanFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../..", "./internal/lint/testdata/src/wallclock_clean"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout %s\nstderr %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no output, got %s", out.String())
	}
}
