// Command burstsim is the VDC bursting simulator — the Go counterpart
// of the paper's Python tool (§3.1). It takes the two .csv trace files
// of an actual DAGMan batch and replays it second by second under the
// three OSG-tailored bursting policies, reporting average instant
// throughput, VDC usage, runtime, and simulated cost, and optionally
// writing the per-second instant-throughput series as CSV.
//
// Usage:
//
//	burstsim -batch traces/batch.csv -jobs traces/jobs.csv \
//	         -probe 10 -threshold 34 -max-queue 90 -series out.csv
//
// Disable a policy by passing 0 for its flag. With all policies
// disabled, the run is the pure-OSG control.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fdw"
	"fdw/internal/core/atomicfile"
)

func main() {
	var (
		batchPath = flag.String("batch", "", "batch trace CSV (required)")
		jobsPath  = flag.String("jobs", "", "jobs trace CSV (required)")

		probe     = flag.Float64("probe", 0, "Policy 1: probe interval (s); 0 disables")
		threshold = flag.Float64("threshold", 34, "Policy 1: instant-throughput threshold (jobs/min)")
		maxQueueM = flag.Float64("max-queue", 0, "Policy 2: max queue time (minutes); 0 disables")
		maxGapM   = flag.Float64("max-gap", 0, "Policy 3: max submission gap (minutes); 0 disables")

		costPerMin = flag.Float64("cost", fdw.DefaultBurstConfig().CostPerMinute, "VDC cost per minute (USD)")
		maxBurst   = flag.Float64("max-burst", 0.30, "maximum fraction of jobs to burst")
		seriesPath = flag.String("series", "", "write per-second instant throughput CSV here")
	)
	flag.Parse()
	if *batchPath == "" || *jobsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*batchPath, *jobsPath, *probe, *threshold, *maxQueueM, *maxGapM, *costPerMin, *maxBurst, *seriesPath); err != nil {
		fmt.Fprintln(os.Stderr, "burstsim:", err)
		os.Exit(1)
	}
}

func run(batchPath, jobsPath string, probe, threshold, maxQueueM, maxGapM, costPerMin, maxBurst float64, seriesPath string) error {
	bf, err := os.Open(batchPath)
	if err != nil {
		return err
	}
	defer bf.Close()
	batch, err := fdw.ReadBatchCSV(bf)
	if err != nil {
		return err
	}
	jf, err := os.Open(jobsPath)
	if err != nil {
		return err
	}
	defer jf.Close()
	jobs, err := fdw.ReadJobsCSV(jf)
	if err != nil {
		return err
	}

	cfg := fdw.DefaultBurstConfig()
	cfg.CostPerMinute = costPerMin
	cfg.MaxBurstFraction = maxBurst
	if probe > 0 {
		cfg.P1 = &fdw.BurstPolicy1{ProbeSecs: probe, ThresholdJPM: threshold}
	}
	if maxQueueM > 0 {
		cfg.P2 = &fdw.BurstPolicy2{MaxQueueSecs: maxQueueM * 60}
	}
	if maxGapM > 0 {
		cfg.P3 = &fdw.BurstPolicy3{MaxGapSecs: maxGapM * 60, ProbeSecs: 60}
	}

	res, err := fdw.Burst(batch, jobs, cfg)
	if err != nil {
		return err
	}
	if err := res.Report(os.Stdout); err != nil {
		return err
	}
	if seriesPath != "" {
		if err := atomicfile.WriteFile(seriesPath, func(w io.Writer) error {
			return fdw.WriteBurstSeriesCSV(w, res)
		}); err != nil {
			return err
		}
		fmt.Printf("instant-throughput series written to %s (%d seconds)\n",
			seriesPath, len(res.InstantSeries))
	}
	return nil
}
