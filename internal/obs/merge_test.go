package obs

import (
	"bytes"
	"reflect"
	"testing"
)

func TestMergeSnapshotsRollsUpShards(t *testing.T) {
	// Two "shards" of the same campaign: same metric names, disjoint work.
	a := NewRegistry(nil)
	a.Counter("cells_total", "campaign", "fig2").Add(3)
	a.Counter("only_a_total").Inc()
	a.Gauge("progress", "shard", "1").Set(0.5)
	a.Histogram("cell_seconds").Observe(1)
	a.Histogram("cell_seconds").Observe(10)

	b := NewRegistry(nil)
	b.Counter("cells_total", "campaign", "fig2").Add(4)
	b.Gauge("progress", "shard", "1").Set(0.9)
	b.Histogram("cell_seconds").Observe(100)

	m := MergeSnapshots(a.Snapshot(), nil, b.Snapshot())

	counters := map[string]uint64{}
	for _, c := range m.Counters {
		counters[mergeKey(c.Name, c.Labels)] = c.Value
	}
	if got := counters[mergeKey("cells_total", map[string]string{"campaign": "fig2"})]; got != 7 {
		t.Fatalf("summed counter = %d, want 7", got)
	}
	if got := counters[mergeKey("only_a_total", nil)]; got != 1 {
		t.Fatalf("one-sided counter = %d, want 1", got)
	}

	if len(m.Gauges) != 1 {
		t.Fatalf("%d gauges", len(m.Gauges))
	}

	if len(m.Histograms) != 1 {
		t.Fatalf("%d histograms", len(m.Histograms))
	}
	h := m.Histograms[0]
	if h.Count != 3 || h.Sum != 111 {
		t.Fatalf("hist count=%d sum=%v", h.Count, h.Sum)
	}
	if h.Min != 1 || h.Max != 100 {
		t.Fatalf("hist min=%v max=%v", h.Min, h.Max)
	}
	if h.P99 < h.P50 {
		t.Fatalf("re-estimated quantiles inverted: p50=%v p99=%v", h.P50, h.P99)
	}
	var total uint64
	for i, bk := range h.Buckets {
		if i > 0 && bk.Count < h.Buckets[i-1].Count {
			t.Fatalf("merged buckets not cumulative: %+v", h.Buckets)
		}
		total = bk.Count
	}
	if total > h.Count {
		t.Fatalf("bucket mass %d exceeds count %d", total, h.Count)
	}
}

func TestMergeSnapshotsDeterministic(t *testing.T) {
	a := NewRegistry(nil)
	a.Counter("x_total", "k", "1").Inc()
	a.Counter("a_total").Inc()
	b := NewRegistry(nil)
	b.Counter("x_total", "k", "1").Inc()
	b.Counter("b_total").Inc()

	m1 := MergeSnapshots(a.Snapshot(), b.Snapshot())
	m2 := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("merge not deterministic")
	}
	// Output is sorted by canonical key regardless of input order.
	names := []string{}
	for _, c := range MergeSnapshots(b.Snapshot(), a.Snapshot()).Counters {
		names = append(names, c.Name)
	}
	want := []string{"a_total", "b_total", "x_total"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("counter order %v, want %v", names, want)
	}
}

// Streamed partial merges are the scheduler's consumption pattern:
// worker bundles arrive in whatever order leases complete, and the
// coordinator may fold them in incrementally. Any permutation and any
// grouping must yield identical counters and quantile estimates.
func TestMergeSnapshotsOrderAndStreaming(t *testing.T) {
	mk := func(seed int) *Snapshot {
		r := NewRegistry(nil)
		r.Counter("cells_total", "campaign", "fig2").Add(uint64(seed*3 + 1))
		r.Counter("shard_total", "shard", string(rune('a'+seed))).Inc()
		h := r.Histogram("cell_seconds")
		for i := 0; i < 5+seed; i++ {
			h.Observe(float64((seed + 1) * (i + 1)))
		}
		return r.Snapshot()
	}
	snaps := []*Snapshot{mk(0), mk(1), mk(2), mk(3)}
	batch := MergeSnapshots(snaps...)

	for _, p := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		ordered := make([]*Snapshot, len(p))
		for i, j := range p {
			ordered[i] = snaps[j]
		}
		if got := MergeSnapshots(ordered...); !reflect.DeepEqual(got, batch) {
			t.Fatalf("merge order %v changed the rollup:\n%+v\nwant\n%+v", p, got, batch)
		}
	}

	// Fold-left streaming: each bundle merged as it lands.
	stream := MergeSnapshots(snaps[0])
	for _, s := range snaps[1:] {
		stream = MergeSnapshots(stream, s)
	}
	// Balanced partial merges: two half-merges merged.
	halves := MergeSnapshots(MergeSnapshots(snaps[0], snaps[1]), MergeSnapshots(snaps[2], snaps[3]))

	for _, got := range []*Snapshot{stream, halves} {
		if !reflect.DeepEqual(got.Counters, batch.Counters) {
			t.Fatalf("partial-merge counters differ:\n%+v\nwant\n%+v", got.Counters, batch.Counters)
		}
		if len(got.Histograms) != len(batch.Histograms) {
			t.Fatalf("%d histograms, want %d", len(got.Histograms), len(batch.Histograms))
		}
		for i, h := range got.Histograms {
			want := batch.Histograms[i]
			if h.Count != want.Count || h.Sum != want.Sum || h.Min != want.Min || h.Max != want.Max {
				t.Fatalf("partial-merge histogram moments differ: %+v vs %+v", h, want)
			}
			if h.P50 != want.P50 || h.P99 != want.P99 {
				t.Fatalf("partial-merge quantile estimates differ: p50 %v vs %v, p99 %v vs %v",
					h.P50, want.P50, h.P99, want.P99)
			}
			if !reflect.DeepEqual(h.Buckets, want.Buckets) {
				t.Fatalf("partial-merge buckets differ: %+v vs %+v", h.Buckets, want.Buckets)
			}
		}
	}
}

func TestMergeSnapshotJSONRoundTrip(t *testing.T) {
	a := NewRegistry(nil)
	a.Counter("x_total").Inc()
	a.Histogram("h").Observe(2)
	m := MergeSnapshots(a.Snapshot())

	var buf bytes.Buffer
	if err := WriteSnapshotJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("snapshot JSON round trip changed data:\n%+v\n%+v", m, back)
	}
}
