// Parallel, cache-blocked variants of the hot kernels (Cholesky,
// matrix-matrix and matrix-vector products) on a shared bounded worker
// pool sized by GOMAXPROCS.
//
// Bit-identity contract: every output element is computed with exactly
// the serial kernels' summation order — a single left-to-right
// accumulation over k — so the parallel kernels return results that are
// bit-identical to Cholesky/Mul/MulVec for the same input, regardless
// of worker count. Parallelism only partitions *independent* output
// elements (rows) across workers; it never splits or reassociates a
// single element's reduction. This is what keeps FakeQuakes scenarios
// deterministic by seed under GOMAXPROCS=1 vs N.
//
// A note on the factorization shape: a classical right-looking Cholesky
// applies trailing-submatrix updates panel by panel, which accumulates
// each element as ((m - s1) - s2) - … and would change rounding versus
// the serial kernel's single m - (s1+s2+…) subtraction. To stay
// bit-identical we keep the serial (left-looking, full prefix dot)
// arithmetic per element and instead parallelize each column's
// independent row updates, with workers owning contiguous, cache-sized
// row blocks.
package linalg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// The shared pool: GOMAXPROCS goroutines consuming closures. Started
// lazily on first use; tasks that find the queue full run inline on the
// submitter, so progress never depends on a free worker (and nested use
// from already-parallel callers cannot deadlock).
var (
	poolOnce  sync.Once
	poolTasks chan func()
)

func pool() chan func() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		poolTasks = make(chan func(), 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for task := range poolTasks {
					task()
				}
			}()
		}
	})
	return poolTasks
}

// ParallelFor splits [0, n) into contiguous chunks of at least minGrain
// iterations and runs body(lo, hi) for each chunk on the shared pool,
// returning when all chunks finish. body must only write state owned by
// its own [lo, hi) range. With one worker, or when n is within a single
// grain, body runs inline on the caller.
func ParallelFor(n, minGrain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minGrain < 1 {
		minGrain = 1
	}
	workers := runtime.GOMAXPROCS(0)
	chunk := (n + workers - 1) / workers
	if chunk < minGrain {
		chunk = minGrain
	}
	if workers == 1 || chunk >= n {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		task := func(lo, hi int) func() {
			return func() {
				defer wg.Done()
				body(lo, hi)
			}
		}(lo, hi)
		select {
		case pool() <- task:
		default:
			task() // queue full: run on the submitter
		}
	}
	wg.Wait()
}

// Work thresholds below which the parallel kernels run their serial
// inner loops: fan-out overhead beats the arithmetic for tiny inputs.
const (
	parallelFlopCutoff = 1 << 14 // per dispatch, roughly a few µs of math
	rowGrain           = 8       // minimum rows per worker chunk
)

// ParallelCholesky computes the same lower-triangular factor as
// Cholesky, bit-identically, parallelizing each column's row updates
// across the shared pool (see the package comment on why the trailing
// update is not right-looking).
func ParallelCholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	var fail bool
	for j := 0; j < n; j++ {
		var diag float64
		ljRow := l.Data[j*n : j*n+j]
		for _, v := range ljRow {
			diag += v * v
		}
		d := m.Data[j*n+j] - diag
		if d <= 0 || math.IsNaN(d) {
			fail = true
			break
		}
		ljj := math.Sqrt(d)
		l.Data[j*n+j] = ljj
		rows := n - (j + 1)
		update := func(lo, hi int) {
			for i := j + 1 + lo; i < j+1+hi; i++ {
				var s float64
				liRow := l.Data[i*n : i*n+j]
				for k, v := range liRow {
					s += v * ljRow[k]
				}
				l.Data[i*n+j] = (m.Data[i*n+j] - s) / ljj
			}
		}
		if rows*j < parallelFlopCutoff {
			update(0, rows)
		} else {
			ParallelFor(rows, rowGrain, update)
		}
	}
	if fail {
		return nil, ErrNotPositiveDefinite
	}
	return l, nil
}

// ParallelMulVec returns m·x, bit-identical to MulVec, with output rows
// partitioned across the pool.
func (m *Matrix) ParallelMulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return m.MulVec(x) // same dimension-mismatch error
	}
	if m.Rows*m.Cols < parallelFlopCutoff {
		return m.MulVec(x)
	}
	y := make([]float64, m.Rows)
	ParallelFor(m.Rows, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = s
		}
	})
	return y, nil
}

// ParallelMul returns m·b, bit-identical to Mul, with output rows
// partitioned across the pool. Each worker's chunk keeps the serial
// kernel's k-major accumulation order per output row, so per-element
// rounding matches exactly; chunking rows also keeps each worker's
// working set (its slice of m and out, streamed rows of b) cache-sized.
func (m *Matrix) ParallelMul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return m.Mul(b) // same dimension-mismatch error
	}
	if m.Rows*m.Cols*b.Cols < parallelFlopCutoff {
		return m.Mul(b)
	}
	out := NewMatrix(m.Rows, b.Cols)
	ParallelFor(m.Rows, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := m.Data[i*m.Cols : (i+1)*m.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for k, a := range arow {
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range brow {
					orow[j] += a * bv
				}
			}
		}
	})
	return out, nil
}
