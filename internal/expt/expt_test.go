package expt

import (
	"bytes"
	"strings"
	"testing"

	"fdw/internal/core"
)

// quickOptions shrinks everything for test speed: one seed, 2% scale.
func quickOptions() Options {
	opt := DefaultOptions()
	opt.Seeds = []uint64{7}
	opt.Scale = 0.02
	return opt
}

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions()
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Options){
		func(o *Options) { o.Seeds = nil },
		func(o *Options) { o.Scale = 0 },
		func(o *Options) { o.Scale = 1.5 },
		func(o *Options) { o.Horizon = 0 },
		func(o *Options) { o.Pool.MatchesPerCycle = 0 },
	}
	for i, mutate := range bad {
		o := DefaultOptions()
		mutate(&o)
		if err := o.validate(); err == nil {
			t.Fatalf("bad options %d accepted", i)
		}
	}
}

func TestScaleN(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 0.5
	if got := o.scaleN(1024); got != 512 {
		t.Fatalf("scaleN = %d", got)
	}
	o.Scale = 0.001
	if got := o.scaleN(1024); got != 16 {
		t.Fatalf("scale floor = %d, want 16", got)
	}
}

func TestFig2ShapeAtSmallScale(t *testing.T) {
	opt := quickOptions()
	var out bytes.Buffer
	opt.Out = &out
	rows, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	// Shape: small-input throughput exceeds full-input at every quantity.
	for i := 0; i < 6; i++ {
		small, full := rows[i], rows[i+6]
		if small.Stations != 2 || full.Stations != 121 {
			t.Fatalf("row layout wrong: %+v %+v", small, full)
		}
		if small.ThroughputJPM <= full.ThroughputJPM {
			t.Fatalf("q=%d: small input %.2f JPM <= full %.2f", small.Waveforms,
				small.ThroughputJPM, full.ThroughputJPM)
		}
		if small.RuntimeH >= full.RuntimeH {
			t.Fatalf("q=%d: small input slower than full", small.Waveforms)
		}
	}
	// Shape: throughput grows with quantity for the small input.
	if rows[5].ThroughputJPM <= rows[0].ThroughputJPM {
		t.Fatalf("small-input throughput did not grow: %.2f → %.2f",
			rows[0].ThroughputJPM, rows[5].ThroughputJPM)
	}
	if !strings.Contains(out.String(), "Fig. 2") {
		t.Fatal("no printed output")
	}
}

func TestFig3ShapeAtSmallScale(t *testing.T) {
	opt := quickOptions()
	opt.Scale = 0.04
	rows, err := Fig3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Per-DAGMan throughput decreases as concurrency increases.
	for i := 1; i < len(rows); i++ {
		if rows[i].ThroughputJPM >= rows[i-1].ThroughputJPM {
			t.Fatalf("per-DAG throughput did not fall: n=%d %.2f vs n=%d %.2f",
				rows[i].DAGMans, rows[i].ThroughputJPM, rows[i-1].DAGMans, rows[i-1].ThroughputJPM)
		}
	}
	// Runtime does not shrink proportionally: at n=8 each DAG has 1/8 the
	// work but takes well over 1/8 the single-DAG runtime.
	if rows[3].RuntimeH < rows[0].RuntimeH/4 {
		t.Fatalf("partitioning helped too much: n=1 %.2fh, n=8 %.2fh",
			rows[0].RuntimeH, rows[3].RuntimeH)
	}
}

func TestFig4CollectsDistributions(t *testing.T) {
	opt := quickOptions()
	opt.Scale = 0.03
	data, err := Fig4(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4 {
		t.Fatalf("%d levels", len(data))
	}
	d1 := data[0]
	if d1.WaveformExecMin.N == 0 || d1.RuptureExecMin.N == 0 {
		t.Fatal("no job distributions collected")
	}
	if d1.PeakRunning <= 0 || d1.PeakInstantJPM <= 0 {
		t.Fatalf("peaks %d / %v", d1.PeakRunning, d1.PeakInstantJPM)
	}
	if len(d1.InstantJPM) == 0 || len(d1.RunningJobs) == 0 {
		t.Fatal("per-second series empty")
	}
	// Sorted series really are sorted.
	for i := 1; i < len(d1.ExecSortedMin); i++ {
		if d1.ExecSortedMin[i] < d1.ExecSortedMin[i-1] {
			t.Fatal("exec series not sorted")
		}
	}
	// §5.2.3 shape: waits grow with concurrency (n=4 vs n=1).
	if data[2].WaveformWaitMin.Mean <= data[0].WaveformWaitMin.Mean {
		t.Logf("warning: n=4 wait %.1f <= n=1 wait %.1f (may happen at tiny scale)",
			data[2].WaveformWaitMin.Mean, data[0].WaveformWaitMin.Mean)
	}
}

func TestFig5SweepShape(t *testing.T) {
	opt := quickOptions()
	opt.Scale = 0.03
	cells, err := Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 2 batches × (1 control + 14 combinations).
	if len(cells) != 2*(1+len(Fig5ProbeTimes)*len(Fig5QueueTimesMin)) {
		t.Fatalf("%d cells", len(cells))
	}
	byBatch := map[string][]Fig5Cell{}
	for _, c := range cells {
		byBatch[c.Batch] = append(byBatch[c.Batch], c)
	}
	for name, cs := range byBatch {
		control := cs[0]
		if !control.Control {
			t.Fatalf("%s: first cell is not the control", name)
		}
		if control.CostUSD != 0 || control.BurstedPct != 0 {
			t.Fatalf("%s: control has bursting side effects", name)
		}
		for _, c := range cs[1:] {
			if c.Control {
				t.Fatal("duplicate control")
			}
			// Bursting never hurts AIT; the Fig. 5 sweep is uncapped.
			if c.AvgJPM < control.AvgJPM-1e-9 {
				t.Fatalf("%s probe %v: AIT %.2f below control %.2f", name, c.ProbeSecs, c.AvgJPM, control.AvgJPM)
			}
			if c.BurstedPct > 100 {
				t.Fatalf("%s probe %v: bursted %.1f%%", name, c.ProbeSecs, c.BurstedPct)
			}
			if c.RuntimeH > control.RuntimeH+1e-9 {
				t.Fatalf("%s probe %v: bursting extended runtime", name, c.ProbeSecs)
			}
		}
		// Shape: the fastest probe bursts at least as much as the slowest.
		probe1 := cs[1]
		probe120 := cs[len(Fig5ProbeTimes)]
		if probe1.ProbeSecs != 1 || probe120.ProbeSecs != 120 {
			t.Fatalf("cell ordering unexpected: %v %v", probe1.ProbeSecs, probe120.ProbeSecs)
		}
		if probe1.BurstedPct < probe120.BurstedPct {
			t.Fatalf("%s: probe 1s bursted %.1f%% < probe 120s %.1f%%", name, probe1.BurstedPct, probe120.BurstedPct)
		}
	}
}

func TestFig5UsageShape(t *testing.T) {
	// §5.3.2: faster probing yields higher VDC usage.
	opt := quickOptions()
	opt.Scale = 0.03
	cells, err := Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, cs := range groupCells(cells) {
		probe1 := cs[1]
		probe120 := cs[len(Fig5ProbeTimes)]
		if probe1.VDCPct < probe120.VDCPct {
			t.Fatalf("%s: probe 1s usage %.1f%% < probe 120s %.1f%%", name, probe1.VDCPct, probe120.VDCPct)
		}
	}
}

func TestFig6CapAndCost(t *testing.T) {
	// §5.3.4: with the 30% cap, bursting stays within the cap and cost
	// stays dollars-scale.
	opt := quickOptions()
	opt.Scale = 0.03
	cells, err := Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.BurstedPct > 30.01 {
			t.Fatalf("%s probe %v: bursted %.1f%% despite 30%% cap", c.Batch, c.ProbeSecs, c.BurstedPct)
		}
		if c.CostUSD < 0 || c.CostUSD > 50 {
			t.Fatalf("%s probe %v: implausible cost $%.2f", c.Batch, c.ProbeSecs, c.CostUSD)
		}
	}
}

func groupCells(cells []Fig5Cell) map[string][]Fig5Cell {
	byBatch := map[string][]Fig5Cell{}
	for _, c := range cells {
		byBatch[c.Batch] = append(byBatch[c.Batch], c)
	}
	return byBatch
}

func TestHeadlineShape(t *testing.T) {
	// The headline speedup needs realistic scale: below ~100 waveforms
	// the serial B-phase floor dominates FDW and the single machine
	// legitimately wins, so run this one at half the paper's size.
	opt := quickOptions()
	opt.Scale = 0.5
	res, err := Headline(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.FDWHours <= 0 || res.BaselineHours <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// Shape: parallel FDW beats the single machine, and throughput grows
	// strongly with quantity.
	if res.DecreasePct <= 0 {
		t.Fatalf("FDW slower than single machine: %+v", res)
	}
	if res.ThroughputGain <= 1.5 {
		t.Fatalf("throughput gain %.2f, want > 1.5", res.ThroughputGain)
	}
}

func TestFig1Products(t *testing.T) {
	prod, err := Fig1(3, 8.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Rupture == nil || len(prod.Waveforms) != 3 {
		t.Fatalf("products %+v", prod)
	}
	if prod.Rupture.ActualMw < 8.0 || prod.Rupture.ActualMw > 8.4 {
		t.Fatalf("rupture Mw %v", prod.Rupture.ActualMw)
	}
	for _, w := range prod.Waveforms {
		if w.PGD() <= 0 {
			t.Fatalf("station %s PGD %v", w.Station, w.PGD())
		}
	}
	if _, err := Fig1(3, 8.2, 0); err == nil {
		t.Fatal("zero stations accepted")
	}
}

func TestMakeBatchTracesDistinct(t *testing.T) {
	opt := quickOptions()
	batches, jobs, err := MakeBatchTraces(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 || len(jobs) != 2 {
		t.Fatalf("%d batches", len(batches))
	}
	if batches[0].Name == batches[1].Name {
		t.Fatal("batches share a name")
	}
	if batches[0].Duration() == batches[1].Duration() {
		t.Fatal("suspiciously identical batch durations for different seeds")
	}
	for i, js := range jobs {
		if len(js) == 0 {
			t.Fatalf("batch %d has no jobs", i)
		}
	}
}

func TestAblationRecycling(t *testing.T) {
	opt := quickOptions()
	rows, err := AblationRecycling(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Regenerating matrices costs an extra job and cannot be faster.
	if rows[1].Jobs != rows[0].Jobs+1 {
		t.Fatalf("jobs %d vs %d, want +1 matrix job", rows[1].Jobs, rows[0].Jobs)
	}
	if rows[1].RuntimeH < rows[0].RuntimeH {
		t.Fatalf("regenerating matrices was faster: %.2f vs %.2f", rows[1].RuntimeH, rows[0].RuntimeH)
	}
}

func TestAblationStash(t *testing.T) {
	opt := quickOptions()
	rows, err := AblationStash(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// All-cold transfers must not beat the cache.
	if rows[1].RuntimeH < rows[0].RuntimeH {
		t.Fatalf("cacheless run faster: %.2f vs %.2f", rows[1].RuntimeH, rows[0].RuntimeH)
	}
}

func TestAblationFanout(t *testing.T) {
	opt := quickOptions()
	rows, err := AblationFanout(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Finer fan-out means more jobs.
	for i := 1; i < len(rows); i++ {
		if rows[i].Jobs >= rows[i-1].Jobs {
			t.Fatalf("fan-out rows not decreasing in jobs: %+v", rows)
		}
	}
}

func TestPolicy3Sweep(t *testing.T) {
	opt := quickOptions()
	opt.Scale = 0.03
	rows, err := Policy3Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgJPM <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
}

func TestElasticComparison(t *testing.T) {
	opt := quickOptions()
	opt.Scale = 0.03
	rows, err := ElasticComparison(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Per batch: elastic should match or beat Policy 1's AIT at the
	// same cadence (it can burst more per probe).
	for i := 0; i < len(rows); i += 2 {
		p1, el := rows[i], rows[i+1]
		if el.AvgJPM < p1.AvgJPM-1e-9 {
			t.Fatalf("%s: elastic AIT %.2f < policy-1 %.2f", p1.Batch, el.AvgJPM, p1.AvgJPM)
		}
	}
}

func TestCalibration16kRegression(t *testing.T) {
	// Full-scale calibration guard: one 16,000-waveform full-input
	// DAGMan must land in the neighborhood the paper reports
	// (§5.2: 14.1 h at 10.7 JPM). Wide bounds — this catches model
	// regressions, not noise.
	opt := DefaultOptions()
	opt.Seeds = []uint64{11}
	cfg := core.DefaultConfig()
	cfg.Waveforms = 16000
	cfg.Name = "calib16k"
	rt, jpm, jobs, err := runOne(opt, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if jobs != 9001 {
		t.Fatalf("job count %d, want 9001", jobs)
	}
	if rt < 7 || rt > 16 {
		t.Fatalf("16k runtime %.2f h outside calibrated band [7, 16]", rt)
	}
	if jpm < 9 || jpm > 22 {
		t.Fatalf("16k throughput %.2f JPM outside calibrated band [9, 22]", jpm)
	}
	// §5.2.3 anchors: waveform exec 15–20 min scale on the reference slot.
	if s := core.WaveformJobSecs(121, 2); s < 900 || s > 1200 {
		t.Fatalf("waveform job model drifted: %v s", s)
	}
}

func TestAblationChurn(t *testing.T) {
	opt := quickOptions()
	rows, err := AblationChurn(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Churn never speeds the workflow up, and both runs complete fully.
	if rows[1].RuntimeH < rows[0].RuntimeH {
		t.Fatalf("churny pool faster: %.2f vs %.2f", rows[1].RuntimeH, rows[0].RuntimeH)
	}
	if rows[0].Jobs != rows[1].Jobs {
		t.Fatalf("job completion differs: %d vs %d", rows[0].Jobs, rows[1].Jobs)
	}
}

// The harness contract for fdwexp -j: any worker count produces
// byte-identical reports, because every simulation owns a private Env
// and results are collected by index before printing.
func TestHarnessOutputIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		opt := quickOptions()
		opt.Scale = 0.03
		opt.Seeds = []uint64{7, 19}
		opt.Workers = workers
		var out bytes.Buffer
		opt.Out = &out
		if _, err := Fig2(opt); err != nil {
			t.Fatal(err)
		}
		if _, err := Fig3(opt); err != nil {
			t.Fatal(err)
		}
		if _, err := Fig4(opt); err != nil {
			t.Fatal(err)
		}
		if _, err := Fig5(opt); err != nil {
			t.Fatal(err)
		}
		if _, err := Headline(opt); err != nil {
			t.Fatal(err)
		}
		if _, err := AblationFanout(opt); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("-j 1 and -j 8 reports differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
	if defaultWorkers := render(0); defaultWorkers != serial {
		t.Fatal("-j 0 (all cores) report differs from -j 1")
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	fig2 := []Fig2Row{{Stations: 2, Waveforms: 100, Jobs: 57, RuntimeH: 0.5, ThroughputJPM: 1.9}}
	if err := WriteFig2CSV(&buf, fig2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "stations,waveforms,jobs") {
		t.Fatalf("fig2 header: %q", buf.String())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("fig2 CSV has %d lines", lines)
	}

	buf.Reset()
	fig3 := []Fig3Row{{DAGMans: 4, WaveformsEach: 4000, RuntimeH: 8.1, ThroughputJPM: 4.7, MakespanH: 8.8}}
	if err := WriteFig3CSV(&buf, fig3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4,4000") {
		t.Fatalf("fig3 CSV: %q", buf.String())
	}

	buf.Reset()
	fig4 := Fig4Data{
		DAGMans:     1,
		InstantJPM:  []core.SeriesPoint{{T: 0, V: 0}, {T: 1, V: 2}},
		RunningJobs: []core.SeriesPoint{{T: 0, V: 1}, {T: 1, V: 3}},
	}
	if err := WriteFig4SeriesCSV(&buf, fig4); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("fig4 CSV has %d lines", lines)
	}

	buf.Reset()
	cells := []Fig5Cell{{Batch: "b1", Control: true, AvgJPM: 11.5}, {Batch: "b1", ProbeSecs: 1, MaxQueueM: 90, AvgJPM: 28.5}}
	if err := WriteFig5CSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "b1,1,") || !strings.Contains(buf.String(), "b1,0,") {
		t.Fatalf("fig5 CSV control flags: %q", buf.String())
	}

	buf.Reset()
	if err := WriteSeriesCSV(&buf, "jpm", []core.SeriesPoint{{T: 5, V: 1.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "second,jpm") {
		t.Fatalf("series CSV: %q", buf.String())
	}
}
