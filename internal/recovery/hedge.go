package recovery

import (
	"math"
	"sort"

	"fdw/internal/htcondor"
	"fdw/internal/sim"
)

// Straggler hedging watches each schedd's job events. Jobs submitted
// together (one cluster = one DAGMan node) are siblings; once enough
// siblings have completed, any sibling still running past
// Multiplier × the Quantile sibling runtime gets a speculative clone
// under a fresh cluster id. The first finisher wins: a winning clone's
// result is grafted onto the original (AdoptResult), a losing clone is
// cancelled (Remove / CancelClaim + AbortRunning). DAGMan accounts
// nodes by cluster id, so clones are invisible to it — only the
// original's terminal event reaches node bookkeeping.

type clusterRef struct {
	schedd  *htcondor.Schedd
	cluster int
}

type clusterStats struct {
	jobs     []*htcondor.Job
	runtimes []float64 // successful sibling attempt runtimes, append order
}

type hedgeState struct {
	clusters     map[clusterRef]*clusterStats
	cloneOf      map[*htcondor.Job]*htcondor.Job // clone → original
	clones       map[*htcondor.Job]*htcondor.Job // original → live clone
	adopted      map[*htcondor.Job]bool          // originals completed via AdoptResult
	pendingCheck map[*htcondor.Job]bool          // originals with a scheduled straggler check
}

func newHedgeState() hedgeState {
	return hedgeState{
		clusters:     map[clusterRef]*clusterStats{},
		cloneOf:      map[*htcondor.Job]*htcondor.Job{},
		clones:       map[*htcondor.Job]*htcondor.Job{},
		adopted:      map[*htcondor.Job]bool{},
		pendingCheck: map[*htcondor.Job]bool{},
	}
}

// quantileOf returns the q-quantile of xs (xs is copied, not mutated).
func quantileOf(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// onJobEvent is the hedging listener, subscribed per schedd by Attach
// when hedging is enabled.
func (r *Policy) onJobEvent(s *htcondor.Schedd, j *htcondor.Job, ev htcondor.EventType) {
	switch ev {
	case htcondor.EventSubmit:
		if r.hedge.cloneOf[j] != nil {
			return // clones are not hedge candidates themselves
		}
		ref := clusterRef{s, j.Cluster}
		cs := r.hedge.clusters[ref]
		if cs == nil {
			cs = &clusterStats{}
			r.hedge.clusters[ref] = cs
		}
		cs.jobs = append(cs.jobs, j)
	case htcondor.EventExecute:
		if r.hedge.cloneOf[j] == nil {
			r.scheduleCheck(s, j)
		}
	case htcondor.EventTerminated:
		if r.hedge.cloneOf[j] != nil {
			r.resolveClone(s, j)
			return
		}
		r.cancelClone(s, j)
		if j.ExitCode == 0 && !r.hedge.adopted[j] {
			if cs := r.hedge.clusters[clusterRef{s, j.Cluster}]; cs != nil {
				cs.runtimes = append(cs.runtimes, float64(j.EndTime-j.StartTime))
				// A fresh sibling runtime may arm checks for still-running
				// siblings that had none scheduled.
				for _, sib := range cs.jobs {
					if sib.Status == htcondor.Running {
						r.scheduleCheck(s, sib)
					}
				}
			}
		}
	case htcondor.EventAborted:
		if r.hedge.cloneOf[j] != nil {
			// A clone aborted by someone other than us (we delete the
			// mapping before cancelling): treat as a resolved loss.
			orig := r.hedge.cloneOf[j]
			delete(r.hedge.cloneOf, j)
			if r.hedge.clones[orig] == j {
				delete(r.hedge.clones, orig)
			}
			return
		}
		r.cancelClone(s, j)
	}
}

// scheduleCheck arms a straggler check for a running original, once
// enough siblings have finished to define the threshold.
func (r *Policy) scheduleCheck(s *htcondor.Schedd, j *htcondor.Job) {
	h := r.cfg.Hedge
	if r.hedge.pendingCheck[j] || r.hedge.clones[j] != nil {
		return
	}
	cs := r.hedge.clusters[clusterRef{s, j.Cluster}]
	if cs == nil || len(cs.runtimes) < h.MinSiblings || len(cs.jobs) < 2 {
		return
	}
	threshold := quantileOf(cs.runtimes, h.Quantile) * h.Multiplier
	due := j.StartTime + sim.Time(threshold)
	now := r.kernel.Now()
	if due < now {
		due = now
	}
	r.hedge.pendingCheck[j] = true
	r.kernel.At(due, func() { r.checkStraggler(s, j) })
}

// checkStraggler fires at the straggler threshold: if the original is
// still running the same attempt past the (possibly updated) threshold,
// hedge it; if the threshold moved out, re-arm.
func (r *Policy) checkStraggler(s *htcondor.Schedd, j *htcondor.Job) {
	delete(r.hedge.pendingCheck, j)
	if j.Status != htcondor.Running || r.hedge.clones[j] != nil {
		return
	}
	h := r.cfg.Hedge
	cs := r.hedge.clusters[clusterRef{s, j.Cluster}]
	if cs == nil || len(cs.runtimes) < h.MinSiblings {
		return
	}
	threshold := quantileOf(cs.runtimes, h.Quantile) * h.Multiplier
	now := r.kernel.Now()
	if float64(now-j.StartTime) < threshold-1e-9 {
		// Threshold grew (or the attempt restarted): try again later.
		r.hedge.pendingCheck[j] = true
		r.kernel.At(j.StartTime+sim.Time(threshold), func() { r.checkStraggler(s, j) })
		return
	}
	r.hedgeNow(s, j)
}

// hedgeNow submits the speculative clone for a straggling original.
func (r *Policy) hedgeNow(s *htcondor.Schedd, orig *htcondor.Job) {
	clone := &htcondor.Job{
		Owner:           orig.Owner,
		Executable:      orig.Executable,
		Arguments:       orig.Arguments,
		RequestCpus:     orig.RequestCpus,
		RequestMemoryMB: orig.RequestMemoryMB,
		RequestDiskMB:   orig.RequestDiskMB,
		Requirements:    orig.Requirements,
		Attrs:           orig.Attrs,
		InputBytes:      orig.InputBytes,
		OutputBytes:     orig.OutputBytes,
		InputKey:        orig.InputKey,
		BaseExecSeconds: orig.BaseExecSeconds,
		// A clone gets no retry budget: it exists to race the original,
		// not to grind through failures of its own.
		MaxRetries: 0,
	}
	r.hedge.cloneOf[clone] = orig
	if _, err := s.Submit([]*htcondor.Job{clone}); err != nil {
		// Submission refused (e.g. an injected submit fault): forget the
		// clone; the original keeps running.
		delete(r.hedge.cloneOf, clone)
		r.stats.HedgeSubmitErrors++
		return
	}
	r.hedge.clones[orig] = clone
	r.stats.HedgesSubmitted++
	if r.obs != nil {
		r.obs.Counter("fdw_recovery_hedges_submitted_total").Inc()
	}
}

// resolveClone handles a clone's terminal event: a clean finish while
// the original is still unfinished is a win (graft the result); any
// other ending is a loss.
func (r *Policy) resolveClone(s *htcondor.Schedd, clone *htcondor.Job) {
	orig := r.hedge.cloneOf[clone]
	if orig == nil {
		return
	}
	delete(r.hedge.cloneOf, clone)
	if r.hedge.clones[orig] == clone {
		delete(r.hedge.clones, orig)
	}
	if clone.ExitCode == 0 && (orig.Status == htcondor.Running || orig.Status == htcondor.Idle) {
		if orig.Status == htcondor.Running {
			r.pool.CancelClaim(orig)
		}
		r.hedge.adopted[orig] = true
		if err := s.AdoptResult(orig, 0); err == nil {
			r.stats.HedgeWins++
			if r.obs != nil {
				r.obs.Counter("fdw_recovery_hedge_wins_total").Inc()
			}
			return
		}
		delete(r.hedge.adopted, orig)
	}
	r.stats.HedgeLosses++
	if r.obs != nil {
		r.obs.Counter("fdw_recovery_hedge_losses_total").Inc()
	}
}

// cancelClone tears down an original's live clone after the original
// reached a terminal state first (the clone lost the race).
func (r *Policy) cancelClone(s *htcondor.Schedd, orig *htcondor.Job) {
	clone := r.hedge.clones[orig]
	if clone == nil {
		return
	}
	delete(r.hedge.clones, orig)
	delete(r.hedge.cloneOf, clone)
	switch clone.Status {
	case htcondor.Running:
		r.pool.CancelClaim(clone)
		_ = s.AbortRunning(clone)
	case htcondor.Idle:
		_ = s.Remove(clone)
	}
	r.stats.HedgeLosses++
	if r.obs != nil {
		r.obs.Counter("fdw_recovery_hedge_losses_total").Inc()
	}
}
