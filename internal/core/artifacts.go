package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"fdw/internal/core/atomicfile"
	"fdw/internal/htcondor"
)

// WriteArtifacts materializes the workflow as the on-disk artifacts a
// real FDW run submits to HTCondor: an fdw.dag DAGMan file plus one
// submit-description file per phase, with the work model's resource
// requests and +FDW* attributes. The files round-trip through this
// repository's own DAGMan and submit-file parsers, so they double as
// golden fixtures. Each file is written atomically (temp + rename):
// condor_submit_dag on a half-written DAG would submit a half DAG.
func WriteArtifacts(cfg Config, dir string) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d, err := BuildDAG(cfg)
	if err != nil {
		return err
	}
	if err := atomicfile.WriteFile(filepath.Join(dir, "fdw.dag"), d.Write); err != nil {
		return err
	}
	_, aJobs, bJobs, cJobs, _ := cfg.JobCounts()
	phases := []struct {
		file  string
		phase Phase
		n     int
		secs  float64
	}{
		{"fdw_matrices.sub", PhaseMatrix, 1, MatrixJobSecs()},
		{"fdw_phase_a.sub", PhaseA, aJobs, RuptureJobSecs(cfg.RupturesPerJob)},
		{"fdw_phase_b.sub", PhaseB, bJobs, GFJobSecs(cfg.Stations)},
		{"fdw_phase_c.sub", PhaseC, cJobs, WaveformJobSecs(cfg.Stations, cfg.WaveformsPerJob)},
	}
	for _, p := range phases {
		sf := &htcondor.SubmitFile{
			Commands: map[string]string{
				"universe":       "vanilla",
				"executable":     fmt.Sprintf("fdw_phase_%s.sh", p.phase),
				"arguments":      fmt.Sprintf("--batch %s --task $(Process)", cfg.Name),
				"request_cpus":   "4",
				"request_memory": "8GB",
				"request_disk":   "16GB",
				"requirements":   `(TARGET.HasSingularity == true)`,
				"log":            cfg.Name + ".log",
			},
			Plus: map[string]string{
				"FDWPhase":       strconv.Quote(string(p.phase)),
				"FDWExecSeconds": strconv.FormatFloat(p.secs, 'f', 0, 64),
			},
			QueueN: p.n,
		}
		if err := atomicfile.WriteFile(filepath.Join(dir, p.file), sf.Write); err != nil {
			return err
		}
	}
	return atomicfile.WriteFile(filepath.Join(dir, "fdw.cfg"), func(w io.Writer) error {
		return WriteConfig(w, cfg)
	})
}
