package fdw_test

// One benchmark per table/figure in the paper's evaluation (see
// DESIGN.md §4). Each bench regenerates its figure at a reduced scale
// so the full suite runs in seconds; `go run ./cmd/fdwexp -scale 1 all`
// regenerates the paper-scale numbers recorded in EXPERIMENTS.md.

import (
	"testing"

	"fdw"
)

// benchOptions shrinks the workloads: one repetition, 3% scale.
func benchOptions() fdw.ExperimentOptions {
	opt := fdw.DefaultExperimentOptions()
	opt.Seeds = []uint64{11}
	opt.Scale = 0.03
	return opt
}

// BenchmarkFig1RuptureWaveform generates the Fig. 1 data products with
// the real numeric kernels: a stochastic rupture and GNSS waveforms.
func BenchmarkFig1RuptureWaveform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fdw.Fig1(uint64(i+1), 8.1, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2QuantitySweep reruns the increasing-quantities
// experiment: six waveform quantities × two station lists.
func BenchmarkFig2QuantitySweep(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Fig2(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ConcurrentDAGMans reruns the 1/2/4/8 concurrent-DAGMan
// partitioning comparison.
func BenchmarkFig3ConcurrentDAGMans(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Fig3(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4JobTimeSeries reruns the per-job execution/wait
// distribution and per-second footprint collection.
func BenchmarkFig4JobTimeSeries(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Fig4(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Bursting reruns the uncapped probe×queue bursting sweep
// over two generated batch traces.
func BenchmarkFig5Bursting(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Fig5(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6BurstingCost reruns the sweep with the 30% cap — the
// Fig. 6 cost/runtime comparison.
func BenchmarkFig6BurstingCost(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Fig6(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadlineSpeedup reruns the §6 FDW-vs-single-machine
// comparison and the 1,024→50,000 throughput gain.
func BenchmarkHeadlineSpeedup(b *testing.B) {
	opt := benchOptions()
	opt.Scale = 0.1
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Headline(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkflow16k measures one full-scale 16,000-waveform DAGMan
// on the simulated pool — the unit of the paper's §4.2 experiment —
// to document simulator throughput (simulated hours per wall second).
func BenchmarkWorkflow16k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, err := fdw.NewEnv(uint64(31+i), fdw.DefaultPoolConfig())
		if err != nil {
			b.Fatal(err)
		}
		cfg := fdw.DefaultConfig()
		cfg.Name = "bench16k"
		cfg.Waveforms = 16000
		cfg.Seed = uint64(31 + i)
		w, err := fdw.NewWorkflow(cfg, env, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := fdw.RunBatch(env, []*fdw.Workflow{w}, 1000*3600); err != nil {
			b.Fatal(err)
		}
	}
}
