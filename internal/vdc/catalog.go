// Package vdc models the Virtual Data Collaboratory's data services
// (Parashar et al. 2020): a federated catalog where FDW deposits its
// AI-ready synthetic data products, curates them with metadata and
// tags, and serves them to EEW researchers (the paper's Fig. 7
// pipeline). It offers an in-process catalog, an HTTP API (portal),
// and access tracking for "intelligent data delivery" prefetch hints.
package vdc

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// ProductType classifies FDW data products.
type ProductType string

// Product types stored in the catalog.
const (
	TypeRupture  ProductType = "rupture"
	TypeGF       ProductType = "greens-functions"
	TypeWaveform ProductType = "waveform"
	TypeArchive  ProductType = "archive"
)

func validType(t ProductType) bool {
	switch t {
	case TypeRupture, TypeGF, TypeWaveform, TypeArchive:
		return true
	}
	return false
}

// Product is one curated data product.
type Product struct {
	ID          string      `json:"id"`
	Name        string      `json:"name"`
	Type        ProductType `json:"type"`
	Batch       string      `json:"batch"`  // originating FDW batch
	Region      string      `json:"region"` // e.g. "chile"
	Mw          float64     `json:"mw,omitempty"`
	SizeBytes   int64       `json:"size_bytes"`
	Description string      `json:"description,omitempty"`
	Tags        []string    `json:"tags,omitempty"`
	Accesses    int64       `json:"accesses"`
}

// HasTag reports whether p carries the tag (case-insensitive).
func (p *Product) HasTag(tag string) bool {
	for _, t := range p.Tags {
		if strings.EqualFold(t, tag) {
			return true
		}
	}
	return false
}

// Query filters catalog searches; zero values match everything.
type Query struct {
	Type   ProductType
	Batch  string
	Region string
	Tag    string
	MinMw  float64
	MaxMw  float64
	Text   string // substring of name or description
}

func (q Query) matches(p *Product) bool {
	if q.Type != "" && p.Type != q.Type {
		return false
	}
	if q.Batch != "" && !strings.EqualFold(q.Batch, p.Batch) {
		return false
	}
	if q.Region != "" && !strings.EqualFold(q.Region, p.Region) {
		return false
	}
	if q.Tag != "" && !p.HasTag(q.Tag) {
		return false
	}
	if q.MinMw > 0 && p.Mw < q.MinMw {
		return false
	}
	if q.MaxMw > 0 && p.Mw > q.MaxMw {
		return false
	}
	if q.Text != "" {
		t := strings.ToLower(q.Text)
		if !strings.Contains(strings.ToLower(p.Name), t) &&
			!strings.Contains(strings.ToLower(p.Description), t) {
			return false
		}
	}
	return true
}

// Catalog is a thread-safe product store.
type Catalog struct {
	mu       sync.RWMutex
	products map[string]*Product
	nextID   int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{products: map[string]*Product{}}
}

// Deposit validates and stores a product, assigning its ID.
func (c *Catalog) Deposit(p Product) (string, error) {
	if p.Name == "" {
		return "", fmt.Errorf("vdc: product needs a name")
	}
	if !validType(p.Type) {
		return "", fmt.Errorf("vdc: unknown product type %q", p.Type)
	}
	if p.SizeBytes < 0 {
		return "", fmt.Errorf("vdc: negative size")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	p.ID = fmt.Sprintf("vdc-%06d", c.nextID)
	p.Accesses = 0
	c.products[p.ID] = &p
	return p.ID, nil
}

// Get retrieves a product and counts the access (retrieval telemetry
// feeds the prefetcher).
func (c *Catalog) Get(id string) (Product, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.products[id]
	if !ok {
		return Product{}, fmt.Errorf("vdc: no product %q", id)
	}
	p.Accesses++
	return *p, nil
}

// Delete removes a product.
func (c *Catalog) Delete(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.products[id]; !ok {
		return fmt.Errorf("vdc: no product %q", id)
	}
	delete(c.products, id)
	return nil
}

// Tag appends tags to a product (duplicates ignored, case-insensitive).
func (c *Catalog) Tag(id string, tags ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.products[id]
	if !ok {
		return fmt.Errorf("vdc: no product %q", id)
	}
	for _, t := range tags {
		t = strings.TrimSpace(t)
		if t == "" || p.HasTag(t) {
			continue
		}
		p.Tags = append(p.Tags, t)
	}
	return nil
}

// Search returns matching products ordered by ID. It does not count
// accesses (discovery is free; retrieval is what the prefetcher
// learns from).
func (c *Catalog) Search(q Query) []Product {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Product
	for _, p := range c.products {
		if q.matches(p) {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of products.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.products)
}

// Popular returns the n most-retrieved products — the "intelligent
// data delivery" prefetch hint set (Qin et al. 2022).
func (c *Catalog) Popular(n int) []Product {
	c.mu.RLock()
	defer c.mu.RUnlock()
	all := make([]Product, 0, len(c.products))
	for _, p := range c.products {
		all = append(all, *p)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Accesses != all[j].Accesses {
			return all[i].Accesses > all[j].Accesses
		}
		return all[i].ID < all[j].ID
	})
	if n > len(all) {
		n = len(all)
	}
	if n < 0 {
		n = 0
	}
	return all[:n]
}

// Save serializes the catalog as JSON (products sorted by ID), so a
// portal restart preserves the curated collection.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	all := make([]*Product, 0, len(c.products))
	for _, p := range c.products {
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	state := catalogState{NextID: c.nextID, Products: all}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(state)
}

// LoadCatalog restores a catalog written by Save.
func LoadCatalog(r io.Reader) (*Catalog, error) {
	var state catalogState
	if err := json.NewDecoder(r).Decode(&state); err != nil {
		return nil, fmt.Errorf("vdc: loading catalog: %w", err)
	}
	c := NewCatalog()
	c.nextID = state.NextID
	for _, p := range state.Products {
		if p == nil || p.ID == "" || !validType(p.Type) {
			return nil, fmt.Errorf("vdc: corrupt catalog entry %+v", p)
		}
		c.products[p.ID] = p
	}
	return c, nil
}

type catalogState struct {
	NextID   int        `json:"next_id"`
	Products []*Product `json:"products"`
}
