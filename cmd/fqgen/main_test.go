package main

import (
	"os"
	"path/filepath"
	"testing"

	"fdw"
)

func TestFqgenWritesProducts(t *testing.T) {
	dir := t.TempDir()
	if err := run(8.1, 2, 5, dir, ""); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"rupture.csv", "waveforms.mseed"} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

func TestFqgenNoOutputDir(t *testing.T) {
	if err := run(8.0, 1, 1, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestFqgenRejectsBadMagnitude(t *testing.T) {
	if err := run(5.0, 2, 1, "", ""); err == nil {
		t.Fatal("Mw 5 accepted")
	}
}

// TestFqgenGFCacheRecycles exercises the -gfcache path end to end: the
// second run with the same geometry must reuse the persisted kernels
// and still produce byte-identical products.
func TestFqgenGFCacheRecycles(t *testing.T) {
	defer fdw.EnableGFCache("")
	cache := t.TempDir()
	out1, out2 := t.TempDir(), t.TempDir()
	if err := run(8.1, 2, 5, out1, cache); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(cache, "greens_*.npy"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("cache holds %d greens files (%v), want 1", len(matches), err)
	}
	if err := run(8.1, 2, 5, out2, cache); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"rupture.csv", "waveforms.mseed"} {
		a, err := os.ReadFile(filepath.Join(out1, f))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(out2, f))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between cold and warm gfcache runs", f)
		}
	}
}
