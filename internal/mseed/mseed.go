// Package mseed implements a simplified miniSEED-style codec for the
// GNSS displacement time series that FakeQuakes produces. MudPy ships
// Green's functions and waveforms as .mseed; FDW's Phase B/C outputs and
// the Stash-cache transfer model work on real encoded record sizes from
// this package.
//
// Layout (all integers little-endian; this is a reduced, self-describing
// variant of the fixed-header + data-record structure of miniSEED):
//
//	magic   [4]byte  "FQMS"
//	version uint16   (1)
//	nrec    uint32   record count
//	records:
//	  netLen  uint8, network  []byte
//	  staLen  uint8, station  []byte
//	  chaLen  uint8, channel  []byte
//	  start   float64 seconds since rupture origin
//	  dt      float64 sample interval (s)
//	  nsamp   uint32
//	  samples []float64
package mseed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Record is one channel of one station's time series.
type Record struct {
	Network string
	Station string
	Channel string // e.g. "LXE", "LXN", "LXZ" for GNSS displacement
	Start   float64
	Dt      float64
	Samples []float64
}

// Duration returns the record's covered time span in seconds.
func (r *Record) Duration() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	return float64(len(r.Samples)-1) * r.Dt
}

var magic = [4]byte{'F', 'Q', 'M', 'S'}

// ErrCorrupt reports a structurally invalid stream.
var ErrCorrupt = errors.New("mseed: corrupt stream")

const maxSamples = 1 << 28 // sanity bound against corrupt lengths

// Write encodes records to w.
func Write(w io.Writer, records []Record) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	head := make([]byte, 6)
	binary.LittleEndian.PutUint16(head[0:], 1)
	binary.LittleEndian.PutUint32(head[2:], uint32(len(records)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	for i := range records {
		if err := writeRecord(w, &records[i]); err != nil {
			return fmt.Errorf("mseed: record %d: %w", i, err)
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 255 {
		return fmt.Errorf("identifier %q too long", s)
	}
	if _, err := w.Write([]byte{byte(len(s))}); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeRecord(w io.Writer, r *Record) error {
	for _, s := range []string{r.Network, r.Station, r.Channel} {
		if err := writeString(w, s); err != nil {
			return err
		}
	}
	fixed := make([]byte, 20)
	binary.LittleEndian.PutUint64(fixed[0:], math.Float64bits(r.Start))
	binary.LittleEndian.PutUint64(fixed[8:], math.Float64bits(r.Dt))
	binary.LittleEndian.PutUint32(fixed[16:], uint32(len(r.Samples)))
	if _, err := w.Write(fixed); err != nil {
		return err
	}
	buf := make([]byte, 8*len(r.Samples))
	for i, v := range r.Samples {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// Read decodes a stream written by Write.
func Read(r io.Reader) ([]Record, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("%w: short magic", ErrCorrupt)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, m[:])
	}
	head := make([]byte, 6)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(head[0:]); v != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	n := binary.LittleEndian.Uint32(head[2:])
	records := make([]Record, 0, min(int(n), 4096))
	for i := uint32(0); i < n; i++ {
		rec, err := readRecord(r)
		if err != nil {
			return nil, fmt.Errorf("mseed: record %d: %w", i, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

func readString(r io.Reader) (string, error) {
	var l [1]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return "", fmt.Errorf("%w: short identifier length", ErrCorrupt)
	}
	buf := make([]byte, l[0])
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: short identifier", ErrCorrupt)
	}
	return string(buf), nil
}

func readRecord(r io.Reader) (Record, error) {
	var rec Record
	var err error
	if rec.Network, err = readString(r); err != nil {
		return rec, err
	}
	if rec.Station, err = readString(r); err != nil {
		return rec, err
	}
	if rec.Channel, err = readString(r); err != nil {
		return rec, err
	}
	fixed := make([]byte, 20)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return rec, fmt.Errorf("%w: short record header", ErrCorrupt)
	}
	rec.Start = math.Float64frombits(binary.LittleEndian.Uint64(fixed[0:]))
	rec.Dt = math.Float64frombits(binary.LittleEndian.Uint64(fixed[8:]))
	nsamp := binary.LittleEndian.Uint32(fixed[16:])
	if nsamp > maxSamples {
		return rec, fmt.Errorf("%w: implausible sample count %d", ErrCorrupt, nsamp)
	}
	buf := make([]byte, 8*int(nsamp))
	if _, err := io.ReadFull(r, buf); err != nil {
		return rec, fmt.Errorf("%w: short samples", ErrCorrupt)
	}
	rec.Samples = make([]float64, nsamp)
	for i := range rec.Samples {
		rec.Samples[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return rec, nil
}

// EncodedSize returns the exact byte size Write would produce, without
// encoding. The Stash-cache model uses it to price transfers.
func EncodedSize(records []Record) int64 {
	size := int64(4 + 6)
	for i := range records {
		r := &records[i]
		size += int64(3 + len(r.Network) + len(r.Station) + len(r.Channel))
		size += 20 + 8*int64(len(r.Samples))
	}
	return size
}
