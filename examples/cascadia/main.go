// Cascadia: the paper's first future-work item — "experimenting with
// regions beyond Chile". The FakeQuakes pipeline is region-agnostic:
// swap the Slab2-style geometry and station network for the Cascadia
// subduction zone (the megathrust MudPy's rupture machinery was first
// built for) and run the same rupture → Green's functions → waveform
// chain, then compare source properties against a Chilean event of the
// same magnitude.
//
//	go run ./examples/cascadia
package main

import (
	"fmt"
	"log"

	"fdw/internal/fakequakes"
	"fdw/internal/geom"
	"fdw/internal/sim"
)

func runRegion(name string, faultCfg geom.ChileFaultConfig, stations []geom.Station, mw float64) {
	faultCfg.SubfaultKm = 20 // coarse demo mesh
	fault, err := geom.BuildFault(faultCfg)
	if err != nil {
		log.Fatal(err)
	}
	dist := fakequakes.ComputeDistanceMatrices(fault, stations)
	gen, err := fakequakes.NewGenerator(fault, dist)
	if err != nil {
		log.Fatal(err)
	}
	rng := sim.NewRNG(17)
	r, err := gen.GenerateMw("run000001", mw, rng)
	if err != nil {
		log.Fatal(err)
	}
	gf, err := fakequakes.ComputeGreens(fault, stations, dist, fakequakes.DefaultGFConfig())
	if err != nil {
		log.Fatal(err)
	}
	wfs, err := fakequakes.SynthesizeWaveforms(r, gf, fakequakes.DefaultNoise(), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s mesh %d×%d (%d subfaults), dip %.0f–%.0f°\n",
		name, fault.NAlong, fault.NDown, fault.NumSubfaults(),
		faultCfg.DipShallowDeg, faultCfg.DipDeepDeg)
	fmt.Printf("  rupture Mw %.2f: %d slipping subfaults, max slip %.1f m, duration %.0f s\n",
		r.ActualMw, len(r.Patch), r.MaxSlip(), r.Duration())
	var peak float64
	var peakSta string
	for _, w := range wfs {
		if p := w.PGD(); p > peak {
			peak, peakSta = p, w.Station
		}
	}
	fmt.Printf("  peak ground displacement %.2f m at %s (%d stations)\n\n", peak, peakSta, len(stations))
}

func main() {
	const mw = 8.8
	fmt.Printf("same FakeQuakes pipeline, two subduction zones, target Mw %.1f:\n\n", mw)
	runRegion("chile", geom.DefaultChileFault(), geom.FullChileanStations()[:6], mw)
	runRegion("cascadia", geom.DefaultCascadiaFault(), geom.CascadiaStations(6), mw)
	fmt.Println("Cascadia's shallower dip spreads the same moment over a wider, shallower")
	fmt.Println("patch — the regional geometry, not the pipeline, sets the source character.")
}
