#include "textflag.h"

// func kern4x8asm(kc int, a *float64, lda int, b *float64, c *float64, ldc int)
//
// 4×8 GEMM micro-tile: c += a·b for a 4×kc A window (row stride lda),
// a packed kc×8 B tile (unit k-major stride), and a 4×8 C window (row
// stride ldc). The eight accumulators live in Y0–Y7 for the whole k
// loop; per k, one 8-wide B row load and four broadcast-A FMAs. Each C
// element sees one VFMADD231PD per k in increasing k order — a single
// rounding per term, exactly math.FMA — which is the bit-determinism
// contract blocked_test.go pins against goKern4x8.
TEXT ·kern4x8asm(SB), NOSPLIT, $0-48
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ lda+16(FP), R8
	SHLQ $3, R8            // row stride in bytes
	MOVQ b+24(FP), DI
	MOVQ c+32(FP), DX
	MOVQ ldc+40(FP), R10
	SHLQ $3, R10

	// Load the 4×8 C tile: two ymm halves per row.
	MOVQ DX, BX
	VMOVUPD (BX), Y0
	VMOVUPD 32(BX), Y1
	ADDQ R10, BX
	VMOVUPD (BX), Y2
	VMOVUPD 32(BX), Y3
	ADDQ R10, BX
	VMOVUPD (BX), Y4
	VMOVUPD 32(BX), Y5
	ADDQ R10, BX
	VMOVUPD (BX), Y6
	VMOVUPD 32(BX), Y7

	// A row pointers for the four tile rows.
	LEAQ (SI)(R8*1), R12
	LEAQ (R12)(R8*1), R13
	LEAQ (R13)(R8*1), AX

loop:
	VMOVUPD (DI), Y8       // B[k][0:4]
	VMOVUPD 32(DI), Y9     // B[k][4:8]
	VBROADCASTSD (SI), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	VBROADCASTSD (R12), Y11
	VFMADD231PD Y8, Y11, Y2
	VFMADD231PD Y9, Y11, Y3
	VBROADCASTSD (R13), Y12
	VFMADD231PD Y8, Y12, Y4
	VFMADD231PD Y9, Y12, Y5
	VBROADCASTSD (AX), Y13
	VFMADD231PD Y8, Y13, Y6
	VFMADD231PD Y9, Y13, Y7
	ADDQ $8, SI
	ADDQ $8, R12
	ADDQ $8, R13
	ADDQ $8, AX
	ADDQ $64, DI           // packed B: 8 float64 per k
	DECQ CX
	JNZ  loop

	MOVQ DX, BX
	VMOVUPD Y0, (BX)
	VMOVUPD Y1, 32(BX)
	ADDQ R10, BX
	VMOVUPD Y2, (BX)
	VMOVUPD Y3, 32(BX)
	ADDQ R10, BX
	VMOVUPD Y4, (BX)
	VMOVUPD Y5, 32(BX)
	ADDQ R10, BX
	VMOVUPD Y6, (BX)
	VMOVUPD Y7, 32(BX)
	VZEROUPPER
	RET

// func cpuHasAVX2FMA() bool
//
// CPUID.1:ECX must report FMA, OSXSAVE and AVX; XGETBV(0) must show
// the OS saving xmm+ymm state; CPUID.(7,0):EBX must report AVX2. Any
// AVX-capable CPU implements leaf 7, so no max-leaf probe is needed.
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<12 | 1<<27 | 1<<28), R8
	CMPL R8, $(1<<12 | 1<<27 | 1<<28)
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX            // XCR0: SSE (bit 1) and AVX (bit 2) state
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX       // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
