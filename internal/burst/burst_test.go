package burst

import (
	"bytes"
	"strings"
	"testing"

	"fdw/internal/wtrace"
)

// syntheticTrace builds a batch of nWave waveform jobs submitted in
// waves with long waits, so bursting has something to improve.
// Jobs are submitted every gapS seconds, wait waitS, run execS.
func syntheticTrace(nWave int, gapS, waitS, execS float64) (wtrace.BatchRecord, []wtrace.JobRecord) {
	var jobs []wtrace.JobRecord
	for i := 0; i < nWave; i++ {
		submit := float64(i) * gapS
		start := submit + waitS
		jobs = append(jobs, wtrace.JobRecord{
			ID:     "1." + string(rune('0'+i%10)) + "x",
			Class:  wtrace.ClassWaveform,
			Submit: submit,
			Start:  start,
			End:    start + execS,
		})
	}
	last := jobs[len(jobs)-1]
	batch := wtrace.BatchRecord{
		Name:   "synthetic",
		Submit: 0,
		Start:  jobs[0].Start,
		End:    last.End,
	}
	return batch, jobs
}

func TestControlReplayMatchesTrace(t *testing.T) {
	batch, jobs := syntheticTrace(20, 30, 600, 900)
	res, err := Simulate(batch, jobs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Control {
		t.Fatal("no-policy run not flagged as control")
	}
	if res.BurstedJobs != 0 || res.CostUSD != 0 {
		t.Fatalf("control bursted %d jobs, cost $%v", res.BurstedJobs, res.CostUSD)
	}
	if res.RuntimeSecs != batch.Duration() {
		t.Fatalf("control runtime %v, want %v", res.RuntimeSecs, batch.Duration())
	}
	if res.CompletedOSG != 20 || res.CompletedVDC != 0 {
		t.Fatalf("completions OSG %d VDC %d", res.CompletedOSG, res.CompletedVDC)
	}
	if res.AvgInstantJPM <= 0 || res.MaxInstantJPM < res.AvgInstantJPM {
		t.Fatalf("instant stats: avg %v max %v", res.AvgInstantJPM, res.MaxInstantJPM)
	}
	if res.MinInstantJPM != 0 {
		t.Fatalf("min instant %v, want 0 (before first completion)", res.MinInstantJPM)
	}
}

func TestPolicy1BurstsOnLowThroughput(t *testing.T) {
	batch, jobs := syntheticTrace(40, 60, 1800, 900)
	cfg := DefaultConfig()
	cfg.P1 = &Policy1{ProbeSecs: 10, ThresholdJPM: 34}
	res, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BurstedJobs == 0 {
		t.Fatal("Policy 1 never bursted despite low throughput")
	}
	if res.BurstedPct > 30.01 {
		t.Fatalf("bursted %.1f%%, cap is 30%%", res.BurstedPct)
	}
	if res.CompletedVDC != res.BurstedJobs {
		t.Fatalf("VDC completions %d != bursted %d", res.CompletedVDC, res.BurstedJobs)
	}
	if res.CostUSD <= 0 || res.VDCMinutes <= 0 {
		t.Fatal("bursting without cost")
	}
	control, err := Simulate(batch, jobs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgInstantJPM <= control.AvgInstantJPM {
		t.Fatalf("bursting AIT %v <= control %v", res.AvgInstantJPM, control.AvgInstantJPM)
	}
	if res.RuntimeSecs > control.RuntimeSecs {
		t.Fatalf("bursting runtime %v > control %v", res.RuntimeSecs, control.RuntimeSecs)
	}
}

func TestPolicy1FasterProbeBurstsMore(t *testing.T) {
	batch, jobs := syntheticTrace(60, 60, 1800, 900)
	burstsAt := func(probe float64) int {
		cfg := DefaultConfig()
		cfg.P1 = &Policy1{ProbeSecs: probe, ThresholdJPM: 34}
		res, err := Simulate(batch, jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.BurstedJobs
	}
	fast := burstsAt(1)
	slow := burstsAt(120)
	if fast < slow {
		t.Fatalf("probe 1s bursted %d, probe 120s bursted %d; want fast >= slow", fast, slow)
	}
}

func TestPolicy2BurstsLongQueuedJobs(t *testing.T) {
	// All jobs submitted at once; long waits (2h+) before starting.
	var jobs []wtrace.JobRecord
	for i := 0; i < 10; i++ {
		start := 7200 + float64(i)*600
		jobs = append(jobs, wtrace.JobRecord{
			ID: "1.x", Class: wtrace.ClassWaveform,
			Submit: 0, Start: start, End: start + 900,
		})
	}
	batch := wtrace.BatchRecord{Name: "q", Submit: 0, Start: 7200, End: jobs[9].End}
	cfg := DefaultConfig()
	cfg.P2 = &Policy2{MaxQueueSecs: 90 * 60}
	res, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BurstedJobs == 0 {
		t.Fatal("Policy 2 never bursted 2-hour-queued jobs")
	}
	if res.BurstedJobs > 3 {
		t.Fatalf("bursted %d jobs, cap 30%% of 10", res.BurstedJobs)
	}
}

func TestPolicy2ShorterQueueTimeBurstsMore(t *testing.T) {
	var jobs []wtrace.JobRecord
	for i := 0; i < 40; i++ {
		start := 5400 + float64(i)*900 // waits from 90 min up
		jobs = append(jobs, wtrace.JobRecord{
			ID: "1.x", Class: wtrace.ClassWaveform,
			Submit: 0, Start: start, End: start + 900,
		})
	}
	batch := wtrace.BatchRecord{Name: "q", Submit: 0, Start: 5400, End: jobs[39].End}
	burstsAt := func(maxQ float64) int {
		cfg := DefaultConfig()
		cfg.P2 = &Policy2{MaxQueueSecs: maxQ}
		res, err := Simulate(batch, jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.BurstedJobs
	}
	at90 := burstsAt(90 * 60)
	at120 := burstsAt(120 * 60)
	if at90 < at120 {
		t.Fatalf("90-min cap bursted %d, 120-min %d; want 90 >= 120", at90, at120)
	}
}

func TestPolicy3BurstsOnSubmissionGap(t *testing.T) {
	// Two submission bursts separated by a long gap.
	var jobs []wtrace.JobRecord
	for i := 0; i < 5; i++ {
		jobs = append(jobs, wtrace.JobRecord{
			ID: "1.a", Class: wtrace.ClassWaveform,
			Submit: float64(i), Start: 100 + float64(i), End: 1000 + float64(i),
		})
	}
	for i := 0; i < 5; i++ {
		s := 7200 + float64(i)
		jobs = append(jobs, wtrace.JobRecord{
			ID: "2.a", Class: wtrace.ClassWaveform,
			Submit: s, Start: s + 100, End: s + 1000,
		})
	}
	batch := wtrace.BatchRecord{Name: "g", Submit: 0, Start: 100, End: 8200 + 4}
	cfg := DefaultConfig()
	cfg.P3 = &Policy3{MaxGapSecs: 1800, ProbeSecs: 60}
	res, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BurstedJobs == 0 {
		t.Fatal("Policy 3 never bursted during a 2-hour submission gap")
	}
}

func TestGFJobsNeverBursted(t *testing.T) {
	jobs := []wtrace.JobRecord{
		{ID: "1.0", Class: wtrace.ClassGF, Submit: 0, Start: 7200, End: 14400},
		{ID: "1.1", Class: wtrace.ClassWaveform, Submit: 0, Start: 7200, End: 8100},
	}
	batch := wtrace.BatchRecord{Name: "gf", Submit: 0, Start: 7200, End: 14400}
	cfg := DefaultConfig()
	cfg.P2 = &Policy2{MaxQueueSecs: 600}
	res, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only the waveform job is burstable.
	if res.BurstedJobs > 1 {
		t.Fatalf("bursted %d jobs; the GF job must stay on OSG", res.BurstedJobs)
	}
}

func TestBurstCapRespected(t *testing.T) {
	batch, jobs := syntheticTrace(100, 30, 3600, 900)
	cfg := DefaultConfig()
	cfg.P1 = &Policy1{ProbeSecs: 1, ThresholdJPM: 1000} // always below threshold
	cfg.P2 = &Policy2{MaxQueueSecs: 1}
	res, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BurstedJobs > 30 {
		t.Fatalf("bursted %d of 100, cap is 30", res.BurstedJobs)
	}
}

func TestCostFormula(t *testing.T) {
	batch, jobs := syntheticTrace(20, 30, 3600, 900)
	cfg := DefaultConfig()
	cfg.P1 = &Policy1{ProbeSecs: 1, ThresholdJPM: 1000}
	res, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each bursted waveform job consumes 144 VDC seconds.
	wantMinutes := float64(res.BurstedJobs) * DefaultWaveformVDCSecs / 60
	if diff := res.VDCMinutes - wantMinutes; diff < -0.2 || diff > 0.2 {
		t.Fatalf("VDC minutes %v, want ≈%v", res.VDCMinutes, wantMinutes)
	}
	wantCost := wantMinutes * DefaultCostPerMinute
	if diff := res.CostUSD - wantCost; diff < -0.01 || diff > 0.01 {
		t.Fatalf("cost %v, want ≈%v", res.CostUSD, wantCost)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.RuptureVDCSecs = 0 },
		func(c *Config) { c.WaveformVDCSecs = -1 },
		func(c *Config) { c.CostPerMinute = -0.1 },
		func(c *Config) { c.MaxBurstFraction = 1.5 },
		func(c *Config) { c.P1 = &Policy1{ProbeSecs: 0, ThresholdJPM: 34} },
		func(c *Config) { c.P2 = &Policy2{} },
		func(c *Config) { c.P3 = &Policy3{MaxGapSecs: 10} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSimulateInputValidation(t *testing.T) {
	batch, jobs := syntheticTrace(3, 10, 10, 10)
	if _, err := Simulate(batch, nil, DefaultConfig()); err == nil {
		t.Fatal("empty trace accepted")
	}
	badBatch := batch
	badBatch.End = -1
	if _, err := Simulate(badBatch, jobs, DefaultConfig()); err == nil {
		t.Fatal("invalid batch accepted")
	}
	early := jobs
	early[0].Submit = -100
	if _, err := Simulate(batch, early, DefaultConfig()); err == nil {
		t.Fatal("job before batch accepted")
	}
	never := []wtrace.JobRecord{{ID: "x", Class: wtrace.ClassWaveform, Submit: 0, Start: -1, End: -1}}
	if _, err := Simulate(batch, never, DefaultConfig()); err == nil {
		t.Fatal("trace with no finishable jobs accepted")
	}
}

func TestSeriesCSV(t *testing.T) {
	batch, jobs := syntheticTrace(5, 10, 60, 120)
	res, err := Simulate(batch, jobs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.InstantSeries)+1 {
		t.Fatalf("%d CSV lines for %d samples", len(lines), len(res.InstantSeries))
	}
	if lines[0] != "second,instant_jpm" {
		t.Fatalf("header %q", lines[0])
	}
}

func TestReportContainsKeyFields(t *testing.T) {
	batch, jobs := syntheticTrace(5, 10, 60, 120)
	res, err := Simulate(batch, jobs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Report(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"control", "runtime", "VDC usage", "simulated cost"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, buf.String())
		}
	}
}

func TestVDCActivePctBounded(t *testing.T) {
	batch, jobs := syntheticTrace(30, 60, 1800, 900)
	cfg := DefaultConfig()
	cfg.P1 = &Policy1{ProbeSecs: 1, ThresholdJPM: 34}
	res, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.VDCActivePct < 0 || res.VDCActivePct > 100 {
		t.Fatalf("VDC active %v%%", res.VDCActivePct)
	}
	if res.BurstedJobs > 0 && res.VDCActivePct == 0 {
		t.Fatal("bursted jobs but zero VDC activity")
	}
}

func TestElasticPolicyScalesToDeficit(t *testing.T) {
	batch, jobs := syntheticTrace(80, 60, 1800, 900)
	cfg := DefaultConfig()
	cfg.MaxBurstFraction = 1.0
	cfg.Elastic = &ElasticPolicy{TargetJPM: 10, ProbeSecs: 30, MaxPerProbe: 5}
	res, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Control {
		t.Fatal("elastic run flagged as control")
	}
	if res.BurstedJobs == 0 {
		t.Fatal("elastic policy never bursted below target")
	}
	control, err := Simulate(batch, jobs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgInstantJPM <= control.AvgInstantJPM {
		t.Fatalf("elastic AIT %v <= control %v", res.AvgInstantJPM, control.AvgInstantJPM)
	}
}

func TestElasticBeatsSingleBurstPolicy1AtSameProbe(t *testing.T) {
	// With a large deficit, the elastic policy (up to 5 bursts/probe)
	// should move throughput at least as much as Policy 1 (1/probe).
	batch, jobs := syntheticTrace(100, 60, 3600, 900)
	p1 := DefaultConfig()
	p1.MaxBurstFraction = 1.0
	p1.P1 = &Policy1{ProbeSecs: 30, ThresholdJPM: 10}
	r1, err := Simulate(batch, jobs, p1)
	if err != nil {
		t.Fatal(err)
	}
	el := DefaultConfig()
	el.MaxBurstFraction = 1.0
	el.Elastic = &ElasticPolicy{TargetJPM: 10, ProbeSecs: 30, MaxPerProbe: 5}
	re, err := Simulate(batch, jobs, el)
	if err != nil {
		t.Fatal(err)
	}
	if re.AvgInstantJPM < r1.AvgInstantJPM {
		t.Fatalf("elastic AIT %v < policy-1 AIT %v", re.AvgInstantJPM, r1.AvgInstantJPM)
	}
}

func TestElasticValidation(t *testing.T) {
	for _, e := range []ElasticPolicy{
		{TargetJPM: 0, ProbeSecs: 30, MaxPerProbe: 5},
		{TargetJPM: 10, ProbeSecs: 0, MaxPerProbe: 5},
		{TargetJPM: 10, ProbeSecs: 30, MaxPerProbe: 0},
	} {
		cfg := DefaultConfig()
		e := e
		cfg.Elastic = &e
		if err := cfg.Validate(); err == nil {
			t.Fatalf("invalid elastic policy accepted: %+v", e)
		}
	}
}

func TestSimulationDeterministic(t *testing.T) {
	batch, jobs := syntheticTrace(50, 60, 1800, 900)
	cfg := DefaultConfig()
	cfg.P1 = &Policy1{ProbeSecs: 5, ThresholdJPM: 34}
	a, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgInstantJPM != b.AvgInstantJPM || a.BurstedJobs != b.BurstedJobs ||
		a.RuntimeSecs != b.RuntimeSecs || a.CostUSD != b.CostUSD {
		t.Fatal("replay is not deterministic")
	}
}

func TestVDCUsagePctDefinition(t *testing.T) {
	batch, jobs := syntheticTrace(20, 30, 3600, 900)
	cfg := DefaultConfig()
	cfg.MaxBurstFraction = 1.0
	cfg.P1 = &Policy1{ProbeSecs: 1, ThresholdJPM: 1000}
	res, err := Simulate(batch, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(res.CompletedVDC) / float64(res.CompletedVDC+res.CompletedOSG) * 100
	if res.VDCUsagePct != want {
		t.Fatalf("usage %v, want %v", res.VDCUsagePct, want)
	}
}
