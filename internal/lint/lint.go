// Package lint is fdwlint's engine: a small, stdlib-only static
// analysis framework plus the eight repo-specific analyzers that guard
// FDW's determinism, durability, and observability invariants
// (DESIGN.md §9 and §14).
//
// The analyzers are:
//
//	wallclock   — no wall-clock reads or timers outside the allowlist;
//	              simulated code must use sim.Kernel's clock.
//	globalrand  — no math/rand or crypto/rand outside internal/sim,
//	              which owns the deterministic RNG.
//	maporder    — no order-sensitive work (appends, writes, sim events,
//	              RNG draws, obs records) inside iteration over a map,
//	              unless the keys are collected and sorted.
//	obsflow     — values read from internal/obs instruments must not
//	              flow into conditions, loop bounds, or variables
//	              outside the exporter allowlist: observability
//	              records, it never decides.
//	atomicwrite — no direct os.Create/os.WriteFile/os.OpenFile/
//	              os.CreateTemp outside internal/core/atomicfile:
//	              durable artifacts land via temp+fsync+rename.
//	seamguard   — calls through nil-off hook fields (nil-checked func
//	              fields, *Hook interfaces, obs registries) must be
//	              dominated by a nil check in the same function.
//	floatorder  — float +=/-= reductions must not be ordered by map
//	              iteration, channel arrival, or goroutine completion.
//	errdrop     — errors from Close/Flush/Sync/Write/Commit on durable
//	              write handles, and from os.Rename, must be checked.
//
// A diagnostic on line N is suppressed by a directive of the form
//
//	//lint:allow <analyzer> <reason>
//
// on line N (trailing) or line N-1 (its own line). The reason is
// mandatory; malformed, unknown-analyzer, and unused directives are
// themselves diagnostics (analyzer name "directive"), so every
// suppression in the tree documents why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding. File is as recorded in the
// FileSet (absolute for loader-produced packages).
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Format renders the diagnostic as "file:line analyzer: message" with
// the file path made relative to base when possible.
func (d Diagnostic) Format(base string) string {
	file := d.File
	if base != "" {
		if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d %s: %s", file, d.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (package, analyzer) run and collects reports.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full fdwlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer, GlobalrandAnalyzer, MaporderAnalyzer, ObsflowAnalyzer,
		AtomicwriteAnalyzer, SeamguardAnalyzer, FloatorderAnalyzer, ErrdropAnalyzer,
	}
}

// directiveName is the pseudo-analyzer that owns diagnostics about the
// //lint:allow directives themselves. It cannot be suppressed.
const directiveName = "directive"

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Pos
	used     bool
}

const directivePrefix = "//lint:allow"

// parseDirectives scans a file's comments for //lint:allow directives,
// reporting malformed ones through report.
func parseDirectives(pass *Pass, f *ast.File, known map[string]bool, report func(Diagnostic)) []*directive {
	var ds []*directive
	fset := pass.Pkg.Fset
	bad := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		report(Diagnostic{File: p.Filename, Line: p.Line, Col: p.Column,
			Analyzer: directiveName, Message: fmt.Sprintf(format, args...)})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := c.Text[len(directivePrefix):]
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:allowing — not a directive
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				bad(c.Pos(), "malformed %s: missing analyzer name and reason", directivePrefix)
				continue
			}
			name := fields[0]
			if !known[name] {
				bad(c.Pos(), "%s names unknown analyzer %q", directivePrefix, name)
				continue
			}
			reason := strings.TrimSpace(strings.Join(fields[1:], " "))
			if reason == "" {
				bad(c.Pos(), "%s %s: a reason is mandatory", directivePrefix, name)
				continue
			}
			p := fset.Position(c.Pos())
			ds = append(ds, &directive{
				analyzer: name, reason: reason,
				file: p.Filename, line: p.Line, pos: c.Pos(),
			})
		}
	}
	return ds
}

// Run executes the analyzers over the packages, applies //lint:allow
// suppression, and returns the surviving diagnostics sorted by
// position. Unused and malformed directives surface as "directive"
// diagnostics.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var diags []Diagnostic
	var directiveDiags []Diagnostic
	var directives []*directive
	for _, pkg := range pkgs {
		dirPass := &Pass{Pkg: pkg}
		for _, f := range pkg.Files {
			directives = append(directives, parseDirectives(dirPass, f,
				known, func(d Diagnostic) { directiveDiags = append(directiveDiags, d) })...)
		}
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, analyzer: a,
				report: func(d Diagnostic) { diags = append(diags, d) }}
			a.Run(pass)
		}
	}

	// A directive suppresses matching diagnostics on its own line and
	// the line below it (trailing and stand-alone placement).
	suppress := map[string]*directive{}
	for _, d := range directives {
		suppress[fmt.Sprintf("%s:%d:%s", d.file, d.line, d.analyzer)] = d
		suppress[fmt.Sprintf("%s:%d:%s", d.file, d.line+1, d.analyzer)] = d
	}
	kept := diags[:0]
	for _, d := range diags {
		if dir, ok := suppress[fmt.Sprintf("%s:%d:%s", d.File, d.Line, d.Analyzer)]; ok {
			dir.used = true
			continue
		}
		kept = append(kept, d)
	}
	diags = append(kept, directiveDiags...)

	for _, d := range directives {
		if !d.used && ran[d.analyzer] {
			p := token.Position{Filename: d.file, Line: d.line}
			diags = append(diags, Diagnostic{File: p.Filename, Line: p.Line, Col: 1,
				Analyzer: directiveName,
				Message:  fmt.Sprintf("unused %s %s (%s): nothing to suppress here", directivePrefix, d.analyzer, d.reason)})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
