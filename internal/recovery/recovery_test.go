package recovery

import (
	"reflect"
	"strings"
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/ospool"
	"fdw/internal/sim"
)

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config claims to be enabled")
	}
	if !DefaultConfig().Enabled() {
		t.Fatal("default config claims to be disabled")
	}

	bad := []func(*Config){
		func(c *Config) { c.Backoff = BackoffConfig{Enabled: true} },
		func(c *Config) { c.Backoff.Factor = 0.5 },
		func(c *Config) { c.Backoff.MaxSeconds = c.Backoff.BaseSeconds / 2 },
		func(c *Config) { c.Backoff.Jitter = 1 },
		func(c *Config) { c.Breaker = BreakerConfig{Enabled: true} },
		func(c *Config) { c.Breaker.CooldownSeconds = -1 },
		func(c *Config) { c.Breaker.HalfOpenProbes = 0 },
		func(c *Config) { c.Deadline = DeadlineConfig{Enabled: true} },
		func(c *Config) { c.Deadline.GraceSeconds = -1 },
		func(c *Config) { c.Hedge = HedgeConfig{Enabled: true} },
		func(c *Config) { c.Hedge.Multiplier = 1 },
		func(c *Config) { c.Hedge.MinSiblings = 1 },
	}
	cfg := DefaultConfig()
	for i, mutate := range bad {
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted: %+v", i, cfg)
		}
	}
	// Disabled mechanisms are never checked: break every parameter but
	// turn everything off.
	cfg.Backoff.Enabled = false
	cfg.Breaker.Enabled = false
	cfg.Deadline.Enabled = false
	cfg.Hedge.Enabled = false
	if err := cfg.Validate(); err != nil {
		t.Fatalf("disabled mechanisms validated: %v", err)
	}
	if _, err := New(sim.NewKernel(1), Config{Backoff: BackoffConfig{Enabled: true}}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}

func newPolicy(t *testing.T, seed uint64, cfg Config) *Policy {
	t.Helper()
	r, err := New(sim.NewKernel(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRetryDelaySchedule(t *testing.T) {
	cfg := Config{Backoff: BackoffConfig{
		Enabled: true, BaseSeconds: 30, Factor: 2, MaxSeconds: 600, Jitter: 0.25,
	}}
	r := newPolicy(t, 7, cfg)

	// Same seed, same call sequence → identical delays: the backoff
	// stream is part of the reproducible setup.
	twin := newPolicy(t, 7, cfg)
	var delays, twinDelays []sim.Time
	for attempt := 1; attempt <= 8; attempt++ {
		delays = append(delays, r.RetryDelay("n", attempt))
		twinDelays = append(twinDelays, twin.RetryDelay("n", attempt))
	}
	if !reflect.DeepEqual(delays, twinDelays) {
		t.Fatalf("same-seed delays diverge:\n%v\n%v", delays, twinDelays)
	}
	// Jitter bounds: attempt k's nominal delay is min(base·factor^(k-1), max).
	nominal := cfg.Backoff.BaseSeconds
	for i, d := range delays {
		lo, hi := nominal*(1-cfg.Backoff.Jitter), nominal*(1+cfg.Backoff.Jitter)
		if float64(d) < lo || float64(d) > hi {
			t.Fatalf("attempt %d delay %v outside [%v, %v]", i+1, d, lo, hi)
		}
		nominal *= cfg.Backoff.Factor
		if nominal > cfg.Backoff.MaxSeconds {
			nominal = cfg.Backoff.MaxSeconds
		}
	}
	if st := r.Stats(); st.BackoffHolds != 8 || st.BackoffSeconds <= 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRetryDelayNoJitterAndDisabled(t *testing.T) {
	r := newPolicy(t, 1, Config{Backoff: BackoffConfig{
		Enabled: true, BaseSeconds: 30, Factor: 2, MaxSeconds: 200,
	}})
	want := []sim.Time{30, 60, 120, 200, 200}
	for i, w := range want {
		if d := r.RetryDelay("n", i+1); d != w {
			t.Fatalf("attempt %d delay %v, want %v", i+1, d, w)
		}
	}
	off := newPolicy(t, 1, Config{})
	if d := off.RetryDelay("n", 1); d != 0 {
		t.Fatalf("disabled backoff returned %v", d)
	}
	if st := off.Stats(); st.BackoffHolds != 0 {
		t.Fatalf("disabled backoff counted holds: %+v", st)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := Config{Breaker: BreakerConfig{
		Enabled: true, FailureThreshold: 3, CooldownSeconds: 100, HalfOpenProbes: 2,
	}}
	r := newPolicy(t, 3, cfg)
	fail := func(site string, now sim.Time) { r.AttemptEnded(site, nil, ospool.AttemptFailed, 10, now) }
	ok := func(site string, now sim.Time) { r.AttemptEnded(site, nil, ospool.AttemptOK, 10, now) }

	if r.VetoMatch("a", 0) {
		t.Fatal("fresh site vetoed")
	}
	// Two failures, a success, two more failures: the success resets the
	// consecutive count, so the breaker stays closed.
	fail("a", 1)
	fail("a", 2)
	ok("a", 3)
	fail("a", 4)
	fail("a", 5)
	if r.breakerStateOf("a") != breakerClosed {
		t.Fatal("breaker opened despite interleaved success")
	}
	// A third consecutive failure opens it.
	fail("a", 6)
	if r.breakerStateOf("a") != breakerOpen || !r.VetoMatch("a", 50) {
		t.Fatalf("state %v after threshold", r.breakerStateOf("a"))
	}
	if got := r.OpenBreakers(50); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("open breakers %v", got)
	}
	// Deadline evictions and preemptions are breaker-neutral.
	r.AttemptEnded("b", nil, ospool.AttemptDeadline, 10, 55)
	r.AttemptEnded("b", nil, ospool.AttemptDeadline, 10, 56)
	r.AttemptEnded("b", nil, ospool.AttemptDeadline, 10, 57)
	r.AttemptEnded("b", nil, ospool.AttemptPreempted, 10, 58)
	if r.breakerStateOf("b") != breakerClosed || r.VetoMatch("b", 59) {
		t.Fatal("site-neutral outcomes moved a breaker")
	}
	// Cooldown elapses: the breaker half-opens and admits exactly
	// HalfOpenProbes attempts.
	if r.VetoMatch("a", 107) {
		t.Fatal("cooldown elapsed but site still vetoed")
	}
	if r.breakerStateOf("a") != breakerHalfOpen {
		t.Fatalf("state %v after cooldown", r.breakerStateOf("a"))
	}
	r.AttemptStarted("a", nil, 108)
	if r.VetoMatch("a", 109) {
		t.Fatal("second probe slot vetoed")
	}
	r.AttemptStarted("a", nil, 109)
	if !r.VetoMatch("a", 110) {
		t.Fatal("probe budget exhausted but site not vetoed")
	}
	// A failed probe reopens for another full cooldown.
	fail("a", 120)
	if r.breakerStateOf("a") != breakerOpen || !r.VetoMatch("a", 219) {
		t.Fatalf("state %v after failed probe", r.breakerStateOf("a"))
	}
	// Next cooldown: a successful probe closes the breaker for good.
	if r.VetoMatch("a", 221) {
		t.Fatal("second cooldown elapsed but site still vetoed")
	}
	r.AttemptStarted("a", nil, 222)
	ok("a", 230)
	if r.breakerStateOf("a") != breakerClosed || r.VetoMatch("a", 231) {
		t.Fatalf("state %v after successful probe", r.breakerStateOf("a"))
	}
	if len(r.OpenBreakers(231)) != 0 {
		t.Fatalf("open breakers %v after close", r.OpenBreakers(231))
	}
	st := r.Stats()
	if st.BreakerOpens != 2 || st.BreakerHalfOpens != 2 || st.BreakerCloses != 1 || st.DeadlineEvictions != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOpenBreakersSorted(t *testing.T) {
	r := newPolicy(t, 4, Config{Breaker: BreakerConfig{
		Enabled: true, FailureThreshold: 1, CooldownSeconds: 1000, HalfOpenProbes: 1,
	}})
	for _, site := range []string{"zeta", "alpha", "mid"} {
		r.AttemptEnded(site, nil, ospool.AttemptFailed, 1, 10)
	}
	if got := r.OpenBreakers(20); !reflect.DeepEqual(got, []string{"alpha", "mid", "zeta"}) {
		t.Fatalf("open breakers %v, want sorted", got)
	}
}

func TestJobDeadlineLoosensWithEvictions(t *testing.T) {
	r := newPolicy(t, 5, Config{Deadline: DeadlineConfig{
		Enabled: true, Multiple: 6, GraceSeconds: 900,
	}})
	j := &htcondor.Job{BaseExecSeconds: 100}
	if d := r.JobDeadlineSeconds(j, 0); d != 6*100+900 {
		t.Fatalf("deadline %v, want 1500", d)
	}
	j.Evictions = 2
	if d := r.JobDeadlineSeconds(j, 0); d != 1500*4 {
		t.Fatalf("deadline %v after 2 evictions, want 6000", d)
	}
	// The doubling caps at 8, so even an absurd eviction count yields a
	// finite budget.
	j.Evictions = 50
	if d := r.JobDeadlineSeconds(j, 0); d != 1500*256 {
		t.Fatalf("deadline %v after 50 evictions, want 384000", d)
	}
	off := newPolicy(t, 5, Config{})
	if d := off.JobDeadlineSeconds(j, 0); d != 0 {
		t.Fatalf("disabled deadline returned %v", d)
	}
}

func TestQuantileOf(t *testing.T) {
	xs := []float64{40, 10, 30, 20}
	cases := []struct {
		q    float64
		want float64
	}{{0.25, 10}, {0.5, 20}, {0.75, 30}, {1.0, 40}, {0.01, 10}}
	for _, c := range cases {
		if got := quantileOf(xs, c.q); got != c.want {
			t.Fatalf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
	if !reflect.DeepEqual(xs, []float64{40, 10, 30, 20}) {
		t.Fatalf("quantileOf mutated its input: %v", xs)
	}
	if got := quantileOf([]float64{7}, 0.5); got != 7 {
		t.Fatalf("singleton quantile %v", got)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[breakerState]string{
		breakerClosed: "closed", breakerOpen: "open", breakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Fatalf("%d → %q", int(s), s.String())
		}
	}
	if !strings.Contains(breakerState(9).String(), "9") {
		t.Fatal("unknown state string")
	}
}
