package lint

import (
	"go/ast"
	"go/types"
)

// errdrop closes the gap atomicwrite leaves open: routing a write
// through atomicfile (or a deliberately-allowed os handle) only helps
// if the errors those calls return are looked at. A dropped Close or
// Sync error on a durable handle means the artifact may be missing or
// short and nothing noticed; a dropped Commit means the rename never
// happened. The analysis is function-local dataflow: handles returned
// by the file-creation roots are durable, values built from a durable
// handle (bufio.NewWriter(f), csv.NewWriter(f)) inherit it one hop at
// a time, and *atomicfile.File and stored *os.File fields are durable
// by type.

// errdropMethods are the finishing calls whose error must be checked
// when the receiver is durable. Only methods that actually return an
// error are flagged (csv.Writer.Flush returns nothing and is exempt).
var errdropMethods = map[string]bool{
	"Close": true, "Flush": true, "Sync": true,
	"Write": true, "WriteString": true, "Commit": true,
}

// errdropRoots are the functions whose results are writable file
// handles: package os creators plus atomicfile.Create.
func isDurableRoot(fn *types.Func) bool {
	switch funcPkgPath(fn) {
	case "os":
		return fn.Name() == "Create" || fn.Name() == "CreateTemp" || fn.Name() == "OpenFile"
	case atomicfilePath:
		return fn.Name() == "Create"
	}
	return false
}

// ErrdropAnalyzer flags discarded errors from finishing calls on
// durable write paths: bare statements, defers, and `_ =` assignments
// of Close/Flush/Sync/Write/WriteString/Commit on durable handles, and
// of os.Rename anywhere.
var ErrdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded errors from Close/Flush/Sync/Write/Commit on durable write handles and from os.Rename",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			durable := durableLocals(pass.Pkg.Info, f)
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				deferred := false
				switch s := n.(type) {
				case *ast.ExprStmt:
					call, _ = s.X.(*ast.CallExpr)
				case *ast.DeferStmt:
					call, deferred = s.Call, true
				case *ast.AssignStmt:
					if len(s.Rhs) == 1 && allBlank(s.Lhs) {
						call, _ = ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
					}
				}
				if call == nil {
					return true
				}
				checkDrop(pass, durable, call, deferred)
				return true
			})
		}
	},
}

// allBlank reports whether every lvalue is the blank identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// durableLocals runs the per-function dataflow to a fixpoint: a local
// is durable when assigned from a creation root, or from any call that
// takes an already-durable local as an argument (the bufio.NewWriter
// hop). Objects are function-scoped, so one file-wide map is safe.
func durableLocals(info *types.Info, f *ast.File) map[types.Object]bool {
	durable := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || durable[obj] {
				return true
			}
			if isDurableRoot(calleeFunc(info, call)) || hasDurableArg(info, durable, call) {
				durable[obj] = true
				changed = true
			}
			return true
		})
	}
	return durable
}

// hasDurableArg reports whether any argument is a durable local.
func hasDurableArg(info *types.Info, durable map[types.Object]bool, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && durable[obj] {
				return true
			}
		}
	}
	return false
}

// checkDrop reports call if it discards an error the durable-write
// contract requires checking.
func checkDrop(pass *Pass, durable map[types.Object]bool, call *ast.CallExpr, deferred bool) {
	info := pass.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if funcPkgPath(fn) == "os" && fn.Name() == "Rename" {
		pass.Reportf(call.Pos(),
			"error from os.Rename discarded: a failed rename means the artifact was never published — check it")
		return
	}
	if !errdropMethods[fn.Name()] || !returnsError(fn) {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !durableExpr(info, durable, sel.X) {
		return
	}
	how := "discarded"
	if deferred {
		how = "discarded by defer"
	}
	pass.Reportf(call.Pos(),
		"error from %s.%s %s on a durable write path: a lost write error here means a missing or short artifact — check it (atomicfile handles let you `defer f.Close()` and check Commit instead)",
		types.ExprString(sel.X), fn.Name(), how)
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// durableExpr reports whether the receiver expression is on the
// durable-write path: a durable local, any *atomicfile.File, or a
// struct field of type *os.File (stored open files in this tree are
// write handles; read files are opened and closed locally).
func durableExpr(info *types.Info, durable map[types.Object]bool, e ast.Expr) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		obj := info.Uses[id]
		return obj != nil && durable[obj]
	}
	t := info.TypeOf(e)
	if isPtrToNamed(t, atomicfilePath, "File") {
		return true
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			return isPtrToNamed(t, "os", "File")
		}
	}
	return false
}

// isPtrToNamed reports whether t is *pkgPath.name.
func isPtrToNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := types.Unalias(p.Elem()).(*types.Named)
	return ok && n.Obj().Name() == name && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgPath
}
