// Package globalrand_bad imports both forbidden randomness packages.
package globalrand_bad

import (
	crand "crypto/rand"
	"math/rand"
)

// Roll draws from the global math/rand source.
func Roll() int {
	return rand.Intn(6)
}

// Token fills b with crypto randomness.
func Token(b []byte) error {
	_, err := crand.Read(b)
	return err
}
