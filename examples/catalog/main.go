// Catalog: the Fig. 7 pipeline — deposit FDW data products into the
// VDC data-services catalog over its HTTP API, curate them with tags,
// and retrieve them the way an EEW-model training pipeline would,
// including the popularity-based prefetch hints.
//
//	go run ./examples/catalog
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"fdw"
)

func main() {
	// Serve the portal on a loopback listener.
	portal := httptest.NewServer(fdw.NewCatalogServer(fdw.NewCatalog()))
	defer portal.Close()
	client := fdw.NewCatalogClient(portal.URL)

	// 1. Generate real products and deposit them, batch by batch.
	var waveformIDs []string
	for i, mw := range []float64{7.9, 8.4, 9.0} {
		sc, err := fdw.GenerateScenario(uint64(100+i), mw, 3)
		if err != nil {
			log.Fatal(err)
		}
		batch := fmt.Sprintf("chile-demo-%d", i+1)
		rid, err := client.Deposit(fdw.Product{
			Name: sc.Rupture.ID + " rupture", Type: "rupture",
			Batch: batch, Region: "chile", Mw: sc.Rupture.ActualMw,
			SizeBytes:   int64(len(sc.Rupture.Patch) * 24),
			Description: fmt.Sprintf("stochastic slip, max %.1f m", sc.Rupture.MaxSlip()),
		})
		if err != nil {
			log.Fatal(err)
		}
		wid, err := client.Deposit(fdw.Product{
			Name: sc.Rupture.ID + " waveforms", Type: "waveform",
			Batch: batch, Region: "chile", Mw: sc.Rupture.ActualMw,
			SizeBytes:   int64(len(sc.Waveforms) * 3 * 512 * 8),
			Description: "synthetic high-rate GNSS displacement",
		})
		if err != nil {
			log.Fatal(err)
		}
		waveformIDs = append(waveformIDs, wid)
		// 2. Curate: tag for discovery.
		if err := client.Tag(rid, "eew", "chile"); err != nil {
			log.Fatal(err)
		}
		if err := client.Tag(wid, "eew", "training", "gnss"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deposited batch %s: rupture %s, waveforms %s (Mw %.2f)\n", batch, rid, wid, sc.Rupture.ActualMw)
	}

	// 3. Discovery: an EEW researcher wants large-event training data.
	found, err := client.Search(fdw.CatalogQuery{Type: "waveform", Tag: "training", MinMw: 8.0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch type=waveform tag=training Mw≥8.0 → %d products:\n", len(found))
	for _, p := range found {
		fmt.Printf("  %s %-22s Mw %.2f %6d KB\n", p.ID, p.Name, p.Mw, p.SizeBytes/1024)
	}

	// 4. Retrieval (counts accesses) and prefetch hints.
	for i := 0; i < 3; i++ {
		if _, err := client.Get(waveformIDs[2]); err != nil { // the Mw 9 set is popular
			log.Fatal(err)
		}
	}
	if _, err := client.Get(waveformIDs[0]); err != nil {
		log.Fatal(err)
	}
	hot, err := client.Popular(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nintelligent-data-delivery prefetch hints (most retrieved first):")
	for _, p := range hot {
		fmt.Printf("  %s %-22s %d retrievals\n", p.ID, p.Name, p.Accesses)
	}
}
