package expt

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// -status over a partially finished partition reports the incomplete
// bundle, lists its remaining cells, rolls the group up as resumable,
// and flips to complete once the shard is resumed.
func TestStatusPartition(t *testing.T) {
	const name = "fig2"
	opt := shardTestOptions()
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	if _, err := RunShard(opt, ShardRun{Campaign: name, Index: 1, Total: 2, Path: p1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunShard(opt, ShardRun{Campaign: name, Index: 2, Total: 2, Path: p2, MaxCells: 1}); err == nil {
		t.Fatal("budgeted shard finished unexpectedly")
	}

	paths, err := StatusPaths([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[0] != p1 || paths[1] != p2 {
		t.Fatalf("StatusPaths(%s) = %v", dir, paths)
	}
	rep, err := Status(opt, paths)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasErrors() {
		t.Fatalf("unexpected bundle errors: %+v", rep.Bundles)
	}
	if !rep.Bundles[0].Complete || rep.Bundles[1].Complete {
		t.Fatalf("completion flags = %t,%t, want true,false", rep.Bundles[0].Complete, rep.Bundles[1].Complete)
	}
	if rep.Bundles[1].CellsDone != 1 || len(rep.Bundles[1].IncompleteCells) == 0 {
		t.Fatalf("incomplete bundle status: %+v", rep.Bundles[1])
	}
	if rep.Bundles[0].SimMax <= 0 {
		t.Fatal("bundle carries no sim-clock provenance")
	}
	if len(rep.Campaigns) != 1 {
		t.Fatalf("%d campaign groups, want 1", len(rep.Campaigns))
	}
	cg := rep.Campaigns[0]
	if !cg.OptionsMatch || cg.Complete || cg.Campaign != name || cg.Total != 2 || cg.Bundles != 2 {
		t.Fatalf("campaign rollup: %+v", cg)
	}
	if cg.CellsDone >= cg.CellsTotal || len(cg.IncompleteCells) != cg.CellsTotal-cg.CellsDone {
		t.Fatalf("campaign coverage: %+v", cg)
	}
	if !rep.Resumable() {
		t.Fatal("partial partition not reported resumable")
	}

	// The report is valid JSON that round-trips.
	var buf bytes.Buffer
	if err := WriteStatus(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back StatusReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("status output is not valid JSON: %v", err)
	}
	if len(back.Bundles) != 2 || len(back.Campaigns) != 1 {
		t.Fatalf("round-tripped report lost entries: %+v", back)
	}

	if _, err := RunShard(opt, ShardRun{Campaign: name, Index: 2, Total: 2, Path: p2, Resume: true}); err != nil {
		t.Fatal(err)
	}
	rep, err = Status(opt, paths)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumable() || !rep.Campaigns[0].Complete {
		t.Fatalf("resumed partition still resumable: %+v", rep.Campaigns[0])
	}
}

// Status under different options keeps the inventory but cannot vouch
// for coverage: OptionsMatch is false and the group never reads as
// complete; unreadable files become error entries instead of failing
// the whole report.
func TestStatusMismatchAndErrors(t *testing.T) {
	const name = "fig2"
	opt := shardTestOptions()
	dir := t.TempDir()
	p := filepath.Join(dir, "m.json")
	if _, err := RunShard(opt, ShardRun{Campaign: name, Index: 1, Total: 1, Path: p}); err != nil {
		t.Fatal(err)
	}

	other := opt
	other.Seeds = []uint64{12}
	rep, err := Status(other, []string{p})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Campaigns[0].OptionsMatch || rep.Campaigns[0].Complete {
		t.Fatalf("fingerprint mismatch not detected: %+v", rep.Campaigns[0])
	}
	// The bundle itself is still self-complete, so nothing is resumable
	// under these options either.
	if rep.Resumable() {
		t.Fatal("mismatched-options report claims resumable work")
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Status(opt, []string{bad, p})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasErrors() || rep.Bundles[0].Error == "" {
		t.Fatalf("unreadable bundle not reported: %+v", rep.Bundles)
	}
	if len(rep.Campaigns) != 1 || !rep.Campaigns[0].Complete {
		t.Fatalf("readable bundle lost next to an unreadable one: %+v", rep.Campaigns)
	}

	if _, err := StatusPaths([]string{t.TempDir()}); err == nil {
		t.Error("StatusPaths over an empty dir succeeded")
	}
	if _, err := StatusPaths([]string{filepath.Join(dir, "missing")}); err == nil {
		t.Error("StatusPaths over a missing path succeeded")
	}
}
