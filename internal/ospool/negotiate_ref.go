package ospool

import (
	"sort"

	"fdw/internal/htcondor"
)

// This file retains the seed (pre-index) negotiator verbatim as the
// executable specification of matchmaking order: per cycle it copies
// every owner's idle jobs into interleaved queues and linearly scans
// every free glidein per job. The production path (negotiateIndexed)
// must select the same matches in the same order;
// TestIndexedNegotiatorMatchesReference drives both over randomized
// pools and asserts the claim sequences are identical. Switch it in
// with Pool.useReference — it is never used outside tests.

// ownerState aggregates fair-share accounting per owner.
type ownerState struct {
	owner     string
	running   int
	perSchedd [][]*htcondor.Job // idle jobs grouped by schedd
	queue     []*htcondor.Job   // interleaved merge of perSchedd
	schedd    map[*htcondor.Job]*htcondor.Schedd
}

// mergeInterleaved round-robins across the owner's schedds so that
// concurrent DAGMans under one user progress together instead of
// draining in schedd order.
func (os *ownerState) mergeInterleaved() {
	total := 0
	for _, q := range os.perSchedd {
		total += len(q)
	}
	os.queue = make([]*htcondor.Job, 0, total)
	for i := 0; total > 0; i++ {
		for _, q := range os.perSchedd {
			if i < len(q) {
				os.queue = append(os.queue, q[i])
				total--
			}
		}
	}
}

// negotiateReference runs one fair-share matchmaking cycle exactly the
// way the seed implementation did. The free-glidein list is
// reconstructed in ascending id order — the order the seed's append-
// only p.glideins slice maintained by construction.
func (p *Pool) negotiateReference() {
	// Build per-owner queues from all schedds.
	owners := map[string]*ownerState{}
	var order []string
	for _, s := range p.schedds {
		perOwner := map[string][]*htcondor.Job{}
		for _, j := range s.IdleJobs() {
			os, ok := owners[j.Owner]
			if !ok {
				os = &ownerState{owner: j.Owner, running: p.ownerRunning[j.Owner], schedd: map[*htcondor.Job]*htcondor.Schedd{}}
				owners[j.Owner] = os
				order = append(order, j.Owner)
			}
			perOwner[j.Owner] = append(perOwner[j.Owner], j)
			os.schedd[j] = s
		}
		for owner, jobs := range perOwner {
			//lint:allow maporder each key appends to its own owner's slice, so iterations commute
			owners[owner].perSchedd = append(owners[owner].perSchedd, jobs)
		}
	}
	if len(owners) == 0 {
		return
	}
	for _, os := range owners {
		os.mergeInterleaved()
	}
	sort.Strings(order) // deterministic iteration

	// Free slot list, ascending glidein id (the seed's scan order).
	var free []*glidein
	for i := range p.sites {
		free = append(free, p.sites[i].free...)
	}
	sort.Slice(free, func(i, j int) bool { return free[i].id < free[j].id })

	matches := 0
	// Round-robin across owners ordered by effective usage (fewest
	// running first) — HTCondor's fair-share in miniature.
	for matches < p.cfg.MatchesPerCycle && len(free) > 0 {
		sort.SliceStable(order, func(a, b int) bool {
			return owners[order[a]].running < owners[order[b]].running
		})
		progress := false
		for _, name := range order {
			os := owners[name]
			if len(os.queue) == 0 {
				continue
			}
			if matches >= p.cfg.MatchesPerCycle || len(free) == 0 {
				break
			}
			job := os.queue[0]
			slot := -1
			for i, g := range free {
				if p.recovery != nil && p.recovery.VetoMatch(g.site.Name, p.kernel.Now()) {
					continue // open circuit breaker: site sits out this cycle
				}
				ok, err := job.Matches(g.ad)
				if err == nil && ok {
					slot = i
					break
				}
			}
			if slot < 0 {
				// Nothing in the pool matches this job now; skip the
				// owner's head-of-line job this cycle.
				os.queue = os.queue[1:]
				continue
			}
			g := free[slot]
			free = append(free[:slot], free[slot+1:]...)
			os.queue = os.queue[1:]
			os.running++
			p.claim(g, job, os.schedd[job])
			matches++
			progress = true
		}
		if !progress {
			break
		}
	}
	if p.obs != nil && matches > 0 {
		p.met.matches.Add(uint64(matches))
		p.slotGauges()
	}
}
