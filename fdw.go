// Package fdw is the public API of the FakeQuakes DAGMan Workflow
// (FDW) reproduction: a high-throughput workflow system that
// parallelizes MudPy-style FakeQuakes earthquake simulations on a
// simulated Open Science Pool, plus the VDC cloud-bursting simulator
// and data-services catalog from Adair et al., "Accelerating
// Data-Intensive Seismic Research Through Parallel Workflow
// Optimization and Federated Cyberinfrastructure" (SC-W 2023).
//
// The package re-exports the library's stable surface:
//
//   - workflow execution: Config, Env, Workflow, RunBatch;
//   - monitoring: BatchStats, AnalyzeLog, per-second series;
//   - traces + bursting: BatchTrace, JobTrace, BurstConfig, Burst;
//   - the single-machine baseline: Baseline;
//   - experiment harnesses for every paper figure: Experiments;
//   - the FakeQuakes numeric kernels via GenerateScenario;
//   - the VDC catalog: Catalog, CatalogServer, CatalogClient.
//
// Everything runs on a deterministic discrete-event clock: simulating
// a 35-hour OSG batch takes milliseconds and is reproducible by seed.
package fdw

import (
	"fmt"
	"io"
	"math"

	"fdw/internal/baseline"
	"fdw/internal/burst"
	"fdw/internal/core"
	"fdw/internal/expt"
	"fdw/internal/fakequakes"
	"fdw/internal/faults"
	"fdw/internal/geom"
	"fdw/internal/htcondor"
	"fdw/internal/obs"
	"fdw/internal/ospool"
	"fdw/internal/recovery"
	"fdw/internal/sched"
	"fdw/internal/sim"
	"fdw/internal/vdc"
	"fdw/internal/wtrace"
)

// SimTime is simulated time in seconds.
type SimTime = sim.Time

// Config is an FDW workflow configuration (the user-edited file).
type Config = core.Config

// DefaultConfig returns the paper's default workflow setup.
func DefaultConfig() Config { return core.DefaultConfig() }

// ParseConfig reads the FDW configuration-file syntax.
func ParseConfig(r io.Reader) (Config, error) { return core.ParseConfig(r) }

// WriteConfig renders cfg in the file syntax ParseConfig accepts.
func WriteConfig(w io.Writer, cfg Config) error { return core.WriteConfig(w, cfg) }

// PoolConfig parameterizes the simulated Open Science Pool.
type PoolConfig = ospool.Config

// SiteConfig describes one OSPool site.
type SiteConfig = ospool.SiteConfig

// DefaultPoolConfig returns the calibrated OSPool model.
func DefaultPoolConfig() PoolConfig { return ospool.DefaultConfig() }

// Env is a simulation environment: kernel + pool + stash cache.
type Env = core.Env

// NewEnv builds an environment with the given seed and pool model.
func NewEnv(seed uint64, pool PoolConfig) (*Env, error) { return core.NewEnv(seed, pool) }

// Metrics is the sim-clock-aware observability registry (counters,
// gauges, histograms, job-lifecycle spans). A nil *Metrics disables
// all instrumentation; either way simulation results are identical.
type Metrics = obs.Registry

// MetricsSnapshot is the exported state of a Metrics registry — the
// JSON `-metrics` file format of cmd/fdw and cmd/fdwexp.
type MetricsSnapshot = obs.Snapshot

// NewMetrics returns an empty registry. clock may be nil (timestamps
// all read 0 until SetClock binds a kernel).
func NewMetrics(clock func() SimTime) *Metrics { return obs.NewRegistry(clock) }

// ReadMetricsSnapshot parses a JSON snapshot written by
// Metrics.WriteJSON (the `-metrics` dump of cmd/fdw and cmd/fdwexp).
var ReadMetricsSnapshot = obs.ReadSnapshot

// MergeMetricsSnapshots rolls several snapshots (e.g. one per campaign
// shard) into one: counters and histogram mass sum exactly, gauges
// keep the latest sample, quantiles are re-estimated from merged
// buckets. Deterministic output order; nil inputs are skipped.
var MergeMetricsSnapshots = obs.MergeSnapshots

// WriteMetricsSnapshot renders a snapshot in the same JSON format as
// Metrics.WriteJSON, so merged rollups and live dumps are
// interchangeable inputs to ReadMetricsSnapshot.
var WriteMetricsSnapshot = obs.WriteSnapshotJSON

// NewMeteredEnv is NewEnv plus a fresh Metrics registry clocked by the
// environment's kernel and attached to every subsystem; read it back
// via Env.Obs.
func NewMeteredEnv(seed uint64, pool PoolConfig) (*Env, error) {
	return core.NewMeteredEnv(seed, pool)
}

// NewEnvWithMetrics builds an environment reporting into an existing
// registry (e.g. one shared across several environments). reg may be
// nil, which is NewEnv.
func NewEnvWithMetrics(seed uint64, pool PoolConfig, reg *Metrics) (*Env, error) {
	return core.NewEnvObs(seed, pool, reg)
}

// MeterFactorCache mirrors the covariance factor cache's hit/miss
// tallies into reg (see GenerateScenario and the fakequakes kernels).
func MeterFactorCache(reg *Metrics) { fakequakes.DefaultFactorCache.SetObs(reg) }

// EnableGFCache turns on Green's-function recycling: scenario runs
// persist Phase B kernels as greens_<fingerprint>.npy under dir and
// every later run sharing the fault geometry, station set, and GF
// configuration loads them instead of recomputing — the paper's
// distance-matrix recycling applied to its dominant phase. Recycled
// kernels hold the exact computed bits, so enabling the cache never
// changes scenario output. An empty dir disables recycling again.
func EnableGFCache(dir string) {
	if dir == "" {
		fakequakes.DefaultGFCache = nil
		return
	}
	fakequakes.DefaultGFCache = fakequakes.NewGFCache(dir)
}

// MeterGFCache mirrors the Green's-function cache's hit/miss tallies
// into reg. A no-op until EnableGFCache installs a cache.
func MeterGFCache(reg *Metrics) {
	if fakequakes.DefaultGFCache != nil {
		fakequakes.DefaultGFCache.SetObs(reg)
	}
}

// Workflow is one FDW run (a DAGMan with its own schedd identity).
type Workflow = core.Workflow

// NewWorkflow wires an FDW run into an environment. logW, if non-nil,
// receives the HTCondor-format user log.
func NewWorkflow(cfg Config, env *Env, logW io.Writer) (*Workflow, error) {
	return core.NewWorkflow(cfg, env.Kernel, env.Pool, logW)
}

// RunBatch starts the workflows simultaneously and advances simulated
// time until all complete or the horizon passes.
func RunBatch(env *Env, workflows []*Workflow, horizon SimTime) error {
	return core.RunBatch(env, workflows, horizon)
}

// WriteArtifacts emits the on-disk HTCondor artifacts of a workflow:
// fdw.dag, per-phase submit files, and the configuration file.
var WriteArtifacts = core.WriteArtifacts

// BatchStats is the FDW monitoring summary computed from HTCondor logs.
type BatchStats = core.BatchStats

// AnalyzeLog parses HTCondor user-log text into BatchStats.
func AnalyzeLog(name string, r io.Reader) (*BatchStats, error) {
	return core.AnalyzeLog(name, r)
}

// AnalyzeEvents reduces already-parsed user-log events into BatchStats.
var AnalyzeEvents = core.AnalyzeEvents

// SeriesPoint is a (time, value) sample of a per-second series.
type SeriesPoint = core.SeriesPoint

// JobEvent is one parsed HTCondor user-log event.
type JobEvent = htcondor.JobEvent

// ParseUserLog parses HTCondor user-log text into events.
var ParseUserLog = htcondor.ParseUserLog

// InstantThroughputSeries computes the per-step instant throughput
// (formula (5)) from a user-log event stream.
var InstantThroughputSeries = core.InstantThroughputSeries

// RunningJobsSeries computes the per-step running-job count from a
// user-log event stream (the Fig. 4 footprint).
var RunningJobsSeries = core.RunningJobsSeries

// BatchTrace is the DAGMan batch row of the bursting simulator's
// two-CSV input.
type BatchTrace = wtrace.BatchRecord

// JobTrace is one job's row of the bursting simulator's input.
type JobTrace = wtrace.JobRecord

// TraceFromWorkflow extracts the (batch, jobs) trace of a finished run.
func TraceFromWorkflow(w *Workflow) (BatchTrace, []JobTrace, error) {
	return wtrace.FromSchedd(w.Cfg.Name, w.Schedd)
}

// WriteBatchCSV / ReadBatchCSV / WriteJobsCSV / ReadJobsCSV round-trip
// the simulator's CSV formats.
var (
	WriteBatchCSV = wtrace.WriteBatchCSV
	ReadBatchCSV  = wtrace.ReadBatchCSV
	WriteJobsCSV  = wtrace.WriteJobsCSV
	ReadJobsCSV   = wtrace.ReadJobsCSV
)

// BurstConfig selects bursting policies and constants.
type BurstConfig = burst.Config

// BurstPolicy1 addresses low throughput (probe + threshold).
type BurstPolicy1 = burst.Policy1

// BurstPolicy2 addresses congested queues (max queue time).
type BurstPolicy2 = burst.Policy2

// BurstPolicy3 addresses submission gaps (max gap + probe).
type BurstPolicy3 = burst.Policy3

// BurstElasticPolicy is the §6 future-work elastic algorithm: burst
// proportionally to the throughput deficit.
type BurstElasticPolicy = burst.ElasticPolicy

// BurstResult is one bursting simulation's report.
type BurstResult = burst.Result

// DefaultBurstConfig returns the paper's constants, no policies.
func DefaultBurstConfig() BurstConfig { return burst.DefaultConfig() }

// Burst replays a batch trace under the configured policies.
func Burst(batch BatchTrace, jobs []JobTrace, cfg BurstConfig) (*BurstResult, error) {
	return burst.Simulate(batch, jobs, cfg)
}

// WriteBurstSeriesCSV writes a result's per-second instant-throughput
// series — the simulator's .csv output in the paper.
var WriteBurstSeriesCSV = burst.WriteSeriesCSV

// BaselineMachine is the single-host comparator.
type BaselineMachine = baseline.Machine

// BaselineBreakdown details the single-host stage times.
type BaselineBreakdown = baseline.Breakdown

// AWSBaseline returns the paper's 4-core AWS instance.
func AWSBaseline() BaselineMachine { return baseline.AWSInstance() }

// Baseline estimates single-machine wall time for cfg's workload.
func Baseline(m BaselineMachine, cfg Config) (BaselineBreakdown, error) {
	return baseline.Run(m, cfg)
}

// ExperimentOptions configures the per-figure harnesses.
type ExperimentOptions = expt.Options

// DefaultExperimentOptions mirrors the paper: three reps, full scale.
func DefaultExperimentOptions() ExperimentOptions { return expt.DefaultOptions() }

// Experiment result types, one per figure, plus the extension rows.
type (
	Fig2Row      = expt.Fig2Row
	Fig3Row      = expt.Fig3Row
	Fig4Data     = expt.Fig4Data
	Fig5Cell     = expt.Fig5Cell
	HeadlineRes  = expt.HeadlineResult
	Fig1Products = expt.Fig1Products
	AblationRow  = expt.AblationRow
	Policy3Row   = expt.Policy3Row
	ElasticRow   = expt.ElasticRow
	ChaosRow     = expt.ChaosRow
)

// Fault-plan engine (internal/faults): deterministic scripted site
// outages, black holes, failure bursts, transfer and submit faults,
// layered onto a pool through injection hooks (DESIGN.md §10).
type (
	FaultPlan     = faults.Plan
	FaultWindow   = faults.Window
	FaultInjector = faults.Injector
)

// NewFaultInjector validates plan and binds it to the environment's
// kernel; Attach the result to the environment's pool and schedds
// before running.
func NewFaultInjector(env *Env, plan FaultPlan) (*FaultInjector, error) {
	return faults.New(env.Kernel, plan)
}

// StandardFaultPlans is the chaos-sweep fault-plan grid.
func StandardFaultPlans() []FaultPlan { return faults.StandardPlans() }

// Adaptive recovery layer (internal/recovery): deterministic retry
// backoff, per-site circuit breakers, job wall-clock deadlines, and
// straggler hedging, attached to a pool/workflow through the same
// hook seams the fault engine uses (DESIGN.md §11).
type (
	RecoveryConfig = recovery.Config
	RecoveryPolicy = recovery.Policy
	RecoveryStats  = recovery.Stats
)

// DefaultRecoveryConfig enables all four recovery mechanisms with the
// chaos-sweep-tuned defaults.
func DefaultRecoveryConfig() RecoveryConfig { return recovery.DefaultConfig() }

// NewRecoveryPolicy validates cfg and binds it to the environment's
// kernel. Attach the policy to the environment's pool and the
// workflow's schedd and executor before running — and create it after
// any fault injector, so RNG stream splits happen in a fixed order.
func NewRecoveryPolicy(env *Env, cfg RecoveryConfig) (*RecoveryPolicy, error) {
	return recovery.New(env.Kernel, cfg)
}

// Experiment harness entry points (see DESIGN.md's experiment index).
var (
	Fig2     = expt.Fig2
	Fig3     = expt.Fig3
	Fig4     = expt.Fig4
	Fig5     = expt.Fig5
	Fig6     = expt.Fig6
	Headline = expt.Headline
	Fig1     = expt.Fig1

	// Extensions beyond the paper's evaluation (DESIGN.md §6):
	// ablations of FDW design choices, the Policy-3 sweep the paper
	// describes but does not run, and the future-work elastic policy.
	AblationRecycling = expt.AblationRecycling
	AblationStash     = expt.AblationStash
	AblationFanout    = expt.AblationFanout
	AblationChurn     = expt.AblationChurn
	Policy3Sweep      = expt.Policy3Sweep
	ElasticComparison = expt.ElasticComparison

	// Chaos is the fault-injection sweep: the Fig. 2-scale workflow
	// under every standard fault plan, with termination, conservation,
	// and determinism invariants enforced (DESIGN.md §10).
	Chaos = expt.Chaos
)

// Distributed campaign runner (DESIGN.md §13): figure campaigns
// partition into deterministic shards whose manifest bundles merge
// back into the byte-identical unsharded report — the fdwexp
// -shard/-merge/-resume machinery.
type (
	CampaignManifest = expt.CampaignManifest
	CampaignShardRun = expt.ShardRun
	CampaignMerge    = expt.MergeResult
	ShardSpec        = expt.ShardSpec
)

var (
	// RunCampaignShard executes one shard of a campaign, checkpointing
	// its manifest after every completed cell; ErrShardIncomplete marks
	// a budgeted (resumable) stop.
	RunCampaignShard = expt.RunShard
	// MergeCampaignManifests verifies a complete set of shard bundles
	// and re-finalizes the campaign identically to an unsharded run.
	MergeCampaignManifests    = expt.MergeManifests
	MergeCampaignManifestFile = expt.MergeManifestFiles
	ReadCampaignManifest      = expt.ReadCampaignManifest
	ShardableCampaigns        = expt.ShardableCampaigns
	ErrShardIncomplete        = expt.ErrIncomplete
)

// Fault-tolerant campaign scheduler (DESIGN.md §16): a deterministic
// sim-clock coordinator drives N logical workers over a campaign's
// cells under heartbeat leases, with scripted worker faults,
// work-stealing, straggler hedging, and digest-arbitrated duplicate
// completions. The merged report stays byte-identical to the unsharded
// run for every crash schedule — the fdwexp -sched machinery.
type (
	CampaignHandle = expt.CampaignHandle
	SchedConfig    = sched.Config
	SchedResult    = sched.Result
	SchedStats     = sched.Stats
	SchedMatrixRow = sched.MatrixRow
	WorkerPlan     = faults.WorkerPlan
	WorkerCrash    = faults.WorkerCrash

	// Bundle inventory (fdwexp -status).
	BundleStatus         = expt.BundleStatus
	CampaignStatus       = expt.CampaignStatus
	CampaignStatusReport = expt.StatusReport
)

var (
	// OpenCampaign exposes a shardable campaign's canonical cells,
	// fingerprint, per-cell runner, and finalizer to external drivers.
	OpenCampaign = expt.OpenCampaign
	// RunScheduled drives a campaign through the fault-tolerant
	// scheduler; MemoizeCampaign caches per-cell results for drivers
	// that legitimately re-run cells.
	RunScheduled          = sched.Run
	MemoizeCampaign       = sched.Memoize
	SchedWorkerBundlePath = sched.WorkerBundlePath
	// SchedMatrix is the scheduler A/B matrix: every standard worker
	// plan × {no-steal, steal, steal+hedge}, each arm checked
	// byte-for-byte against the unsharded reference.
	SchedMatrix         = sched.Matrix
	SchedMatrixPolicies = sched.MatrixPolicies
	WriteSchedMatrixCSV = sched.WriteMatrixCSV
	StandardWorkerPlans = faults.StandardWorkerPlans
	WorkerPlanByName    = faults.WorkerPlanByName

	// CampaignStatusOf inventories manifest bundles (shard or
	// scheduler) for fdwexp -status.
	CampaignStatusOf    = expt.Status
	CampaignStatusPaths = expt.StatusPaths
	WriteCampaignStatus = expt.WriteStatus
)

// Scenario bundles one FakeQuakes rupture and its station waveforms.
type Scenario struct {
	Rupture   *fakequakes.Rupture
	Waveforms []fakequakes.Waveform
	Stations  []geom.Station
	Fault     *geom.Fault
}

// HypocentralDistanceKm returns the 3-D distance from the scenario's
// hypocenter to the i-th station.
func (s *Scenario) HypocentralDistanceKm(i int) float64 {
	hypo := &s.Fault.Subfaults[s.Rupture.Hypocenter]
	surf := geom.HaversineKm(s.Stations[i].Pos, hypo.Center)
	return math.Sqrt(surf*surf + hypo.DepthKm*hypo.DepthKm)
}

// GenerateScenario runs the real numeric kernels end-to-end: a
// stochastic rupture of the target magnitude on a Chilean-style mesh
// and its synthetic GNSS displacement waveforms at nStations stations.
func GenerateScenario(seed uint64, targetMw float64, nStations int) (*Scenario, error) {
	p, err := expt.Fig1(seed, targetMw, nStations)
	if err != nil {
		return nil, err
	}
	return &Scenario{Rupture: p.Rupture, Waveforms: p.Waveforms, Stations: p.Stations, Fault: p.Fault}, nil
}

// Catalog is the VDC data-services product store.
type Catalog = vdc.Catalog

// Product is one curated data product.
type Product = vdc.Product

// CatalogQuery filters catalog searches.
type CatalogQuery = vdc.Query

// NewCatalog returns an empty VDC catalog.
func NewCatalog() *Catalog { return vdc.NewCatalog() }

// LoadCatalog restores a catalog saved with Catalog.Save.
var LoadCatalog = vdc.LoadCatalog

// CatalogServer wraps a catalog in the VDC portal HTTP API.
type CatalogServer = vdc.Server

// NewCatalogServer builds the HTTP handler for a catalog.
func NewCatalogServer(c *Catalog) *CatalogServer { return vdc.NewServer(c) }

// CatalogClient talks to a VDC portal.
type CatalogClient = vdc.Client

// DepositProducts archives a finished workflow's data products into a
// VDC catalog — the paper's post-simulation step ("thousands of files
// are congregated, labeled, and archived") feeding the Fig. 7
// pipeline. It deposits one rupture-set, one Green's-function archive,
// and one waveform-set product per batch, tagged for EEW discovery,
// and returns the assigned product ids.
func DepositProducts(w *Workflow, c *Catalog) ([]string, error) {
	if !w.Done() {
		return nil, fmt.Errorf("fdw: workflow %q has not finished", w.Cfg.Name)
	}
	_, aJobs, _, cJobs, _ := w.Cfg.JobCounts()
	products := []Product{
		{
			Name: w.Cfg.Name + " ruptures", Type: vdc.TypeRupture,
			Batch: w.Cfg.Name, Region: "chile", Mw: w.Cfg.MaxMw,
			SizeBytes:   int64(aJobs) * 4e6,
			Tags:        []string{"eew", "fakequakes"},
			Description: fmt.Sprintf("%d stochastic rupture scenarios, Mw %.1f-%.1f", w.Cfg.Waveforms, w.Cfg.MinMw, w.Cfg.MaxMw),
		},
		{
			Name: w.Cfg.Name + " greens functions", Type: vdc.TypeGF,
			Batch: w.Cfg.Name, Region: "chile",
			SizeBytes:   int64(1.05e9),
			Tags:        []string{"recyclable"},
			Description: fmt.Sprintf("%d-station GF archive (.mseed)", w.Cfg.Stations),
		},
		{
			Name: w.Cfg.Name + " waveforms", Type: vdc.TypeWaveform,
			Batch: w.Cfg.Name, Region: "chile", Mw: w.Cfg.MaxMw,
			SizeBytes:   int64(cJobs) * 5e6,
			Tags:        []string{"eew", "training", "gnss"},
			Description: fmt.Sprintf("%d synthetic high-rate GNSS displacement waveforms", w.Cfg.Waveforms),
		},
	}
	ids := make([]string, 0, len(products))
	for _, p := range products {
		id, err := c.Deposit(p)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// NewCatalogClient returns a client for the portal at baseURL.
func NewCatalogClient(baseURL string) *CatalogClient { return vdc.NewClient(baseURL) }
