// Package seamguard_bad calls through nil-off hook seams without a
// dominating nil check: each call here panics the moment the hook is
// left unset.
package seamguard_bad

import "fdw/internal/obs"

// ExecHook is an optional seam by naming convention.
type ExecHook interface {
	OnFault(site string)
}

// Pool has one of each hook kind: a nil-checked func field, a *Hook
// interface field, and an obs registry field.
type Pool struct {
	gate     func(n int) bool
	recovery ExecHook
	reg      *obs.Registry
}

// SetGate registers the optional admission gate.
func (p *Pool) SetGate(fn func(n int) bool) { p.gate = fn }

// gateOK is the package's own nil check of the gate — the signal that
// the field is a nil-off hook, not an always-set callback.
func (p *Pool) gateOK() bool { return p.gate != nil }

// Admit calls the gate with no guard in sight.
func (p *Pool) Admit(n int) bool {
	return p.gate(n)
}

// Fault calls the hook interface unguarded.
func (p *Pool) Fault(site string) {
	p.recovery.OnFault(site)
}

// Count records through the registry field unguarded.
func (p *Pool) Count() {
	p.reg.Counter("pool_admissions_total").Inc()
}

// Stale guards outside the goroutine; by the time the closure runs the
// hook may have been cleared, so the inner call needs its own check.
func (p *Pool) Stale(site string) {
	if p.recovery != nil {
		go func() {
			p.recovery.OnFault(site)
		}()
	}
}

// WrongConjunct reaches the call with the gate possibly nil: a true
// `n > 0` short-circuits past the nil check.
func (p *Pool) WrongConjunct(n int) bool {
	if n > 0 || p.gate != nil {
		return p.gate(n)
	}
	return false
}
