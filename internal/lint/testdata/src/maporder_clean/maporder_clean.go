// Package maporder_clean iterates maps only in ways the maporder
// analyzer permits: collect-and-sort, commutative accumulation, and
// order-sensitive work driven by the sorted keys.
package maporder_clean

import (
	"fmt"
	"io"
	"sort"
)

// SortedKeys is the blessed idiom: append only the keys, then sort.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Dump writes rows in sorted-key order.
func Dump(w io.Writer, m map[string]int) {
	for _, k := range SortedKeys(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Total accumulates commutatively; order cannot show.
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// SliceSorted shows sort.Slice also satisfies the idiom.
func SliceSorted(m map[string]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}
