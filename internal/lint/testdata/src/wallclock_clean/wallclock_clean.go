// Package wallclock_clean uses package time only for deterministic
// conversions and formatting, which the wallclock analyzer permits.
package wallclock_clean

import "time"

// Render formats a simulated-seconds value as a duration string.
func Render(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).String()
}

// Epoch is a fixed date, not a clock read.
var Epoch = time.Date(2023, time.November, 12, 0, 0, 0, 0, time.UTC)

// ParseStamp parses a textual timestamp.
func ParseStamp(s string) (time.Time, error) {
	return time.Parse("2006-01-02 15:04:05", s)
}
