package expt

import (
	"fmt"

	"fdw/internal/baseline"
	"fdw/internal/core"
	"fdw/internal/stats"
)

// HeadlineResult is the §6 comparison: FDW versus an automated
// single-machine FakeQuakes run for 1,024 full-input waveforms, plus
// the abstract's throughput multiple between 1,024 and 50,000.
type HeadlineResult struct {
	Waveforms      int
	FDWHours       float64
	BaselineHours  float64
	DecreasePct    float64 // the paper reports 56.8%
	JPMAt1024      float64
	JPMAt50000     float64
	ThroughputGain float64 // the paper reports ≈5×
}

// Headline reruns the headline measurements.
func Headline(opt Options) (*HeadlineResult, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	w := opt.out()
	n1024 := opt.scaleN(1024)
	n50000 := opt.scaleN(50000)

	// Both quantities × all seeds fan out together; per-seed results are
	// averaged in seed order, as a serial run would.
	reps := len(opt.Seeds)
	quantities := []int{n1024, n50000}
	type result struct{ rt, jpm float64 }
	results := make([]result, len(quantities)*reps)
	err := forEachIndex(opt.workers(), len(results), func(i int) error {
		q, seed := quantities[i/reps], opt.Seeds[i%reps]
		cfg := core.DefaultConfig()
		cfg.Name = fmt.Sprintf("headline-%d", q)
		cfg.Waveforms = q
		cfg.Seed = seed
		rt, jpm, _, err := runOne(opt, cfg, seed)
		if err != nil {
			return fmt.Errorf("headline %d run: %w", q, err)
		}
		results[i] = result{rt, jpm}
		return nil
	})
	if err != nil {
		return nil, err
	}
	mean := func(qi int, field func(result) float64) float64 {
		vals := make([]float64, reps)
		for r := 0; r < reps; r++ {
			vals[r] = field(results[qi*reps+r])
		}
		return stats.Mean(vals)
	}
	fdwH := mean(0, func(r result) float64 { return r.rt })
	jpmSmall := mean(0, func(r result) float64 { return r.jpm })
	jpmBig := mean(1, func(r result) float64 { return r.jpm })

	cfg := core.DefaultConfig()
	cfg.Waveforms = n1024
	bl, err := baseline.Run(baseline.AWSInstance(), cfg)
	if err != nil {
		return nil, err
	}

	res := &HeadlineResult{
		Waveforms:     n1024,
		FDWHours:      fdwH,
		BaselineHours: bl.TotalHours(),
		DecreasePct:   stats.PctDecrease(bl.TotalHours(), fdwH),
		JPMAt1024:     jpmSmall,
		JPMAt50000:    jpmBig,
	}
	if jpmSmall > 0 {
		res.ThroughputGain = jpmBig / jpmSmall
	}
	fmt.Fprintf(w, "Headline — %d full-input waveforms: FDW %.2f h vs single machine %.2f h → %.1f%% decrease (paper: 56.8%%)\n",
		res.Waveforms, res.FDWHours, res.BaselineHours, res.DecreasePct)
	fmt.Fprintf(w, "Throughput gain %d→%d waveforms: %.2f× (paper: ≈5×)\n",
		n1024, n50000, res.ThroughputGain)
	return res, nil
}
