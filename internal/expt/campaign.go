package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"fdw/internal/burst"
	"fdw/internal/core"
	"fdw/internal/faults"
	"fdw/internal/sim"
	"fdw/internal/stats"
	"fdw/internal/wtrace"
)

// A campaign is a shardable experiment: a canonically ordered list of
// independent cells (one simulation each, identified by a stable
// string), a per-cell runner, and a finalizer that aggregates the
// per-cell results into the printed report and figure rows. The
// unsharded figure entry points (Fig2, Fig3, Fig5, Fig6, Chaos) run
// every cell locally and finalize; the shard runner (shard.go) runs
// one deterministic subset and persists results in a manifest, and the
// merger re-finalizes from manifests — through the *same* finalize
// code path, which is what makes merged output byte-identical to an
// unsharded run (DESIGN.md §13).
type campaign struct {
	name    string
	csvName string
	// cells enumerates the canonical cell id list. Ids must be unique
	// and stable: they never depend on worker count, map order, or which
	// shard is running.
	cells func(opt Options) ([]string, error)
	// run computes cell i's result — pure, independent of every other
	// cell — returning the result and the cell simulation's final
	// sim-clock reading (manifest provenance).
	run func(opt Options, ctx *campaignCtx, i int) (any, sim.Time, error)
	// decode unmarshals one stored cell result (manifest JSON).
	decode func(raw json.RawMessage) (any, error)
	// finalize aggregates results (canonical cell order) into the
	// printed report on opt.Out and returns the figure rows.
	finalize func(opt Options, results []any) (any, error)
	// writeCSV renders finalize's rows as the figure CSV.
	writeCSV func(w io.Writer, rows any) error
}

// campaignCtx carries per-invocation shared state across cell runs:
// the Fig. 5/6 batch traces, generated once per process on demand so
// every shard rebuilds them deterministically instead of depending on
// another shard's output.
type campaignCtx struct {
	traceOnce sync.Once
	batches   []wtrace.BatchRecord
	jobs      [][]wtrace.JobRecord
	traceErr  error
}

func (ctx *campaignCtx) traces(opt Options) ([]wtrace.BatchRecord, [][]wtrace.JobRecord, error) {
	ctx.traceOnce.Do(func() {
		ctx.batches, ctx.jobs, ctx.traceErr = MakeBatchTraces(opt)
	})
	return ctx.batches, ctx.jobs, ctx.traceErr
}

// campaigns is the shardable campaign registry, in dispatch order.
var campaigns = []*campaign{
	fig2Campaign(),
	fig3Campaign(),
	fig5Campaign("fig5", 1.0, "Fig. 5"),
	fig5Campaign("fig6", burst.DefaultMaxBurstFraction, "Fig. 6"),
	chaosCampaign(),
}

// ShardableCampaigns lists the campaigns fdwexp can run as -shard i/N.
func ShardableCampaigns() []string {
	out := make([]string, len(campaigns))
	for i, c := range campaigns {
		out[i] = c.name
	}
	return out
}

func campaignByName(name string) (*campaign, error) {
	for _, c := range campaigns {
		if c.name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("expt: %q is not a shardable campaign (have %v)", name, ShardableCampaigns())
}

// checkCellIDs enforces the id contract: non-empty and unique.
func checkCellIDs(campaign string, ids []string) ([]string, error) {
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("expt: %s enumerated an empty cell id", campaign)
		}
		if seen[id] {
			return nil, fmt.Errorf("expt: %s cell id %q is not unique (seeds must be distinct)", campaign, id)
		}
		seen[id] = true
	}
	return ids, nil
}

// runCampaign executes every cell locally and finalizes — the
// unsharded path behind Fig2/Fig3/Fig5/Fig6/Chaos.
func runCampaign(c *campaign, opt Options) (any, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	ids, err := c.cells(opt)
	if err != nil {
		return nil, err
	}
	ctx := &campaignCtx{}
	results := make([]any, len(ids))
	err = forEachIndex(opt.workers(), len(ids), func(i int) error {
		r, _, err := c.run(opt, ctx, i)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c.finalize(opt, results)
}

// decodeInto is the generic manifest-result decoder.
func decodeInto[T any](raw json.RawMessage) (any, error) {
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("expt: bad cell result: %w", err)
	}
	return v, nil
}

// ---------------------------------------------------------------- fig2

type fig2Cell struct {
	stations int
	quantity int // paper quantity, unscaled; scaled by opt at run time
	seed     uint64
}

// fig2Result is one (cell, seed) simulation's measurements.
type fig2Result struct {
	RuntimeH float64 `json:"runtime_h"`
	JPM      float64 `json:"jpm"`
	Jobs     int     `json:"jobs"`
}

// fig2Cells flattens the sweep: stations outer, quantity inner, seeds
// innermost — fig2 finalize aggregates with the same indexing.
func fig2Cells(opt Options) []fig2Cell {
	var cells []fig2Cell
	for _, stations := range []int{2, 121} {
		for _, q := range Fig2Quantities {
			for _, seed := range opt.Seeds {
				cells = append(cells, fig2Cell{stations, q, seed})
			}
		}
	}
	return cells
}

func fig2Campaign() *campaign {
	return &campaign{
		name:    "fig2",
		csvName: "fig2.csv",
		cells: func(opt Options) ([]string, error) {
			cells := fig2Cells(opt)
			ids := make([]string, len(cells))
			for i, c := range cells {
				ids[i] = fmt.Sprintf("s%d/q%d/seed%d", c.stations, c.quantity, c.seed)
			}
			return checkCellIDs("fig2", ids)
		},
		run: func(opt Options, _ *campaignCtx, i int) (any, sim.Time, error) {
			c := fig2Cells(opt)[i]
			n := opt.scaleN(c.quantity)
			cfg := core.DefaultConfig()
			cfg.Name = fmt.Sprintf("fig2-s%d-q%d", c.stations, n)
			cfg.Stations = c.stations
			cfg.Waveforms = n
			cfg.Seed = c.seed
			rt, jpm, done, end, err := runOneCell(opt, cfg, c.seed)
			if err != nil {
				return nil, 0, fmt.Errorf("fig2 %d×%d: %w", c.stations, n, err)
			}
			return fig2Result{RuntimeH: rt, JPM: jpm, Jobs: done}, end, nil
		},
		decode: decodeInto[fig2Result],
		finalize: func(opt Options, results []any) (any, error) {
			w := opt.out()
			fmt.Fprintf(w, "Fig. 2 — increasing earthquake simulation quantities (scale %.2f, %d reps)\n", opt.Scale, len(opt.Seeds))
			fmt.Fprintf(w, "%8s %9s %7s | %21s | %18s\n", "stations", "waveforms", "jobs", "avg runtime h (sd)", "avg JPM (sd)")
			reps := len(opt.Seeds)
			cells := fig2Cells(opt)
			var rows []Fig2Row
			for ci := 0; ci < len(cells); ci += reps {
				var rts, jpms, jobs []float64
				for r := 0; r < reps; r++ {
					res := results[ci+r].(fig2Result)
					rts = append(rts, res.RuntimeH)
					jpms = append(jpms, res.JPM)
					jobs = append(jobs, float64(res.Jobs))
				}
				c := cells[ci]
				row := Fig2Row{
					Stations:      c.stations,
					Waveforms:     opt.scaleN(c.quantity),
					Jobs:          int(stats.Mean(jobs)),
					RuntimeH:      stats.AvgTotalRuntime(rts),
					RuntimeSD:     stats.SD(rts),
					RuntimeMin:    stats.Min(rts),
					RuntimeMax:    stats.Max(rts),
					ThroughputJPM: stats.Mean(jpms),
					ThroughputSD:  stats.SD(jpms),
				}
				rows = append(rows, row)
				fmt.Fprintf(w, "%8d %9d %7d | %10.2f (%6.2f) | %10.2f (%5.2f)\n",
					row.Stations, row.Waveforms, row.Jobs,
					row.RuntimeH, row.RuntimeSD, row.ThroughputJPM, row.ThroughputSD)
			}
			return rows, nil
		},
		writeCSV: func(w io.Writer, rows any) error { return WriteFig2CSV(w, rows.([]Fig2Row)) },
	}
}

// ---------------------------------------------------------------- fig3

type fig3Cell struct {
	dagmans int
	seed    uint64
}

// fig3Result is one (concurrency level, seed) batch: per-DAGMan
// measurements in DAGMan order plus the batch makespan.
type fig3Result struct {
	RuntimeHs []float64 `json:"runtime_hs"`
	JPMs      []float64 `json:"jpms"`
	MakespanH float64   `json:"makespan_h"`
}

func fig3Cells(opt Options) []fig3Cell {
	var cells []fig3Cell
	for _, n := range Fig3Concurrency {
		for _, seed := range opt.Seeds {
			cells = append(cells, fig3Cell{n, seed})
		}
	}
	return cells
}

func fig3Campaign() *campaign {
	return &campaign{
		name:    "fig3",
		csvName: "fig3.csv",
		cells: func(opt Options) ([]string, error) {
			cells := fig3Cells(opt)
			ids := make([]string, len(cells))
			for i, c := range cells {
				ids[i] = fmt.Sprintf("n%d/seed%d", c.dagmans, c.seed)
			}
			return checkCellIDs("fig3", ids)
		},
		run: func(opt Options, _ *campaignCtx, i int) (any, sim.Time, error) {
			c := fig3Cells(opt)[i]
			total := opt.scaleN(Fig3Total)
			each := total / c.dagmans
			env, err := core.NewEnvObs(c.seed, opt.Pool, opt.Obs)
			if err != nil {
				return nil, 0, err
			}
			var wfs []*core.Workflow
			for d := 0; d < c.dagmans; d++ {
				cfg := core.DefaultConfig()
				cfg.Name = fmt.Sprintf("fig3-n%d-d%d", c.dagmans, d)
				cfg.Waveforms = each
				cfg.Seed = c.seed*1000 + uint64(d)
				wf, err := core.NewWorkflow(cfg, env.Kernel, env.Pool, nil)
				if err != nil {
					return nil, 0, err
				}
				wfs = append(wfs, wf)
			}
			if err := core.RunBatch(env, wfs, opt.Horizon); err != nil {
				return nil, 0, fmt.Errorf("fig3 n=%d: %w", c.dagmans, err)
			}
			var res fig3Result
			for _, wf := range wfs {
				res.RuntimeHs = append(res.RuntimeHs, wf.RuntimeHours())
				res.JPMs = append(res.JPMs, wf.ThroughputJPM())
			}
			res.MakespanH = float64(env.Kernel.Now()) / 3600
			return res, env.Kernel.Now(), nil
		},
		decode: decodeInto[fig3Result],
		finalize: func(opt Options, results []any) (any, error) {
			w := opt.out()
			total := opt.scaleN(Fig3Total)
			fmt.Fprintf(w, "Fig. 3 — concurrent HTCondor DAGMans jointly making %d waveforms (%d reps)\n", total, len(opt.Seeds))
			fmt.Fprintf(w, "%7s %9s | %21s | %12s | %10s\n", "dagmans", "wf each", "avg runtime h (sd)", "avg JPM", "makespan h")
			reps := len(opt.Seeds)
			var rows []Fig3Row
			for li, n := range Fig3Concurrency {
				each := total / n
				var rts, jpms, makespans []float64
				for r := 0; r < reps; r++ {
					res := results[li*reps+r].(fig3Result)
					rts = append(rts, res.RuntimeHs...)
					jpms = append(jpms, res.JPMs...)
					makespans = append(makespans, res.MakespanH)
				}
				row := Fig3Row{
					DAGMans:       n,
					WaveformsEach: each,
					RuntimeH:      stats.AvgRuntimeAcrossDAGMans(rts),
					RuntimeSD:     stats.SD(rts),
					RuntimeMin:    stats.Min(rts),
					RuntimeMax:    stats.Max(rts),
					ThroughputJPM: stats.Mean(jpms),
					MakespanH:     stats.Mean(makespans),
				}
				rows = append(rows, row)
				fmt.Fprintf(w, "%7d %9d | %10.2f (%6.2f) | %12.2f | %10.2f\n",
					row.DAGMans, row.WaveformsEach, row.RuntimeH, row.RuntimeSD,
					row.ThroughputJPM, row.MakespanH)
			}
			return rows, nil
		},
		writeCSV: func(w io.Writer, rows any) error { return WriteFig3CSV(w, rows.([]Fig3Row)) },
	}
}

// ------------------------------------------------------------- fig5/6

// fig5Spec is one (batch, policy) cell of the bursting sweep.
type fig5Spec struct {
	bi            int
	probe, queueM float64
	control       bool
}

// fig5SpecsFor enumerates every (batch, policy) cell in print order:
// the pure-OSG control first for each batch, then queue × probe.
func fig5SpecsFor(nBatches int) []fig5Spec {
	var specs []fig5Spec
	for bi := 0; bi < nBatches; bi++ {
		specs = append(specs, fig5Spec{bi: bi, control: true})
		for _, queueM := range Fig5QueueTimesMin {
			for _, probe := range Fig5ProbeTimes {
				specs = append(specs, fig5Spec{bi: bi, probe: probe, queueM: queueM})
			}
		}
	}
	return specs
}

// runFig5Spec replays one sweep cell against its batch trace.
func runFig5Spec(opt Options, batches []wtrace.BatchRecord, jobs [][]wtrace.JobRecord, s fig5Spec, maxBurstFraction float64) (Fig5Cell, sim.Time, error) {
	batch := batches[s.bi]
	cfg := burst.DefaultConfig()
	cfg.Obs = opt.Obs
	cfg.MaxBurstFraction = maxBurstFraction
	if !s.control {
		cfg.P1 = &burst.Policy1{ProbeSecs: s.probe, ThresholdJPM: Fig5Threshold}
		cfg.P2 = &burst.Policy2{MaxQueueSecs: s.queueM * 60}
	}
	res, err := burst.Simulate(batch, jobs[s.bi], cfg)
	if err != nil {
		if s.control {
			return Fig5Cell{}, 0, fmt.Errorf("control %s: %w", batch.Name, err)
		}
		return Fig5Cell{}, 0, fmt.Errorf("%s probe %v queue %v: %w", batch.Name, s.probe, s.queueM, err)
	}
	cell := cellFrom(batch.Name, s.probe, s.queueM, res)
	cell.Control = s.control
	return cell, sim.Time(res.RuntimeSecs), nil
}

// printFig5Cells renders the sweep report — shared by Fig5FromTraces
// and the campaign finalizer so sharded merges print identical bytes.
func printFig5Cells(w io.Writer, label string, maxBurstFraction float64, cells []Fig5Cell) {
	fmt.Fprintf(w, "%s — VDC bursting sweep (threshold %d JPM, probes %v s, queue caps %v min, burst cap %.0f%%)\n",
		label, Fig5Threshold, Fig5ProbeTimes, Fig5QueueTimesMin, maxBurstFraction*100)
	fmt.Fprintf(w, "%8s %7s %7s | %8s %8s %8s | %7s %9s %9s\n",
		"batch", "probe s", "queue m", "AIT jpm", "max jpm", "VDC %", "burst %", "runtime h", "cost $")
	for _, cell := range cells {
		if cell.Control {
			fmt.Fprintf(w, "%8s %7s %7s | %8.2f %8.2f %8.1f | %7.1f %9.2f %9.2f\n",
				cell.Batch, "ctl", "-", cell.AvgJPM, cell.MaxJPM, cell.VDCPct, cell.BurstedPct, cell.RuntimeH, cell.CostUSD)
			continue
		}
		fmt.Fprintf(w, "%8s %7.0f %7.0f | %8.2f %8.2f %8.1f | %7.1f %9.2f %9.2f\n",
			cell.Batch, cell.ProbeSecs, cell.MaxQueueM, cell.AvgJPM, cell.MaxJPM, cell.VDCPct,
			cell.BurstedPct, cell.RuntimeH, cell.CostUSD)
	}
}

// fig5Campaign builds the bursting-sweep campaign for the given cap:
// Fig. 5 runs uncapped, Fig. 6 with the paper's 30% bursted-job cap.
// The cell list is fixed by MakeBatchTraces' two batches.
func fig5Campaign(name string, maxBurstFraction float64, label string) *campaign {
	return &campaign{
		name:    name,
		csvName: name + ".csv",
		cells: func(opt Options) ([]string, error) {
			specs := fig5SpecsFor(2)
			ids := make([]string, len(specs))
			for i, s := range specs {
				if s.control {
					ids[i] = fmt.Sprintf("b%d/ctl", s.bi+1)
				} else {
					ids[i] = fmt.Sprintf("b%d/q%.0f/p%.0f", s.bi+1, s.queueM, s.probe)
				}
			}
			return checkCellIDs(name, ids)
		},
		run: func(opt Options, ctx *campaignCtx, i int) (any, sim.Time, error) {
			batches, jobs, err := ctx.traces(opt)
			if err != nil {
				return nil, 0, err
			}
			return runFig5Spec(opt, batches, jobs, fig5SpecsFor(2)[i], maxBurstFraction)
		},
		decode: decodeInto[Fig5Cell],
		finalize: func(opt Options, results []any) (any, error) {
			cells := make([]Fig5Cell, len(results))
			for i, r := range results {
				cells[i] = r.(Fig5Cell)
			}
			printFig5Cells(opt.out(), label, maxBurstFraction, cells)
			return cells, nil
		},
		writeCSV: func(w io.Writer, rows any) error { return WriteFig5CSV(w, rows.([]Fig5Cell)) },
	}
}

// ---------------------------------------------------------------- chaos

type chaosCell struct {
	plan faults.Plan
	seed uint64
	rec  bool
}

// chaosCells flattens the A/B matrix in grid order: plan outer, seed
// inner, recovery-off before recovery-on.
func chaosCells(opt Options) []chaosCell {
	var cells []chaosCell
	for _, plan := range faults.StandardPlans() {
		for _, seed := range opt.Seeds {
			for _, rec := range []bool{false, true} {
				cells = append(cells, chaosCell{plan, seed, rec})
			}
		}
	}
	return cells
}

func chaosCampaign() *campaign {
	return &campaign{
		name:    "chaos",
		csvName: "chaos.csv",
		cells: func(opt Options) ([]string, error) {
			cells := chaosCells(opt)
			ids := make([]string, len(cells))
			for i, c := range cells {
				arm := "off"
				if c.rec {
					arm = "on"
				}
				ids[i] = fmt.Sprintf("%s/seed%d/%s", c.plan.Name, c.seed, arm)
			}
			return checkCellIDs("chaos", ids)
		},
		run: func(opt Options, _ *campaignCtx, i int) (any, sim.Time, error) {
			c := chaosCells(opt)[i]
			row, end, err := chaosOne(opt, c.plan, c.seed, c.rec)
			if err != nil {
				return nil, 0, fmt.Errorf("chaos plan %q seed %d recovery %t: %w", c.plan.Name, c.seed, c.rec, err)
			}
			return row, end, nil
		},
		decode: decodeInto[ChaosRow],
		finalize: func(opt Options, results []any) (any, error) {
			rows := make([]ChaosRow, len(results))
			for i, r := range results {
				rows[i] = r.(ChaosRow)
			}
			printChaosReport(opt, rows)
			return rows, nil
		},
		writeCSV: func(w io.Writer, rows any) error { return WriteChaosCSV(w, rows.([]ChaosRow)) },
	}
}
