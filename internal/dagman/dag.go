// Package dagman reimplements HTCondor's DAGMan workflow engine:
// DAG-description files (JOB / PARENT..CHILD / VARS / RETRY / CATEGORY
// / MAXJOBS), an executor that submits node jobs to a schedd as their
// dependencies resolve, per-category throttles, retries, and rescue-DAG
// generation. FDW is three such nodes (phases A, B, C) fanned out over
// thousands of jobs.
package dagman

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Node is one DAG vertex.
type Node struct {
	Name       string
	SubmitFile string            // referenced submit-description name
	Vars       map[string]string // VARS key/value macros
	Parents    []string
	Children   []string
	Retry      int    // extra attempts after a failure
	Category   string // throttling category ("" = none)
	Done       bool   // pre-marked DONE (rescue DAGs)
	PreScript  string // SCRIPT PRE command line ("" = none)
	PostScript string // SCRIPT POST command line ("" = none)
}

// DAG is a parsed workflow graph.
type DAG struct {
	Nodes    map[string]*Node
	Order    []string       // declaration order
	MaxJobs  map[string]int // category → max concurrently active nodes
	Comments []string
}

// NewDAG returns an empty DAG.
func NewDAG() *DAG {
	return &DAG{Nodes: map[string]*Node{}, MaxJobs: map[string]int{}}
}

// AddNode inserts a node; duplicate names are an error.
func (d *DAG) AddNode(n *Node) error {
	if n.Name == "" {
		return fmt.Errorf("dagman: node with empty name")
	}
	if _, dup := d.Nodes[n.Name]; dup {
		return fmt.Errorf("dagman: duplicate node %q", n.Name)
	}
	if n.Vars == nil {
		n.Vars = map[string]string{}
	}
	d.Nodes[n.Name] = n
	d.Order = append(d.Order, n.Name)
	return nil
}

// AddEdge records parent → child.
func (d *DAG) AddEdge(parent, child string) error {
	p, ok := d.Nodes[parent]
	if !ok {
		return fmt.Errorf("dagman: unknown parent %q", parent)
	}
	c, ok := d.Nodes[child]
	if !ok {
		return fmt.Errorf("dagman: unknown child %q", child)
	}
	if parent == child {
		return fmt.Errorf("dagman: self edge on %q", parent)
	}
	p.Children = append(p.Children, child)
	c.Parents = append(c.Parents, parent)
	return nil
}

// Validate checks referential integrity and acyclicity.
func (d *DAG) Validate() error {
	if len(d.Nodes) == 0 {
		return fmt.Errorf("dagman: empty DAG")
	}
	// Kahn's algorithm for cycle detection.
	indeg := map[string]int{}
	for name, n := range d.Nodes {
		indeg[name] = len(n.Parents)
	}
	var ready []string
	for name, deg := range indeg {
		if deg == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)
	seen := 0
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		seen++
		for _, c := range d.Nodes[name].Children {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if seen != len(d.Nodes) {
		return fmt.Errorf("dagman: cycle detected (%d of %d nodes orderable)", seen, len(d.Nodes))
	}
	return nil
}

// Roots returns nodes with no parents, in declaration order.
func (d *DAG) Roots() []*Node {
	var out []*Node
	for _, name := range d.Order {
		if n := d.Nodes[name]; len(n.Parents) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Parse reads DAGMan file syntax.
func Parse(r io.Reader) (*DAG, error) {
	d := NewDAG()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			d.Comments = append(d.Comments, strings.TrimSpace(line[1:]))
			continue
		}
		fields := strings.Fields(line)
		cmd := strings.ToUpper(fields[0])
		fail := func(format string, args ...any) error {
			return fmt.Errorf("dagman: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch cmd {
		case "JOB":
			if len(fields) < 3 {
				return nil, fail("JOB needs name and submit file")
			}
			n := &Node{Name: fields[1], SubmitFile: fields[2], Vars: map[string]string{}}
			if len(fields) == 4 && strings.EqualFold(fields[3], "DONE") {
				n.Done = true
			}
			if err := d.AddNode(n); err != nil {
				return nil, fail("%v", err)
			}
		case "PARENT":
			idx := -1
			for i, f := range fields {
				if strings.EqualFold(f, "CHILD") {
					idx = i
					break
				}
			}
			if idx < 2 || idx == len(fields)-1 {
				return nil, fail("PARENT ... CHILD ... malformed")
			}
			for _, p := range fields[1:idx] {
				for _, c := range fields[idx+1:] {
					if err := d.AddEdge(p, c); err != nil {
						return nil, fail("%v", err)
					}
				}
			}
		case "VARS":
			if len(fields) < 3 {
				return nil, fail("VARS needs node and assignments")
			}
			n, ok := d.Nodes[fields[1]]
			if !ok {
				return nil, fail("VARS for unknown node %q", fields[1])
			}
			rest := strings.TrimSpace(line[strings.Index(line, fields[1])+len(fields[1]):])
			if err := parseVars(n, rest); err != nil {
				return nil, fail("%v", err)
			}
		case "RETRY":
			if len(fields) != 3 {
				return nil, fail("RETRY needs node and count")
			}
			n, ok := d.Nodes[fields[1]]
			if !ok {
				return nil, fail("RETRY for unknown node %q", fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil || v < 0 {
				return nil, fail("bad RETRY count %q", fields[2])
			}
			n.Retry = v
		case "CATEGORY":
			if len(fields) != 3 {
				return nil, fail("CATEGORY needs node and name")
			}
			n, ok := d.Nodes[fields[1]]
			if !ok {
				return nil, fail("CATEGORY for unknown node %q", fields[1])
			}
			n.Category = fields[2]
		case "SCRIPT":
			if len(fields) < 4 {
				return nil, fail("SCRIPT needs PRE|POST, node, and command")
			}
			n, ok := d.Nodes[fields[2]]
			if !ok {
				return nil, fail("SCRIPT for unknown node %q", fields[2])
			}
			cmdline := strings.Join(fields[3:], " ")
			switch strings.ToUpper(fields[1]) {
			case "PRE":
				n.PreScript = cmdline
			case "POST":
				n.PostScript = cmdline
			default:
				return nil, fail("SCRIPT kind %q must be PRE or POST", fields[1])
			}
		case "MAXJOBS":
			if len(fields) != 3 {
				return nil, fail("MAXJOBS needs category and limit")
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil || v <= 0 {
				return nil, fail("bad MAXJOBS limit %q", fields[2])
			}
			d.MaxJobs[fields[1]] = v
		default:
			return nil, fail("unknown command %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// parseVars handles `key="value" key2="value2"` assignments.
func parseVars(n *Node, s string) error {
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		eq := strings.Index(s, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed VARS near %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := strings.TrimSpace(s[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("VARS value for %q must be quoted", key)
		}
		end := strings.Index(rest[1:], `"`)
		if end < 0 {
			return fmt.Errorf("unterminated VARS value for %q", key)
		}
		n.Vars[key] = rest[1 : 1+end]
		s = rest[end+2:]
	}
	return nil
}

// Write renders the DAG back to DAGMan syntax.
func (d *DAG) Write(w io.Writer) error {
	for _, c := range d.Comments {
		if _, err := fmt.Fprintf(w, "# %s\n", c); err != nil {
			return err
		}
	}
	for _, name := range d.Order {
		n := d.Nodes[name]
		suffix := ""
		if n.Done {
			suffix = " DONE"
		}
		if _, err := fmt.Fprintf(w, "JOB %s %s%s\n", n.Name, n.SubmitFile, suffix); err != nil {
			return err
		}
		if len(n.Vars) > 0 {
			keys := make([]string, 0, len(n.Vars))
			for k := range n.Vars {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%q", k, n.Vars[k])
			}
			if _, err := fmt.Fprintf(w, "VARS %s %s\n", n.Name, strings.Join(parts, " ")); err != nil {
				return err
			}
		}
		if n.Retry > 0 {
			if _, err := fmt.Fprintf(w, "RETRY %s %d\n", n.Name, n.Retry); err != nil {
				return err
			}
		}
		if n.Category != "" {
			if _, err := fmt.Fprintf(w, "CATEGORY %s %s\n", n.Name, n.Category); err != nil {
				return err
			}
		}
		if n.PreScript != "" {
			if _, err := fmt.Fprintf(w, "SCRIPT PRE %s %s\n", n.Name, n.PreScript); err != nil {
				return err
			}
		}
		if n.PostScript != "" {
			if _, err := fmt.Fprintf(w, "SCRIPT POST %s %s\n", n.Name, n.PostScript); err != nil {
				return err
			}
		}
	}
	cats := make([]string, 0, len(d.MaxJobs))
	for c := range d.MaxJobs {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		if _, err := fmt.Fprintf(w, "MAXJOBS %s %d\n", c, d.MaxJobs[c]); err != nil {
			return err
		}
	}
	for _, name := range d.Order {
		n := d.Nodes[name]
		if len(n.Children) > 0 {
			if _, err := fmt.Fprintf(w, "PARENT %s CHILD %s\n", n.Name, strings.Join(n.Children, " ")); err != nil {
				return err
			}
		}
	}
	return nil
}
