package fdw_test

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"fdw"
)

// TestPublicAPIEndToEnd drives the full public surface: configure →
// run on the pool → monitor from the log → trace → burst → catalog.
func TestPublicAPIEndToEnd(t *testing.T) {
	env, err := fdw.NewEnv(5, fdw.DefaultPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fdw.DefaultConfig()
	cfg.Name = "api-e2e"
	cfg.Waveforms = 200
	cfg.Stations = 2
	cfg.Seed = 5

	var logBuf bytes.Buffer
	w, err := fdw.NewWorkflow(cfg, env, &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := fdw.RunBatch(env, []*fdw.Workflow{w}, 48*3600); err != nil {
		t.Fatal(err)
	}
	if !w.Done() || w.RuntimeHours() <= 0 {
		t.Fatalf("workflow state: done=%v runtime=%v", w.Done(), w.RuntimeHours())
	}

	// Monitoring round trip through the HTCondor log text.
	stats, err := fdw.AnalyzeLog(cfg.Name, &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CompletedJobs != w.Schedd.Completed() {
		t.Fatalf("log stats %d completed, schedd says %d", stats.CompletedJobs, w.Schedd.Completed())
	}

	// Trace round trip through the CSV formats.
	batch, jobs, err := fdw.TraceFromWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	var bcsv, jcsv bytes.Buffer
	if err := fdw.WriteBatchCSV(&bcsv, batch); err != nil {
		t.Fatal(err)
	}
	if err := fdw.WriteJobsCSV(&jcsv, jobs); err != nil {
		t.Fatal(err)
	}
	batch2, err := fdw.ReadBatchCSV(&bcsv)
	if err != nil {
		t.Fatal(err)
	}
	jobs2, err := fdw.ReadJobsCSV(&jcsv)
	if err != nil {
		t.Fatal(err)
	}
	if batch2 != batch || len(jobs2) != len(jobs) {
		t.Fatal("trace CSV round trip changed data")
	}

	// Bursting on the trace.
	bc := fdw.DefaultBurstConfig()
	bc.P1 = &fdw.BurstPolicy1{ProbeSecs: 5, ThresholdJPM: 34}
	res, err := fdw.Burst(batch2, jobs2, bc)
	if err != nil {
		t.Fatal(err)
	}
	control, err := fdw.Burst(batch2, jobs2, fdw.DefaultBurstConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgInstantJPM < control.AvgInstantJPM {
		t.Fatalf("bursting AIT %v below control %v", res.AvgInstantJPM, control.AvgInstantJPM)
	}
	var seriesCSV bytes.Buffer
	if err := fdw.WriteBurstSeriesCSV(&seriesCSV, res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(seriesCSV.String(), "second,instant_jpm") {
		t.Fatal("series CSV malformed")
	}

	// Catalog over HTTP.
	portal := httptest.NewServer(fdw.NewCatalogServer(fdw.NewCatalog()))
	defer portal.Close()
	client := fdw.NewCatalogClient(portal.URL)
	id, err := client.Deposit(fdw.Product{Name: cfg.Name + " waveforms", Type: "waveform", Batch: cfg.Name, Region: "chile", Mw: 8.2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Batch != cfg.Name {
		t.Fatalf("catalog product %+v", got)
	}
}

func TestBaselineComparison(t *testing.T) {
	cfg := fdw.DefaultConfig()
	bl, err := fdw.Baseline(fdw.AWSBaseline(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bl.TotalHours() <= 0 {
		t.Fatal("degenerate baseline")
	}
}

func TestGenerateScenarioPublic(t *testing.T) {
	sc, err := fdw.GenerateScenario(9, 8.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Rupture == nil || len(sc.Waveforms) != 2 || len(sc.Stations) != 2 {
		t.Fatalf("scenario %+v", sc)
	}
}

func TestConfigFileRoundTripPublic(t *testing.T) {
	cfg := fdw.DefaultConfig()
	cfg.Waveforms = 4321
	var buf bytes.Buffer
	if err := fdw.WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := fdw.ParseConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatal("config round trip changed values")
	}
}

func TestDepositProducts(t *testing.T) {
	env, err := fdw.NewEnv(8, fdw.DefaultPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fdw.DefaultConfig()
	cfg.Name = "archive-me"
	cfg.Waveforms = 64
	cfg.Stations = 2
	w, err := fdw.NewWorkflow(cfg, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	catalog := fdw.NewCatalog()
	if _, err := fdw.DepositProducts(w, catalog); err == nil {
		t.Fatal("deposit from unfinished workflow accepted")
	}
	if err := fdw.RunBatch(env, []*fdw.Workflow{w}, 48*3600); err != nil {
		t.Fatal(err)
	}
	ids, err := fdw.DepositProducts(w, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || catalog.Len() != 3 {
		t.Fatalf("deposited %d products, catalog has %d", len(ids), catalog.Len())
	}
	training := catalog.Search(fdw.CatalogQuery{Tag: "training", Batch: "archive-me"})
	if len(training) != 1 {
		t.Fatalf("training products: %d, want 1", len(training))
	}
}
