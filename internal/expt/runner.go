package expt

import (
	"runtime"
	"sync"
)

// The experiment harness fans independent simulations across a bounded
// worker pool. Every task owns a private Env (kernel, pool, stash), so
// runs are embarrassingly parallel; results are collected by index and
// printed after the fan-out, which keeps row order — and therefore the
// printed report and any CSV — byte-identical to a serial run.

// workers resolves Options.Workers: non-positive means use every core.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachIndex runs job(0..n-1) on at most workers goroutines and
// returns the lowest-index error, matching what a serial sweep would
// report. With one worker it degrades to a plain loop that stops at the
// first error.
func forEachIndex(workers, n int, job func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
