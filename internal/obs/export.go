package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"fdw/internal/sim"
)

// Snapshot is the exported state of a registry at one moment: every
// metric with its last-update sim.Time, histogram buckets and quantile
// estimates, and the retained spans. The JSON rendering of a Snapshot
// is the `-metrics` file format of cmd/fdw and cmd/fdwexp.
type Snapshot struct {
	SimNow       float64       `json:"sim_now"`
	Counters     []CounterSnap `json:"counters,omitempty"`
	Gauges       []GaugeSnap   `json:"gauges,omitempty"`
	Histograms   []HistSnap    `json:"histograms,omitempty"`
	Spans        []SpanSnap    `json:"spans,omitempty"`
	SpansDropped uint64        `json:"spans_dropped,omitempty"`
}

// CounterSnap is one counter's exported state.
type CounterSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
	At     float64           `json:"at"`
}

// GaugeSnap is one gauge's exported state.
type GaugeSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	At     float64           `json:"at"`
}

// BucketSnap is one cumulative histogram bucket (Prometheus "le").
type BucketSnap struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistSnap is one histogram's exported state. Buckets are cumulative;
// the +Inf bucket equals Count and is omitted.
type HistSnap struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []BucketSnap      `json:"buckets,omitempty"`
	At      float64           `json:"at"`
}

// SpanSnap is one span's exported state.
type SpanSnap struct {
	Kind   string      `json:"kind"`
	ID     string      `json:"id"`
	Start  float64     `json:"start"`
	End    float64     `json:"end,omitempty"`
	Status string      `json:"status,omitempty"`
	Events []SpanEvent `json:"events,omitempty"`
}

func pairsToMap(pairs [][2]string) map[string]string {
	if len(pairs) == 0 {
		return nil
	}
	m := make(map[string]string, len(pairs))
	for _, p := range pairs {
		m[p[0]] = p[1]
	}
	return m
}

// Snapshot captures the registry's current state, deterministically
// ordered: metrics by canonical key, spans by (start, kind, id).
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap.SimNow = float64(r.nowLocked())
	snap.SpansDropped = r.spansDropped

	keys := make([]string, 0, len(r.counters))
	for k := range r.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := r.counters[k]
		snap.Counters = append(snap.Counters, CounterSnap{
			Name: c.name, Labels: pairsToMap(c.pairs), Value: c.v, At: float64(c.at),
		})
	}

	keys = keys[:0]
	for k := range r.gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := r.gauges[k]
		snap.Gauges = append(snap.Gauges, GaugeSnap{
			Name: g.name, Labels: pairsToMap(g.pairs), Value: g.v, At: float64(g.at),
		})
	}

	keys = keys[:0]
	for k := range r.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := r.hists[k]
		hs := HistSnap{
			Name: h.name, Labels: pairsToMap(h.pairs),
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			P50: h.quantileLocked(0.50), P90: h.quantileLocked(0.90), P99: h.quantileLocked(0.99),
			At: float64(h.at),
		}
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			if cum > 0 {
				hs.Buckets = append(hs.Buckets, BucketSnap{LE: b, Count: cum})
			}
		}
		snap.Histograms = append(snap.Histograms, hs)
	}

	for _, s := range r.spans {
		ss := SpanSnap{Kind: s.kind, ID: s.id, Start: float64(s.start), Status: s.status}
		if s.ended {
			ss.End = float64(s.end)
		}
		if len(s.events) > 0 {
			ss.Events = make([]SpanEvent, len(s.events))
			copy(ss.Events, s.events)
		}
		snap.Spans = append(snap.Spans, ss)
	}
	sort.SliceStable(snap.Spans, func(a, b int) bool {
		if snap.Spans[a].Start != snap.Spans[b].Start {
			return snap.Spans[a].Start < snap.Spans[b].Start
		}
		if snap.Spans[a].Kind != snap.Spans[b].Kind {
			return snap.Spans[a].Kind < snap.Spans[b].Kind
		}
		return snap.Spans[a].ID < snap.Spans[b].ID
	})
	return snap
}

// WriteJSON writes the indented JSON snapshot — the `-metrics` dump
// format.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ReadSnapshot parses a JSON snapshot written by WriteJSON.
func ReadSnapshot(rd io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(rd).Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: bad snapshot: %w", err)
	}
	return &s, nil
}

func promLabels(labels map[string]string, extra ...string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		if out != "" {
			out += ","
		}
		out += k + `="` + labels[k] + `"`
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if out != "" {
			out += ","
		}
		out += extra[i] + `="` + extra[i+1] + `"`
	}
	if out == "" {
		return ""
	}
	return "{" + out + "}"
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): counters and gauges as samples, histograms
// as cumulative _bucket/_sum/_count families. Spans are not exported
// here (they live in the JSON snapshot); a fdw_spans_total gauge
// reports how many are retained.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	seenType := map[string]bool{}
	emitType := func(name, typ string) {
		if !seenType[name] {
			seenType[name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		}
	}
	for _, c := range snap.Counters {
		emitType(c.Name, "counter")
		if _, err := fmt.Fprintf(w, "%s%s %d\n", c.Name, promLabels(c.Labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		emitType(g.Name, "gauge")
		if _, err := fmt.Fprintf(w, "%s%s %s\n", g.Name, promLabels(g.Labels), promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		emitType(h.Name, "histogram")
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				h.Name, promLabels(h.Labels, "le", promFloat(b.LE)), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			h.Name, promLabels(h.Labels, "le", "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, promLabels(h.Labels), promFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels), h.Count); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE fdw_spans_retained gauge\nfdw_spans_retained %d\n", len(snap.Spans))
	return err
}

// WriteText renders a human-readable summary of a snapshot — the block
// cmd/fdwmon prints alongside its log-derived statistics.
func (s *Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "metrics snapshot at sim t=%s\n", sim.Time(s.SimNow)); err != nil {
		return err
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "  counter %-44s %12d\n", c.Name+promLabels(c.Labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "  gauge   %-44s %12.2f (at %s)\n",
			g.Name+promLabels(g.Labels), g.Value, sim.Time(g.At)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "  hist    %-44s n=%d sum=%.1f p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
			h.Name+promLabels(h.Labels), h.Count, h.Sum, h.P50, h.P90, h.P99, h.Max); err != nil {
			return err
		}
	}
	if len(s.Spans) > 0 {
		if _, err := fmt.Fprintf(w, "  spans   %d retained (%d dropped)\n", len(s.Spans), s.SpansDropped); err != nil {
			return err
		}
	}
	return nil
}
