package fakequakes

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"fdw/internal/core/atomicfile"
	"fdw/internal/geom"
	"fdw/internal/linalg"
	"fdw/internal/npy"
)

// DistanceMatrices are the two recyclable ".npy" products Phase A
// depends on: inter-subfault distances (for the slip covariance) and
// subfault-to-station distances (for Green's functions / waveforms).
// Generating them is expensive (O(n²) geodesy over thousands of
// subfaults), which is why FDW recycles them across simulations: if no
// .npy files are provided, a single job creates them, and all parallel
// jobs then reuse the files.
type DistanceMatrices struct {
	// Subfault is NumSubfaults×NumSubfaults: 3-D center distances (km).
	Subfault *linalg.Matrix
	// Station is NumStations×NumSubfaults: epicentral distances (km).
	Station *linalg.Matrix
}

// ComputeDistanceMatrices builds both matrices from scratch. The O(n²)
// geodesy parallelizes across rows (disjoint writes per goroutine), the
// reason the single matrix job is worth a 4-core OSG slot.
func ComputeDistanceMatrices(f *geom.Fault, stations []geom.Station) *DistanceMatrices {
	n := f.NumSubfaults()
	sub := linalg.NewMatrix(n, n)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Strided rows balance the triangular workload.
			for i := w; i < n; i += workers {
				si := &f.Subfaults[i]
				row := sub.Row(i)
				for j := i + 1; j < n; j++ {
					row[j] = si.DistanceKm(&f.Subfaults[j])
				}
			}
		}(w)
	}
	wg.Wait()
	// Mirror the upper triangle in parallel: after the fill above every
	// source cell (i,j), i<j, is final, and partitioning by destination
	// row j gives each worker disjoint writes. This was the last O(n²)
	// serial stage of the matrix job.
	linalg.ParallelFor(n, 16, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			row := sub.Row(j)
			for i := 0; i < j; i++ {
				row[i] = sub.Data[i*n+j]
			}
		}
	})
	sta := linalg.NewMatrix(len(stations), n)
	linalg.ParallelFor(len(stations), 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			row := sta.Row(s)
			for j := 0; j < n; j++ {
				row[j] = geom.HaversineKm(stations[s].Pos, f.Subfaults[j].Center)
			}
		}
	})
	return &DistanceMatrices{Subfault: sub, Station: sta}
}

// Default file names used by FDW's matrix-recycling convention.
const (
	SubfaultNPY = "distances_subfault.npy"
	StationNPY  = "distances_station.npy"
)

// Save writes both matrices as .npy files into dir.
func (d *DistanceMatrices) Save(dir string) error {
	if err := writeNPY(filepath.Join(dir, SubfaultNPY), d.Subfault); err != nil {
		return err
	}
	return writeNPY(filepath.Join(dir, StationNPY), d.Station)
}

// LoadDistanceMatrices reads both .npy files from dir. A missing file
// is reported with os.IsNotExist-compatible errors so callers can fall
// back to ComputeDistanceMatrices (the FDW recycling decision).
func LoadDistanceMatrices(dir string) (*DistanceMatrices, error) {
	sub, err := readNPY(filepath.Join(dir, SubfaultNPY))
	if err != nil {
		return nil, err
	}
	sta, err := readNPY(filepath.Join(dir, StationNPY))
	if err != nil {
		return nil, err
	}
	return &DistanceMatrices{Subfault: sub, Station: sta}, nil
}

// Validate checks the matrices are mutually consistent with a fault of
// n subfaults and m stations.
func (d *DistanceMatrices) Validate(nSubfaults, nStations int) error {
	if d.Subfault == nil || d.Station == nil {
		return fmt.Errorf("fakequakes: nil distance matrices")
	}
	if d.Subfault.Rows != nSubfaults || d.Subfault.Cols != nSubfaults {
		return fmt.Errorf("fakequakes: subfault matrix is %dx%d, want %dx%d",
			d.Subfault.Rows, d.Subfault.Cols, nSubfaults, nSubfaults)
	}
	if d.Station.Rows != nStations || d.Station.Cols != nSubfaults {
		return fmt.Errorf("fakequakes: station matrix is %dx%d, want %dx%d",
			d.Station.Rows, d.Station.Cols, nStations, nSubfaults)
	}
	return nil
}

// writeNPY replaces path atomically (temp + fsync + rename): the
// recyclable .npy caches are read by later warm runs, so a crash
// mid-write must leave either the previous complete file or nothing —
// a truncated cache would poison every run that trusts it.
func writeNPY(path string, m *linalg.Matrix) error {
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		return npy.Write(w, m)
	})
}

func readNPY(path string) (*linalg.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := npy.Read(f)
	if err != nil {
		return nil, fmt.Errorf("fakequakes: reading %s: %w", path, err)
	}
	return m, nil
}
