// Package fakequakes reimplements the computational core of MudPy's
// FakeQuakes module (Melgar et al.): semistochastic kinematic rupture
// generation on a discretized fault, Green's-function synthesis, and
// high-rate GNSS displacement waveforms, for large (Mw 7.5+) events.
//
// The original is Python/MPI; this is a from-scratch Go implementation
// of the same pipeline stages, deterministic given a seed. It produces
// the Fig. 1-style data products and defines the per-job work units
// (rupture jobs, Green's-function jobs, waveform jobs) that the FDW
// workflow parallelizes.
package fakequakes

import (
	"fmt"
	"math"
)

// ShearModulusPa is the crustal rigidity used for moment computations.
const ShearModulusPa = 30e9 // 30 GPa, standard for subduction interfaces

// Moment returns the seismic moment M0 (N·m) for moment magnitude mw,
// per the Hanks & Kanamori (1979) definition.
func Moment(mw float64) float64 {
	return math.Pow(10, 1.5*mw+9.1)
}

// Magnitude is the inverse of Moment.
func Magnitude(m0 float64) float64 {
	if m0 <= 0 {
		return math.Inf(-1)
	}
	return (math.Log10(m0) - 9.1) / 1.5
}

// RuptureDims holds scaling-law rupture dimensions.
type RuptureDims struct {
	LengthKm float64 // along strike
	WidthKm  float64 // down dip
}

// ScalingLaw returns median subduction-interface rupture dimensions for
// magnitude mw, following the Blaser et al. (2010) regressions that
// MudPy uses for its FakeQuakes target patches:
//
//	log10 L = -2.37 + 0.57 Mw
//	log10 W = -1.86 + 0.46 Mw
func ScalingLaw(mw float64) RuptureDims {
	return RuptureDims{
		LengthKm: math.Pow(10, -2.37+0.57*mw),
		WidthKm:  math.Pow(10, -1.86+0.46*mw),
	}
}

// MeanSlip returns the mean slip (m) needed for a rupture of magnitude
// mw over area areaKm2.
func MeanSlip(mw, areaKm2 float64) (float64, error) {
	if areaKm2 <= 0 {
		return 0, fmt.Errorf("fakequakes: non-positive rupture area %v km²", areaKm2)
	}
	areaM2 := areaKm2 * 1e6
	return Moment(mw) / (ShearModulusPa * areaM2), nil
}

// RiseTime returns the local rise time (s) for a subfault with the
// given slip (m), using the Sommerville et al.-style cube-root scaling
// MudPy applies: tau = k * slip^(1/3), floored to a minimum.
func RiseTime(slipM float64) float64 {
	if slipM <= 0 {
		return 1
	}
	tau := 2.0 * math.Cbrt(slipM)
	if tau < 1 {
		tau = 1
	}
	return tau
}

// RuptureVelocity returns the kinematic rupture-front speed (km/s) at a
// given depth, slowing in the shallow low-rigidity zone as MudPy's
// multipliers do.
func RuptureVelocity(depthKm float64) float64 {
	const vs = 3.1 // km/s, reference shear-wave fraction
	switch {
	case depthKm < 10:
		return 0.6 * vs
	case depthKm < 20:
		return 0.75 * vs
	default:
		return 0.8 * vs
	}
}

// CorrelationLengths returns the von Karman / exponential correlation
// lengths (km) for slip heterogeneity at magnitude mw, after Melgar &
// Hayes (2019): correlation grows with rupture dimension.
func CorrelationLengths(mw float64) (alongKm, downKm float64) {
	dims := ScalingLaw(mw)
	return 0.17 * dims.LengthKm, 0.34 * dims.WidthKm
}

// PatchCorrelationLengths applies the same 0.17·L / 0.34·W fractions
// to the *realized* patch dimensions — the scaling-law extents after
// rounding to whole subfaults and clamping to the mesh. The covariance
// only ever sees the quantized patch, so deriving the lengths from it
// (instead of the continuous law, which varies with every digit of Mw)
// makes the slip covariance — and the factor-cache key built from it —
// invariant across the whole magnitude band that rounds to one patch
// shape: a Mw 8.30 and a Mw 8.33 rupture on the same mesh share a
// Cholesky factor instead of paying two O(n³) factorizations.
func PatchCorrelationLengths(nAlong, nDown int, subfaultLenKm, subfaultWidKm float64) (alongKm, downKm float64) {
	return 0.17 * float64(nAlong) * subfaultLenKm, 0.34 * float64(nDown) * subfaultWidKm
}
