package expt

import (
	"fmt"
	"io"
)

// A CampaignHandle exposes a shardable campaign to external drivers —
// the fault-tolerant scheduler in internal/sched — without exporting
// the campaign struct itself: the canonical cell-id list, the options
// fingerprint, a per-cell runner producing manifest-ready records, and
// the shared finalizer. RunCell is deterministic per cell id (same
// options, same bytes), which is what lets the scheduler arbitrate
// duplicate completions by digest equality and lets any execution
// order re-finalize to the byte-identical unsharded report.
type CampaignHandle struct {
	c   *campaign
	opt Options
	ctx *campaignCtx
	ids []string
	pos map[string]int
	fp  string
}

// OpenCampaign validates opt against the named campaign and returns a
// handle over its canonical cells.
func OpenCampaign(name string, opt Options) (*CampaignHandle, error) {
	c, err := campaignByName(name)
	if err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	ids, err := c.cells(opt)
	if err != nil {
		return nil, err
	}
	fp, err := opt.Fingerprint(c.name)
	if err != nil {
		return nil, err
	}
	pos := make(map[string]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	return &CampaignHandle{c: c, opt: opt, ctx: &campaignCtx{}, ids: ids, pos: pos, fp: fp}, nil
}

// Name returns the campaign name.
func (h *CampaignHandle) Name() string { return h.c.name }

// CSVName returns the campaign's conventional CSV file name.
func (h *CampaignHandle) CSVName() string { return h.c.csvName }

// Fingerprint returns the options fingerprint manifests written for
// this campaign must carry.
func (h *CampaignHandle) Fingerprint() string { return h.fp }

// CellIDs returns the canonical cell-id list. The slice is shared;
// callers must not mutate it.
func (h *CampaignHandle) CellIDs() []string { return h.ids }

// RunCell executes one cell by id and returns its manifest record:
// the compact-JSON result bytes, their digest, and the cell
// simulation's final sim-clock reading.
func (h *CampaignHandle) RunCell(id string) (CellRecord, error) {
	i, ok := h.pos[id]
	if !ok {
		return CellRecord{}, fmt.Errorf("expt: campaign %s has no cell %q", h.c.name, id)
	}
	result, end, err := h.c.run(h.opt, h.ctx, i)
	if err != nil {
		return CellRecord{}, err
	}
	raw, err := marshalCell(result)
	if err != nil {
		return CellRecord{}, fmt.Errorf("expt: cell %q: %w", id, err)
	}
	return CellRecord{ID: id, Result: raw, Digest: cellDigest(raw), SimEnd: end}, nil
}

// Finalize decodes a complete record set (exactly one record per
// canonical cell) and runs the campaign's finalizer, printing the
// report to out (opt.Out when out is nil) and returning the merged
// rows. This is the same finalize code path the unsharded entry points
// and -merge use, so the bytes match an unsharded run exactly.
func (h *CampaignHandle) Finalize(out io.Writer, records map[string]CellRecord) (*MergeResult, error) {
	if len(records) != len(h.ids) {
		return nil, fmt.Errorf("expt: finalize: %d records for %d cells of %s", len(records), len(h.ids), h.c.name)
	}
	results := make([]any, len(h.ids))
	for i, id := range h.ids {
		rec, ok := records[id]
		if !ok {
			return nil, fmt.Errorf("expt: finalize: missing cell %q", id)
		}
		v, err := h.c.decode(rec.Result)
		if err != nil {
			return nil, fmt.Errorf("expt: finalize: cell %q: %w", id, err)
		}
		results[i] = v
	}
	opt := h.opt
	if out != nil {
		opt.Out = out
	}
	rows, err := h.c.finalize(opt, results)
	if err != nil {
		return nil, err
	}
	return &MergeResult{Campaign: h.c.name, CSVName: h.c.csvName, Rows: rows, c: h.c}, nil
}
