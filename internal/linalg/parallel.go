// Parallel variants of the hot kernels (Cholesky, matrix-matrix and
// matrix-vector products) on a shared bounded worker pool sized by
// GOMAXPROCS.
//
// Bit-identity contract: every output element is computed with exactly
// the serial kernels' summation order — for the blocked Mul/Cholesky a
// fused-multiply-add fold over k in increasing order (see blocked.go),
// for MulVec a plain left-to-right accumulation — so the parallel
// kernels return results that are bit-identical to Cholesky/Mul/MulVec
// for the same input, regardless of worker count. Parallelism only
// partitions *independent* output elements (rows, row quads) across
// workers; it never splits or reassociates a single element's
// reduction. This is what keeps FakeQuakes scenarios deterministic by
// seed under GOMAXPROCS=1 vs N.
//
// Cutoff contract: each parallel entry point decides up front whether
// fan-out can win — enough workers *and* enough arithmetic per
// dispatch — and otherwise runs the serial kernel's exact code path,
// dispatching nothing. poolDispatches makes that observable, and the
// cutoff tests pin it at every benchmark-recorded size, so "parallel"
// can never lose to serial by more than the cutoff comparison itself
// (the pre-blocking ParallelCholesky lost ~9% at 1024 on one core by
// paying per-column fan-out that could not pay for itself).
package linalg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The shared pool: GOMAXPROCS goroutines consuming closures. Started
// lazily on first use; tasks that find the queue full run inline on the
// submitter, so progress never depends on a free worker (and nested use
// from already-parallel callers cannot deadlock).
var (
	poolOnce  sync.Once
	poolTasks chan func()
)

func pool() chan func() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		poolTasks = make(chan func(), 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for task := range poolTasks {
					task()
				}
			}()
		}
	})
	return poolTasks
}

// ParallelFor splits [0, n) into contiguous chunks of at least minGrain
// iterations and runs body(lo, hi) for each chunk on the shared pool,
// returning when all chunks finish. body must only write state owned by
// its own [lo, hi) range. With one worker, or when n is within a single
// grain, body runs inline on the caller.
func ParallelFor(n, minGrain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minGrain < 1 {
		minGrain = 1
	}
	workers := runtime.GOMAXPROCS(0)
	chunk := (n + workers - 1) / workers
	if chunk < minGrain {
		chunk = minGrain
	}
	if workers == 1 || chunk >= n {
		body(0, n)
		return
	}
	poolDispatches.Add(1)
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		task := func(lo, hi int) func() {
			return func() {
				defer wg.Done()
				body(lo, hi)
			}
		}(lo, hi)
		select {
		case pool() <- task:
		default:
			task() // queue full: run on the submitter
		}
	}
	wg.Wait()
}

// Work thresholds below which the parallel entry points run the serial
// kernels' exact code path: fan-out overhead beats the arithmetic for
// small inputs, so below these no task ever reaches the pool.
const (
	parallelFlopCutoff = 1 << 14 // per dispatch, roughly a few µs of math
	rowGrain           = 8       // minimum rows per worker chunk
	// parallelGemmMinFlops gates ParallelMul: a blocked GEMM under
	// ~256k flops finishes in tens of µs, comparable to waking the
	// pool for it.
	parallelGemmMinFlops = 1 << 18
	// parallelCholMinN gates ParallelCholesky: below this the whole
	// factorization is sub-millisecond and the per-panel fan-out
	// cannot recoup itself.
	parallelCholMinN = 256
)

// poolDispatches counts ParallelFor fan-outs that actually reached the
// pool (the inline small-n/one-worker path does not count). Tests use
// it to pin the cutoff contract: entry points that cannot win must
// leave it untouched.
var poolDispatches atomic.Uint64

// ParallelCholesky computes the same lower-triangular factor as
// Cholesky, bit-identically: both run the blocked left-looking kernel
// (blocked.go), and the parallel flavor fans the per-panel GEMM update
// and independent row updates across the shared pool — unless the
// matrix is too small or only one worker exists, in which case it *is*
// the serial code path.
func ParallelCholesky(m *Matrix) (*Matrix, error) {
	par := runtime.GOMAXPROCS(0) > 1 && m.Rows >= parallelCholMinN
	return blockedCholesky(m, par)
}

// ParallelMulVec returns m·x, bit-identical to MulVec, with output rows
// partitioned across the pool.
func (m *Matrix) ParallelMulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return m.MulVec(x) // same dimension-mismatch error
	}
	if m.Rows*m.Cols < parallelFlopCutoff {
		return m.MulVec(x)
	}
	y := make([]float64, m.Rows)
	ParallelFor(m.Rows, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = s
		}
	})
	return y, nil
}

// ParallelMul returns m·b, bit-identical to Mul: both run the blocked
// kernel, and the parallel flavor partitions row quads of each panel
// across the pool. Per-element rounding is identical by construction —
// the fused k-fold never depends on the partition — and the cutoff
// keeps small products on the serial code path with zero dispatches.
func (m *Matrix) ParallelMul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return m.Mul(b) // same dimension-mismatch error
	}
	par := runtime.GOMAXPROCS(0) > 1 &&
		m.Rows >= 2*gemmMR &&
		m.Rows*m.Cols*b.Cols >= parallelGemmMinFlops
	out := NewMatrix(m.Rows, b.Cols)
	gemmAcc(m.Rows, b.Cols, m.Cols, m.Data, m.Cols, b.Data, b.Cols, false, out.Data, out.Cols, par)
	return out, nil
}
