// Package npy reads and writes NumPy .npy files (format version 1.0)
// for 2-D float64 arrays. MudPy stores its recyclable distance matrices
// as .npy; FDW's matrix-recycling mechanism round-trips real files in
// this format.
//
// The format: 6-byte magic "\x93NUMPY", version bytes, a little-endian
// uint16 header length, and an ASCII Python-dict header padded with
// spaces to a 64-byte boundary and terminated with '\n', followed by
// the raw array data.
package npy

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"fdw/internal/linalg"
)

var magic = []byte{0x93, 'N', 'U', 'M', 'P', 'Y'}

// Write encodes m as an NPY v1.0 file with dtype '<f8', C order.
func Write(w io.Writer, m *linalg.Matrix) error {
	header := fmt.Sprintf("{'descr': '<f8', 'fortran_order': False, 'shape': (%d, %d), }", m.Rows, m.Cols)
	// Pad so that len(magic)+2(version)+2(hlen)+len(header) ≡ 0 (mod 64),
	// with a trailing newline, per the NPY spec.
	total := len(magic) + 2 + 2 + len(header) + 1
	pad := (64 - total%64) % 64
	header += strings.Repeat(" ", pad) + "\n"
	if len(header) > math.MaxUint16 {
		return fmt.Errorf("npy: header too long (%d bytes)", len(header))
	}

	if _, err := w.Write(magic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{1, 0}); err != nil { // version 1.0
		return err
	}
	var hlen [2]byte
	binary.LittleEndian.PutUint16(hlen[:], uint16(len(header)))
	if _, err := w.Write(hlen[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	buf := make([]byte, 8*len(m.Data))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// Read decodes an NPY v1.0/v2.0 file containing a 1-D or 2-D '<f8'
// array in C order. 1-D arrays come back as a 1×n matrix.
func Read(r io.Reader) (*linalg.Matrix, error) {
	head := make([]byte, 8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("npy: short magic: %w", err)
	}
	for i, b := range magic {
		if head[i] != b {
			return nil, fmt.Errorf("npy: bad magic %q", head[:6])
		}
	}
	var headerLen int
	switch head[6] {
	case 1:
		var hl [2]byte
		if _, err := io.ReadFull(r, hl[:]); err != nil {
			return nil, fmt.Errorf("npy: short header length: %w", err)
		}
		headerLen = int(binary.LittleEndian.Uint16(hl[:]))
	case 2:
		var hl [4]byte
		if _, err := io.ReadFull(r, hl[:]); err != nil {
			return nil, fmt.Errorf("npy: short header length: %w", err)
		}
		headerLen = int(binary.LittleEndian.Uint32(hl[:]))
	default:
		return nil, fmt.Errorf("npy: unsupported version %d.%d", head[6], head[7])
	}
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("npy: short header: %w", err)
	}
	rows, cols, err := parseHeader(string(hdr))
	if err != nil {
		return nil, err
	}
	n := rows * cols
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("npy: short data (want %d float64s): %w", n, err)
	}
	m := linalg.NewMatrix(rows, cols)
	for i := 0; i < n; i++ {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return m, nil
}

// parseHeader extracts shape from the Python-dict literal header and
// validates dtype and order.
func parseHeader(h string) (rows, cols int, err error) {
	if !strings.Contains(h, "'<f8'") {
		return 0, 0, fmt.Errorf("npy: unsupported dtype in header %q (want '<f8')", strings.TrimSpace(h))
	}
	if strings.Contains(h, "'fortran_order': True") {
		return 0, 0, fmt.Errorf("npy: fortran order not supported")
	}
	i := strings.Index(h, "'shape':")
	if i < 0 {
		return 0, 0, fmt.Errorf("npy: no shape in header")
	}
	rest := h[i:]
	open := strings.Index(rest, "(")
	closeIdx := strings.Index(rest, ")")
	if open < 0 || closeIdx < open {
		return 0, 0, fmt.Errorf("npy: malformed shape in header")
	}
	parts := strings.Split(rest[open+1:closeIdx], ",")
	var dims []int
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		d, err := strconv.Atoi(p)
		if err != nil || d < 0 {
			return 0, 0, fmt.Errorf("npy: bad dimension %q", p)
		}
		dims = append(dims, d)
	}
	switch len(dims) {
	case 1:
		return 1, dims[0], nil
	case 2:
		return dims[0], dims[1], nil
	default:
		return 0, 0, fmt.Errorf("npy: %d-dimensional arrays not supported", len(dims))
	}
}
