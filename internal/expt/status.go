package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"fdw/internal/sim"
)

// fdwexp -status: a machine-readable inventory of manifest bundles —
// which cells each bundle completed, which remain, fingerprints, and
// sim-clock provenance — plus a campaign-level rollup across bundles.
// Before this existed, exit code 3 was the only signal that a bundle
// set was resumable.

// BundleStatus describes one manifest bundle on disk.
type BundleStatus struct {
	File string `json:"file"`
	// Error is set when the file could not be read or validated; the
	// remaining fields are then zero.
	Error       string `json:"error,omitempty"`
	Campaign    string `json:"campaign,omitempty"`
	Shard       string `json:"shard,omitempty"`
	Leased      bool   `json:"leased,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Complete reports the bundle's own ledger: for hash-partitioned
	// shards, every owned cell done; leased worker bundles only record
	// completions, so they are always self-complete — campaign-level
	// coverage lives in CampaignStatus.
	Complete        bool     `json:"complete"`
	CellsTotal      int      `json:"cells_total"`
	CellsDone       int      `json:"cells_done"`
	IncompleteCells []string `json:"incomplete_cells,omitempty"`
	// SimMax is the bundle's sim-clock provenance: the largest per-cell
	// final kernel reading.
	SimMax sim.Time `json:"sim_max"`
}

// CampaignStatus rolls up every readable bundle of one (campaign,
// fingerprint, partition) group.
type CampaignStatus struct {
	Campaign    string `json:"campaign"`
	Fingerprint string `json:"fingerprint"`
	Leased      bool   `json:"leased,omitempty"`
	Total       int    `json:"partition_total"`
	Bundles     int    `json:"bundles"`
	// OptionsMatch reports whether the fingerprint matches the options
	// this status run was invoked with; only then are CellsTotal,
	// IncompleteCells, and Complete computable.
	OptionsMatch bool `json:"options_match"`
	CellsTotal   int  `json:"cells_total,omitempty"`
	// CellsDone is the union of done cells across the group's bundles.
	CellsDone int `json:"cells_done"`
	// Conflicts lists cells stored with disagreeing digests across
	// bundles — a determinism violation a merge would refuse.
	Conflicts       []string `json:"conflict_cells,omitempty"`
	Complete        bool     `json:"complete"`
	IncompleteCells []string `json:"incomplete_cells,omitempty"`
	SimMax          sim.Time `json:"sim_max"`
}

// StatusReport is the full -status output.
type StatusReport struct {
	Bundles   []BundleStatus   `json:"bundles"`
	Campaigns []CampaignStatus `json:"campaigns,omitempty"`
}

// HasErrors reports whether any bundle failed to read or validate.
func (r *StatusReport) HasErrors() bool {
	for _, b := range r.Bundles {
		if b.Error != "" {
			return true
		}
	}
	return false
}

// Resumable reports whether any bundle or options-matched campaign is
// incomplete — the condition fdwexp -status exits 3 on.
func (r *StatusReport) Resumable() bool {
	for _, b := range r.Bundles {
		if b.Error == "" && !b.Complete {
			return true
		}
	}
	for _, c := range r.Campaigns {
		if c.OptionsMatch && !c.Complete {
			return true
		}
	}
	return false
}

// StatusPaths expands -status arguments: a directory contributes its
// *.json entries sorted by name, a file contributes itself.
func StatusPaths(args []string) ([]string, error) {
	var paths []string
	for _, arg := range args {
		fi, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			paths = append(paths, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.json"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		paths = append(paths, matches...)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("expt: status: no manifest bundles found")
	}
	return paths, nil
}

// Status inventories the given manifest bundles. Unreadable bundles
// become error entries rather than failing the whole report; opt is
// only used to decide OptionsMatch and enumerate canonical cells for
// matching campaigns.
func Status(opt Options, paths []string) (*StatusReport, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	rep := &StatusReport{}
	type groupKey struct {
		campaign, fp string
		leased       bool
		total        int
	}
	var groupOrder []groupKey
	groups := map[groupKey][]*CampaignManifest{}
	for _, p := range paths {
		m, err := ReadCampaignManifestFile(p)
		if err != nil {
			rep.Bundles = append(rep.Bundles, BundleStatus{File: p, Error: err.Error()})
			continue
		}
		bs := BundleStatus{
			File:        p,
			Campaign:    m.Campaign,
			Shard:       m.Shard.String(),
			Leased:      m.Leased,
			Fingerprint: m.Fingerprint,
			Complete:    m.Complete(),
			CellsTotal:  len(m.Ledger.Nodes),
			CellsDone:   m.Ledger.DoneCount(),
			SimMax:      m.SimMax,
		}
		for _, n := range m.Ledger.Nodes {
			if !n.Done {
				bs.IncompleteCells = append(bs.IncompleteCells, n.Name)
			}
		}
		rep.Bundles = append(rep.Bundles, bs)
		k := groupKey{m.Campaign, m.Fingerprint, m.Leased, m.Shard.Total}
		if _, seen := groups[k]; !seen {
			groupOrder = append(groupOrder, k)
		}
		groups[k] = append(groups[k], m)
	}

	for _, k := range groupOrder {
		ms := groups[k]
		cs := CampaignStatus{
			Campaign:    k.campaign,
			Fingerprint: k.fp,
			Leased:      k.leased,
			Total:       k.total,
			Bundles:     len(ms),
		}
		// Union coverage with digest-conflict detection, bundle order.
		digests := map[string]string{}
		conflicted := map[string]bool{}
		for _, m := range ms {
			for _, rec := range m.Cells {
				if d, ok := digests[rec.ID]; ok {
					if d != rec.Digest && !conflicted[rec.ID] {
						conflicted[rec.ID] = true
						cs.Conflicts = append(cs.Conflicts, rec.ID)
					}
					continue
				}
				digests[rec.ID] = rec.Digest
			}
			if m.SimMax > cs.SimMax {
				cs.SimMax = m.SimMax
			}
		}
		cs.CellsDone = len(digests)
		if c, err := campaignByName(k.campaign); err == nil {
			if fp, err := opt.Fingerprint(k.campaign); err == nil && fp == k.fp {
				if ids, err := c.cells(opt); err == nil {
					cs.OptionsMatch = true
					cs.CellsTotal = len(ids)
					for _, id := range ids {
						if _, ok := digests[id]; !ok {
							cs.IncompleteCells = append(cs.IncompleteCells, id)
						}
					}
					cs.Complete = len(cs.IncompleteCells) == 0 && len(cs.Conflicts) == 0
				}
			}
		}
		rep.Campaigns = append(rep.Campaigns, cs)
	}
	return rep, nil
}

// WriteStatus renders the report as indented JSON.
func WriteStatus(w io.Writer, rep *StatusReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
