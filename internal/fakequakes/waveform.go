package fakequakes

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fdw/internal/mseed"
	"fdw/internal/sim"
)

// Waveform is the 3-component GNSS displacement time series at one
// station for one rupture — the final FakeQuakes product (Phase C).
type Waveform struct {
	RuptureID string
	Station   string
	Dt        float64
	// ENZ[c][t]: east/north/up displacement (m).
	ENZ [3][]float64
}

// PGD returns the peak ground displacement (m): the maximum 3-D
// displacement amplitude, the key EEW magnitude proxy (Ruhl et al. 2017).
func (w *Waveform) PGD() float64 {
	var peak float64
	for t := range w.ENZ[0] {
		e, n, z := w.ENZ[0][t], w.ENZ[1][t], w.ENZ[2][t]
		if a := math.Sqrt(e*e + n*n + z*z); a > peak {
			peak = a
		}
	}
	return peak
}

// NoiseConfig models GNSS position noise (cf. Melgar et al. 2020):
// white noise plus a random-walk component.
type NoiseConfig struct {
	WhiteSigmaM float64 // per-sample white noise, meters
	WalkSigmaM  float64 // random-walk step, meters/sqrt(sample)
}

// DefaultNoise reflects operational real-time GNSS precision:
// ~5 mm white, small random walk.
func DefaultNoise() NoiseConfig {
	return NoiseConfig{WhiteSigmaM: 0.005, WalkSigmaM: 0.0005}
}

// SynthesizeWaveforms convolves a rupture's slip distribution with the
// Green's functions: for each station/component, sum over patch
// subfaults of slip × kernel delayed by the rupture-front onset and
// smeared over the local rise time. Optional noise is added per sample.
func SynthesizeWaveforms(r *Rupture, g *GreensFunctions, noise NoiseConfig, rng *sim.RNG) ([]Waveform, error) {
	if r == nil || g == nil {
		return nil, fmt.Errorf("fakequakes: nil rupture or Green's functions")
	}
	if len(r.Patch) != len(r.SlipM) || len(r.Patch) != len(r.OnsetS) || len(r.Patch) != len(r.RiseS) {
		return nil, fmt.Errorf("fakequakes: inconsistent rupture arrays")
	}
	nT := g.Cfg.Nsamples
	dt := g.Cfg.Dt
	out := make([]Waveform, len(g.Stations))
	// Stations are independent; split the RNG per station *before*
	// spawning so results are deterministic regardless of scheduling,
	// then fan out across the cores.
	rngs := make([]*sim.RNG, len(g.Stations))
	for s := range rngs {
		rngs[s] = rng.Split(uint64(s) + 0x9e37)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var firstErr error
	var errOnce sync.Once
	for s := range g.Stations {
		wg.Add(1)
		sem <- struct{}{}
		go func(s int) {
			defer func() { <-sem; wg.Done() }()
			if err := synthesizeStation(r, g, noise, rngs[s], nT, dt, s, out); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// synthesizeStation builds one station's waveform into out[s].
func synthesizeStation(r *Rupture, g *GreensFunctions, noise NoiseConfig, rng *sim.RNG, nT int, dt float64, s int, out []Waveform) error {
	{
		st := g.Stations[s]
		w := Waveform{RuptureID: r.ID, Station: st.Name, Dt: dt}
		for c := 0; c < 3; c++ {
			w.ENZ[c] = make([]float64, nT)
		}
		for k, idx := range r.Patch {
			if idx < 0 || idx >= g.NSub {
				return fmt.Errorf("fakequakes: rupture references subfault %d outside GF set of %d", idx, g.NSub)
			}
			slip := r.SlipM[k]
			if slip == 0 {
				continue
			}
			delay := int(r.OnsetS[k] / dt)
			// Smear over the rise time: distribute slip across nRise lags.
			nRise := int(r.RiseS[k]/dt) + 1
			frac := slip / float64(nRise)
			for c := 0; c < 3; c++ {
				kern := g.Kernel[s][idx][c]
				dst := w.ENZ[c]
				for lag := 0; lag < nRise; lag++ {
					off := delay + lag
					if off >= nT {
						break
					}
					// dst[off:] += frac * kern[:nT-off]
					for t := 0; t < nT-off; t++ {
						dst[off+t] += frac * kern[t]
					}
				}
			}
		}
		if noise.WhiteSigmaM > 0 || noise.WalkSigmaM > 0 {
			for c := 0; c < 3; c++ {
				walk := 0.0
				for t := range w.ENZ[c] {
					if noise.WalkSigmaM > 0 {
						walk += rng.Normal(0, noise.WalkSigmaM)
					}
					w.ENZ[c][t] += walk + rng.Normal(0, noise.WhiteSigmaM)
				}
			}
		}
		out[s] = w
	}
	return nil
}

// ToRecords converts a waveform to mseed records.
func (w *Waveform) ToRecords() []mseed.Record {
	recs := make([]mseed.Record, 3)
	for c, ch := range Components {
		recs[c] = mseed.Record{
			Network: "CL",
			Station: w.Station,
			Channel: ch,
			Start:   0,
			Dt:      w.Dt,
			Samples: w.ENZ[c],
		}
	}
	return recs
}
