package ospool

import (
	"strings"
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/sim"
	"fdw/internal/stash"
)

// stubHook is a minimal RecoveryHook for exercising the pool seam
// without importing internal/recovery (which would cycle).
type stubHook struct {
	veto     func(site string, now sim.Time) bool
	deadline func(j *htcondor.Job, now sim.Time) float64
	open     []string

	started int
	ended   []AttemptOutcome
}

func (h *stubHook) VetoMatch(site string, now sim.Time) bool {
	if h.veto == nil {
		return false
	}
	return h.veto(site, now)
}

func (h *stubHook) JobDeadlineSeconds(j *htcondor.Job, now sim.Time) float64 {
	if h.deadline == nil {
		return 0
	}
	return h.deadline(j, now)
}

func (h *stubHook) AttemptStarted(site string, j *htcondor.Job, now sim.Time) { h.started++ }

func (h *stubHook) AttemptEnded(site string, j *htcondor.Job, outcome AttemptOutcome, ran float64, now sim.Time) {
	h.ended = append(h.ended, outcome)
}

func (h *stubHook) OpenBreakers(now sim.Time) []string { return h.open }

// TestTransferFailDoesNotWarmCache is the warm-on-failure regression:
// an attempt killed by an injected TransferFail must leave the stash
// cache cold, so the retry pays origin bandwidth again. Against the
// pre-fix code (TransferSeconds warming at fetch time) the retry
// counts as a hit and this test fails.
func TestTransferFailDoesNotWarmCache(t *testing.T) {
	k := sim.NewKernel(41)
	cache, err := stash.New(stash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(k, testConfig(), cache)
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	p.SetExecFault(func(site string, j *htcondor.Job, now sim.Time) ExecFault {
		attempts++
		return ExecFault{TransferFail: attempts == 1}
	})
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	jobs := makeJobs(1, "u", 300)
	jobs[0].MaxRetries = 3
	jobs[0].InputBytes = 1 << 30
	jobs[0].InputKey = "gf.mseed"
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	if jobs[0].Status != htcondor.Completed || jobs[0].ExitCode != 0 {
		t.Fatalf("job status=%v exit=%d", jobs[0].Status, jobs[0].ExitCode)
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2: the aborted transfer must not warm the cache", hits, misses)
	}
}

// TestTransferSuccessWarmsCache is the committed counterpart: two jobs
// sharing an input key at the same site — the second fetch hits.
func TestTransferSuccessWarmsCache(t *testing.T) {
	k := sim.NewKernel(42)
	cache, err := stash.New(stash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Sites = cfg.Sites[:1] // one site, so the key is shared for sure
	p, err := New(k, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	jobs := makeJobs(8, "u", 300)
	for _, j := range jobs {
		j.InputBytes = 1 << 28
		j.InputKey = "shared"
	}
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	// Exactly one origin fetch; every later delivery (including any
	// re-claim after a pilot eviction) hits the warmed cache.
	hits, misses := cache.Stats()
	if misses != 1 || hits < 7 {
		t.Fatalf("hits=%d misses=%d, want 1 miss and >=7 hits: successful deliveries must warm the cache", hits, misses)
	}
}

// TestGlideinIdleRetirementBoundary pins the strict-> boundary: a pilot
// idle for exactly GlideinIdleTimeout survives the provisioning pass;
// one second longer retires it.
func TestGlideinIdleRetirementBoundary(t *testing.T) {
	k := sim.NewKernel(43)
	cfg := testConfig()
	cfg.GlideinIdleTimeout = 900
	p, err := New(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := &glidein{id: p.nextID, site: p.sites[0].cfg, siteIdx: 0, ad: p.sites[0].ad, idleAt: 0, expire: 1 << 30}
	p.nextID++
	p.live[g.id] = g
	p.sites[0].liveCount++
	p.addFree(g)

	k.At(900, func() {
		p.provision()
		if len(p.live) != 1 {
			t.Errorf("pilot idle for exactly the timeout was retired (now-idleAt == timeout must survive)")
		}
	})
	k.At(901, func() {
		p.provision()
		if len(p.live) != 0 {
			t.Errorf("pilot idle past the timeout was not retired")
		}
	})
	k.Run()
}

// TestRecoveryHookVetoBlocksSite mirrors the SiteDown test through the
// recovery seam: with site "a" vetoed, every job executes on "b".
func TestRecoveryHookVetoBlocksSite(t *testing.T) {
	k := sim.NewKernel(44)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hook := &stubHook{veto: func(site string, _ sim.Time) bool { return site == "a" }}
	p.SetRecovery(hook)
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	if _, err := s.Submit(makeJobs(20, "u1", 300)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.AllJobs() {
		if j.Status != htcondor.Completed {
			t.Fatalf("job %s in state %v", j.ID(), j.Status)
		}
		if strings.HasSuffix(j.Site, ".a") {
			t.Fatalf("job %s ran on vetoed site: %s", j.ID(), j.Site)
		}
	}
	if hook.started == 0 || len(hook.ended) == 0 {
		t.Fatal("recovery hook saw no attempts")
	}
}

// TestRecoveryHookDeadlineEvicts gives the first attempt an impossible
// wall-clock budget: the pool must evict it at the deadline (without
// consuming max_retries) and let a later, unlimited attempt finish.
func TestRecoveryHookDeadlineEvicts(t *testing.T) {
	k := sim.NewKernel(45)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	hook := &stubHook{deadline: func(j *htcondor.Job, _ sim.Time) float64 {
		calls++
		if calls == 1 {
			return 50 // well under the ~300 s attempt
		}
		return 0
	}}
	p.SetRecovery(hook)
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	jobs := makeJobs(1, "u", 300)
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	if jobs[0].Status != htcondor.Completed || jobs[0].ExitCode != 0 {
		t.Fatalf("job status=%v exit=%d", jobs[0].Status, jobs[0].ExitCode)
	}
	if jobs[0].Failures != 0 {
		t.Fatalf("deadline eviction consumed max_retries budget (failures %d)", jobs[0].Failures)
	}
	var sawDeadline bool
	for _, o := range hook.ended {
		if o == AttemptDeadline {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatalf("no AttemptDeadline outcome reported: %v", hook.ended)
	}
	if p.WastedSeconds() < 50 {
		t.Fatalf("wasted seconds %v, want >= the 50 s deadline", p.WastedSeconds())
	}
	_, _, evictions := p.Stats()
	if evictions == 0 {
		t.Fatal("deadline eviction not counted")
	}
}

// TestCancelClaimFreesSlot cancels a running claim mid-flight: the
// glidein goes idle, the pending completion event is dead, and the job
// can be finalized by the caller (AbortRunning) so the queue drains.
func TestCancelClaimFreesSlot(t *testing.T) {
	k := sim.NewKernel(46)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	jobs := makeJobs(1, "u", 3600)
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	for jobs[0].Status != htcondor.Running && k.Step() {
	}
	if jobs[0].Status != htcondor.Running {
		t.Fatal("job never started")
	}
	// Cancel mid-attempt (100 s in) so the claim has accrued slot time.
	k.At(k.Now()+100, func() {
		if !p.CancelClaim(jobs[0]) {
			t.Error("CancelClaim found no claim for the running job")
		}
		if p.RunningCount() != 0 {
			t.Error("glidein still busy after CancelClaim")
		}
		if p.CancelClaim(jobs[0]) {
			t.Error("second CancelClaim should find nothing")
		}
		if err := s.AbortRunning(jobs[0]); err != nil {
			t.Error(err)
		}
	})
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	if jobs[0].Status != htcondor.Removed {
		t.Fatalf("job status %v, want removed", jobs[0].Status)
	}
	if p.WastedSeconds() <= 0 {
		t.Fatal("cancelled claim counted no wasted slot time")
	}
}

// TestHorizonTimeoutDiagnostics checks the enriched RunUntilDone error:
// queue counts, glidein counts, and open breakers must all be readable
// from the error string alone.
func TestHorizonTimeoutDiagnostics(t *testing.T) {
	k := sim.NewKernel(47)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetRecovery(&stubHook{open: []string{"a", "b"}})
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	jobs := makeJobs(1, "u", 100)
	jobs[0].Requirements = "(TARGET.Imaginary == 42)"
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	err = p.RunUntilDone(3600)
	if err == nil {
		t.Fatal("expected timeout error for unmatchable job")
	}
	for _, want := range []string{"idle=1", "running=0", "glideins live=", "open breakers=[a b]"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("timeout error %q missing %q", err, want)
		}
	}
}
