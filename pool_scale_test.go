package fdw_test

import (
	"fmt"
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/ospool"
	"fdw/internal/sim"
)

// TestPoolScaleSmoke drains a 10⁵-job workload through a ~46k-slot pool
// in the required check (skipped under -short): the CI-enforced floor
// that pool-scale throughput never regresses back to minutes. The same
// configuration is timed in BenchmarkPool/cold/100000; here we only
// assert it completes and the books balance.
func TestPoolScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pool scale smoke skipped in -short mode")
	}
	const jobs = 100_000
	cfg := benchPoolConfig(100)
	k := sim.NewKernel(7)
	p, err := ospool.New(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	schedds := make([]*htcondor.Schedd, 4)
	for si := range schedds {
		schedds[si] = htcondor.NewSchedd(fmt.Sprintf("s%d", si), k, nil)
		p.AddSchedd(schedds[si])
	}
	p.Start()
	for si, batch := range benchPoolJobs(jobs, cfg.Sites[0].Name) {
		if _, err := schedds[si].Submit(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.RunUntilDone(sim.Forever); err != nil {
		t.Fatal(err)
	}
	completed := 0
	for _, s := range schedds {
		completed += s.Completed()
	}
	if completed != jobs {
		t.Fatalf("completed %d of %d jobs", completed, jobs)
	}
	started, done, _ := p.Stats()
	if done != jobs {
		t.Fatalf("pool completions %d, want %d", done, jobs)
	}
	if started < jobs {
		t.Fatalf("pool started %d attempts for %d jobs", started, jobs)
	}
	if live := k.Pending(); live < 0 {
		t.Fatalf("kernel reports negative pending events: %d", live)
	}
}
