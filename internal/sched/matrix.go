package sched

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"path/filepath"
	"strconv"

	"fdw/internal/expt"
	"fdw/internal/faults"
)

// The scheduler A/B matrix: every standard worker-fault plan crossed
// with the three lease-recovery policies, each run through the full
// scheduler over one campaign and checked byte-for-byte against the
// unsharded reference — the same improve-or-tie methodology the
// recovery matrix (DESIGN.md §11) established, applied to the fleet
// layer.

// Policy is one arm of the A/B matrix.
type Policy struct {
	Name         string
	Steal, Hedge bool
}

// MatrixPolicies are the compared arms, print order.
func MatrixPolicies() []Policy {
	return []Policy{
		{Name: "no-steal"},
		{Name: "steal", Steal: true},
		{Name: "steal+hedge", Steal: true, Hedge: true},
	}
}

// MatrixRow is one (plan, policy) cell of the scheduler A/B matrix.
type MatrixRow struct {
	Plan      string
	Policy    string
	Workers   int
	MakespanH float64
	Stats     Stats
	// Identical records whether the run's merged report and CSV bytes
	// equal the unsharded reference — the headline guarantee; any
	// false here is a scheduler bug.
	Identical bool
}

// Matrix runs campaign under every standard worker plan × policy with
// the given fleet size, writing worker bundles under subdirectories of
// dir and the comparison table to opt.Out. Cell results are memoized
// across the whole matrix (each unique cell simulates once); the
// scheduler runs themselves are full-fidelity.
func Matrix(opt expt.Options, campaign string, workers int, dir string) ([]MatrixRow, error) {
	h, err := expt.OpenCampaign(campaign, opt)
	if err != nil {
		return nil, err
	}
	src := Memoize(h)

	// Unsharded reference bytes, via the same finalize path.
	ref := map[string]expt.CellRecord{}
	for _, id := range src.CellIDs() {
		rec, err := src.RunCell(id)
		if err != nil {
			return nil, err
		}
		ref[id] = rec
	}
	var refRep, refCSV bytes.Buffer
	refRes, err := h.Finalize(&refRep, ref)
	if err != nil {
		return nil, err
	}
	if err := refRes.WriteCSV(&refCSV); err != nil {
		return nil, err
	}

	var rows []MatrixRow
	for _, plan := range faults.StandardWorkerPlans() {
		for _, pol := range MatrixPolicies() {
			cfg := Config{
				Workers: workers,
				Steal:   pol.Steal,
				Hedge:   pol.Hedge,
				Plan:    plan,
				Dir:     filepath.Join(dir, plan.Name+"-"+pol.Name),
				Obs:     opt.Obs,
			}
			res, err := Run(src, cfg)
			if err != nil {
				return nil, fmt.Errorf("sched: matrix plan %q policy %q: %w", plan.Name, pol.Name, err)
			}
			var rep, csvb bytes.Buffer
			fin, err := h.Finalize(&rep, res.Records)
			if err != nil {
				return nil, fmt.Errorf("sched: matrix plan %q policy %q: %w", plan.Name, pol.Name, err)
			}
			if err := fin.WriteCSV(&csvb); err != nil {
				return nil, err
			}
			rows = append(rows, MatrixRow{
				Plan:      plan.Name,
				Policy:    pol.Name,
				Workers:   workers,
				MakespanH: float64(res.Makespan) / 3600,
				Stats:     res.Stats,
				Identical: bytes.Equal(refRep.Bytes(), rep.Bytes()) && bytes.Equal(refCSV.Bytes(), csvb.Bytes()),
			})
		}
	}
	printMatrix(opt, campaign, workers, rows)
	return rows, nil
}

func printMatrix(opt expt.Options, campaign string, workers int, rows []MatrixRow) {
	w := opt.Out
	if w == nil {
		return
	}
	fmt.Fprintf(w, "Scheduler A/B matrix — campaign %s, %d workers, %d plans × %d policies\n",
		campaign, workers, len(faults.StandardWorkerPlans()), len(MatrixPolicies()))
	fmt.Fprintf(w, "%-16s %-12s %10s | %6s %6s %7s %6s %6s | %4s %5s %6s | %s\n",
		"plan", "policy", "makespan h", "grant", "expire", "requeue", "steal", "hedge", "dup", "crash", "restrt", "identical")
	for _, r := range rows {
		ident := "yes"
		if !r.Identical {
			ident = "NO"
		}
		fmt.Fprintf(w, "%-16s %-12s %10.2f | %6d %6d %7d %6d %6d | %4d %5d %6d | %s\n",
			r.Plan, r.Policy, r.MakespanH,
			r.Stats.LeasesGranted, r.Stats.LeasesExpired, r.Stats.CellsRequeued,
			r.Stats.CellsStolen, r.Stats.CellsHedged,
			r.Stats.Duplicates, r.Stats.WorkerCrashes, r.Stats.WorkerRestarts, ident)
	}
}

// WriteMatrixCSV renders matrix rows as CSV.
func WriteMatrixCSV(w io.Writer, rows []MatrixRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"plan", "policy", "workers", "makespan_h",
		"leases_granted", "leases_renewed", "leases_expired",
		"cells_requeued", "cells_stolen", "cells_hedged",
		"duplicate_completions", "late_acks", "recovered_completions",
		"checkpoints", "torn_checkpoints",
		"worker_crashes", "worker_restarts", "missed_heartbeats",
		"identical",
	}); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Plan, r.Policy, strconv.Itoa(r.Workers),
			strconv.FormatFloat(r.MakespanH, 'f', 4, 64),
			u(r.Stats.LeasesGranted), u(r.Stats.LeasesRenewed), u(r.Stats.LeasesExpired),
			u(r.Stats.CellsRequeued), u(r.Stats.CellsStolen), u(r.Stats.CellsHedged),
			u(r.Stats.Duplicates), u(r.Stats.AcksLate), u(r.Stats.Recovered),
			u(r.Stats.Checkpoints), u(r.Stats.CheckpointsTorn),
			u(r.Stats.WorkerCrashes), u(r.Stats.WorkerRestarts), u(r.Stats.HeartbeatsMissed),
			strconv.FormatBool(r.Identical),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
