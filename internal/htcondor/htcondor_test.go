package htcondor

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"fdw/internal/classad"
	"fdw/internal/obs"
	"fdw/internal/sim"
)

const sampleSubmit = `
# FDW phase C submit file
universe       = vanilla
executable     = run_waveforms.sh
arguments      = --proc $(Process) --cluster $(Cluster)
request_cpus   = 4
request_memory = 8GB
request_disk   = 16384
requirements   = (TARGET.HasSingularity == true)
+FDWPhase        = "C"
+FDWExecSeconds  = 1050
+FDWInputBytes   = 973000000
+FDWOutputBytes  = 52000000
queue 3
`

func TestParseSubmit(t *testing.T) {
	sf, err := ParseSubmit(strings.NewReader(sampleSubmit))
	if err != nil {
		t.Fatal(err)
	}
	if sf.QueueN != 3 {
		t.Fatalf("QueueN = %d, want 3", sf.QueueN)
	}
	if sf.Commands["executable"] != "run_waveforms.sh" {
		t.Fatalf("executable = %q", sf.Commands["executable"])
	}
	if sf.Plus["FDWPhase"] != `"C"` {
		t.Fatalf("+FDWPhase = %q", sf.Plus["FDWPhase"])
	}
}

func TestParseSubmitErrors(t *testing.T) {
	cases := map[string]string{
		"no queue":        "executable = x\n",
		"double queue":    "executable = x\nqueue\nqueue\n",
		"bad queue count": "executable = x\nqueue -2\n",
		"no equals":       "executable x\nqueue\n",
		"empty key":       " = x\nqueue\n",
		"dangling cont":   "executable = x \\\n",
	}
	for name, src := range cases {
		if _, err := ParseSubmit(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestParseSubmitBareQueueAndContinuation(t *testing.T) {
	src := "executable = a.sh\narguments = one \\\n two\nqueue\n"
	sf, err := ParseSubmit(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if sf.QueueN != 1 {
		t.Fatalf("QueueN = %d", sf.QueueN)
	}
	if !strings.Contains(sf.Commands["arguments"], "two") {
		t.Fatalf("continuation lost: %q", sf.Commands["arguments"])
	}
}

func TestMaterialize(t *testing.T) {
	sf, err := ParseSubmit(strings.NewReader(sampleSubmit))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := sf.Materialize(42, "fdw-user")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("%d jobs, want 3", len(jobs))
	}
	j := jobs[1]
	if j.Cluster != 42 || j.Proc != 1 {
		t.Fatalf("id %s", j.ID())
	}
	if j.Arguments != "--proc 1 --cluster 42" {
		t.Fatalf("macros not expanded: %q", j.Arguments)
	}
	if j.RequestCpus != 4 || j.RequestMemoryMB != 8192 || j.RequestDiskMB != 16384 {
		t.Fatalf("requests: cpus=%d mem=%d disk=%d", j.RequestCpus, j.RequestMemoryMB, j.RequestDiskMB)
	}
	if j.BaseExecSeconds != 1050 {
		t.Fatalf("BaseExecSeconds = %v", j.BaseExecSeconds)
	}
	if j.InputBytes != 973000000 || j.OutputBytes != 52000000 {
		t.Fatalf("transfer sizes: %d %d", j.InputBytes, j.OutputBytes)
	}
	if v, ok := j.Attrs.Lookup("FDWPhase"); !ok {
		t.Fatal("FDWPhase attr missing")
	} else if s, _ := v.AsString(); s != "C" {
		t.Fatalf("FDWPhase = %v", v)
	}
}

func TestParseSizeMB(t *testing.T) {
	cases := map[string]int{
		"2048": 2048, "2GB": 2048, "2 GB": 2048, "1024KB": 1,
		"512MB": 512, "1G": 1024, "3M": 3,
	}
	for in, want := range cases {
		got, err := parseSizeMB(in)
		if err != nil {
			t.Fatalf("parseSizeMB(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("parseSizeMB(%q) = %d, want %d", in, got, want)
		}
	}
	if _, err := parseSizeMB("lots"); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestJobMatches(t *testing.T) {
	j := &Job{
		RequestCpus:     4,
		RequestMemoryMB: 8192,
		Requirements:    "(TARGET.HasSingularity == true)",
		Attrs:           classad.Ad{},
	}
	good := classad.Ad{"Cpus": classad.Number(8), "Memory": classad.Number(16384), "HasSingularity": classad.Bool(true)}
	ok, err := j.Matches(good)
	if err != nil || !ok {
		t.Fatalf("good machine rejected: %v %v", ok, err)
	}
	small := classad.Ad{"Cpus": classad.Number(2), "Memory": classad.Number(16384), "HasSingularity": classad.Bool(true)}
	if ok, _ := j.Matches(small); ok {
		t.Fatal("undersized machine accepted")
	}
	noSing := classad.Ad{"Cpus": classad.Number(8), "Memory": classad.Number(16384)}
	if ok, _ := j.Matches(noSing); ok {
		t.Fatal("machine without singularity accepted")
	}
	j2 := &Job{Requirements: ""}
	if ok, _ := j2.Matches(classad.Ad{}); !ok {
		t.Fatal("empty requirements should match")
	}
}

func TestScheddLifecycle(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("submit.osg.test", k, nil)
	jobs := []*Job{{Owner: "u"}, {Owner: "u"}}
	cl, err := s.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if cl != 1 {
		t.Fatalf("cluster = %d", cl)
	}
	if s.QueueDepth() != 2 {
		t.Fatalf("queue depth %d", s.QueueDepth())
	}
	k.At(10, func() {
		if err := s.MarkRunning(jobs[0], "site-A"); err != nil {
			t.Error(err)
		}
	})
	k.At(100, func() {
		if err := s.MarkCompleted(jobs[0], 0); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if jobs[0].Status != Completed {
		t.Fatalf("status %v", jobs[0].Status)
	}
	if jobs[0].WaitSeconds() != 10 || jobs[0].ExecSeconds() != 90 {
		t.Fatalf("wait %v exec %v", jobs[0].WaitSeconds(), jobs[0].ExecSeconds())
	}
	if s.Completed() != 1 || s.Done() {
		t.Fatalf("completed %d done %v", s.Completed(), s.Done())
	}
	if s.RunningCount() != 0 {
		t.Fatalf("running %d", s.RunningCount())
	}
}

func TestScheddEvictionRequeues(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	j := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning(j, "h"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkEvicted(j); err != nil {
		t.Fatal(err)
	}
	if j.Status != Idle || j.Evictions != 1 {
		t.Fatalf("status %v evictions %d", j.Status, j.Evictions)
	}
	if s.QueueDepth() != 1 {
		t.Fatal("evicted job not requeued")
	}
}

func TestScheddRemove(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	j := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(j); err != nil {
		t.Fatal(err)
	}
	if j.Status != Removed || s.QueueDepth() != 0 {
		t.Fatal("remove failed")
	}
	if !s.Done() {
		t.Fatal("schedd with all jobs removed should be done")
	}
	if err := s.Remove(j); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestScheddInvalidTransitions(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	j := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkCompleted(j, 0); err == nil {
		t.Fatal("completed an idle job")
	}
	if err := s.MarkEvicted(j); err == nil {
		t.Fatal("evicted an idle job")
	}
	if err := s.MarkRunning(j, "h"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning(j, "h"); err == nil {
		t.Fatal("double start accepted")
	}
	if err := s.Remove(j); err == nil {
		t.Fatal("removed a running job without eviction")
	}
	if _, err := s.Submit(nil); err == nil {
		t.Fatal("empty submit accepted")
	}
}

func TestMaxIdleSubmitThrottle(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	s.MaxIdleSubmit = 2
	var jobs []*Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, &Job{Owner: "u"})
	}
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	if got := len(s.IdleJobs()); got != 2 {
		t.Fatalf("IdleJobs exposed %d, want 2", got)
	}
}

func TestListenerNotification(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	var seen []EventType
	s.Subscribe(func(j *Job, ev EventType) { seen = append(seen, ev) })
	j := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning(j, "h"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkCompleted(j, 0); err != nil {
		t.Fatal(err)
	}
	want := []EventType{EventSubmit, EventExecute, EventTerminated}
	if len(seen) != len(want) {
		t.Fatalf("events %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("events %v, want %v", seen, want)
		}
	}
}

func TestUserLogFormatParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	log := NewUserLog(&buf)
	events := []JobEvent{
		{Type: EventSubmit, Cluster: 12, Proc: 0, At: 0, Host: "submit.node"},
		{Type: EventExecute, Cluster: 12, Proc: 0, At: 63, Host: "exec-17.pool"},
		{Type: EventTerminated, Cluster: 12, Proc: 0, At: 213},
		{Type: EventEvicted, Cluster: 12, Proc: 1, At: 99},
		{Type: EventAborted, Cluster: 13, Proc: 0, At: 150},
		{Type: EventHeld, Cluster: 13, Proc: 1, At: 151},
		{Type: EventReleased, Cluster: 13, Proc: 1, At: 152},
	}
	for _, ev := range events {
		if err := log.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseUserLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(got), len(events))
	}
	for i, ev := range events {
		g := got[i]
		if g.Type != ev.Type || g.Cluster != ev.Cluster || g.Proc != ev.Proc || g.At != ev.At {
			t.Fatalf("event %d: got %+v, want %+v", i, g, ev)
		}
	}
	if got[1].Host != "exec-17.pool" {
		t.Fatalf("host = %q", got[1].Host)
	}
}

func TestParseUserLogRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"garbage line\n",
		"00x (0001.000.000) 2023-11-12 00:00:00 Job submitted\n",
		"000 bad-id 2023-11-12 00:00:00 Job submitted\n",
		"000 (0001.000.000) not-a-date also-bad Job submitted\n",
	} {
		if _, err := ParseUserLog(strings.NewReader(src)); err == nil {
			t.Fatalf("garbage accepted: %q", src)
		}
	}
}

func TestReduceJobTimes(t *testing.T) {
	events := []JobEvent{
		{Type: EventSubmit, Cluster: 1, Proc: 0, At: 0},
		{Type: EventExecute, Cluster: 1, Proc: 0, At: 100},
		{Type: EventTerminated, Cluster: 1, Proc: 0, At: 400},
		{Type: EventSubmit, Cluster: 1, Proc: 1, At: 0},
		{Type: EventExecute, Cluster: 1, Proc: 1, At: 50},
		{Type: EventEvicted, Cluster: 1, Proc: 1, At: 80},
		{Type: EventExecute, Cluster: 1, Proc: 1, At: 200},
		{Type: EventTerminated, Cluster: 1, Proc: 1, At: 500},
	}
	rows := ReduceJobTimes(events)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].WaitSecs != 100 || rows[0].ExecSecs != 300 {
		t.Fatalf("row0 wait %v exec %v", rows[0].WaitSecs, rows[0].ExecSecs)
	}
	// The evicted job's wait is measured to its final start.
	if rows[1].WaitSecs != 200 || rows[1].ExecSecs != 300 || rows[1].Evictions != 1 {
		t.Fatalf("row1 %+v", rows[1])
	}
}

func TestScheddWritesParsableLog(t *testing.T) {
	var buf bytes.Buffer
	k := sim.NewKernel(1)
	s := NewSchedd("submit.host", k, NewUserLog(&buf))
	j := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	k.At(30, func() {
		if err := s.MarkRunning(j, "glidein-3.site"); err != nil {
			t.Error(err)
		}
	})
	k.At(330, func() {
		if err := s.MarkCompleted(j, 0); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if err := s.Log().Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ParseUserLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := ReduceJobTimes(events)
	if len(rows) != 1 || rows[0].WaitSecs != 30 || rows[0].ExecSecs != 300 {
		t.Fatalf("rows %+v", rows)
	}
}

func TestJobStatusString(t *testing.T) {
	if Idle.String() != "idle" || Running.String() != "running" ||
		Completed.String() != "completed" || Removed.String() != "removed" ||
		Held.String() != "held" {
		t.Fatal("status names wrong")
	}
	if JobStatus(42).String() == "" {
		t.Fatal("unknown status should format")
	}
}

func TestPropertyMaterializeCount(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw % 50)
		sf := &SubmitFile{
			Commands: map[string]string{"executable": "x.sh"},
			Plus:     map[string]string{},
			QueueN:   n,
		}
		jobs, err := sf.Materialize(1, "u")
		if err != nil {
			return false
		}
		if len(jobs) != n {
			return false
		}
		for i, j := range jobs {
			if j.Proc != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitFileWriteRoundTrip(t *testing.T) {
	sf, err := ParseSubmit(strings.NewReader(sampleSubmit))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sf.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sf2, err := ParseSubmit(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if sf2.QueueN != sf.QueueN {
		t.Fatal("queue count changed")
	}
	if sf2.Commands["request_cpus"] != sf.Commands["request_cpus"] {
		t.Fatal("commands changed")
	}
	if sf2.Plus["FDWPhase"] != sf.Plus["FDWPhase"] {
		t.Fatal("plus attributes changed")
	}
}

func TestQueueSnapshot(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("snap", k, nil)
	s.MaxIdleSubmit = 2
	jobs := []*Job{{Owner: "u"}, {Owner: "u"}, {Owner: "u"}, {Owner: "u"}}
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning(jobs[0], "h"); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	// 4 accepted: 1 running, 2 idle (throttle released one more after the
	// running slot freed an idle position), 1 staged.
	if snap.Running != 1 {
		t.Fatalf("running %d", snap.Running)
	}
	if snap.Idle+snap.Staged+snap.Running != 4 {
		t.Fatalf("snapshot loses jobs: %+v", snap)
	}
	var buf bytes.Buffer
	if err := snap.Print(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Schedd: snap") {
		t.Fatalf("printout %q", buf.String())
	}
}

func TestSubmitAtomicOnInvalidJob(t *testing.T) {
	// A submission with any invalid job must leave no trace: no cluster
	// id consumed, no prefix of the slice staged or mutated.
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	good := &Job{Owner: "u"}
	bad := &Job{Owner: "u", Status: Running}
	if _, err := s.Submit([]*Job{good, bad}); err == nil {
		t.Fatal("invalid submission accepted")
	}
	if good.Cluster != 0 || good.Status != 0 {
		t.Fatalf("rejected submission mutated the valid job: cluster=%d status=%v", good.Cluster, good.Status)
	}
	if s.QueueDepth() != 0 || s.StagedCount() != 0 || len(s.AllJobs()) != 0 {
		t.Fatalf("rejected submission left queue state: idle=%d staged=%d all=%d",
			s.QueueDepth(), s.StagedCount(), len(s.AllJobs()))
	}
	cl, err := s.Submit([]*Job{good})
	if err != nil {
		t.Fatal(err)
	}
	if cl != 1 {
		t.Fatalf("cluster = %d, want 1: rejected submission consumed a cluster id", cl)
	}
}

func TestSubmitGateRejectsWholeSubmission(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	s.SubmitGate = func(jobs []*Job) error {
		return fmt.Errorf("injected submit failure for %d jobs", len(jobs))
	}
	j := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{j}); err == nil {
		t.Fatal("gated submission accepted")
	}
	if j.Cluster != 0 || j.Status != 0 || len(s.AllJobs()) != 0 {
		t.Fatalf("gated submission mutated state: job=%+v all=%d", j, len(s.AllJobs()))
	}
	// Clearing the gate restores normal service, starting at cluster 1.
	s.SubmitGate = nil
	if cl, err := s.Submit([]*Job{j}); err != nil || cl != 1 {
		t.Fatalf("post-gate submit: cluster=%d err=%v", cl, err)
	}
}

func TestSetObsMidRunGuardsPreexistingJobs(t *testing.T) {
	// Jobs submitted before SetObs have no span: every Mark* transition
	// must guard its span lookup (MarkRunning and MarkEvicted used to
	// annotate unconditionally).
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	early := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{early}); err != nil {
		t.Fatal(err)
	}
	s.SetObs(obs.NewRegistry(nil))
	if err := s.MarkRunning(early, "h"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkEvicted(early); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning(early, "h"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkCompleted(early, 0); err != nil {
		t.Fatal(err)
	}
	if s.JobSpan(early) != nil {
		t.Fatal("span appeared for a pre-SetObs job")
	}
	// Jobs submitted after SetObs get the full span lifecycle.
	late := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{late}); err != nil {
		t.Fatal(err)
	}
	if s.JobSpan(late) == nil {
		t.Fatal("no span for a post-SetObs job")
	}
}
