package dagman

import (
	"encoding/json"
	"fmt"
	"io"
)

// Manifest is the machine-readable counterpart of a rescue DAG
// (WriteRescue): which nodes of one named DAG run are done, as JSON.
// Where a rescue DAG is re-parsed by DAGMan itself, a Manifest is meant
// for other tooling — the sharded campaign runner (internal/expt) reuses
// it as the cell-completion ledger inside its campaign manifests, so
// checkpoint/resume rides on the same machinery as DAG-level rescue.
type Manifest struct {
	// Format is the manifest schema version (ManifestFormat).
	Format int `json:"format"`
	// DAG names the run this manifest belongs to.
	DAG string `json:"dag"`
	// Nodes lists every node in declaration order with its done flag.
	Nodes []ManifestNode `json:"nodes"`
}

// ManifestNode is one node's completion record.
type ManifestNode struct {
	Name string `json:"name"`
	Done bool   `json:"done"`
}

// ManifestFormat is the current manifest schema version.
const ManifestFormat = 1

// Manifest snapshots the executor's per-node completion state — the
// rescue DAG's DONE markings in structured form. Nodes appear in DAG
// declaration order, so the bytes are deterministic.
func (e *Executor) Manifest() Manifest {
	m := Manifest{Format: ManifestFormat, DAG: e.Name}
	for _, name := range e.dag.Order {
		m.Nodes = append(m.Nodes, ManifestNode{
			Name: name,
			Done: e.state[name].state == NodeDone,
		})
	}
	return m
}

// Write renders the manifest as compact JSON.
func (m Manifest) Write(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadManifest parses and validates a manifest written by Write.
func ReadManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return m, fmt.Errorf("dagman: bad manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}

// Validate checks the manifest's structural invariants: a supported
// format, a named DAG, and unique non-empty node names. Embedders (the
// expt campaign manifest) call it on ledgers they carry.
func (m Manifest) Validate() error {
	if m.Format != ManifestFormat {
		return fmt.Errorf("dagman: manifest format %d, want %d", m.Format, ManifestFormat)
	}
	if m.DAG == "" {
		return fmt.Errorf("dagman: manifest has no dag name")
	}
	seen := make(map[string]bool, len(m.Nodes))
	for _, n := range m.Nodes {
		if n.Name == "" {
			return fmt.Errorf("dagman: manifest node with empty name")
		}
		if seen[n.Name] {
			return fmt.Errorf("dagman: manifest lists node %q twice", n.Name)
		}
		seen[n.Name] = true
	}
	return nil
}

// DoneCount returns how many listed nodes are done.
func (m Manifest) DoneCount() int {
	n := 0
	for _, node := range m.Nodes {
		if node.Done {
			n++
		}
	}
	return n
}

// ApplyManifest marks the DAG's nodes Done per the manifest — the
// structured equivalent of loading a rescue DAG before Start, so a new
// Executor skips completed work. Nodes the manifest does not mention
// keep their current flag; a manifest node missing from the DAG is an
// error (the manifest belongs to a different DAG).
func (d *DAG) ApplyManifest(m Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	for _, mn := range m.Nodes {
		n, ok := d.Nodes[mn.Name]
		if !ok {
			return fmt.Errorf("dagman: manifest node %q not in DAG", mn.Name)
		}
		if mn.Done {
			n.Done = true
		}
	}
	return nil
}
