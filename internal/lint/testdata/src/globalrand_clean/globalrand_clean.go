// Package globalrand_clean draws variates the sanctioned way: from a
// seeded, split-keyed sim.RNG stream.
package globalrand_clean

import "fdw/internal/sim"

// Roll draws a die from a deterministic stream.
func Roll(seed uint64) int {
	return sim.NewRNG(seed).Intn(6) + 1
}
