package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	// Santiago to Concepción is roughly 435 km.
	d := HaversineKm(LatLon{-33.45, -70.67}, LatLon{-36.83, -73.05})
	if d < 400 || d > 470 {
		t.Fatalf("Santiago–Concepción = %v km, want ~435", d)
	}
	// Zero distance.
	if d := HaversineKm(LatLon{-20, -70}, LatLon{-20, -70}); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	// One degree of latitude ≈ 111.19 km.
	d = HaversineKm(LatLon{0, 0}, LatLon{1, 0})
	if math.Abs(d-111.19) > 0.5 {
		t.Fatalf("1° latitude = %v km", d)
	}
}

func TestPropertyHaversineMetric(t *testing.T) {
	f := func(aLat, aLon, bLat, bLon int16) bool {
		a := LatLon{float64(aLat%90) / 1.01, float64(aLon % 180)}
		b := LatLon{float64(bLat%90) / 1.01, float64(bLon % 180)}
		dab := HaversineKm(a, b)
		dba := HaversineKm(b, a)
		if dab < 0 {
			return false
		}
		if math.Abs(dab-dba) > 1e-9 {
			return false // symmetry
		}
		// Bounded by half the circumference.
		return dab <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildFaultDefault(t *testing.T) {
	f, err := BuildFault(DefaultChileFault())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumSubfaults() != f.NAlong*f.NDown {
		t.Fatalf("subfault count %d != %d*%d", f.NumSubfaults(), f.NAlong, f.NDown)
	}
	// ~1000 km / 10 km and 200 km / 10 km.
	if f.NAlong < 80 || f.NAlong > 120 {
		t.Fatalf("NAlong = %d, want ~100", f.NAlong)
	}
	if f.NDown != 20 {
		t.Fatalf("NDown = %d, want 20", f.NDown)
	}
}

func TestFaultDepthIncreasesDownDip(t *testing.T) {
	f, err := BuildFault(DefaultChileFault())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.NAlong; i += 17 {
		prev := -1.0
		for j := 0; j < f.NDown; j++ {
			s := f.At(i, j)
			if s.DepthKm <= prev {
				t.Fatalf("depth not increasing at (%d,%d): %v <= %v", i, j, s.DepthKm, prev)
			}
			prev = s.DepthKm
		}
	}
}

func TestFaultDipWithinConfiguredRange(t *testing.T) {
	cfg := DefaultChileFault()
	f, err := BuildFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Subfaults {
		dip := f.Subfaults[i].DipDeg
		if dip < cfg.DipShallowDeg-1e-9 || dip > cfg.DipDeepDeg+1e-9 {
			t.Fatalf("dip %v outside [%v,%v]", dip, cfg.DipShallowDeg, cfg.DipDeepDeg)
		}
	}
}

func TestFaultIndexingConsistent(t *testing.T) {
	f, err := BuildFault(DefaultChileFault())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.NAlong; i++ {
		for j := 0; j < f.NDown; j++ {
			s := f.At(i, j)
			if s.Along != i || s.Down != j {
				t.Fatalf("At(%d,%d) returned subfault (%d,%d)", i, j, s.Along, s.Down)
			}
			if s.Index != i*f.NDown+j {
				t.Fatalf("Index %d at (%d,%d)", s.Index, i, j)
			}
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	f, _ := BuildFault(DefaultChileFault())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range At")
		}
	}()
	f.At(f.NAlong, 0)
}

func TestBuildFaultValidation(t *testing.T) {
	cases := []ChileFaultConfig{
		{LatSouth: -30, LatNorth: -35, TrenchLon: -73, DipShallowDeg: 10, DipDeepDeg: 30, WidthKm: 200, SubfaultKm: 10},
		{LatSouth: -38, LatNorth: -29, TrenchLon: -73, DipShallowDeg: 10, DipDeepDeg: 30, WidthKm: 200, SubfaultKm: 0},
		{LatSouth: -38, LatNorth: -29, TrenchLon: -73, DipShallowDeg: 0, DipDeepDeg: 30, WidthKm: 200, SubfaultKm: 10},
		{LatSouth: -38, LatNorth: -29, TrenchLon: -73, DipShallowDeg: 40, DipDeepDeg: 30, WidthKm: 200, SubfaultKm: 10},
		{LatSouth: -38, LatNorth: -29, TrenchLon: -73, DipShallowDeg: 10, DipDeepDeg: 95, WidthKm: 200, SubfaultKm: 10},
	}
	for i, cfg := range cases {
		if _, err := BuildFault(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestSubfaultDistanceSymmetricPositive(t *testing.T) {
	f, _ := BuildFault(DefaultChileFault())
	a := f.At(0, 0)
	b := f.At(f.NAlong-1, f.NDown-1)
	if d := a.DistanceKm(b); d <= 0 {
		t.Fatalf("distance = %v", d)
	}
	if math.Abs(a.DistanceKm(b)-b.DistanceKm(a)) > 1e-9 {
		t.Fatal("subfault distance asymmetric")
	}
	if a.DistanceKm(a) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestSubfaultArea(t *testing.T) {
	s := Subfault{LengthKm: 10, WidthKm: 10}
	if s.AreaKm2() != 100 {
		t.Fatalf("area = %v", s.AreaKm2())
	}
}

func TestStationLists(t *testing.T) {
	full := FullChileanStations()
	small := SmallChileanStations()
	if len(full) != 121 {
		t.Fatalf("full list has %d stations, want 121", len(full))
	}
	if len(small) != 2 {
		t.Fatalf("small list has %d stations, want 2", len(small))
	}
	// The small list is a prefix of the full list (same stations).
	for i := range small {
		if small[i] != full[i] {
			t.Fatal("small list is not a prefix of the full list")
		}
	}
}

func TestStationNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range FullChileanStations() {
		if seen[s.Name] {
			t.Fatalf("duplicate station name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestStationsWithinChile(t *testing.T) {
	for _, s := range FullChileanStations() {
		if s.Pos.Lat > -17 || s.Pos.Lat < -41 {
			t.Fatalf("station %s latitude %v outside Chile", s.Name, s.Pos.Lat)
		}
		if s.Pos.Lon > -66 || s.Pos.Lon < -76 {
			t.Fatalf("station %s longitude %v outside Chile", s.Name, s.Pos.Lon)
		}
	}
}

func TestStationGenerationDeterministic(t *testing.T) {
	a := FullChileanStations()
	b := FullChileanStations()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("station generation not deterministic")
		}
	}
}

func TestChileanStationsZero(t *testing.T) {
	if got := chileanStations(0); got != nil {
		t.Fatalf("chileanStations(0) = %v, want nil", got)
	}
}

func TestCascadiaFault(t *testing.T) {
	f, err := BuildFault(DefaultCascadiaFault())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumSubfaults() == 0 {
		t.Fatal("empty Cascadia mesh")
	}
	// Shallower than Chile everywhere.
	chile := DefaultChileFault()
	for i := range f.Subfaults {
		if f.Subfaults[i].DipDeg > chile.DipDeepDeg {
			t.Fatalf("Cascadia dip %v exceeds Chile's max", f.Subfaults[i].DipDeg)
		}
	}
	// Northern hemisphere.
	for i := 0; i < f.NumSubfaults(); i += 97 {
		if f.Subfaults[i].Center.Lat < 40 || f.Subfaults[i].Center.Lat > 50 {
			t.Fatalf("subfault latitude %v outside Cascadia", f.Subfaults[i].Center.Lat)
		}
	}
}

func TestCascadiaStations(t *testing.T) {
	sts := CascadiaStations(40)
	if len(sts) != 40 {
		t.Fatalf("%d stations", len(sts))
	}
	seen := map[string]bool{}
	for _, s := range sts {
		if seen[s.Name] {
			t.Fatalf("duplicate station %q", s.Name)
		}
		seen[s.Name] = true
		if s.Pos.Lat < 40 || s.Pos.Lat > 50 || s.Pos.Lon > -121 || s.Pos.Lon < -126 {
			t.Fatalf("station %s at %v outside the Pacific Northwest", s.Name, s.Pos)
		}
	}
	if CascadiaStations(0) != nil {
		t.Fatal("zero stations should be nil")
	}
}

func TestCascadiaRuptureGeneration(t *testing.T) {
	// The FakeQuakes pipeline must work on the new region end to end
	// (this exercises only geometry here; fakequakes tests cover physics).
	f, err := BuildFault(DefaultCascadiaFault())
	if err != nil {
		t.Fatal(err)
	}
	if f.At(0, 0).DepthKm <= 0 {
		t.Fatal("degenerate Cascadia depths")
	}
}
