package classad

import (
	"reflect"
	"testing"
)

func TestParseCachedSharesAndMatchesParse(t *testing.T) {
	src := `(TARGET.GLIDEIN_Site == "uchicago") && RequestCpus <= Cpus`
	e1, err := ParseCached(src)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ParseCached(src)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("ParseCached returned distinct exprs for identical source")
	}
	direct, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if e1.String() != direct.String() {
		t.Fatalf("cached parse %q differs from direct parse %q", e1, direct)
	}
}

func TestParseCachedCachesErrors(t *testing.T) {
	src := "((("
	if _, err := ParseCached(src); err == nil {
		t.Fatal("malformed expression accepted")
	}
	if _, err := ParseCached(src); err == nil {
		t.Fatal("cached malformed expression accepted on second lookup")
	}
}

func TestEvalBoolCachedMatchesEvalBool(t *testing.T) {
	my := Ad{"RequestCpus": Number(4), "Owner": String("dag1")}
	target := Ad{"Cpus": Number(8), "GLIDEIN_Site": String("sdsc")}
	for _, src := range []string{
		`RequestCpus <= Cpus`,
		`TARGET.GLIDEIN_Site == "sdsc"`,
		`TARGET.GLIDEIN_Site == "unl"`,
		`NoSuchAttr == 1`,
	} {
		want, err := EvalBool(src, my, target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvalBoolCached(src, my, target)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: cached %v, direct %v", src, got, want)
		}
	}
}

func TestReferencedAttrs(t *testing.T) {
	cases := []struct {
		src        string
		my, target []string
	}{
		{`true`, nil, nil},
		{`MY.Owner == "dag1"`, []string{"owner"}, nil},
		{`TARGET.GLIDEIN_Site == "unl"`, nil, []string{"glidein_site"}},
		{`RequestCpus <= Cpus`, []string{"cpus", "requestcpus"}, []string{"cpus", "requestcpus"}},
		{
			`MY.Owner != "x" && (TARGET.Memory > 1024 || HasSingularity)`,
			[]string{"hassingularity", "owner"},
			[]string{"hassingularity", "memory"},
		},
		{`-(MY.RequestDisk) < 10`, []string{"requestdisk"}, nil},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatal(err)
		}
		my, target := ReferencedAttrs(e)
		if !reflect.DeepEqual(my, c.my) || !reflect.DeepEqual(target, c.target) {
			t.Fatalf("%s: got my=%v target=%v, want my=%v target=%v",
				c.src, my, target, c.my, c.target)
		}
	}
}
