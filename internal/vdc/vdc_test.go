package vdc

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func deposit(t *testing.T, c *Catalog, name string, typ ProductType, mw float64, tags ...string) string {
	t.Helper()
	id, err := c.Deposit(Product{
		Name: name, Type: typ, Batch: "b1", Region: "chile",
		Mw: mw, SizeBytes: 1024, Tags: tags,
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestDepositGetDelete(t *testing.T) {
	c := NewCatalog()
	id := deposit(t, c, "run000001 waveforms", TypeWaveform, 8.1)
	p, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "run000001 waveforms" || p.Accesses != 1 {
		t.Fatalf("product %+v", p)
	}
	if _, err := c.Get(id); err != nil {
		t.Fatal(err)
	}
	p2, _ := c.Get(id)
	if p2.Accesses != 3 {
		t.Fatalf("accesses %d, want 3", p2.Accesses)
	}
	if err := c.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(id); err == nil {
		t.Fatal("deleted product retrievable")
	}
	if err := c.Delete(id); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestDepositValidation(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Deposit(Product{Type: TypeWaveform}); err == nil {
		t.Fatal("nameless product accepted")
	}
	if _, err := c.Deposit(Product{Name: "x", Type: "movie"}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := c.Deposit(Product{Name: "x", Type: TypeRupture, SizeBytes: -1}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestSearchFilters(t *testing.T) {
	c := NewCatalog()
	deposit(t, c, "wf small", TypeWaveform, 7.9, "eew", "training")
	deposit(t, c, "wf big", TypeWaveform, 8.9, "eew")
	deposit(t, c, "rupture set", TypeRupture, 8.2)

	if got := c.Search(Query{}); len(got) != 3 {
		t.Fatalf("unfiltered search returned %d", len(got))
	}
	if got := c.Search(Query{Type: TypeWaveform}); len(got) != 2 {
		t.Fatalf("type filter returned %d", len(got))
	}
	if got := c.Search(Query{Tag: "TRAINING"}); len(got) != 1 {
		t.Fatalf("tag filter returned %d", len(got))
	}
	if got := c.Search(Query{MinMw: 8.5}); len(got) != 1 || got[0].Name != "wf big" {
		t.Fatalf("min_mw filter returned %v", got)
	}
	if got := c.Search(Query{MaxMw: 8.0}); len(got) != 1 {
		t.Fatalf("max_mw filter returned %d", len(got))
	}
	if got := c.Search(Query{Text: "BIG"}); len(got) != 1 {
		t.Fatalf("text filter returned %d", len(got))
	}
	if got := c.Search(Query{Region: "cascadia"}); len(got) != 0 {
		t.Fatalf("region filter returned %d", len(got))
	}
	if got := c.Search(Query{Batch: "b1", Type: TypeRupture}); len(got) != 1 {
		t.Fatalf("combined filter returned %d", len(got))
	}
}

func TestTagging(t *testing.T) {
	c := NewCatalog()
	id := deposit(t, c, "wf", TypeWaveform, 8.0)
	if err := c.Tag(id, "eew", "eew", "EEW", " ", "chile-2023"); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Get(id)
	if len(p.Tags) != 2 {
		t.Fatalf("tags %v, want deduplicated pair", p.Tags)
	}
	if err := c.Tag("vdc-999999", "x"); err == nil {
		t.Fatal("tagging missing product accepted")
	}
}

func TestPopularOrdering(t *testing.T) {
	c := NewCatalog()
	a := deposit(t, c, "a", TypeWaveform, 8.0)
	b := deposit(t, c, "b", TypeWaveform, 8.0)
	deposit(t, c, "cold", TypeRupture, 8.0)
	for i := 0; i < 5; i++ {
		if _, err := c.Get(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get(a); err != nil {
		t.Fatal(err)
	}
	top := c.Popular(2)
	if len(top) != 2 || top[0].Name != "b" || top[1].Name != "a" {
		t.Fatalf("popular %v", top)
	}
	if got := c.Popular(100); len(got) != 3 {
		t.Fatalf("popular(100) returned %d", len(got))
	}
	if got := c.Popular(-1); len(got) != 0 {
		t.Fatalf("popular(-1) returned %d", len(got))
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewCatalog()))
	defer srv.Close()
	cl := NewClient(srv.URL)

	id, err := cl.Deposit(Product{
		Name: "run000042 waveforms", Type: TypeWaveform,
		Batch: "fdw-1", Region: "chile", Mw: 8.4, SizeBytes: 5 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "vdc-") {
		t.Fatalf("id %q", id)
	}
	if err := cl.Tag(id, "eew", "training"); err != nil {
		t.Fatal(err)
	}
	p, err := cl.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mw != 8.4 || len(p.Tags) != 2 {
		t.Fatalf("product %+v", p)
	}
	found, err := cl.Search(Query{Type: TypeWaveform, Tag: "eew", MinMw: 8.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].ID != id {
		t.Fatalf("search %v", found)
	}
	pop, err := cl.Popular(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 1 {
		t.Fatalf("popular %v", pop)
	}
	if err := cl.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(id); err == nil {
		t.Fatal("deleted product retrievable over HTTP")
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewCatalog()))
	defer srv.Close()
	cl := NewClient(srv.URL)

	if _, err := cl.Deposit(Product{Name: "x", Type: "junk"}); err == nil {
		t.Fatal("bad deposit accepted")
	}
	if _, err := cl.Get("vdc-000404"); err == nil {
		t.Fatal("missing product returned")
	}
	if err := cl.Delete("vdc-000404"); err == nil {
		t.Fatal("missing delete accepted")
	}

	// Raw protocol errors.
	for _, tc := range []struct {
		method, path, body string
		wantStatus         int
	}{
		{"PUT", "/products", "", http.StatusMethodNotAllowed},
		{"POST", "/products", "{not json", http.StatusBadRequest},
		{"GET", "/products?min_mw=high", "", http.StatusBadRequest},
		{"GET", "/products?max_mw=low", "", http.StatusBadRequest},
		{"POST", "/popular", "", http.StatusMethodNotAllowed},
		{"GET", "/popular?n=-2", "", http.StatusBadRequest},
		{"GET", "/popular?n=notanumber", "", http.StatusBadRequest},
		{"GET", "/products/", "", http.StatusBadRequest},
		{"GET", "/products/x/y/z", "", http.StatusNotFound},
		{"GET", "/products/x/tags", "", http.StatusMethodNotAllowed},
		{"POST", "/products/x/tags", "[1,2]", http.StatusBadRequest},
		{"DELETE", "/products/x/tags", "", http.StatusMethodNotAllowed},
		{"POST", "/products/x/tags", "{not json", http.StatusBadRequest},
		{"PUT", "/products/x", "", http.StatusMethodNotAllowed},
		{"POST", "/metrics", "", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s → %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	s := NewServer(NewCatalog())
	srv := httptest.NewServer(s)
	defer srv.Close()
	cl := NewClient(srv.URL)

	if _, err := cl.Deposit(Product{Name: "wf", Type: TypeWaveform, Mw: 8.0}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("vdc-000404"); err == nil {
		t.Fatal("missing product returned")
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics → %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE vdc_http_requests_total counter",
		`vdc_http_requests_total{method="POST",route="/products",status="201"} 1`,
		`vdc_http_requests_total{method="GET",route="/products/{id}",status="404"} 1`,
		"vdc_catalog_products 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(text, "vdc-000404") {
		t.Error("product ids leaked into metric labels")
	}

	// The registry accessor exposes the same counters programmatically.
	snap := s.Registry().Snapshot()
	var total uint64
	for _, c := range snap.Counters {
		if c.Name == "vdc_http_requests_total" {
			total += c.Value
		}
	}
	if total < 2 {
		t.Fatalf("request counter total %d, want >= 2", total)
	}
}

func TestCatalogLen(t *testing.T) {
	c := NewCatalog()
	if c.Len() != 0 {
		t.Fatal("new catalog not empty")
	}
	deposit(t, c, "x", TypeArchive, 0)
	if c.Len() != 1 {
		t.Fatal("Len != 1 after deposit")
	}
}

func TestCatalogSaveLoad(t *testing.T) {
	c := NewCatalog()
	id := deposit(t, c, "persisted", TypeWaveform, 8.3, "eew")
	if _, err := c.Get(id); err != nil { // bump access counter
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatalf("loaded %d products", c2.Len())
	}
	p, err := c2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "persisted" || !p.HasTag("eew") || p.Accesses != 2 {
		t.Fatalf("restored product %+v", p)
	}
	// New deposits continue the ID sequence without collisions.
	id2 := deposit(t, c2, "later", TypeRupture, 8.0)
	if id2 == id {
		t.Fatal("ID collision after restore")
	}
}

func TestLoadCatalogRejectsCorrupt(t *testing.T) {
	if _, err := LoadCatalog(strings.NewReader("{ not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := LoadCatalog(strings.NewReader(`{"next_id":1,"products":[{"id":"x","type":"movie","name":"m"}]}`)); err == nil {
		t.Fatal("unknown product type accepted")
	}
}
