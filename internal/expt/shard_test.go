package expt

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdw/internal/core/atomicfile"
	"fdw/internal/dagman"
	"fdw/internal/obs"
)

// shardTestOptions is the sweep configuration every shard test uses:
// tiny scale, one seed, so a full campaign is a handful of cells.
func shardTestOptions() Options {
	opt := DefaultOptions()
	opt.Scale = 0.002
	opt.Seeds = []uint64{11}
	return opt
}

// runUnsharded produces the reference bytes: the campaign's printed
// report and CSV from a plain in-process run.
func runUnsharded(t *testing.T, name string, opt Options) (report, csv []byte) {
	t.Helper()
	c, err := campaignByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	opt.Out = &rep
	rows, err := runCampaign(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	var cs bytes.Buffer
	if err := c.writeCSV(&cs, rows); err != nil {
		t.Fatal(err)
	}
	return rep.Bytes(), cs.Bytes()
}

// runSharded partitions the campaign N ways, runs every shard to
// completion, merges, and returns the merged report and CSV bytes.
func runSharded(t *testing.T, name string, opt Options, total int) (report, csv []byte) {
	t.Helper()
	dir := t.TempDir()
	var paths []string
	for i := 1; i <= total; i++ {
		p := filepath.Join(dir, fmt.Sprintf("%s.shard%dof%d.json", name, i, total))
		if _, err := RunShard(opt, ShardRun{Campaign: name, Index: i, Total: total, Path: p}); err != nil {
			t.Fatalf("shard %d/%d: %v", i, total, err)
		}
		paths = append(paths, p)
	}
	var rep bytes.Buffer
	mopt := opt
	mopt.Out = &rep
	res, err := MergeManifestFiles(mopt, paths)
	if err != nil {
		t.Fatalf("merge %d-way: %v", total, err)
	}
	var cs bytes.Buffer
	if err := res.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	return rep.Bytes(), cs.Bytes()
}

// Sharding is invisible in the output: for every campaign and any
// partition width, the merged report and CSV are byte-identical to an
// unsharded run — the tentpole invariant.
func TestShardMergeByteIdentical(t *testing.T) {
	for _, name := range []string{"fig2", "fig5", "chaos"} {
		opt := shardTestOptions()
		wantRep, wantCSV := runUnsharded(t, name, opt)
		if len(wantRep) == 0 || len(wantCSV) == 0 {
			t.Fatalf("%s: empty reference output", name)
		}
		for _, total := range []int{1, 2, 4, 7} {
			gotRep, gotCSV := runSharded(t, name, opt, total)
			if !bytes.Equal(wantRep, gotRep) {
				t.Errorf("%s: %d-way merged report differs from unsharded run:\n--- want\n%s\n--- got\n%s",
					name, total, wantRep, gotRep)
			}
			if !bytes.Equal(wantCSV, gotCSV) {
				t.Errorf("%s: %d-way merged CSV differs from unsharded run", name, total)
			}
		}
	}
}

// Every cell lands on exactly one shard, and the assignment is a pure
// function of identity strings.
func TestShardAssignmentPartitions(t *testing.T) {
	opt := shardTestOptions()
	for _, name := range ShardableCampaigns() {
		c, err := campaignByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := c.cells(opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, total := range []int{1, 2, 4, 7} {
			var union []string
			for i := 1; i <= total; i++ {
				owned := ShardCells(name, ids, i, total)
				for _, id := range owned {
					if shardOf(name, id, total) != i {
						t.Fatalf("%s: cell %q listed for shard %d but hashes elsewhere", name, id, i)
					}
				}
				union = append(union, owned...)
			}
			if len(union) != len(ids) {
				t.Fatalf("%s /%d: union has %d cells, want %d", name, total, len(union), len(ids))
			}
			seen := map[string]bool{}
			for _, id := range union {
				if seen[id] {
					t.Fatalf("%s /%d: cell %q owned twice", name, total, id)
				}
				seen[id] = true
			}
		}
	}
}

// Killing a sharded campaign after k completed cells and resuming
// converges to the same manifest and merged bytes as an uninterrupted
// run, for every k — the checkpoint/resume property.
func TestShardKillResumeConverges(t *testing.T) {
	const name = "fig2"
	opt := shardTestOptions()
	wantRep, wantCSV := runUnsharded(t, name, opt)

	c, err := campaignByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := c.cells(opt)
	if err != nil {
		t.Fatal(err)
	}
	const total = 2
	owned := ShardCells(name, ids, 1, total)
	if len(owned) < 2 {
		t.Fatalf("shard 1/%d owns %d cells; test needs ≥2", total, len(owned))
	}

	dir := t.TempDir()
	// Reference manifests from uninterrupted shard runs.
	refPaths := make([]string, total)
	for i := 1; i <= total; i++ {
		refPaths[i-1] = filepath.Join(dir, fmt.Sprintf("ref%d.json", i))
		if _, err := RunShard(opt, ShardRun{Campaign: name, Index: i, Total: total, Path: refPaths[i-1]}); err != nil {
			t.Fatal(err)
		}
	}
	refBytes, err := os.ReadFile(refPaths[0])
	if err != nil {
		t.Fatal(err)
	}

	for k := 1; k < len(owned); k++ {
		p := filepath.Join(dir, fmt.Sprintf("kill%d.json", k))
		_, err := RunShard(opt, ShardRun{Campaign: name, Index: 1, Total: total, Path: p, MaxCells: k})
		if !errors.Is(err, ErrIncomplete) {
			t.Fatalf("k=%d: budgeted run returned %v, want ErrIncomplete", k, err)
		}
		mid, err := ReadCampaignManifestFile(p)
		if err != nil {
			t.Fatalf("k=%d: checkpoint unreadable: %v", k, err)
		}
		if got := mid.Ledger.DoneCount(); got != k {
			t.Fatalf("k=%d: checkpoint marks %d cells done", k, got)
		}
		if mid.Complete() {
			t.Fatalf("k=%d: truncated run claims completeness", k)
		}
		// Merging an incomplete shard must refuse with ErrIncomplete.
		if _, err := MergeManifestFiles(opt, []string{p, refPaths[1]}); !errors.Is(err, ErrIncomplete) {
			t.Fatalf("k=%d: merge of incomplete shard returned %v, want ErrIncomplete", k, err)
		}

		if _, err := RunShard(opt, ShardRun{Campaign: name, Index: 1, Total: total, Path: p, Resume: true}); err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		got, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, refBytes) {
			t.Fatalf("k=%d: resumed manifest differs from uninterrupted manifest", k)
		}
		var rep bytes.Buffer
		mopt := opt
		mopt.Out = &rep
		res, err := MergeManifestFiles(mopt, []string{p, refPaths[1]})
		if err != nil {
			t.Fatalf("k=%d: merge after resume: %v", k, err)
		}
		var cs bytes.Buffer
		if err := res.WriteCSV(&cs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rep.Bytes(), wantRep) || !bytes.Equal(cs.Bytes(), wantCSV) {
			t.Fatalf("k=%d: kill-then-resume merge not byte-identical to unsharded run", k)
		}
	}
}

// Corrupted, truncated, or mismatched manifests are rejected rather
// than silently merged or resumed.
func TestShardManifestRejection(t *testing.T) {
	const name = "fig2"
	opt := shardTestOptions()
	dir := t.TempDir()
	p := filepath.Join(dir, "m.json")
	if _, err := RunShard(opt, ShardRun{Campaign: name, Index: 1, Total: 2, Path: p}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}

	write := func(b []byte) string {
		t.Helper()
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return bad
	}

	// Truncated file (a kill mid-write, had the write not been atomic).
	if _, err := ReadCampaignManifestFile(write(good[:len(good)/2])); err == nil {
		t.Error("truncated manifest accepted")
	}
	// Flipped result byte breaks the cell digest.
	corrupt := bytes.Replace(good, []byte(`"runtime_h":`), []byte(`"runtime_h":9`), 1)
	if bytes.Equal(corrupt, good) {
		t.Fatal("corruption did not apply")
	}
	if _, err := ReadCampaignManifestFile(write(corrupt)); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Errorf("corrupted result accepted or wrong error: %v", err)
	}
	// Foreign cell: a ledger node that does not hash to this shard.
	foreign := bytes.Replace(good, []byte(`"shard":{"index":1,"total":2}`), []byte(`"shard":{"index":2,"total":2}`), 1)
	if _, err := ReadCampaignManifestFile(write(foreign)); err == nil {
		t.Error("manifest with foreign cells accepted")
	}

	// Resume under different options must refuse (fingerprint pin).
	other := opt
	other.Seeds = []uint64{12}
	if _, err := RunShard(other, ShardRun{Campaign: name, Index: 1, Total: 2, Path: p, Resume: true}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("resume with different options: %v", err)
	}
	// Merge under different options likewise.
	if _, err := MergeManifestFiles(other, []string{p}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("merge with different options: %v", err)
	}
	// Merge with a shard missing.
	if _, err := MergeManifestFiles(opt, []string{p}); err == nil || !strings.Contains(err.Error(), "not supplied") {
		t.Errorf("merge with missing shard: %v", err)
	}
	// The same shard supplied twice is benign when the copies agree —
	// the merge proceeds to complain about the genuinely missing shard,
	// not the duplicate.
	if _, err := MergeManifestFiles(opt, []string{p, p}); err == nil || !strings.Contains(err.Error(), "not supplied") {
		t.Errorf("merge with identical duplicate shard: %v", err)
	}
}

// A shard slot supplied twice with disagreeing results must fail
// naming the cell and both digests — never resolve last-write-wins.
func TestMergeDuplicateShardConflict(t *testing.T) {
	const name = "fig2"
	opt := shardTestOptions()
	dir := t.TempDir()
	p := filepath.Join(dir, "m.json")
	if _, err := RunShard(opt, ShardRun{Campaign: name, Index: 1, Total: 2, Path: p}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadCampaignManifestFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) == 0 {
		t.Fatal("shard completed no cells")
	}
	// Forge an internally consistent sibling claiming the same slot with
	// a different result for one cell.
	victim := &m.Cells[0]
	cell, orig := victim.ID, victim.Digest
	victim.Result = json.RawMessage(`{"forged":true}`)
	victim.Digest = cellDigest(victim.Result)
	forgedPath := filepath.Join(dir, "forged.json")
	if err := m.WriteFile(forgedPath); err != nil {
		t.Fatal(err)
	}
	_, err = MergeManifestFiles(opt, []string{p, forgedPath})
	if err == nil {
		t.Fatal("conflicting duplicate shard merged silently")
	}
	for _, want := range []string{"conflicting", cell, orig, victim.Digest} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("conflict error %q does not name %q", err, want)
		}
	}
}

// Leased worker bundles that disagree on a cell fail the merge naming
// both workers and digests; mixing leased and hash-partitioned bundles
// is refused outright.
func TestMergeLeasedArbitration(t *testing.T) {
	opt := shardTestOptions()
	fp, err := opt.Fingerprint("fig2")
	if err != nil {
		t.Fatal(err)
	}
	leased := func(idx int, raw string) *CampaignManifest {
		return &CampaignManifest{
			Format:      CampaignManifestFormat,
			Campaign:    "fig2",
			Shard:       ShardSpec{Index: idx, Total: 2},
			Leased:      true,
			Fingerprint: fp,
			Ledger: dagman.Manifest{
				Format: dagman.ManifestFormat,
				DAG:    "t",
				Nodes:  []dagman.ManifestNode{{Name: "cellX", Done: true}},
			},
			Cells: []CellRecord{{ID: "cellX", Result: json.RawMessage(raw), Digest: cellDigest([]byte(raw))}},
		}
	}
	m1, m2 := leased(1, `{"a":1}`), leased(2, `{"a":2}`)
	_, err = MergeManifests(opt, []*CampaignManifest{m1, m2})
	if err == nil {
		t.Fatal("conflicting leased bundles merged silently")
	}
	for _, want := range []string{"cellX", m1.Cells[0].Digest, m2.Cells[0].Digest, "last-write-wins"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("leased conflict error %q does not name %q", err, want)
		}
	}

	dir := t.TempDir()
	p := filepath.Join(dir, "hash.json")
	if _, err := RunShard(opt, ShardRun{Campaign: "fig2", Index: 1, Total: 2, Path: p}); err != nil {
		t.Fatal(err)
	}
	hash, err := ReadCampaignManifestFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeManifests(opt, []*CampaignManifest{m1, hash}); err == nil || !strings.Contains(err.Error(), "mix") {
		t.Errorf("leased+hash merge: %v", err)
	}
}

// A kill in the window between a checkpoint's temp-file write and its
// rename leaves the previous complete manifest plus an orphan temp
// file; -resume must recover from the last good checkpoint and never
// trust the orphan.
func TestShardTornCheckpointResume(t *testing.T) {
	const name = "fig2"
	opt := shardTestOptions()
	opt.Workers = 1 // serialize cells so the kill point is deterministic
	dir := t.TempDir()

	ref := filepath.Join(dir, "ref.json")
	if _, err := RunShard(opt, ShardRun{Campaign: name, Index: 1, Total: 2, Path: ref}); err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	p := filepath.Join(dir, "m.json")
	calls := 0
	atomicfile.TestHookBeforeRename = func(dest string) error {
		if dest != p {
			return nil
		}
		calls++
		if calls == 2 {
			return errors.New("injected kill before rename")
		}
		return nil
	}
	defer func() { atomicfile.TestHookBeforeRename = nil }()
	if _, err := RunShard(opt, ShardRun{Campaign: name, Index: 1, Total: 2, Path: p}); err == nil || !strings.Contains(err.Error(), "injected kill") {
		t.Fatalf("torn run: %v", err)
	}
	atomicfile.TestHookBeforeRename = nil

	// The destination is the previous complete checkpoint; the torn
	// write survives only as an orphan temp file.
	mid, err := ReadCampaignManifestFile(p)
	if err != nil {
		t.Fatalf("checkpoint after torn write unreadable: %v", err)
	}
	if got := mid.Ledger.DoneCount(); got != 1 {
		t.Fatalf("checkpoint after torn write marks %d cells done, want 1", got)
	}
	orphans, err := filepath.Glob(p + ".tmp*")
	if err != nil || len(orphans) == 0 {
		t.Fatalf("no orphan temp file left by torn write (glob err %v)", err)
	}

	if _, err := RunShard(opt, ShardRun{Campaign: name, Index: 1, Total: 2, Path: p, Resume: true}); err != nil {
		t.Fatalf("resume after torn checkpoint: %v", err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refBytes) {
		t.Fatal("manifest resumed after torn checkpoint differs from uninterrupted run")
	}
}

// Per-shard metrics snapshots roll up to the unsharded totals: the
// campaign-level counter sums are exact regardless of partitioning.
func TestShardMetricsRollup(t *testing.T) {
	const name = "chaos"
	opt := shardTestOptions()

	ref := obs.NewRegistry(nil)
	uopt := opt
	uopt.Obs = ref
	c, err := campaignByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runCampaign(c, uopt); err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{}
	for _, cs := range ref.Snapshot().Counters {
		want[mergeKeyForTest(cs.Name, cs.Labels)] += cs.Value
	}

	dir := t.TempDir()
	const total = 3
	var paths []string
	for i := 1; i <= total; i++ {
		sopt := opt
		sopt.Obs = obs.NewRegistry(nil)
		p := filepath.Join(dir, fmt.Sprintf("m%d.json", i))
		if _, err := RunShard(sopt, ShardRun{Campaign: name, Index: i, Total: total, Path: p}); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	res, err := MergeManifestFiles(opt, paths)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("merged result has no metrics rollup")
	}
	got := map[string]uint64{}
	for _, cs := range res.Metrics.Counters {
		got[mergeKeyForTest(cs.Name, cs.Labels)] += cs.Value
	}
	if len(want) == 0 {
		t.Fatal("reference run recorded no counters")
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("counter %q: rollup %d, unsharded %d", k, got[k], w)
		}
	}
}

// mergeKeyForTest mirrors obs's canonical metric key without exporting
// it: name plus sorted label pairs.
func mergeKeyForTest(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	out := name
	for _, k := range keys {
		out += "|" + k + "=" + labels[k]
	}
	return out
}
