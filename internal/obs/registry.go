// Package obs is FDW's simulation-clock-aware observability layer: a
// metrics registry (counters, gauges, histograms) and lightweight
// job-lifecycle spans, all timestamped by sim.Time rather than
// wall-clock, with Prometheus text and JSON snapshot exporters.
//
// The layer obeys one hard rule (DESIGN.md §7/§8): instrumentation
// must never perturb results. Nothing in this package draws from the
// simulation RNG, schedules events, or feeds values back into model
// decisions — a registry only records what deterministic code already
// did, so every figure and CSV is byte-identical with metrics enabled
// or disabled (asserted by TestFiguresIdenticalWithMetricsEnabled).
//
// A nil *Registry is a valid no-op sink: every method on a nil
// registry returns a shared inert instrument, so instrumented
// subsystems call r.Counter(...).Inc() unconditionally and pay only a
// map-free fast path when observability is off.
//
// The registry is safe for concurrent use — the DES itself is
// single-goroutine, but the experiment harness fans independent
// simulations over worker goroutines that may share one registry.
// Integer counters commute, so their totals are deterministic for any
// worker count; histogram float sums and span ordering are only
// guaranteed reproducible for single-environment runs (cmd/fdw).
package obs

import (
	"sort"
	"sync"

	"fdw/internal/sim"
)

// Clock reports the current simulated time. A nil Clock timestamps
// everything at 0 (useful for wall-clock-free contexts like the VDC
// HTTP portal, where only the values matter).
type Clock func() sim.Time

// DefaultSpanLimit bounds retained spans per registry; a 16k-waveform
// FDW batch is ~9k jobs, so one workflow's lifecycle fits. Spans past
// the limit are counted (SpansDropped) but not stored.
const DefaultSpanLimit = 16384

// Registry holds the instruments of one observed run.
type Registry struct {
	clock Clock

	mu           sync.Mutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	hists        map[string]*Histogram
	spans        []*Span
	spanLimit    int
	spansDropped uint64
}

// NewRegistry returns an empty registry timestamped by clock (nil =
// always sim.Time 0).
func NewRegistry(clock Clock) *Registry {
	return &Registry{
		clock:     clock,
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
		spanLimit: DefaultSpanLimit,
	}
}

// SetClock rebinds the registry's simulation clock; the zero of a new
// environment typically calls this before any events run.
func (r *Registry) SetClock(clock Clock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// SetSpanLimit bounds retained spans (0 disables span retention;
// creations past the limit only increment SpansDropped).
func (r *Registry) SetSpanLimit(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spanLimit = n
	r.mu.Unlock()
}

// now reads the clock under the registry lock (callers hold r.mu).
func (r *Registry) nowLocked() sim.Time {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

// Now returns the registry's current simulated time (0 for a nil
// registry or nil clock).
func (r *Registry) Now() sim.Time {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nowLocked()
}

// labelPairs converts alternating key/value arguments into sorted
// pairs; an odd trailing key is dropped.
func labelPairs(kv []string) [][2]string {
	n := len(kv) / 2
	if n == 0 {
		return nil
	}
	pairs := make([][2]string, 0, n)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, [2]string{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a][0] < pairs[b][0] })
	return pairs
}

// metricKey renders the canonical identity of a metric: its name plus
// the sorted label set, in Prometheus exposition syntax.
func metricKey(name string, pairs [][2]string) string {
	if len(pairs) == 0 {
		return name
	}
	out := name + "{"
	for i, p := range pairs {
		if i > 0 {
			out += ","
		}
		out += p[0] + `="` + p[1] + `"`
	}
	return out + "}"
}

// Counter is a monotonically increasing integer metric. Integer
// arithmetic commutes, so counter totals are deterministic even when
// concurrent environments share a registry.
type Counter struct {
	r     *Registry // nil for the shared no-op instance
	name  string
	pairs [][2]string

	v  uint64
	at sim.Time
}

var nopCounter = &Counter{}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string, labelKV ...string) *Counter {
	if r == nil {
		return nopCounter
	}
	pairs := labelPairs(labelKV)
	key := metricKey(name, pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{r: r, name: name, pairs: pairs}
		r.counters[key] = c
	}
	return c
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c.r == nil {
		return
	}
	c.r.mu.Lock()
	c.v += n
	c.at = c.r.nowLocked()
	c.r.mu.Unlock()
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c.r == nil {
		return 0
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.v
}

// Gauge is a point-in-time value with its last-update sim.Time.
type Gauge struct {
	r     *Registry
	name  string
	pairs [][2]string

	v  float64
	at sim.Time
}

var nopGauge = &Gauge{}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string, labelKV ...string) *Gauge {
	if r == nil {
		return nopGauge
	}
	pairs := labelPairs(labelKV)
	key := metricKey(name, pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{r: r, name: name, pairs: pairs}
		r.gauges[key] = g
	}
	return g
}

// Set stores v, stamped with the current simulated time.
func (g *Gauge) Set(v float64) {
	if g.r == nil {
		return
	}
	g.r.mu.Lock()
	g.v = v
	g.at = g.r.nowLocked()
	g.r.mu.Unlock()
}

// Add offsets the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g.r == nil {
		return
	}
	g.r.mu.Lock()
	g.v += delta
	g.at = g.r.nowLocked()
	g.r.mu.Unlock()
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g.r == nil {
		return 0
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.v
}

// At returns the sim.Time of the last Set/Add.
func (g *Gauge) At() sim.Time {
	if g.r == nil {
		return 0
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.at
}

// DefaultBuckets covers the durations FDW observes — sub-second cache
// probes up to multi-day batch horizons (upper bounds in seconds).
var DefaultBuckets = []float64{
	0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10, 30,
	60, 120, 300, 600, 1800, 3600, 7200, 14400, 43200, 86400, 259200,
}

// Histogram accumulates observations into fixed buckets plus exact
// count/sum/min/max, supporting quantile estimates from the buckets.
type Histogram struct {
	r     *Registry
	name  string
	pairs [][2]string

	bounds   []float64 // ascending upper bounds; +Inf bucket is implicit
	counts   []uint64  // len(bounds)+1
	count    uint64
	sum      float64
	min, max float64
	at       sim.Time
}

var nopHistogram = &Histogram{}

// Histogram returns (registering on first use) the named histogram
// with DefaultBuckets.
func (r *Registry) Histogram(name string, labelKV ...string) *Histogram {
	return r.HistogramBuckets(name, DefaultBuckets, labelKV...)
}

// HistogramBuckets returns the named histogram, creating it with the
// given ascending upper bounds on first use (later calls keep the
// original bounds).
func (r *Registry) HistogramBuckets(name string, bounds []float64, labelKV ...string) *Histogram {
	if r == nil {
		return nopHistogram
	}
	pairs := labelPairs(labelKV)
	key := metricKey(name, pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{r: r, name: name, pairs: pairs, bounds: b, counts: make([]uint64, len(b)+1)}
		r.hists[key] = h
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.r == nil {
		return
	}
	h.r.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.at = h.r.nowLocked()
	h.r.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h.r == nil {
		return 0
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h.r == nil {
		return 0
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the bucket containing it, clamped to the observed [min, max].
// It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h.r == nil {
		return 0
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			lo := h.min
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if lo < h.min {
				lo = h.min
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.max
}
