// Package directive_new exercises //lint:allow against the durability
// and determinism analyzers: a reasoned suppression that works, a
// reason-less one that does not, a directive naming the wrong analyzer
// for the line it sits on, and an unused one.
package directive_new

import "os"

// Scratch is a reasoned, working suppression: the diagnostic is
// silenced and the directive counts as used.
func Scratch(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "probe-*") //lint:allow atomicwrite probe file, never read back as an artifact
}

// NoReason forgets the mandatory reason, so the atomicwrite
// diagnostic survives alongside the directive complaint.
func NoReason(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) //lint:allow atomicwrite
}

// WrongAnalyzer names errdrop on an atomicwrite line: the real
// diagnostic survives and the directive is reported unused.
func WrongAnalyzer(path string) (*os.File, error) {
	return os.Create(path) //lint:allow errdrop wrong analyzer for this line
}

// MapTotal's suppression sits on a clean line: unused.
func MapTotal(xs []float64) float64 {
	var s float64
	//lint:allow floatorder slices iterate in index order already
	for _, x := range xs {
		s += x
	}
	return s
}
