// Partitioning: should a 16,000-waveform workload run as one DAGMan or
// be split across several launched simultaneously? This reproduces the
// paper's §4.2 comparison at 1/16 scale and prints the per-DAGMan
// runtimes and throughputs — the single-DAGMan advantage is the
// paper's headline optimization insight.
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"log"

	"fdw"
)

const totalWaveforms = 1000 // 16,000 / 16

func main() {
	fmt.Printf("producing %d waveforms (full Chilean input) with 1, 2, 4, 8 concurrent DAGMans\n\n", totalWaveforms)
	fmt.Printf("%8s | %12s | %14s | %11s\n", "dagmans", "avg runtime", "avg jobs/min", "makespan h")
	for _, n := range []int{1, 2, 4, 8} {
		env, err := fdw.NewEnv(23, fdw.DefaultPoolConfig())
		if err != nil {
			log.Fatal(err)
		}
		var wfs []*fdw.Workflow
		for i := 0; i < n; i++ {
			cfg := fdw.DefaultConfig()
			cfg.Name = fmt.Sprintf("part-%d-of-%d", i+1, n)
			cfg.Waveforms = totalWaveforms / n
			cfg.Seed = 23*100 + uint64(i)
			// All DAGMans belong to one researcher: same OSG user, so
			// they share a single fair-share priority (as in the paper).
			w, err := fdw.NewWorkflow(cfg, env, nil)
			if err != nil {
				log.Fatal(err)
			}
			wfs = append(wfs, w)
		}
		if err := fdw.RunBatch(env, wfs, 1000*3600); err != nil {
			log.Fatal(err)
		}
		var sumRt, sumJpm float64
		for _, w := range wfs {
			sumRt += w.RuntimeHours()
			sumJpm += w.ThroughputJPM()
		}
		fmt.Printf("%8d | %9.2f h | %14.2f | %11.2f\n",
			n, sumRt/float64(n), sumJpm/float64(n), float64(env.Kernel.Now())/3600)
	}
	fmt.Println("\nper-DAGMan throughput roughly halves at each doubling, while runtime")
	fmt.Println("does not shrink proportionally: partitioning is not advantageous on OSG.")
}
