package expt

import (
	"fmt"

	"fdw/internal/burst"
	"fdw/internal/core"
	"fdw/internal/ospool"
	"fdw/internal/sim"
	"fdw/internal/stash"
)

// The ablations quantify the design choices DESIGN.md §6 calls out:
// matrix recycling, the Stash cache, and the per-job fan-out. Each
// returns paper-style rows and prints them to opt.Out.

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Label         string
	RuntimeH      float64
	ThroughputJPM float64
	Jobs          int
}

// AblationRecycling measures FDW with and without the recyclable .npy
// distance matrices (the paper: generating them is time-consuming, so
// "recycling them is crucial").
func AblationRecycling(opt Options) ([]AblationRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	w := opt.out()
	fmt.Fprintf(w, "Ablation — matrix recycling (%d waveforms, full input)\n", opt.scaleN(1024))
	variants := []bool{true, false}
	rows := make([]AblationRow, len(variants))
	err := forEachIndex(opt.workers(), len(variants), func(i int) error {
		recycle := variants[i]
		cfg := core.DefaultConfig()
		cfg.Waveforms = opt.scaleN(1024)
		cfg.RecycleMatrices = recycle
		cfg.Name = fmt.Sprintf("ablate-recycle-%t", recycle)
		label := "recycled .npy"
		if !recycle {
			label = "regenerate .npy"
		}
		rt, jpm, jobs, err := runOne(opt, cfg, opt.Seeds[0])
		if err != nil {
			return err
		}
		rows[i] = AblationRow{Label: label, RuntimeH: rt, ThroughputJPM: jpm, Jobs: jobs}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s runtime %6.2f h, %6.2f JPM, %d jobs\n", r.Label, r.RuntimeH, r.ThroughputJPM, r.Jobs)
	}
	return rows, nil
}

// AblationStash measures FDW with the Stash cache versus all-cold
// transfers (every job pays origin bandwidth for the >1 GB inputs).
func AblationStash(opt Options) ([]AblationRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	w := opt.out()
	n := opt.scaleN(2000)
	fmt.Fprintf(w, "Ablation — Stash cache (%d waveforms, full input)\n", n)
	variants := []bool{true, false}
	rows := make([]AblationRow, len(variants))
	err := forEachIndex(opt.workers(), len(variants), func(i int) error {
		withCache := variants[i]
		k := sim.NewKernel(opt.Seeds[0])
		var cache *stash.Cache
		var err error
		label := "stash cache"
		if withCache {
			cache, err = stash.New(stash.DefaultConfig())
		} else {
			// No regional caches: every transfer rides origin bandwidth.
			cfg := stash.DefaultConfig()
			cfg.CacheBps = cfg.OriginBps
			cache, err = stash.New(cfg)
			label = "no cache (all cold)"
		}
		if err != nil {
			return err
		}
		pool, err := ospool.New(k, opt.Pool, cache)
		if err != nil {
			return err
		}
		cache.SetObs(opt.Obs)
		pool.SetObs(opt.Obs)
		env := &core.Env{Kernel: k, Pool: pool, Cache: cache, Obs: opt.Obs}
		cfg := core.DefaultConfig()
		cfg.Waveforms = n
		cfg.Name = "ablate-stash"
		cfg.Seed = opt.Seeds[0]
		wf, err := core.NewWorkflow(cfg, env.Kernel, env.Pool, nil)
		if err != nil {
			return err
		}
		if err := core.RunBatch(env, []*core.Workflow{wf}, opt.Horizon); err != nil {
			return err
		}
		rows[i] = AblationRow{
			Label:         label,
			RuntimeH:      wf.RuntimeHours(),
			ThroughputJPM: wf.ThroughputJPM(),
			Jobs:          wf.Schedd.Completed(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s runtime %6.2f h, %6.2f JPM\n", r.Label, r.RuntimeH, r.ThroughputJPM)
	}
	return rows, nil
}

// AblationFanout sweeps the phase C fan-out (waveforms per OSG job):
// finer fan-out exposes more parallelism but multiplies scheduling and
// transfer overhead — the trade that fixed the paper's 2-per-job choice.
func AblationFanout(opt Options) ([]AblationRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	w := opt.out()
	n := opt.scaleN(4096)
	fmt.Fprintf(w, "Ablation — waveforms per job (%d waveforms, full input)\n", n)
	fanouts := []int{1, 2, 8, 32}
	rows := make([]AblationRow, len(fanouts))
	err := forEachIndex(opt.workers(), len(fanouts), func(i int) error {
		perJob := fanouts[i]
		cfg := core.DefaultConfig()
		cfg.Waveforms = n
		cfg.WaveformsPerJob = perJob
		cfg.Name = fmt.Sprintf("ablate-fanout-%d", perJob)
		rt, jpm, jobs, err := runOne(opt, cfg, opt.Seeds[0])
		if err != nil {
			return err
		}
		rows[i] = AblationRow{Label: fmt.Sprintf("%d wf/job", perJob), RuntimeH: rt, ThroughputJPM: jpm, Jobs: jobs}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s runtime %6.2f h, %6.2f JPM, %d jobs\n", r.Label, r.RuntimeH, r.ThroughputJPM, r.Jobs)
	}
	return rows, nil
}

// Policy3Row is one point of the submission-gap sweep.
type Policy3Row struct {
	Batch      string
	MaxGapMin  float64
	AvgJPM     float64
	BurstedPct float64
	CostUSD    float64
}

// Policy3Sweep explores Policy 3 (submission gaps), which the paper
// defines but does not sweep: maximum allowed gaps of 5–60 minutes on
// the two §4.3 batch traces.
func Policy3Sweep(opt Options) ([]Policy3Row, error) {
	batches, jobs, err := MakeBatchTraces(opt)
	if err != nil {
		return nil, err
	}
	w := opt.out()
	fmt.Fprintf(w, "Policy 3 sweep — burst on submission gaps\n")
	fmt.Fprintf(w, "%8s %8s | %8s %8s %8s\n", "batch", "gap min", "AIT jpm", "burst %", "cost $")
	gaps := []float64{5, 15, 30, 60}
	rows := make([]Policy3Row, len(batches)*len(gaps))
	err = forEachIndex(opt.workers(), len(rows), func(i int) error {
		bi, gapMin := i/len(gaps), gaps[i%len(gaps)]
		cfg := burst.DefaultConfig()
		cfg.Obs = opt.Obs
		cfg.P3 = &burst.Policy3{MaxGapSecs: gapMin * 60, ProbeSecs: 30}
		res, err := burst.Simulate(batches[bi], jobs[bi], cfg)
		if err != nil {
			return err
		}
		rows[i] = Policy3Row{
			Batch:      batches[bi].Name,
			MaxGapMin:  gapMin,
			AvgJPM:     res.AvgInstantJPM,
			BurstedPct: res.BurstedPct,
			CostUSD:    res.CostUSD,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%8s %8.0f | %8.2f %8.1f %8.2f\n",
			row.Batch, row.MaxGapMin, row.AvgJPM, row.BurstedPct, row.CostUSD)
	}
	return rows, nil
}

// ElasticRow compares the future-work elastic policy with Policy 1.
type ElasticRow struct {
	Batch      string
	Policy     string
	AvgJPM     float64
	BurstedPct float64
	CostUSD    float64
	RuntimeH   float64
}

// ElasticComparison runs the paper's future-work elastic algorithm
// against Policy 1 at the same probing cadence and target.
func ElasticComparison(opt Options) ([]ElasticRow, error) {
	batches, jobs, err := MakeBatchTraces(opt)
	if err != nil {
		return nil, err
	}
	w := opt.out()
	fmt.Fprintf(w, "Elastic bursting (future work §6) vs Policy 1 (target %d JPM)\n", Fig5Threshold)
	fmt.Fprintf(w, "%8s %-10s | %8s %8s %9s %9s\n", "batch", "policy", "AIT jpm", "burst %", "cost $", "runtime h")
	configs := []struct {
		name string
		cfg  burst.Config
	}{
		{"policy-1", func() burst.Config {
			c := burst.DefaultConfig()
			c.Obs = opt.Obs
			c.P1 = &burst.Policy1{ProbeSecs: 30, ThresholdJPM: Fig5Threshold}
			return c
		}()},
		{"elastic", func() burst.Config {
			c := burst.DefaultConfig()
			c.Obs = opt.Obs
			c.Elastic = &burst.ElasticPolicy{TargetJPM: Fig5Threshold, ProbeSecs: 30, MaxPerProbe: 8}
			return c
		}()},
	}
	rows := make([]ElasticRow, len(batches)*len(configs))
	err = forEachIndex(opt.workers(), len(rows), func(i int) error {
		bi, pc := i/len(configs), configs[i%len(configs)]
		res, err := burst.Simulate(batches[bi], jobs[bi], pc.cfg)
		if err != nil {
			return err
		}
		rows[i] = ElasticRow{
			Batch:      batches[bi].Name,
			Policy:     pc.name,
			AvgJPM:     res.AvgInstantJPM,
			BurstedPct: res.BurstedPct,
			CostUSD:    res.CostUSD,
			RuntimeH:   res.RuntimeSecs / 3600,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%8s %-10s | %8.2f %8.1f %9.2f %9.2f\n",
			row.Batch, row.Policy, row.AvgJPM, row.BurstedPct, row.CostUSD, row.RuntimeH)
	}
	return rows, nil
}

// AblationChurn measures FDW under aggressive pilot churn (mean
// glidein lifetime cut from 6 h to 45 min): evictions spike but the
// requeue machinery keeps the workflow correct, at a bounded runtime
// cost — the robustness argument for running FakeQuakes on
// opportunistic OSG resources at all.
func AblationChurn(opt Options) ([]AblationRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	w := opt.out()
	n := opt.scaleN(2000)
	fmt.Fprintf(w, "Ablation — glidein churn (%d waveforms, full input)\n", n)
	variants := []bool{false, true}
	rows := make([]AblationRow, len(variants))
	evicted := make([]int, len(variants))
	err := forEachIndex(opt.workers(), len(variants), func(i int) error {
		churn := variants[i]
		pool := opt.Pool
		pool.Sites = append([]ospool.SiteConfig(nil), opt.Pool.Sites...)
		label := "6h pilots"
		if churn {
			pool.GlideinLifetimeMean = 45 * 60
			label = "45min pilots"
		}
		k := sim.NewKernel(opt.Seeds[0])
		cache, err := stash.New(stash.DefaultConfig())
		if err != nil {
			return err
		}
		pl, err := ospool.New(k, pool, cache)
		if err != nil {
			return err
		}
		cache.SetObs(opt.Obs)
		pl.SetObs(opt.Obs)
		env := &core.Env{Kernel: k, Pool: pl, Cache: cache, Obs: opt.Obs}
		cfg := core.DefaultConfig()
		cfg.Waveforms = n
		cfg.Name = "ablate-churn"
		cfg.Seed = opt.Seeds[0]
		wf, err := core.NewWorkflow(cfg, env.Kernel, env.Pool, nil)
		if err != nil {
			return err
		}
		if err := core.RunBatch(env, []*core.Workflow{wf}, opt.Horizon); err != nil {
			return err
		}
		_, _, evictions := pl.Stats()
		evicted[i] = evictions
		rows[i] = AblationRow{
			Label:         label,
			RuntimeH:      wf.RuntimeHours(),
			ThroughputJPM: wf.ThroughputJPM(),
			Jobs:          wf.Schedd.Completed(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		fmt.Fprintf(w, "  %-14s runtime %6.2f h, %6.2f JPM, %d evictions\n",
			r.Label, r.RuntimeH, r.ThroughputJPM, evicted[i])
	}
	return rows, nil
}
