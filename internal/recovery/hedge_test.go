package recovery

import (
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/ospool"
	"fdw/internal/sim"
)

// hedgePoolConfig is a pool with one pathologically slow single-slot
// site next to a fast one: whichever sibling lands on the slow slot
// becomes a clear straggler.
func hedgePoolConfig() ospool.Config {
	cfg := ospool.DefaultConfig()
	cfg.Sites = []ospool.SiteConfig{
		{Name: "fast", MaxSlots: 8, Speed: 1, CpusPer: 4, MemoryMB: 16384},
		{Name: "slow", MaxSlots: 1, Speed: 12, CpusPer: 4, MemoryMB: 16384},
	}
	cfg.GlideinRampMean = 60
	cfg.GlideinLifetimeMean = 48 * 3600 // no preemptions: isolate hedging
	cfg.ExecJitterSigma = 0.05
	cfg.FailureProb = 0
	return cfg
}

func hedgeOnlyConfig() Config {
	return Config{Hedge: HedgeConfig{
		Enabled: true, Quantile: 0.75, Multiplier: 3, MinSiblings: 4,
	}}
}

// TestHedgeRescuesStraggler is the end-to-end hedging path: a sibling
// stuck on a 12× slow slot gets a speculative clone once enough
// siblings finish; the clone wins on a fast slot and its result is
// grafted onto the original, well before the slow attempt would have
// ended. The losing slow attempt's claim is cancelled.
func TestHedgeRescuesStraggler(t *testing.T) {
	k := sim.NewKernel(9)
	p, err := ospool.New(k, hedgePoolConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	r, err := New(k, hedgeOnlyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r.Attach(p, s)

	jobs := make([]*htcondor.Job, 9)
	for i := range jobs {
		jobs[i] = &htcondor.Job{Owner: "u", RequestCpus: 4, RequestMemoryMB: 8192, BaseExecSeconds: 300}
	}
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}

	// Every original completed cleanly; hedging resolved every clone it
	// submitted (win or loss), leaving nothing stuck in the queue.
	for _, j := range jobs {
		if j.Status != htcondor.Completed || j.ExitCode != 0 {
			t.Fatalf("original %s status %v exit %d", j.ID(), j.Status, j.ExitCode)
		}
	}
	st := r.Stats()
	if st.HedgesSubmitted == 0 {
		t.Fatalf("no hedge submitted despite a 12x straggler: %+v", st)
	}
	if st.HedgeWins == 0 {
		t.Fatalf("hedge never won against a 12x slow slot: %+v", st)
	}
	if st.HedgeWins+st.HedgeLosses != st.HedgesSubmitted {
		t.Fatalf("unresolved hedges: %+v", st)
	}
	// Job conservation across originals + clones.
	var completed, removed int
	for _, j := range s.AllJobs() {
		switch j.Status {
		case htcondor.Completed:
			completed++
		case htcondor.Removed:
			removed++
		default:
			t.Fatalf("job %s left in state %v", j.ID(), j.Status)
		}
	}
	if len(s.AllJobs()) != len(jobs)+st.HedgesSubmitted-st.HedgeSubmitErrors {
		t.Fatalf("schedd saw %d jobs, want %d originals + %d clones",
			len(s.AllJobs()), len(jobs), st.HedgesSubmitted)
	}
	if completed+removed != len(s.AllJobs()) {
		t.Fatalf("conservation: %d completed + %d removed != %d jobs", completed, removed, len(s.AllJobs()))
	}
	// The rescue must beat the slow attempt's ~3600 s runtime by a wide
	// margin: all originals done well before the un-hedged makespan.
	var latest sim.Time
	for _, j := range jobs {
		if j.EndTime > latest {
			latest = j.EndTime
		}
	}
	if latest >= 3600 {
		t.Fatalf("originals finished at %v, want < 3600 (hedge should beat the slow attempt)", latest)
	}
}

// TestHedgeDisabledSubscribesNothing: with hedging off, Attach must not
// subscribe the policy to schedd events at all — the byte-identity
// guarantee for disabled mechanisms rests on taking zero actions.
func TestHedgeDisabledSubscribesNothing(t *testing.T) {
	k := sim.NewKernel(10)
	p, err := ospool.New(k, hedgePoolConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	r, err := New(k, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r.Attach(p, s)
	jobs := make([]*htcondor.Job, 9)
	for i := range jobs {
		jobs[i] = &htcondor.Job{Owner: "u", RequestCpus: 4, RequestMemoryMB: 8192, BaseExecSeconds: 300}
	}
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("disabled policy took actions: %+v", st)
	}
	if len(s.AllJobs()) != len(jobs) {
		t.Fatalf("disabled policy changed the job population: %d", len(s.AllJobs()))
	}
}
