package fakequakes

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"fdw/internal/geom"
	"fdw/internal/linalg"
	"fdw/internal/npy"
	"fdw/internal/sim"
)

func testGenerator(t *testing.T) *Generator {
	t.Helper()
	cfg := geom.DefaultChileFault()
	cfg.SubfaultKm = 25
	fault, err := geom.BuildFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stations := geom.FullChileanStations()[:2]
	gen, err := NewGenerator(fault, ComputeDistanceMatrices(fault, stations))
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestFactorCacheLRUAndCounters(t *testing.T) {
	c := NewFactorCache(2)
	m1 := linalg.NewMatrix(1, 1)
	m2 := linalg.NewMatrix(2, 2)
	m3 := linalg.NewMatrix(3, 3)

	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, m1)
	c.Put(2, m2)
	if got, ok := c.Get(1); !ok || got != m1 {
		t.Fatal("key 1 missing after put")
	}
	c.Put(3, m3) // evicts 2, the least recently used
	if _, ok := c.Get(2); ok {
		t.Fatal("key 2 survived eviction")
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("key 3 missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats %d/%d, want hits 2 misses 2", hits, misses)
	}
}

// A warm hit must return the exact factor a cold run computes, and the
// cached path must leave scenarios bit-identical to the uncached path.
func TestFactorCacheWarmMatchesCold(t *testing.T) {
	gen := testGenerator(t)

	// Cold: private cache, first generation fills it.
	gen.Factors = NewFactorCache(4)
	cold, err := gen.GenerateMw("run000001", 8.1, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if h, m := gen.Factors.Stats(); h != 0 || m != 1 {
		t.Fatalf("cold stats %d/%d, want 0 hits 1 miss", h, m)
	}

	// Warm: same seed and magnitude replays the same patch, hitting.
	warm, err := gen.GenerateMw("run000001", 8.1, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := gen.Factors.Stats(); h != 1 {
		t.Fatalf("warm run did not hit (hits=%d)", h)
	}

	// Uncached reference.
	gen.Factors = nil
	ref, err := gen.GenerateMw("run000001", 8.1, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}

	for name, pair := range map[string][2][]float64{
		"slip":  {cold.SlipM, ref.SlipM},
		"onset": {cold.OnsetS, ref.OnsetS},
		"warm":  {warm.SlipM, ref.SlipM},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: element %d differs: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// Different placements of the same patch shape share a factor (the
// covariance only sees coordinate differences), while a different
// magnitude — hence correlation length and patch size — does not.
func TestFactorKeyTranslationInvariance(t *testing.T) {
	gen := testGenerator(t)
	gen.Factors = NewFactorCache(8)
	rng := sim.NewRNG(7)
	for i := 0; i < 6; i++ {
		if _, err := gen.GenerateMw("run", 8.3, rng); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := gen.Factors.Stats()
	if misses != 1 || hits != 5 {
		t.Fatalf("fixed-Mw batch: %d hits %d misses, want 5/1", hits, misses)
	}
	if _, err := gen.GenerateMw("run", 8.9, rng); err != nil {
		t.Fatal(err)
	}
	if _, m := gen.Factors.Stats(); m != 2 {
		t.Fatalf("different Mw reused a factor (misses=%d)", m)
	}
}

func TestFactorCacheNPYRoundTrip(t *testing.T) {
	gen := testGenerator(t)
	gen.Factors = NewFactorCache(4)
	if _, err := gen.GenerateMw("run", 8.1, sim.NewRNG(3)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := gen.Factors.SaveNPY(dir); err != nil {
		t.Fatal(err)
	}

	restored := NewFactorCache(4)
	if err := restored.LoadNPY(dir); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Fatalf("restored %d factors, want 1", restored.Len())
	}
	// The recycled factor must hit and be bit-identical to a cold run.
	gen2 := testGenerator(t)
	gen2.Factors = restored
	warm, err := gen2.GenerateMw("run", 8.1, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := restored.Stats(); h != 1 {
		t.Fatalf("recycled factor not hit (hits=%d)", h)
	}
	gen2.Factors = nil
	cold, err := gen2.GenerateMw("run", 8.1, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.SlipM {
		if math.Float64bits(warm.SlipM[i]) != math.Float64bits(cold.SlipM[i]) {
			t.Fatalf("slip %d differs after .npy recycle: %v vs %v", i, warm.SlipM[i], cold.SlipM[i])
		}
	}
	// Loading an empty dir is the cold-start case, not an error.
	if err := NewFactorCache(4).LoadNPY(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

// TestFactorCacheLoadSkipsCorruptNPY pins the durability half of the
// cache contract: a covfactor file truncated by a crash (the artifact
// the pre-atomic writeNPY could leave behind) must be skipped — not
// trusted, not fatal — so the factor is recomputed on the next miss
// while intact files still warm the cache.
func TestFactorCacheLoadSkipsCorruptNPY(t *testing.T) {
	dir := t.TempDir()
	good := linalg.NewMatrix(2, 2)
	copy(good.Data, []float64{2, 0.5, 0.5, 2})
	doomed := linalg.NewMatrix(3, 3)
	for i := range doomed.Data {
		doomed.Data[i] = float64(i)
	}

	c := NewFactorCache(4)
	c.Put(0x11, good)
	c.Put(0x22, doomed)
	if err := c.SaveNPY(dir); err != nil {
		t.Fatal(err)
	}

	// Truncate 0x22's file to half its bytes — the shape of a kill
	// mid-write before writeNPY became atomic — and plant pure garbage
	// under another validly named file.
	p := filepath.Join(dir, fmt.Sprintf(factorNPYPattern, uint64(0x22)))
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(dir, fmt.Sprintf(factorNPYPattern, uint64(0xff)))
	if err := os.WriteFile(junk, []byte("not an npy file"), 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := NewFactorCache(4)
	if err := fresh.LoadNPY(dir); err != nil {
		t.Fatalf("LoadNPY must skip corrupt files, not fail: %v", err)
	}
	m, ok := fresh.Get(0x11)
	if !ok {
		t.Fatal("intact factor 0x11 did not load")
	}
	for i, v := range good.Data {
		if m.Data[i] != v {
			t.Fatalf("loaded factor differs at %d: %v != %v", i, m.Data[i], v)
		}
	}
	if _, ok := fresh.Get(0x22); ok {
		t.Fatal("truncated factor 0x22 was trusted instead of rejected")
	}
	if _, ok := fresh.Get(0xff); ok {
		t.Fatal("garbage file 0xff was trusted instead of rejected")
	}
}

// TestWriteNPYAtomicReplace pins the other half: replacing a cache
// file is rename-based, so a reader that opened the previous file
// keeps seeing the complete old bytes — an in-place truncating write
// (the pre-fix os.Create path) would yank the data out from under it.
func TestWriteNPYAtomicReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "covfactor_replace.npy")
	m1 := linalg.NewMatrix(1, 2)
	copy(m1.Data, []float64{1, 2})
	m2 := linalg.NewMatrix(1, 2)
	copy(m2.Data, []float64{9, 9})

	if err := writeNPY(path, m1); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := writeNPY(path, m2); err != nil {
		t.Fatal(err)
	}
	old, err := npy.Read(f)
	if err != nil {
		t.Fatalf("reader of the previous file hit a partial write: %v", err)
	}
	if old.Data[0] != 1 || old.Data[1] != 2 {
		t.Fatalf("previous-file reader saw %v, want the complete old matrix", old.Data)
	}
	cur, err := readNPY(path)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Data[0] != 9 || cur.Data[1] != 9 {
		t.Fatalf("replacement holds %v, want the new matrix", cur.Data)
	}
}

// TestCovFactorKeyVersioned pins satellite 2: keys carry the linalg
// kernel generation, so a covfactor_*.npy written by the pre-repin
// (unblocked) kernel can never satisfy a post-repin lookup — it is
// recomputed, and the scenario matches an uncached run bit for bit.
func TestCovFactorKeyVersioned(t *testing.T) {
	gen := testGenerator(t)

	// Discover the key inputs of one concrete scenario.
	gen.Factors = NewFactorCache(4)
	r, err := gen.GenerateMw("run", 8.1, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	f := gen.Fault
	minA, maxA := f.Subfaults[r.Patch[0]].Along, f.Subfaults[r.Patch[0]].Along
	minD, maxD := f.Subfaults[r.Patch[0]].Down, f.Subfaults[r.Patch[0]].Down
	for _, idx := range r.Patch {
		s := &f.Subfaults[idx]
		minA, maxA = min(minA, s.Along), max(maxA, s.Along)
		minD, maxD = min(minD, s.Down), max(maxD, s.Down)
	}
	aS, aD := PatchCorrelationLengths(maxA-minA+1, maxD-minD+1, f.SubfaultLen, f.SubfaultWid)
	cur := covFactorKey(gen.faultHash, gen.Kern, gen.SigmaLn, aS, aD, f, r.Patch)
	old := covFactorKeyAt(covKernelVersion-1, gen.faultHash, gen.Kern, gen.SigmaLn, aS, aD, f, r.Patch)

	if cur != covFactorKeyAt(covKernelVersion, gen.faultHash, gen.Kern, gen.SigmaLn, aS, aD, f, r.Patch) {
		t.Fatal("covFactorKey does not equal covFactorKeyAt at the current version")
	}
	if cur == old {
		t.Fatal("kernel version does not separate keys")
	}
	if _, ok := gen.Factors.Get(cur); !ok {
		t.Fatal("reconstructed key does not match the one GenerateMw used")
	}

	// Plant a poisoned factor under the OLD version's key, as a cache
	// dir written by a pre-repin build would hold, and reload it.
	dir := t.TempDir()
	poison := linalg.NewMatrix(len(r.Patch), len(r.Patch))
	for i := range poison.Data {
		poison.Data[i] = 1e9
	}
	if err := writeNPY(filepath.Join(dir, fmt.Sprintf(factorNPYPattern, old)), poison); err != nil {
		t.Fatal(err)
	}
	stale := NewFactorCache(4)
	if err := stale.LoadNPY(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := stale.Get(old); !ok {
		t.Fatal("old-version factor did not load under its own key")
	}

	gen.Factors = stale
	got, err := gen.GenerateMw("run", 8.1, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := stale.Stats(); misses != 1 {
		t.Fatalf("pre-repin cache satisfied a current-version lookup (misses=%d)", misses)
	}
	gen.Factors = nil
	ref, err := gen.GenerateMw("run", 8.1, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.SlipM {
		if math.Float64bits(got.SlipM[i]) != math.Float64bits(ref.SlipM[i]) {
			t.Fatalf("slip %d poisoned by stale-version factor: %v vs %v", i, got.SlipM[i], ref.SlipM[i])
		}
	}
}

// TestFactorKeyHitsAcrossMwBand: correlation lengths derive from the
// realized patch extent, so magnitudes that round to the same patch
// shape share one factor — Mw 8.30 and 8.31 hit the same entry.
func TestFactorKeyHitsAcrossMwBand(t *testing.T) {
	gen := testGenerator(t)
	gen.Factors = NewFactorCache(8)
	if _, err := gen.GenerateMw("run", 8.30, sim.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := gen.GenerateMw("run", 8.31, sim.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	hits, misses := gen.Factors.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("Mw 8.30/8.31 pair: %d hits %d misses, want the band to share one factor (1/1)", hits, misses)
	}
}
