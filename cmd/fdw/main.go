// Command fdw runs a FakeQuakes DAGMan Workflow on the simulated Open
// Science Pool and reports the monitoring statistics the paper's shell
// scripts compute, optionally writing the HTCondor user log and the
// batch/job trace CSVs the bursting simulator consumes.
//
// Usage:
//
//	fdw [flags]
//	fdw -config fdw.cfg -log run.log -trace-dir traces/
//
// With no -config, flags select the workload directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fdw"
	"fdw/internal/core/atomicfile"
)

func main() {
	var (
		configPath = flag.String("config", "", "FDW configuration file (key = value)")
		name       = flag.String("name", "fdw", "batch name")
		waveforms  = flag.Int("waveforms", 1024, "number of waveforms to simulate")
		stations   = flag.Int("stations", 121, "GNSS station list length (2 or 121 in the paper)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		logPath    = flag.String("log", "", "write the HTCondor user log here")
		traceDir   = flag.String("trace-dir", "", "write batch.csv and jobs.csv traces here")
		horizonH   = flag.Float64("horizon", 1000, "simulation horizon (hours)")
		emitDir    = flag.String("emit", "", "write fdw.dag + submit files here instead of running")
		metricsOut = flag.String("metrics", "", "write a JSON metrics snapshot here after the run")
	)
	flag.Parse()
	if *emitDir != "" {
		cfg := fdw.DefaultConfig()
		cfg.Name, cfg.Waveforms, cfg.Stations, cfg.Seed = *name, *waveforms, *stations, *seed
		if err := fdw.WriteArtifacts(cfg, *emitDir); err != nil {
			fmt.Fprintln(os.Stderr, "fdw:", err)
			os.Exit(1)
		}
		fmt.Printf("artifacts written to %s (fdw.dag, fdw.cfg, 4 submit files)\n", *emitDir)
		return
	}
	if err := run(*configPath, *name, *waveforms, *stations, *seed, *logPath, *traceDir, *horizonH, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "fdw:", err)
		os.Exit(1)
	}
}

func run(configPath, name string, waveforms, stations int, seed uint64, logPath, traceDir string, horizonH float64, metricsOut string) error {
	cfg := fdw.DefaultConfig()
	if configPath != "" {
		f, err := os.Open(configPath)
		if err != nil {
			return err
		}
		cfg, err = fdw.ParseConfig(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		cfg.Name = name
		cfg.Waveforms = waveforms
		cfg.Stations = stations
		cfg.Seed = seed
	}

	// With -metrics the environment carries a registry clocked by the
	// simulation; results are identical either way.
	newEnv := fdw.NewEnv
	if metricsOut != "" {
		newEnv = fdw.NewMeteredEnv
	}
	env, err := newEnv(cfg.Seed, fdw.DefaultPoolConfig())
	if err != nil {
		return err
	}
	// The user log streams during the run but lands atomically: a
	// killed run leaves no partial log for burstsim to misread.
	var logW *atomicfile.File
	if logPath != "" {
		logW, err = atomicfile.Create(logPath)
		if err != nil {
			return err
		}
		defer logW.Close()
	}
	var w *fdw.Workflow
	if logW != nil {
		w, err = fdw.NewWorkflow(cfg, env, logW)
	} else {
		w, err = fdw.NewWorkflow(cfg, env, nil)
	}
	if err != nil {
		return err
	}
	fmt.Printf("submitting DAGMan %q: %d waveforms, %d stations (seed %d)\n",
		cfg.Name, cfg.Waveforms, cfg.Stations, cfg.Seed)
	if err := fdw.RunBatch(env, []*fdw.Workflow{w}, fdw.SimTime(horizonH*3600)); err != nil {
		return err
	}
	if logW != nil {
		if err := logW.Commit(); err != nil {
			return err
		}
	}

	fmt.Printf("workflow finished in %.2f simulated hours (%.2f jobs/min)\n",
		w.RuntimeHours(), w.ThroughputJPM())
	started, completed, evictions := env.Pool.Stats()
	fmt.Printf("pool: %d starts, %d completions, %d evictions; stash hit rate %.0f%%\n",
		started, completed, evictions, env.Cache.HitRate()*100)

	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return err
		}
		batch, jobs, err := fdw.TraceFromWorkflow(w)
		if err != nil {
			return err
		}
		if err := atomicfile.WriteFile(filepath.Join(traceDir, "batch.csv"), func(w io.Writer) error {
			return fdw.WriteBatchCSV(w, batch)
		}); err != nil {
			return err
		}
		if err := atomicfile.WriteFile(filepath.Join(traceDir, "jobs.csv"), func(w io.Writer) error {
			return fdw.WriteJobsCSV(w, jobs)
		}); err != nil {
			return err
		}
		fmt.Printf("traces written to %s (batch.csv, jobs.csv — burstsim input)\n", traceDir)
	}

	if metricsOut != "" {
		if err := atomicfile.WriteFile(metricsOut, env.Obs.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s (render with fdwmon -metrics)\n", metricsOut)
	}
	return nil
}
