package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked target package: its syntax, its type
// information, and enough metadata to render diagnostics.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Fset       *token.FileSet
	Types      *types.Package
	Info       *types.Info

	// TypeErrors holds type-checking problems that did not stop the
	// load. Analyzers tolerate partial Info; callers decide whether
	// the errors are fatal (cmd/fdwlint treats them as load failures,
	// since a tree that does not compile is vetted by go build).
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Loader turns package patterns into type-checked Packages without any
// dependency beyond the go command and the standard library. It shells
// out to `go list -deps -export -json`, which yields (a) the source
// files of every matched package and (b) compiled export data for each
// dependency; targets are then parsed and checked with go/types, with
// imports satisfied from the export data via go/importer's gc reader.
// This is the go/packages loading model re-implemented on stdlib only.
type Loader struct {
	// Dir is the directory to run the go command in ("" = cwd).
	Dir string
}

// Load lists, parses, and type-checks the packages matched by patterns,
// returned sorted by import path. Test files are not loaded: tests are
// an allowed context for every analyzer (see DESIGN.md §9).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Standard,Export,Name,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		q := p
		targets = append(targets, &q)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, imp types.Importer, t *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg := &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Files:      files,
		Fset:       fset,
		Info:       info,
	}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check fills pkg.Types and info even when it reports errors; the
	// collected TypeErrors carry the details.
	pkg.Types, _ = conf.Check(t.ImportPath, fset, files, info)
	return pkg, nil
}
