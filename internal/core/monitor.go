package core

import (
	"fmt"
	"io"
	"sort"

	"fdw/internal/htcondor"
	"fdw/internal/sim"
	"fdw/internal/stats"
)

// BatchStats is FDW's per-DAGMan monitoring summary, computed from the
// HTCondor user log exactly as the paper's shell scripts do: runtime,
// job counts, execution/wait-time distributions, total throughput.
type BatchStats struct {
	Name string

	SubmitStart sim.Time // first 000 event
	End         sim.Time // last 005/009 event
	RuntimeSecs float64

	TotalJobs     int
	CompletedJobs int
	AbortedJobs   int
	Evictions     int

	ExecMinutes stats.Summary // per-job execution times (minutes)
	WaitMinutes stats.Summary // per-job queue waits (minutes)

	ThroughputJPM float64 // total throughput, jobs/minute
}

// AnalyzeEvents reduces a user-log event stream into BatchStats.
func AnalyzeEvents(name string, events []htcondor.JobEvent) (*BatchStats, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("core: no events for batch %q", name)
	}
	rows := htcondor.ReduceJobTimes(events)
	b := &BatchStats{Name: name, SubmitStart: sim.Forever}
	var execs, waits []float64
	for _, r := range rows {
		b.TotalJobs++
		if r.Submit < b.SubmitStart {
			b.SubmitStart = r.Submit
		}
		if r.End > b.End {
			b.End = r.End
		}
		b.Evictions += r.Evictions
		switch {
		case r.Aborted:
			b.AbortedJobs++
		case r.HasEnd:
			b.CompletedJobs++
			execs = append(execs, r.ExecSecs/60)
			waits = append(waits, r.WaitSecs/60)
		}
	}
	if b.End < b.SubmitStart {
		return nil, fmt.Errorf("core: batch %q has no completion events", name)
	}
	b.RuntimeSecs = float64(b.End - b.SubmitStart)
	b.ExecMinutes = stats.Summarize(execs)
	b.WaitMinutes = stats.Summarize(waits)
	if b.RuntimeSecs > 0 {
		b.ThroughputJPM = float64(b.CompletedJobs) / (b.RuntimeSecs / 60)
	}
	return b, nil
}

// AnalyzeLog parses HTCondor user-log text and reduces it.
func AnalyzeLog(name string, r io.Reader) (*BatchStats, error) {
	events, err := htcondor.ParseUserLog(r)
	if err != nil {
		return nil, err
	}
	return AnalyzeEvents(name, events)
}

// SeriesPoint is one sample of a time series.
type SeriesPoint struct {
	T sim.Time // seconds since batch submit
	V float64
}

// InstantThroughputSeries computes formula (5) — completed jobs divided
// by elapsed minutes — at each step (seconds) through the batch.
func InstantThroughputSeries(events []htcondor.JobEvent, step sim.Time) []SeriesPoint {
	if step <= 0 {
		step = 1
	}
	start, end, completions := completionTimes(events)
	if end < start {
		return nil
	}
	var out []SeriesPoint
	ci := 0
	done := 0
	for t := start; t <= end; t += step {
		for ci < len(completions) && completions[ci] <= t {
			done++
			ci++
		}
		elapsedMin := float64(t-start) / 60
		out = append(out, SeriesPoint{T: t - start, V: stats.InstantThroughput(done, elapsedMin)})
	}
	return out
}

// RunningJobsSeries counts running jobs at each step through the batch
// (the Fig. 4 running-job footprint).
func RunningJobsSeries(events []htcondor.JobEvent, step sim.Time) []SeriesPoint {
	if step <= 0 {
		step = 1
	}
	type delta struct {
		t sim.Time
		d int
	}
	var deltas []delta
	start, end := sim.Forever, sim.Time(0)
	for _, ev := range events {
		if ev.At < start {
			start = ev.At
		}
		if ev.At > end {
			end = ev.At
		}
		switch ev.Type {
		case htcondor.EventExecute:
			deltas = append(deltas, delta{ev.At, +1})
		case htcondor.EventTerminated, htcondor.EventEvicted:
			deltas = append(deltas, delta{ev.At, -1})
		}
	}
	if end < start {
		return nil
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].t < deltas[j].t })
	var out []SeriesPoint
	di, running := 0, 0
	for t := start; t <= end; t += step {
		for di < len(deltas) && deltas[di].t <= t {
			running += deltas[di].d
			di++
		}
		out = append(out, SeriesPoint{T: t - start, V: float64(running)})
	}
	return out
}

// completionTimes extracts (start, end, sorted completion timestamps).
func completionTimes(events []htcondor.JobEvent) (start, end sim.Time, completions []sim.Time) {
	start, end = sim.Forever, 0
	for _, ev := range events {
		if ev.At < start {
			start = ev.At
		}
		if ev.At > end {
			end = ev.At
		}
		if ev.Type == htcondor.EventTerminated {
			completions = append(completions, ev.At)
		}
	}
	sort.Slice(completions, func(i, j int) bool { return completions[i] < completions[j] })
	return start, end, completions
}

// Report renders the batch summary as the fdw CLI prints it.
func (b *BatchStats) Report(w io.Writer) error {
	_, err := fmt.Fprintf(w, `batch %s
  runtime          %.2f h
  jobs             %d total, %d completed, %d aborted, %d evictions
  total throughput %.2f jobs/min
  exec time        mean %.1f min (sd %.1f, min %.1f, max %.1f)
  wait time        mean %.1f min (sd %.1f, min %.1f, max %.1f)
`,
		b.Name, b.RuntimeSecs/3600,
		b.TotalJobs, b.CompletedJobs, b.AbortedJobs, b.Evictions,
		b.ThroughputJPM,
		b.ExecMinutes.Mean, b.ExecMinutes.SD, b.ExecMinutes.Min, b.ExecMinutes.Max,
		b.WaitMinutes.Mean, b.WaitMinutes.SD, b.WaitMinutes.Min, b.WaitMinutes.Max)
	return err
}
