// Package obsflow_clean consumes instrument readings only in the
// legal, report-only ways: print arguments, returns, exporters, and
// deliberate discards.
package obsflow_clean

import (
	"fmt"
	"io"

	"fdw/internal/obs"
)

// Report prints a reading without storing or branching on it.
func Report(w io.Writer, r *obs.Registry) {
	fmt.Fprintf(w, "submitted %d\n", r.Counter("jobs_submitted").Value())
}

// Submitted surfaces a reading to the caller; what the caller does
// with it is checked at the caller.
func Submitted(r *obs.Registry) uint64 {
	return r.Counter("jobs_submitted").Value()
}

// Export serializes the whole registry; exporter APIs are not reads.
func Export(w io.Writer, r *obs.Registry) error {
	return r.WriteJSON(w)
}

// Touch discards a reading explicitly.
func Touch(r *obs.Registry) {
	_ = r.Gauge("queue_depth").Value()
}
