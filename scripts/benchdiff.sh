#!/bin/sh
# Benchmark regression gate: reruns the kernel benchmarks and compares
# ns/op against the recorded baseline in BENCH_kernels.json. Absolute
# numbers vary wildly across hosts, so only a >TOLERANCE-fold slowdown
# on a benchmark the baseline knows about fails; new benchmarks and
# speedups are reported but never fatal. CI runs this as a separate
# advisory (non-required) job.
#
# Environment knobs:
#
#	BASELINE   baseline file        (default BENCH_kernels.json)
#	TOLERANCE  allowed slowdown     (default 2.0)
#	BENCHTIME  go test -benchtime   (default 2x)
set -eu

cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-BENCH_kernels.json}
TOLERANCE=${TOLERANCE:-2.0}
BENCHTIME=${BENCHTIME:-2x}

# The comparison is advisory: a missing baseline (fresh checkout,
# pruned artifact) means there is nothing to compare against, which is
# a pass, not a failure.
if [ ! -f "$BASELINE" ]; then
	echo "benchdiff: baseline $BASELINE not found; skipping comparison (advisory pass)"
	echo "benchdiff: record one with: go test -run '^$' -bench . -benchtime 5x . > bench.txt and update $BASELINE"
	exit 0
fi

out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "== go test -bench (benchtime $BENCHTIME, baseline $BASELINE, tolerance ${TOLERANCE}x)"
go test -run '^$' -bench 'BenchmarkCholesky|BenchmarkMatMul|BenchmarkGenerateScenario' \
	-benchtime "$BENCHTIME" . | tee "$out"

echo
awk -v tol="$TOLERANCE" -v baseline="$BASELINE" '
	# Pass 1: the baseline JSON. ns_per_op entries look like
	#   "BenchmarkCholesky/serial/256": 2240650,
	# and benchmark names never appear elsewhere in the file.
	FNR == NR {
		if ($0 ~ /"Benchmark[^"]*":/) {
			name = $0
			sub(/^[ \t]*"/, "", name)
			sub(/".*$/, "", name)
			val = $0
			sub(/^[^:]*:[ \t]*/, "", val)
			sub(/,.*$/, "", val)
			base[name] = val + 0
		}
		next
	}
	# Pass 2: go test -bench output. Result lines carry the GOMAXPROCS
	# suffix (Benchmark.../256-4) and ns/op in the field before "ns/op".
	$1 ~ /^Benchmark/ {
		ns = -1
		for (i = 2; i <= NF; i++)
			if ($i == "ns/op") ns = $(i - 1) + 0
		if (ns < 0) next
		name = $1
		sub(/-[0-9]+$/, "", name)
		seen[name] = 1
		if (!(name in base)) {
			printf "  NEW       %-44s %14.0f ns/op (no baseline)\n", name, ns
			next
		}
		ratio = ns / base[name]
		verdict = "ok"
		if (ratio > tol) {
			verdict = "REGRESSED"
			failed++
		}
		printf "  %-9s %-44s %14.0f ns/op  baseline %14.0f  ratio %.2fx\n", \
			verdict, name, ns, base[name], ratio
	}
	END {
		# Baseline entries the run no longer produces (renamed or
		# deleted benchmarks) are reported but never fatal: the
		# baseline is a recorded artifact, not a contract.
		missing = 0
		for (n in base)
			if (!(n in seen)) {
				printf "  MISSING   %-44s baseline %14.0f ns/op (not produced by this run)\n", n, base[n] | "sort"
				missing++
			}
		close("sort")
		if (missing)
			printf "benchdiff: %d baseline benchmark(s) missing from this run (advisory; update %s if renamed)\n", missing, baseline
		if (failed) {
			printf "benchdiff: %d benchmark(s) regressed more than %.1fx\n", failed, tol
			exit 1
		}
		print "benchdiff: OK (no regression beyond " tol "x)"
	}
' "$BASELINE" "$out"
