package linalg

import (
	"math"
	"runtime"
	"testing"
)

// Sizes that are not multiples of any tile dimension (gemmMR=4,
// gemmNR=8, gemmKC=gemmNC=256, cholNB=32), straddling every blocking
// boundary: below one micro-tile, one off from the k/j panel edges,
// and one off from the benchmark size.
var nonTileSizes = []int{1, 7, 255, 257, 1023}

// fmaSpecMul is the summation-order specification of the blocked GEMM,
// written as the trivial triple loop: each element is the math.FMA
// fold over k in increasing order. The blocked kernel must match it
// bit for bit — blocking factors and worker counts may only change
// which element is computed when, never an element's chain.
func fmaSpecMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var acc float64
			for k := 0; k < a.Cols; k++ {
				acc = math.FMA(a.Data[i*a.Cols+k], b.Data[k*b.Cols+j], acc)
			}
			out.Data[i*out.Cols+j] = acc
		}
	}
	return out
}

// maxAbsDiff returns the worst elementwise difference.
func maxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestBlockedMulBitsEqualFMASpec pins the blocked kernel to its
// order-of-operations spec exactly. On AVX2 hosts this also proves the
// assembly micro-kernel's VFMADD rounds identically to math.FMA.
func TestBlockedMulBitsEqualFMASpec(t *testing.T) {
	for _, n := range []int{1, 3, 7, 16, 33, 100, 257} {
		a := randomMatrix(n, n+5, uint64(n))
		b := randomMatrix(n+5, n+2, uint64(n)+77)
		got, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "mul-vs-fma-spec", fmaSpecMul(a, b).Data, got.Data)
	}
}

// TestBlockedMulMatchesReference is the blocked-vs-reference property
// test: numerical agreement (not bitwise — the fused rounding is the
// repin) across square, rectangular, odd, non-tile-multiple shapes,
// for the serial and the parallel entry point at any worker count.
func TestBlockedMulMatchesReference(t *testing.T) {
	sizes := nonTileSizes
	if testing.Short() {
		sizes = []int{1, 7, 255, 257}
	}
	shapes := [][3]int{}
	for _, n := range sizes {
		shapes = append(shapes, [3]int{n, n, n})
		if n <= 257 { // rectangular variants at the sizes that stay cheap
			shapes = append(shapes, [3]int{n, (n + 3) / 2, n + 9})
		}
	}
	shapes = append(shapes, [3]int{5, 1023, 3}, [3]int{1023, 5, 7})
	for _, s := range shapes {
		mM, kK, nN := s[0], s[1], s[2]
		a := randomMatrix(mM, kK, uint64(mM*31+kK))
		b := randomMatrix(kK, nN, uint64(kK*17+nN))
		want, err := a.ReferenceMul(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{1, 4} {
			old := runtime.GOMAXPROCS(procs)
			for name, got := range map[string]func() (*Matrix, error){
				"serial":   func() (*Matrix, error) { return a.Mul(b) },
				"parallel": func() (*Matrix, error) { return a.ParallelMul(b) },
			} {
				m, err := got()
				if err != nil {
					t.Fatal(err)
				}
				// Operands in [-1,1]: the two kernels differ only in
				// rounding, bounded well below K·eps per element.
				tol := 1e-12 * float64(kK+1)
				if d := maxAbsDiff(want.Data, m.Data); d > tol {
					t.Fatalf("%s %dx%dx%d (procs=%d): blocked vs reference differ by %g (tol %g)",
						name, mM, kK, nN, procs, d, tol)
				}
			}
			runtime.GOMAXPROCS(old)
		}
	}
}

// TestBlockedCholeskyMatchesReference: same property for the
// factorization, including sizes straddling the cholNB panels and the
// parallel cutoff.
func TestBlockedCholeskyMatchesReference(t *testing.T) {
	sizes := nonTileSizes
	if testing.Short() {
		sizes = []int{1, 7, 255, 257}
	}
	for _, n := range sizes {
		m := spdMatrix(n)
		want, err := ReferenceCholesky(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{1, 4} {
			old := runtime.GOMAXPROCS(procs)
			for name, got := range map[string]func() (*Matrix, error){
				"serial":   func() (*Matrix, error) { return Cholesky(m) },
				"parallel": func() (*Matrix, error) { return ParallelCholesky(m) },
			} {
				l, err := got()
				if err != nil {
					t.Fatalf("%s n=%d: %v", name, n, err)
				}
				tol := 1e-10 * float64(n+1)
				if d := maxAbsDiff(want.Data, l.Data); d > tol {
					t.Fatalf("%s n=%d (procs=%d): blocked vs reference differ by %g (tol %g)",
						name, n, procs, d, tol)
				}
			}
			runtime.GOMAXPROCS(old)
		}
	}
}

// TestBlockedCholeskyNotPositiveDefinite: the blocked kernel keeps the
// reference error contract.
func TestBlockedCholeskyNotPositiveDefinite(t *testing.T) {
	for _, n := range []int{1, 33, 100} {
		bad := NewMatrix(n, n) // all-zero
		if _, err := Cholesky(bad); err != ErrNotPositiveDefinite {
			t.Fatalf("n=%d: err = %v, want ErrNotPositiveDefinite", n, err)
		}
		// Indefinite beyond the first panel: identity with one negative
		// pivot deep in the matrix.
		m := NewMatrix(n, n).AddDiag(1)
		m.Set(n-1, n-1, -1)
		if _, err := Cholesky(m); err != ErrNotPositiveDefinite {
			t.Fatalf("n=%d indefinite: err = %v, want ErrNotPositiveDefinite", n, err)
		}
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

// TestParallelCutoffNeverDispatches pins the size/worker cutoff: at
// every benchmark-recorded size with one worker, and at small sizes
// with many workers, the parallel entry points must run the serial
// code path — zero pool dispatches — so parallel ≤ serial + the cost
// of the cutoff comparison at every recorded size by construction
// (the pre-blocking kernel paid per-column fan-out at GOMAXPROCS=1
// and lost 169.6ms vs 156.0ms at n=1024).
func TestParallelCutoffNeverDispatches(t *testing.T) {
	recorded := []int{256, 512, 1024}
	if testing.Short() {
		recorded = []int{256, 512}
	}
	old := runtime.GOMAXPROCS(1)
	before := poolDispatches.Load()
	for _, n := range recorded {
		if _, err := ParallelCholesky(spdMatrix(n)); err != nil {
			t.Fatal(err)
		}
		a := randomMatrix(n, n, uint64(n))
		if _, err := a.ParallelMul(a); err != nil {
			t.Fatal(err)
		}
		if _, err := a.ParallelMulVec(a.Row(0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := poolDispatches.Load(); got != before {
		t.Fatalf("one-worker parallel entry points dispatched %d pool tasks, want 0", got-before)
	}
	runtime.GOMAXPROCS(4)
	before = poolDispatches.Load()
	for _, n := range []int{2, 16, 33} {
		if _, err := ParallelCholesky(spdMatrix(n)); err != nil {
			t.Fatal(err)
		}
		a := randomMatrix(n, n, uint64(n))
		if _, err := a.ParallelMul(a); err != nil {
			t.Fatal(err)
		}
	}
	if got := poolDispatches.Load(); got != before {
		t.Fatalf("below-cutoff parallel entry points dispatched %d pool tasks, want 0", got-before)
	}
	// Sanity: above the cutoffs with several workers, fan-out happens.
	if _, err := ParallelCholesky(spdMatrix(300)); err != nil {
		t.Fatal(err)
	}
	if poolDispatches.Load() == before {
		t.Fatal("above-cutoff ParallelCholesky with 4 workers never reached the pool")
	}
	runtime.GOMAXPROCS(old)
}

// TestBlockedKernelsAcrossGOMAXPROCS extends the bit-identity pin to
// the non-tile sizes (capped for test time): the blocked kernels must
// give the same bits whatever GOMAXPROCS says.
func TestBlockedKernelsAcrossGOMAXPROCS(t *testing.T) {
	for _, n := range []int{7, 255, 257} {
		m := spdMatrix(n)
		a := randomMatrix(n, n, uint64(n))
		b := randomMatrix(n, n, uint64(n)+1)

		old := runtime.GOMAXPROCS(1)
		l1, err := ParallelCholesky(m)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := a.ParallelMul(b)
		if err != nil {
			t.Fatal(err)
		}
		runtime.GOMAXPROCS(4)
		lN, err := ParallelCholesky(m)
		if err != nil {
			t.Fatal(err)
		}
		pN, err := a.ParallelMul(b)
		if err != nil {
			t.Fatal(err)
		}
		runtime.GOMAXPROCS(old)
		bitsEqual(t, "cholesky gomaxprocs", l1.Data, lN.Data)
		bitsEqual(t, "mul gomaxprocs", p1.Data, pN.Data)
	}
}
