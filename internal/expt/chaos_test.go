package expt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"fdw/internal/faults"
	"fdw/internal/obs"
)

// chaosOptions shrinks the sweep for test speed. Scale 0.002 floors the
// waveform count at 16 stations — small, but enough work for every
// fault window to bite.
func chaosOptions() Options {
	opt := DefaultOptions()
	opt.Seeds = []uint64{11}
	opt.Scale = 0.002
	return opt
}

// TestChaosSweepShort is the CI chaos entry point: the full standard
// plan grid at small scale, with the sweep's own invariants (termination
// and job conservation) enforced inside Chaos, plus cross-worker
// byte-identity checked here.
func TestChaosSweepShort(t *testing.T) {
	run := func(workers int) ([]ChaosRow, string) {
		opt := chaosOptions()
		opt.Workers = workers
		var out bytes.Buffer
		opt.Out = &out
		rows, err := Chaos(opt)
		if err != nil {
			t.Fatal(err)
		}
		return rows, out.String()
	}
	rows1, out1 := run(1)
	rows4, out4 := run(4)

	if want := len(faults.StandardPlans()) * len(chaosOptions().Seeds); len(rows1) != want {
		t.Fatalf("%d rows, want %d", len(rows1), want)
	}
	if !reflect.DeepEqual(rows1, rows4) {
		t.Fatalf("rows differ across workers:\n%v\n%v", rows1, rows4)
	}
	if out1 != out4 {
		t.Fatalf("-j 1 and -j 4 chaos reports differ:\n--- j1 ---\n%s\n--- j4 ---\n%s", out1, out4)
	}

	byPlan := map[string]ChaosRow{}
	for _, r := range rows1 {
		byPlan[r.Plan] = r
	}
	base := byPlan["baseline"]
	if base.DAGFailed || base.FailedJobs != 0 {
		t.Fatalf("baseline plan saw failures: %+v", base)
	}
	// The fault plans must actually bite: across the grid some jobs
	// fail and some DAGMan retry budget is spent.
	var failed, retries int
	for _, r := range rows1 {
		failed += r.FailedJobs
		retries += r.NodeRetries
	}
	if failed == 0 {
		t.Fatal("no plan injected a job failure")
	}
	if retries == 0 {
		t.Fatal("no plan consumed DAGMan retry budget")
	}
}

func TestChaosCountsInjectedFaults(t *testing.T) {
	opt := chaosOptions()
	opt.Obs = obs.NewRegistry(nil)
	var out bytes.Buffer
	opt.Out = &out
	if _, err := Chaos(opt); err != nil {
		t.Fatal(err)
	}
	var injected uint64
	for _, c := range opt.Obs.Snapshot().Counters {
		if c.Name == "fdw_faults_injected_total" {
			injected += c.Value
		}
	}
	if injected == 0 {
		t.Fatal("no faults counted by the injector")
	}
}

func TestChaosCSV(t *testing.T) {
	rows := []ChaosRow{{
		Plan: "baseline", Seed: 11, DAGDone: true,
		Submitted: 10, CompletedOK: 10, RuntimeH: 1.5,
	}}
	var buf bytes.Buffer
	if err := WriteChaosCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "plan,seed,dag_done") || !strings.Contains(got, "baseline,11,true") {
		t.Fatalf("csv:\n%s", got)
	}
}
