package expt

import (
	"fmt"
	"io"

	"fdw/internal/core"
	"fdw/internal/faults"
	"fdw/internal/htcondor"
	"fdw/internal/recovery"
	"fdw/internal/sim"
)

// The chaos sweep runs the Fig. 2-scale FDW workflow under the
// standard fault-plan grid (faults.StandardPlans) as a recovery A/B
// matrix — every plan runs once with recovery off and once with the
// adaptive recovery policy (internal/recovery) on — and asserts the
// invariants the paper's value proposition rests on:
//
//  1. termination — the executor reaches Done before the horizon for
//     every cell (no deadlock or hang, even when the DAG fails);
//  2. job conservation — every submitted job is accounted for:
//     submitted = completed-ok + failed (non-zero exit) + removed;
//  3. determinism — for a fixed seed the printed report and rows are
//     byte-identical at any Workers value and GOMAXPROCS.
//
// The recovery-off arm is constructed exactly as before the recovery
// layer existed, so its rows double as a baseline-regression check. An
// invariant violation is returned as an error (the sweep is a test
// harness as much as an experiment).

// ChaosRow is one (plan, seed, recovery) cell of the chaos matrix.
type ChaosRow struct {
	Plan     string
	Seed     uint64
	Recovery bool // adaptive recovery policy attached

	DAGDone   bool // executor terminated before the horizon
	DAGFailed bool // at least one node exhausted its retries

	Submitted   int // jobs accepted by the schedd
	CompletedOK int // terminated with exit 0
	FailedJobs  int // terminated with non-zero exit
	Removed     int // removed/offloaded before running

	NodeRetries int     // DAGMan RETRY budget spent across nodes
	Evictions   int     // pool preemptions + job-level requeues
	RuntimeH    float64 // DAG wall time, hours
	GoodputJPM  float64 // completed-ok jobs per makespan minute
	WastedCPUH  float64 // slot hours that produced no completed work
}

// chaosWorkflowConfig is the swept workload: the Fig. 2 full-station
// cell at the smallest paper quantity, shrunk by opt.Scale.
func chaosWorkflowConfig(opt Options, plan string, seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Name = fmt.Sprintf("chaos-%s", plan)
	cfg.Waveforms = opt.scaleN(Fig2Quantities[0])
	cfg.Seed = seed
	return cfg
}

// chaosRecoveryConfig is the recovery-on arm's policy configuration:
// opt.Recovery when set, the tuned defaults otherwise.
func chaosRecoveryConfig(opt Options) recovery.Config {
	if opt.Recovery != nil {
		return *opt.Recovery
	}
	return recovery.DefaultConfig()
}

// Chaos runs the recovery A/B chaos matrix and returns one row per
// (plan, seed, recovery) cell in grid order, recovery-off before
// recovery-on within each (plan, seed). Rows and per-plan deltas are
// printed to opt.Out; the fan-out across opt.Workers leaves the bytes
// identical to a serial run. The matrix is a shardable campaign
// (campaign.go), so fdwexp -shard/-merge covers it too.
func Chaos(opt Options) ([]ChaosRow, error) {
	rows, err := runCampaign(chaosCampaign(), opt)
	if err != nil {
		return nil, err
	}
	return rows.([]ChaosRow), nil
}

// printChaosReport renders the full matrix plus per-plan deltas —
// shared by the unsharded path and the campaign merge finalizer.
func printChaosReport(opt Options, rows []ChaosRow) {
	w := opt.out()
	plans := faults.StandardPlans()
	fmt.Fprintf(w, "Chaos sweep — %d fault plans × %d seeds × recovery {off,on} (scale %.3f)\n",
		len(plans), len(opt.Seeds), opt.Scale)
	fmt.Fprintf(w, "%15s %6s %4s %5s %6s | %6s %6s %6s %7s | %7s %6s %10s %8s %9s\n",
		"plan", "seed", "rec", "done", "dagok",
		"jobs", "ok", "fail", "removed",
		"retries", "evict", "runtime h", "jpm", "wasted h")
	for _, r := range rows {
		dagok := "ok"
		if r.DAGFailed {
			dagok = "FAILED"
		}
		rec := "off"
		if r.Recovery {
			rec = "on"
		}
		fmt.Fprintf(w, "%15s %6d %4s %5t %6s | %6d %6d %6d %7d | %7d %6d %10.2f %8.2f %9.2f\n",
			r.Plan, r.Seed, rec, r.DAGDone, dagok,
			r.Submitted, r.CompletedOK, r.FailedJobs, r.Removed,
			r.NodeRetries, r.Evictions, r.RuntimeH, r.GoodputJPM, r.WastedCPUH)
	}
	printChaosDeltas(w, rows)
}

// printChaosDeltas summarizes recovery-on minus recovery-off per
// (plan, seed) pair and the improve-or-tie tally the acceptance
// criterion tracks.
func printChaosDeltas(w io.Writer, rows []ChaosRow) {
	fmt.Fprintf(w, "Recovery deltas (on − off):\n")
	fmt.Fprintf(w, "%15s %6s | %11s %13s %8s\n", "plan", "seed", "makespan h", "wasted cpu-h", "retries")
	type pairKey struct {
		plan string
		seed uint64
	}
	off := map[pairKey]ChaosRow{}
	for _, r := range rows {
		if !r.Recovery {
			off[pairKey{r.Plan, r.Seed}] = r
		}
	}
	planOK := map[string]bool{}
	var planOrder []string
	for _, r := range rows {
		if !r.Recovery {
			continue
		}
		o := off[pairKey{r.Plan, r.Seed}]
		fmt.Fprintf(w, "%15s %6d | %+11.2f %+13.2f %+8d\n",
			r.Plan, r.Seed, r.RuntimeH-o.RuntimeH, r.WastedCPUH-o.WastedCPUH,
			r.NodeRetries-o.NodeRetries)
		if _, seen := planOK[r.Plan]; !seen {
			planOK[r.Plan] = true
			planOrder = append(planOrder, r.Plan)
		}
		if r.RuntimeH > o.RuntimeH || r.WastedCPUH > o.WastedCPUH {
			planOK[r.Plan] = false
		}
	}
	improved := 0
	for _, p := range planOrder {
		if planOK[p] {
			improved++
		}
	}
	fmt.Fprintf(w, "improved-or-tied (makespan AND wasted cpu): %d/%d plans\n", improved, len(planOrder))
}

// ChaosImprovedOrTied counts plans where every recovery-on cell is no
// worse than its recovery-off twin on both makespan and wasted CPU,
// returning (improved, total plans).
func ChaosImprovedOrTied(rows []ChaosRow) (improved, total int) {
	type pairKey struct {
		plan string
		seed uint64
	}
	off := map[pairKey]ChaosRow{}
	for _, r := range rows {
		if !r.Recovery {
			off[pairKey{r.Plan, r.Seed}] = r
		}
	}
	ok := map[string]bool{}
	var order []string
	for _, r := range rows {
		if !r.Recovery {
			continue
		}
		if _, seen := ok[r.Plan]; !seen {
			ok[r.Plan] = true
			order = append(order, r.Plan)
		}
		o := off[pairKey{r.Plan, r.Seed}]
		if r.RuntimeH > o.RuntimeH || r.WastedCPUH > o.WastedCPUH {
			ok[r.Plan] = false
		}
	}
	for _, p := range order {
		if ok[p] {
			improved++
		}
	}
	return improved, len(order)
}

// chaosOne simulates one (plan, seed, recovery) cell and checks its
// invariants, returning the row and the cell's final sim-clock reading
// (campaign-manifest provenance). The recovery-off arm builds env →
// workflow → injector exactly as the pre-recovery sweep did; the
// recovery-on arm creates the policy last, so the injector's RNG
// stream is unchanged between arms.
func chaosOne(opt Options, plan faults.Plan, seed uint64, rec bool) (ChaosRow, sim.Time, error) {
	var row ChaosRow
	env, err := core.NewEnvObs(seed, opt.Pool, opt.Obs)
	if err != nil {
		return row, 0, err
	}
	wf, err := core.NewWorkflow(chaosWorkflowConfig(opt, plan.Name, seed), env.Kernel, env.Pool, nil)
	if err != nil {
		return row, 0, err
	}
	inj, err := faults.New(env.Kernel, plan)
	if err != nil {
		return row, 0, err
	}
	inj.SetObs(opt.Obs)
	inj.Attach(env.Pool, wf.Schedd)
	if rec {
		pol, err := recovery.New(env.Kernel, chaosRecoveryConfig(opt))
		if err != nil {
			return row, 0, err
		}
		pol.SetObs(opt.Obs)
		pol.Attach(env.Pool, wf.Schedd)
		pol.AttachExecutor(wf.Exec)
	}
	// Invariant 1 (termination): RunBatch errors iff the executor did
	// not reach Done by the horizon. A DAG whose node exhausted its
	// retries still terminates — that is the recovery contract under
	// test.
	if err := core.RunBatch(env, []*core.Workflow{wf}, opt.Horizon); err != nil {
		return row, 0, fmt.Errorf("termination invariant: %w", err)
	}

	var ok, failed, removed int
	for _, j := range wf.Schedd.AllJobs() {
		switch {
		case j.Status == htcondor.Completed && j.ExitCode == 0:
			ok++
		case j.Status == htcondor.Completed:
			failed++
		case j.Status == htcondor.Removed:
			removed++
		default:
			return row, 0, fmt.Errorf("conservation invariant: job %s ended in state %v", j.ID(), j.Status)
		}
	}
	submitted := len(wf.Schedd.AllJobs())
	if submitted != ok+failed+removed {
		return row, 0, fmt.Errorf("conservation invariant: submitted %d != ok %d + failed %d + removed %d",
			submitted, ok, failed, removed)
	}

	_, _, evictions := env.Pool.Stats()
	row = ChaosRow{
		Plan:        plan.Name,
		Seed:        seed,
		Recovery:    rec,
		DAGDone:     wf.Exec.Done(),
		DAGFailed:   wf.Exec.Failed(),
		Submitted:   submitted,
		CompletedOK: ok,
		FailedJobs:  failed,
		Removed:     removed,
		NodeRetries: wf.Exec.TotalRetries(),
		Evictions:   evictions,
		RuntimeH:    wf.RuntimeHours(),
		WastedCPUH:  env.Pool.WastedSeconds() / 3600,
	}
	if mins := row.RuntimeH * 60; mins > 0 {
		row.GoodputJPM = float64(ok) / mins
	}
	if !row.DAGDone {
		return row, 0, fmt.Errorf("termination invariant: executor not done after RunBatch")
	}
	return row, env.Kernel.Now(), nil
}

// WriteChaosCSV writes the chaos-matrix rows.
func WriteChaosCSV(w io.Writer, rows []ChaosRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Plan, fmt.Sprintf("%d", r.Seed), fmt.Sprintf("%t", r.Recovery),
			fmt.Sprintf("%t", r.DAGDone), fmt.Sprintf("%t", r.DAGFailed),
			d(r.Submitted), d(r.CompletedOK), d(r.FailedJobs), d(r.Removed),
			d(r.NodeRetries), d(r.Evictions), f(r.RuntimeH), f(r.GoodputJPM), f(r.WastedCPUH),
		}
	}
	return writeCSV(w, []string{
		"plan", "seed", "recovery", "dag_done", "dag_failed",
		"submitted", "completed_ok", "failed", "removed",
		"node_retries", "evictions", "runtime_h", "goodput_jpm", "wasted_cpu_h",
	}, out)
}
