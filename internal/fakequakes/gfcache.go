package fakequakes

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"fdw/internal/geom"
	"fdw/internal/linalg"
	"fdw/internal/obs"
)

// Green's-function recycling: Phase B is the paper's dominant cost —
// hours proportional to station count — and its product depends only
// on the fault geometry, the station set, and the GF configuration,
// none of which change across the scenarios of a campaign. GFCache
// extends the distance-matrix .npy recycling to the whole Phase B
// product: the first run computes and persists the kernels, every
// later run (or parallel job) sharing the same geometry loads them
// and skips ComputeGreens entirely.
//
// Durability follows the covcache contract: files are written through
// writeNPY (atomicfile: temp + fsync + rename), and a truncated or
// garbage file on load is skipped and recomputed — never trusted,
// never fatal. The loaded float64 bits are exactly the computed bits
// (npy round-trips them verbatim), so warm runs are byte-identical to
// cold runs by construction.

// computeGreensCalls counts ComputeGreens invocations; the recycling
// tests use it to assert a warm cache run skips Phase B entirely.
var computeGreensCalls atomic.Uint64

// gfKernelVersion tags GFFingerprint with the generation of the
// synthesis arithmetic, mirroring covKernelVersion: if the kernel
// formulas or their rounding ever change, bumping this orphans every
// stale greens_*.npy instead of letting it break bit-determinism.
const gfKernelVersion = 1

// gfNPYPattern names persisted kernels after their fingerprint, the
// covfactor_*.npy convention one product up.
const gfNPYPattern = "greens_%016x.npy"

// GFCache persists Green's-function kernels in a directory, keyed by
// GFFingerprint. It is safe for concurrent use.
type GFCache struct {
	dir string

	mu     sync.Mutex
	hits   uint64
	misses uint64
	obs    *obs.Registry
}

// NewGFCache returns a cache rooted at dir (which must exist).
func NewGFCache(dir string) *GFCache {
	return &GFCache{dir: dir}
}

// DefaultGFCache, when non-nil, is consulted by GreensForScenario —
// the seam Fig1/GenerateScenario run through. Nil (the default) means
// no persistence: recycling is opt-in because it writes files.
var DefaultGFCache *GFCache

// SetObs mirrors hit/miss tallies into a metrics registry (nil
// disables). Lookup behaviour is unchanged either way.
func (c *GFCache) SetObs(r *obs.Registry) {
	c.mu.Lock()
	c.obs = r
	c.mu.Unlock()
}

// Stats returns the cumulative hit and miss counts.
func (c *GFCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *GFCache) record(hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hit {
		c.hits++
		if c.obs != nil {
			c.obs.Counter("fdw_gfcache_hits_total").Inc()
		}
		return
	}
	c.misses++
	if c.obs != nil {
		c.obs.Counter("fdw_gfcache_misses_total").Inc()
	}
}

// GFFingerprint digests everything the Green's functions depend on:
// the synthesis generation, the configuration, the full fault geometry
// (every field computeStation reads), the station list, and the
// station-distance matrix rows the kernels are built from. Two runs
// agreeing on the fingerprint compute bit-identical kernels.
func GFFingerprint(f *geom.Fault, stations []geom.Station, d *DistanceMatrices, cfg GFConfig) uint64 {
	h := newFNV()
	h.word(gfKernelVersion)
	h.float(cfg.Dt)
	h.word(uint64(cfg.Nsamples))
	h.float(cfg.VpKmS)
	h.float(cfg.VsKmS)
	h.word(uint64(f.NumSubfaults()))
	for i := range f.Subfaults {
		s := &f.Subfaults[i]
		h.float(s.Center.Lat)
		h.float(s.Center.Lon)
		h.float(s.DepthKm)
		h.float(s.StrikeDeg)
		h.float(s.DipDeg)
		h.float(s.LengthKm)
		h.float(s.WidthKm)
	}
	h.word(uint64(len(stations)))
	for i := range stations {
		h.str(stations[i].Name)
		h.float(stations[i].Pos.Lat)
		h.float(stations[i].Pos.Lon)
	}
	if d != nil && d.Station != nil {
		h.word(uint64(d.Station.Rows))
		h.word(uint64(d.Station.Cols))
		for _, v := range d.Station.Data {
			h.float(v)
		}
	}
	return uint64(h)
}

// LoadOrCompute returns the Green's functions for (f, stations, cfg):
// recycled from the cache directory when a fingerprint-matching .npy
// holds a well-formed kernel of the expected shape, otherwise computed
// and persisted. The second result reports a warm hit. A corrupt or
// truncated cache file is skipped and recomputed — the covcache
// durability contract — but a failure to *persist* a fresh kernel is
// reported, since silently dropping it would turn every later run cold.
func (c *GFCache) LoadOrCompute(f *geom.Fault, stations []geom.Station, d *DistanceMatrices, cfg GFConfig) (*GreensFunctions, bool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, false, err
	}
	if err := d.Validate(f.NumSubfaults(), len(stations)); err != nil {
		return nil, false, err
	}
	key := GFFingerprint(f, stations, d, cfg)
	path := filepath.Join(c.dir, fmt.Sprintf(gfNPYPattern, key))
	if g := loadGreensNPY(path, f.NumSubfaults(), stations, cfg); g != nil {
		c.record(true)
		return g, true, nil
	}
	g, err := ComputeGreens(f, stations, d, cfg)
	if err != nil {
		return nil, false, err
	}
	c.record(false)
	if err := writeNPY(path, flattenGreens(g)); err != nil {
		return nil, false, fmt.Errorf("fakequakes: persisting greens cache: %w", err)
	}
	return g, false, nil
}

// flattenGreens packs the kernel into one (stations·NSub·3)×Nsamples
// matrix, rows ordered (station, subfault, component) — the layout
// unflattenGreens inverts.
func flattenGreens(g *GreensFunctions) *linalg.Matrix {
	rows := len(g.Stations) * g.NSub * 3
	m := linalg.NewMatrix(rows, g.Cfg.Nsamples)
	r := 0
	for s := range g.Kernel {
		for sf := 0; sf < g.NSub; sf++ {
			for c := 0; c < 3; c++ {
				copy(m.Row(r), g.Kernel[s][sf][c])
				r++
			}
		}
	}
	return m
}

// loadGreensNPY reads a persisted kernel and rebuilds GreensFunctions,
// returning nil for any unusable file: unreadable, undecodable, or the
// wrong shape for the requested geometry. The kernel rows alias the
// loaded matrix (consumers only read them).
func loadGreensNPY(path string, nsub int, stations []geom.Station, cfg GFConfig) *GreensFunctions {
	m, err := readNPY(path)
	if err != nil {
		return nil // missing, truncated, or garbage: recompute on miss
	}
	if m.Rows != len(stations)*nsub*3 || m.Cols != cfg.Nsamples {
		return nil
	}
	g := &GreensFunctions{Cfg: cfg, Stations: stations, NSub: nsub}
	g.Kernel = make([][][3][]float64, len(stations))
	r := 0
	for s := range g.Kernel {
		g.Kernel[s] = make([][3][]float64, nsub)
		for sf := 0; sf < nsub; sf++ {
			for c := 0; c < 3; c++ {
				g.Kernel[s][sf][c] = m.Row(r)
				r++
			}
		}
	}
	return g
}

// GreensForScenario is the Phase B entry point the scenario pipeline
// uses: it recycles through DefaultGFCache when one is installed and
// computes directly otherwise. Both paths return bit-identical kernels
// (the cache stores the exact float64 bits), so enabling recycling
// never changes a scenario's bytes — only how long Phase B takes.
func GreensForScenario(f *geom.Fault, stations []geom.Station, d *DistanceMatrices, cfg GFConfig) (*GreensFunctions, error) {
	if DefaultGFCache != nil {
		g, _, err := DefaultGFCache.LoadOrCompute(f, stations, d, cfg)
		return g, err
	}
	return ComputeGreens(f, stations, d, cfg)
}
