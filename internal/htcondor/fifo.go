package htcondor

// jobFIFO is an idle-queue slice with tombstone removal: dropping a job
// nils its slot in O(1) (the job carries its index) instead of shifting
// the tail, and compaction runs only from push — never from remove — so
// negotiation cursors opened over the queue stay valid while the
// negotiator claims jobs out of it. FIFO order of the live entries is
// exactly the seed []*Job append order.
type jobFIFO struct {
	slot int // which Job.fifoIdx cell this queue owns
	jobs []*Job
	live int
}

// FIFO slots: one index cell per queue a job can be in simultaneously.
const (
	slotIdle  = iota // schedd-wide idle queue
	slotOwner        // per-owner idle queue
	numFIFOSlots
)

// push appends j, compacting first if tombstones dominate.
func (f *jobFIFO) push(j *Job) {
	if len(f.jobs) >= 2*f.live+32 {
		f.compact()
	}
	j.fifoIdx[f.slot] = len(f.jobs)
	f.jobs = append(f.jobs, j)
	f.live++
}

// remove tombstones j's slot. It reports whether j was present.
func (f *jobFIFO) remove(j *Job) bool {
	i := j.fifoIdx[f.slot]
	if i < 0 || i >= len(f.jobs) || f.jobs[i] != j {
		return false
	}
	f.jobs[i] = nil
	j.fifoIdx[f.slot] = -1
	f.live--
	return true
}

// compact squeezes tombstones out, rewriting the stored indices.
func (f *jobFIFO) compact() {
	w := 0
	for _, j := range f.jobs {
		if j == nil {
			continue
		}
		f.jobs[w] = j
		j.fifoIdx[f.slot] = w
		w++
	}
	for i := w; i < len(f.jobs); i++ {
		f.jobs[i] = nil
	}
	f.jobs = f.jobs[:w]
}

// snapshot returns the live jobs in FIFO order (a fresh slice).
func (f *jobFIFO) snapshot() []*Job {
	out := make([]*Job, 0, f.live)
	for _, j := range f.jobs {
		if j != nil {
			out = append(out, j)
		}
	}
	return out
}

// IdleCursor walks one owner's idle jobs in queue order without copying
// the queue. It is created at the start of a negotiation cycle and is
// valid until the next insert into the underlying queue (inserts may
// compact; removals of already-yielded jobs are fine — that is exactly
// what claiming does). Peek returns the next live job without consuming
// it; Pop consumes the job Peek returned.
type IdleCursor struct {
	f   *jobFIFO
	pos int
	end int // queue length at cursor creation: a cycle's snapshot bound
}

// Peek returns the next live job, or nil when the cursor is exhausted.
// Repeated Peeks without a Pop return the same job.
func (c *IdleCursor) Peek() *Job {
	for c.pos < c.end {
		if j := c.f.jobs[c.pos]; j != nil {
			return j
		}
		c.pos++
	}
	return nil
}

// Pop consumes the job the last Peek returned.
func (c *IdleCursor) Pop() { c.pos++ }
