package vdc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"fdw/internal/obs"
)

// Server exposes a Catalog over HTTP — the VDC portal API surface:
//
//	POST   /products            deposit (JSON Product body)
//	GET    /products            search (?type= &batch= &region= &tag=
//	                             &min_mw= &max_mw= &text=)
//	GET    /products/{id}       retrieve (counts an access)
//	DELETE /products/{id}       remove
//	POST   /products/{id}/tags  add tags (JSON array of strings)
//	GET    /popular?n=N         prefetch hints
//	GET    /metrics             Prometheus text exposition
type Server struct {
	catalog *Catalog
	mux     *http.ServeMux
	obs     *obs.Registry
}

// NewServer wraps catalog in an HTTP handler with its own metrics
// registry (the portal has no simulation clock, so metric timestamps
// read 0; only the values matter).
func NewServer(catalog *Catalog) *Server {
	s := &Server{catalog: catalog, mux: http.NewServeMux(), obs: obs.NewRegistry(nil)}
	s.mux.HandleFunc("/products", s.handleProducts)
	s.mux.HandleFunc("/products/", s.handleProduct)
	s.mux.HandleFunc("/popular", s.handlePopular)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Registry exposes the server's metrics registry (e.g. for cmd/vdcd to
// record startup gauges).
func (s *Server) Registry() *obs.Registry { return s.obs }

// statusRecorder captures the response status for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	route := r.URL.Path
	if strings.HasPrefix(route, "/products/") {
		route = "/products/{id}" // collapse ids to keep label cardinality bounded
	}
	if s.obs != nil {
		s.obs.Counter("vdc_http_requests_total",
			"method", r.Method, "route", route, "status", strconv.Itoa(rec.status)).Inc()
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("vdc: method %s not allowed", r.Method))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.obs != nil {
		s.obs.Gauge("vdc_catalog_products").Set(float64(s.catalog.Len()))
		_ = s.obs.WritePrometheus(w)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleProducts(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var p Product
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("vdc: bad product JSON: %v", err))
			return
		}
		id, err := s.catalog.Deposit(p)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	case http.MethodGet:
		q := Query{
			Type:   ProductType(r.URL.Query().Get("type")),
			Batch:  r.URL.Query().Get("batch"),
			Region: r.URL.Query().Get("region"),
			Tag:    r.URL.Query().Get("tag"),
			Text:   r.URL.Query().Get("text"),
		}
		if v := r.URL.Query().Get("min_mw"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("vdc: bad min_mw %q", v))
				return
			}
			q.MinMw = f
		}
		if v := r.URL.Query().Get("max_mw"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("vdc: bad max_mw %q", v))
				return
			}
			q.MaxMw = f
		}
		writeJSON(w, http.StatusOK, s.catalog.Search(q))
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("vdc: method %s not allowed", r.Method))
	}
}

func (s *Server) handleProduct(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/products/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	if id == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("vdc: missing product id"))
		return
	}
	if len(parts) == 2 && parts[1] == "tags" {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("vdc: method %s not allowed", r.Method))
			return
		}
		var tags []string
		if err := json.NewDecoder(r.Body).Decode(&tags); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("vdc: bad tags JSON: %v", err))
			return
		}
		if err := s.catalog.Tag(id, tags...); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "tagged"})
		return
	}
	if len(parts) != 1 {
		writeErr(w, http.StatusNotFound, fmt.Errorf("vdc: no such route"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		p, err := s.catalog.Get(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	case http.MethodDelete:
		if err := s.catalog.Delete(id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("vdc: method %s not allowed", r.Method))
	}
}

func (s *Server) handlePopular(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("vdc: method %s not allowed", r.Method))
		return
	}
	n := 10
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("vdc: bad n %q", v))
			return
		}
		n = parsed
	}
	writeJSON(w, http.StatusOK, s.catalog.Popular(n))
}

// Client talks to a VDC portal over HTTP.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the portal at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: http.DefaultClient}
}

func (c *Client) do(method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("vdc: %s", e.Error)
		}
		return fmt.Errorf("vdc: HTTP %d from %s %s", resp.StatusCode, method, path)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Deposit stores a product and returns its assigned id.
func (c *Client) Deposit(p Product) (string, error) {
	var res struct {
		ID string `json:"id"`
	}
	if err := c.do(http.MethodPost, "/products", p, &res); err != nil {
		return "", err
	}
	return res.ID, nil
}

// Get retrieves one product.
func (c *Client) Get(id string) (Product, error) {
	var p Product
	err := c.do(http.MethodGet, "/products/"+id, nil, &p)
	return p, err
}

// Delete removes a product.
func (c *Client) Delete(id string) error {
	return c.do(http.MethodDelete, "/products/"+id, nil, nil)
}

// Tag adds tags to a product.
func (c *Client) Tag(id string, tags ...string) error {
	return c.do(http.MethodPost, "/products/"+id+"/tags", tags, nil)
}

// Search queries the catalog.
func (c *Client) Search(q Query) ([]Product, error) {
	params := make([]string, 0, 7)
	add := func(k, v string) {
		if v != "" {
			params = append(params, k+"="+v)
		}
	}
	add("type", string(q.Type))
	add("batch", q.Batch)
	add("region", q.Region)
	add("tag", q.Tag)
	add("text", q.Text)
	if q.MinMw > 0 {
		add("min_mw", strconv.FormatFloat(q.MinMw, 'g', -1, 64))
	}
	if q.MaxMw > 0 {
		add("max_mw", strconv.FormatFloat(q.MaxMw, 'g', -1, 64))
	}
	path := "/products"
	if len(params) > 0 {
		path += "?" + strings.Join(params, "&")
	}
	var out []Product
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// Popular fetches the prefetch-hint list.
func (c *Client) Popular(n int) ([]Product, error) {
	var out []Product
	err := c.do(http.MethodGet, "/popular?n="+strconv.Itoa(n), nil, &out)
	return out, err
}
