// Command fdwmon is FDW's monitoring tool: it parses an HTCondor user
// log (as written by cmd/fdw or a live schedd) and reports the batch
// statistics the paper's shell scripts compute — runtime, job counts,
// execution/wait distributions, total throughput — plus terminal
// sparklines of the instant-throughput and running-job series.
//
// Usage:
//
//	fdwmon -log run.log [-step 60] [-metrics run-metrics.json]
//
// With -metrics it also renders the JSON metrics snapshot written by
// fdw/fdwexp -metrics (counters, gauges, histogram quantiles, spans)
// alongside the log-derived statistics; -metrics alone is accepted too.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"fdw"
)

func main() {
	var (
		logPath     = flag.String("log", "", "HTCondor user log to analyze")
		stepS       = flag.Float64("step", 60, "series sample step (seconds)")
		metricsPath = flag.String("metrics", "", "JSON metrics snapshot to render (from fdw/fdwexp -metrics)")
	)
	flag.Parse()
	if *logPath == "" && *metricsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *logPath != "" {
		if err := run(*logPath, *stepS); err != nil {
			fmt.Fprintln(os.Stderr, "fdwmon:", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		if err := renderMetrics(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "fdwmon:", err)
			os.Exit(1)
		}
	}
}

// renderMetrics pretty-prints a JSON metrics snapshot.
func renderMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := fdw.ReadMetricsSnapshot(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("metrics snapshot %s:\n", path)
	return snap.WriteText(os.Stdout)
}

func run(logPath string, stepS float64) error {
	f, err := os.Open(logPath)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := fdw.ParseUserLog(f)
	if err != nil {
		return err
	}
	stats, err := analyze(logPath, events)
	if err != nil {
		return err
	}
	if err := stats.Report(os.Stdout); err != nil {
		return err
	}
	step := fdw.SimTime(stepS)
	tput := fdw.InstantThroughputSeries(events, step)
	running := fdw.RunningJobsSeries(events, step)
	fmt.Printf("instant throughput (max %.1f jobs/min):\n  %s\n", maxOf(tput), sparkline(tput, 72))
	fmt.Printf("running jobs (max %.0f):\n  %s\n", maxOf(running), sparkline(running, 72))
	return nil
}

func analyze(name string, events []fdw.JobEvent) (*fdw.BatchStats, error) {
	// AnalyzeLog wants text; we already have events, so rebuild stats
	// through the same reducer by re-serializing a trivial reader is
	// wasteful — the core API accepts events directly via AnalyzeEvents,
	// which the root package reaches through AnalyzeLog's sibling.
	return fdw.AnalyzeEvents(name, events)
}

// sparkline renders a series as a fixed-width block-character strip.
func sparkline(series []fdw.SeriesPoint, width int) string {
	if len(series) == 0 {
		return "(no data)"
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	peak := maxOf(series)
	if peak <= 0 {
		peak = 1
	}
	if width > len(series) {
		width = len(series)
	}
	var sb strings.Builder
	for i := 0; i < width; i++ {
		// Average the bucket of samples this column covers.
		lo := i * len(series) / width
		hi := (i + 1) * len(series) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, p := range series[lo:hi] {
			sum += p.V
		}
		v := sum / float64(hi-lo)
		idx := int(math.Round(v / peak * float64(len(blocks)-1)))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}

func maxOf(series []fdw.SeriesPoint) float64 {
	var m float64
	for _, p := range series {
		if p.V > m {
			m = p.V
		}
	}
	return m
}
