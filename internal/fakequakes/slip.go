package fakequakes

import (
	"fmt"
	"math"

	"fdw/internal/geom"
	"fdw/internal/linalg"
	"fdw/internal/sim"
)

// Kernel selects the spatial correlation model for slip heterogeneity.
type Kernel int

const (
	// Exponential is the anisotropic exponential kernel
	// C(r) = exp(-r), r² = (Δs/as)² + (Δd/ad)².
	Exponential Kernel = iota
	// Gaussian is C(r) = exp(-r²), smoother slip.
	Gaussian
	// VonKarmanApprox approximates the H=0.75 von Karman kernel with a
	// matched-decay blend of exponential and Gaussian terms, avoiding a
	// Bessel-function dependency while keeping the mid-range roughness.
	VonKarmanApprox
)

func (k Kernel) String() string {
	switch k {
	case Exponential:
		return "exponential"
	case Gaussian:
		return "gaussian"
	case VonKarmanApprox:
		return "vonKarman"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

func (k Kernel) value(r float64) float64 {
	switch k {
	case Gaussian:
		return math.Exp(-r * r)
	case VonKarmanApprox:
		return 0.6*math.Exp(-r) + 0.4*math.Exp(-r*r)
	default:
		return math.Exp(-r)
	}
}

// Rupture is one stochastic slip scenario on a fault.
type Rupture struct {
	ID         string
	TargetMw   float64
	ActualMw   float64
	Hypocenter int // subfault index
	// Patch lists the subfault indices participating in the rupture.
	Patch []int
	// SlipM[i] is slip (m) on Patch[i].
	SlipM []float64
	// OnsetS[i] is rupture-front arrival (s) at Patch[i].
	OnsetS []float64
	// RiseS[i] is the local rise time (s) at Patch[i].
	RiseS []float64
}

// MaxSlip returns the peak slip of the scenario.
func (r *Rupture) MaxSlip() float64 {
	var m float64
	for _, s := range r.SlipM {
		if s > m {
			m = s
		}
	}
	return m
}

// Duration returns the rupture duration: last onset plus its rise time.
func (r *Rupture) Duration() float64 {
	var d float64
	for i := range r.OnsetS {
		if t := r.OnsetS[i] + r.RiseS[i]; t > d {
			d = t
		}
	}
	return d
}

// Generator produces stochastic ruptures on a fault, MudPy-style:
// pick a target magnitude, place a scaling-law-sized patch, draw
// log-normal correlated slip from a distance-based covariance, rescale
// to the target moment, and time the rupture front from the hypocenter.
type Generator struct {
	Fault   *geom.Fault
	Dist    *DistanceMatrices
	Kern    Kernel
	MinMw   float64 // target magnitude range, inclusive
	MaxMw   float64
	SigmaLn float64 // log-slip standard deviation (MudPy default ≈ 0.9)
	// Factors recycles slip-covariance Cholesky factors across
	// scenarios (see FactorCache). NewGenerator wires the shared
	// DefaultFactorCache; set nil to force a fresh factorization per
	// scenario.
	Factors   *FactorCache
	faultHash uint64 // memoized faultCovHash of Fault
	maxPatch  int    // guard for covariance size; 0 = unlimited
}

// NewGenerator validates inputs and returns a Generator with MudPy-like
// defaults (Mw 7.8–9.2, sigma 0.9, exponential kernel).
func NewGenerator(f *geom.Fault, d *DistanceMatrices) (*Generator, error) {
	if f == nil || f.NumSubfaults() == 0 {
		return nil, fmt.Errorf("fakequakes: empty fault")
	}
	if d == nil {
		return nil, fmt.Errorf("fakequakes: nil distance matrices")
	}
	if err := d.Validate(f.NumSubfaults(), d.Station.Rows); err != nil {
		return nil, err
	}
	return &Generator{
		Fault:     f,
		Dist:      d,
		Kern:      Exponential,
		MinMw:     7.8,
		MaxMw:     9.2,
		SigmaLn:   0.9,
		Factors:   DefaultFactorCache,
		faultHash: faultCovHash(f),
	}, nil
}

// Generate draws one rupture using rng. id labels the scenario
// (MudPy uses zero-padded run numbers such as "run000147").
func (g *Generator) Generate(id string, rng *sim.RNG) (*Rupture, error) {
	mw := rng.Uniform(g.MinMw, g.MaxMw)
	return g.GenerateMw(id, mw, rng)
}

// GenerateMw draws one rupture with a fixed target magnitude.
func (g *Generator) GenerateMw(id string, mw float64, rng *sim.RNG) (*Rupture, error) {
	if mw < 6 || mw > 9.6 {
		return nil, fmt.Errorf("fakequakes: target Mw %.2f outside supported range [6, 9.6]", mw)
	}
	f := g.Fault
	dims := ScalingLaw(mw)

	// Patch extent in cells, clamped to the mesh.
	nAlong := clamp(int(math.Round(dims.LengthKm/f.SubfaultLen)), 2, f.NAlong)
	nDown := clamp(int(math.Round(dims.WidthKm/f.SubfaultWid)), 2, f.NDown)

	// Random patch placement.
	i0 := 0
	if f.NAlong > nAlong {
		i0 = rng.Intn(f.NAlong - nAlong + 1)
	}
	j0 := 0
	if f.NDown > nDown {
		j0 = rng.Intn(f.NDown - nDown + 1)
	}

	patch := make([]int, 0, nAlong*nDown)
	for i := i0; i < i0+nAlong; i++ {
		for j := j0; j < j0+nDown; j++ {
			patch = append(patch, f.At(i, j).Index)
		}
	}
	if g.maxPatch > 0 && len(patch) > g.maxPatch {
		return nil, fmt.Errorf("fakequakes: patch of %d subfaults exceeds limit %d", len(patch), g.maxPatch)
	}

	slip, err := g.correlatedSlip(patch, mw, rng)
	if err != nil {
		return nil, err
	}

	// Rescale to the exact target moment, clamping extreme lognormal
	// tails (MudPy's max-slip guard) at 10× the scaling-law mean slip —
	// Tohoku-class peaks stay possible, three-digit slips do not. The
	// clamp and rescale iterate to convergence.
	meanSlip, err := MeanSlip(mw, float64(len(patch))*f.SubfaultLen*f.SubfaultWid)
	if err != nil {
		return nil, err
	}
	maxSlip := 10 * meanSlip
	for iter := 0; iter < 8; iter++ {
		var m0 float64
		for k, idx := range patch {
			m0 += ShearModulusPa * f.Subfaults[idx].AreaKm2() * 1e6 * slip[k]
		}
		if m0 <= 0 {
			return nil, fmt.Errorf("fakequakes: degenerate slip realization")
		}
		linalg.Scale(slip, Moment(mw)/m0)
		clamped := false
		for k := range slip {
			if slip[k] > maxSlip {
				slip[k] = maxSlip
				clamped = true
			}
		}
		if !clamped {
			break
		}
	}

	// Hypocenter: MudPy biases hypocenters toward the deeper half of the
	// patch; pick uniformly from its lower-depth portion.
	hypo := patch[rng.Intn(len(patch))]
	for tries := 0; tries < 8; tries++ {
		cand := patch[rng.Intn(len(patch))]
		if f.Subfaults[cand].Down >= j0+nDown/2 {
			hypo = cand
			break
		}
	}

	// Kinematic onset times from the hypocenter along the fault surface.
	onset := make([]float64, len(patch))
	rise := make([]float64, len(patch))
	for k, idx := range patch {
		d := g.Dist.Subfault.At(hypo, idx)
		v := RuptureVelocity(f.Subfaults[idx].DepthKm)
		// Perturb the front by ±10% to mimic heterogeneous rupture speed.
		onset[k] = d / v * rng.Uniform(0.9, 1.1)
		rise[k] = RiseTime(slip[k])
	}

	r := &Rupture{
		ID:         id,
		TargetMw:   mw,
		Hypocenter: hypo,
		Patch:      patch,
		SlipM:      slip,
		OnsetS:     onset,
		RiseS:      rise,
	}
	r.ActualMw = g.momentMagnitude(r)
	return r, nil
}

// momentMagnitude recomputes Mw from the realized slip.
func (g *Generator) momentMagnitude(r *Rupture) float64 {
	var m0 float64
	for k, idx := range r.Patch {
		m0 += ShearModulusPa * g.Fault.Subfaults[idx].AreaKm2() * 1e6 * r.SlipM[k]
	}
	return Magnitude(m0)
}

// correlatedSlip draws log-normal slip with distance-decaying
// correlation over the patch subfaults.
func (g *Generator) correlatedSlip(patch []int, mw float64, rng *sim.RNG) ([]float64, error) {
	n := len(patch)
	f := g.Fault
	// Correlation lengths derive from the realized patch extent, not
	// the continuous scaling law: every Mw in the band that rounds to
	// this patch shape then shares one covariance, one Cholesky factor,
	// and one cache key (see PatchCorrelationLengths).
	minA, maxA := f.Subfaults[patch[0]].Along, f.Subfaults[patch[0]].Along
	minD, maxD := f.Subfaults[patch[0]].Down, f.Subfaults[patch[0]].Down
	for _, idx := range patch {
		s := &f.Subfaults[idx]
		minA = min(minA, s.Along)
		maxA = max(maxA, s.Along)
		minD = min(minD, s.Down)
		maxD = max(maxD, s.Down)
	}
	aS, aD := PatchCorrelationLengths(maxA-minA+1, maxD-minD+1, f.SubfaultLen, f.SubfaultWid)

	// Recycle the O(n³) factor when an identical covariance was already
	// factorized (same fault, kernel, correlation lengths, patch shape).
	// The RNG is untouched by the factorization, so hit and miss paths
	// consume exactly the same variates and scenarios stay bit-identical.
	var key uint64
	var l *linalg.Matrix
	if g.Factors != nil {
		key = covFactorKey(g.faultHash, g.Kern, g.SigmaLn, aS, aD, f, patch)
		l, _ = g.Factors.Get(key)
	}
	if l == nil {
		l2, err := g.factorCovariance(patch, aS, aD)
		if err != nil {
			return nil, err
		}
		l = l2
		if g.Factors != nil {
			g.Factors.Put(key, l)
		}
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = rng.Norm()
	}
	corr, err := l.ParallelMulVec(z)
	if err != nil {
		return nil, err
	}
	meanSlip, err := MeanSlip(mw, float64(n)*f.SubfaultLen*f.SubfaultWid)
	if err != nil {
		return nil, err
	}
	mu := math.Log(meanSlip) - 0.5*g.SigmaLn*g.SigmaLn
	slip := make([]float64, n)
	for i := range slip {
		slip[i] = math.Exp(mu + corr[i])
	}
	// Taper edges so slip dies out at the patch boundary (MudPy tapers
	// with a modified boxcar); a cosine taper over the outer 15%.
	g.taper(patch, slip)
	return slip, nil
}

// factorCovariance builds the patch's slip covariance and returns its
// Cholesky factor. The fill parallelizes over upper-triangle rows —
// every cell (a,b) and its mirror (b,a) is written by exactly one
// worker (the one owning row min(a,b)), so the writes are disjoint —
// and the factorization uses the bit-identical parallel kernel, keeping
// the factor independent of GOMAXPROCS.
func (g *Generator) factorCovariance(patch []int, aS, aD float64) (*linalg.Matrix, error) {
	n := len(patch)
	f := g.Fault
	cov := linalg.NewMatrix(n, n)
	linalg.ParallelFor(n, 4, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			sa := &f.Subfaults[patch[a]]
			for b := a; b < n; b++ {
				sb := &f.Subfaults[patch[b]]
				ds := float64(sa.Along-sb.Along) * f.SubfaultLen
				dd := float64(sa.Down-sb.Down) * f.SubfaultWid
				r := math.Sqrt((ds/aS)*(ds/aS) + (dd/aD)*(dd/aD))
				c := g.SigmaLn * g.SigmaLn * g.Kern.value(r)
				cov.Set(a, b, c)
				cov.Set(b, a, c)
			}
		}
	})
	cov.AddDiag(1e-8 * g.SigmaLn * g.SigmaLn)
	l, err := linalg.ParallelCholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("fakequakes: slip covariance: %w", err)
	}
	return l, nil
}

func (g *Generator) taper(patch []int, slip []float64) {
	if len(patch) == 0 {
		return
	}
	f := g.Fault
	minA, maxA := f.Subfaults[patch[0]].Along, f.Subfaults[patch[0]].Along
	minD, maxD := f.Subfaults[patch[0]].Down, f.Subfaults[patch[0]].Down
	for _, idx := range patch {
		s := &f.Subfaults[idx]
		minA = min(minA, s.Along)
		maxA = max(maxA, s.Along)
		minD = min(minD, s.Down)
		maxD = max(maxD, s.Down)
	}
	taper1D := func(pos, lo, hi int) float64 {
		span := float64(hi - lo)
		if span <= 0 {
			return 1
		}
		edge := 0.15 * span
		d := math.Min(float64(pos-lo), float64(hi-pos))
		if d >= edge || edge == 0 {
			return 1
		}
		return 0.5 * (1 - math.Cos(math.Pi*d/edge+math.Pi*0.0)) * 0.9999 // avoid exact zero
	}
	for k, idx := range patch {
		s := &f.Subfaults[idx]
		w := taper1D(s.Along, minA, maxA) * taper1D(s.Down, minD, maxD)
		slip[k] *= 0.05 + 0.95*w
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
