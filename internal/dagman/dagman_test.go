package dagman

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/sim"
)

const sampleDAG = `
# FDW three-phase workflow
JOB matrices gen_matrices.sub
JOB phaseA phase_a.sub
JOB phaseB phase_b.sub
JOB phaseC phase_c.sub
PARENT matrices CHILD phaseA phaseB
PARENT phaseA phaseB CHILD phaseC
VARS phaseA nrjobs="64" kernel="exponential"
RETRY phaseC 2
CATEGORY phaseC heavy
MAXJOBS heavy 1
`

func TestParseDAG(t *testing.T) {
	d, err := Parse(strings.NewReader(sampleDAG))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 4 {
		t.Fatalf("%d nodes", len(d.Nodes))
	}
	a := d.Nodes["phaseA"]
	if a.Vars["nrjobs"] != "64" || a.Vars["kernel"] != "exponential" {
		t.Fatalf("VARS = %v", a.Vars)
	}
	if d.Nodes["phaseC"].Retry != 2 {
		t.Fatal("RETRY lost")
	}
	if d.Nodes["phaseC"].Category != "heavy" || d.MaxJobs["heavy"] != 1 {
		t.Fatal("CATEGORY/MAXJOBS lost")
	}
	c := d.Nodes["phaseC"]
	if len(c.Parents) != 2 {
		t.Fatalf("phaseC parents %v", c.Parents)
	}
	roots := d.Roots()
	if len(roots) != 1 || roots[0].Name != "matrices" {
		t.Fatalf("roots %v", roots)
	}
}

func TestParseDAGErrors(t *testing.T) {
	cases := map[string]string{
		"unknown cmd":    "FROB x y\n",
		"short JOB":      "JOB only\n",
		"dup node":       "JOB a x.sub\nJOB a y.sub\n",
		"unknown parent": "JOB a x.sub\nPARENT b CHILD a\n",
		"unknown child":  "JOB a x.sub\nPARENT a CHILD b\n",
		"self edge":      "JOB a x.sub\nPARENT a CHILD a\n",
		"bad VARS":       "JOB a x.sub\nVARS a novalue\n",
		"unquoted VARS":  "JOB a x.sub\nVARS a k=v\n",
		"bad RETRY":      "JOB a x.sub\nRETRY a lots\n",
		"RETRY unknown":  "JOB a x.sub\nRETRY b 1\n",
		"bad MAXJOBS":    "JOB a x.sub\nMAXJOBS cat zero\n",
		"empty":          "",
		"cycle":          "JOB a x\nJOB b y\nPARENT a CHILD b\nPARENT b CHILD a\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestDAGWriteParseRoundTrip(t *testing.T) {
	d, err := Parse(strings.NewReader(sampleDAG))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if len(d2.Nodes) != len(d.Nodes) {
		t.Fatal("node count changed")
	}
	if d2.Nodes["phaseA"].Vars["nrjobs"] != "64" {
		t.Fatal("vars lost in round trip")
	}
	if len(d2.Nodes["phaseC"].Parents) != 2 {
		t.Fatal("edges lost in round trip")
	}
}

func TestDAGDoneMarker(t *testing.T) {
	d, err := Parse(strings.NewReader("JOB a x.sub DONE\nJOB b y.sub\nPARENT a CHILD b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Nodes["a"].Done || d.Nodes["b"].Done {
		t.Fatal("DONE markers wrong")
	}
}

// autoRun wires a schedd to a synthetic executor: submitted jobs start
// after `wait` and complete after `exec` (with the given exit code).
func autoRun(k *sim.Kernel, s *htcondor.Schedd, wait, exec sim.Time, exit func(*htcondor.Job) int) {
	s.Subscribe(func(j *htcondor.Job, ev htcondor.EventType) {
		if ev != htcondor.EventSubmit {
			return
		}
		k.After(wait, func() {
			if j.Status != htcondor.Idle {
				return
			}
			if err := s.MarkRunning(j, "local"); err != nil {
				return
			}
			k.After(exec, func() {
				if j.Status == htcondor.Running {
					_ = s.MarkCompleted(j, exit(j))
				}
			})
		})
	})
}

func countingFactory(perNode int, counter *int) JobFactory {
	return func(n *Node) ([]*htcondor.Job, error) {
		*counter++
		jobs := make([]*htcondor.Job, perNode)
		for i := range jobs {
			jobs[i] = &htcondor.Job{Owner: "dag", BaseExecSeconds: 10}
		}
		return jobs, nil
	}
}

func TestExecutorRunsDAGInOrder(t *testing.T) {
	d, err := Parse(strings.NewReader(sampleDAG))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(3, &submits))
	if err != nil {
		t.Fatal(err)
	}
	var doneOrder []string
	e.OnNodeDone = func(n *Node) { doneOrder = append(doneOrder, n.Name) }
	autoRun(k, s, 5, 20, func(*htcondor.Job) int { return 0 })
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() || e.Failed() {
		t.Fatalf("done=%v failed=%v states=%v", e.Done(), e.Failed(), e.NodeStates())
	}
	if len(doneOrder) != 4 || doneOrder[0] != "matrices" || doneOrder[3] != "phaseC" {
		t.Fatalf("completion order %v", doneOrder)
	}
	// phaseA and phaseB are both children of matrices and parents of phaseC.
	if doneOrder[1] == "phaseC" || doneOrder[2] == "matrices" {
		t.Fatalf("ordering violated: %v", doneOrder)
	}
	if e.RuntimeSeconds() <= 0 {
		t.Fatal("zero runtime")
	}
}

func TestExecutorTopologicalConstraint(t *testing.T) {
	// A chain a→b→c must serialize: total time ≈ 3×(wait+exec).
	d := NewDAG()
	for _, n := range []string{"a", "b", "c"} {
		if err := d.AddNode(&Node{Name: n, SubmitFile: n + ".sub"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("b", "c"); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	autoRun(k, s, 5, 20, func(*htcondor.Job) int { return 0 })
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() {
		t.Fatal("chain did not finish")
	}
	if got := float64(k.Now()); got != 75 {
		t.Fatalf("chain finished at %v, want 75 (3×25)", got)
	}
}

func TestExecutorRetrySucceedsAfterFailures(t *testing.T) {
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "flaky", SubmitFile: "f.sub", Retry: 2}); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	attempts := 0
	factory := func(n *Node) ([]*htcondor.Job, error) {
		attempts++
		return []*htcondor.Job{{Owner: "dag"}}, nil
	}
	e, err := NewExecutor("dag", d, k, s, factory)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first two attempts, succeed on the third.
	fails := 2
	autoRun(k, s, 1, 1, func(*htcondor.Job) int {
		if fails > 0 {
			fails--
			return 1
		}
		return 0
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() || e.Failed() {
		t.Fatalf("done=%v failed=%v", e.Done(), e.Failed())
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestExecutorFailureExhaustsRetries(t *testing.T) {
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "bad", SubmitFile: "b.sub", Retry: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode(&Node{Name: "child", SubmitFile: "c.sub"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("bad", "child"); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	autoRun(k, s, 1, 1, func(*htcondor.Job) int { return 1 }) // always fail
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() || !e.Failed() {
		t.Fatalf("done=%v failed=%v", e.Done(), e.Failed())
	}
	states := e.NodeStates()
	if states["bad"] != NodeFailed {
		t.Fatalf("bad node state %v", states["bad"])
	}
	if states["child"] == NodeDone {
		t.Fatal("child of failed node ran")
	}
}

func TestExecutorRescueDAG(t *testing.T) {
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "ok", SubmitFile: "ok.sub"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode(&Node{Name: "bad", SubmitFile: "bad.sub"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode(&Node{Name: "after", SubmitFile: "after.sub"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("bad", "after"); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	autoRun(k, s, 1, 1, func(j *htcondor.Job) int {
		if j.Cluster == 2 { // second submission = "bad" node
			return 1
		}
		return 0
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Failed() {
		t.Fatal("expected failure")
	}
	var buf bytes.Buffer
	if err := e.WriteRescue(&buf); err != nil {
		t.Fatal(err)
	}
	rescue, err := Parse(&buf)
	if err != nil {
		t.Fatalf("rescue DAG unparsable: %v\n%s", err, buf.String())
	}
	if !rescue.Nodes["ok"].Done {
		t.Fatal("completed node not marked DONE in rescue")
	}
	if rescue.Nodes["bad"].Done || rescue.Nodes["after"].Done {
		t.Fatal("incomplete nodes marked DONE in rescue")
	}
}

func TestExecutorResumeFromRescue(t *testing.T) {
	d, err := Parse(strings.NewReader("JOB a x.sub DONE\nJOB b y.sub\nPARENT a CHILD b\n"))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	autoRun(k, s, 1, 1, func(*htcondor.Job) int { return 0 })
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() || e.Failed() {
		t.Fatal("resume failed")
	}
	if submits != 1 {
		t.Fatalf("submitted %d nodes, want only node b", submits)
	}
}

func TestExecutorAllDoneDAGFinishesImmediately(t *testing.T) {
	d, err := Parse(strings.NewReader("JOB a x.sub DONE\n"))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if !e.Done() || submits != 0 {
		t.Fatalf("done=%v submits=%d", e.Done(), submits)
	}
}

func TestCategoryThrottleLimitsConcurrency(t *testing.T) {
	d := NewDAG()
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		if err := d.AddNode(&Node{Name: n, SubmitFile: n + ".sub", Category: "lim"}); err != nil {
			t.Fatal(err)
		}
	}
	d.MaxJobs["lim"] = 2
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	autoRun(k, s, 1, 10, func(*htcondor.Job) int { return 0 })
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if submits != 2 {
		t.Fatalf("submitted %d nodes at start, want 2 (throttled)", submits)
	}
	k.Run()
	if !e.Done() || submits != 4 {
		t.Fatalf("done=%v submits=%d", e.Done(), submits)
	}
}

func TestExecutorDoubleStartRejected(t *testing.T) {
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "a", SubmitFile: "a.sub", Done: true}); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestNodeStateString(t *testing.T) {
	for s, want := range map[NodeState]string{
		NodeWaiting: "waiting", NodeReady: "ready", NodeSubmitted: "submitted",
		NodeDone: "done", NodeFailed: "failed",
	} {
		if s.String() != want {
			t.Fatalf("%d → %q, want %q", s, s.String(), want)
		}
	}
}

func TestProgressSummary(t *testing.T) {
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "a", SubmitFile: "a.sub"}); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Progress(); !strings.Contains(got, "waiting=1") {
		t.Fatalf("Progress = %q", got)
	}
}

func TestParseScriptPrePost(t *testing.T) {
	src := `
JOB a a.sub
SCRIPT PRE a setup.sh --fetch inputs
SCRIPT POST a archive.sh --compress
`
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes["a"].PreScript != "setup.sh --fetch inputs" {
		t.Fatalf("PreScript %q", d.Nodes["a"].PreScript)
	}
	if d.Nodes["a"].PostScript != "archive.sh --compress" {
		t.Fatalf("PostScript %q", d.Nodes["a"].PostScript)
	}
	// Round trip.
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Nodes["a"].PreScript != d.Nodes["a"].PreScript || d2.Nodes["a"].PostScript != d.Nodes["a"].PostScript {
		t.Fatal("scripts lost in round trip")
	}
}

func TestParseScriptErrors(t *testing.T) {
	for name, src := range map[string]string{
		"short":        "JOB a a.sub\nSCRIPT PRE a\n",
		"unknown node": "JOB a a.sub\nSCRIPT PRE b x.sh\n",
		"bad kind":     "JOB a a.sub\nSCRIPT DURING a x.sh\n",
	} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestExecutorRunsScripts(t *testing.T) {
	d, err := Parse(strings.NewReader("JOB a a.sub\nSCRIPT PRE a pre.sh\nSCRIPT POST a post.sh\n"))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	var ran []string
	e.Scripts = func(n *Node, kind, cmdline string) error {
		ran = append(ran, kind+":"+cmdline)
		return nil
	}
	autoRun(k, s, 1, 1, func(*htcondor.Job) int { return 0 })
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() || e.Failed() {
		t.Fatal("script DAG did not finish")
	}
	if len(ran) != 2 || ran[0] != "PRE:pre.sh" || ran[1] != "POST:post.sh" {
		t.Fatalf("scripts ran %v", ran)
	}
}

func TestExecutorPreScriptFailureRetries(t *testing.T) {
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "a", SubmitFile: "a.sub", PreScript: "pre.sh", Retry: 2}); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	preFails := 2
	e.Scripts = func(n *Node, kind, cmdline string) error {
		if kind == "PRE" && preFails > 0 {
			preFails--
			return errPre
		}
		return nil
	}
	autoRun(k, s, 1, 1, func(*htcondor.Job) int { return 0 })
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() || e.Failed() {
		t.Fatal("PRE-script retries did not recover")
	}
	if submits != 1 {
		t.Fatalf("factory ran %d times, want 1 (only the successful attempt submits)", submits)
	}
}

func TestExecutorPostScriptFailureFailsNode(t *testing.T) {
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "a", SubmitFile: "a.sub", PostScript: "post.sh"}); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submits int
	e, err := NewExecutor("dag", d, k, s, countingFactory(1, &submits))
	if err != nil {
		t.Fatal(err)
	}
	e.Scripts = func(n *Node, kind, cmdline string) error {
		if kind == "POST" {
			return errPost
		}
		return nil
	}
	autoRun(k, s, 1, 1, func(*htcondor.Job) int { return 0 })
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() || !e.Failed() {
		t.Fatalf("POST failure should fail the DAG: done=%v failed=%v", e.Done(), e.Failed())
	}
}

var (
	errPre  = fmt.Errorf("pre script failed")
	errPost = fmt.Errorf("post script failed")
)

// submission records one factory invocation: which node, at what sim time.
type submission struct {
	node string
	at   sim.Time
}

// namedFactory materializes one job per node, stamped with the node
// name in Arguments so per-node run behavior can key off it, and logs
// every submission with its sim time.
func namedFactory(k *sim.Kernel, log *[]submission) JobFactory {
	return func(n *Node) ([]*htcondor.Job, error) {
		*log = append(*log, submission{n.Name, k.Now()})
		return []*htcondor.Job{{Owner: "dag", Arguments: n.Name}}, nil
	}
}

// perNodeRun is autoRun with per-node execution time and exit code,
// keyed on the node name namedFactory stamped into Arguments.
func perNodeRun(k *sim.Kernel, s *htcondor.Schedd, wait sim.Time, exec func(node string) sim.Time, exit func(node string) int) {
	s.Subscribe(func(j *htcondor.Job, ev htcondor.EventType) {
		if ev != htcondor.EventSubmit {
			return
		}
		node := j.Arguments
		k.After(wait, func() {
			if j.Status != htcondor.Idle {
				return
			}
			if err := s.MarkRunning(j, "local"); err != nil {
				return
			}
			k.After(exec(node), func() {
				if j.Status == htcondor.Running {
					_ = s.MarkCompleted(j, exit(node))
				}
			})
		})
	})
}

// Regression: a node that exhausts its RETRY budget must release its
// category slot to throttled siblings. failNodeAttempted used to mark
// the node failed without calling dispatchReady, so with MAXJOBS 1 the
// sibling stayed ready-but-never-submitted and the DAG hung: the event
// loop drained with Done() false.
func TestPermanentFailureReleasesCategorySlot(t *testing.T) {
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "bad", SubmitFile: "bad.sub", Category: "c", Retry: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode(&Node{Name: "good", SubmitFile: "good.sub", Category: "c"}); err != nil {
		t.Fatal(err)
	}
	d.MaxJobs["c"] = 1
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var log []submission
	e, err := NewExecutor("dag", d, k, s, namedFactory(k, &log))
	if err != nil {
		t.Fatal(err)
	}
	perNodeRun(k, s, 1, func(string) sim.Time { return 1 }, func(node string) int {
		if node == "bad" {
			return 1
		}
		return 0
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() {
		t.Fatalf("DAG hung after permanent failure: states=%v", e.NodeStates())
	}
	if !e.Failed() {
		t.Fatal("bad node should have failed the DAG")
	}
	states := e.NodeStates()
	if states["bad"] != NodeFailed {
		t.Fatalf("bad = %v, want failed", states["bad"])
	}
	if states["good"] != NodeDone {
		t.Fatalf("good = %v, want done (throttled sibling must still run)", states["good"])
	}
	if got := e.NodeRetries()["bad"]; got != 1 {
		t.Fatalf("bad retries = %d, want 1", got)
	}
	if e.TotalRetries() != 1 {
		t.Fatalf("total retries = %d, want 1", e.TotalRetries())
	}
}

// Regression: a RETRY resubmission must requeue through dispatchReady
// rather than call submitNode directly, so it competes for its category
// slot under MAXJOBS in declaration order. Before the fix a flaky node
// retried back-to-back and starved an earlier-declared sibling until
// its entire RETRY budget was spent.
func TestRetryRequeuesThroughCategoryThrottle(t *testing.T) {
	d := NewDAG()
	// gate holds waiter back until flaky has already failed twice; when
	// flaky's third failure frees the slot, waiter — declared before
	// flaky — must get it, interleaving with flaky's remaining retries.
	if err := d.AddNode(&Node{Name: "gate", SubmitFile: "gate.sub"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode(&Node{Name: "waiter", SubmitFile: "waiter.sub", Category: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode(&Node{Name: "flaky", SubmitFile: "flaky.sub", Category: "c", Retry: 10}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("gate", "waiter"); err != nil {
		t.Fatal(err)
	}
	d.MaxJobs["c"] = 1
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var log []submission
	e, err := NewExecutor("dag", d, k, s, namedFactory(k, &log))
	if err != nil {
		t.Fatal(err)
	}
	perNodeRun(k, s, 1, func(node string) sim.Time {
		if node == "gate" {
			return 11 // gate finishes between flaky's 2nd and 3rd failure
		}
		return 4
	}, func(node string) int {
		if node == "flaky" {
			return 1
		}
		return 0
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() {
		t.Fatalf("DAG hung: states=%v", e.NodeStates())
	}
	states := e.NodeStates()
	if states["gate"] != NodeDone || states["waiter"] != NodeDone || states["flaky"] != NodeFailed {
		t.Fatalf("states = %v", states)
	}
	if got := e.NodeRetries()["flaky"]; got != 10 {
		t.Fatalf("flaky retries = %d, want 10 (full budget)", got)
	}
	var waiterFirst, flakyLast sim.Time = -1, -1
	for _, sub := range log {
		switch sub.node {
		case "waiter":
			if waiterFirst < 0 {
				waiterFirst = sub.at
			}
		case "flaky":
			flakyLast = sub.at
		}
	}
	if waiterFirst < 0 {
		t.Fatal("waiter never submitted")
	}
	// The pinned behavior: waiter is dispatched as soon as a flaky
	// failure frees the slot, not only after flaky's budget is gone.
	if waiterFirst >= flakyLast {
		t.Fatalf("retry bypassed the throttle: waiter first submitted at %v, after flaky's last attempt at %v",
			waiterFirst, flakyLast)
	}
}

// Satellite: rescue round trip. A failed run's WriteRescue output,
// re-parsed and re-executed on a fresh kernel, resumes exactly the
// non-DONE nodes and converges to the same final node states as a run
// that never failed.
func TestRescueRoundTripResumesAndConverges(t *testing.T) {
	mkDAG := func() *DAG {
		d := NewDAG()
		for _, n := range []string{"a", "b"} {
			if err := d.AddNode(&Node{Name: n, SubmitFile: n + ".sub"}); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.AddNode(&Node{Name: "c", SubmitFile: "c.sub", Retry: 1}); err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{"a", "b"} {
			if err := d.AddEdge(p, "c"); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	run := func(d *DAG, exit func(node string) int) (*Executor, []submission) {
		k := sim.NewKernel(1)
		s := htcondor.NewSchedd("dag", k, nil)
		var log []submission
		e, err := NewExecutor("dag", d, k, s, namedFactory(k, &log))
		if err != nil {
			t.Fatal(err)
		}
		perNodeRun(k, s, 1, func(string) sim.Time { return 1 }, exit)
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return e, log
	}

	// Run 1: b fails permanently → a done, b failed, c never ran.
	e1, _ := run(mkDAG(), func(node string) int {
		if node == "b" {
			return 1
		}
		return 0
	})
	if !e1.Done() || !e1.Failed() {
		t.Fatalf("run 1: done=%v failed=%v", e1.Done(), e1.Failed())
	}
	var buf bytes.Buffer
	if err := e1.WriteRescue(&buf); err != nil {
		t.Fatal(err)
	}
	rescue, err := Parse(&buf)
	if err != nil {
		t.Fatalf("rescue unparsable: %v\n%s", err, buf.String())
	}

	// Run 2 resumes from the rescue with the fault fixed.
	e2, log2 := run(rescue, func(string) int { return 0 })
	if !e2.Done() || e2.Failed() {
		t.Fatalf("run 2: done=%v failed=%v states=%v", e2.Done(), e2.Failed(), e2.NodeStates())
	}
	resubmitted := map[string]bool{}
	for _, sub := range log2 {
		resubmitted[sub.node] = true
	}
	if resubmitted["a"] {
		t.Fatal("rescue run resubmitted a DONE node")
	}
	if !resubmitted["b"] || !resubmitted["c"] {
		t.Fatalf("rescue run skipped a non-DONE node: submitted %v", resubmitted)
	}

	// The resumed run converges to the same final states as a run that
	// never saw the fault.
	e3, _ := run(mkDAG(), func(string) int { return 0 })
	if !reflect.DeepEqual(e2.NodeStates(), e3.NodeStates()) {
		t.Fatalf("resumed states %v != uninterrupted states %v", e2.NodeStates(), e3.NodeStates())
	}
}
