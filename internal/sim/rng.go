// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event calendar, and reproducible random variates.
//
// All FDW experiments run on this kernel so that "34.8 hours" of simulated
// OSG wall time executes in milliseconds of real time and is exactly
// reproducible given a seed.
package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64 seeding an xoshiro256** core). It is intentionally
// independent of math/rand so that simulation results are stable
// across Go releases.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent stream from r, keyed by key.
// Streams with distinct keys are statistically independent, which lets
// each simulated entity (site, job, DAGMan) own a private stream so that
// adding entities does not perturb the variates drawn by others.
func (r *RNG) Split(key uint64) *RNG {
	return NewRNG(r.Uint64() ^ (key * 0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform variate in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate (Box–Muller, polar form).
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*r.Norm()
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponential variate with the given mean.
// It panics if mean <= 0.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("sim: Exp with non-positive mean")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// TruncNormal returns a normal variate clamped to [lo, hi] by resampling
// (falling back to clamping after a bounded number of attempts, so it
// terminates even for pathological bounds).
func (r *RNG) TruncNormal(mean, sd, lo, hi float64) float64 {
	if lo > hi {
		panic("sim: TruncNormal with lo > hi")
	}
	for i := 0; i < 64; i++ {
		x := r.Normal(mean, sd)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
