// Package wallclock_allow demonstrates suppressing the wallclock
// analyzer with a reasoned //lint:allow directive, in both trailing
// and stand-alone placement.
package wallclock_allow

import "time"

// ExportStamp stamps an export file with real time, which is outside
// the simulation and documented as safe.
func ExportStamp() int64 {
	return time.Now().UnixNano() //lint:allow wallclock export file stamps are outside the simulation
}

// Throttle sleeps between retries of a host-side operation.
func Throttle() {
	//lint:allow wallclock host-side retry backoff, not simulated time
	time.Sleep(time.Millisecond)
}
