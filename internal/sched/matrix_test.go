package sched

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"fdw/internal/expt"
	"fdw/internal/faults"
)

// The A/B matrix covers every plan × policy, each arm byte-identical
// to the unsharded reference, and renders a parseable CSV.
func TestSchedMatrix(t *testing.T) {
	opt := expt.DefaultOptions()
	opt.Scale = 0.002
	opt.Seeds = []uint64{11}
	var out bytes.Buffer
	opt.Out = &out
	rows, err := Matrix(opt, "fig2", 4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(faults.StandardWorkerPlans()) * len(MatrixPolicies())
	if len(rows) != wantRows {
		t.Fatalf("%d matrix rows, want %d", len(rows), wantRows)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("plan %q policy %q not byte-identical to unsharded run", r.Plan, r.Policy)
		}
		if r.Workers != 4 || r.MakespanH <= 0 {
			t.Errorf("row %q/%q: workers=%d makespan=%v", r.Plan, r.Policy, r.Workers, r.MakespanH)
		}
		seen[r.Plan+"/"+r.Policy] = true
	}
	if len(seen) != wantRows {
		t.Fatalf("matrix rows not unique: %d distinct of %d", len(seen), wantRows)
	}
	if !strings.Contains(out.String(), "Scheduler A/B matrix") {
		t.Error("matrix table missing from report output")
	}

	// The fault plans must actually bite: at least one arm crashes, one
	// steals, one hedges.
	var crashes, steals, hedges uint64
	for _, r := range rows {
		crashes += r.Stats.WorkerCrashes
		steals += r.Stats.CellsStolen
		hedges += r.Stats.CellsHedged
	}
	if crashes == 0 || steals == 0 || hedges == 0 {
		t.Fatalf("matrix exercised no faults: crashes=%d steals=%d hedges=%d", crashes, steals, hedges)
	}

	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("matrix CSV does not parse: %v", err)
	}
	if len(recs) != wantRows+1 {
		t.Fatalf("%d CSV records, want %d", len(recs), wantRows+1)
	}
	for i, rec := range recs {
		if len(rec) != len(recs[0]) {
			t.Fatalf("CSV row %d has %d fields, header has %d", i, len(rec), len(recs[0]))
		}
	}
}
