// Package atomicwrite_clean lands every artifact atomically through
// internal/core/atomicfile and only ever opens files directly to read.
package atomicwrite_clean

import (
	"io"
	"os"

	"fdw/internal/core/atomicfile"
)

// Emit stages the bytes in a temp file and renames them into place.
func Emit(path string, data []byte) error {
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// Stream writes incrementally and publishes only on Commit.
func Stream(path string, chunks [][]byte) error {
	f, err := atomicfile.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			return err
		}
	}
	return f.Commit()
}

// Load reads; os.Open never mutates the destination and stays allowed.
func Load(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
