package expt

import (
	"fmt"

	"fdw/internal/burst"
	"fdw/internal/core"
	"fdw/internal/wtrace"
)

// Fig5Cell is one parameter combination of the §4.3 bursting sweep.
// Fig. 5 cells run uncapped (the sweep explores how far each policy
// pushes VDC usage); Fig. 6 cells rerun the sweep with the paper's
// 30% bursted-job cap for the cost/runtime comparison.
type Fig5Cell struct {
	Batch      string
	ProbeSecs  float64
	MaxQueueM  float64
	Control    bool
	AvgJPM     float64 // average instant throughput, formula (6)
	MaxJPM     float64
	SDJPM      float64
	VDCPct     float64 // VDC usage: % of completions on VDC (§5.3.2)
	BurstedPct float64
	RuntimeH   float64
	CostUSD    float64 // formula (7)
}

// Fig5ProbeTimes are the paper's Policy 1 probe intervals (seconds).
var Fig5ProbeTimes = []float64{1, 2, 5, 10, 30, 60, 120}

// Fig5QueueTimesMin are the Policy 2 maximum queue times (minutes).
var Fig5QueueTimesMin = []float64{90, 120}

// Fig5Threshold is the Policy 1 instant-throughput threshold (JPM).
const Fig5Threshold = 34

// MakeBatchTraces produces the experiment's input: job-time traces of
// two real single-DAGMan batches that each generated 16,000 (scaled)
// waveforms, exactly the §4.2 runs the paper reuses in §4.3.
func MakeBatchTraces(opt Options) (batches []wtrace.BatchRecord, jobs [][]wtrace.JobRecord, err error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	total := opt.scaleN(Fig3Total)
	seeds := []uint64{opt.Seeds[0], opt.Seeds[0] + 101}
	batches = make([]wtrace.BatchRecord, len(seeds))
	jobs = make([][]wtrace.JobRecord, len(seeds))
	err = forEachIndex(opt.workers(), len(seeds), func(i int) error {
		env, err := core.NewEnvObs(seeds[i], opt.Pool, opt.Obs)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig()
		cfg.Name = fmt.Sprintf("batch%d", i+1)
		cfg.Waveforms = total
		cfg.Seed = seeds[i]
		w, err := core.NewWorkflow(cfg, env.Kernel, env.Pool, nil)
		if err != nil {
			return err
		}
		if err := attachRecovery(opt, env, w); err != nil {
			return err
		}
		if err := core.RunBatch(env, []*core.Workflow{w}, opt.Horizon); err != nil {
			return fmt.Errorf("trace batch %d: %w", i+1, err)
		}
		batches[i], jobs[i], err = wtrace.FromSchedd(cfg.Name, w.Schedd)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return batches, jobs, nil
}

// Fig5 reruns §4.3/§5.3.1–5.3.2: the probe-time × queue-time sweep
// over two batches with no bursting cap, with the pure-OSG control
// first for each batch. The sweep is a shardable campaign
// (campaign.go); each shard regenerates the batch traces locally.
func Fig5(opt Options) ([]Fig5Cell, error) {
	cells, err := runCampaign(fig5Campaign("fig5", 1.0, "Fig. 5"), opt)
	if err != nil {
		return nil, err
	}
	return cells.([]Fig5Cell), nil
}

// Fig6 reruns §5.3.3–5.3.4: the same sweep with the paper's 30%
// bursted-job cap, whose cost and runtime columns Fig. 6 plots.
func Fig6(opt Options) ([]Fig5Cell, error) {
	cells, err := runCampaign(fig5Campaign("fig6", burst.DefaultMaxBurstFraction, "Fig. 6"), opt)
	if err != nil {
		return nil, err
	}
	return cells.([]Fig5Cell), nil
}

// Fig5FromTraces runs the sweep over previously generated traces with
// the given bursting cap: every (batch, policy) cell in print order,
// replayed concurrently (Simulate only reads the traces), then printed.
func Fig5FromTraces(opt Options, batches []wtrace.BatchRecord, jobs [][]wtrace.JobRecord, maxBurstFraction float64, label string) ([]Fig5Cell, error) {
	specs := fig5SpecsFor(len(batches))
	cells := make([]Fig5Cell, len(specs))
	err := forEachIndex(opt.workers(), len(specs), func(i int) error {
		cell, _, err := runFig5Spec(opt, batches, jobs, specs[i], maxBurstFraction)
		if err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	printFig5Cells(opt.out(), label, maxBurstFraction, cells)
	return cells, nil
}

func cellFrom(name string, probe, queueM float64, r *burst.Result) Fig5Cell {
	return Fig5Cell{
		Batch:      name,
		ProbeSecs:  probe,
		MaxQueueM:  queueM,
		AvgJPM:     r.AvgInstantJPM,
		MaxJPM:     r.MaxInstantJPM,
		SDJPM:      r.SDInstantJPM,
		VDCPct:     r.VDCUsagePct,
		BurstedPct: r.BurstedPct,
		RuntimeH:   r.RuntimeSecs / 3600,
		CostUSD:    r.CostUSD,
	}
}
