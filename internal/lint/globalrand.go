package lint

import "strconv"

// globalrandForbidden are the randomness packages whose sequences are
// not reproducible across Go releases (math/rand) or at all
// (crypto/rand).
var globalrandForbidden = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// globalrandOwner is the one package allowed to reference the stdlib
// generators: internal/sim owns the deterministic splitmix64/xoshiro
// RNG and documents its independence from math/rand.
const globalrandOwner = modulePath + "/internal/sim"

// GlobalrandAnalyzer forbids importing math/rand and crypto/rand
// outside internal/sim. Every simulated quantity must draw from a
// seeded, split-keyed sim.RNG stream so adding an entity never
// perturbs the variates drawn by others.
var GlobalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand and crypto/rand outside internal/sim (use sim.RNG)",
	Run: func(pass *Pass) {
		if pass.Pkg.ImportPath == globalrandOwner {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !globalrandForbidden[path] {
					continue
				}
				pass.Reportf(imp.Pos(),
					"import of %s is forbidden outside internal/sim: draw variates from a seeded sim.RNG stream instead",
					path)
			}
		}
	},
}
