package htcondor

import (
	"fmt"
	"sort"

	"fdw/internal/obs"
	"fdw/internal/sim"
)

// Listener observes job state transitions (DAGMan subscribes to learn
// when its node jobs finish).
type Listener func(j *Job, ev EventType)

// Schedd is the submit-side job queue: it accepts jobs, hands idle jobs
// to a negotiator, and records lifecycle events in the user log.
type Schedd struct {
	Name string

	kernel      *sim.Kernel
	log         *UserLog
	nextCluster int
	staged      []*Job // accepted but not yet submitted to the queue
	// idleQ is the schedd-wide idle queue; ownerQ indexes the same jobs
	// per owner for the negotiator's fair-share iteration. Both are
	// tombstoned FIFOs so MarkRunning is O(1) at any queue depth.
	idleQ  jobFIFO
	ownerQ map[string]*jobFIFO
	all    []*Job

	listeners []Listener

	// MaxIdleSubmit is DAGMan's submission throttle
	// (DAGMAN_MAX_JOBS_IDLE): jobs beyond this many idle stay *staged* —
	// accepted by DAGMan but not yet submitted to the queue (no 000
	// event) — and are released as idle jobs drain. The paper's bursting
	// policies act on exactly these "unsubmitted" jobs. 0 = unlimited.
	MaxIdleSubmit int

	// SubmitGate, if set, is consulted with the full job slice after
	// validation but before Submit mutates anything; a non-nil error
	// rejects the whole submission and leaves the queue and the jobs
	// untouched. The fault engine (internal/faults) uses it to inject
	// schedd submit errors, which DAGMan handles as node failures.
	SubmitGate func(jobs []*Job) error

	completed int
	removed   int

	obs   *obs.Registry
	met   scheddMetrics
	spans map[*Job]*obs.Span
}

// scheddMetrics holds pre-resolved instrument handles so the event hot
// path does no per-call name/label string assembly (obs lookups build a
// label-pair key on every call; at 10⁶ jobs that is the dominant
// allocation). Populated by SetObs; zero when observability is off.
type scheddMetrics struct {
	idleJobs   *obs.Gauge
	stagedJobs *obs.Gauge
	waitSecs   *obs.Histogram
	execSecs   *obs.Histogram
	rejected   *obs.Counter
	offloaded  *obs.Counter
	events     map[EventType]*obs.Counter
}

// NewSchedd returns a schedd writing events to log (log may be nil).
func NewSchedd(name string, k *sim.Kernel, log *UserLog) *Schedd {
	if log == nil {
		log = NewUserLog(nil)
	}
	return &Schedd{
		Name:        name,
		kernel:      k,
		log:         log,
		nextCluster: 1,
		idleQ:       jobFIFO{slot: slotIdle},
		ownerQ:      map[string]*jobFIFO{},
	}
}

// Log exposes the schedd's user log.
func (s *Schedd) Log() *UserLog { return s.log }

// SetObs attaches a metrics registry (nil is fine: all instrumentation
// becomes no-ops). Observability only records transitions the schedd
// already made — it never influences scheduling. Instrument handles are
// resolved once here rather than per event.
func (s *Schedd) SetObs(r *obs.Registry) {
	s.obs = r
	if r == nil {
		s.met = scheddMetrics{}
		return
	}
	s.met = scheddMetrics{
		idleJobs:   r.Gauge("fdw_schedd_idle_jobs", "schedd", s.Name),
		stagedJobs: r.Gauge("fdw_schedd_staged_jobs", "schedd", s.Name),
		waitSecs:   r.Histogram("fdw_schedd_wait_seconds", "schedd", s.Name),
		execSecs:   r.Histogram("fdw_schedd_exec_seconds", "schedd", s.Name),
		rejected:   r.Counter("fdw_schedd_submit_rejected_total", "schedd", s.Name),
		offloaded:  r.Counter("fdw_schedd_offloaded_total", "schedd", s.Name),
		events:     map[EventType]*obs.Counter{},
	}
	if s.spans == nil {
		s.spans = map[*Job]*obs.Span{}
	}
}

// JobSpan returns the lifecycle span opened for a submitted job (nil if
// observability is off or the job predates SetObs). The pool uses it to
// annotate transfer/execute stages it alone knows the durations of.
func (s *Schedd) JobSpan(j *Job) *obs.Span { return s.spans[j] }

// queueGauges refreshes the queue-depth gauges after any queue change.
func (s *Schedd) queueGauges() {
	if s.obs == nil {
		return
	}
	s.met.idleJobs.Set(float64(s.idleQ.live))
	s.met.stagedJobs.Set(float64(len(s.staged)))
}

// insertIdle appends j to the idle queue (and its owner's queue).
func (s *Schedd) insertIdle(j *Job) {
	s.idleQ.push(j)
	q := s.ownerQ[j.Owner]
	if q == nil {
		q = &jobFIFO{slot: slotOwner}
		s.ownerQ[j.Owner] = q
	}
	q.push(j)
}

// removeIdle drops j from both idle structures. It reports whether j
// was queued.
func (s *Schedd) removeIdle(j *Job) bool {
	if !s.idleQ.remove(j) {
		return false
	}
	if q := s.ownerQ[j.Owner]; q != nil {
		q.remove(j)
	}
	return true
}

// Subscribe registers a listener for job state transitions.
func (s *Schedd) Subscribe(fn Listener) { s.listeners = append(s.listeners, fn) }

func (s *Schedd) notify(j *Job, ev EventType) {
	for _, fn := range s.listeners {
		fn(j, ev)
	}
}

// Submit accepts jobs under a fresh cluster id. Jobs enter the queue
// (000 event, SubmitTime stamped) immediately up to the MaxIdleSubmit
// throttle; the rest stay staged and are released as the queue drains.
// It returns the cluster id. Submission is atomic: the whole slice is
// validated (and the SubmitGate consulted) before any job is staged or
// a cluster id consumed, so a rejected submission leaves no trace.
func (s *Schedd) Submit(jobs []*Job) (int, error) {
	if len(jobs) == 0 {
		return 0, fmt.Errorf("htcondor: empty submission")
	}
	for i, j := range jobs {
		if j.Status != Idle && j.Status != 0 {
			return 0, fmt.Errorf("htcondor: job %d submitted in state %v", i, j.Status)
		}
	}
	if s.SubmitGate != nil {
		if err := s.SubmitGate(jobs); err != nil {
			if s.obs != nil {
				s.met.rejected.Inc()
			}
			return 0, err
		}
	}
	cluster := s.nextCluster
	s.nextCluster++
	for i, j := range jobs {
		j.Cluster = cluster
		j.Proc = i
		j.Status = Idle
		s.staged = append(s.staged, j)
		s.all = append(s.all, j)
	}
	s.pump()
	return cluster, nil
}

// pump releases staged jobs into the idle queue while the throttle
// allows, writing their 000 events with the release time.
func (s *Schedd) pump() {
	for len(s.staged) > 0 && (s.MaxIdleSubmit <= 0 || s.idleQ.live < s.MaxIdleSubmit) {
		j := s.staged[0]
		s.staged = s.staged[1:]
		j.SubmitTime = s.kernel.Now()
		s.insertIdle(j)
		if s.obs != nil {
			sp := s.obs.StartSpan("job", j.ID())
			sp.Annotate("submit")
			s.spans[j] = sp
		}
		s.appendEvent(j, EventSubmit, s.Name)
		s.notify(j, EventSubmit)
	}
	s.queueGauges()
}

// StagedCount returns jobs accepted but not yet submitted — the
// "unsubmitted" jobs the paper's bursting policies 1 and 3 offload.
func (s *Schedd) StagedCount() int { return len(s.staged) }

// PopStaged removes and returns the last staged job, or nil if none
// (used by the bursting simulator to offload unsubmitted work).
func (s *Schedd) PopStaged() *Job {
	if len(s.staged) == 0 {
		return nil
	}
	j := s.staged[len(s.staged)-1]
	s.staged = s.staged[:len(s.staged)-1]
	j.Status = Removed
	s.removed++
	if s.obs != nil {
		s.met.offloaded.Inc()
		s.queueGauges()
	}
	return j
}

func (s *Schedd) appendEvent(j *Job, t EventType, host string) {
	if s.obs != nil {
		c := s.met.events[t]
		if c == nil {
			c = s.obs.Counter("fdw_schedd_events_total", "schedd", s.Name, "type", t.String())
			s.met.events[t] = c
		}
		c.Inc()
	}
	_ = s.log.Append(JobEvent{
		Type:    t,
		Cluster: j.Cluster,
		Proc:    j.Proc,
		At:      s.kernel.Now(),
		Host:    host,
	})
}

// IdleJobs returns the queued (submitted, idle) jobs in FIFO order.
// The slice is a fresh snapshot; hot paths should prefer QueueDepth,
// IdleOwners, and OwnerIdleCursor, which do not copy.
func (s *Schedd) IdleJobs() []*Job { return s.idleQ.snapshot() }

// QueueDepth returns the number of idle jobs.
func (s *Schedd) QueueDepth() int { return s.idleQ.live }

// IdleOwners returns the owners that currently have idle jobs here,
// sorted by name.
func (s *Schedd) IdleOwners() []string {
	var out []string
	for owner, q := range s.ownerQ {
		if q.live > 0 {
			out = append(out, owner)
		}
	}
	sort.Strings(out)
	return out
}

// OwnerIdleCursor opens a cursor over owner's idle jobs in FIFO order,
// bounded to jobs queued at the time of the call. The cursor stays
// valid across claims (removals) but not across new submissions or
// evictions, so it must be consumed within one negotiation cycle.
func (s *Schedd) OwnerIdleCursor(owner string) IdleCursor {
	q := s.ownerQ[owner]
	if q == nil {
		return IdleCursor{}
	}
	return IdleCursor{f: q, end: len(q.jobs)}
}

// RunningCount returns the number of currently running jobs.
func (s *Schedd) RunningCount() int {
	n := 0
	for _, j := range s.all {
		if j.Status == Running {
			n++
		}
	}
	return n
}

// Completed returns how many jobs have terminated successfully.
func (s *Schedd) Completed() int { return s.completed }

// AllJobs returns every job ever submitted, in submission order.
func (s *Schedd) AllJobs() []*Job { return s.all }

// Done reports whether every accepted job has finished (completed or
// removed) and nothing remains staged.
func (s *Schedd) Done() bool {
	return len(s.staged) == 0 && s.completed+s.removed == len(s.all)
}

func (s *Schedd) dropStaged(j *Job) bool {
	for i, q := range s.staged {
		if q == j {
			s.staged = append(s.staged[:i], s.staged[i+1:]...)
			return true
		}
	}
	return false
}

// MarkRunning transitions an idle job to running on the named host.
// The negotiator calls this when a match is claimed.
func (s *Schedd) MarkRunning(j *Job, host string) error {
	if j.Status != Idle {
		return fmt.Errorf("htcondor: MarkRunning on %v job %s", j.Status, j.ID())
	}
	if !s.removeIdle(j) {
		return fmt.Errorf("htcondor: job %s not in idle queue", j.ID())
	}
	j.Status = Running
	j.StartTime = s.kernel.Now()
	j.Site = host
	if s.obs != nil {
		// Guard the lookup: jobs submitted before SetObs have no span.
		if sp := s.spans[j]; sp != nil {
			sp.Annotate("match")
		}
		s.met.waitSecs.Observe(float64(j.StartTime - j.SubmitTime))
		s.queueGauges()
	}
	s.appendEvent(j, EventExecute, host)
	s.notify(j, EventExecute)
	return nil
}

// MarkCompleted finalizes a running job.
func (s *Schedd) MarkCompleted(j *Job, exitCode int) error {
	if j.Status != Running {
		return fmt.Errorf("htcondor: MarkCompleted on %v job %s", j.Status, j.ID())
	}
	j.Status = Completed
	j.EndTime = s.kernel.Now()
	j.ExitCode = exitCode
	s.completed++
	if s.obs != nil {
		s.met.execSecs.Observe(float64(j.EndTime - j.StartTime))
		if sp := s.spans[j]; sp != nil {
			sp.End("completed")
			delete(s.spans, j)
		}
	}
	s.appendEvent(j, EventTerminated, j.Site)
	s.pump()
	s.notify(j, EventTerminated)
	return nil
}

// MarkEvicted returns a running job to the idle queue (glidein
// preemption / shutdown). The job will renegotiate.
func (s *Schedd) MarkEvicted(j *Job) error {
	if j.Status != Running {
		return fmt.Errorf("htcondor: MarkEvicted on %v job %s", j.Status, j.ID())
	}
	j.Status = Idle
	j.Evictions++
	j.Site = ""
	s.insertIdle(j)
	if s.obs != nil {
		if sp := s.spans[j]; sp != nil {
			sp.Annotate("evicted")
		}
		s.queueGauges()
	}
	s.appendEvent(j, EventEvicted, "")
	s.notify(j, EventEvicted)
	return nil
}

// Remove aborts a job (condor_rm): idle jobs leave the queue (staged
// jobs leave the staging buffer), running jobs are stopped by the
// caller first. The bursting simulator's Policy 2 removes long-queued
// jobs this way before offloading them; the recovery layer removes
// losing hedge attempts.
func (s *Schedd) Remove(j *Job) error {
	switch j.Status {
	case Idle:
		if !s.removeIdle(j) && !s.dropStaged(j) {
			return fmt.Errorf("htcondor: job %s not in idle queue", j.ID())
		}
	case Running:
		return fmt.Errorf("htcondor: remove running job %s (evict first)", j.ID())
	case Removed, Completed:
		return fmt.Errorf("htcondor: remove finished job %s", j.ID())
	}
	j.Status = Removed
	j.EndTime = s.kernel.Now()
	s.removed++
	if sp := s.spans[j]; sp != nil {
		sp.End("removed")
		delete(s.spans, j)
	}
	s.appendEvent(j, EventAborted, "")
	s.pump()
	s.notify(j, EventAborted)
	return nil
}

// AbortRunning transitions a running job straight to Removed. The
// caller must already have torn down the job's claim (the pool's
// CancelClaim) — this is the condor_rm of a running job whose slot the
// recovery layer reclaimed, e.g. the losing attempt of a hedge pair.
func (s *Schedd) AbortRunning(j *Job) error {
	if j.Status != Running {
		return fmt.Errorf("htcondor: AbortRunning on %v job %s", j.Status, j.ID())
	}
	j.Status = Removed
	j.EndTime = s.kernel.Now()
	s.removed++
	if sp := s.spans[j]; sp != nil {
		sp.End("removed")
		delete(s.spans, j)
	}
	s.appendEvent(j, EventAborted, j.Site)
	s.pump()
	s.notify(j, EventAborted)
	return nil
}

// AdoptResult finalizes j as completed with the given exit code even
// though the schedd never saw the attempt finish: the recovery layer
// grafts the winning hedge clone's result onto the original job. Idle
// originals (queued or staged) simply leave the queue; running
// originals must have had their claim torn down via the pool's
// CancelClaim first.
func (s *Schedd) AdoptResult(j *Job, exitCode int) error {
	switch j.Status {
	case Idle:
		if !s.removeIdle(j) && !s.dropStaged(j) {
			return fmt.Errorf("htcondor: AdoptResult on unknown idle job %s", j.ID())
		}
	case Running:
		// Claim already cancelled by the caller.
	default:
		return fmt.Errorf("htcondor: AdoptResult on %v job %s", j.Status, j.ID())
	}
	j.Status = Completed
	j.EndTime = s.kernel.Now()
	j.ExitCode = exitCode
	s.completed++
	if s.obs != nil {
		if sp := s.spans[j]; sp != nil {
			sp.End("adopted")
			delete(s.spans, j)
		}
	}
	s.appendEvent(j, EventTerminated, j.Site)
	s.pump()
	s.notify(j, EventTerminated)
	return nil
}
