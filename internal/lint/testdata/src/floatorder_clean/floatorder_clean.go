// Package floatorder_clean reduces floats only in pinned orders: index
// order, sorted keys, per-iteration accumulators, and the per-worker
// partial-sums pattern the parallel kernels use.
package floatorder_clean

import (
	"sort"
	"sync"
)

// SliceSum: slices iterate in index order.
func SliceSum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// SortedMapSum pins the order by iterating sorted keys.
func SortedMapSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// KeySums accumulates per key into a fresh accumulator each
// iteration: nothing crosses map-iteration boundaries.
func KeySums(series map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(series))
	for k, xs := range series {
		var s float64
		for _, x := range xs {
			s += x
		}
		out[k] = s
	}
	return out
}

// CountSamples: integer addition is associative; order cannot change
// the total.
func CountSamples(m map[string][]float64) int {
	n := 0
	for _, xs := range m {
		n += len(xs)
	}
	return n
}

// TiledMatVec accumulates each output element through indexed slots —
// the blocked-kernel shape: workers own disjoint row ranges, every
// out[i] is one element's fixed-order reduction, and no accumulation
// crosses a worker boundary. This is the structure the blocked GEMM
// and Cholesky kernels use (internal/linalg/blocked.go).
func TiledMatVec(a []float64, n int, x []float64, workers int) []float64 {
	out := make([]float64, n)
	const tile = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				for k0 := 0; k0 < n; k0 += tile {
					k1 := k0 + tile
					if k1 > n {
						k1 = n
					}
					for k := k0; k < k1; k++ {
						out[i] += a[i*n+k] * x[k]
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return out
}

// PerWorker accumulates into disjoint slots and reduces the partials
// in index order — the blessed parallel-reduction shape.
func PerWorker(xs []float64, workers int) float64 {
	parts := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(xs); i += workers {
				parts[w] += xs[i]
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for _, p := range parts {
		total += p
	}
	return total
}
