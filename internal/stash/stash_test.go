package stash

import (
	"testing"
	"testing/quick"
)

func newCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{OriginBps: 100, CacheBps: 1000, LatencyS: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestColdThenWarm(t *testing.T) {
	c := newCache(t)
	obj := Object{Key: "image.sif", Bytes: 1000}
	cold := c.TransferSeconds("siteA", obj)
	c.Commit("siteA", obj.Key)
	warm := c.TransferSeconds("siteA", obj)
	if cold != 2+10 {
		t.Fatalf("cold = %v, want 12", cold)
	}
	if warm != 2+1 {
		t.Fatalf("warm = %v, want 3", warm)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits %d misses %d", hits, misses)
	}
}

// TestTransferDoesNotWarmWithoutCommit pins the warm-on-failure fix:
// pricing a transfer must not warm the cache — only Commit (a completed
// delivery) may, so an aborted transfer's retry pays origin bandwidth.
func TestTransferDoesNotWarmWithoutCommit(t *testing.T) {
	c := newCache(t)
	obj := Object{Key: "gf.mseed", Bytes: 1000}
	first := c.TransferSeconds("siteA", obj)
	second := c.TransferSeconds("siteA", obj)
	if first != second || first != 2+10 {
		t.Fatalf("uncommitted refetch = %v then %v, want cold 12 both times", first, second)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("hits %d misses %d, want 0/2", hits, misses)
	}
}

func TestSitesAreIndependent(t *testing.T) {
	c := newCache(t)
	obj := Object{Key: "gf.mseed", Bytes: 500}
	c.TransferSeconds("siteA", obj)
	c.Commit("siteA", obj.Key)
	if got := c.TransferSeconds("siteB", obj); got != 2+5 {
		t.Fatalf("siteB first fetch = %v, want cold 7", got)
	}
	if got := c.TransferSeconds("siteA", obj); got != 2+0.5 {
		t.Fatalf("siteA warm fetch = %v, want 2.5", got)
	}
}

func TestPrewarm(t *testing.T) {
	c := newCache(t)
	c.Prewarm("siteA", "image.sif")
	got := c.TransferSeconds("siteA", Object{Key: "image.sif", Bytes: 1000})
	if got != 2+1 {
		t.Fatalf("prewarmed fetch = %v, want 3", got)
	}
	if hr := c.HitRate(); hr != 1 {
		t.Fatalf("hit rate %v, want 1", hr)
	}
}

func TestZeroAndNegativeBytes(t *testing.T) {
	c := newCache(t)
	if got := c.TransferSeconds("s", Object{Key: "empty", Bytes: 0}); got != 2 {
		t.Fatalf("zero bytes = %v, want latency only", got)
	}
	if got := c.TransferSeconds("s", Object{Key: "neg", Bytes: -5}); got != 2 {
		t.Fatalf("negative bytes = %v, want latency only", got)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{OriginBps: 0, CacheBps: 1, LatencyS: 0},
		{OriginBps: 1, CacheBps: 0, LatencyS: 0},
		{OriginBps: 1, CacheBps: 1, LatencyS: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("invalid config accepted: %+v", cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHitRateNoTraffic(t *testing.T) {
	if newCache(t).HitRate() != 0 {
		t.Fatal("hit rate of empty cache should be 0")
	}
}

func TestPropertyWarmNeverSlowerThanCold(t *testing.T) {
	f := func(bytesRaw uint32) bool {
		c, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		obj := Object{Key: "k", Bytes: int64(bytesRaw)}
		cold := c.TransferSeconds("s", obj)
		c.Commit("s", obj.Key)
		warm := c.TransferSeconds("s", obj)
		return warm <= cold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
