package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFqgenWritesProducts(t *testing.T) {
	dir := t.TempDir()
	if err := run(8.1, 2, 5, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"rupture.csv", "waveforms.mseed"} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

func TestFqgenNoOutputDir(t *testing.T) {
	if err := run(8.0, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
}

func TestFqgenRejectsBadMagnitude(t *testing.T) {
	if err := run(5.0, 2, 1, ""); err == nil {
		t.Fatal("Mw 5 accepted")
	}
}
