// Package stats provides the descriptive statistics and the exact
// aggregate formulas (1)–(7) used in the paper's experimental
// methodology (Adair et al., SC-W 2023, §4).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SD returns the population standard deviation of xs
// (the paper reports SDs over its three repetitions).
func SD(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Range returns Max - Min (the paper quotes e.g. a 33.4 h range).
func Range(xs []float64) float64 { return Max(xs) - Min(xs) }

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. It copies xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary bundles the descriptive statistics the paper reports for each
// dataset: average, SD, min, max.
type Summary struct {
	N    int
	Mean float64
	SD   float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		SD:   SD(xs),
		Min:  Min(xs),
		Max:  Max(xs),
	}
}

// AvgTotalRuntime implements formula (1): the mean of the repetition
// runtimes (r1+r2+r3)/3. It is Mean with the paper's name, kept so the
// experiment code reads like the methodology section.
func AvgTotalRuntime(runtimes []float64) float64 { return Mean(runtimes) }

// AvgTotalThroughput implements formula (2): mean over repetitions of
// jobs[i]/runtimes[i]. Units follow the inputs (the paper uses
// jobs/minute). Repetitions with non-positive runtime are skipped.
func AvgTotalThroughput(jobs, runtimes []float64) float64 {
	n := len(jobs)
	if len(runtimes) < n {
		n = len(runtimes)
	}
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		if runtimes[i] > 0 {
			sum += jobs[i] / runtimes[i]
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// AvgRuntimeAcrossDAGMans implements formula (3): sum of per-DAGMan
// runtimes divided by the number of DAGMans N (across all repetitions).
func AvgRuntimeAcrossDAGMans(runtimes []float64) float64 { return Mean(runtimes) }

// AvgThroughputAcrossDAGMans implements formula (4): per-DAGMan total
// throughputs j_i/r_i summed and divided by the number of DAGMans.
func AvgThroughputAcrossDAGMans(jobs, runtimes []float64) float64 {
	return AvgTotalThroughput(jobs, runtimes)
}

// InstantThroughput implements formula (5): completed jobs divided by
// elapsed runtime in minutes. Zero elapsed time yields 0.
func InstantThroughput(completedJobs int, elapsedMinutes float64) float64 {
	if elapsedMinutes <= 0 {
		return 0
	}
	return float64(completedJobs) / elapsedMinutes
}

// AvgInstantThroughput implements formula (6): the mean of the
// per-second instant throughput series.
func AvgInstantThroughput(perSecond []float64) float64 { return Mean(perSecond) }

// BurstCost implements formula (7): simulated VDC minutes used times the
// cost per minute, in USD.
func BurstCost(vdcMinutes, costPerMinute float64) float64 {
	return vdcMinutes * costPerMinute
}

// PctChange returns the percentage change from old to new, e.g. the
// paper's "230.9% increase in runtime". Zero old value yields 0.
func PctChange(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// PctDecrease returns the percentage decrease from old to new (positive
// when new < old), e.g. the paper's "56.8% decrease in runtime".
func PctDecrease(oldV, newV float64) float64 { return -PctChange(oldV, newV) }
