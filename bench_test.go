package fdw_test

// One benchmark per table/figure in the paper's evaluation (see
// DESIGN.md §4). Each bench regenerates its figure at a reduced scale
// so the full suite runs in seconds; `go run ./cmd/fdwexp -scale 1 all`
// regenerates the paper-scale numbers recorded in EXPERIMENTS.md.

import (
	"fmt"
	"math"
	"testing"

	"fdw"
	"fdw/internal/fakequakes"
	"fdw/internal/geom"
	"fdw/internal/linalg"
	"fdw/internal/sim"
)

// benchOptions shrinks the workloads: one repetition, 3% scale.
func benchOptions() fdw.ExperimentOptions {
	opt := fdw.DefaultExperimentOptions()
	opt.Seeds = []uint64{11}
	opt.Scale = 0.03
	return opt
}

// BenchmarkFig1RuptureWaveform generates the Fig. 1 data products with
// the real numeric kernels: a stochastic rupture and GNSS waveforms.
func BenchmarkFig1RuptureWaveform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fdw.Fig1(uint64(i+1), 8.1, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2QuantitySweep reruns the increasing-quantities
// experiment: six waveform quantities × two station lists.
func BenchmarkFig2QuantitySweep(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Fig2(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ConcurrentDAGMans reruns the 1/2/4/8 concurrent-DAGMan
// partitioning comparison.
func BenchmarkFig3ConcurrentDAGMans(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Fig3(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4JobTimeSeries reruns the per-job execution/wait
// distribution and per-second footprint collection.
func BenchmarkFig4JobTimeSeries(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Fig4(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Bursting reruns the uncapped probe×queue bursting sweep
// over two generated batch traces.
func BenchmarkFig5Bursting(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Fig5(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6BurstingCost reruns the sweep with the 30% cap — the
// Fig. 6 cost/runtime comparison.
func BenchmarkFig6BurstingCost(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Fig6(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadlineSpeedup reruns the §6 FDW-vs-single-machine
// comparison and the 1,024→50,000 throughput gain.
func BenchmarkHeadlineSpeedup(b *testing.B) {
	opt := benchOptions()
	opt.Scale = 0.1
	for i := 0; i < b.N; i++ {
		opt.Seeds = []uint64{uint64(11 + i)}
		if _, err := fdw.Headline(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- numeric-kernel benchmarks (see BENCH_kernels.json for the
// recorded baseline) -------------------------------------------------
//
// The serial/parallel pairs quantify the multi-core speedup of the
// linalg kernels; both variants return bit-identical results, so the
// only difference is wall time.

// kernelSizes straddle the paper-scale covariance sizes (a Mw 8–9 patch
// on the 10 km Chilean mesh is a few hundred to ~1,000 subfaults).
var kernelSizes = []int{256, 512, 1024}

// benchSPD builds a covariance-like SPD matrix (exponential decay).
func benchSPD(n int) *linalg.Matrix {
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Data[i*n+j] = math.Exp(-math.Abs(float64(i-j)) / (float64(n) / 8))
		}
	}
	return m.AddDiag(1e-9)
}

func benchRandom(rows, cols int, seed uint64) *linalg.Matrix {
	rng := sim.NewRNG(seed)
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Uniform(-1, 1)
	}
	return m
}

// BenchmarkCholesky factorizes covariance-sized SPD matrices.
// serial/parallel run the blocked kernel; reference runs the retained
// unblocked executable spec (reference.go).
func BenchmarkCholesky(b *testing.B) {
	for _, n := range kernelSizes {
		m := benchSPD(n)
		b.Run(fmt.Sprintf("serial/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linalg.Cholesky(m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linalg.ParallelCholesky(m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reference/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linalg.ReferenceCholesky(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatMul multiplies square dense matrices. serial/parallel
// run the blocked FMA kernel; reference runs the retained naive i-k-j
// executable spec (reference.go), quantifying the blocked speedup.
func BenchmarkMatMul(b *testing.B) {
	for _, n := range kernelSizes {
		x := benchRandom(n, n, 1)
		y := benchRandom(n, n, 2)
		b.Run(fmt.Sprintf("serial/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := x.Mul(y); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := x.ParallelMul(y); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reference/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := x.ReferenceMul(y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerateScenario runs the full FakeQuakes numeric pipeline
// (distance matrices, covariance, Cholesky, waveform synthesis) for a
// large-patch magnitude. The warm variant reuses the shared
// covariance-factor cache across iterations — the batch-of-ruptures
// case the cache exists for; cold forces a fresh O(n³) factorization
// every scenario, the pre-cache behaviour.
func BenchmarkGenerateScenario(b *testing.B) {
	const mw = 8.8 // large patch, sizeable covariance
	b.Run("warm-factor-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fdw.GenerateScenario(uint64(i+1), mw, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-factor-cache", func(b *testing.B) {
		old := fakequakes.DefaultFactorCache
		fakequakes.DefaultFactorCache = nil
		defer func() { fakequakes.DefaultFactorCache = old }()
		for i := 0; i < b.N; i++ {
			if _, err := fdw.GenerateScenario(uint64(i+1), mw, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGreens measures Phase B: cold computes the Green's-function
// kernels from scratch; warm recycles the persisted .npy via GFCache —
// the campaign-sharing-geometry case the cache exists for.
func BenchmarkGreens(b *testing.B) {
	cfg := geom.DefaultChileFault()
	cfg.SubfaultKm = 25
	fault, err := geom.BuildFault(cfg)
	if err != nil {
		b.Fatal(err)
	}
	stations := geom.FullChileanStations()[:4]
	dist := fakequakes.ComputeDistanceMatrices(fault, stations)
	gfCfg := fakequakes.DefaultGFConfig()
	b.Run("cold-compute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fakequakes.ComputeGreens(fault, stations, dist, gfCfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-gfcache", func(b *testing.B) {
		c := fakequakes.NewGFCache(b.TempDir())
		if _, _, err := c.LoadOrCompute(fault, stations, dist, gfCfg); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit, err := c.LoadOrCompute(fault, stations, dist, gfCfg); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
}

// BenchmarkWorkflow16k measures one full-scale 16,000-waveform DAGMan
// on the simulated pool — the unit of the paper's §4.2 experiment —
// to document simulator throughput (simulated hours per wall second).
func BenchmarkWorkflow16k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, err := fdw.NewEnv(uint64(31+i), fdw.DefaultPoolConfig())
		if err != nil {
			b.Fatal(err)
		}
		cfg := fdw.DefaultConfig()
		cfg.Name = "bench16k"
		cfg.Waveforms = 16000
		cfg.Seed = uint64(31 + i)
		w, err := fdw.NewWorkflow(cfg, env, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := fdw.RunBatch(env, []*fdw.Workflow{w}, 1000*3600); err != nil {
			b.Fatal(err)
		}
	}
}
