package htcondor

import (
	"fmt"
	"io"
)

// QueueSnapshot is a condor_q-style summary of a schedd's queue.
type QueueSnapshot struct {
	Schedd    string
	Staged    int // accepted by DAGMan, not yet submitted
	Idle      int
	Running   int
	Completed int
	Removed   int
	Held      int
	Total     int
}

// Snapshot summarizes the schedd's queue state.
func (s *Schedd) Snapshot() QueueSnapshot {
	snap := QueueSnapshot{
		Schedd:    s.Name,
		Staged:    len(s.staged),
		Idle:      s.idleQ.live,
		Completed: s.completed,
		Removed:   s.removed,
		Total:     len(s.all),
	}
	for _, j := range s.all {
		switch j.Status {
		case Running:
			snap.Running++
		case Held:
			snap.Held++
		}
	}
	return snap
}

// Print renders the snapshot condor_q style.
func (q QueueSnapshot) Print(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"-- Schedd: %s\nTotal for query: %d jobs; %d completed, %d removed, %d idle, %d running, %d held, %d staged\n",
		q.Schedd, q.Total, q.Completed, q.Removed, q.Idle, q.Running, q.Held, q.Staged)
	return err
}
