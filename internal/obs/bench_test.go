package obs

import "testing"

// BenchmarkObsCounterHot quantifies why hot loops cache instrument
// handles (DESIGN.md §12): "lookup" resolves the counter through the
// registry's locked name+label map on every increment — what the pool,
// schedd, executor, and stash hot paths used to do — while "cached"
// resolves the handle once and pays only the atomic add.
func BenchmarkObsCounterHot(b *testing.B) {
	b.Run("lookup", func(b *testing.B) {
		r := NewRegistry(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Counter("fdw_bench_events_total", "site", "uchicago", "type", "execute").Inc()
		}
	})
	b.Run("cached", func(b *testing.B) {
		r := NewRegistry(nil)
		c := r.Counter("fdw_bench_events_total", "site", "uchicago", "type", "execute")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
}
