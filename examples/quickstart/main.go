// Quickstart: run one FDW workflow end-to-end on the simulated Open
// Science Pool, then recompute its statistics from the HTCondor log —
// the minimal round trip through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"fdw"
)

func main() {
	// 1. A simulation environment: deterministic kernel + OSPool model.
	env, err := fdw.NewEnv(42, fdw.DefaultPoolConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Configure the workflow: 2,000 waveforms, the small (2-station)
	// Chilean input, matrices recycled.
	cfg := fdw.DefaultConfig()
	cfg.Name = "quickstart"
	cfg.Waveforms = 2000
	cfg.Stations = 2
	cfg.Seed = 42

	// 3. Wire it up, capturing the HTCondor user log.
	var condorLog bytes.Buffer
	w, err := fdw.NewWorkflow(cfg, env, &condorLog)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run to completion (48 simulated hours is ample headroom).
	if err := fdw.RunBatch(env, []*fdw.Workflow{w}, 48*3600); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow %q: %.2f simulated hours, %.1f jobs/min\n",
		cfg.Name, w.RuntimeHours(), w.ThroughputJPM())

	// 5. FDW's monitoring: parse the log back into batch statistics,
	// exactly what the paper's shell scripts do with condor logs.
	stats, err := fdw.AnalyzeLog(cfg.Name, &condorLog)
	if err != nil {
		log.Fatal(err)
	}
	if err := stats.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
