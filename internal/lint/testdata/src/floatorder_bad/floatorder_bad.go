// Package floatorder_bad sums floats in orders Go does not pin down:
// map iteration, channel arrival, and goroutine completion. Float
// addition is not associative, so each of these sums can change bits
// from run to run.
package floatorder_bad

import "sync"

// MapSum accumulates in map iteration order.
func MapSum(weights map[string]float64) float64 {
	var total float64
	for _, w := range weights {
		total += w
	}
	return total
}

// MapBins spreads into bins; each bin still receives its addends in
// map order.
func MapBins(readings map[string]float64, bins map[int]float64) {
	for k, v := range readings {
		bins[len(k)%4] += v
	}
}

// ChanSum accumulates in arrival order.
func ChanSum(ch chan float64) float64 {
	var s float64
	for v := range ch {
		s += v
	}
	return s
}

// RecvLoop drains n results in completion order.
func RecvLoop(results chan float64, n int) float64 {
	var total float64
	for i := 0; i < n; i++ {
		total += <-results
	}
	return total
}

// GoSum lets the scheduler decide the order of additions.
func GoSum(xs []float64) float64 {
	var sum float64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			mu.Lock()
			sum += x
			mu.Unlock()
		}(x)
	}
	wg.Wait()
	return sum
}
