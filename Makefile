# Convenience targets; `make check` is the pre-PR gate (DESIGN.md §7).

.PHONY: check test bench build lint

check:
	sh scripts/check.sh

# Run the determinism & invariant analyzers (DESIGN.md §9). Complements
# go vet; also part of `make check` and the CI lint job.
lint:
	go run ./cmd/fdwlint ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -run '^$$' -bench . -benchmem .
