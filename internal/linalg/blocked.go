package linalg

import "math"

// Cache-blocked kernels. The arithmetic contract that makes blocking
// safe for determinism is deliberately simple:
//
//	out[i][j] = fma-fold over k = 0..K-1 of a[i][k]·b[k][j]
//
// Every output element is a single fused-multiply-add chain in strictly
// increasing k, so the result is independent of every blocking factor
// (KC, NC, micro-tile shape) and of how rows are partitioned across
// workers — tiles only decide *which* element a loop touches next,
// never the order of one element's reduction. The same chain is
// produced by three interchangeable paths, property-tested for exact
// bit equality in blocked_test.go:
//
//   - the AVX2+FMA assembly micro-kernel (kernel_amd64.s), whose
//     VFMADD231PD applies the identical fused rounding in hardware;
//   - goKern4x8, the portable micro-kernel built on math.FMA, which Go
//     guarantees to round exactly once;
//   - the scalar math.FMA edge loops that absorb non-multiple-of-tile
//     fringes.
//
// Fused rounding differs from the reference kernels' two-rounding
// multiply-then-add, which is the one-time golden repin this package
// made when the blocked kernels landed (DESIGN.md §15); reference.go
// keeps the old kernels as the numerical spec.
const (
	gemmMR = 4   // micro-tile rows: four broadcast A scalars in flight
	gemmNR = 8   // micro-tile cols: two 4-wide vector accumulators
	gemmKC = 256 // k panel, keeps the packed B panel L2-resident
	gemmNC = 256 // j panel, bounds the pack buffer at KC·NC floats
)

// gemmAcc accumulates c += a·b (bTrans false) or c += a·bᵀ (bTrans
// true) over an M×N×K product with leading dimensions lda/ldb/ldc.
// B is repacked per (k-panel, j-panel) into contiguous gemmNR-wide
// column tiles so the micro-kernel streams it with unit stride; the
// transposed flavor exists for the Cholesky panel update, which
// multiplies a trailing block by a panel's transpose without
// materializing it. When par is set, row quads fan out on the shared
// pool; packing stays on the caller so every worker reads one shared
// read-only panel.
func gemmAcc(mM, nN, kK int, a []float64, lda int, b []float64, ldb int, bTrans bool, c []float64, ldc int, par bool) {
	if mM <= 0 || nN <= 0 || kK <= 0 {
		return
	}
	kcMax := min(gemmKC, kK)
	ncMax := min(gemmNC, (nN/gemmNR)*gemmNR)
	var bp []float64
	if ncMax > 0 {
		bp = make([]float64, kcMax*ncMax)
	}
	for k0 := 0; k0 < kK; k0 += gemmKC {
		kc := min(gemmKC, kK-k0)
		for j0 := 0; j0 < nN; j0 += gemmNC {
			nc := min(gemmNC, nN-j0)
			ntiles := nc / gemmNR
			packB(bp, b, ldb, bTrans, k0, kc, j0, ntiles)
			quads := mM / gemmMR
			runQuads := func(lo, hi int) {
				for q := lo; q < hi; q++ {
					i := q * gemmMR
					for t := 0; t < ntiles; t++ {
						kern4x8(kc, a[i*lda+k0:], lda, bp[t*kc*gemmNR:], c[i*ldc+j0+t*gemmNR:], ldc)
					}
					for j := j0 + ntiles*gemmNR; j < j0+nc; j++ {
						for r := i; r < i+gemmMR; r++ {
							c[r*ldc+j] = fmaDotEdge(kc, a[r*lda+k0:], b, ldb, bTrans, k0, j, c[r*ldc+j])
						}
					}
				}
			}
			if par && quads > 1 {
				ParallelFor(quads, 1, runQuads)
			} else if quads > 0 {
				runQuads(0, quads)
			}
			for i := quads * gemmMR; i < mM; i++ {
				for j := j0; j < j0+nc; j++ {
					c[i*ldc+j] = fmaDotEdge(kc, a[i*lda+k0:], b, ldb, bTrans, k0, j, c[i*ldc+j])
				}
			}
		}
	}
}

// packB copies the (k0..k0+kc)×(j0..j0+ntiles·NR) panel of B — or of
// Bᵀ — into gemmNR-wide column tiles laid out k-major, the layout the
// micro-kernel consumes with stride gemmNR.
func packB(bp, b []float64, ldb int, bTrans bool, k0, kc, j0, ntiles int) {
	for t := 0; t < ntiles; t++ {
		dst := bp[t*kc*gemmNR:]
		if bTrans {
			for k := 0; k < kc; k++ {
				col := k0 + k
				for j := 0; j < gemmNR; j++ {
					dst[k*gemmNR+j] = b[(j0+t*gemmNR+j)*ldb+col]
				}
			}
		} else {
			src := b[k0*ldb+j0+t*gemmNR:]
			for k := 0; k < kc; k++ {
				copy(dst[k*gemmNR:k*gemmNR+gemmNR], src[k*ldb:k*ldb+gemmNR])
			}
		}
	}
}

// fmaDotEdge extends acc by the kc-term fused chain for one fringe
// element — the same per-element order the micro-kernel applies.
func fmaDotEdge(kc int, arow, b []float64, ldb int, bTrans bool, k0, j int, acc float64) float64 {
	if bTrans {
		brow := b[j*ldb+k0:]
		for k := 0; k < kc; k++ {
			acc = math.FMA(arow[k], brow[k], acc)
		}
		return acc
	}
	for k := 0; k < kc; k++ {
		acc = math.FMA(arow[k], b[(k0+k)*ldb+j], acc)
	}
	return acc
}

// goKern4x8 is the portable micro-kernel: a 4×8 output tile updated by
// a kc-deep fused-multiply-add chain per element. math.FMA rounds
// exactly once per term — the same fused semantics as the VFMADD
// assembly path — so both kernels produce identical bits and the
// choice between them is invisible to callers.
func goKern4x8(kc int, a []float64, lda int, b []float64, c []float64, ldc int) {
	for j := 0; j < gemmNR; j++ {
		c0, c1, c2, c3 := c[j], c[ldc+j], c[2*ldc+j], c[3*ldc+j]
		for k := 0; k < kc; k++ {
			bv := b[k*gemmNR+j]
			c0 = math.FMA(a[k], bv, c0)
			c1 = math.FMA(a[lda+k], bv, c1)
			c2 = math.FMA(a[2*lda+k], bv, c2)
			c3 = math.FMA(a[3*lda+k], bv, c3)
		}
		c[j], c[ldc+j], c[2*ldc+j], c[3*ldc+j] = c0, c1, c2, c3
	}
}

// cholNB is the Cholesky panel width: wide enough that the GEMM update
// dominates (it carries ~n/NB of the flops per column), narrow enough
// that the scalar in-panel dots stay a small fraction of the total.
// Bits depend on this constant — it decides which prefix terms ride
// the fused GEMM chain versus the plain panel dot — so it is part of
// the kernel definition, not a tuning knob to flip casually.
const cholNB = 32

// blockedCholesky is the shared core of Cholesky and ParallelCholesky:
// a left-looking panel factorization. For each NB-wide panel the bulk
// of the prefix — the dot products against all columns left of the
// panel — is one gemmAcc call (rows × NB × p flops through the
// micro-kernel); the remaining in-panel prefix terms use plain scalar
// dots. Per element the order is fixed by construction: fused chain
// over k < p, then plain chain over p ≤ k < j, then one subtraction —
// identical whether the row quads ran serial or parallel.
func blockedCholesky(m *Matrix, par bool) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, cholDimErr(m)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	if n == 0 {
		return l, nil
	}
	scratch := make([]float64, n*cholNB)
	for p := 0; p < n; p += cholNB {
		nb := min(cholNB, n-p)
		rows := n - p
		s := scratch[:rows*nb]
		for i := range s {
			s[i] = 0
		}
		if p > 0 {
			// S[i-p][jj] = Σ_{k<p} l[i][k]·l[p+jj][k] for all rows i ≥ p.
			gemmAcc(rows, nb, p, l.Data[p*n:], n, l.Data[p*n:], n, true, s, nb, par)
		}
		// Factor the nb×nb diagonal block serially (its columns are
		// sequentially dependent and the block is tiny).
		for jj := 0; jj < nb; jj++ {
			j := p + jj
			acc := s[jj*nb+jj]
			lj := l.Data[j*n+p : j*n+j]
			for _, v := range lj {
				acc += v * v
			}
			d := m.Data[j*n+j] - acc
			if d <= 0 || math.IsNaN(d) {
				return nil, ErrNotPositiveDefinite
			}
			ljj := math.Sqrt(d)
			l.Data[j*n+j] = ljj
			for i := j + 1; i < p+nb; i++ {
				acc := s[(i-p)*nb+jj]
				li := l.Data[i*n+p : i*n+j]
				for k, v := range li {
					acc += v * lj[k]
				}
				l.Data[i*n+j] = (m.Data[i*n+j] - acc) / ljj
			}
		}
		// Rows below the panel: each computes its nb entries left to
		// right. Rows are independent — the parallel cut for this phase.
		tail := n - (p + nb)
		if tail <= 0 {
			continue
		}
		body := func(lo, hi int) {
			for i := p + nb + lo; i < p+nb+hi; i++ {
				si := s[(i-p)*nb:]
				li := l.Data[i*n:]
				for jj := 0; jj < nb; jj++ {
					j := p + jj
					lj := l.Data[j*n:]
					acc := si[jj]
					for k := p; k < j; k++ {
						acc += li[k] * lj[k]
					}
					li[j] = (m.Data[i*n+j] - acc) / lj[j]
				}
			}
		}
		if par && tail >= rowGrain {
			ParallelFor(tail, rowGrain, body)
		} else {
			body(0, tail)
		}
	}
	return l, nil
}
