// Command fdwexp regenerates the paper's evaluation: one subcommand
// per figure plus the §6 headline numbers.
//
// Usage:
//
//	fdwexp [flags] fig1|fig2|fig3|fig4|fig5|fig6|headline|ablate|policy3|elastic|chaos|all
//
// Flags:
//
//	-scale f   workload scale (1.0 = the paper's quantities)
//	-seeds n   repetitions (the paper uses 3)
//	-j n       concurrent simulations (default: all cores; output is
//	           byte-identical for any -j, so -j only changes wall time)
//
// chaos runs the fault-injection sweep as a recovery A/B matrix
// (DESIGN.md §10–11): the Fig. 2 workload under every standard fault
// plan, each cell once with the adaptive recovery layer off and once
// with it on, with termination and job-conservation invariants
// enforced per cell and per-plan makespan / wasted-CPU deltas printed
// at the end.
//
// fig5 runs the bursting sweep uncapped (VDC usage, §5.3.1–5.3.2);
// fig6 reruns it with the paper's 30% bursted-job cap for the cost and
// runtime comparison (§5.3.3–5.3.4).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fdw"
	"fdw/internal/expt"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1.0, "workload scale factor (0,1]")
		seeds   = flag.Int("seeds", 3, "number of repetitions")
		csvDir  = flag.String("csv", "", "also write the figure data as CSV into this directory")
		workers = flag.Int("j", 0, "concurrent simulations (0 = all cores); any value gives byte-identical output")
		metrics = flag.String("metrics", "", "write a JSON metrics snapshot here after the experiments")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fdwexp [flags] fig1|fig2|fig3|fig4|fig5|fig6|headline|ablate|policy3|elastic|chaos|all")
		os.Exit(2)
	}
	opt := fdw.DefaultExperimentOptions()
	opt.Scale = *scale
	opt.Out = os.Stdout
	opt.Workers = *workers
	opt.Seeds = nil
	for i := 0; i < *seeds; i++ {
		opt.Seeds = append(opt.Seeds, uint64(11+13*i))
	}
	if *metrics != "" {
		// One registry shared by every simulated environment: counter
		// totals are exact at any -j; report/CSV bytes are unchanged.
		opt.Obs = fdw.NewMetrics(nil)
		fdw.MeterFactorCache(opt.Obs)
	}
	if err := dispatch(flag.Arg(0), opt, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "fdwexp:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, opt.Obs); err != nil {
			fmt.Fprintln(os.Stderr, "fdwexp:", err)
			os.Exit(1)
		}
	}
}

// writeMetrics dumps the shared registry as a JSON snapshot.
func writeMetrics(path string, reg *fdw.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSV saves figure data under dir when -csv is set.
func writeCSV(dir, name string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func dispatch(cmd string, opt fdw.ExperimentOptions, csvDir string) error {
	switch cmd {
	case "fig1":
		return runFig1()
	case "fig2":
		rows, err := fdw.Fig2(opt)
		if err != nil {
			return err
		}
		return writeCSV(csvDir, "fig2.csv", func(w io.Writer) error { return expt.WriteFig2CSV(w, rows) })
	case "fig3":
		rows, err := fdw.Fig3(opt)
		if err != nil {
			return err
		}
		return writeCSV(csvDir, "fig3.csv", func(w io.Writer) error { return expt.WriteFig3CSV(w, rows) })
	case "fig4":
		data, err := fdw.Fig4(opt)
		if err != nil {
			return err
		}
		for _, d := range data {
			d := d
			name := fmt.Sprintf("fig4_n%d.csv", d.DAGMans)
			if err := writeCSV(csvDir, name, func(w io.Writer) error { return expt.WriteFig4SeriesCSV(w, d) }); err != nil {
				return err
			}
		}
		return nil
	case "fig5":
		cells, err := fdw.Fig5(opt)
		if err != nil {
			return err
		}
		return writeCSV(csvDir, "fig5.csv", func(w io.Writer) error { return expt.WriteFig5CSV(w, cells) })
	case "fig6":
		cells, err := fdw.Fig6(opt)
		if err != nil {
			return err
		}
		return writeCSV(csvDir, "fig6.csv", func(w io.Writer) error { return expt.WriteFig5CSV(w, cells) })
	case "headline":
		_, err := fdw.Headline(opt)
		return err
	case "ablate":
		if _, err := fdw.AblationRecycling(opt); err != nil {
			return err
		}
		if _, err := fdw.AblationStash(opt); err != nil {
			return err
		}
		if _, err := fdw.AblationFanout(opt); err != nil {
			return err
		}
		_, err := fdw.AblationChurn(opt)
		return err
	case "policy3":
		_, err := fdw.Policy3Sweep(opt)
		return err
	case "elastic":
		_, err := fdw.ElasticComparison(opt)
		return err
	case "chaos":
		rows, err := fdw.Chaos(opt)
		if err != nil {
			return err
		}
		return writeCSV(csvDir, "chaos.csv", func(w io.Writer) error { return expt.WriteChaosCSV(w, rows) })
	case "all":
		for _, c := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "headline", "ablate", "policy3", "elastic"} {
			if err := dispatch(c, opt, csvDir); err != nil {
				return fmt.Errorf("%s: %w", c, err)
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

func runFig1() error {
	prod, err := fdw.Fig1(1, 8.1, 5)
	if err != nil {
		return err
	}
	r := prod.Rupture
	fmt.Printf("Fig. 1 — FakeQuakes data products\n")
	fmt.Printf("rupture %s: target Mw %.2f, realized Mw %.2f, %d subfaults, max slip %.2f m, duration %.0f s\n",
		r.ID, r.TargetMw, r.ActualMw, len(r.Patch), r.MaxSlip(), r.Duration())
	for _, w := range prod.Waveforms {
		fmt.Printf("  station %-5s PGD %.3f m\n", w.Station, w.PGD())
	}
	return nil
}
