package linalg

import "math"

// The pre-blocking kernels, retained verbatim as the executable
// reference specification (the negotiate_ref.go pattern from the pool
// rework): simple triple loops whose correctness is obvious by
// inspection. The blocked kernels in blocked.go must agree with these
// numerically — property-tested across square, rectangular, odd and
// non-tile-multiple shapes in blocked_test.go — but not bitwise: the
// blocked kernels' fused-multiply-add accumulation rounds once per
// term instead of twice, which is the one-time golden repin recorded
// in BENCH_kernels.json and DESIGN.md §15.

// ReferenceMul is the naive i-k-j GEMM the blocked Mul replaced. Each
// output row is accumulated as out[i][j] += a[i][k]·b[k][j] with k
// outer, j inner — separate multiply and add roundings per term.
func (m *Matrix) ReferenceMul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, mulDimErr(m, b)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		// No zero-skip here: the simulation's operands are dense
		// (covariances, distance products), where the branch costs more
		// than the multiply it saves and defeats vectorization.
		for k, a := range arow {
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// ReferenceCholesky is the unblocked left-looking factorization the
// blocked Cholesky replaced: per column, a full prefix dot product per
// row with plain multiply-add rounding.
func ReferenceCholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, cholDimErr(m)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var diag float64
		ljRow := l.Data[j*n : j*n+j]
		for _, v := range ljRow {
			diag += v * v
		}
		d := m.Data[j*n+j] - diag
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Data[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			var s float64
			liRow := l.Data[i*n : i*n+j]
			for k, v := range liRow {
				s += v * ljRow[k]
			}
			l.Data[i*n+j] = (m.Data[i*n+j] - s) / ljj
		}
	}
	return l, nil
}
