// Command vdcd serves the VDC data-services catalog over HTTP — the
// portal through which FDW data products are deposited, curated,
// discovered, and retrieved (the paper's Fig. 7 pipeline).
//
// Usage:
//
//	vdcd -addr :8080 [-demo] [-state catalog.json]
//
// With -state the catalog is loaded from the file at startup (if it
// exists) and saved back after every mutating request, so the curated
// collection survives restarts.
//
// With -demo the catalog starts pre-populated with a small set of
// synthetic Chilean products so the API can be explored immediately:
//
//	curl localhost:8080/products?type=waveform&min_mw=8
//	curl localhost:8080/popular?n=3
//
// Request counters and catalog gauges are exported in Prometheus text
// format at /metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"fdw"
	"fdw/internal/core/atomicfile"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		demo  = flag.Bool("demo", false, "pre-populate the catalog with demo products")
		state = flag.String("state", "", "persist the catalog to this JSON file")
	)
	flag.Parse()

	catalog, err := loadOrNew(*state)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdcd:", err)
		os.Exit(1)
	}
	if *demo && catalog.Len() == 0 {
		if err := seed(catalog); err != nil {
			fmt.Fprintln(os.Stderr, "vdcd:", err)
			os.Exit(1)
		}
		log.Printf("catalog seeded with %d demo products", catalog.Len())
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           persisting(fdw.NewCatalogServer(catalog), catalog, *state),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("VDC catalog listening on %s (metrics at /metrics)", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "vdcd:", err)
		os.Exit(1)
	}
}

// loadOrNew restores the catalog from path when it exists.
func loadOrNew(path string) (*fdw.Catalog, error) {
	if path == "" {
		return fdw.NewCatalog(), nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return fdw.NewCatalog(), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := fdw.LoadCatalog(f)
	if err != nil {
		return nil, err
	}
	log.Printf("catalog restored from %s (%d products)", path, c.Len())
	return c, nil
}

// persisting saves the catalog after every mutating request.
func persisting(h http.Handler, c *fdw.Catalog, path string) http.Handler {
	if path == "" {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r)
		if r.Method == http.MethodPost || r.Method == http.MethodDelete {
			if err := saveCatalog(c, path); err != nil {
				log.Printf("vdcd: persisting catalog: %v", err)
			}
		}
	})
}

func saveCatalog(c *fdw.Catalog, path string) error {
	return atomicfile.WriteFile(path, c.Save)
}

func seed(c *fdw.Catalog) error {
	demo := []fdw.Product{
		{Name: "chile-16k ruptures", Type: "rupture", Batch: "chile-16k", Region: "chile", Mw: 8.4, SizeBytes: 64 << 20, Tags: []string{"eew", "training"}, Description: "16,000 stochastic rupture scenarios, Mw 7.8-9.2"},
		{Name: "chile-16k greens functions", Type: "greens-functions", Batch: "chile-16k", Region: "chile", SizeBytes: 1 << 30, Tags: []string{"recyclable"}, Description: "121-station GF archive (.mseed)"},
		{Name: "chile-16k waveforms", Type: "waveform", Batch: "chile-16k", Region: "chile", Mw: 8.4, SizeBytes: 40 << 30, Tags: []string{"eew", "training", "gnss"}, Description: "synthetic high-rate GNSS displacement waveforms"},
		{Name: "chile-16k archive", Type: "archive", Batch: "chile-16k", Region: "chile", SizeBytes: 41 << 30, Description: "congregated, labeled, archived batch output"},
	}
	for _, p := range demo {
		if _, err := c.Deposit(p); err != nil {
			return err
		}
	}
	return nil
}
