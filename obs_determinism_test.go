package fdw_test

// The observability layer is strictly passive: attaching a metrics
// registry to an experiment must not change a single byte of the
// printed reports or CSVs, at any worker count. This is the repo-level
// guard for the internal/obs "record, never decide" contract.

import (
	"bytes"
	"testing"

	"fdw"
	"fdw/internal/expt"
)

// fig2Output runs the Fig. 2 sweep at toy scale and returns the
// printed report and the CSV bytes.
func fig2Output(t *testing.T, metered bool, workers int) (report, csv []byte) {
	t.Helper()
	opt := fdw.DefaultExperimentOptions()
	opt.Scale = 0.002 // clamps every quantity to the 16-waveform floor
	opt.Seeds = []uint64{11}
	opt.Workers = workers
	var out bytes.Buffer
	opt.Out = &out
	if metered {
		opt.Obs = fdw.NewMetrics(nil)
	}
	rows, err := fdw.Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := expt.WriteFig2CSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), csvBuf.Bytes()
}

// fig5Output does the same for the bursting sweep, which exercises the
// burst-policy instrumentation path.
func fig5Output(t *testing.T, metered bool, workers int) (report, csv []byte) {
	t.Helper()
	opt := fdw.DefaultExperimentOptions()
	opt.Scale = 0.002
	opt.Seeds = []uint64{11}
	opt.Workers = workers
	var out bytes.Buffer
	opt.Out = &out
	if metered {
		opt.Obs = fdw.NewMetrics(nil)
	}
	cells, err := fdw.Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := expt.WriteFig5CSV(&csvBuf, cells); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), csvBuf.Bytes()
}

func TestFiguresIdenticalWithMetricsEnabled(t *testing.T) {
	baseReport, baseCSV := fig2Output(t, false, 1)
	if len(baseReport) == 0 || len(baseCSV) == 0 {
		t.Fatal("baseline fig2 produced no output")
	}
	for _, c := range []struct {
		name    string
		metered bool
		workers int
	}{
		{"plain-j4", false, 4},
		{"metered-j1", true, 1},
		{"metered-j4", true, 4},
	} {
		report, csv := fig2Output(t, c.metered, c.workers)
		if !bytes.Equal(report, baseReport) {
			t.Errorf("fig2 report differs for %s", c.name)
		}
		if !bytes.Equal(csv, baseCSV) {
			t.Errorf("fig2 CSV differs for %s", c.name)
		}
	}

	burstReport, burstCSV := fig5Output(t, false, 1)
	meteredReport, meteredCSV := fig5Output(t, true, 4)
	if !bytes.Equal(burstReport, meteredReport) {
		t.Error("fig5 report differs with metrics enabled")
	}
	if !bytes.Equal(burstCSV, meteredCSV) {
		t.Error("fig5 CSV differs with metrics enabled")
	}
}

// TestMeteredRunRecordsActivity guards against the inverse failure:
// metrics silently wired to nothing. A metered Fig. 2 run must leave
// real counts behind.
func TestMeteredRunRecordsActivity(t *testing.T) {
	opt := fdw.DefaultExperimentOptions()
	opt.Scale = 0.002
	opt.Seeds = []uint64{11}
	opt.Workers = 4
	opt.Obs = fdw.NewMetrics(nil)
	if _, err := fdw.Fig2(opt); err != nil {
		t.Fatal(err)
	}
	snap := opt.Obs.Snapshot()
	var submissions uint64
	for _, c := range snap.Counters {
		if c.Name == "fdw_dagman_node_submissions_total" {
			submissions += c.Value
		}
	}
	if submissions == 0 {
		t.Fatal("metered run recorded no DAGMan node submissions")
	}
	if len(snap.Histograms) == 0 {
		t.Fatal("metered run recorded no histograms")
	}
}
