package mseed

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"fdw/internal/sim"
)

func sample(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(i) * 0.25
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	in := []Record{
		{Network: "CL", Station: "ANTC", Channel: "LXE", Start: 0, Dt: 1, Samples: sample(10)},
		{Network: "CL", Station: "ANTC", Channel: "LXN", Start: 0, Dt: 1, Samples: sample(10)},
		{Network: "CL", Station: "CONZ", Channel: "LXZ", Start: 2.5, Dt: 0.5, Samples: nil},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Network != b.Network || a.Station != b.Station || a.Channel != b.Channel {
			t.Fatalf("record %d identifiers differ: %+v vs %+v", i, a, b)
		}
		if a.Start != b.Start || a.Dt != b.Dt || len(a.Samples) != len(b.Samples) {
			t.Fatalf("record %d header differs", i)
		}
		for j := range a.Samples {
			if a.Samples[j] != b.Samples[j] {
				t.Fatalf("record %d sample %d differs", i, j)
			}
		}
	}
}

func TestEncodedSizeMatchesWrite(t *testing.T) {
	recs := []Record{
		{Network: "CL", Station: "QLLN", Channel: "LXZ", Dt: 1, Samples: sample(512)},
		{Network: "CL", Station: "PTRO", Channel: "LXE", Dt: 1, Samples: sample(3)},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != EncodedSize(recs) {
		t.Fatalf("EncodedSize = %d, actual %d", EncodedSize(recs), buf.Len())
	}
}

func TestBadMagicRejected(t *testing.T) {
	_, err := Read(strings.NewReader("XXXX junk"))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedStreamRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Record{{Network: "CL", Station: "S", Channel: "LXE", Dt: 1, Samples: sample(100)}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{3, 8, 12, len(b) - 4} {
		if _, err := Read(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestImplausibleSampleCountRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Record{{Network: "N", Station: "S", Channel: "C", Dt: 1, Samples: sample(1)}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The nsamp field sits 16 bytes into the 20-byte fixed block, which
	// follows magic(4)+head(6)+3 length-prefixed identifiers (1+1,1+1,1+1).
	off := 4 + 6 + 2 + 2 + 2 + 16
	b[off], b[off+1], b[off+2], b[off+3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestOverlongIdentifierRejected(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, []Record{{Network: strings.Repeat("x", 256), Station: "S", Channel: "C"}})
	if err == nil {
		t.Fatal("256-byte identifier accepted")
	}
}

func TestDuration(t *testing.T) {
	r := Record{Dt: 0.5, Samples: sample(11)}
	if r.Duration() != 5 {
		t.Fatalf("Duration = %v, want 5", r.Duration())
	}
	empty := Record{Dt: 1}
	if empty.Duration() != 0 {
		t.Fatal("empty record should have zero duration")
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d records from empty stream", len(out))
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	rng := sim.NewRNG(77)
	f := func(seed uint64, nRaw, lenRaw uint8) bool {
		r := rng.Split(seed)
		n := int(nRaw % 5)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{
				Network: "CL",
				Station: string(rune('A' + i)),
				Channel: "LXE",
				Start:   r.Normal(0, 10),
				Dt:      r.Uniform(0.01, 2),
				Samples: make([]float64, int(lenRaw%64)),
			}
			for j := range recs[i].Samples {
				recs[i].Samples[j] = r.Normal(0, 1)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		if int64(buf.Len()) != EncodedSize(recs) {
			return false
		}
		out, err := Read(&buf)
		if err != nil || len(out) != n {
			return false
		}
		for i := range recs {
			if out[i].Station != recs[i].Station || len(out[i].Samples) != len(recs[i].Samples) {
				return false
			}
			for j := range recs[i].Samples {
				if out[i].Samples[j] != recs[i].Samples[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
