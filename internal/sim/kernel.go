package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is simulated time measured in seconds since the start of a run.
// float64 seconds keep the arithmetic simple for throughput formulas
// (jobs/minute) while giving sub-second resolution for the per-second
// bursting loop.
type Time float64

// Duration converts t to a time.Duration for formatting.
func (t Time) Duration() time.Duration {
	return time.Duration(float64(t) * float64(time.Second))
}

// Hours reports t in hours.
func (t Time) Hours() float64 { return float64(t) / 3600 }

// Minutes reports t in minutes.
func (t Time) Minutes() float64 { return float64(t) / 60 }

// String formats t as "12h34m56s"-style simulated wall time.
func (t Time) String() string { return t.Duration().Round(time.Second).String() }

// Forever is a sentinel time far beyond any experiment horizon.
const Forever Time = math.MaxFloat64 / 4

// Event is a scheduled callback on the simulation calendar.
type Event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among equal timestamps
	fn     func()
	k      *Kernel
	cancel bool
	index  int // heap index, -1 once popped
}

// Cancel marks the event so its callback will not run. Safe to call
// multiple times and after the event has fired (then it is a no-op).
// A cancelled event still on the calendar becomes a tombstone; the
// kernel reaps tombstones in bulk once they outnumber live events, so
// heap size and memory stay proportional to live events even under
// heavy timer churn (deadline timers, hedges, tickers).
func (e *Event) Cancel() {
	if e == nil || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 && e.k != nil {
		e.k.cancelled++
		e.k.maybeReap()
	}
}

// Cancelled reports whether Cancel has been called on e.
func (e *Event) Cancelled() bool { return e != nil && e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator: a clock plus an ordered calendar
// of future events. It is single-goroutine by design; determinism comes
// from the (time, insertion-order) total order of events.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *RNG
	// Steps counts executed events, for runaway detection in tests.
	steps uint64
	// cancelled counts tombstones still on the calendar; maybeReap
	// compacts the heap when they dominate.
	cancelled int
}

// NewKernel returns a kernel at time zero with a deterministic RNG.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's root random stream.
func (k *Kernel) RNG() *RNG { return k.rng }

// Steps reports how many events have executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending reports the number of live (non-cancelled) events still on
// the calendar. Cancelled-but-unreaped tombstones are excluded, so the
// value tracks real future work rather than heap occupancy.
func (k *Kernel) Pending() int { return len(k.events) - k.cancelled }

// reapMinEvents is the heap size below which tombstone reaping is not
// worth the compaction pass.
const reapMinEvents = 64

// maybeReap compacts the calendar when cancelled tombstones exceed
// half the heap: live events are kept (their relative execution order
// is fully determined by the (at, seq) key, so re-heapifying cannot
// reorder anything observable) and the dead ones are dropped.
func (k *Kernel) maybeReap() {
	if len(k.events) < reapMinEvents || k.cancelled*2 <= len(k.events) {
		return
	}
	live := k.events[:0]
	for _, e := range k.events {
		if e.cancel {
			e.index = -1
			continue
		}
		live = append(live, e)
	}
	for i := len(live); i < len(k.events); i++ {
		k.events[i] = nil
	}
	k.events = live
	k.cancelled = 0
	heap.Init(&k.events)
}

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it would silently corrupt causality.
func (k *Kernel) At(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	e := &Event{at: at, seq: k.seq, fn: fn, k: k}
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (k *Kernel) After(d Time, fn func()) *Event {
	return k.At(k.now+d, fn)
}

// Step executes the next event. It reports false when the calendar is
// empty. Cancelled events are skipped (but still consume a pop).
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*Event)
		if e.cancel {
			k.cancelled--
			continue
		}
		k.now = e.at
		k.steps++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the calendar is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to deadline (if the calendar ran dry earlier).
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.events) > 0 {
		// Peek without popping.
		e := k.events[0]
		if e.cancel {
			heap.Pop(&k.events)
			k.cancelled--
			continue
		}
		if e.at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunWhile executes events while cond() holds and events remain.
func (k *Kernel) RunWhile(cond func() bool) {
	for cond() && k.Step() {
	}
}

// Ticker invokes fn(now) every period seconds starting at start, until
// the returned stop function is called. fn returning is what re-arms the
// next tick, so a slow consumer cannot stack ticks.
func (k *Kernel) Ticker(start, period Time, fn func(Time)) (stop func()) {
	if period <= 0 {
		panic("sim: Ticker with non-positive period")
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn(k.now)
		if !stopped {
			pending = k.After(period, tick)
		}
	}
	pending = k.At(start, tick)
	return func() {
		stopped = true
		pending.Cancel()
	}
}
