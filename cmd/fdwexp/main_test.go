package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"fdw"
)

func quickOpt() fdw.ExperimentOptions {
	opt := fdw.DefaultExperimentOptions()
	opt.Seeds = []uint64{7}
	opt.Scale = 0.02
	opt.Out = io.Discard
	return opt
}

func TestDispatchEveryFigure(t *testing.T) {
	for _, cmd := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "headline", "ablate", "policy3", "elastic", "chaos"} {
		opt := quickOpt()
		if cmd == "headline" {
			opt.Scale = 0.1
		}
		if err := dispatch(cmd, opt, t.TempDir()); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch("fig99", quickOpt(), ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestParseShardSpec(t *testing.T) {
	i, n, err := parseShardSpec("2/4")
	if err != nil || i != 2 || n != 4 {
		t.Fatalf("2/4 → %d %d %v", i, n, err)
	}
	for _, bad := range []string{"", "4", "0/4", "5/4", "2/0", "a/b", "1/2/3", "-1/4"} {
		if _, _, err := parseShardSpec(bad); exitCode(err) != 2 {
			t.Errorf("%q: want usage error, got %v", bad, err)
		}
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{errors.New("boom"), 1},
		{usageErrorf("bad flags"), 2},
		{fdw.ErrShardIncomplete, 3},
		{fmt.Errorf("shard 1/2: %w", fdw.ErrShardIncomplete), 3},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// The CLI path end to end: N shard invocations plus a merge reproduce
// the unsharded command's stdout report and CSV byte-for-byte.
func TestShardMergeCLIRoundTrip(t *testing.T) {
	opt := quickOpt()
	var wantRep bytes.Buffer
	opt.Out = &wantRep
	wantCSVDir := t.TempDir()
	if err := dispatch("fig2", opt, wantCSVDir); err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile(filepath.Join(wantCSVDir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}

	const total = 4
	bundleDir := t.TempDir()
	var paths []string
	for i := 1; i <= total; i++ {
		sopt := quickOpt()
		if err := runShardCmd(sopt, fmt.Sprintf("%d/%d", i, total), "fig2", bundleDir, 0, false); err != nil {
			t.Fatalf("shard %d/%d: %v", i, total, err)
		}
		paths = append(paths, shardBundlePath(bundleDir, "fig2", i, total))
	}
	mopt := quickOpt()
	var gotRep bytes.Buffer
	mopt.Out = &gotRep
	gotCSVDir := t.TempDir()
	if err := runMergeCmd(mopt, gotCSVDir, "", paths); err != nil {
		t.Fatal(err)
	}
	gotCSV, err := os.ReadFile(filepath.Join(gotCSVDir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantRep.Bytes(), gotRep.Bytes()) {
		t.Errorf("merged report differs from unsharded run:\n--- want\n%s\n--- got\n%s", wantRep.Bytes(), gotRep.Bytes())
	}
	if !bytes.Equal(wantCSV, gotCSV) {
		t.Error("merged CSV differs from unsharded run")
	}
}

// A budgeted shard exits resumable (code 3) and a -resume invocation
// finishes it; merging then succeeds.
func TestShardBudgetResumeCLI(t *testing.T) {
	dir := t.TempDir()
	opt := quickOpt()
	err := runShardCmd(opt, "1/1", "fig2", dir, 1, false)
	if exitCode(err) != 3 {
		t.Fatalf("budgeted shard: err %v (exit %d), want exit 3", err, exitCode(err))
	}
	if err := runShardCmd(quickOpt(), "1/1", "fig2", dir, 0, true); err != nil {
		t.Fatalf("resume: %v", err)
	}
	mopt := quickOpt()
	if err := runMergeCmd(mopt, "", "", []string{shardBundlePath(dir, "fig2", 1, 1)}); err != nil {
		t.Fatalf("merge after resume: %v", err)
	}
}

func TestParseSchedSpec(t *testing.T) {
	for _, good := range []string{"workers=4", "4"} {
		n, err := parseSchedSpec(good)
		if err != nil || n != 4 {
			t.Errorf("%q → %d %v, want 4", good, n, err)
		}
	}
	for _, bad := range []string{"", "workers=", "workers=0", "workers=-2", "workers=x", "0", "w=4", "workers=4.5"} {
		if _, err := parseSchedSpec(bad); exitCode(err) != 2 {
			t.Errorf("%q: want usage error, got %v", bad, err)
		}
	}
}

// The scheduler CLI end to end: -sched under a crash plan reproduces
// the unsharded command's stdout report and CSV byte-for-byte, and the
// worker bundles it leaves behind merge to the same bytes.
func TestSchedCLIRoundTrip(t *testing.T) {
	opt := quickOpt()
	var wantRep bytes.Buffer
	opt.Out = &wantRep
	wantCSVDir := t.TempDir()
	if err := dispatch("fig2", opt, wantCSVDir); err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile(filepath.Join(wantCSVDir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}

	sopt := quickOpt()
	var gotRep bytes.Buffer
	sopt.Out = &gotRep
	bundleDir := t.TempDir()
	gotCSVDir := t.TempDir()
	err = runSchedCmd(sopt, schedOpts{
		spec: "workers=3", plan: "crash-storm", steal: true,
		dir: bundleDir, csvDir: gotCSVDir,
	}, "fig2")
	if err != nil {
		t.Fatalf("sched run: %v", err)
	}
	gotCSV, err := os.ReadFile(filepath.Join(gotCSVDir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantRep.Bytes(), gotRep.Bytes()) {
		t.Errorf("sched report differs from unsharded run:\n--- want\n%s\n--- got\n%s", wantRep.Bytes(), gotRep.Bytes())
	}
	if !bytes.Equal(wantCSV, gotCSV) {
		t.Error("sched CSV differs from unsharded run")
	}

	var bundles []string
	for i := 0; i < 3; i++ {
		bundles = append(bundles, fdw.SchedWorkerBundlePath(bundleDir, "fig2", i, 3))
	}
	mopt := quickOpt()
	var mergedRep bytes.Buffer
	mopt.Out = &mergedRep
	if err := runMergeCmd(mopt, "", "", bundles); err != nil {
		t.Fatalf("merge of sched worker bundles: %v", err)
	}
	if !bytes.Equal(wantRep.Bytes(), mergedRep.Bytes()) {
		t.Error("merged sched bundles differ from unsharded run")
	}

	// -status over the finished bundle dir: readable, complete, exit 0.
	stopt := quickOpt()
	var statusOut bytes.Buffer
	stopt.Out = &statusOut
	if err := runStatusCmd(stopt, []string{bundleDir}); err != nil {
		t.Fatalf("status of complete sched dir: %v", err)
	}
	if !bytes.Contains(statusOut.Bytes(), []byte(`"leased": true`)) {
		t.Errorf("status output does not mark bundles leased:\n%s", statusOut.Bytes())
	}
}

// A budgeted -sched run exits resumable (code 3), -status agrees, and
// a -resume invocation finishes from the bundles alone.
func TestSchedBudgetResumeCLI(t *testing.T) {
	dir := t.TempDir()
	err := runSchedCmd(quickOpt(), schedOpts{spec: "workers=2", steal: true, dir: dir, cells: 1}, "fig2")
	if exitCode(err) != 3 {
		t.Fatalf("budgeted sched: err %v (exit %d), want exit 3", err, exitCode(err))
	}
	stopt := quickOpt()
	stopt.Out = io.Discard
	if err := runStatusCmd(stopt, []string{dir}); exitCode(err) != 3 {
		t.Fatalf("status of budget-halted dir: err %v (exit %d), want exit 3", err, exitCode(err))
	}
	if err := runSchedCmd(quickOpt(), schedOpts{spec: "workers=2", steal: true, dir: dir, resume: true}, "fig2"); err != nil {
		t.Fatalf("sched resume: %v", err)
	}
	stopt = quickOpt()
	stopt.Out = io.Discard
	if err := runStatusCmd(stopt, []string{dir}); err != nil {
		t.Fatalf("status after resume: %v", err)
	}
}

// -status with an unreadable bundle reports it and exits 1; an unknown
// crash plan is a usage error.
func TestSchedCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	stopt := quickOpt()
	stopt.Out = io.Discard
	if err := runStatusCmd(stopt, []string{dir}); exitCode(err) != 1 {
		t.Fatalf("status over junk: err %v (exit %d), want exit 1", err, exitCode(err))
	}
	err := runSchedCmd(quickOpt(), schedOpts{spec: "workers=2", plan: "no-such-plan", dir: t.TempDir()}, "fig2")
	if exitCode(err) != 2 {
		t.Fatalf("unknown crash plan: err %v (exit %d), want usage error", err, exitCode(err))
	}
}

// -merge with a metrics rollup writes a readable snapshot.
func TestMergeWritesMetricsRollup(t *testing.T) {
	dir := t.TempDir()
	opt := quickOpt()
	opt.Obs = fdw.NewMetrics(nil)
	if err := runShardCmd(opt, "1/1", "fig2", dir, 0, false); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "metrics.json")
	mopt := quickOpt()
	if err := runMergeCmd(mopt, "", out, []string{shardBundlePath(dir, "fig2", 1, 1)}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := fdw.ReadMetricsSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) == 0 {
		t.Error("metrics rollup has no counters")
	}
}

// TestCSVEmissionAtomic pins the -csv/-metrics durability contract:
// an artifact is replaced by rename (a reader of the previous file
// keeps seeing its complete bytes), and a failed emission leaves the
// committed artifact untouched instead of truncating it in place.
func TestCSVEmissionAtomic(t *testing.T) {
	dir := t.TempDir()
	emit := func(s string) error {
		return writeCSV(dir, "fig.csv", func(w io.Writer) error {
			_, err := io.WriteString(w, s)
			return err
		})
	}
	if err := emit("first,complete\n"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fig.csv")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := emit("second,complete\n"); err != nil {
		t.Fatal(err)
	}
	old, err := io.ReadAll(f)
	if err != nil || string(old) != "first,complete\n" {
		t.Fatalf("previous-file reader saw %q (%v): replacement truncated in place", old, err)
	}

	boom := errors.New("emitter failed mid-write")
	if err := writeCSV(dir, "fig.csv", func(w io.Writer) error {
		if _, err := io.WriteString(w, "partial"); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("failed emission returned %v, want the emitter's error", err)
	}
	cur, err := os.ReadFile(path)
	if err != nil || string(cur) != "second,complete\n" {
		t.Fatalf("after failed emission the artifact holds %q (%v), want the committed version", cur, err)
	}
}
