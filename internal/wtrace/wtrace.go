// Package wtrace defines the two .csv trace files the paper's VDC
// bursting simulator takes as input: the submission/execution/
// termination times of an actual DAGMan batch, and the same information
// for the individual jobs within it. Traces are produced by FDW runs on
// the simulated OSPool and consumed by internal/burst.
package wtrace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fdw/internal/htcondor"
)

// JobClass mirrors the two job kinds whose simulated VDC completion
// times the paper fixes (rupture 287 s, waveform 144 s); GF/matrix jobs
// are never bursted.
type JobClass string

// Job classes appearing in traces.
const (
	ClassRupture  JobClass = "rupture"
	ClassWaveform JobClass = "waveform"
	ClassGF       JobClass = "gf"
	ClassMatrix   JobClass = "matrix"
)

// JobRecord is one job's trace row. Times are seconds on the batch's
// clock; Start/End are negative for jobs that never started/finished.
type JobRecord struct {
	ID     string
	Class  JobClass
	Submit float64
	Start  float64
	End    float64
}

// Started reports whether the job began executing.
func (j JobRecord) Started() bool { return j.Start >= 0 }

// Finished reports whether the job terminated.
func (j JobRecord) Finished() bool { return j.End >= 0 }

// BatchRecord is the DAGMan batch trace row.
type BatchRecord struct {
	Name   string
	Submit float64 // first submission
	Start  float64 // first execution
	End    float64 // last termination
}

// Duration returns End-Submit.
func (b BatchRecord) Duration() float64 { return b.End - b.Submit }

// Validate checks time ordering.
func (b BatchRecord) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("wtrace: empty batch name")
	}
	if b.End < b.Start || b.Start < b.Submit {
		return fmt.Errorf("wtrace: batch times out of order: submit %v start %v end %v",
			b.Submit, b.Start, b.End)
	}
	return nil
}

// classify maps an FDW executable name to a job class.
func classify(executable string) JobClass {
	switch {
	case strings.Contains(executable, "phase_A"):
		return ClassRupture
	case strings.Contains(executable, "phase_C"):
		return ClassWaveform
	case strings.Contains(executable, "phase_B"):
		return ClassGF
	default:
		return ClassMatrix
	}
}

// FromSchedd extracts a batch + jobs trace from a completed FDW run's
// schedd state.
func FromSchedd(name string, s *htcondor.Schedd) (BatchRecord, []JobRecord, error) {
	all := s.AllJobs()
	if len(all) == 0 {
		return BatchRecord{}, nil, fmt.Errorf("wtrace: schedd has no jobs")
	}
	batch := BatchRecord{Name: name, Submit: -1, Start: -1}
	jobs := make([]JobRecord, 0, len(all))
	for _, j := range all {
		rec := JobRecord{
			ID:     j.ID(),
			Class:  classify(j.Executable),
			Submit: float64(j.SubmitTime),
			Start:  -1,
			End:    -1,
		}
		if j.Status == htcondor.Running || j.Status == htcondor.Completed {
			rec.Start = float64(j.StartTime)
		}
		if j.Status == htcondor.Completed || j.Status == htcondor.Removed {
			rec.End = float64(j.EndTime)
		}
		jobs = append(jobs, rec)
		if batch.Submit < 0 || rec.Submit < batch.Submit {
			batch.Submit = rec.Submit
		}
		if rec.Started() && (batch.Start < 0 || rec.Start < batch.Start) {
			batch.Start = rec.Start
		}
		if rec.End > batch.End {
			batch.End = rec.End
		}
	}
	if batch.Start < 0 {
		batch.Start = batch.Submit
	}
	return batch, jobs, batch.Validate()
}

// WriteBatchCSV writes the single-row batch trace.
func WriteBatchCSV(w io.Writer, b BatchRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"batch", "submit", "start", "end"}); err != nil {
		return err
	}
	if err := cw.Write([]string{b.Name, ftoa(b.Submit), ftoa(b.Start), ftoa(b.End)}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadBatchCSV reads a batch trace written by WriteBatchCSV.
func ReadBatchCSV(r io.Reader) (BatchRecord, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return BatchRecord{}, err
	}
	if len(rows) != 2 || len(rows[1]) != 4 {
		return BatchRecord{}, fmt.Errorf("wtrace: batch CSV must be header plus one row")
	}
	b := BatchRecord{Name: rows[1][0]}
	if b.Submit, err = atof(rows[1][1]); err != nil {
		return b, err
	}
	if b.Start, err = atof(rows[1][2]); err != nil {
		return b, err
	}
	if b.End, err = atof(rows[1][3]); err != nil {
		return b, err
	}
	return b, b.Validate()
}

// WriteJobsCSV writes per-job trace rows.
func WriteJobsCSV(w io.Writer, jobs []JobRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job", "class", "submit", "start", "end"}); err != nil {
		return err
	}
	for _, j := range jobs {
		if err := cw.Write([]string{j.ID, string(j.Class), ftoa(j.Submit), ftoa(j.Start), ftoa(j.End)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJobsCSV reads rows written by WriteJobsCSV.
func ReadJobsCSV(r io.Reader) ([]JobRecord, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("wtrace: empty jobs CSV")
	}
	jobs := make([]JobRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("wtrace: jobs CSV row %d has %d columns, want 5", i+2, len(row))
		}
		j := JobRecord{ID: row[0], Class: JobClass(row[1])}
		switch j.Class {
		case ClassRupture, ClassWaveform, ClassGF, ClassMatrix:
		default:
			return nil, fmt.Errorf("wtrace: jobs CSV row %d: unknown class %q", i+2, row[1])
		}
		if j.Submit, err = atof(row[2]); err != nil {
			return nil, fmt.Errorf("wtrace: jobs CSV row %d: %v", i+2, err)
		}
		if j.Start, err = atof(row[3]); err != nil {
			return nil, fmt.Errorf("wtrace: jobs CSV row %d: %v", i+2, err)
		}
		if j.End, err = atof(row[4]); err != nil {
			return nil, fmt.Errorf("wtrace: jobs CSV row %d: %v", i+2, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'f', -1, 64) }

func atof(s string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return f, nil
}
