#!/bin/sh
# Pre-PR gate (see DESIGN.md §7): vet, build, race-enabled tests, and a
# one-iteration benchmark smoke pass. Run from the repo root, directly
# or via `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke (-benchtime 1x)"
go test -run '^$' -bench . -benchtime 1x .

echo "check: OK"
