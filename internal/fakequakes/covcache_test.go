package fakequakes

import (
	"math"
	"testing"

	"fdw/internal/geom"
	"fdw/internal/linalg"
	"fdw/internal/sim"
)

func testGenerator(t *testing.T) *Generator {
	t.Helper()
	cfg := geom.DefaultChileFault()
	cfg.SubfaultKm = 25
	fault, err := geom.BuildFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stations := geom.FullChileanStations()[:2]
	gen, err := NewGenerator(fault, ComputeDistanceMatrices(fault, stations))
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestFactorCacheLRUAndCounters(t *testing.T) {
	c := NewFactorCache(2)
	m1 := linalg.NewMatrix(1, 1)
	m2 := linalg.NewMatrix(2, 2)
	m3 := linalg.NewMatrix(3, 3)

	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, m1)
	c.Put(2, m2)
	if got, ok := c.Get(1); !ok || got != m1 {
		t.Fatal("key 1 missing after put")
	}
	c.Put(3, m3) // evicts 2, the least recently used
	if _, ok := c.Get(2); ok {
		t.Fatal("key 2 survived eviction")
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("key 3 missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats %d/%d, want hits 2 misses 2", hits, misses)
	}
}

// A warm hit must return the exact factor a cold run computes, and the
// cached path must leave scenarios bit-identical to the uncached path.
func TestFactorCacheWarmMatchesCold(t *testing.T) {
	gen := testGenerator(t)

	// Cold: private cache, first generation fills it.
	gen.Factors = NewFactorCache(4)
	cold, err := gen.GenerateMw("run000001", 8.1, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if h, m := gen.Factors.Stats(); h != 0 || m != 1 {
		t.Fatalf("cold stats %d/%d, want 0 hits 1 miss", h, m)
	}

	// Warm: same seed and magnitude replays the same patch, hitting.
	warm, err := gen.GenerateMw("run000001", 8.1, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := gen.Factors.Stats(); h != 1 {
		t.Fatalf("warm run did not hit (hits=%d)", h)
	}

	// Uncached reference.
	gen.Factors = nil
	ref, err := gen.GenerateMw("run000001", 8.1, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}

	for name, pair := range map[string][2][]float64{
		"slip":  {cold.SlipM, ref.SlipM},
		"onset": {cold.OnsetS, ref.OnsetS},
		"warm":  {warm.SlipM, ref.SlipM},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: element %d differs: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// Different placements of the same patch shape share a factor (the
// covariance only sees coordinate differences), while a different
// magnitude — hence correlation length and patch size — does not.
func TestFactorKeyTranslationInvariance(t *testing.T) {
	gen := testGenerator(t)
	gen.Factors = NewFactorCache(8)
	rng := sim.NewRNG(7)
	for i := 0; i < 6; i++ {
		if _, err := gen.GenerateMw("run", 8.3, rng); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := gen.Factors.Stats()
	if misses != 1 || hits != 5 {
		t.Fatalf("fixed-Mw batch: %d hits %d misses, want 5/1", hits, misses)
	}
	if _, err := gen.GenerateMw("run", 8.9, rng); err != nil {
		t.Fatal(err)
	}
	if _, m := gen.Factors.Stats(); m != 2 {
		t.Fatalf("different Mw reused a factor (misses=%d)", m)
	}
}

func TestFactorCacheNPYRoundTrip(t *testing.T) {
	gen := testGenerator(t)
	gen.Factors = NewFactorCache(4)
	if _, err := gen.GenerateMw("run", 8.1, sim.NewRNG(3)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := gen.Factors.SaveNPY(dir); err != nil {
		t.Fatal(err)
	}

	restored := NewFactorCache(4)
	if err := restored.LoadNPY(dir); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Fatalf("restored %d factors, want 1", restored.Len())
	}
	// The recycled factor must hit and be bit-identical to a cold run.
	gen2 := testGenerator(t)
	gen2.Factors = restored
	warm, err := gen2.GenerateMw("run", 8.1, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := restored.Stats(); h != 1 {
		t.Fatalf("recycled factor not hit (hits=%d)", h)
	}
	gen2.Factors = nil
	cold, err := gen2.GenerateMw("run", 8.1, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.SlipM {
		if math.Float64bits(warm.SlipM[i]) != math.Float64bits(cold.SlipM[i]) {
			t.Fatalf("slip %d differs after .npy recycle: %v vs %v", i, warm.SlipM[i], cold.SlipM[i])
		}
	}
	// Loading an empty dir is the cold-start case, not an error.
	if err := NewFactorCache(4).LoadNPY(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
