package ospool

import (
	"strconv"
	"strings"

	"fdw/internal/classad"
	"fdw/internal/htcondor"
	"fdw/internal/sim"
)

// This file is the matchmaking index (DESIGN.md §12): the per-site
// free-glidein heaps, the requirements-signature match-mask cache, and
// the per-owner negotiation cursors. Together they replace the seed
// negotiator's per-job linear scan over every free glidein with a walk
// over at most len(sites) candidates — while provably selecting the
// same glidein for the same job in the same order.
//
// The equivalence rests on two invariants of the seed code:
//
//  1. p.glideins was always sorted ascending by glidein id (ids are
//     allocated in arrival order and every removal preserved order), so
//     "first matching free glidein in scan order" ≡ "matching free
//     glidein with the smallest id".
//  2. Glidein ads are constant within a site (Cpus, Memory,
//     HasSingularity, GLIDEIN_Site; per-pilot speed is not advertised),
//     so match(job, glidein) is a function of (job, site) — one bit per
//     site, cacheable as a mask.
//
// Hence: keep free glideins in a min-heap by id per site, and resolve a
// job by walking candidate sites in ascending order of their minimum
// free id, stopping at the first non-vetoed site whose mask bit is set.
// That site's heap minimum is exactly the glidein the linear scan would
// have chosen, and the circuit-breaker VetoMatch consultations hit the
// same sites the scan's prefix would have touched (VetoMatch's
// open→half-open transition is idempotent at a fixed now, so per-site
// dedup of consultations cannot change breaker state).

// freeHeap is a min-heap of idle glideins keyed by id, implementing
// container/heap. Swap maintains each glidein's heapIdx so removal by
// handle is O(log n).
type freeHeap []*glidein

func (h freeHeap) Len() int           { return len(h) }
func (h freeHeap) Less(i, j int) bool { return h[i].id < h[j].id }
func (h freeHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *freeHeap) Push(x any) {
	g := x.(*glidein)
	g.heapIdx = len(*h)
	*h = append(*h, g)
}

func (h *freeHeap) Pop() any {
	old := *h
	n := len(old)
	g := old[n-1]
	old[n-1] = nil
	g.heapIdx = -1
	*h = old[:n-1]
	return g
}

// negOwner is one owner's negotiation state for a single cycle: lazy
// cursors into each schedd's per-owner idle queue, consumed round-robin
// so concurrent DAGMans under one user progress together. The cursor
// round-robin yields exactly the seed's positional interleaved merge:
// within a cycle only the negotiator removes idle jobs, and only at
// positions a cursor has already yielded, so "next live entry after the
// cursor" coincides with the merge's snapshot order.
type negOwner struct {
	name    string
	running int
	cursors []htcondor.IdleCursor
	schedds []*htcondor.Schedd
	cur     int // cursor index the next peek starts from
}

// peek returns the owner's head-of-line job and its schedd without
// consuming it (nil when the owner's queues are exhausted). Repeated
// peeks return the same job.
func (o *negOwner) peek() (*htcondor.Job, *htcondor.Schedd) {
	for tried := 0; tried < len(o.cursors); tried++ {
		i := (o.cur + tried) % len(o.cursors)
		if j := o.cursors[i].Peek(); j != nil {
			o.cur = i
			return j, o.schedds[i]
		}
	}
	return nil, nil
}

// pop consumes the job the last peek returned and advances the
// round-robin to the next schedd.
func (o *negOwner) pop() {
	o.cursors[o.cur].Pop()
	o.cur = (o.cur + 1) % len(o.cursors)
}

// siteCand is one entry in findSlot's candidate walk.
type siteCand struct {
	idx   int // site index
	minID int // smallest free glidein id at that site
}

// findSlot returns the free glidein the seed linear scan would have
// matched to job — the matching, non-vetoed glidein with the smallest
// id — or nil. Candidate sites are walked in ascending order of their
// minimum free id; VetoMatch is consulted once per visited site, which
// reproduces the scan's breaker consultations up to idempotent repeats.
func (p *Pool) findSlot(job *htcondor.Job, now sim.Time) *glidein {
	mask := p.matchMask(job)
	cands := p.cands[:0]
	for i := range p.sites {
		if h := p.sites[i].free; len(h) > 0 {
			cands = append(cands, siteCand{idx: i, minID: h[0].id})
		}
	}
	// Insertion sort: the site count is small and this runs per job.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].minID < cands[j-1].minID; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	p.cands = cands
	for _, c := range cands {
		if p.recovery != nil && p.recovery.VetoMatch(p.sites[c.idx].cfg.Name, now) {
			continue // open circuit breaker: site sits out this cycle
		}
		if mask[c.idx] {
			return p.sites[c.idx].free[0]
		}
	}
	return nil
}

// matchMask returns job's per-site match mask, computing it at most
// once per distinct requirements signature. Masks stay valid for the
// whole run: site ads never change, and every job attribute the mask
// depends on is immutable after submission.
func (p *Pool) matchMask(job *htcondor.Job) []bool {
	if m, ok := p.maskByJob[job]; ok {
		return m
	}
	sig := p.matchSig(job)
	m, ok := p.maskBySig[sig]
	if !ok {
		m = make([]bool, len(p.sites))
		for i := range p.sites {
			ok, err := job.Matches(p.sites[i].ad)
			m[i] = err == nil && ok
		}
		p.maskBySig[sig] = m
	}
	p.maskByJob[job] = m
	return m
}

// matchSig builds a key covering everything Job.Matches reads: the
// explicit RequestCpus/RequestMemory gates, the Requirements source,
// and — for expressions that reference job-side (MY) attributes — the
// values of exactly those attributes, as reported by
// classad.ReferencedAttrs. Two jobs with equal signatures match the
// same set of sites.
func (p *Pool) matchSig(job *htcondor.Job) string {
	var sb strings.Builder
	sb.Grow(32 + len(job.Requirements))
	sb.WriteString(strconv.Itoa(job.RequestCpus))
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(job.RequestMemoryMB))
	sb.WriteByte('|')
	sb.WriteString(job.Requirements)
	if job.Requirements != "" {
		if attrs := p.reqMyAttrs(job.Requirements); len(attrs) > 0 {
			ad := job.MatchAd()
			for _, a := range attrs {
				sb.WriteByte('|')
				sb.WriteString(a)
				sb.WriteByte('=')
				if v, ok := ad.Lookup(a); ok {
					// Length-prefix the rendered value so attribute
					// values containing the delimiters cannot alias
					// two different signatures.
					vs := v.String()
					sb.WriteString(strconv.Itoa(len(vs)))
					sb.WriteByte(':')
					sb.WriteString(vs)
				}
			}
		}
	}
	return sb.String()
}

// reqMyAttrs returns the MY-side attribute names a Requirements
// expression references, memoized per source string. A malformed
// expression yields nil (Matches will fail it per ad anyway, equally
// for every job sharing the source).
func (p *Pool) reqMyAttrs(src string) []string {
	if attrs, ok := p.reqAttrs[src]; ok {
		return attrs
	}
	var attrs []string
	if e, err := classad.ParseCached(src); err == nil {
		attrs, _ = classad.ReferencedAttrs(e)
	}
	p.reqAttrs[src] = attrs
	return attrs
}
