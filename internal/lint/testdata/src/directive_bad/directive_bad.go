// Package directive_bad holds every way to get a //lint:allow
// directive wrong: missing reason, unknown analyzer, and a directive
// that suppresses nothing.
package directive_bad

import "time"

// Stamp suppresses wallclock but forgets the mandatory reason.
func Stamp() int64 {
	return time.Now().UnixNano() //lint:allow wallclock
}

// Nap names an analyzer that does not exist, so the real diagnostic
// survives too.
func Nap() {
	time.Sleep(time.Millisecond) //lint:allow wibble timers are fine
}

// Render is deterministic; the directive below it has nothing to
// suppress.
func Render(seconds float64) string {
	//lint:allow wallclock duration formatting never reads the clock
	return time.Duration(seconds * float64(time.Second)).String()
}
