package sched

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"
	"testing"

	"fdw/internal/core/atomicfile"
	"fdw/internal/expt"
	"fdw/internal/faults"
	"fdw/internal/sim"
)

// fakeSource is a scripted campaign: fixed cell list, per-cell
// simulated durations, and an invocation counter per cell. Cells in
// vary return different payload bytes on every invocation — the
// nondeterministic campaign the digest arbitration exists to catch.
type fakeSource struct {
	ids  []string
	durs map[string]sim.Time
	runs map[string]int
	vary map[string]bool
}

func newFakeSource(durs ...sim.Time) *fakeSource {
	f := &fakeSource{durs: map[string]sim.Time{}, runs: map[string]int{}, vary: map[string]bool{}}
	for i, d := range durs {
		id := fmt.Sprintf("cell%02d", i)
		f.ids = append(f.ids, id)
		f.durs[id] = d
	}
	return f
}

func (f *fakeSource) Name() string        { return "fake" }
func (f *fakeSource) Fingerprint() string { return "fakefp" }
func (f *fakeSource) CellIDs() []string   { return f.ids }

func (f *fakeSource) RunCell(id string) (expt.CellRecord, error) {
	if _, ok := f.durs[id]; !ok {
		return expt.CellRecord{}, fmt.Errorf("fake: unknown cell %q", id)
	}
	f.runs[id]++
	payload := fmt.Sprintf(`{"id":%q}`, id)
	if f.vary[id] {
		payload = fmt.Sprintf(`{"id":%q,"run":%d}`, id, f.runs[id])
	}
	raw := json.RawMessage(payload)
	return expt.CellRecord{ID: id, Result: raw, Digest: digestOf(raw), SimEnd: f.durs[id]}, nil
}

// digestOf mirrors the manifest cell digest (FNV-1a64 of the payload)
// so fake records survive bundle validation.
func digestOf(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

func mustComplete(t *testing.T, f *fakeSource, res *Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Records) != len(f.ids) {
		t.Fatalf("%d records for %d cells", len(res.Records), len(f.ids))
	}
	for _, id := range f.ids {
		if _, ok := res.Records[id]; !ok {
			t.Fatalf("cell %q missing from ledger", id)
		}
	}
}

func TestSchedConfigValidate(t *testing.T) {
	dir := t.TempDir()
	src := newFakeSource(100)
	bad := []Config{
		{Workers: 0, Dir: dir},
		{Workers: 2, Dir: ""},
		{Workers: 2, Dir: dir, LeaseTTL: 100, Heartbeat: 100},
		{Workers: 2, Dir: dir, MaxCells: -1},
		{Workers: 2, Dir: dir, Plan: faults.WorkerPlan{Crashes: []faults.WorkerCrash{{Worker: 0}}}},
	}
	for i, cfg := range bad {
		if _, err := Run(src, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// A clean fleet drains the queue: every cell exactly once, one durable
// bundle per worker, and the bundle union covers the campaign.
func TestSchedBasic(t *testing.T) {
	f := newFakeSource(600, 700, 800, 900, 1000, 1100)
	dir := t.TempDir()
	res, err := Run(f, Config{Workers: 3, Steal: true, Dir: dir})
	mustComplete(t, f, res, err)
	if res.Stats.LeasesGranted != 6 || res.Stats.WorkerCrashes != 0 || res.Stats.Duplicates != 0 {
		t.Fatalf("clean-run stats: %+v", res.Stats)
	}
	for id, n := range f.runs {
		if n != 1 {
			t.Errorf("cell %q ran %d times, want 1", id, n)
		}
	}
	if res.Makespan <= 0 {
		t.Fatal("no simulated makespan")
	}
	if len(res.BundlePaths) != 3 || !strings.HasSuffix(res.BundlePaths[0], "fake.worker1of3.json") {
		t.Fatalf("bundle paths: %v", res.BundlePaths)
	}
	covered := map[string]bool{}
	for _, p := range res.BundlePaths {
		m, err := expt.ReadCampaignManifestFile(p)
		if err != nil {
			t.Fatalf("worker bundle %s: %v", p, err)
		}
		if !m.Leased {
			t.Fatalf("worker bundle %s is not marked leased", p)
		}
		for _, rec := range m.Cells {
			covered[rec.ID] = true
		}
	}
	if len(covered) != len(f.ids) {
		t.Fatalf("bundles cover %d of %d cells", len(covered), len(f.ids))
	}
}

// A heartbeat blackout expires the lease; with stealing on, the cell
// is re-executed elsewhere while the silent worker keeps computing, and
// the late ack plus the re-execution are arbitrated by digest.
func TestSchedBlackoutStealDuplicate(t *testing.T) {
	f := newFakeSource(4000, 4000, 9000)
	plan := faults.WorkerPlan{
		Name:      "test-blackout",
		Blackouts: []faults.HeartbeatBlackout{{Worker: 1, Window: faults.Window{From: 0, Until: 1e9}}},
	}
	res, err := Run(f, Config{Workers: 2, Steal: true, Plan: plan, Dir: t.TempDir()})
	mustComplete(t, f, res, err)
	s := res.Stats
	if s.LeasesExpired == 0 || s.CellsRequeued == 0 || s.HeartbeatsMissed == 0 {
		t.Fatalf("blackout left no trace: %+v", s)
	}
	if s.CellsStolen == 0 || s.Duplicates == 0 || s.AcksLate == 0 {
		t.Fatalf("steal/duplicate/late-ack path not exercised: %+v", s)
	}
	if f.runs["cell01"] != 2 {
		t.Fatalf("reclaimed cell ran %d times, want 2", f.runs["cell01"])
	}
}

// The same topology with a nondeterministic cell: the duplicate
// completion disagrees by digest and the run must fail loudly, naming
// the cell and both digests — never silent last-write-wins.
func TestSchedDigestMismatchHardError(t *testing.T) {
	f := newFakeSource(4000, 4000, 9000)
	f.vary["cell01"] = true
	plan := faults.WorkerPlan{
		Name:      "test-blackout",
		Blackouts: []faults.HeartbeatBlackout{{Worker: 1, Window: faults.Window{From: 0, Until: 1e9}}},
	}
	_, err := Run(f, Config{Workers: 2, Steal: true, Plan: plan, Dir: t.TempDir()})
	if err == nil {
		t.Fatal("nondeterministic duplicate completion accepted")
	}
	for _, want := range []string{"conflicting digests", "cell01", "last-write-wins"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("arbitration error %q does not mention %q", err, want)
		}
	}
}

// Without work-stealing a reclaimed cell stays reserved for the worker
// that lost it: nothing is stolen and nothing re-executes.
func TestSchedNoStealReservation(t *testing.T) {
	f := newFakeSource(4000, 4000, 9000)
	plan := faults.WorkerPlan{
		Name:      "test-blackout",
		Blackouts: []faults.HeartbeatBlackout{{Worker: 1, Window: faults.Window{From: 0, Until: 1e9}}},
	}
	res, err := Run(f, Config{Workers: 2, Steal: false, Plan: plan, Dir: t.TempDir()})
	mustComplete(t, f, res, err)
	if res.Stats.CellsStolen != 0 {
		t.Fatalf("no-steal policy stole %d cells", res.Stats.CellsStolen)
	}
	for id, n := range f.runs {
		if n != 1 {
			t.Errorf("cell %q ran %d times under no-steal", id, n)
		}
	}
}

// A mid-cell crash loses the in-flight result: the lease expires, the
// cell is re-executed, and the worker rejoins from its durable bundle.
func TestSchedMidCellCrashRerun(t *testing.T) {
	f := newFakeSource(600, 700, 800, 900)
	plan := faults.WorkerPlan{
		Name:    "test-midcell",
		Crashes: []faults.WorkerCrash{{Worker: 1, AfterCells: 1, MidCell: true, RestartAfter: 100}},
	}
	res, err := Run(f, Config{Workers: 2, Steal: true, Plan: plan, Dir: t.TempDir()})
	mustComplete(t, f, res, err)
	s := res.Stats
	if s.WorkerCrashes != 1 || s.WorkerRestarts != 1 {
		t.Fatalf("crash/restart counts: %+v", s)
	}
	if f.runs["cell01"] != 2 {
		t.Fatalf("mid-cell-crashed cell ran %d times, want 2", f.runs["cell01"])
	}
}

// A before-ack crash is the at-least-once window: the completion is
// durable but unacknowledged. A quick restart recovers it from the
// bundle — the cell is never re-executed.
func TestSchedBeforeAckRecovery(t *testing.T) {
	f := newFakeSource(600, 700, 800)
	plan := faults.WorkerPlan{
		Name:    "test-before-ack",
		Crashes: []faults.WorkerCrash{{Worker: 0, AfterCells: 1, BeforeAck: true, RestartAfter: 50}},
	}
	res, err := Run(f, Config{Workers: 2, Steal: true, Plan: plan, Dir: t.TempDir()})
	mustComplete(t, f, res, err)
	if res.Stats.Recovered == 0 {
		t.Fatalf("lost ack was not recovered from the bundle: %+v", res.Stats)
	}
	if f.runs["cell00"] != 1 {
		t.Fatalf("durably checkpointed cell re-executed %d times", f.runs["cell00"])
	}
}

// A kill between a worker checkpoint's temp write and its rename (the
// torn-checkpoint window) must leave the previous bundle authoritative:
// the scheduler treats the failed write as a worker crash, reloads the
// last good bundle, and re-runs only the lost cell.
func TestSchedTornCheckpointReclaim(t *testing.T) {
	f := newFakeSource(600, 700)
	dir := t.TempDir()
	bundle := WorkerBundlePath(dir, "fake", 0, 1)
	calls := 0
	atomicfile.TestHookBeforeRename = func(dest string) error {
		if dest != bundle {
			return nil
		}
		calls++
		if calls == 2 { // call 1 is the join checkpoint; call 2 the first cell
			return errors.New("injected kill before rename")
		}
		return nil
	}
	defer func() { atomicfile.TestHookBeforeRename = nil }()

	res, err := Run(f, Config{Workers: 1, Dir: dir, RestartDelay: 100})
	mustComplete(t, f, res, err)
	s := res.Stats
	if s.CheckpointsTorn != 1 || s.WorkerCrashes != 1 || s.WorkerRestarts != 1 {
		t.Fatalf("torn-checkpoint stats: %+v", s)
	}
	if f.runs["cell00"] != 2 {
		t.Fatalf("torn cell ran %d times, want 2 (lost checkpoint must re-execute)", f.runs["cell00"])
	}
	orphans, err := filepath.Glob(bundle + ".tmp*")
	if err != nil || len(orphans) == 0 {
		t.Fatalf("torn write left no orphan temp file (err %v)", err)
	}
	m, err := expt.ReadCampaignManifestFile(bundle)
	if err != nil {
		t.Fatalf("final bundle unreadable after torn checkpoint: %v", err)
	}
	if len(m.Cells) != 2 {
		t.Fatalf("final bundle has %d cells, want 2", len(m.Cells))
	}
}

// Repeated torn checkpoints must fail loudly instead of crash-looping.
func TestSchedTornCheckpointLoopFails(t *testing.T) {
	f := newFakeSource(600)
	dir := t.TempDir()
	bundle := WorkerBundlePath(dir, "fake", 0, 1)
	calls := 0
	atomicfile.TestHookBeforeRename = func(dest string) error {
		if dest != bundle {
			return nil
		}
		calls++
		if calls >= 2 {
			return errors.New("injected persistent write failure")
		}
		return nil
	}
	defer func() { atomicfile.TestHookBeforeRename = nil }()
	_, err := Run(f, Config{Workers: 1, Dir: dir, RestartDelay: 10})
	if err == nil || !strings.Contains(err.Error(), "consecutive checkpoints") {
		t.Fatalf("persistent checkpoint failure: %v", err)
	}
}

// Hedging routes around a straggler: once the lease outlives the
// longest completed cell by the hedge factor, an idle worker duplicates
// the cell, and the makespan collapses to the fast copy.
func TestSchedHedgeStraggler(t *testing.T) {
	mk := func() *fakeSource { return newFakeSource(100, 100, 100) }
	plan := faults.WorkerPlan{
		Name: "test-straggler",
		Slow: []faults.SlowWorker{{Worker: 1, Factor: 50}},
	}
	slow := mk()
	noHedge, err := Run(slow, Config{Workers: 2, Steal: true, Plan: plan, Dir: t.TempDir()})
	mustComplete(t, slow, noHedge, err)

	hedged := mk()
	withHedge, err := Run(hedged, Config{Workers: 2, Steal: true, Hedge: true, Plan: plan, Dir: t.TempDir()})
	mustComplete(t, hedged, withHedge, err)
	if withHedge.Stats.CellsHedged == 0 {
		t.Fatalf("straggler was never hedged: %+v", withHedge.Stats)
	}
	if withHedge.Makespan >= noHedge.Makespan {
		t.Fatalf("hedging did not improve makespan: %v vs %v", withHedge.Makespan, noHedge.Makespan)
	}
}

// Memoize runs each unique cell once no matter how often drivers ask.
func TestMemoize(t *testing.T) {
	f := newFakeSource(100, 200)
	m := Memoize(f)
	for i := 0; i < 3; i++ {
		for _, id := range m.CellIDs() {
			if _, err := m.RunCell(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	for id, n := range f.runs {
		if n != 1 {
			t.Errorf("memoized cell %q ran %d times", id, n)
		}
	}
	if _, err := m.RunCell("nope"); err == nil {
		t.Error("memoized unknown cell did not error")
	}
}

// schedCampaignRef opens fig2 at shard-test scale, memoizes it, and
// produces the unsharded reference bytes through the shared finalize
// path.
func schedCampaignRef(t *testing.T) (expt.Options, *expt.CampaignHandle, Source, map[string]expt.CellRecord, []byte, []byte) {
	t.Helper()
	opt := expt.DefaultOptions()
	opt.Scale = 0.002
	opt.Seeds = []uint64{11}
	h, err := expt.OpenCampaign("fig2", opt)
	if err != nil {
		t.Fatal(err)
	}
	src := Memoize(h)
	ref := map[string]expt.CellRecord{}
	for _, id := range src.CellIDs() {
		rec, err := src.RunCell(id)
		if err != nil {
			t.Fatal(err)
		}
		ref[id] = rec
	}
	var rep, cs bytes.Buffer
	res, err := h.Finalize(&rep, ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	if rep.Len() == 0 || cs.Len() == 0 {
		t.Fatal("empty reference output")
	}
	return opt, h, src, ref, rep.Bytes(), cs.Bytes()
}

// The headline guarantee: for every standard crash plan × worker count
// × steal policy, the scheduler terminates, completes every cell
// exactly once in the arbitrated ledger, and the merged report and CSV
// are byte-identical to the unsharded run.
func TestSchedPropertyByteIdentical(t *testing.T) {
	opt, h, src, ref, wantRep, wantCSV := schedCampaignRef(t)
	for _, plan := range faults.StandardWorkerPlans() {
		for _, workers := range []int{1, 2, 4, 7} {
			for _, steal := range []bool{false, true} {
				name := fmt.Sprintf("%s/w%d/steal=%t", plan.Name, workers, steal)
				res, err := Run(src, Config{Workers: workers, Steal: steal, Plan: plan, Dir: t.TempDir()})
				if err != nil {
					t.Errorf("%s: %v", name, err)
					continue
				}
				if len(res.Records) != len(h.CellIDs()) {
					t.Errorf("%s: %d records for %d cells", name, len(res.Records), len(h.CellIDs()))
					continue
				}
				for id, rec := range res.Records {
					if rec.Digest != ref[id].Digest {
						t.Errorf("%s: cell %q digest drifted", name, id)
					}
				}
				var rep, cs bytes.Buffer
				fin, err := h.Finalize(&rep, res.Records)
				if err != nil {
					t.Errorf("%s: finalize: %v", name, err)
					continue
				}
				if err := fin.WriteCSV(&cs); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rep.Bytes(), wantRep) {
					t.Errorf("%s: merged report differs from unsharded run", name)
				}
				if !bytes.Equal(cs.Bytes(), wantCSV) {
					t.Errorf("%s: merged CSV differs from unsharded run", name)
				}
				// The durable bundles alone reproduce the same bytes
				// through the ordinary merge path.
				if steal && workers == 4 {
					mopt := opt
					var mrep bytes.Buffer
					mopt.Out = &mrep
					mres, err := expt.MergeManifestFiles(mopt, res.BundlePaths)
					if err != nil {
						t.Errorf("%s: bundle merge: %v", name, err)
						continue
					}
					var mcs bytes.Buffer
					if err := mres.WriteCSV(&mcs); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(mrep.Bytes(), wantRep) || !bytes.Equal(mcs.Bytes(), wantCSV) {
						t.Errorf("%s: bundle merge not byte-identical", name)
					}
				}
			}
		}
	}
}

// Re-executed cells of the real campaign are bit-identical: a steal
// re-run without memoization produces the same digests, so duplicate
// arbitration passes against genuinely recomputed results.
func TestSchedRealRerunDeterminism(t *testing.T) {
	_, h, _, _, wantRep, _ := schedCampaignRef(t)
	plan := faults.WorkerPlan{
		Name:      "test-blackout",
		Blackouts: []faults.HeartbeatBlackout{{Worker: 1, Window: faults.Window{From: 0, Until: 1e12}}},
	}
	res, err := Run(h, Config{Workers: 2, Steal: true, Plan: plan, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("real re-run under blackout: %v", err)
	}
	var rep bytes.Buffer
	if _, err := h.Finalize(&rep, res.Records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep.Bytes(), wantRep) {
		t.Fatal("report after real re-execution differs from unsharded run")
	}
}

// Killing the coordinator mid-run (the MaxCells budget) and restarting
// from the worker bundles alone finishes the campaign and produces the
// identical final report.
func TestSchedCoordinatorKillResume(t *testing.T) {
	opt, h, src, _, wantRep, wantCSV := schedCampaignRef(t)
	plan, err := faults.WorkerPlanByName("crash-early")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := Config{Workers: 3, Steal: true, Plan: plan, Dir: dir, MaxCells: 3}
	partial, err := Run(src, cfg)
	if !errors.Is(err, expt.ErrIncomplete) {
		t.Fatalf("budgeted run returned %v, want ErrIncomplete", err)
	}
	if partial == nil || len(partial.Records) == 0 || len(partial.Records) >= len(h.CellIDs()) {
		t.Fatalf("budget halt ledger has %d records", len(partial.Records))
	}

	cfg.MaxCells = 0
	cfg.Resume = true
	res, err := Run(src, cfg)
	if err != nil {
		t.Fatalf("resume from bundles: %v", err)
	}
	var rep, cs bytes.Buffer
	fin, err := h.Finalize(&rep, res.Records)
	if err != nil {
		t.Fatal(err)
	}
	if err := fin.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep.Bytes(), wantRep) || !bytes.Equal(cs.Bytes(), wantCSV) {
		t.Fatal("coordinator kill-resume not byte-identical to unsharded run")
	}
	// And the final bundles merge to the same bytes on their own.
	mopt := opt
	var mrep bytes.Buffer
	mopt.Out = &mrep
	if _, err := expt.MergeManifestFiles(mopt, res.BundlePaths); err != nil {
		t.Fatalf("merge of resumed bundles: %v", err)
	}
	if !bytes.Equal(mrep.Bytes(), wantRep) {
		t.Fatal("merged resumed bundles differ from unsharded run")
	}
}

// Resume refuses bundles from different options or a different fleet
// shape instead of silently mixing incompatible results.
func TestSchedResumeRejectsMismatch(t *testing.T) {
	f := newFakeSource(100, 200)
	dir := t.TempDir()
	if _, err := Run(f, Config{Workers: 2, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	// Different fleet size: worker bundle 1of2 is not 1of3.
	if _, err := Run(f, Config{Workers: 3, Dir: dir, Resume: true}); err == nil {
		// Worker 0's bundle names 1of3 and does not exist; 1of2 is simply
		// ignored, so this resume legitimately starts fresh.
		_ = err
	}
	// Same fleet, different fingerprint.
	g := newFakeSource(100, 200)
	gAlias := *g
	src := &fingerprintSource{fakeSource: &gAlias, fp: "otherfp"}
	if _, err := Run(src, Config{Workers: 2, Dir: dir, Resume: true}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("resume with different fingerprint: %v", err)
	}
}

type fingerprintSource struct {
	*fakeSource
	fp string
}

func (s *fingerprintSource) Fingerprint() string { return s.fp }
