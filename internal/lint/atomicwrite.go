package lint

import (
	"go/ast"
)

// atomicfilePath is the one package allowed to create output files
// directly: it is the temp+fsync+rename implementation everything else
// must go through.
const atomicfilePath = modulePath + "/internal/core/atomicfile"

// atomicwriteForbidden are the os functions that create or truncate a
// destination path in place. A crash mid-write leaves a partial file
// under the artifact's real name, which resumable shards and warm
// caches would then trust. os.Open (read-only) stays available.
var atomicwriteForbidden = map[string]string{
	"Create":     "truncates the destination before writing",
	"WriteFile":  "truncates the destination before writing",
	"OpenFile":   "can truncate or append to the destination in place",
	"CreateTemp": "leaks an orphan temp file unless every failure path removes it",
}

// AtomicwriteAnalyzer forbids direct file creation outside
// internal/core/atomicfile. Durable artifacts — manifests, .npy caches,
// CSVs, metrics dumps, DAG/submit files — must land via temp+rename so
// a kill at any instant leaves either the old complete file or the new
// complete file (DESIGN.md §14).
var AtomicwriteAnalyzer = &Analyzer{
	Name: "atomicwrite",
	Doc:  "forbid os.Create/os.WriteFile/os.OpenFile/os.CreateTemp outside internal/core/atomicfile; durable artifacts go through atomicfile",
	Run: func(pass *Pass) {
		if pass.Pkg.ImportPath == atomicfilePath {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Pkg.Info, call)
				if funcPkgPath(fn) != "os" {
					return true
				}
				why, bad := atomicwriteForbidden[fn.Name()]
				if !bad {
					return true
				}
				pass.Reportf(call.Pos(),
					"os.%s %s: write durable artifacts through atomicfile.Create/atomicfile.WriteFile (temp+fsync+rename)",
					fn.Name(), why)
				return true
			})
		}
	},
}
