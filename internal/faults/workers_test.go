package faults

import (
	"strings"
	"testing"
)

func TestWorkerPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan WorkerPlan
		want string // substring of the expected error; "" = valid
	}{
		{"zero plan", WorkerPlan{}, ""},
		{"negative worker", WorkerPlan{Crashes: []WorkerCrash{{Worker: -1, AfterCells: 1}}}, "negative worker"},
		{"zero after-cells", WorkerPlan{Crashes: []WorkerCrash{{Worker: 0}}}, "AfterCells"},
		{"mid-cell and before-ack", WorkerPlan{Crashes: []WorkerCrash{{Worker: 0, AfterCells: 1, MidCell: true, BeforeAck: true}}}, "both"},
		{"negative restart", WorkerPlan{Crashes: []WorkerCrash{{Worker: 0, AfterCells: 1, RestartAfter: -1}}}, "RestartAfter"},
		{"negative blackout worker", WorkerPlan{Blackouts: []HeartbeatBlackout{{Worker: -2, Window: Window{From: 0, Until: 1}}}}, "negative worker"},
		{"inverted blackout window", WorkerPlan{Blackouts: []HeartbeatBlackout{{Worker: 0, Window: Window{From: 5, Until: 1}}}}, "window"},
		{"slow factor below one", WorkerPlan{Slow: []SlowWorker{{Worker: 0, Factor: 0.5}}}, "factor"},
		{"negative slow worker", WorkerPlan{Slow: []SlowWorker{{Worker: -1, Factor: 2}}}, "negative"},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestStandardWorkerPlans(t *testing.T) {
	plans := StandardWorkerPlans()
	if len(plans) == 0 {
		t.Fatal("no standard worker plans")
	}
	if plans[0].Name != "none" || !plans[0].Empty() {
		t.Fatalf("first plan is %q (empty=%t), want an empty none", plans[0].Name, plans[0].Empty())
	}
	seen := map[string]bool{}
	for _, p := range plans {
		if p.Name == "" {
			t.Error("standard plan without a name")
		}
		if seen[p.Name] {
			t.Errorf("duplicate plan name %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Validate(); err != nil {
			t.Errorf("plan %q does not validate: %v", p.Name, err)
		}
		if p.Name != "none" && p.Empty() {
			t.Errorf("plan %q injects nothing", p.Name)
		}
	}
}

func TestWorkerPlanByName(t *testing.T) {
	for _, name := range []string{"", "none"} {
		p, err := WorkerPlanByName(name)
		if err != nil || !p.Empty() {
			t.Errorf("WorkerPlanByName(%q) = %+v, %v", name, p, err)
		}
	}
	p, err := WorkerPlanByName("crash-before-ack")
	if err != nil || len(p.Crashes) != 1 || !p.Crashes[0].BeforeAck {
		t.Errorf("WorkerPlanByName(crash-before-ack) = %+v, %v", p, err)
	}
	if _, err := WorkerPlanByName("no-such-plan"); err == nil || !strings.Contains(err.Error(), "crash-early") {
		t.Errorf("unknown plan error should list available names, got %v", err)
	}
}
