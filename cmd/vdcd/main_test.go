package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"fdw"
)

func TestSeedPopulatesCatalog(t *testing.T) {
	c := fdw.NewCatalog()
	if err := seed(c); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Fatalf("seeded %d products, want 4", c.Len())
	}
	found := c.Search(fdw.CatalogQuery{Tag: "eew"})
	if len(found) != 2 {
		t.Fatalf("eew-tagged products: %d, want 2", len(found))
	}
}

func TestLoadOrNewAndPersist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.json")
	c, err := loadOrNew(path) // missing file → empty catalog
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("missing state file should give empty catalog")
	}
	if err := seed(c); err != nil {
		t.Fatal(err)
	}
	if err := saveCatalog(c, path); err != nil {
		t.Fatal(err)
	}
	c2, err := loadOrNew(path)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("restored %d products, want %d", c2.Len(), c.Len())
	}
}

func TestPersistingMiddlewareSaves(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.json")
	c := fdw.NewCatalog()
	srv := httptest.NewServer(persisting(fdw.NewCatalogServer(c), c, path))
	defer srv.Close()
	cl := fdw.NewCatalogClient(srv.URL)
	if _, err := cl.Deposit(fdw.Product{Name: "x", Type: "waveform", Batch: "b", Region: "chile"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("state not persisted after POST: %v", err)
	}
}
