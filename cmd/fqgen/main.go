// Command fqgen runs the FakeQuakes numeric kernels directly (no
// workflow, no pool): it generates one stochastic rupture scenario on
// the Chilean megathrust and synthesizes GNSS displacement waveforms,
// writing the Fig. 1-style products to disk — slip distribution as
// CSV, waveforms as .mseed, and a summary to stdout.
//
// Usage:
//
//	fqgen -mw 8.4 -stations 8 -seed 7 -out products/
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"fdw"
	"fdw/internal/core/atomicfile"
	"fdw/internal/mseed"
)

func main() {
	var (
		mw       = flag.Float64("mw", 8.1, "target moment magnitude (7.5–9.3)")
		stations = flag.Int("stations", 5, "number of GNSS stations")
		seed     = flag.Uint64("seed", 1, "random seed")
		outDir   = flag.String("out", "", "directory for rupture.csv and waveforms.mseed (optional)")
		gfCache  = flag.String("gfcache", "", "directory for recycled Green's-function kernels (optional; skips Phase B on matching geometry)")
	)
	flag.Parse()
	if err := run(*mw, *stations, *seed, *outDir, *gfCache); err != nil {
		fmt.Fprintln(os.Stderr, "fqgen:", err)
		os.Exit(1)
	}
}

func run(mw float64, stations int, seed uint64, outDir, gfCache string) error {
	if gfCache != "" {
		if err := os.MkdirAll(gfCache, 0o755); err != nil {
			return err
		}
		fdw.EnableGFCache(gfCache)
	}
	sc, err := fdw.GenerateScenario(seed, mw, stations)
	if err != nil {
		return err
	}
	r := sc.Rupture
	fmt.Printf("rupture %s: target Mw %.2f, realized Mw %.2f\n", r.ID, r.TargetMw, r.ActualMw)
	fmt.Printf("  %d subfaults, max slip %.2f m, rupture duration %.0f s\n",
		len(r.Patch), r.MaxSlip(), r.Duration())
	for _, w := range sc.Waveforms {
		fmt.Printf("  %-5s PGD %.3f m\n", w.Station, w.PGD())
	}
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	// Slip distribution: one row per subfault of the rupture patch.
	err = atomicfile.WriteFile(filepath.Join(outDir, "rupture.csv"), func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"subfault", "slip_m", "onset_s", "rise_s"}); err != nil {
			return err
		}
		for i, idx := range r.Patch {
			row := []string{
				strconv.Itoa(idx),
				strconv.FormatFloat(r.SlipM[i], 'f', 4, 64),
				strconv.FormatFloat(r.OnsetS[i], 'f', 2, 64),
				strconv.FormatFloat(r.RiseS[i], 'f', 2, 64),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	})
	if err != nil {
		return err
	}

	// Waveforms: all stations, 3 components each, in the mseed codec.
	var records []mseed.Record
	for i := range sc.Waveforms {
		records = append(records, sc.Waveforms[i].ToRecords()...)
	}
	err = atomicfile.WriteFile(filepath.Join(outDir, "waveforms.mseed"), func(w io.Writer) error {
		return mseed.Write(w, records)
	})
	if err != nil {
		return err
	}
	fmt.Printf("products written to %s (rupture.csv, waveforms.mseed: %d records, %d bytes)\n",
		outDir, len(records), mseed.EncodedSize(records))
	return nil
}
