# Convenience targets; `make check` is the pre-PR gate (DESIGN.md §7).

.PHONY: check test bench build

check:
	sh scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -run '^$$' -bench . -benchmem .
