package wtrace

import (
	"bytes"
	"strings"
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/sim"
)

func sampleJobs() []JobRecord {
	return []JobRecord{
		{ID: "1.0", Class: ClassRupture, Submit: 0, Start: 60, End: 210},
		{ID: "1.1", Class: ClassRupture, Submit: 0, Start: 90, End: 250},
		{ID: "2.0", Class: ClassGF, Submit: 300, Start: 360, End: 7560},
		{ID: "3.0", Class: ClassWaveform, Submit: 7600, Start: 7700, End: 8750},
		{ID: "3.1", Class: ClassWaveform, Submit: 7600, Start: -1, End: -1},
	}
}

func TestBatchCSVRoundTrip(t *testing.T) {
	b := BatchRecord{Name: "batch1", Submit: 0, Start: 60, End: 8750}
	var buf bytes.Buffer
	if err := WriteBatchCSV(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBatchCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("round trip: %+v vs %+v", got, b)
	}
}

func TestJobsCSVRoundTrip(t *testing.T) {
	jobs := sampleJobs()
	var buf bytes.Buffer
	if err := WriteJobsCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("%d rows, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		if got[i] != jobs[i] {
			t.Fatalf("row %d: %+v vs %+v", i, got[i], jobs[i])
		}
	}
}

func TestJobRecordPredicates(t *testing.T) {
	j := sampleJobs()[4]
	if j.Started() || j.Finished() {
		t.Fatal("unstarted job mispredicted")
	}
	j2 := sampleJobs()[0]
	if !j2.Started() || !j2.Finished() {
		t.Fatal("finished job mispredicted")
	}
}

func TestBatchValidate(t *testing.T) {
	bad := []BatchRecord{
		{Name: "", Submit: 0, Start: 1, End: 2},
		{Name: "x", Submit: 5, Start: 1, End: 2},
		{Name: "x", Submit: 0, Start: 3, End: 2},
	}
	for i, b := range bad {
		if b.Validate() == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	if (BatchRecord{Name: "x", Submit: 0, Start: 1, End: 2}).Validate() != nil {
		t.Fatal("good batch rejected")
	}
	if d := (BatchRecord{Name: "x", Submit: 10, Start: 20, End: 110}).Duration(); d != 100 {
		t.Fatalf("duration %v", d)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadBatchCSV(strings.NewReader("just,one,row\n")); err == nil {
		t.Fatal("malformed batch CSV accepted")
	}
	if _, err := ReadBatchCSV(strings.NewReader("h,h,h,h\na,b,c,d\n")); err == nil {
		t.Fatal("non-numeric batch CSV accepted")
	}
	if _, err := ReadJobsCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty jobs CSV accepted")
	}
	if _, err := ReadJobsCSV(strings.NewReader("h,h,h,h,h\n1.0,alien,0,1,2\n")); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := ReadJobsCSV(strings.NewReader("h,h,h,h,h\n1.0,rupture,zero,1,2\n")); err == nil {
		t.Fatal("bad number accepted")
	}
	if _, err := ReadJobsCSV(strings.NewReader("h,h\n1,2\n")); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestFromSchedd(t *testing.T) {
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("b", k, nil)
	jobs := []*htcondor.Job{
		{Owner: "u", Executable: "fdw_phase_A.sh", BaseExecSeconds: 100},
		{Owner: "u", Executable: "fdw_phase_C.sh", BaseExecSeconds: 100},
		{Owner: "u", Executable: "fdw_phase_B.sh", BaseExecSeconds: 100},
	}
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	k.At(10, func() {
		for _, j := range jobs {
			if err := s.MarkRunning(j, "h"); err != nil {
				t.Error(err)
			}
		}
	})
	k.At(110, func() {
		for _, j := range jobs {
			if err := s.MarkCompleted(j, 0); err != nil {
				t.Error(err)
			}
		}
	})
	k.Run()
	batch, recs, err := FromSchedd("b", s)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Submit != 0 || batch.Start != 10 || batch.End != 110 {
		t.Fatalf("batch %+v", batch)
	}
	if len(recs) != 3 {
		t.Fatalf("%d job records", len(recs))
	}
	wantClasses := []JobClass{ClassRupture, ClassWaveform, ClassGF}
	for i, r := range recs {
		if r.Class != wantClasses[i] {
			t.Fatalf("job %d class %q, want %q", i, r.Class, wantClasses[i])
		}
		if !r.Finished() || r.End != 110 {
			t.Fatalf("job %d record %+v", i, r)
		}
	}
}

func TestFromScheddEmpty(t *testing.T) {
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("b", k, nil)
	if _, _, err := FromSchedd("b", s); err == nil {
		t.Fatal("empty schedd accepted")
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]JobClass{
		"fdw_phase_A.sh":      ClassRupture,
		"fdw_phase_B.sh":      ClassGF,
		"fdw_phase_C.sh":      ClassWaveform,
		"fdw_phase_matrix.sh": ClassMatrix,
		"other.sh":            ClassMatrix,
	}
	for exe, want := range cases {
		if got := classify(exe); got != want {
			t.Fatalf("classify(%q) = %q, want %q", exe, got, want)
		}
	}
}

func TestReadBatchCSVEdgeCases(t *testing.T) {
	cases := map[string]string{
		"empty input":      "",
		"header only":      "batch,submit,start,end\n",
		"unclosed quote":   "batch,submit,start,end\n\"b,1,2,3\n",
		"too few columns":  "batch,submit,start,end\nb,1,2\n",
		"extra row":        "batch,submit,start,end\nb,1,2,3\nc,4,5,6\n",
		"times unordered":  "batch,submit,start,end\nb,10,5,20\n",
		"empty batch name": "batch,submit,start,end\n,1,2,3\n",
	}
	for name, src := range cases {
		if _, err := ReadBatchCSV(strings.NewReader(src)); err == nil {
			t.Errorf("%s: ReadBatchCSV accepted %q", name, src)
		}
	}
}

func TestReadJobsCSVHeaderOnly(t *testing.T) {
	// A header with no rows is a valid, empty trace — not an error.
	jobs, err := ReadJobsCSV(strings.NewReader("job,class,submit,start,end\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("got %d jobs from header-only CSV", len(jobs))
	}
}

func TestReadJobsCSVDuplicateIDs(t *testing.T) {
	// The reader is a faithful parser: duplicate IDs are preserved in
	// row order for the consumer to judge, not silently deduplicated.
	src := "job,class,submit,start,end\nj1,rupture,0,1,2\nj1,rupture,3,4,5\n"
	jobs, err := ReadJobsCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != "j1" || jobs[1].ID != "j1" {
		t.Fatalf("duplicate rows not preserved: %+v", jobs)
	}
	if jobs[0].Submit != 0 || jobs[1].Submit != 3 {
		t.Fatalf("row order not preserved: %+v", jobs)
	}
}

func TestReadJobsCSVWhitespaceNumbers(t *testing.T) {
	// Quoted fields may carry stray spaces; the number parser trims.
	src := "job,class,submit,start,end\nj1,waveform,\" 1.5\",\" 2 \",3\n"
	jobs, err := ReadJobsCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Submit != 1.5 || jobs[0].Start != 2 {
		t.Fatalf("whitespace-padded numbers misparsed: %+v", jobs[0])
	}
}

func TestJobsCSVNeverRanRoundTrip(t *testing.T) {
	// Negative Start/End are the "never started/finished" sentinels
	// and must survive a write/read cycle exactly.
	in := []JobRecord{{ID: "j1", Class: ClassRupture, Submit: 7, Start: -1, End: -1}}
	var buf bytes.Buffer
	if err := WriteJobsCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJobsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip changed record: %+v -> %+v", in[0], out[0])
	}
	if out[0].Started() || out[0].Finished() {
		t.Fatal("sentinel times read back as started/finished")
	}
}
