package dagman

import (
	"fmt"
	"io"
	"sort"

	"fdw/internal/htcondor"
	"fdw/internal/obs"
	"fdw/internal/sim"
)

// NodeState tracks executor progress for one node.
type NodeState int

// Node lifecycle states.
const (
	NodeWaiting NodeState = iota
	NodeReady
	NodeSubmitted
	NodeDone
	NodeFailed
)

func (s NodeState) String() string {
	switch s {
	case NodeWaiting:
		return "waiting"
	case NodeReady:
		return "ready"
	case NodeSubmitted:
		return "submitted"
	case NodeDone:
		return "done"
	case NodeFailed:
		return "failed"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// JobFactory materializes the jobs for a node. FDW supplies one that
// expands the node's submit description with its VARS; tests supply
// synthetic jobs. A factory error fails the node.
type JobFactory func(n *Node) ([]*htcondor.Job, error)

// ScriptRunner executes a node's SCRIPT PRE/POST command line. A nil
// runner treats every script as an immediate success; a non-nil error
// fails the node (triggering RETRY, as DAGMan does).
type ScriptRunner func(n *Node, kind, cmdline string) error

// Executor runs a DAG against a schedd. One Executor corresponds to one
// `condor_submit_dag` invocation in the paper; the concurrent-DAGMans
// experiment runs several Executors (each with its own schedd identity)
// against the same pool.
type Executor struct {
	Name string

	dag     *DAG
	kernel  *sim.Kernel
	schedd  *htcondor.Schedd
	factory JobFactory

	// Scripts runs SCRIPT PRE/POST command lines (nil = always succeed).
	Scripts ScriptRunner

	state    map[string]*nodeRun
	active   map[string]int // category → active node count
	finished int
	failed   int
	inflight int // nodes currently NodeSubmitted
	started  bool

	// RetryDelay, if set, returns how long a failed node attempt waits
	// before its RETRY resubmission re-enters dispatch (the recovery
	// layer's exponential backoff; attempt is the just-failed attempt
	// number, starting at 1). nil — or a non-positive return — keeps
	// DAGMan's classic same-tick requeue, byte-identical to the hook
	// being absent.
	RetryDelay func(node string, attempt int) sim.Time

	// Obs, if set, receives node-lifecycle metrics (ready/running/done
	// counts, retries, rescue writes). Purely passive: scheduling
	// decisions never consult it.
	Obs *obs.Registry
	met execMetrics // handles resolved from Obs, rebuilt when it changes

	StartTime sim.Time
	EndTime   sim.Time
	done      bool

	// OnNodeDone, if set, fires when a node completes successfully.
	OnNodeDone func(n *Node)
}

type nodeRun struct {
	node      *Node
	state     NodeState
	cluster   int
	jobs      []*htcondor.Job
	remaining int
	attempts  int
	failures  int
	retries   int  // failed attempts that were requeued (RETRY budget spent)
	held      bool // NodeReady but waiting out a RetryDelay backoff
}

// NewExecutor prepares (but does not start) a DAG run.
func NewExecutor(name string, d *DAG, k *sim.Kernel, schedd *htcondor.Schedd, factory JobFactory) (*Executor, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("dagman: nil job factory")
	}
	e := &Executor{
		Name:    name,
		dag:     d,
		kernel:  k,
		schedd:  schedd,
		factory: factory,
		state:   map[string]*nodeRun{},
		active:  map[string]int{},
	}
	for _, nodeName := range d.Order {
		e.state[nodeName] = &nodeRun{node: d.Nodes[nodeName]}
	}
	schedd.Subscribe(e.onJobEvent)
	return e, nil
}

// Schedd returns the executor's schedd.
func (e *Executor) Schedd() *htcondor.Schedd { return e.schedd }

// execMetrics caches the executor's metric handles so the node-lifecycle
// hot path skips the registry's name+label map lookups. Obs is a public
// field assigned after construction, so handles resolve lazily and are
// rebuilt whenever the registry pointer changes. The per-node retry
// counters are keyed by node name and filled on first use.
type execMetrics struct {
	reg *obs.Registry

	running, done, failed, pending          *obs.Gauge
	submissions, retries, failures, rescues *obs.Counter
	retryBackoff                            *obs.Histogram
	nodeRetries                             map[string]*obs.Counter
}

// metrics returns the cached handle set, or nil when Obs is unset.
func (e *Executor) metrics() *execMetrics {
	if e.Obs == nil {
		return nil
	}
	if e.met.reg != e.Obs {
		r := e.Obs
		e.met = execMetrics{
			reg:          r,
			running:      r.Gauge("fdw_dagman_nodes_running", "dag", e.Name),
			done:         r.Gauge("fdw_dagman_nodes_done", "dag", e.Name),
			failed:       r.Gauge("fdw_dagman_nodes_failed", "dag", e.Name),
			pending:      r.Gauge("fdw_dagman_nodes_pending", "dag", e.Name),
			submissions:  r.Counter("fdw_dagman_node_submissions_total", "dag", e.Name),
			retries:      r.Counter("fdw_dagman_retries_total", "dag", e.Name),
			failures:     r.Counter("fdw_dagman_node_failures_total", "dag", e.Name),
			rescues:      r.Counter("fdw_dagman_rescue_writes_total", "dag", e.Name),
			retryBackoff: r.Histogram("fdw_dagman_retry_backoff_seconds", "dag", e.Name),
			nodeRetries:  map[string]*obs.Counter{},
		}
	}
	return &e.met
}

// nodeRetry returns the per-node retry counter, resolving it once.
func (m *execMetrics) nodeRetry(dag, node string) *obs.Counter {
	c, ok := m.nodeRetries[node]
	if !ok {
		//lint:allow seamguard reachable only via metrics(), which returns nil unless Obs (and so reg) is set
		c = m.reg.Counter("fdw_dagman_node_retries_total", "dag", dag, "node", node)
		m.nodeRetries[node] = c
	}
	return c
}

// nodeGauges refreshes the node-progress gauges.
func (e *Executor) nodeGauges() {
	m := e.metrics()
	if m == nil {
		return
	}
	total := len(e.dag.Order)
	m.running.Set(float64(e.inflight))
	m.done.Set(float64(e.finished))
	m.failed.Set(float64(e.failed))
	m.pending.Set(float64(total - e.finished - e.failed - e.inflight))
}

// Start submits every ready root node. Nodes pre-marked DONE are
// skipped (rescue-DAG semantics).
func (e *Executor) Start() error {
	if e.started {
		return fmt.Errorf("dagman: executor %q already started", e.Name)
	}
	e.started = true
	e.StartTime = e.kernel.Now()
	for _, name := range e.dag.Order {
		nr := e.state[name]
		if nr.node.Done {
			nr.state = NodeDone
			e.finished++
		}
	}
	// A DAG whose every node is pre-DONE finishes immediately.
	if e.finished == len(e.dag.Order) {
		e.done = true
		e.EndTime = e.kernel.Now()
		return nil
	}
	e.dispatchReady()
	return nil
}

// Done reports whether every node has finished (or the DAG failed).
func (e *Executor) Done() bool { return e.done }

// Failed reports whether any node exhausted its retries.
func (e *Executor) Failed() bool { return e.failed > 0 }

// NodeStates returns a copy of each node's current state.
func (e *Executor) NodeStates() map[string]NodeState {
	out := make(map[string]NodeState, len(e.state))
	for name, nr := range e.state {
		out[name] = nr.state
	}
	return out
}

// NodeRetries returns, per node, how many failed attempts were requeued
// under the RETRY budget (the counterpart of the
// fdw_dagman_node_retries_total metric, available with obs off).
func (e *Executor) NodeRetries() map[string]int {
	out := make(map[string]int, len(e.state))
	for name, nr := range e.state {
		out[name] = nr.retries
	}
	return out
}

// TotalRetries returns the sum of NodeRetries across the DAG.
func (e *Executor) TotalRetries() int {
	n := 0
	for _, nr := range e.state {
		n += nr.retries
	}
	return n
}

// RuntimeSeconds returns the DAG wall time (so far, if still running).
func (e *Executor) RuntimeSeconds() float64 {
	end := e.EndTime
	if !e.done {
		end = e.kernel.Now()
	}
	return float64(end - e.StartTime)
}

// ready reports whether all parents of n completed.
func (e *Executor) ready(n *Node) bool {
	for _, p := range n.Parents {
		if e.state[p].state != NodeDone {
			return false
		}
	}
	return true
}

// dispatchReady submits every waiting node whose parents are done,
// honoring category throttles, in declaration order.
func (e *Executor) dispatchReady() {
	for _, name := range e.dag.Order {
		nr := e.state[name]
		if nr.state != NodeWaiting && nr.state != NodeReady {
			continue
		}
		if nr.held {
			continue // backoff timer owns this node's next dispatch
		}
		if !e.ready(nr.node) {
			continue
		}
		nr.state = NodeReady
		if cat := nr.node.Category; cat != "" {
			if limit, ok := e.dag.MaxJobs[cat]; ok && e.active[cat] >= limit {
				continue
			}
		}
		e.submitNode(nr)
	}
}

func (e *Executor) submitNode(nr *nodeRun) {
	nr.attempts++
	if nr.node.PreScript != "" && e.Scripts != nil {
		if err := e.Scripts(nr.node, "PRE", nr.node.PreScript); err != nil {
			e.failNodeAttempted(nr)
			return
		}
	}
	jobs, err := e.factory(nr.node)
	if err != nil || len(jobs) == 0 {
		e.failNodeAttempted(nr)
		return
	}
	cluster, err := e.schedd.Submit(jobs)
	if err != nil {
		e.failNode(nr)
		return
	}
	nr.cluster = cluster
	nr.jobs = jobs
	nr.remaining = len(jobs)
	nr.state = NodeSubmitted
	e.inflight++
	if cat := nr.node.Category; cat != "" {
		e.active[cat]++
	}
	if m := e.metrics(); m != nil {
		m.submissions.Inc()
		e.nodeGauges()
	}
}

// failNode handles a failure after jobs ran (attempts already counted
// by submitNode).
func (e *Executor) failNode(nr *nodeRun) { e.failNodeAttempted(nr) }

// failNodeAttempted retries the node if budget remains, else fails it.
func (e *Executor) failNodeAttempted(nr *nodeRun) {
	if nr.attempts <= nr.node.Retry {
		// Retry: requeue the node as ready rather than resubmitting
		// directly, so the attempt goes back through dispatchReady and
		// honors the category MAXJOBS throttle (and declaration-order
		// fairness) like any other dispatch.
		nr.retries++
		if m := e.metrics(); m != nil {
			m.retries.Inc()
			m.nodeRetry(e.Name, nr.node.Name).Inc()
		}
		nr.state = NodeReady
		var delay sim.Time
		if e.RetryDelay != nil {
			delay = e.RetryDelay(nr.node.Name, nr.attempts)
		}
		if delay > 0 {
			// Backoff: hold the node out of dispatch until the delay
			// elapses, then requeue through the normal throttle path. A
			// held node still counts as dispatchable, so checkComplete
			// keeps the DAG alive until the timer fires.
			nr.held = true
			if m := e.metrics(); m != nil {
				m.retryBackoff.Observe(float64(delay))
			}
			e.kernel.After(delay, func() {
				nr.held = false
				e.dispatchReady()
			})
			return
		}
		e.dispatchReady()
		return
	}
	nr.state = NodeFailed
	e.failed++
	if m := e.metrics(); m != nil {
		m.failures.Inc()
		e.nodeGauges()
	}
	// A permanent failure releases its category slot: siblings throttled
	// behind this node must be dispatched now, or the DAG would hang with
	// checkComplete seeing them dispatchable while nothing ever submits
	// them.
	e.dispatchReady()
	e.checkComplete()
}

// onJobEvent watches the schedd for terminations belonging to our nodes.
func (e *Executor) onJobEvent(j *htcondor.Job, ev htcondor.EventType) {
	if ev != htcondor.EventTerminated && ev != htcondor.EventAborted {
		return
	}
	for _, nr := range e.state {
		if nr.state != NodeSubmitted || nr.cluster != j.Cluster {
			continue
		}
		nr.remaining--
		if ev == htcondor.EventAborted || j.ExitCode != 0 {
			nr.failures++
		}
		if nr.remaining > 0 {
			return
		}
		// Node finished: all jobs terminated.
		e.inflight--
		if cat := nr.node.Category; cat != "" {
			e.active[cat]--
		}
		if nr.failures == 0 && nr.node.PostScript != "" && e.Scripts != nil {
			if err := e.Scripts(nr.node, "POST", nr.node.PostScript); err != nil {
				nr.failures++
			}
		}
		if nr.failures > 0 {
			nr.failures = 0
			e.failNode(nr)
		} else {
			nr.state = NodeDone
			e.finished++
			e.nodeGauges()
			if e.OnNodeDone != nil {
				e.OnNodeDone(nr.node)
			}
			e.checkComplete()
			if !e.done {
				e.dispatchReady()
			}
		}
		return
	}
}

func (e *Executor) checkComplete() {
	if e.done {
		return
	}
	for _, nr := range e.state {
		switch nr.state {
		case NodeDone, NodeFailed:
			continue
		default:
			// A failed DAG stops making progress once nothing is in
			// flight and nothing can become ready.
			if e.failed > 0 && !e.anyInFlight() && !e.anyDispatchable() {
				e.done = true
				e.EndTime = e.kernel.Now()
			}
			return
		}
	}
	e.done = true
	e.EndTime = e.kernel.Now()
}

func (e *Executor) anyInFlight() bool {
	for _, nr := range e.state {
		if nr.state == NodeSubmitted {
			return true
		}
	}
	return false
}

func (e *Executor) anyDispatchable() bool {
	for _, nr := range e.state {
		if (nr.state == NodeWaiting || nr.state == NodeReady) && e.ready(nr.node) {
			return true
		}
	}
	return false
}

// WriteRescue emits a rescue DAG: the original DAG with completed nodes
// marked DONE, so a re-run resumes where this one stopped.
func (e *Executor) WriteRescue(w io.Writer) error {
	if m := e.metrics(); m != nil {
		m.rescues.Inc()
	}
	rescue := NewDAG()
	rescue.Comments = append(rescue.Comments,
		fmt.Sprintf("rescue DAG for %s: %d/%d nodes done", e.Name, e.finished, len(e.dag.Order)))
	for _, name := range e.dag.Order {
		orig := e.dag.Nodes[name]
		n := &Node{
			Name:       orig.Name,
			SubmitFile: orig.SubmitFile,
			Vars:       orig.Vars,
			Retry:      orig.Retry,
			Category:   orig.Category,
			PreScript:  orig.PreScript,
			PostScript: orig.PostScript,
			Done:       e.state[name].state == NodeDone,
		}
		if err := rescue.AddNode(n); err != nil {
			return err
		}
	}
	for _, name := range e.dag.Order {
		for _, c := range e.dag.Nodes[name].Children {
			if err := rescue.AddEdge(name, c); err != nil {
				return err
			}
		}
	}
	for c, v := range e.dag.MaxJobs {
		rescue.MaxJobs[c] = v
	}
	return rescue.Write(w)
}

// Progress summarizes node states for monitoring displays.
func (e *Executor) Progress() string {
	counts := map[NodeState]int{}
	for _, nr := range e.state {
		counts[nr.state]++
	}
	states := []NodeState{NodeWaiting, NodeReady, NodeSubmitted, NodeDone, NodeFailed}
	parts := make([]string, 0, len(states))
	for _, s := range states {
		if counts[s] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", s, counts[s]))
		}
	}
	sort.Strings(parts)
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
