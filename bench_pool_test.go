package fdw_test

import (
	"fmt"
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/ospool"
	"fdw/internal/sim"
)

// Pool-scale benchmarks (BENCH_pool.json): simulated jobs/sec through
// the OSPool matchmaking + event hot path at OSPool magnitude, far past
// the paper's 16k-waveform figure scale. Each op is one full workload:
// submit N jobs across four owners (a mix of unconstrained and
// site-pinned requirements), run the pool to drain, and report
// simulated jobs per wall-clock second. "cold" starts from an empty
// pool and pays the glidein ramp; "steady" pre-warms the pool with a
// priming batch outside the timed region, so the measured segment is
// the matchmaking/claim/complete cycle at full occupancy.
//
// scripts/benchdiff.sh tracks these against the BENCH_pool.json
// baseline alongside the kernel suite.

// benchPoolConfig scales the default site mix by mult and widens the
// per-cycle match budget with it, so matchmaking, not an artificially
// small negotiator cap, is what the benchmark exercises.
func benchPoolConfig(mult int) ospool.Config {
	cfg := ospool.DefaultConfig()
	sites := make([]ospool.SiteConfig, len(cfg.Sites))
	copy(sites, cfg.Sites)
	for i := range sites {
		sites[i].MaxSlots *= mult
	}
	cfg.Sites = sites
	cfg.MatchesPerCycle = cfg.TotalSlots() / 2
	if cfg.MatchesPerCycle < 120 {
		cfg.MatchesPerCycle = 120
	}
	cfg.GlideinRampMean = 120
	cfg.GlideinIdleTimeout = 3600
	return cfg
}

// benchPoolJobs builds the benchmark workload: n jobs split across four
// owners; one owner in eight jobs is pinned to a single site, the rest
// match anywhere (the FDW phase mix in miniature).
func benchPoolJobs(n int, site string) [][]*htcondor.Job {
	owners := []string{"dag1", "dag2", "dag3", "dag4"}
	batches := make([][]*htcondor.Job, len(owners))
	for oi, owner := range owners {
		share := n / len(owners)
		if oi < n%len(owners) {
			share++
		}
		jobs := make([]*htcondor.Job, share)
		for i := range jobs {
			j := &htcondor.Job{
				Owner:           owner,
				RequestCpus:     4,
				RequestMemoryMB: 8192,
				BaseExecSeconds: 300,
			}
			if i%8 == 7 {
				j.Requirements = fmt.Sprintf("(TARGET.GLIDEIN_Site == %q)", site)
			}
			jobs[i] = j
		}
		batches[oi] = jobs
	}
	return batches
}

// drainPending reports whether any schedd still has unfinished jobs.
func drainPending(schedds []*htcondor.Schedd) bool {
	for _, s := range schedds {
		if !s.Done() {
			return true
		}
	}
	return false
}

// runPoolBench drives one workload of n jobs through a fresh pool and
// returns the simulated-seconds makespan. warm pre-runs a priming batch
// (sized to the pool) with the timer stopped so the measured batch hits
// a fully provisioned pool.
func runPoolBench(b *testing.B, n, mult int, warm bool) {
	cfg := benchPoolConfig(mult)
	site := cfg.Sites[0].Name
	var drained float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := sim.NewKernel(42)
		p, err := ospool.New(k, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		schedds := make([]*htcondor.Schedd, 4)
		for si := range schedds {
			schedds[si] = htcondor.NewSchedd(fmt.Sprintf("s%d", si), k, nil)
			p.AddSchedd(schedds[si])
		}
		p.Start()
		if warm {
			// Priming: one job per slot, drained before the clock starts.
			prime := benchPoolJobs(cfg.TotalSlots(), site)
			for si, jobs := range prime {
				if _, err := schedds[si].Submit(jobs); err != nil {
					b.Fatal(err)
				}
			}
			for drainPending(schedds) {
				if !k.Step() {
					b.Fatal("kernel ran dry during priming")
				}
			}
		}
		batches := benchPoolJobs(n, site)
		b.StartTimer()
		for si, jobs := range batches {
			if _, err := schedds[si].Submit(jobs); err != nil {
				b.Fatal(err)
			}
		}
		if err := p.RunUntilDone(sim.Forever); err != nil {
			b.Fatal(err)
		}
		drained = float64(k.Now())
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "simjobs/s")
	b.ReportMetric(drained, "simsecs/op")
}

// BenchmarkPool is the pool-scale hot-path suite. Size/glidein pairs:
// 10k jobs / ~4.6k slots, 100k jobs / ~46k slots, 1M jobs / ~115k
// slots (the OSPool-magnitude configuration from ROADMAP.md).
func BenchmarkPool(b *testing.B) {
	cases := []struct {
		jobs, mult int
		long       bool
	}{
		{10_000, 10, false},
		{100_000, 100, false},
		{1_000_000, 250, true},
	}
	for _, mode := range []string{"cold", "steady"} {
		for _, c := range cases {
			name := fmt.Sprintf("%s/%d", mode, c.jobs)
			b.Run(name, func(b *testing.B) {
				if c.long && testing.Short() {
					b.Skip("1M-job configuration skipped in -short mode")
				}
				runPoolBench(b, c.jobs, c.mult, mode == "steady")
			})
		}
	}
}
