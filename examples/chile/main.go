// Chile: the paper's motivating workload. Generates a real FakeQuakes
// scenario with the numeric kernels (a Fig. 1-style data product),
// then sweeps waveform quantities on the simulated OSG with both the
// small (2-station) and full (121-station) Chilean inputs — a reduced
// Fig. 2.
//
//	go run ./examples/chile
package main

import (
	"fmt"
	"log"

	"fdw"
)

func main() {
	// Part 1 — a real rupture + waveforms from the physics kernels.
	sc, err := fdw.GenerateScenario(7, 8.4, 4)
	if err != nil {
		log.Fatal(err)
	}
	r := sc.Rupture
	fmt.Printf("FakeQuakes scenario %s: Mw %.2f, %d subfaults, max slip %.1f m, %0.fs rupture\n",
		r.ID, r.ActualMw, len(r.Patch), r.MaxSlip(), r.Duration())
	for _, w := range sc.Waveforms {
		fmt.Printf("  %-5s peak ground displacement %.2f m\n", w.Station, w.PGD())
	}

	// Part 2 — quantity sweep on the simulated OSG (reduced Fig. 2:
	// 1/16 of the paper's quantities, one repetition).
	fmt.Println("\nquantity sweep (scale 1/16):")
	fmt.Printf("%9s %9s | %10s %9s\n", "stations", "waveforms", "runtime h", "jobs/min")
	for _, stations := range []int{2, 121} {
		for _, q := range []int{64, 320, 1560, 3125} {
			env, err := fdw.NewEnv(11, fdw.DefaultPoolConfig())
			if err != nil {
				log.Fatal(err)
			}
			cfg := fdw.DefaultConfig()
			cfg.Name = fmt.Sprintf("chile-%d-%d", stations, q)
			cfg.Stations = stations
			cfg.Waveforms = q
			cfg.Seed = 11
			w, err := fdw.NewWorkflow(cfg, env, nil)
			if err != nil {
				log.Fatal(err)
			}
			if err := fdw.RunBatch(env, []*fdw.Workflow{w}, 1000*3600); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%9d %9d | %10.2f %9.2f\n", stations, q, w.RuntimeHours(), w.ThroughputJPM())
		}
	}
	fmt.Println("\nshape check: throughput grows with quantity; the full input is slower but steadier.")
}
