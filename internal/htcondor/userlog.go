package htcondor

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"fdw/internal/sim"
)

// EventType is an HTCondor user-log event code.
type EventType int

// User-log event codes (HTCondor's numbering).
const (
	EventSubmit     EventType = 0  // 000 Job submitted
	EventExecute    EventType = 1  // 001 Job executing
	EventEvicted    EventType = 4  // 004 Job evicted
	EventTerminated EventType = 5  // 005 Job terminated
	EventAborted    EventType = 9  // 009 Job aborted (removed)
	EventHeld       EventType = 12 // 012 Job held
	EventReleased   EventType = 13 // 013 Job released
)

func (e EventType) String() string {
	switch e {
	case EventSubmit:
		return "Job submitted from host"
	case EventExecute:
		return "Job executing on host"
	case EventEvicted:
		return "Job was evicted"
	case EventTerminated:
		return "Job terminated"
	case EventAborted:
		return "Job was aborted by the user"
	case EventHeld:
		return "Job was held"
	case EventReleased:
		return "Job was released"
	default:
		return fmt.Sprintf("Event %03d", int(e))
	}
}

// logEpoch anchors simulated second 0 to a concrete wall-clock date so
// that log lines look like real HTCondor logs (the experiments ran
// around SC23).
var logEpoch = time.Date(2023, time.November, 12, 0, 0, 0, 0, time.UTC)

// JobEvent is one parsed user-log event.
type JobEvent struct {
	Type    EventType
	Cluster int
	Proc    int
	At      sim.Time // seconds since logEpoch
	Host    string
}

// UserLog accumulates HTCondor-format event-log text. FDW's monitoring
// parses this text (the paper: "Shell scripts parse HTCondor log files
// to extract information (e.g., runtime, wait times, ...)").
//
// Text output is buffered: Append formats into an internal buffer that
// is written out once it passes userLogFlushBytes, so a million-event
// run issues kilobyte-scale writes instead of one syscall per event.
// Call Flush (or run through Pool.RunUntilDone / core.RunBatch, which
// flush on completion) before reading the underlying writer.
type UserLog struct {
	w      io.Writer
	events []JobEvent
	buf    []byte
}

// userLogFlushBytes is the buffered-text threshold that triggers a
// write to the underlying writer.
const userLogFlushBytes = 64 * 1024

// NewUserLog writes formatted events to w (which may be nil to keep
// events only in memory).
func NewUserLog(w io.Writer) *UserLog { return &UserLog{w: w} }

// Events returns all recorded events in append order.
func (l *UserLog) Events() []JobEvent { return l.events }

// Append records an event and buffers its textual form, flushing to the
// underlying writer when the buffer is full.
func (l *UserLog) Append(ev JobEvent) error {
	l.events = append(l.events, ev)
	if l.w == nil {
		return nil
	}
	l.buf = appendEventText(l.buf, ev)
	if len(l.buf) >= userLogFlushBytes {
		return l.Flush()
	}
	return nil
}

// Flush writes any buffered event text to the underlying writer.
func (l *UserLog) Flush() error {
	if l.w == nil || len(l.buf) == 0 {
		return nil
	}
	_, err := l.w.Write(l.buf)
	l.buf = l.buf[:0]
	return err
}

// FormatEvent renders one event in HTCondor user-log syntax:
//
//	005 (1234.000.000) 2023-11-12 03:14:15 Job terminated.
//	...
func FormatEvent(ev JobEvent) string { return string(appendEventText(nil, ev)) }

// appendEventText appends FormatEvent's output to b without the
// fmt.Sprintf round trip — the userlog hot path.
func appendEventText(b []byte, ev JobEvent) []byte {
	b = appendZeroPad(b, int(ev.Type), 3)
	b = append(b, " ("...)
	b = appendZeroPad(b, ev.Cluster, 4)
	b = append(b, '.')
	b = appendZeroPad(b, ev.Proc, 3)
	b = append(b, ".000) "...)
	b = logEpoch.Add(ev.At.Duration()).AppendFormat(b, "2006-01-02 15:04:05")
	b = append(b, ' ')
	b = append(b, ev.Type.String()...)
	switch ev.Type {
	case EventSubmit, EventExecute:
		b = append(b, ": <"...)
		b = append(b, ev.Host...)
		b = append(b, '>')
	}
	return append(b, "\n...\n"...)
}

// appendZeroPad appends v zero-padded to width digits (like %0*d).
func appendZeroPad(b []byte, v, width int) []byte {
	var tmp [20]byte
	s := strconv.AppendInt(tmp[:0], int64(v), 10)
	for i := len(s); i < width; i++ {
		b = append(b, '0')
	}
	return append(b, s...)
}

// ParseUserLog parses text produced by FormatEvent (a subset of real
// HTCondor logs: the "..." separator, the numeric event code, the id
// triple, and the timestamp).
func ParseUserLog(r io.Reader) ([]JobEvent, error) {
	var out []JobEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == "..." {
			continue
		}
		ev, err := parseEventLine(line)
		if err != nil {
			return nil, fmt.Errorf("htcondor: log line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

func parseEventLine(line string) (JobEvent, error) {
	var ev JobEvent
	var cluster, proc, sub int
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return ev, fmt.Errorf("short event line %q", line)
	}
	code, err := strconv.Atoi(fields[0])
	if err != nil {
		return ev, fmt.Errorf("bad event code %q", fields[0])
	}
	if _, err := fmt.Sscanf(fields[1], "(%d.%d.%d)", &cluster, &proc, &sub); err != nil {
		return ev, fmt.Errorf("bad job id %q", fields[1])
	}
	ts, terr := time.Parse("2006-01-02 15:04:05", fields[2]+" "+fields[3])
	if terr != nil {
		return ev, fmt.Errorf("bad timestamp %q %q", fields[2], fields[3])
	}
	ev.Type = EventType(code)
	ev.Cluster = cluster
	ev.Proc = proc
	ev.At = sim.Time(ts.Sub(logEpoch).Seconds())
	if i := strings.Index(line, "<"); i >= 0 {
		if j := strings.Index(line[i:], ">"); j > 0 {
			ev.Host = line[i+1 : i+j]
		}
	}
	return ev, nil
}

// JobTimes aggregates per-job submit/start/end times out of a parsed
// event stream — the exact reduction FDW's monitoring performs.
type JobTimes struct {
	Cluster, Proc       int
	Submit, Start, End  sim.Time
	HasStart, HasEnd    bool
	Evictions, Releases int
	Aborted, EverHeld   bool
	LastHost            string
	ExecSecs, WaitSecs  float64
}

// ReduceJobTimes folds events into per-job timing rows, ordered by
// first appearance.
func ReduceJobTimes(events []JobEvent) []*JobTimes {
	index := map[[2]int]*JobTimes{}
	var order []*JobTimes
	get := func(c, p int) *JobTimes {
		k := [2]int{c, p}
		if jt, ok := index[k]; ok {
			return jt
		}
		jt := &JobTimes{Cluster: c, Proc: p}
		index[k] = jt
		order = append(order, jt)
		return jt
	}
	for _, ev := range events {
		jt := get(ev.Cluster, ev.Proc)
		switch ev.Type {
		case EventSubmit:
			jt.Submit = ev.At
		case EventExecute:
			// The final execute event wins (after evictions the job
			// restarts; wait time is measured to the last start, which is
			// also how the paper's scripts treat re-runs).
			jt.Start = ev.At
			jt.HasStart = true
			jt.LastHost = ev.Host
		case EventEvicted:
			jt.Evictions++
			jt.HasStart = false
		case EventTerminated:
			jt.End = ev.At
			jt.HasEnd = true
		case EventAborted:
			jt.Aborted = true
			jt.End = ev.At
		case EventHeld:
			jt.EverHeld = true
		case EventReleased:
			jt.Releases++
		}
	}
	for _, jt := range order {
		if jt.HasStart && jt.HasEnd {
			jt.ExecSecs = float64(jt.End - jt.Start)
		}
		if jt.HasStart {
			jt.WaitSecs = float64(jt.Start - jt.Submit)
		}
	}
	return order
}
