package obs

import (
	"bytes"
	"reflect"
	"testing"
)

func TestMergeSnapshotsRollsUpShards(t *testing.T) {
	// Two "shards" of the same campaign: same metric names, disjoint work.
	a := NewRegistry(nil)
	a.Counter("cells_total", "campaign", "fig2").Add(3)
	a.Counter("only_a_total").Inc()
	a.Gauge("progress", "shard", "1").Set(0.5)
	a.Histogram("cell_seconds").Observe(1)
	a.Histogram("cell_seconds").Observe(10)

	b := NewRegistry(nil)
	b.Counter("cells_total", "campaign", "fig2").Add(4)
	b.Gauge("progress", "shard", "1").Set(0.9)
	b.Histogram("cell_seconds").Observe(100)

	m := MergeSnapshots(a.Snapshot(), nil, b.Snapshot())

	counters := map[string]uint64{}
	for _, c := range m.Counters {
		counters[mergeKey(c.Name, c.Labels)] = c.Value
	}
	if got := counters[mergeKey("cells_total", map[string]string{"campaign": "fig2"})]; got != 7 {
		t.Fatalf("summed counter = %d, want 7", got)
	}
	if got := counters[mergeKey("only_a_total", nil)]; got != 1 {
		t.Fatalf("one-sided counter = %d, want 1", got)
	}

	if len(m.Gauges) != 1 {
		t.Fatalf("%d gauges", len(m.Gauges))
	}

	if len(m.Histograms) != 1 {
		t.Fatalf("%d histograms", len(m.Histograms))
	}
	h := m.Histograms[0]
	if h.Count != 3 || h.Sum != 111 {
		t.Fatalf("hist count=%d sum=%v", h.Count, h.Sum)
	}
	if h.Min != 1 || h.Max != 100 {
		t.Fatalf("hist min=%v max=%v", h.Min, h.Max)
	}
	if h.P99 < h.P50 {
		t.Fatalf("re-estimated quantiles inverted: p50=%v p99=%v", h.P50, h.P99)
	}
	var total uint64
	for i, bk := range h.Buckets {
		if i > 0 && bk.Count < h.Buckets[i-1].Count {
			t.Fatalf("merged buckets not cumulative: %+v", h.Buckets)
		}
		total = bk.Count
	}
	if total > h.Count {
		t.Fatalf("bucket mass %d exceeds count %d", total, h.Count)
	}
}

func TestMergeSnapshotsDeterministic(t *testing.T) {
	a := NewRegistry(nil)
	a.Counter("x_total", "k", "1").Inc()
	a.Counter("a_total").Inc()
	b := NewRegistry(nil)
	b.Counter("x_total", "k", "1").Inc()
	b.Counter("b_total").Inc()

	m1 := MergeSnapshots(a.Snapshot(), b.Snapshot())
	m2 := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("merge not deterministic")
	}
	// Output is sorted by canonical key regardless of input order.
	names := []string{}
	for _, c := range MergeSnapshots(b.Snapshot(), a.Snapshot()).Counters {
		names = append(names, c.Name)
	}
	want := []string{"a_total", "b_total", "x_total"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("counter order %v, want %v", names, want)
	}
}

func TestMergeSnapshotJSONRoundTrip(t *testing.T) {
	a := NewRegistry(nil)
	a.Counter("x_total").Inc()
	a.Histogram("h").Observe(2)
	m := MergeSnapshots(a.Snapshot())

	var buf bytes.Buffer
	if err := WriteSnapshotJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("snapshot JSON round trip changed data:\n%+v\n%+v", m, back)
	}
}
