package classad

import (
	"sort"
	"strings"
	"sync"
)

// parseCache memoizes Parse results by source text. Requirements
// expressions repeat heavily across jobs (every job of one workflow
// phase shares a handful of strings), so matchmaking-rate callers go
// through ParseCached instead of reparsing per evaluation. Parsing is
// pure, so the memo cannot affect results, only speed; the cache is
// safe for the concurrent experiment harness.
var parseCache sync.Map // string -> parseResult

type parseResult struct {
	expr Expr
	err  error
}

// ParseCached is Parse with a process-wide memo. The returned Expr is
// shared between callers; expressions are immutable after parsing, and
// Eval is safe to call concurrently.
func ParseCached(src string) (Expr, error) {
	if v, ok := parseCache.Load(src); ok {
		r := v.(parseResult)
		return r.expr, r.err
	}
	expr, err := Parse(src)
	v, _ := parseCache.LoadOrStore(src, parseResult{expr, err})
	r := v.(parseResult)
	return r.expr, r.err
}

// EvalBoolCached is EvalBool backed by ParseCached — the matchmaking
// fast path (HTCondor Requirements semantics: UNDEFINED is false).
func EvalBoolCached(src string, my, target Ad) (bool, error) {
	e, err := ParseCached(src)
	if err != nil {
		return false, err
	}
	b, ok := e.Eval(my, target).AsBool()
	return b && ok, nil
}

// ReferencedAttrs reports the attribute names e can resolve, split by
// which ad they may probe: MY.-prefixed and bare references read the
// evaluating (job) ad; TARGET.-prefixed and bare references read the
// machine ad (bare names try MY first, then TARGET — HTCondor's
// matching order — so they appear in both sets). Names are lowercased,
// de-duplicated, and sorted. The pool's matchmaking index uses the MY
// set to decide which job attributes participate in a job's match
// signature.
func ReferencedAttrs(e Expr) (my, target []string) {
	mySet := map[string]bool{}
	targetSet := map[string]bool{}
	collectAttrs(e, mySet, targetSet)
	return sortedKeys(mySet), sortedKeys(targetSet)
}

func collectAttrs(e Expr, mySet, targetSet map[string]bool) {
	switch v := e.(type) {
	case literal:
		return
	case *attrRef:
		low := strings.ToLower(v.name)
		switch {
		case strings.HasPrefix(low, "my."):
			mySet[low[3:]] = true
		case strings.HasPrefix(low, "target."):
			targetSet[low[7:]] = true
		default:
			mySet[low] = true
			targetSet[low] = true
		}
	case *unary:
		collectAttrs(v.x, mySet, targetSet)
	case *binary:
		collectAttrs(v.l, mySet, targetSet)
		collectAttrs(v.r, mySet, targetSet)
	}
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
