// Package expt regenerates every figure in the paper's evaluation
// (Figs. 2–6) plus the §6 headline comparison, printing the same rows
// and series the paper reports. Each experiment takes an Options with
// a Scale knob: Scale 1.0 is the paper's full workload; smaller scales
// shrink waveform counts proportionally for quick runs while keeping
// the shapes.
package expt

import (
	"fmt"
	"io"

	"fdw/internal/core"
	"fdw/internal/obs"
	"fdw/internal/ospool"
	"fdw/internal/recovery"
	"fdw/internal/sim"
)

// Options configures an experiment run.
type Options struct {
	// Seeds are the repetition seeds; the paper runs three repetitions
	// of everything.
	Seeds []uint64
	// Scale multiplies waveform quantities (1.0 = paper size).
	Scale float64
	// Pool is the OSPool model configuration.
	Pool ospool.Config
	// Horizon bounds each simulated batch.
	Horizon sim.Time
	// Out receives the printed rows; nil discards them.
	Out io.Writer
	// Workers bounds how many independent simulations run concurrently
	// (the fdwexp -j flag). Each simulation owns a private Env, so any
	// value produces byte-identical reports; non-positive means
	// GOMAXPROCS.
	Workers int
	// Obs, if set, is attached to every simulated environment. The
	// registry is shared across worker goroutines: counter totals are
	// exact at any Workers value, and reports/CSVs stay byte-identical
	// with Obs on or off (instrumentation is strictly passive). nil
	// disables metrics.
	Obs *obs.Registry
	// Recovery, if set, attaches an adaptive recovery policy
	// (internal/recovery) to every single-DAGMan simulation (the Fig. 2
	// harness and the Fig. 5/6 trace batches). nil — or a config with
	// every mechanism disabled — leaves all reports byte-identical to
	// pre-recovery runs. The chaos sweep ignores this field's nil-ness:
	// it always runs its recovery-on arm, using this config when set and
	// recovery.DefaultConfig() otherwise.
	Recovery *recovery.Config
}

// attachRecovery installs opt.Recovery (when set) into a freshly built
// workflow's pool, schedd, and executor. Must run after the injector
// (if any) is created, so RNG stream splits happen in a fixed order.
func attachRecovery(opt Options, env *core.Env, w *core.Workflow) error {
	if opt.Recovery == nil {
		return nil
	}
	pol, err := recovery.New(env.Kernel, *opt.Recovery)
	if err != nil {
		return err
	}
	pol.SetObs(opt.Obs)
	pol.Attach(env.Pool, w.Schedd)
	pol.AttachExecutor(w.Exec)
	return nil
}

// DefaultOptions mirrors the paper: three repetitions at full scale.
func DefaultOptions() Options {
	return Options{
		Seeds:   []uint64{11, 23, 47},
		Scale:   1.0,
		Pool:    ospool.DefaultConfig(),
		Horizon: 1000 * 3600,
	}
}

func (o Options) validate() error {
	if len(o.Seeds) == 0 {
		return fmt.Errorf("expt: no seeds")
	}
	if o.Scale <= 0 || o.Scale > 1 {
		return fmt.Errorf("expt: scale %v outside (0,1]", o.Scale)
	}
	if o.Horizon <= 0 {
		return fmt.Errorf("expt: non-positive horizon")
	}
	return o.Pool.Validate()
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// scaleN scales a paper waveform quantity, keeping it workable.
func (o Options) scaleN(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 16 {
		v = 16
	}
	return v
}

// runOne executes a single FDW workflow and returns (runtime hours,
// throughput JPM, completed jobs).
func runOne(opt Options, cfg core.Config, seed uint64) (float64, float64, int, error) {
	rt, jpm, jobs, _, err := runOneCell(opt, cfg, seed)
	return rt, jpm, jobs, err
}

// runOneCell is runOne plus the simulation's final kernel clock — the
// sim-clock provenance a campaign manifest records per cell.
func runOneCell(opt Options, cfg core.Config, seed uint64) (float64, float64, int, sim.Time, error) {
	env, err := core.NewEnvObs(seed, opt.Pool, opt.Obs)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	w, err := core.NewWorkflow(cfg, env.Kernel, env.Pool, nil)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := attachRecovery(opt, env, w); err != nil {
		return 0, 0, 0, 0, err
	}
	if err := core.RunBatch(env, []*core.Workflow{w}, opt.Horizon); err != nil {
		return 0, 0, 0, 0, err
	}
	return w.RuntimeHours(), w.ThroughputJPM(), w.Schedd.Completed(), env.Kernel.Now(), nil
}

// Fig2Row is one point of Fig. 2: a (station list, quantity) cell with
// its three-repetition statistics — formulas (1) and (2).
type Fig2Row struct {
	Stations  int
	Waveforms int
	Jobs      int

	RuntimeH   float64 // formula (1), hours
	RuntimeSD  float64
	RuntimeMin float64
	RuntimeMax float64

	ThroughputJPM float64 // formula (2)
	ThroughputSD  float64
}

// Fig2Quantities are the paper's six waveform quantities.
var Fig2Quantities = []int{1024, 2000, 5120, 10000, 24960, 50000}

// Fig2 reruns §4.1/§5.1: increasing quantities × {2, 121} stations.
// The sweep is a shardable campaign (campaign.go): this entry point
// runs every cell locally; fdwexp -shard runs the same cells
// partitioned across manifests and -merge re-finalizes identically.
func Fig2(opt Options) ([]Fig2Row, error) {
	rows, err := runCampaign(fig2Campaign(), opt)
	if err != nil {
		return nil, err
	}
	return rows.([]Fig2Row), nil
}

// Fig3Row is one concurrency level of Fig. 3 — formulas (3) and (4).
type Fig3Row struct {
	DAGMans       int
	WaveformsEach int

	RuntimeH      float64 // formula (3), per-DAGMan average, hours
	RuntimeSD     float64
	RuntimeMin    float64
	RuntimeMax    float64
	ThroughputJPM float64 // formula (4), per-DAGMan average
	MakespanH     float64 // batch wall time (all DAGMans done), averaged
}

// Fig3Concurrency is the paper's DAGMan partition ladder.
var Fig3Concurrency = []int{1, 2, 4, 8}

// Fig3Total is the joint waveform target of §4.2.
const Fig3Total = 16000

// Fig3 reruns §4.2/§5.2: N concurrent DAGMans jointly producing 16,000
// waveforms with the full Chilean input, all under one OSG user. One
// campaign cell per (concurrency level, seed); each cell simulates its
// whole batch in a private Env, and finalize stitches measurements back
// in (level, seed, DAGMan) order so floating-point aggregation sums in
// exactly the serial order.
func Fig3(opt Options) ([]Fig3Row, error) {
	rows, err := runCampaign(fig3Campaign(), opt)
	if err != nil {
		return nil, err
	}
	return rows.([]Fig3Row), nil
}
