// Package geom models the source geometry the paper's experiments use:
// a Slab2-style Chilean subduction-zone fault mesh (Hayes et al. 2018)
// and the Chilean GNSS station network (121 stations for the "full
// Chilean input", 2 for the "small Chilean input").
//
// Real Slab2 grids are proprietary-format USGS products; per the
// substitution rule we synthesize a geometrically faithful equivalent:
// a north–south trench with dip steepening down-dip, discretized into
// rectangular subfaults, plus a coastal station network with realistic
// spacing. All generation is deterministic.
package geom

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for geodesy.
const EarthRadiusKm = 6371.0

// LatLon is a geographic coordinate in degrees.
type LatLon struct {
	Lat, Lon float64
}

// HaversineKm returns the great-circle distance between a and b in km.
func HaversineKm(a, b LatLon) float64 {
	const deg = math.Pi / 180
	dLat := (b.Lat - a.Lat) * deg
	dLon := (b.Lon - a.Lon) * deg
	la1 := a.Lat * deg
	la2 := b.Lat * deg
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Subfault is one rectangular patch of the discretized fault plane.
type Subfault struct {
	Index     int     // position in Fault.Subfaults
	Along     int     // along-strike cell index (south → north)
	Down      int     // down-dip cell index (trench → depth)
	Center    LatLon  // surface-projected center
	DepthKm   float64 // center depth
	StrikeDeg float64
	DipDeg    float64
	LengthKm  float64 // along strike
	WidthKm   float64 // along dip
}

// AreaKm2 returns the subfault's area.
func (s *Subfault) AreaKm2() float64 { return s.LengthKm * s.WidthKm }

// DistanceKm returns the approximate 3-D distance between the centers
// of two subfaults, combining great-circle surface distance with the
// depth difference.
func (s *Subfault) DistanceKm(o *Subfault) float64 {
	surf := HaversineKm(s.Center, o.Center)
	dz := s.DepthKm - o.DepthKm
	return math.Sqrt(surf*surf + dz*dz)
}

// Fault is a discretized fault surface.
type Fault struct {
	Name        string
	NAlong      int // number of cells along strike
	NDown       int // number of cells down dip
	Subfaults   []Subfault
	SubfaultLen float64 // km, along strike
	SubfaultWid float64 // km, along dip
}

// NumSubfaults returns len(f.Subfaults).
func (f *Fault) NumSubfaults() int { return len(f.Subfaults) }

// At returns the subfault at along-strike index i and down-dip index j.
func (f *Fault) At(i, j int) *Subfault {
	if i < 0 || i >= f.NAlong || j < 0 || j >= f.NDown {
		panic(fmt.Sprintf("geom: subfault (%d,%d) out of %dx%d", i, j, f.NAlong, f.NDown))
	}
	return &f.Subfaults[i*f.NDown+j]
}

// ChileFaultConfig parameterizes the synthetic Chilean megathrust mesh.
type ChileFaultConfig struct {
	LatSouth, LatNorth float64 // trench extent, degrees
	TrenchLon          float64 // trench longitude at LatSouth
	TrenchLonSlope     float64 // degrees of longitude per degree of latitude
	DipShallowDeg      float64 // dip at the trench
	DipDeepDeg         float64 // dip at the bottom of the seismogenic zone
	WidthKm            float64 // down-dip seismogenic width
	SubfaultKm         float64 // target subfault edge length
}

// DefaultChileFault mirrors the scale of the Chilean subduction interface
// used by MudPy's Chile model: roughly 1,000 km along strike from the
// 2014 Iquique region south past the 2010 Maule region, ~200 km of
// seismogenic width, 10 km subfaults.
func DefaultChileFault() ChileFaultConfig {
	return ChileFaultConfig{
		LatSouth:       -38.0,
		LatNorth:       -29.0,
		TrenchLon:      -73.5,
		TrenchLonSlope: 0.15,
		DipShallowDeg:  10,
		DipDeepDeg:     30,
		WidthKm:        200,
		SubfaultKm:     10,
	}
}

// BuildFault discretizes the configured slab geometry.
func BuildFault(cfg ChileFaultConfig) (*Fault, error) {
	if cfg.LatNorth <= cfg.LatSouth {
		return nil, fmt.Errorf("geom: LatNorth %v must exceed LatSouth %v", cfg.LatNorth, cfg.LatSouth)
	}
	if cfg.SubfaultKm <= 0 || cfg.WidthKm <= 0 {
		return nil, fmt.Errorf("geom: non-positive subfault (%v km) or width (%v km)", cfg.SubfaultKm, cfg.WidthKm)
	}
	if cfg.DipShallowDeg <= 0 || cfg.DipDeepDeg < cfg.DipShallowDeg || cfg.DipDeepDeg >= 90 {
		return nil, fmt.Errorf("geom: invalid dip range [%v, %v]", cfg.DipShallowDeg, cfg.DipDeepDeg)
	}
	lengthKm := (cfg.LatNorth - cfg.LatSouth) * 111.19 // km per degree latitude
	nAlong := int(math.Round(lengthKm / cfg.SubfaultKm))
	nDown := int(math.Round(cfg.WidthKm / cfg.SubfaultKm))
	if nAlong < 1 || nDown < 1 {
		return nil, fmt.Errorf("geom: degenerate mesh %dx%d", nAlong, nDown)
	}
	f := &Fault{
		Name:        "chile-megathrust",
		NAlong:      nAlong,
		NDown:       nDown,
		Subfaults:   make([]Subfault, 0, nAlong*nDown),
		SubfaultLen: lengthKm / float64(nAlong),
		SubfaultWid: cfg.WidthKm / float64(nDown),
	}
	const deg = math.Pi / 180
	for i := 0; i < nAlong; i++ {
		latFrac := (float64(i) + 0.5) / float64(nAlong)
		lat := cfg.LatSouth + latFrac*(cfg.LatNorth-cfg.LatSouth)
		trenchLon := cfg.TrenchLon + cfg.TrenchLonSlope*(lat-cfg.LatSouth)
		// Strike follows the local trench azimuth: due north plus the
		// longitude drift.
		strike := math.Mod(360-math.Atan(cfg.TrenchLonSlope)/deg, 360)
		depth := 0.0
		horizKm := 0.0
		for j := 0; j < nDown; j++ {
			dipFrac := (float64(j) + 0.5) / float64(nDown)
			dip := cfg.DipShallowDeg + dipFrac*(cfg.DipDeepDeg-cfg.DipShallowDeg)
			// Advance half a cell with the previous dip, half with this one,
			// to integrate the curved profile.
			depth += f.SubfaultWid * math.Sin(dip*deg)
			horizKm += f.SubfaultWid * math.Cos(dip*deg)
			kmPerLonDeg := 111.19 * math.Cos(lat*deg)
			center := LatLon{Lat: lat, Lon: trenchLon + horizKm/kmPerLonDeg}
			f.Subfaults = append(f.Subfaults, Subfault{
				Index:     len(f.Subfaults),
				Along:     i,
				Down:      j,
				Center:    center,
				DepthKm:   depth - 0.5*f.SubfaultWid*math.Sin(dip*deg),
				StrikeDeg: strike,
				DipDeg:    dip,
				LengthKm:  f.SubfaultLen,
				WidthKm:   f.SubfaultWid,
			})
		}
	}
	return f, nil
}

// Station is a GNSS station with high-rate displacement capability.
type Station struct {
	Name string
	Pos  LatLon
}

// chileanCores are real Chilean GNSS station codes used to seed the
// synthetic network with recognizable names; the remainder are generated
// with the same coastal distribution.
var chileanCores = []Station{
	{"ANTC", LatLon{-37.34, -71.53}},
	{"CONZ", LatLon{-36.84, -73.03}},
	{"CNBA", LatLon{-31.40, -71.46}},
	{"VALP", LatLon{-33.03, -71.63}},
	{"SANT", LatLon{-33.15, -70.67}},
	{"IQQE", LatLon{-20.27, -70.13}},
	{"PTRO", LatLon{-24.89, -70.48}},
	{"CRZL", LatLon{-23.47, -70.57}},
	{"JRGN", LatLon{-23.29, -70.56}},
	{"PFRJ", LatLon{-30.67, -71.63}},
	{"LVIL", LatLon{-31.91, -71.51}},
	{"PEDR", LatLon{-33.89, -71.77}},
}

// FullChileanStations returns the 121-station "full Chilean input" list.
// The first entries are real station codes; the rest are synthetic
// coastal stations spaced to mimic the dense post-2010 network.
func FullChileanStations() []Station {
	return chileanStations(121)
}

// SmallChileanStations returns the 2-station "small Chilean input" list.
func SmallChileanStations() []Station {
	return chileanStations(2)
}

// chileanStations deterministically generates n stations along the
// Chilean coast between 18°S and 40°S.
func chileanStations(n int) []Station {
	if n <= 0 {
		return nil
	}
	out := make([]Station, 0, n)
	for i := 0; i < n && i < len(chileanCores); i++ {
		out = append(out, chileanCores[i])
	}
	// Low-discrepancy fill along the coast (golden-ratio sequence keeps
	// spacing even for any n without randomness).
	const phi = 0.6180339887498949
	for i := len(out); i < n; i++ {
		u := math.Mod(float64(i)*phi, 1)
		lat := -18.0 - u*22.0 // 18°S .. 40°S
		// Coastline longitude drifts east as latitude decreases in
		// magnitude; add a small deterministic zigzag for inland sites.
		lon := -70.2 - 0.16*(-(lat)-18.0) + 0.7*math.Sin(float64(i)*1.7)
		out = append(out, Station{
			Name: fmt.Sprintf("CH%02d%c", i%100, 'A'+byte(i%26)),
			Pos:  LatLon{Lat: lat, Lon: lon},
		})
	}
	return out
}

// DefaultCascadiaFault models the Cascadia subduction zone, the other
// megathrust MudPy's kinematic rupture machinery was first built for
// (Melgar et al. 2016) and the paper's stated next region: ~1,000 km
// from Cape Mendocino to Vancouver Island, shallower dip than Chile.
func DefaultCascadiaFault() ChileFaultConfig {
	return ChileFaultConfig{
		LatSouth:       40.3,
		LatNorth:       49.5,
		TrenchLon:      -125.3,
		TrenchLonSlope: 0.08,
		DipShallowDeg:  8,
		DipDeepDeg:     22,
		WidthKm:        160,
		SubfaultKm:     10,
	}
}

// CascadiaStations deterministically generates n GNSS stations along
// the Pacific Northwest coast (PANGA/PBO-style coverage).
func CascadiaStations(n int) []Station {
	if n <= 0 {
		return nil
	}
	cores := []Station{
		{"P417", LatLon{46.20, -123.95}},
		{"ALBH", LatLon{48.39, -123.49}},
		{"NEWP", LatLon{44.59, -124.06}},
		{"P058", LatLon{40.88, -124.08}},
		{"SEAT", LatLon{47.65, -122.31}},
	}
	out := make([]Station, 0, n)
	for i := 0; i < n && i < len(cores); i++ {
		out = append(out, cores[i])
	}
	const phi = 0.6180339887498949
	for i := len(out); i < n; i++ {
		u := math.Mod(float64(i)*phi, 1)
		lat := 40.5 + u*9.0
		lon := -124.3 + 0.09*(lat-40.5) + 0.6*math.Sin(float64(i)*1.7)
		out = append(out, Station{
			Name: fmt.Sprintf("CA%02d%c", i%100, 'A'+byte(i%26)),
			Pos:  LatLon{Lat: lat, Lon: lon},
		})
	}
	return out
}
