package fdw_test

// The recovery layer's nil-off contract at repo level: attaching a
// policy with every mechanism disabled must not change a single byte
// of any printed report or CSV relative to no policy at all, because a
// disabled mechanism takes the exact pre-recovery code paths (and the
// policy's private RNG stream never perturbs anyone else's). This is
// the byte-identity half of the chaos A/B design — the recovery-off
// arm of every experiment doubles as a baseline-regression check.

import (
	"bytes"
	"testing"

	"fdw"
	"fdw/internal/expt"
)

func TestDisabledRecoveryPolicyIsByteIdentical(t *testing.T) {
	baseReport, baseCSV := fig2Output(t, false, 1)

	disabled := func(workers int) (report, csv []byte) {
		opt := fdw.DefaultExperimentOptions()
		opt.Scale = 0.002
		opt.Seeds = []uint64{11}
		opt.Workers = workers
		opt.Recovery = &fdw.RecoveryConfig{} // attached, all mechanisms off
		var out bytes.Buffer
		opt.Out = &out
		rows, err := fdw.Fig2(opt)
		if err != nil {
			t.Fatal(err)
		}
		var csvBuf bytes.Buffer
		if err := expt.WriteFig2CSV(&csvBuf, rows); err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), csvBuf.Bytes()
	}
	for _, workers := range []int{1, 4} {
		report, csv := disabled(workers)
		if !bytes.Equal(report, baseReport) {
			t.Errorf("fig2 report differs with disabled recovery attached (workers %d)", workers)
		}
		if !bytes.Equal(csv, baseCSV) {
			t.Errorf("fig2 CSV differs with disabled recovery attached (workers %d)", workers)
		}
	}
}

func TestDisabledRecoveryPolicyFig5Identical(t *testing.T) {
	baseReport, baseCSV := fig5Output(t, false, 1)

	opt := fdw.DefaultExperimentOptions()
	opt.Scale = 0.002
	opt.Seeds = []uint64{11}
	opt.Workers = 4
	opt.Recovery = &fdw.RecoveryConfig{}
	var out bytes.Buffer
	opt.Out = &out
	cells, err := fdw.Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := expt.WriteFig5CSV(&csvBuf, cells); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), baseReport) {
		t.Error("fig5 report differs with disabled recovery attached")
	}
	if !bytes.Equal(csvBuf.Bytes(), baseCSV) {
		t.Error("fig5 CSV differs with disabled recovery attached")
	}
}

// TestEnabledRecoveryOnCleanRunStaysClean: the full default policy on a
// fault-free workload must not degrade the result — every job still
// completes and the DAG succeeds. (Backoff/breakers/deadlines only act
// on failures; hedging may act, but first-finisher-wins can only move
// completion earlier.)
func TestEnabledRecoveryOnCleanRun(t *testing.T) {
	opt := fdw.DefaultExperimentOptions()
	opt.Scale = 0.002
	opt.Seeds = []uint64{11}
	cfg := fdw.DefaultRecoveryConfig()
	opt.Recovery = &cfg
	rows, err := fdw.Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no fig2 rows")
	}
	for _, r := range rows {
		if r.RuntimeH <= 0 || r.ThroughputJPM <= 0 {
			t.Fatalf("degenerate row with recovery enabled: %+v", r)
		}
	}
}
