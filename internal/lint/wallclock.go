package lint

import (
	"go/ast"
	"go/types"
)

// wallclockForbidden are the package time functions that read the host
// clock or arm host timers. Conversions and constants (time.Duration,
// time.Second, time.Date, time.Parse) are deterministic and allowed.
var wallclockForbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "NewTicker": true,
	"NewTimer": true, "After": true, "AfterFunc": true,
}

// wallclockAllowed are the packages permitted to touch the wall clock:
// the observability exporters (which may stamp export files with real
// time) and the live monitor CLI. Tests are exempt by construction —
// the loader never analyzes _test.go files.
var wallclockAllowed = map[string]bool{
	modulePath + "/internal/obs": true,
	modulePath + "/cmd/fdwmon":   true,
}

// WallclockAnalyzer forbids wall-clock reads and host timers outside
// the allowlist. Simulated time comes from sim.Kernel; a time.Now in
// model code silently couples results to the host scheduler, the class
// of nondeterminism PR 1's byte-identical figure tests exist to catch.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Sleep/timers outside internal/obs, cmd/fdwmon, and tests",
	Run: func(pass *Pass) {
		if wallclockAllowed[pass.Pkg.ImportPath] {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
				if !ok || funcPkgPath(fn) != "time" || !wallclockForbidden[fn.Name()] {
					return true
				}
				pass.Reportf(id.Pos(),
					"use of time.%s: wall-clock reads are forbidden outside internal/obs, cmd/fdwmon, and tests; use the simulation clock (sim.Kernel.Now/After)",
					fn.Name())
				return true
			})
		}
	},
}
