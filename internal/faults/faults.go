// Package faults is a deterministic, sim-clock-driven fault-plan
// engine for the OSPool/HTCondor stack. A Plan scripts the failure
// pathologies the paper's recovery machinery (DAGMan RETRY, rescue
// DAGs, job-level max_retries) exists to survive — site outages,
// glidein black holes, correlated failure bursts, transfer-failure
// windows, and schedd submit errors — and an Injector layers the plan
// onto a pool and its schedds through small injection hooks
// (ospool.Pool.SetSiteDown/SetExecFault, htcondor.Schedd.SubmitGate)
// rather than ad-hoc probability knobs.
//
// Determinism: the injector owns a private sim.RNG stream split from
// the kernel's root, so (a) every probabilistic fault draw is
// reproducible by seed, and (b) attaching an injector never perturbs
// the variate sequences the pool and workflows draw — a run under the
// empty plan is byte-identical to a run with no injector at all.
package faults

import (
	"fmt"

	"fdw/internal/htcondor"
	"fdw/internal/obs"
	"fdw/internal/ospool"
	"fdw/internal/sim"
)

// Window is a half-open simulated-time interval [From, Until).
type Window struct {
	From, Until sim.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool { return t >= w.From && t < w.Until }

func (w Window) validate(kind string) error {
	if w.From < 0 || w.Until <= w.From {
		return fmt.Errorf("faults: %s window [%v, %v) is empty or negative", kind, w.From, w.Until)
	}
	return nil
}

// SiteOutage takes a site fully offline for a window: its live
// glideins are drained at From (running jobs evicted back to their
// schedds) and neither the factory nor in-flight pilot requests can
// land there until Until.
type SiteOutage struct {
	Site string
	Window
}

// BlackHole marks a site as a glidein black hole for a window: its
// slots keep accepting jobs but every execution exits non-zero after a
// short constant runtime, so the broken site eats work much faster
// than healthy sites finish it.
type BlackHole struct {
	Site string
	Window
}

// FailureBurst raises the per-execution failure probability everywhere
// during a window — correlated failures from a bad software push or a
// shared-storage hiccup.
type FailureBurst struct {
	Window
	Prob float64
}

// TransferFault fails input transfers with the given probability
// during a window; the affected attempt exits non-zero as the transfer
// lands, having done no work.
type TransferFault struct {
	Window
	Prob float64
}

// SubmitFault makes schedd submissions fail with the given probability
// during a window. DAGMan observes the submit error as a node failure
// and spends RETRY budget on it.
type SubmitFault struct {
	Window
	Prob float64
}

// Plan scripts every fault injected into one run. The zero Plan
// injects nothing.
type Plan struct {
	Name string

	SiteOutages    []SiteOutage
	BlackHoles     []BlackHole
	FailureBursts  []FailureBurst
	TransferFaults []TransferFault
	SubmitFaults   []SubmitFault
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return len(p.SiteOutages) == 0 && len(p.BlackHoles) == 0 &&
		len(p.FailureBursts) == 0 && len(p.TransferFaults) == 0 &&
		len(p.SubmitFaults) == 0
}

// Validate reports malformed windows or probabilities. Site names are
// not checked against a pool: an outage for an unknown site is a
// harmless no-op, which lets one plan serve differently configured
// pools.
func (p Plan) Validate() error {
	for _, o := range p.SiteOutages {
		if o.Site == "" {
			return fmt.Errorf("faults: site outage with empty site")
		}
		if err := o.validate("site-outage"); err != nil {
			return err
		}
	}
	for _, b := range p.BlackHoles {
		if b.Site == "" {
			return fmt.Errorf("faults: black hole with empty site")
		}
		if err := b.validate("black-hole"); err != nil {
			return err
		}
	}
	for _, f := range p.FailureBursts {
		if err := f.validate("failure-burst"); err != nil {
			return err
		}
		if f.Prob <= 0 || f.Prob > 1 {
			return fmt.Errorf("faults: failure-burst probability %v outside (0,1]", f.Prob)
		}
	}
	for _, t := range p.TransferFaults {
		if err := t.validate("transfer-fault"); err != nil {
			return err
		}
		if t.Prob <= 0 || t.Prob > 1 {
			return fmt.Errorf("faults: transfer-fault probability %v outside (0,1]", t.Prob)
		}
	}
	for _, s := range p.SubmitFaults {
		if err := s.validate("submit-fault"); err != nil {
			return err
		}
		if s.Prob <= 0 || s.Prob > 1 {
			return fmt.Errorf("faults: submit-fault probability %v outside (0,1]", s.Prob)
		}
	}
	return nil
}

// Injector binds a validated plan to a kernel. One injector serves one
// simulated environment; its RNG stream is split from the kernel's
// root at construction, so creation order relative to other Split
// calls is part of the reproducible setup.
type Injector struct {
	plan   Plan
	kernel *sim.Kernel
	rng    *sim.RNG
	obs    *obs.Registry
}

// New validates plan and binds it to k.
func New(k *sim.Kernel, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan, kernel: k, rng: k.RNG().Split(0xfa0175)}, nil
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// SetObs attaches a metrics registry; injected faults are counted as
// fdw_faults_injected_total{plan,kind}. nil disables instrumentation.
func (in *Injector) SetObs(r *obs.Registry) { in.obs = r }

func (in *Injector) count(kind string) {
	if in.obs != nil {
		in.obs.Counter("fdw_faults_injected_total", "plan", in.plan.Name, "kind", kind).Inc()
	}
}

// Attach wires the injector into a pool and the schedds submitting to
// it: the pool gets the site-down and exec-fault hooks, each schedd
// gets the submit gate, and every site outage schedules a drain event
// at its window start. Call Attach once, before the simulation runs.
func (in *Injector) Attach(p *ospool.Pool, schedds ...*htcondor.Schedd) {
	if in.plan.Empty() {
		return
	}
	p.SetSiteDown(in.siteDown)
	p.SetExecFault(in.execFault)
	for _, o := range in.plan.SiteOutages {
		o := o
		from := o.From
		if now := in.kernel.Now(); from < now {
			from = now
		}
		in.kernel.At(from, func() {
			if n := p.DrainSite(o.Site); n > 0 {
				in.count("site_drain")
			}
		})
	}
	for _, s := range schedds {
		s.SubmitGate = in.submitGate
	}
}

// siteDown reports whether any outage window covers site at t.
func (in *Injector) siteDown(site string, t sim.Time) bool {
	for _, o := range in.plan.SiteOutages {
		if o.Site == site && o.Contains(t) {
			return true
		}
	}
	return false
}

// execFault resolves the injected outcome for one execution attempt.
// Black holes dominate (and draw no randomness); transfer faults are
// tried before generic bursts so a window overlap attributes the
// failure to the most specific cause.
func (in *Injector) execFault(site string, j *htcondor.Job, now sim.Time) ospool.ExecFault {
	var f ospool.ExecFault
	for _, b := range in.plan.BlackHoles {
		if b.Site == site && b.Contains(now) {
			f.BlackHole = true
			in.count("black_hole")
			return f
		}
	}
	for _, t := range in.plan.TransferFaults {
		if t.Contains(now) && in.rng.Bool(t.Prob) {
			f.TransferFail = true
			in.count("transfer_fail")
			return f
		}
	}
	for _, b := range in.plan.FailureBursts {
		if b.Contains(now) && in.rng.Bool(b.Prob) {
			f.Fail = true
			in.count("exec_fail")
			return f
		}
	}
	return f
}

// submitGate is the htcondor.Schedd.SubmitGate hook: it rejects whole
// submissions probabilistically inside submit-fault windows.
func (in *Injector) submitGate(jobs []*htcondor.Job) error {
	now := in.kernel.Now()
	for _, s := range in.plan.SubmitFaults {
		if s.Contains(now) && in.rng.Bool(s.Prob) {
			in.count("submit_error")
			return fmt.Errorf("faults: injected submit failure for %d jobs at %v", len(jobs), now)
		}
	}
	return nil
}

// StandardPlans is the chaos-sweep grid: one plan per failure
// pathology plus a kitchen-sink combination, sized for the paper's
// default OSPool site list (ospool.DefaultConfig). Plans for sites a
// pool does not have degrade to no-ops, so the grid also runs against
// reduced test pools.
func StandardPlans() []Plan {
	hour := sim.Time(3600)
	return []Plan{
		{Name: "baseline"},
		{
			Name: "site-outage",
			SiteOutages: []SiteOutage{
				{Site: "uchicago", Window: Window{From: 1 * hour, Until: 5 * hour}},
			},
		},
		{
			Name: "black-hole",
			BlackHoles: []BlackHole{
				{Site: "sdsc", Window: Window{From: 0, Until: 6 * hour}},
			},
		},
		{
			Name: "failure-burst",
			FailureBursts: []FailureBurst{
				{Window: Window{From: hour / 2, Until: 2 * hour}, Prob: 0.5},
			},
		},
		{
			Name: "transfer-faults",
			TransferFaults: []TransferFault{
				{Window: Window{From: 0, Until: 3 * hour}, Prob: 0.3},
			},
		},
		{
			Name: "submit-errors",
			SubmitFaults: []SubmitFault{
				{Window: Window{From: 0, Until: 2 * hour}, Prob: 0.35},
			},
		},
		{
			Name: "everything",
			SiteOutages: []SiteOutage{
				{Site: "unl", Window: Window{From: 2 * hour, Until: 6 * hour}},
			},
			BlackHoles: []BlackHole{
				{Site: "syracuse", Window: Window{From: hour, Until: 4 * hour}},
			},
			FailureBursts: []FailureBurst{
				{Window: Window{From: 3 * hour, Until: 5 * hour}, Prob: 0.25},
			},
			TransferFaults: []TransferFault{
				{Window: Window{From: 0, Until: 2 * hour}, Prob: 0.15},
			},
			SubmitFaults: []SubmitFault{
				{Window: Window{From: 0, Until: hour}, Prob: 0.2},
			},
		},
	}
}
