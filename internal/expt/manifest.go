package expt

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"fdw/internal/core/atomicfile"
	"fdw/internal/dagman"
	"fdw/internal/obs"
	"fdw/internal/recovery"
	"fdw/internal/sim"
)

// A CampaignManifest is one shard's output bundle: which cells of a
// campaign the shard owns, which are done, their JSON-encoded results
// with integrity digests, sim-clock provenance, and an optional
// embedded metrics snapshot. It reuses the dagman rescue manifest as
// its completion ledger — checkpoint/resume of a sharded campaign is
// the same mechanism as a DAG-level rescue, one layer up.
//
// Manifests are written as compact JSON: cell results are
// json.RawMessage payloads whose bytes must survive re-encoding
// unchanged for the digests to stay valid, and Go's encoder passes
// compact RawMessage bytes through verbatim.
type CampaignManifest struct {
	// Format is the manifest schema version (CampaignManifestFormat).
	Format int `json:"format"`
	// Campaign names the sharded experiment (fig2, fig3, fig5, fig6,
	// chaos).
	Campaign string `json:"campaign"`
	// Shard is this bundle's slot in the partition. For leased bundles
	// (see Leased) Index/Total identify the worker in its fleet instead
	// of a hash-partition slot.
	Shard ShardSpec `json:"shard"`
	// Leased marks a scheduler worker bundle: cells were assigned by
	// coordinator leases rather than the static FNV hash partition, so
	// any worker may own any cell. Validation skips the hash-ownership
	// check, and merges establish coverage by union-with-digest-
	// arbitration instead of per-shard ownership (DESIGN.md §16).
	Leased bool `json:"leased,omitempty"`
	// Fingerprint pins the Options the shard ran under; a merge or
	// resume with different options must fail loudly rather than mix
	// incompatible results.
	Fingerprint string `json:"fingerprint"`
	// Ledger is the cell-completion record: one dagman manifest node
	// per owned cell, in canonical cell order.
	Ledger dagman.Manifest `json:"ledger"`
	// Cells holds the completed cells' results, in canonical order.
	Cells []CellRecord `json:"cells"`
	// SimMax is the largest per-cell final sim-clock reading — the
	// shard's simulated-time provenance.
	SimMax sim.Time `json:"sim_max"`
	// Metrics is the shard's obs snapshot rollup, when metrics were on.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// ShardSpec identifies shard Index of Total (1-based, like -shard 2/4).
type ShardSpec struct {
	Index int `json:"index"`
	Total int `json:"total"`
}

func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Total) }

func (s ShardSpec) validate() error {
	if s.Total < 1 || s.Index < 1 || s.Index > s.Total {
		return fmt.Errorf("expt: shard %d/%d out of range", s.Index, s.Total)
	}
	return nil
}

// CellRecord is one completed cell's stored result.
type CellRecord struct {
	ID string `json:"id"`
	// Result is the cell result exactly as json.Marshal produced it;
	// Digest is the FNV-1a64 of those bytes.
	Result json.RawMessage `json:"result"`
	Digest string          `json:"digest"`
	// SimEnd is the cell simulation's final kernel clock.
	SimEnd sim.Time `json:"sim_end"`
}

// CampaignManifestFormat is the current campaign-manifest schema
// version.
const CampaignManifestFormat = 1

// shardOf deterministically assigns a cell to a 1-based shard index:
// FNV-1a64 over "campaign/cellID", reduced mod Total. The hash depends
// only on the identity strings — never on worker count, enumeration
// order, or process — so every shard of a partition computes the same
// assignment independently.
func shardOf(campaign, cellID string, total int) int {
	h := fnv.New64a()
	h.Write([]byte(campaign))
	h.Write([]byte{'/'})
	h.Write([]byte(cellID))
	return int(h.Sum64()%uint64(total)) + 1
}

// ShardCells partitions a campaign's canonical cell list, returning
// the ids owned by shard index/total in canonical order.
func ShardCells(campaign string, ids []string, index, total int) []string {
	var owned []string
	for _, id := range ids {
		if shardOf(campaign, id, total) == index {
			owned = append(owned, id)
		}
	}
	return owned
}

// cellDigest is the integrity digest of a stored result payload.
func cellDigest(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint condenses every result-affecting Options field (plus the
// campaign name) into a hash. Workers, Out, and Obs are excluded: they
// change neither cell results nor final bytes.
func (o Options) Fingerprint(campaign string) (string, error) {
	canon := struct {
		Campaign string           `json:"campaign"`
		Scale    float64          `json:"scale"`
		Seeds    []uint64         `json:"seeds"`
		Horizon  sim.Time         `json:"horizon"`
		Pool     any              `json:"pool"`
		Recovery *recovery.Config `json:"recovery"`
	}{campaign, o.Scale, o.Seeds, o.Horizon, o.Pool, o.Recovery}
	b, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("expt: fingerprint: %w", err)
	}
	return cellDigest(b), nil
}

// Write renders the manifest as compact JSON.
func (m *CampaignManifest) Write(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile atomically replaces path with the manifest (temp file +
// fsync + rename via atomicfile), so a kill mid-checkpoint leaves the
// previous complete manifest in place rather than a truncated one.
func (m *CampaignManifest) WriteFile(path string) error {
	return atomicfile.WriteFile(path, m.Write)
}

// ReadCampaignManifest parses and validates a manifest written by
// Write.
func ReadCampaignManifest(r io.Reader) (*CampaignManifest, error) {
	var m CampaignManifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("expt: bad campaign manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ReadCampaignManifestFile reads one manifest bundle from disk.
func ReadCampaignManifestFile(path string) (*CampaignManifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadCampaignManifest(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Validate checks the manifest's internal invariants: schema version,
// shard spec, ledger well-formedness, ledger/cell agreement (exactly
// the done ledger nodes carry results, in the same order), shard
// ownership of every cell, and per-cell digest integrity.
func (m *CampaignManifest) Validate() error {
	if m.Format != CampaignManifestFormat {
		return fmt.Errorf("expt: campaign manifest format %d, want %d", m.Format, CampaignManifestFormat)
	}
	if m.Campaign == "" {
		return fmt.Errorf("expt: campaign manifest has no campaign name")
	}
	if err := m.Shard.validate(); err != nil {
		return err
	}
	if m.Fingerprint == "" {
		return fmt.Errorf("expt: campaign manifest has no options fingerprint")
	}
	if err := m.Ledger.Validate(); err != nil {
		return err
	}
	var done []string
	for _, n := range m.Ledger.Nodes {
		if !m.Leased && shardOf(m.Campaign, n.Name, m.Shard.Total) != m.Shard.Index {
			return fmt.Errorf("expt: cell %q does not belong to shard %s of %s", n.Name, m.Shard, m.Campaign)
		}
		if n.Done {
			done = append(done, n.Name)
		}
	}
	if len(done) != len(m.Cells) {
		return fmt.Errorf("expt: ledger marks %d cells done but %d results stored", len(done), len(m.Cells))
	}
	for i, c := range m.Cells {
		if c.ID != done[i] {
			return fmt.Errorf("expt: cell result %d is %q, ledger order says %q", i, c.ID, done[i])
		}
		if got := cellDigest(c.Result); got != c.Digest {
			return fmt.Errorf("expt: cell %q result digest %s does not match stored %s (corrupt manifest?)", c.ID, got, c.Digest)
		}
	}
	return nil
}

// Complete reports whether every owned cell is done.
func (m *CampaignManifest) Complete() bool {
	return m.Ledger.DoneCount() == len(m.Ledger.Nodes)
}

// result returns the stored payload for a cell id, if present.
func (m *CampaignManifest) result(id string) (CellRecord, bool) {
	for _, c := range m.Cells {
		if c.ID == id {
			return c, true
		}
	}
	return CellRecord{}, false
}
