// Package linalg implements the small dense linear-algebra kernel that
// the FakeQuakes substrate needs: row-major matrices, Cholesky
// factorization of covariance matrices, and matrix-vector products.
// It deliberately covers only what the simulation uses, with bounds
// checks on the public surface.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns m[i,j]. It panics on out-of-range indices.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns m[i,j] = v. It panics on out-of-range indices.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("linalg: row %d out of %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MulVec returns m·x. It returns an error on dimension mismatch.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec dim mismatch: %dx%d · %d", m.Rows, m.Cols, len(x))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

func mulDimErr(m, b *Matrix) error {
	return fmt.Errorf("linalg: Mul dim mismatch: %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
}

func cholDimErr(m *Matrix) error {
	return fmt.Errorf("linalg: Cholesky of non-square %dx%d", m.Rows, m.Cols)
}

// Mul returns m·b. It returns an error on dimension mismatch. The
// product is the cache-blocked kernel (blocked.go): every element is a
// fused-multiply-add fold over k in increasing order, so Mul is
// bit-identical to ParallelMul and across architectures; ReferenceMul
// keeps the pre-blocking kernel as the numerical spec.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, mulDimErr(m, b)
	}
	out := NewMatrix(m.Rows, b.Cols)
	gemmAcc(m.Rows, b.Cols, m.Cols, m.Data, m.Cols, b.Data, b.Cols, false, out.Data, out.Cols, false)
	return out, nil
}

// ErrNotPositiveDefinite reports that Cholesky failed because the input
// is not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular L with L·Lᵀ = m for a
// symmetric positive-definite m. Only the lower triangle of m is read.
// A small jitter may be added by the caller beforehand for matrices
// that are positive semi-definite up to rounding. The factorization is
// the blocked left-looking kernel (blocked.go), bit-identical to
// ParallelCholesky; ReferenceCholesky keeps the pre-blocking kernel as
// the numerical spec.
func Cholesky(m *Matrix) (*Matrix, error) {
	return blockedCholesky(m, false)
}

// AddDiag adds eps to every diagonal element in place and returns m.
func (m *Matrix) AddDiag(eps float64) *Matrix {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += eps
	}
	return m
}

// SymmetricMaxAbsDiff returns max |m[i,j]-m[j,i]| for a square matrix,
// used to validate covariance construction.
func (m *Matrix) SymmetricMaxAbsDiff() float64 {
	if m.Rows != m.Cols {
		return math.Inf(1)
	}
	var worst float64
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			d := math.Abs(m.Data[i*m.Cols+j] - m.Data[j*m.Cols+i])
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Scale multiplies every element of x by a in place and returns x.
func Scale(x []float64, a float64) []float64 {
	for i := range x {
		x[i] *= a
	}
	return x
}

// AXPY computes y += a*x in place. It panics on length mismatch.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// SolveCholesky solves L·Lᵀ·x = b given the lower-triangular Cholesky
// factor L, by forward then backward substitution.
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if l.Cols != n {
		return nil, fmt.Errorf("linalg: non-square factor %dx%d", l.Rows, l.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d for %dx%d factor", len(b), n, n)
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * y[k]
		}
		d := l.Data[i*n+i]
		if d == 0 {
			return nil, fmt.Errorf("linalg: singular factor at %d", i)
		}
		y[i] = s / d
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*n+i] * x[k]
		}
		x[i] = s / l.Data[i*n+i]
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖₂ via the normal equations with a
// small ridge term for stability. A must have at least as many rows as
// columns.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: rhs length %d for %d rows", len(b), a.Rows)
	}
	at := a.T()
	ata, err := at.ParallelMul(a)
	if err != nil {
		return nil, err
	}
	ata.AddDiag(1e-9)
	atb, err := at.ParallelMulVec(b)
	if err != nil {
		return nil, err
	}
	l, err := ParallelCholesky(ata)
	if err != nil {
		return nil, fmt.Errorf("linalg: normal equations not positive definite: %w", err)
	}
	return SolveCholesky(l, atb)
}
