package dagman

import (
	"reflect"
	"strings"
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/sim"
)

// backoffHarness runs a single Retry:2 node whose first two attempts
// fail, recording when each attempt's jobs were materialized.
func backoffHarness(t *testing.T, delay func(node string, attempt int) sim.Time) []sim.Time {
	t.Helper()
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "flaky", SubmitFile: "f.sub", Retry: 2}); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	var submitTimes []sim.Time
	factory := func(n *Node) ([]*htcondor.Job, error) {
		submitTimes = append(submitTimes, k.Now())
		return []*htcondor.Job{{Owner: "dag"}}, nil
	}
	e, err := NewExecutor("dag", d, k, s, factory)
	if err != nil {
		t.Fatal(err)
	}
	e.RetryDelay = delay
	fails := 2
	autoRun(k, s, 1, 1, func(*htcondor.Job) int {
		if fails > 0 {
			fails--
			return 1
		}
		return 0
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() || e.Failed() {
		t.Fatalf("done=%v failed=%v", e.Done(), e.Failed())
	}
	return submitTimes
}

// TestRetryDelayHoldsResubmission: each failed attempt waits out the
// hook's delay before re-entering dispatch. Attempt 1 submits at t=0
// and fails at t=2 (wait 1 + exec 1); with delays 100 then 200 the
// resubmissions land at 102 and 304.
func TestRetryDelayHoldsResubmission(t *testing.T) {
	var attempts []int
	times := backoffHarness(t, func(node string, attempt int) sim.Time {
		if node != "flaky" {
			t.Errorf("delay consulted for node %q", node)
		}
		attempts = append(attempts, attempt)
		return sim.Time(100 * attempt)
	})
	if want := []sim.Time{0, 102, 304}; !reflect.DeepEqual(times, want) {
		t.Fatalf("submit times %v, want %v", times, want)
	}
	if want := []int{1, 2}; !reflect.DeepEqual(attempts, want) {
		t.Fatalf("delay consulted with attempts %v, want %v", attempts, want)
	}
}

// TestRetryDelayZeroKeepsClassicRequeue: a hook returning 0 (and a nil
// hook) behave identically — the same-tick requeue of the pre-backoff
// executor.
func TestRetryDelayZeroKeepsClassicRequeue(t *testing.T) {
	withZero := backoffHarness(t, func(string, int) sim.Time { return 0 })
	withNil := backoffHarness(t, nil)
	if !reflect.DeepEqual(withZero, withNil) {
		t.Fatalf("zero-delay hook diverged from nil hook: %v vs %v", withZero, withNil)
	}
	if want := []sim.Time{0, 2, 4}; !reflect.DeepEqual(withNil, want) {
		t.Fatalf("classic requeue times %v, want %v", withNil, want)
	}
}

// TestRetryDelayHoldDoesNotStallSiblings: while one node waits out its
// backoff, an independent ready node still dispatches.
func TestRetryDelayHoldDoesNotStallSiblings(t *testing.T) {
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "flaky", SubmitFile: "f.sub", Retry: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode(&Node{Name: "solid", SubmitFile: "s.sub"}); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	s := htcondor.NewSchedd("dag", k, nil)
	nodeTimes := map[string][]sim.Time{}
	factory := func(n *Node) ([]*htcondor.Job, error) {
		nodeTimes[n.Name] = append(nodeTimes[n.Name], k.Now())
		return []*htcondor.Job{{Owner: "dag", Executable: n.Name}}, nil
	}
	e, err := NewExecutor("dag", d, k, s, factory)
	if err != nil {
		t.Fatal(err)
	}
	e.RetryDelay = func(string, int) sim.Time { return 500 }
	flakyFails := 1
	autoRun(k, s, 1, 1, func(j *htcondor.Job) int {
		if strings.HasPrefix(j.Executable, "flaky") && flakyFails > 0 {
			flakyFails--
			return 1
		}
		return 0
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !e.Done() || e.Failed() {
		t.Fatalf("done=%v failed=%v", e.Done(), e.Failed())
	}
	if got := nodeTimes["solid"]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("solid node dispatched at %v, want [0] (must not wait for flaky's backoff)", got)
	}
	if got := nodeTimes["flaky"]; len(got) != 2 || got[1] != 502 {
		t.Fatalf("flaky resubmission times %v, want second at 502", got)
	}
}
