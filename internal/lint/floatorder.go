package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatorder guards the §7 numeric-determinism contract at its sharpest
// edge: floating-point addition is not associative, so a sum whose
// operand order varies run to run yields different bits. The orders Go
// does not pin down are map iteration, channel arrival, and goroutine
// completion; a float accumulation fed by any of them is flagged. The
// blessed patterns are the ones the parallel kernels use — iterate
// sorted keys, or accumulate per-worker and reduce in a fixed order.

// FloatorderAnalyzer flags float += / -= reductions whose operand
// order is nondeterministic.
var FloatorderAnalyzer = &Analyzer{
	Name: "floatorder",
	Doc:  "flag float +=/-= reductions ordered by map iteration, channel arrival, or goroutine completion",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			parents := parentMap(f)
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) {
					return true
				}
				if len(as.Lhs) != 1 || !isFloatExpr(pass.Pkg.Info, as.Lhs[0]) {
					return true
				}
				checkFloatAccum(pass, parents, as)
				return true
			})
		}
	},
}

// isFloatExpr reports whether e has a floating-point type.
func isFloatExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkFloatAccum classifies the context of one float accumulation by
// walking outward to the enclosing function, reporting the innermost
// nondeterministic ordering it crosses. Accumulators declared inside
// the ordering construct reset each iteration and are exempt.
func checkFloatAccum(pass *Pass, parents map[ast.Node]ast.Node, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	acc := rootObject(info, as.Lhs[0])
	if acc == nil {
		return
	}
	accExpr := types.ExprString(as.Lhs[0])
	for cur := ast.Node(as); cur != nil; cur = parents[cur] {
		switch p := parents[cur].(type) {
		case *ast.RangeStmt:
			tx := info.TypeOf(p.X)
			if cur != p.Body || acc.Pos() >= p.Pos() || tx == nil {
				continue
			}
			switch tx.Underlying().(type) {
			case *types.Map:
				pass.Reportf(as.Pos(),
					"float accumulation into %s ordered by iteration over map %s: addition is not associative, so map order changes the sum — iterate sorted keys",
					accExpr, types.ExprString(p.X))
				return
			case *types.Chan:
				pass.Reportf(as.Pos(),
					"float accumulation into %s ordered by receives from channel %s: arrival order is scheduler-dependent — collect the values and sum them in a fixed order",
					accExpr, types.ExprString(p.X))
				return
			}
			if loopHasReceive(as) {
				pass.Reportf(as.Pos(),
					"float accumulation into %s from a channel receive inside a loop: arrival order is scheduler-dependent — collect the values and sum them in a fixed order",
					accExpr)
				return
			}
		case *ast.ForStmt:
			if cur == p.Body && acc.Pos() < p.Pos() && loopHasReceive(as) {
				pass.Reportf(as.Pos(),
					"float accumulation into %s from a channel receive inside a loop: arrival order is scheduler-dependent — collect the values and sum them in a fixed order",
					accExpr)
				return
			}
		case *ast.FuncLit:
			if !goLaunched(parents, p) {
				return // an ordinary closure orders its own calls
			}
			// Indexed slots (parts[w] += x) are the blessed per-worker
			// pattern: disjoint writes, reduced later in a fixed order.
			// Only a shared scalar or field races on completion order.
			switch ast.Unparen(as.Lhs[0]).(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				return
			}
			if acc.Pos() < p.Pos() || acc.Pos() > p.End() {
				pass.Reportf(as.Pos(),
					"float accumulation into captured %s inside a goroutine: completion order is scheduler-dependent — accumulate per-worker and reduce in a fixed order",
					accExpr)
			}
			return
		case *ast.FuncDecl:
			return
		}
	}
}

// loopHasReceive reports whether the accumulation's right-hand side
// contains a channel receive.
func loopHasReceive(as *ast.AssignStmt) bool {
	found := false
	ast.Inspect(as.Rhs[0], func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
		}
		return !found
	})
	return found
}

// goLaunched reports whether lit is the function of a go statement.
func goLaunched(parents map[ast.Node]ast.Node, lit *ast.FuncLit) bool {
	call, ok := parents[lit].(*ast.CallExpr)
	if !ok || call.Fun != lit {
		return false
	}
	_, ok = parents[call].(*ast.GoStmt)
	return ok
}
