package fakequakes

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"fdw/internal/geom"
	"fdw/internal/obs"
	"fdw/internal/sim"
)

func gfTestConfig() GFConfig {
	return GFConfig{Dt: 1, Nsamples: 64, VpKmS: 6.8, VsKmS: 3.9}
}

// TestGFCacheWarmSkipsComputeAndMatchesCold pins the tentpole
// acceptance contract: a warm cache run performs zero ComputeGreens
// calls — asserted by both the compute counter and the obs counters —
// and returns kernels bit-identical to the cold run's.
func TestGFCacheWarmSkipsComputeAndMatchesCold(t *testing.T) {
	f, stations, d := smallSetup(t, 2)
	cfg := gfTestConfig()
	c := NewGFCache(t.TempDir())
	reg := obs.NewRegistry(nil)
	c.SetObs(reg)

	cold, hit, err := c.LoadOrCompute(f, stations, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run reported a warm hit")
	}

	before := computeGreensCalls.Load()
	warm, hit, err := c.LoadOrCompute(f, stations, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second run with identical geometry missed")
	}
	if got := computeGreensCalls.Load(); got != before {
		t.Fatalf("warm run invoked ComputeGreens %d times, want 0", got-before)
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats %d/%d, want 1 hit 1 miss", h, m)
	}
	if v := reg.Counter("fdw_gfcache_hits_total").Value(); v != 1 {
		t.Fatalf("obs hits = %d, want 1", v)
	}
	if v := reg.Counter("fdw_gfcache_misses_total").Value(); v != 1 {
		t.Fatalf("obs misses = %d, want 1", v)
	}

	for s := range cold.Kernel {
		for sf := 0; sf < cold.NSub; sf++ {
			for comp := 0; comp < 3; comp++ {
				a, b := cold.Kernel[s][sf][comp], warm.Kernel[s][sf][comp]
				if len(a) != len(b) {
					t.Fatalf("kernel [%d][%d][%d] length %d vs %d", s, sf, comp, len(a), len(b))
				}
				for i := range a {
					if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
						t.Fatalf("kernel [%d][%d][%d][%d]: %v vs %v — recycled bits differ",
							s, sf, comp, i, a[i], b[i])
					}
				}
			}
		}
	}

	// Downstream products must be identical too: same rupture + noise
	// seed over cold and warm kernels.
	gen, err := NewGenerator(f, d)
	if err != nil {
		t.Fatal(err)
	}
	r, err := gen.GenerateMw("run0", 8.0, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	wCold, err := SynthesizeWaveforms(r, cold, DefaultNoise(), sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	wWarm, err := SynthesizeWaveforms(r, warm, DefaultNoise(), sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wCold {
		for comp := 0; comp < 3; comp++ {
			a, b := wCold[i].ENZ[comp], wWarm[i].ENZ[comp]
			for k := range a {
				if math.Float64bits(a[k]) != math.Float64bits(b[k]) {
					t.Fatalf("waveform %d comp %d sample %d differs on warm kernels", i, comp, k)
				}
			}
		}
	}
}

// TestGFCacheCorruptSkippedAndRecomputed pins the durability half of
// the contract (the covcache clause one product up): a truncated or
// garbage greens_*.npy is skipped and recomputed, never trusted, never
// fatal — and the recompute repairs the file.
func TestGFCacheCorruptSkippedAndRecomputed(t *testing.T) {
	f, stations, d := smallSetup(t, 2)
	cfg := gfTestConfig()
	dir := t.TempDir()
	c := NewGFCache(dir)

	want, _, err := c.LoadOrCompute(f, stations, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := GFFingerprint(f, stations, d, cfg)
	path := filepath.Join(dir, fmt.Sprintf(gfNPYPattern, key))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, contents := range map[string][]byte{
		"truncated": b[:len(b)/2],
		"garbage":   []byte("not an npy file"),
	} {
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		got, hit, err := c.LoadOrCompute(f, stations, d, cfg)
		if err != nil {
			t.Fatalf("%s cache file must recompute, not fail: %v", name, err)
		}
		if hit {
			t.Fatalf("%s cache file was trusted as a hit", name)
		}
		for s := range want.Kernel {
			for sf := 0; sf < want.NSub; sf++ {
				for comp := 0; comp < 3; comp++ {
					a, w := got.Kernel[s][sf][comp], want.Kernel[s][sf][comp]
					for i := range w {
						if math.Float64bits(a[i]) != math.Float64bits(w[i]) {
							t.Fatalf("recomputed kernel differs after %s file", name)
						}
					}
				}
			}
		}
		// The recompute must have repaired the file for the next run.
		if _, hit, err := c.LoadOrCompute(f, stations, d, cfg); err != nil || !hit {
			t.Fatalf("after %s repair: hit=%v err=%v, want warm hit", name, hit, err)
		}
	}
}

// TestGFFingerprintSensitivity: any input the kernels read must change
// the fingerprint, or a stale file would satisfy the wrong geometry.
func TestGFFingerprintSensitivity(t *testing.T) {
	f, stations, d := smallSetup(t, 2)
	cfg := gfTestConfig()
	base := GFFingerprint(f, stations, d, cfg)

	cfg2 := cfg
	cfg2.Nsamples = 128
	if GFFingerprint(f, stations, d, cfg2) == base {
		t.Fatal("Nsamples not in fingerprint")
	}
	cfg3 := cfg
	cfg3.VsKmS = 4.0
	if GFFingerprint(f, stations, d, cfg3) == base {
		t.Fatal("VsKmS not in fingerprint")
	}
	if GFFingerprint(f, stations[:1], d, cfg) == base {
		t.Fatal("station list not in fingerprint")
	}
	renamed := append([]geom.Station(nil), stations...)
	renamed[0].Name = "XXXX"
	if GFFingerprint(f, renamed, d, cfg) == base {
		t.Fatal("station name not in fingerprint")
	}
	moved := append([]geom.Station(nil), stations...)
	moved[0].Pos.Lat += 0.01
	if GFFingerprint(f, moved, d, cfg) == base {
		t.Fatal("station position not in fingerprint")
	}
}

// TestGFCacheDeterminismAcrossGOMAXPROCS mirrors the repo-level
// obs_determinism pin for the recycling path: cold compute at one
// worker count, warm loads at another, all bit-identical.
func TestGFCacheDeterminismAcrossGOMAXPROCS(t *testing.T) {
	f, stations, d := smallSetup(t, 3)
	cfg := gfTestConfig()
	dir := t.TempDir()

	old := runtime.GOMAXPROCS(1)
	cold, hit, err := NewGFCache(dir).LoadOrCompute(f, stations, d, cfg)
	if err != nil || hit {
		t.Fatalf("cold: hit=%v err=%v", hit, err)
	}
	runtime.GOMAXPROCS(4)
	warm, hit, err := NewGFCache(dir).LoadOrCompute(f, stations, d, cfg)
	if err != nil || !hit {
		t.Fatalf("warm: hit=%v err=%v", hit, err)
	}
	direct, err := ComputeGreens(f, stations, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(old)

	for s := range cold.Kernel {
		for sf := 0; sf < cold.NSub; sf++ {
			for comp := 0; comp < 3; comp++ {
				a := cold.Kernel[s][sf][comp]
				b := warm.Kernel[s][sf][comp]
				c := direct.Kernel[s][sf][comp]
				for i := range a {
					if math.Float64bits(a[i]) != math.Float64bits(b[i]) ||
						math.Float64bits(a[i]) != math.Float64bits(c[i]) {
						t.Fatalf("kernel [%d][%d][%d][%d] differs across GOMAXPROCS/recycle paths", s, sf, comp, i)
					}
				}
			}
		}
	}
}

// TestGreensForScenarioSeam: the nil-default seam computes directly;
// installing DefaultGFCache recycles through it.
func TestGreensForScenarioSeam(t *testing.T) {
	f, stations, d := smallSetup(t, 2)
	cfg := gfTestConfig()
	if DefaultGFCache != nil {
		t.Fatal("DefaultGFCache non-nil at test start")
	}
	direct, err := GreensForScenario(f, stations, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	DefaultGFCache = NewGFCache(t.TempDir())
	defer func() { DefaultGFCache = nil }()
	if _, err := GreensForScenario(f, stations, d, cfg); err != nil {
		t.Fatal(err)
	}
	before := computeGreensCalls.Load()
	warm, err := GreensForScenario(f, stations, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := computeGreensCalls.Load(); got != before {
		t.Fatalf("warm GreensForScenario invoked ComputeGreens %d times, want 0", got-before)
	}
	if h, m := DefaultGFCache.Stats(); h != 1 || m != 1 {
		t.Fatalf("seam stats %d/%d, want 1/1", h, m)
	}
	for s := range direct.Kernel {
		for sf := 0; sf < direct.NSub; sf++ {
			for comp := 0; comp < 3; comp++ {
				a, b := direct.Kernel[s][sf][comp], warm.Kernel[s][sf][comp]
				for i := range a {
					if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
						t.Fatal("seam recycle changed kernel bits")
					}
				}
			}
		}
	}
}
