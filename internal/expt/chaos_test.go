package expt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"fdw/internal/faults"
	"fdw/internal/obs"
)

// chaosOptions shrinks the sweep for test speed. Scale 0.002 floors the
// waveform count at 16 stations — small, but enough work for every
// fault window to bite.
func chaosOptions() Options {
	opt := DefaultOptions()
	opt.Seeds = []uint64{11}
	opt.Scale = 0.002
	return opt
}

func runChaos(t *testing.T, workers int) ([]ChaosRow, string) {
	t.Helper()
	opt := chaosOptions()
	opt.Workers = workers
	var out bytes.Buffer
	opt.Out = &out
	rows, err := Chaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	return rows, out.String()
}

// TestChaosSweepShort is the CI chaos entry point: the full standard
// plan grid × recovery {off,on} at small scale, with the sweep's own
// invariants (termination and job conservation) enforced inside Chaos,
// plus cross-worker byte-identity checked here.
func TestChaosSweepShort(t *testing.T) {
	rows1, out1 := runChaos(t, 1)
	rows4, out4 := runChaos(t, 4)

	if want := len(faults.StandardPlans()) * len(chaosOptions().Seeds) * 2; len(rows1) != want {
		t.Fatalf("%d rows, want %d", len(rows1), want)
	}
	if !reflect.DeepEqual(rows1, rows4) {
		t.Fatalf("rows differ across workers:\n%v\n%v", rows1, rows4)
	}
	if out1 != out4 {
		t.Fatalf("-j 1 and -j 4 chaos reports differ:\n--- j1 ---\n%s\n--- j4 ---\n%s", out1, out4)
	}

	type arm struct {
		plan     string
		recovery bool
	}
	byArm := map[arm]ChaosRow{}
	for _, r := range rows1 {
		byArm[arm{r.Plan, r.Recovery}] = r
	}
	for _, rec := range []bool{false, true} {
		base := byArm[arm{"baseline", rec}]
		if base.DAGFailed || base.FailedJobs != 0 {
			t.Fatalf("baseline plan (recovery %t) saw failures: %+v", rec, base)
		}
	}
	// The fault plans must actually bite: across the grid some jobs
	// fail and some DAGMan retry budget is spent.
	var failed, retries int
	for _, r := range rows1 {
		failed += r.FailedJobs
		retries += r.NodeRetries
	}
	if failed == 0 {
		t.Fatal("no plan injected a job failure")
	}
	if retries == 0 {
		t.Fatal("no plan consumed DAGMan retry budget")
	}
}

// TestChaosRecoveryImprovesOrTies is the recovery A/B acceptance
// criterion: with the default policy on, makespan and wasted CPU are no
// worse than recovery-off on at least 5 of the 7 standard plans, and
// recovery measurably reduces wasted CPU somewhere in the grid.
func TestChaosRecoveryImprovesOrTies(t *testing.T) {
	rows, _ := runChaos(t, 4)
	improved, total := ChaosImprovedOrTied(rows)
	if total != len(faults.StandardPlans()) {
		t.Fatalf("delta tally covered %d plans, want %d", total, len(faults.StandardPlans()))
	}
	if improved < 5 {
		t.Fatalf("recovery improved-or-tied on %d/%d plans, want >= 5:\n%+v", improved, total, rows)
	}
	var strictly bool
	for _, r := range rows {
		if !r.Recovery {
			continue
		}
		for _, o := range rows {
			if !o.Recovery && o.Plan == r.Plan && o.Seed == r.Seed && r.WastedCPUH < o.WastedCPUH {
				strictly = true
			}
		}
	}
	if !strictly {
		t.Fatal("recovery never strictly reduced wasted CPU on any plan")
	}
}

func TestChaosCountsInjectedFaults(t *testing.T) {
	opt := chaosOptions()
	opt.Obs = obs.NewRegistry(nil)
	var out bytes.Buffer
	opt.Out = &out
	if _, err := Chaos(opt); err != nil {
		t.Fatal(err)
	}
	var injected uint64
	for _, c := range opt.Obs.Snapshot().Counters {
		if c.Name == "fdw_faults_injected_total" {
			injected += c.Value
		}
	}
	if injected == 0 {
		t.Fatal("no faults counted by the injector")
	}
}

func TestChaosCSV(t *testing.T) {
	rows := []ChaosRow{{
		Plan: "baseline", Seed: 11, Recovery: true, DAGDone: true,
		Submitted: 10, CompletedOK: 10, RuntimeH: 1.5,
	}}
	var buf bytes.Buffer
	if err := WriteChaosCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "plan,seed,recovery,dag_done") || !strings.Contains(got, "baseline,11,true,true") {
		t.Fatalf("csv:\n%s", got)
	}
}
