package lint

import (
	"go/ast"
	"go/types"
)

// modulePath is the module these analyzers guard; allowlists are keyed
// by full import paths under it.
const modulePath = "fdw"

// parentMap records each node's syntactic parent within a file, for
// analyses that classify an expression by the context it appears in.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or package-level function), or nil for builtins, conversions,
// and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBuiltin reports whether a call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// funcPkgPath returns the import path of the package declaring fn
// ("" for builtins and error.Error-style universe methods).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvTypeName returns the name of the named receiver type of a method
// ("" for non-methods), unwrapping pointers.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// methodOn reports whether fn is a method whose receiver's named type
// is declared in the package with the given import path.
func methodOn(fn *types.Func, pkgPath string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath
}

// ioWriter is a structural copy of io.Writer, built once so analyzers
// can ask types.Implements without needing the io package on hand.
var ioWriter = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(0, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(types.NewVar(0, nil, "n", types.Typ[types.Int]),
			types.NewVar(0, nil, "err", errType)),
		false)
	i := types.NewInterfaceType([]*types.Func{types.NewFunc(0, nil, "Write", sig)}, nil)
	i.Complete()
	return i
}()

// implementsWriter reports whether t (or *t) implements io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, ioWriter) || types.Implements(types.NewPointer(t), ioWriter)
}
