package core

import (
	"fmt"

	"fdw/internal/htcondor"
	"fdw/internal/sim"
)

// The work model maps FDW job types to nominal execution times and
// transfer sizes on a reference 4-core OSPool slot. The constants are
// calibrated to the paper's §5.2.3 observations:
//
//   - rupture (phase A) jobs: ≈2.5 minutes, independent of station list;
//   - waveform (phase C) jobs: 15–20 minutes with the full 121-station
//     input, under a minute with the 2-station input — modelled as a
//     base cost plus a per-station cost;
//   - the single phase B (Green's functions) job: "multiple hours
//     depending on the length of [the] input list of GNSS stations";
//   - the optional matrix job: tens of minutes (the reason recycling
//     the .npy files is "crucial").
const (
	ruptureJobSecs     = 150.0 // ≈2.5 min
	waveformBaseSecs   = 30.0
	waveformPerStation = 8.4 // 121 stations → ≈1046 s ≈ 17.4 min
	gfPerStationSecs   = 60.0
	matrixJobSecs      = 1200.0

	// Input artifact sizes (bytes) for the Stash-cache model.
	singularityImageBytes = 928e6 // the paper's 928 MB image
	npyMatricesBytes      = 180e6
	gfArchiveBytes        = 1.05e9 // ">1GB" compressed .mseed
	rupturePayloadBytes   = 4e6
	waveformPayloadBytes  = 2.5e6
)

// Phase identifies an FDW workflow phase.
type Phase string

// FDW phases. Matrix is the optional .npy generation pre-step.
const (
	PhaseMatrix Phase = "matrix"
	PhaseA      Phase = "A"
	PhaseB      Phase = "B"
	PhaseC      Phase = "C"
)

// WaveformJobSecs returns the nominal phase C job time for a station
// list of length n (waveformsPerJob waveforms per job).
func WaveformJobSecs(stations, waveformsPerJob int) float64 {
	per := waveformBaseSecs + waveformPerStation*float64(stations)
	return per * float64(waveformsPerJob) / 2 // calibrated for 2 wf/job
}

// RuptureJobSecs returns the nominal phase A job time
// (rupturesPerJob ruptures per job).
func RuptureJobSecs(rupturesPerJob int) float64 {
	return ruptureJobSecs * float64(rupturesPerJob) / 16 // calibrated for 16/job
}

// GFJobSecs returns the nominal phase B time for n stations.
func GFJobSecs(stations int) float64 { return gfPerStationSecs * float64(stations) }

// MatrixJobSecs returns the nominal distance-matrix generation time.
func MatrixJobSecs() float64 { return matrixJobSecs }

// buildJobs materializes the OSG jobs for one phase of cfg's workflow.
// Per-job variation (±10% truncated normal) models input-dependent
// cost differences; the pool adds site-speed and scheduling variation
// on top.
func buildJobs(cfg Config, phase Phase, owner string, rng *sim.RNG) ([]*htcondor.Job, error) {
	// The image and the recycled .npy matrices are shared across all
	// FDW runs; the phase B Green's-function archive is specific to one
	// workflow's ruptures, so phase C inputs are keyed per run.
	var n int
	var base float64
	var inBytes, outBytes int64
	var inKey string
	switch phase {
	case PhaseMatrix:
		n = 1
		base = MatrixJobSecs()
		inBytes = int64(singularityImageBytes)
		outBytes = int64(npyMatricesBytes)
		inKey = "fdw/image"
	case PhaseA:
		n = (cfg.Waveforms + cfg.RupturesPerJob - 1) / cfg.RupturesPerJob
		base = RuptureJobSecs(cfg.RupturesPerJob)
		inBytes = int64(singularityImageBytes + npyMatricesBytes)
		outBytes = int64(rupturePayloadBytes)
		inKey = "fdw/image+npy"
	case PhaseB:
		n = 1
		base = GFJobSecs(cfg.Stations)
		inBytes = int64(singularityImageBytes + npyMatricesBytes)
		outBytes = int64(gfArchiveBytes)
		inKey = "fdw/image+npy"
	case PhaseC:
		n = (cfg.Waveforms + cfg.WaveformsPerJob - 1) / cfg.WaveformsPerJob
		base = WaveformJobSecs(cfg.Stations, cfg.WaveformsPerJob)
		inBytes = int64(singularityImageBytes + npyMatricesBytes + gfArchiveBytes)
		outBytes = int64(waveformPayloadBytes * float64(cfg.WaveformsPerJob))
		inKey = "fdw/" + cfg.Name + "/image+npy+gf"
	default:
		return nil, fmt.Errorf("core: unknown phase %q", phase)
	}
	jobs := make([]*htcondor.Job, n)
	for i := range jobs {
		exec := rng.TruncNormal(base, base*0.05, base*0.9, base*1.1)
		jobs[i] = &htcondor.Job{
			Owner:           owner,
			Executable:      fmt.Sprintf("fdw_phase_%s.sh", phase),
			Arguments:       fmt.Sprintf("--batch %s --task %d", cfg.Name, i),
			RequestCpus:     4,
			RequestMemoryMB: 8192,
			RequestDiskMB:   16384,
			Requirements:    `(TARGET.HasSingularity == true)`,
			MaxRetries:      3,
			BaseExecSeconds: exec,
			InputBytes:      inBytes,
			OutputBytes:     outBytes,
			InputKey:        inKey,
		}
	}
	return jobs, nil
}
