// Command fdwlint runs FDW's determinism and invariant analyzers
// (internal/lint) over the given package patterns. It is stdlib-only
// and is wired into scripts/check.sh and the CI lint job.
//
// Usage:
//
//	fdwlint [-json] [-github] [-only analyzer,...] [-list] [packages...]
//
// With no patterns it analyzes ./... . Exit status is 0 when the tree
// is clean, 1 when diagnostics were reported, and 2 when the analysis
// itself failed (e.g. the tree does not compile).
//
// -github emits each diagnostic additionally as a GitHub Actions
// ::error workflow command, so the CI lint job annotates the offending
// lines directly in the pull-request diff.
//
// Diagnostics print as "file:line analyzer: message"; a line can be
// suppressed with a reasoned directive:
//
//	//lint:allow <analyzer> <reason>
//
// See DESIGN.md §9 for the analyzer catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fdw/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// githubAnnotation renders a diagnostic as a GitHub Actions ::error
// workflow command, which the runner turns into an inline annotation
// on the pull-request diff. Properties and message get the escaping
// the workflow-command grammar requires.
func githubAnnotation(d lint.Diagnostic, base string) string {
	file := d.File
	if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=fdwlint %s::%s",
		githubEscapeProp(file), d.Line, d.Col, githubEscapeProp(d.Analyzer),
		githubEscapeData(d.Message))
}

// githubEscapeData escapes a workflow-command message.
func githubEscapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// githubEscapeProp escapes a workflow-command property value, which
// additionally reserves ':' and ','.
func githubEscapeProp(s string) string {
	s = githubEscapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdwlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	github := fs.Bool("github", false, "also emit GitHub Actions ::error workflow commands")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", "", "change to this directory before analyzing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "fdwlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := &lint.Loader{Dir: *dir}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fdwlint: %v\n", err)
		return 2
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(stderr, "fdwlint: %s: %v\n", p.ImportPath, terr)
		}
		if len(p.TypeErrors) > 0 {
			return 2
		}
	}

	diags := lint.Run(pkgs, analyzers)
	base := *dir
	if base == "" {
		base, _ = os.Getwd()
	} else if abs, err := filepath.Abs(base); err == nil {
		base = abs
	}
	if *jsonOut {
		out := make([]lint.Diagnostic, 0, len(diags))
		for _, d := range diags {
			if rel, err := filepath.Rel(base, d.File); err == nil && !strings.HasPrefix(rel, "..") {
				d.File = rel
			}
			out = append(out, d)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "fdwlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.Format(base))
			if *github {
				fmt.Fprintln(stdout, githubAnnotation(d, base))
			}
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "fdwlint: %d diagnostic(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
