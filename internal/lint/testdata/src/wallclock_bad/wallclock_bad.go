// Package wallclock_bad exercises every class of wall-clock use the
// wallclock analyzer must flag.
package wallclock_bad

import "time"

// Stamp reads the host clock directly.
func Stamp() int64 {
	t := time.Now()
	return t.UnixNano()
}

// Nap arms a host timer.
func Nap() {
	time.Sleep(10 * time.Millisecond)
}

// Waiter leaks a timer channel.
func Waiter() <-chan time.Time {
	return time.After(time.Second)
}

// Elapsed measures host time.
func Elapsed(since time.Time) time.Duration {
	return time.Since(since)
}
