package lint

import (
	"go/ast"
)

// obsflowGetters are the methods that read a value out of an obs
// instrument. Handle-returning registry accessors (Counter, Gauge,
// Histogram, StartSpan) and serializing exporters (Snapshot,
// WriteJSON, WritePrometheus) are not reads — only these cross from
// "recorded" back into plain values.
var obsflowGetters = map[string]bool{
	"Value": true, "Count": true, "Sum": true, "Quantile": true,
	"At": true, "Now": true,
}

// obsflowAllowed may consume instrument values: the obs exporters
// themselves and the monitor CLI that renders them. Tests are exempt
// by construction (the loader skips _test.go files) — asserting on
// metric values is exactly what tests are for.
var obsflowAllowed = map[string]bool{
	obsPath:                    true,
	modulePath + "/cmd/fdwmon": true,
}

// ObsflowAnalyzer enforces the record-never-decide contract as a flow
// check: a value read from an obs instrument must not reach a
// condition, a loop bound, or a variable in non-exporter code. Passing
// a reading straight into a print call or a return is reporting and
// stays legal; branching on one would let instrumentation perturb the
// simulation, which TestFiguresIdenticalWithMetricsEnabled exists to
// rule out.
var ObsflowAnalyzer = &Analyzer{
	Name: "obsflow",
	Doc:  "flag obs instrument readings flowing into conditions, loop bounds, or variables outside exporters and tests",
	Run: func(pass *Pass) {
		if obsflowAllowed[pass.Pkg.ImportPath] {
			return
		}
		for _, f := range pass.Pkg.Files {
			parents := parentMap(f)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Pkg.Info, call)
				if fn == nil || !methodOn(fn, obsPath) || !obsflowGetters[fn.Name()] {
					return true
				}
				if ctx := flowContext(parents, call); ctx != "" {
					pass.Reportf(call.Pos(),
						"obs reading %s.%s flows into %s: observability records, it never decides — only internal/obs exporters, cmd/fdwmon, and tests may consume instrument values",
						recvTypeName(fn), fn.Name(), ctx)
				}
				return true
			})
		}
	},
}

// flowContext climbs from an obs read toward its statement and names
// the first forbidden context it is part of ("" when the use is legal,
// e.g. an argument to a print call or a return value).
func flowContext(parents map[ast.Node]ast.Node, n ast.Node) string {
	cur := ast.Node(n)
	for {
		parent := parents[cur]
		if parent == nil {
			return ""
		}
		switch p := parent.(type) {
		case *ast.IfStmt:
			if p.Cond == cur {
				return "a condition"
			}
			return ""
		case *ast.ForStmt:
			if p.Cond == cur {
				return "a loop bound"
			}
			return ""
		case *ast.RangeStmt:
			if p.X == cur {
				return "a range expression"
			}
			return ""
		case *ast.SwitchStmt:
			if p.Tag == cur {
				return "a switch condition"
			}
			return ""
		case *ast.CaseClause:
			for _, e := range p.List {
				if e == cur {
					return "a case expression"
				}
			}
			return ""
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if rhs != cur {
					continue
				}
				if len(p.Lhs) == len(p.Rhs) && isBlank(p.Lhs[i]) {
					return "" // discarded on purpose
				}
				return "an assignment"
			}
			return ""
		case *ast.ValueSpec:
			for i, v := range p.Values {
				if v != cur {
					continue
				}
				if len(p.Names) == len(p.Values) && p.Names[i].Name == "_" {
					return ""
				}
				return "a variable declaration"
			}
			return ""
		case ast.Stmt, *ast.FuncDecl:
			return ""
		}
		cur = parent
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
