package ospool

import (
	"strings"
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/sim"
	"fdw/internal/stash"
)

// testConfig is a small, fast pool for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Sites = []SiteConfig{
		{Name: "a", MaxSlots: 20, Speed: 1, SpeedSD: 0.05, CpusPer: 4, MemoryMB: 16384},
		{Name: "b", MaxSlots: 20, Speed: 1, SpeedSD: 0.05, CpusPer: 4, MemoryMB: 16384},
	}
	cfg.GlideinRampMean = 60
	cfg.GlideinLifetimeMean = 8 * 3600
	return cfg
}

func makeJobs(n int, owner string, execSecs float64) []*htcondor.Job {
	jobs := make([]*htcondor.Job, n)
	for i := range jobs {
		jobs[i] = &htcondor.Job{
			Owner:           owner,
			RequestCpus:     4,
			RequestMemoryMB: 8192,
			BaseExecSeconds: execSecs,
		}
	}
	return jobs
}

func TestPoolRunsWorkloadToCompletion(t *testing.T) {
	k := sim.NewKernel(1)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	if _, err := s.Submit(makeJobs(50, "u1", 300)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	if s.Completed() != 50 {
		t.Fatalf("completed %d, want 50", s.Completed())
	}
	for _, j := range s.AllJobs() {
		if j.Status != htcondor.Completed {
			t.Fatalf("job %s in state %v", j.ID(), j.Status)
		}
		if j.ExecSeconds() <= 0 {
			t.Fatalf("job %s exec %v", j.ID(), j.ExecSeconds())
		}
	}
}

func TestPoolParallelismBeatsSerial(t *testing.T) {
	k := sim.NewKernel(2)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	const n, exec = 80, 600
	if _, err := s.Submit(makeJobs(n, "u1", exec)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	elapsed := float64(k.Now())
	serial := float64(n * exec)
	if elapsed >= serial/4 {
		t.Fatalf("pool took %v s, want well under serial %v s", elapsed, serial)
	}
}

func TestPoolGlideinsRampGradually(t *testing.T) {
	k := sim.NewKernel(3)
	cfg := testConfig()
	cfg.GlideinRampMean = 600
	p, err := New(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	if _, err := s.Submit(makeJobs(40, "u1", 3600)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.RunUntil(90)
	early := p.SlotCount()
	peak := early
	stop := k.Ticker(120, 60, func(sim.Time) {
		if n := p.SlotCount(); n > peak {
			peak = n
		}
	})
	k.RunUntil(4 * 3600)
	stop()
	p.Stop()
	k.Run()
	if early >= peak {
		t.Fatalf("no ramp-up: %d slots early, peak %d", early, peak)
	}
}

func TestPoolEvictionRequeuesAndFinishes(t *testing.T) {
	k := sim.NewKernel(4)
	cfg := testConfig()
	cfg.GlideinLifetimeMean = 900 // aggressive pilot churn forces evictions
	p, err := New(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	if _, err := s.Submit(makeJobs(30, "u1", 1200)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(96 * 3600); err != nil {
		t.Fatal(err)
	}
	_, _, ev := p.Stats()
	if ev == 0 {
		t.Fatal("expected at least one eviction with 15-minute pilots")
	}
	if s.Completed() != 30 {
		t.Fatalf("completed %d, want 30", s.Completed())
	}
}

func TestPoolFairShareSplitsSlots(t *testing.T) {
	k := sim.NewKernel(5)
	cfg := testConfig()
	p, err := New(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := htcondor.NewSchedd("s1", k, nil)
	s2 := htcondor.NewSchedd("s2", k, nil)
	p.AddSchedd(s1)
	p.AddSchedd(s2)
	if _, err := s1.Submit(makeJobs(200, "dag1", 900)); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Submit(makeJobs(200, "dag2", 900)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	// Sample running counts mid-flight.
	var r1max, r2max int
	stop := k.Ticker(600, 300, func(sim.Time) {
		if n := s1.RunningCount(); n > r1max {
			r1max = n
		}
		if n := s2.RunningCount(); n > r2max {
			r2max = n
		}
	})
	if err := p.RunUntilDone(96 * 3600); err != nil {
		t.Fatal(err)
	}
	stop()
	if r1max == 0 || r2max == 0 {
		t.Fatalf("an owner never ran: %d %d", r1max, r2max)
	}
	// Fair share: neither owner should monopolize (>90%) the pool peak.
	if r1max*10 < r2max || r2max*10 < r1max {
		t.Fatalf("grossly unfair split: %d vs %d", r1max, r2max)
	}
}

func TestPoolRespectsRequirements(t *testing.T) {
	k := sim.NewKernel(6)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	jobs := makeJobs(2, "u", 100)
	jobs[0].Requirements = `(TARGET.GLIDEIN_Site == "a")`
	jobs[1].Requirements = `(TARGET.NoSuchThing == true)` // unmatchable
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.RunUntil(6 * 3600)
	p.Stop()
	k.Run()
	if jobs[0].Status != htcondor.Completed {
		t.Fatalf("site-pinned job state %v", jobs[0].Status)
	}
	if jobs[0].Site == "" || jobs[0].Site[len(jobs[0].Site)-1] != 'a' {
		t.Fatalf("job ran on %q, want site a", jobs[0].Site)
	}
	if jobs[1].Status != htcondor.Idle {
		t.Fatalf("unmatchable job state %v, want idle forever", jobs[1].Status)
	}
}

func TestPoolStashTransfersExtendRuntime(t *testing.T) {
	run := func(withCache bool) float64 {
		k := sim.NewKernel(7)
		var cache *stash.Cache
		if withCache {
			var err error
			cache, err = stash.New(stash.Config{OriginBps: 10e6, CacheBps: 100e6, LatencyS: 5})
			if err != nil {
				panic(err)
			}
		}
		p, err := New(k, testConfig(), cache)
		if err != nil {
			panic(err)
		}
		s := htcondor.NewSchedd("s", k, nil)
		p.AddSchedd(s)
		jobs := makeJobs(20, "u", 300)
		for _, j := range jobs {
			j.InputBytes = 900e6 // ~900 MB image+GFs
			j.InputKey = "phaseC-inputs"
			j.OutputBytes = 40e6
		}
		if _, err := s.Submit(jobs); err != nil {
			panic(err)
		}
		p.Start()
		if err := p.RunUntilDone(48 * 3600); err != nil {
			panic(err)
		}
		var sum float64
		for _, j := range s.AllJobs() {
			sum += j.ExecSeconds()
		}
		return sum / float64(len(jobs))
	}
	plain := run(false)
	cached := run(true)
	if cached <= plain {
		t.Fatalf("transfers should extend mean job walltime: %v vs %v", cached, plain)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Sites = nil },
		func(c *Config) { c.Sites[0].MaxSlots = 0 },
		func(c *Config) { c.Sites[0].Speed = 0 },
		func(c *Config) { c.NegotiationInterval = 0 },
		func(c *Config) { c.MatchesPerCycle = 0 },
		func(c *Config) { c.AvailabilityMin = 0 },
		func(c *Config) { c.AvailabilityMin = 1.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		// Deep-copy sites so mutations don't leak between cases.
		cfg.Sites = append([]SiteConfig(nil), cfg.Sites...)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestAvailabilityBounded(t *testing.T) {
	k := sim.NewKernel(8)
	p, err := New(k, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for tt := sim.Time(0); tt < 48*3600; tt += 137 {
		a := p.availability(tt)
		if a <= 0 || a > 1 {
			t.Fatalf("availability(%v) = %v", tt, a)
		}
	}
}

func TestAvailabilityVaries(t *testing.T) {
	k := sim.NewKernel(9)
	p, err := New(k, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 2.0, -1.0
	for tt := sim.Time(0); tt < 24*3600; tt += 600 {
		a := p.availability(tt)
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi-lo < 0.2 {
		t.Fatalf("availability barely varies: [%v, %v]", lo, hi)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed uint64) (sim.Time, int) {
		k := sim.NewKernel(seed)
		p, err := New(k, testConfig(), nil)
		if err != nil {
			panic(err)
		}
		s := htcondor.NewSchedd("s", k, nil)
		p.AddSchedd(s)
		if _, err := s.Submit(makeJobs(40, "u", 450)); err != nil {
			panic(err)
		}
		p.Start()
		if err := p.RunUntilDone(48 * 3600); err != nil {
			panic(err)
		}
		return k.Now(), s.Completed()
	}
	t1, c1 := run(11)
	t2, c2 := run(11)
	if t1 != t2 || c1 != c2 {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", t1, c1, t2, c2)
	}
	t3, _ := run(12)
	if t3 == t1 {
		t.Log("different seeds coincided (unlikely but not fatal)")
	}
}

func TestRunUntilDoneTimesOut(t *testing.T) {
	k := sim.NewKernel(10)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	jobs := makeJobs(1, "u", 100)
	jobs[0].Requirements = "(TARGET.Imaginary == 42)"
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(3600); err == nil {
		t.Fatal("expected timeout error for unmatchable job")
	}
}

func TestFaultInjectionRetriesJobs(t *testing.T) {
	k := sim.NewKernel(21)
	cfg := testConfig()
	cfg.FailureProb = 0.3
	p, err := New(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	jobs := makeJobs(40, "u", 300)
	for _, j := range jobs {
		j.MaxRetries = 5
	}
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(96 * 3600); err != nil {
		t.Fatal(err)
	}
	var retried int
	for _, j := range jobs {
		if j.Status != htcondor.Completed {
			t.Fatalf("job %s state %v", j.ID(), j.Status)
		}
		if j.ExitCode != 0 {
			t.Fatalf("job %s exhausted retries unexpectedly (exit %d)", j.ID(), j.ExitCode)
		}
		retried += j.Failures
	}
	if retried == 0 {
		t.Fatal("30% failure rate produced zero retries")
	}
}

func TestFaultInjectionExhaustsRetryBudget(t *testing.T) {
	k := sim.NewKernel(22)
	cfg := testConfig()
	cfg.FailureProb = 0.9
	p, err := New(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	jobs := makeJobs(20, "u", 100) // MaxRetries = 0: first failure is final
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(96 * 3600); err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, j := range jobs {
		if j.ExitCode != 0 {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("90% failure rate with no retry budget produced zero failed jobs")
	}
}

func TestFailureProbValidation(t *testing.T) {
	cfg := testConfig()
	cfg.FailureProb = 1.0
	if err := cfg.Validate(); err == nil {
		t.Fatal("FailureProb=1 accepted")
	}
	cfg.FailureProb = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative FailureProb accepted")
	}
}

func TestSiteDownHookBlocksProvisioning(t *testing.T) {
	// With site "a" down for the whole run, every job executes on "b".
	k := sim.NewKernel(31)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetSiteDown(func(site string, _ sim.Time) bool { return site == "a" })
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	if _, err := s.Submit(makeJobs(30, "u1", 300)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.AllJobs() {
		if j.Status != htcondor.Completed {
			t.Fatalf("job %s in state %v", j.ID(), j.Status)
		}
		if strings.HasSuffix(j.Site, ".a") {
			t.Fatalf("job %s ran on down site: %s", j.ID(), j.Site)
		}
	}
}

func TestDrainSiteEvictsAndWorkloadRecovers(t *testing.T) {
	k := sim.NewKernel(32)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	if _, err := s.Submit(makeJobs(40, "u1", 1800)); err != nil {
		t.Fatal(err)
	}
	drained := 0
	k.At(900, func() { drained = p.DrainSite("a") })
	p.Start()
	if err := p.RunUntilDone(72 * 3600); err != nil {
		t.Fatal(err)
	}
	if drained == 0 {
		t.Fatal("DrainSite found no glideins mid-run")
	}
	if s.Completed() != 40 {
		t.Fatalf("completed %d, want 40 (evicted jobs must requeue)", s.Completed())
	}
}

func TestExecFaultHookOutcomes(t *testing.T) {
	// A transfer fault or black hole fails the attempt; MaxRetries 0
	// means the failure is terminal, so every job completes non-zero.
	for _, mode := range []string{"transfer", "blackhole", "fail"} {
		k := sim.NewKernel(33)
		p, err := New(k, testConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		p.SetExecFault(func(site string, j *htcondor.Job, now sim.Time) ExecFault {
			switch mode {
			case "transfer":
				return ExecFault{TransferFail: true}
			case "blackhole":
				return ExecFault{BlackHole: true}
			default:
				return ExecFault{Fail: true}
			}
		})
		s := htcondor.NewSchedd("s", k, nil)
		p.AddSchedd(s)
		if _, err := s.Submit(makeJobs(10, "u1", 300)); err != nil {
			t.Fatal(err)
		}
		p.Start()
		if err := p.RunUntilDone(48 * 3600); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		for _, j := range s.AllJobs() {
			if j.Status != htcondor.Completed || j.ExitCode == 0 {
				t.Fatalf("%s: job %s status=%v exit=%d, want failed completion",
					mode, j.ID(), j.Status, j.ExitCode)
			}
			// A black hole burns the slot only briefly; a transfer fault
			// does no execution at all.
			if mode == "blackhole" && j.ExecSeconds() > blackHoleExecSeconds+1 {
				t.Fatalf("black-hole job %s ran %v s", j.ID(), j.ExecSeconds())
			}
		}
	}
}

func TestExecFaultRetriesRecover(t *testing.T) {
	// With job-level MaxRetries, attempts that hit a fault window
	// requeue; attempts after the window succeed.
	k := sim.NewKernel(34)
	p, err := New(k, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const window = 2 * 3600
	p.SetExecFault(func(site string, j *htcondor.Job, now sim.Time) ExecFault {
		return ExecFault{Fail: now < window}
	})
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	jobs := makeJobs(10, "u1", 300)
	for _, j := range jobs {
		j.MaxRetries = 100
	}
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Status != htcondor.Completed || j.ExitCode != 0 {
			t.Fatalf("job %s status=%v exit=%d", j.ID(), j.Status, j.ExitCode)
		}
	}
	_, _, evictions := p.Stats()
	if evictions == 0 {
		t.Fatal("no attempts hit the fault window")
	}
}
