package classad

import (
	"testing"
	"testing/quick"
)

func eval(t *testing.T, src string, my, target Ad) Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e.Eval(my, target)
}

func wantBool(t *testing.T, src string, my, target Ad, want bool) {
	t.Helper()
	v := eval(t, src, my, target)
	b, ok := v.AsBool()
	if !ok {
		t.Fatalf("%q evaluated to %v, want bool %v", src, v, want)
	}
	if b != want {
		t.Fatalf("%q = %v, want %v", src, b, want)
	}
}

func wantNumber(t *testing.T, src string, want float64) {
	t.Helper()
	v := eval(t, src, nil, nil)
	f, ok := v.AsNumber()
	if !ok || f != want {
		t.Fatalf("%q = %v, want %v", src, v, want)
	}
}

func TestArithmetic(t *testing.T) {
	wantNumber(t, "1 + 2 * 3", 7)
	wantNumber(t, "(1 + 2) * 3", 9)
	wantNumber(t, "10 / 4", 2.5)
	wantNumber(t, "-5 + 2", -3)
	wantNumber(t, "2e3 + 0.5", 2000.5)
}

func TestDivisionByZeroIsUndefined(t *testing.T) {
	if v := eval(t, "1 / 0", nil, nil); !v.IsUndefined() {
		t.Fatalf("1/0 = %v, want undefined", v)
	}
}

func TestComparisons(t *testing.T) {
	wantBool(t, "3 > 2", nil, nil, true)
	wantBool(t, "3 <= 2", nil, nil, false)
	wantBool(t, "2 == 2.0", nil, nil, true)
	wantBool(t, "2 != 3", nil, nil, true)
	wantBool(t, `"abc" == "ABC"`, nil, nil, true) // case-insensitive, as HTCondor
	wantBool(t, `"abc" < "abd"`, nil, nil, true)
}

func TestBooleanConnectives(t *testing.T) {
	wantBool(t, "true && false", nil, nil, false)
	wantBool(t, "true || false", nil, nil, true)
	wantBool(t, "!false", nil, nil, true)
	wantBool(t, "true && (false || true)", nil, nil, true)
}

func TestThreeValuedLogic(t *testing.T) {
	// false && undefined == false; true || undefined == true.
	wantBool(t, "false && NoSuchAttr", nil, nil, false)
	wantBool(t, "true || NoSuchAttr", nil, nil, true)
	if v := eval(t, "true && NoSuchAttr", nil, nil); !v.IsUndefined() {
		t.Fatalf("true && undefined = %v", v)
	}
	if v := eval(t, "false || NoSuchAttr", nil, nil); !v.IsUndefined() {
		t.Fatalf("false || undefined = %v", v)
	}
	if v := eval(t, "NoSuchAttr + 1", nil, nil); !v.IsUndefined() {
		t.Fatalf("undefined + 1 = %v", v)
	}
	if v := eval(t, "!NoSuchAttr", nil, nil); !v.IsUndefined() {
		t.Fatalf("!undefined = %v", v)
	}
}

func TestAttributeResolution(t *testing.T) {
	my := Ad{"RequestCpus": Number(4), "JobUser": String("fdw")}
	target := Ad{"Cpus": Number(8), "Memory": Number(16384)}
	wantBool(t, "Cpus >= RequestCpus", my, target, true)
	wantBool(t, "MY.RequestCpus == 4", my, target, true)
	wantBool(t, "TARGET.Memory >= 8192", my, target, true)
	// Bare names prefer MY over TARGET.
	my2 := Ad{"X": Number(1)}
	target2 := Ad{"X": Number(2)}
	wantBool(t, "X == 1", my2, target2, true)
}

func TestCaseInsensitiveLookup(t *testing.T) {
	my := Ad{"RequestMemory": Number(2048)}
	wantBool(t, "requestmemory == 2048", my, nil, true)
	wantBool(t, "REQUESTMEMORY == 2048", my, nil, true)
}

func TestRealisticRequirements(t *testing.T) {
	// The kind of Requirements expression FDW submit files carry.
	req := `(TARGET.Cpus >= MY.RequestCpus) && (TARGET.Memory >= MY.RequestMemory) && (TARGET.HasSingularity == true)`
	job := Ad{"RequestCpus": Number(4), "RequestMemory": Number(8192)}
	machine := Ad{"Cpus": Number(8), "Memory": Number(16384), "HasSingularity": Bool(true)}
	ok, err := EvalBool(req, job, machine)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("matching machine rejected")
	}
	weak := Ad{"Cpus": Number(2), "Memory": Number(16384), "HasSingularity": Bool(true)}
	ok, err = EvalBool(req, job, weak)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("undersized machine accepted")
	}
	// Machine without the HasSingularity attribute: UNDEFINED == true is
	// UNDEFINED; EvalBool maps that to false.
	bare := Ad{"Cpus": Number(8), "Memory": Number(16384)}
	ok, err = EvalBool(req, job, bare)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("machine lacking attribute accepted")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "(1", `"unterminated`, "1 2", "&& 3", "@", "1..2",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("((")
}

func TestLiteralsKeywords(t *testing.T) {
	wantBool(t, "TRUE", nil, nil, true)
	wantBool(t, "False", nil, nil, false)
	if v := eval(t, "UNDEFINED", nil, nil); !v.IsUndefined() {
		t.Fatal("UNDEFINED keyword not undefined")
	}
}

func TestValueString(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Number(2.5), "2.5"},
		{String("hi"), `"hi"`},
		{Undefined, "undefined"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Fatalf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	v := eval(t, `"a\"b"`, nil, nil)
	s, ok := v.AsString()
	if !ok || s != `a"b` {
		t.Fatalf("escaped string = %v", v)
	}
}

func TestExprStringRoundTrips(t *testing.T) {
	// Property: rendering a parsed expression re-parses to the same value.
	srcs := []string{
		"1 + 2 * 3",
		"(Cpus >= 4) && (Memory >= 2048 || true)",
		`"x" == "y"`,
		"!(3 < 4)",
	}
	my := Ad{"Cpus": Number(8), "Memory": Number(4096)}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-parse of %q (%q): %v", src, e1.String(), err)
		}
		if e1.Eval(my, nil).String() != e2.Eval(my, nil).String() {
			t.Fatalf("round trip changed value for %q", src)
		}
	}
}

func TestPropertyNumericComparisonConsistency(t *testing.T) {
	f := func(a, b int16) bool {
		my := Ad{"A": Number(float64(a)), "B": Number(float64(b))}
		lt, _ := eval(t, "A < B", my, nil).AsBool()
		ge, _ := eval(t, "A >= B", my, nil).AsBool()
		return lt != ge
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyArithmeticMatchesGo(t *testing.T) {
	f := func(a, b int8) bool {
		my := Ad{"A": Number(float64(a)), "B": Number(float64(b))}
		v := eval(t, "A * B + A - B", my, nil)
		got, ok := v.AsNumber()
		want := float64(a)*float64(b) + float64(a) - float64(b)
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnaryMinusOnAttr(t *testing.T) {
	my := Ad{"X": Number(5)}
	wantBool(t, "-X == -5", my, nil, true)
}

func TestBoolAsNumber(t *testing.T) {
	wantNumber(t, "true + true", 2)
}

func TestParseNeverPanics(t *testing.T) {
	// Property: Parse either succeeds or returns an error — it must not
	// panic on arbitrary input, and successful parses must evaluate
	// without panicking too.
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		e, err := Parse(src)
		if err == nil && e != nil {
			_ = e.Eval(Ad{"X": Number(1)}, Ad{"Y": String("v")})
			_ = e.String()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseStressOperatorsSoup(t *testing.T) {
	// Dense operator sequences exercise the parser's error paths.
	soups := []string{
		"1+2*3-4/5<6>=7&&8||!9",
		"((((((1))))))",
		"!!!!true",
		"- - - 3",
		"a.b.c.d == e.f.g",
		`"x" < 3 && undefined >= "y"`,
	}
	for _, src := range soups {
		e, err := Parse(src)
		if err != nil {
			continue // rejection is fine; panics are not
		}
		_ = e.Eval(nil, nil)
	}
}

func TestLookupDuplicateCaseVariantKeys(t *testing.T) {
	// Pathological but legal: one attribute spelled three ways. An
	// exact-case match must win, and with no exact match the
	// lexicographically smallest key must win — on every call, so
	// matchmaking cannot depend on map iteration order.
	ad := Ad{"CPUs": Number(1), "CPUS": Number(2), "cpus": Number(3)}
	for i := 0; i < 100; i++ {
		v, ok := ad.Lookup("CPUs")
		if f, _ := v.AsNumber(); !ok || f != 1 {
			t.Fatalf("iteration %d: exact-case Lookup(CPUs) = %v, %v; want 1", i, v, ok)
		}
		// No exact match: "CPUS" < "CPUs" < "cpus" in byte order.
		v, ok = ad.Lookup("Cpus")
		if f, _ := v.AsNumber(); !ok || f != 2 {
			t.Fatalf("iteration %d: Lookup(Cpus) = %v, %v; want 2 (smallest key CPUS)", i, v, ok)
		}
	}
}

func TestLookupMissing(t *testing.T) {
	ad := Ad{"X": Number(1)}
	if v, ok := ad.Lookup("Y"); ok || !v.IsUndefined() {
		t.Fatalf("Lookup(Y) = %v, %v; want Undefined, false", v, ok)
	}
	var nilAd Ad
	if v, ok := nilAd.Lookup("X"); ok || !v.IsUndefined() {
		t.Fatalf("nil ad Lookup = %v, %v; want Undefined, false", v, ok)
	}
}

func TestMoreMalformedInputs(t *testing.T) {
	for _, src := range []string{
		"1e+",       // exponent with no digits
		"3 =? 4",    // lexes as a two-char op the parser rejects
		"x ||",      // dangling connective
		"--",        // unary minus with no operand
		"(\t",       // open paren then EOF
		"\"a\\",     // escape at end of input
		"1.2.3",     // number with two dots
		"foo bar",   // two idents with no operator
		"# comment", // unsupported character
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEvalBoolPropagatesParseError(t *testing.T) {
	if _, err := EvalBool("((", nil, nil); err == nil {
		t.Fatal("EvalBool on malformed input returned nil error")
	}
	// UNDEFINED maps to false, not an error.
	ok, err := EvalBool("NoSuchAttr > 4", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("UNDEFINED comparison evaluated true")
	}
}
