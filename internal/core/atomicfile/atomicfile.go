// Package atomicfile is the one way FDW writes durable artifacts:
// manifest bundles, .npy matrix caches, figure CSVs, metrics dumps,
// DAG/submit files, the vdcd catalog. Every write goes to a temp file
// in the destination directory, is fsynced, and is renamed over the
// destination only on Commit — so a crash or kill at any instant
// leaves either the previous complete file or the new complete file,
// never a truncated one. Rescue-DAG resume and warm-cache reuse
// (DESIGN.md §13–14) depend on exactly this property: a partial
// artifact that parses as valid data would silently poison later
// runs, and one that does not parse would abort them.
//
// The `atomicwrite` analyzer (internal/lint, DESIGN.md §14) enforces
// that non-test code creates output files only through this package:
// direct os.Create / os.WriteFile / os.CreateTemp calls elsewhere are
// diagnostics.
//
// Idiomatic streaming use:
//
//	f, err := atomicfile.Create(path)
//	if err != nil { ... }
//	defer f.Close() // no-op after Commit; aborts (removes temp) otherwise
//	... write to f ...
//	return f.Commit()
//
// One-shot use:
//
//	err := atomicfile.WriteFile(path, func(w io.Writer) error {
//		return enc.Encode(w, v)
//	})
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is a pending atomic replacement of a destination path. It
// implements io.Writer; the bytes land in a same-directory temp file
// until Commit renames it into place. Exactly one of Commit or Close
// finalizes a File; Close after Commit is a no-op, so `defer f.Close()`
// immediately after Create is always correct.
type File struct {
	dest string
	tmp  *os.File
	done bool
}

// Create begins an atomic write of path. The temp file is created in
// path's directory (renames are only atomic within a filesystem) with
// mode 0o644, matching what os.Create-written artifacts had.
func Create(path string) (*File, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close() //lint:allow errdrop abort path: the chmod error is what gets reported
		os.Remove(tmp.Name())
		return nil, err
	}
	return &File{dest: path, tmp: tmp}, nil
}

// Write appends to the pending temp file.
func (f *File) Write(p []byte) (int, error) {
	if f.done {
		return 0, fmt.Errorf("atomicfile: write to finalized %s", f.dest)
	}
	return f.tmp.Write(p)
}

// Name returns the destination path (not the temp path), so a File can
// stand in for an *os.File in log messages.
func (f *File) Name() string { return f.dest }

// Commit fsyncs the temp file, closes it, and renames it over the
// destination. On any error the temp file is removed and the
// destination is left exactly as it was.
func (f *File) Commit() error {
	if f.done {
		return fmt.Errorf("atomicfile: %s already committed or aborted", f.dest)
	}
	f.done = true
	name := f.tmp.Name()
	// Sync before rename: a rename can survive a crash that the data
	// did not, which is precisely the corrupt-cache scenario this
	// package exists to rule out.
	if err := f.tmp.Sync(); err != nil {
		f.tmp.Close() //lint:allow errdrop abort path: the sync error is what gets reported
		os.Remove(name)
		return err
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if TestHookBeforeRename != nil {
		if err := TestHookBeforeRename(f.dest); err != nil {
			// The torn-checkpoint kill point: the temp file is
			// deliberately left behind, exactly as a crash between write
			// and rename would — the destination still holds its previous
			// complete bytes and recovery must never trust the orphan.
			return err
		}
	}
	if err := os.Rename(name, f.dest); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// TestHookBeforeRename, when non-nil, runs after the temp file is
// synced and closed but before the rename that publishes it. A non-nil
// error aborts the commit with the temp file left in place, simulating
// a kill in the narrow window between durable write and publication (a
// torn checkpoint). Torn-checkpoint hardening tests set it; production
// code never does.
var TestHookBeforeRename func(dest string) error

// Close aborts the write unless Commit already ran: the temp file is
// closed and removed, and the destination is untouched. It returns
// nothing because aborting is best-effort by design — the error being
// unwound past the deferred Close is the one worth reporting.
func (f *File) Close() {
	if f.done {
		return
	}
	f.done = true
	f.tmp.Close() //lint:allow errdrop abort path: destination is untouched either way
	os.Remove(f.tmp.Name())
}

// WriteFile atomically replaces path with whatever write produces:
// the callback's output is staged in a temp file and renamed into
// place only if the callback and the sync both succeed.
func WriteFile(path string, write func(w io.Writer) error) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Commit()
}
