package main

import (
	"io"
	"testing"

	"fdw"
)

func quickOpt() fdw.ExperimentOptions {
	opt := fdw.DefaultExperimentOptions()
	opt.Seeds = []uint64{7}
	opt.Scale = 0.02
	opt.Out = io.Discard
	return opt
}

func TestDispatchEveryFigure(t *testing.T) {
	for _, cmd := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "headline", "ablate", "policy3", "elastic", "chaos"} {
		opt := quickOpt()
		if cmd == "headline" {
			opt.Scale = 0.1
		}
		if err := dispatch(cmd, opt, t.TempDir()); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch("fig99", quickOpt(), ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
