// Package maporder_bad performs every class of order-sensitive work
// inside map iteration that the maporder analyzer must flag.
package maporder_bad

import (
	"fmt"
	"io"

	"fdw/internal/obs"
	"fdw/internal/sim"
)

// Keys leaks map order into a slice that is never sorted.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Dump prints rows in map order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Emit writes raw rows in map order.
func Emit(w io.Writer, m map[string]string) error {
	for _, v := range m {
		if _, err := w.Write([]byte(v)); err != nil {
			return err
		}
	}
	return nil
}

// Schedule puts calendar events on in map order, scrambling the
// deterministic (time, seq) tie-break.
func Schedule(k *sim.Kernel, jobs map[string]sim.Time) {
	for id, at := range jobs {
		id := id
		k.At(at, func() { _ = id })
	}
}

// Draw consumes RNG variates in map order.
func Draw(rng *sim.RNG, weights map[string]float64) float64 {
	total := 0.0
	for range weights {
		total += rng.Float64()
	}
	return total
}

// Record stamps obs records in map order.
func Record(r *obs.Registry, counts map[string]uint64) {
	for name, n := range counts {
		r.Counter("jobs", "site", name).Add(n)
	}
}
