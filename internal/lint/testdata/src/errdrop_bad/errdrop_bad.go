// Package errdrop_bad throws away the errors that tell it whether a
// durable write actually landed.
package errdrop_bad

import (
	"bufio"
	"os"

	"fdw/internal/core/atomicfile"
)

// CloseDropped ignores both the write and the close.
func CloseDropped(path string, data []byte) {
	f, _ := os.Create(path)
	f.Write(data)
	f.Close()
}

// DeferClose loses the close error to a defer: the write can be short
// and the function still returns nil.
func DeferClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString("hello\n")
	return err
}

// BufferedFlush drops the flush on a writer one hop from the file.
func BufferedFlush(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString("row\n"); err != nil {
		return err
	}
	w.Flush()
	return f.Close()
}

// RenameDropped never learns whether the artifact was published.
func RenameDropped(tmp, dst string) {
	os.Rename(tmp, dst)
}

// CommitDropped stages the bytes and ignores whether the rename into
// place happened.
func CommitDropped(path string, data []byte) {
	f, err := atomicfile.Create(path)
	if err != nil {
		return
	}
	if _, err := f.Write(data); err != nil {
		return
	}
	f.Commit()
}

// BlankSync discards explicitly; the blank is still a dropped error.
func BlankSync(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_ = f.Sync()
	return f.Close()
}
