package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWithFlags(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "run.log")
	traceDir := filepath.Join(dir, "traces")
	metricsPath := filepath.Join(dir, "metrics.json")
	err := run("", "clitest", 64, 2, 3, logPath, traceDir, 48, metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(snap), "fdw_schedd_events_total") {
		t.Fatal("metrics snapshot missing schedd counters")
	}
	log, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(log), "Job terminated") {
		t.Fatal("user log has no termination events")
	}
	for _, f := range []string{"batch.csv", "jobs.csv"} {
		if _, err := os.Stat(filepath.Join(traceDir, f)); err != nil {
			t.Fatalf("missing trace %s: %v", f, err)
		}
	}
}

func TestRunWithConfigFile(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "fdw.cfg")
	cfg := "name = from-file\nwaveforms = 64\nstations = 2\nseed = 4\n"
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cfgPath, "", 0, 0, 0, "", "", 48, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "bad.cfg")
	if err := os.WriteFile(cfgPath, []byte("nonsense = here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cfgPath, "", 0, 0, 0, "", "", 48, ""); err == nil {
		t.Fatal("bad config accepted")
	}
	if err := run(filepath.Join(dir, "missing.cfg"), "", 0, 0, 0, "", "", 48, ""); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestRunRejectsImpossibleHorizon(t *testing.T) {
	if err := run("", "h", 2000, 121, 1, "", "", 0.01, ""); err == nil {
		t.Fatal("a 36-second horizon should not finish 2000 waveforms")
	}
}
