package fakequakes

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fdw/internal/geom"
)

// MudPy stores each rupture scenario as a whitespace-delimited ".rupt"
// text file, one row per subfault:
//
//	no  lon  lat  z(km)  strike  dip  rise(s)  dura(s)  ss-slip(m)  ds-slip(m)  rupt_time(s)  rigidity(Pa)
//
// Rows for subfaults outside the rupture patch carry zero slip. This
// codec writes and reads that format so FDW products are drop-in
// compatible with MudPy tooling.

// WriteRupt encodes r on fault f in MudPy .rupt layout. All slip is
// written as dip-slip (the megathrust convention FakeQuakes uses).
func WriteRupt(w io.Writer, f *geom.Fault, r *Rupture) error {
	if f == nil || r == nil {
		return fmt.Errorf("fakequakes: nil fault or rupture")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# FakeQuakes rupture %s  Mw %.4f  hypocenter subfault %d\n",
		r.ID, r.ActualMw, r.Hypocenter); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "# no\tlon\tlat\tz(km)\tstrike\tdip\trise\tdura\tss-slip(m)\tds-slip(m)\trupt_time(s)\trigidity(Pa)"); err != nil {
		return err
	}
	// Patch lookup: subfault index → position in r.Patch.
	inPatch := make(map[int]int, len(r.Patch))
	for k, idx := range r.Patch {
		inPatch[idx] = k
	}
	for i := range f.Subfaults {
		sf := &f.Subfaults[i]
		slip, onset, rise := 0.0, 0.0, 0.0
		if k, ok := inPatch[i]; ok {
			slip = r.SlipM[k]
			onset = r.OnsetS[k]
			rise = r.RiseS[k]
		}
		_, err := fmt.Fprintf(bw, "%d\t%.6f\t%.6f\t%.4f\t%.2f\t%.2f\t%.4f\t%.4f\t%.6f\t%.6f\t%.4f\t%.4e\n",
			i+1, sf.Center.Lon, sf.Center.Lat, sf.DepthKm, sf.StrikeDeg, sf.DipDeg,
			rise, rise, 0.0, slip, onset, ShearModulusPa)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRupt decodes a .rupt stream written by WriteRupt (or by MudPy,
// for files with the same column layout). It reconstructs the rupture
// patch from the rows with non-zero total slip; the fault provides the
// subfault count for validation.
func ReadRupt(rd io.Reader, f *geom.Fault) (*Rupture, error) {
	if f == nil {
		return nil, fmt.Errorf("fakequakes: nil fault")
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	r := &Rupture{ID: "rupt"}
	lineNo := 0
	rows := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Recover metadata from our own header when present.
			if strings.Contains(line, "FakeQuakes rupture") {
				fields := strings.Fields(line)
				for i, tok := range fields {
					if tok == "rupture" && i+1 < len(fields) {
						r.ID = fields[i+1]
					}
					if tok == "Mw" && i+1 < len(fields) {
						if v, err := strconv.ParseFloat(fields[i+1], 64); err == nil {
							r.TargetMw = v
							r.ActualMw = v
						}
					}
					if tok == "subfault" && i+1 < len(fields) {
						if v, err := strconv.Atoi(fields[i+1]); err == nil {
							r.Hypocenter = v
						}
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 12 {
			return nil, fmt.Errorf("fakequakes: .rupt line %d has %d columns, want 12", lineNo, len(fields))
		}
		no, err := strconv.Atoi(fields[0])
		if err != nil || no < 1 {
			return nil, fmt.Errorf("fakequakes: .rupt line %d: bad subfault number %q", lineNo, fields[0])
		}
		idx := no - 1
		if idx >= f.NumSubfaults() {
			return nil, fmt.Errorf("fakequakes: .rupt line %d: subfault %d outside fault of %d", lineNo, no, f.NumSubfaults())
		}
		num := func(col int) (float64, error) {
			v, err := strconv.ParseFloat(fields[col], 64)
			if err != nil {
				return 0, fmt.Errorf("fakequakes: .rupt line %d column %d: %v", lineNo, col+1, err)
			}
			return v, nil
		}
		ss, err := num(8)
		if err != nil {
			return nil, err
		}
		ds, err := num(9)
		if err != nil {
			return nil, err
		}
		rise, err := num(6)
		if err != nil {
			return nil, err
		}
		onset, err := num(10)
		if err != nil {
			return nil, err
		}
		rows++
		slip := ss + ds
		if slip == 0 {
			continue
		}
		r.Patch = append(r.Patch, idx)
		r.SlipM = append(r.SlipM, slip)
		r.OnsetS = append(r.OnsetS, onset)
		r.RiseS = append(r.RiseS, rise)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rows == 0 {
		return nil, fmt.Errorf("fakequakes: empty .rupt file")
	}
	if len(r.Patch) == 0 {
		return nil, fmt.Errorf("fakequakes: .rupt has no slipping subfaults")
	}
	return r, nil
}
