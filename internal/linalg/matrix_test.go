package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"fdw/internal/sim"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d data %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("new matrix not zeroed")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At = %v, want 7.5", m.At(1, 2))
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range At")
		}
	}()
	NewMatrix(2, 2).At(2, 0)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows layout wrong")
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Fatal("empty FromRows mishandled")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 2)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestCholeskyKnown(t *testing.T) {
	// Classic SPD example.
	m, _ := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(l.At(i, j)-want[i][j]) > 1e-10 {
				t.Fatalf("L[%d][%d] = %v, want %v", i, j, l.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(m); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestPropertyCholeskyReconstructs(t *testing.T) {
	// Property: for random A, M = A·Aᵀ + eps·I is SPD and chol(M)·chol(M)ᵀ == M.
	rng := sim.NewRNG(99)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		r := rng.Split(seed)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.Normal(0, 1)
		}
		m, err := a.Mul(a.T())
		if err != nil {
			return false
		}
		m.AddDiag(0.5)
		l, err := Cholesky(m)
		if err != nil {
			return false
		}
		back, err := l.Mul(l.T())
		if err != nil {
			return false
		}
		for i := range m.Data {
			if math.Abs(back.Data[i]-m.Data[i]) > 1e-8*(1+math.Abs(m.Data[i])) {
				return false
			}
		}
		// L must be lower-triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddDiag(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddDiag(3)
	if m.At(0, 0) != 3 || m.At(1, 1) != 3 || m.At(0, 1) != 0 {
		t.Fatal("AddDiag wrong")
	}
}

func TestSymmetricMaxAbsDiff(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {2.5, 1}})
	if d := m.SymmetricMaxAbsDiff(); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("asym = %v, want 0.5", d)
	}
	if !math.IsInf(NewMatrix(2, 3).SymmetricMaxAbsDiff(), 1) {
		t.Fatal("non-square should be Inf")
	}
}

func TestDotNormScaleAXPY(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
	x := Scale([]float64{1, 2}, 3)
	if x[0] != 3 || x[1] != 6 {
		t.Fatal("Scale wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatal("AXPY wrong")
	}
}

func TestRowIsView(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row is not a view")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMatrix(1, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone is shallow")
	}
}

func TestSolveCholesky(t *testing.T) {
	m, _ := FromRows([][]float64{{4, 12, -16}, {12, 37, -43}, {-16, -43, 98}})
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	b, err := m.MulVec(want)
	if err != nil {
		t.Fatal(err)
	}
	x, err := SolveCholesky(l, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	if _, err := SolveCholesky(l, []float64{1}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestLeastSquaresRecoversLine(t *testing.T) {
	// y = 3 + 2t, with exact data.
	rows := [][]float64{}
	var b []float64
	for tt := 0.0; tt < 10; tt++ {
		rows = append(rows, []float64{1, tt})
		b = append(b, 3+2*tt)
	}
	a, _ := FromRows(rows)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-6 || math.Abs(x[1]-2) > 1e-6 {
		t.Fatalf("coefficients %v, want [3 2]", x)
	}
}

func TestLeastSquaresValidation(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Fatal("underdetermined accepted")
	}
	a2 := NewMatrix(3, 2)
	if _, err := LeastSquares(a2, []float64{1}); err == nil {
		t.Fatal("bad rhs accepted")
	}
}
