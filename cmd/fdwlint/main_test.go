package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fdw/internal/lint"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run -list = %d, stderr %s", code, errb.String())
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("run -only nope = %d, want 2", code)
	}
}

// TestJSONOnFixture runs the CLI against a known-bad fixture and
// checks exit status and the machine-readable output shape.
func TestJSONOnFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-C", "../..", "-only", "wallclock",
		"./internal/lint/testdata/src/wallclock_bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (stderr %s)", code, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics decoded")
	}
	for _, d := range diags {
		if d.Analyzer != "wallclock" || d.File == "" || d.Line == 0 {
			t.Errorf("malformed diagnostic: %+v", d)
		}
	}
}

// TestGitHubAnnotations runs the CLI with -github against a known-bad
// fixture and checks the ::error workflow-command shape CI consumes.
func TestGitHubAnnotations(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-github", "-C", "../..", "-only", "atomicwrite",
		"./internal/lint/testdata/src/atomicwrite_bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (stderr %s)", code, errb.String())
	}
	var annotations int
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.HasPrefix(line, "::error ") {
			continue
		}
		annotations++
		if !strings.Contains(line, "file=internal/lint/testdata/src/atomicwrite_bad/atomicwrite_bad.go") {
			t.Errorf("annotation missing repo-relative file property: %s", line)
		}
		if !strings.Contains(line, ",line=") || !strings.Contains(line, ",col=") {
			t.Errorf("annotation missing line/col properties: %s", line)
		}
		if !strings.Contains(line, "title=fdwlint atomicwrite::") {
			t.Errorf("annotation missing analyzer title: %s", line)
		}
	}
	if annotations == 0 {
		t.Fatalf("no ::error annotations emitted:\n%s", out.String())
	}
	// The human-readable lines must still be present alongside.
	if !strings.Contains(out.String(), "atomicwrite: os.Create") {
		t.Errorf("plain diagnostics missing from -github output:\n%s", out.String())
	}
}

// TestGitHubEscaping pins the workflow-command escaping rules.
func TestGitHubEscaping(t *testing.T) {
	d := lint.Diagnostic{File: "a,b:c.go", Line: 3, Col: 7, Analyzer: "maporder",
		Message: "100% broken\nsecond line"}
	got := githubAnnotation(d, "")
	want := "::error file=a%2Cb%3Ac.go,line=3,col=7,title=fdwlint maporder::100%25 broken%0Asecond line"
	if got != want {
		t.Errorf("githubAnnotation:\ngot  %s\nwant %s", got, want)
	}
}

// TestCleanFixture checks the zero-diagnostic exit path.
func TestCleanFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../..", "./internal/lint/testdata/src/wallclock_clean"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout %s\nstderr %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no output, got %s", out.String())
	}
}
