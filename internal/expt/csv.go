package expt

import (
	"encoding/csv"
	"io"
	"strconv"

	"fdw/internal/core"
)

// CSV writers for the figure data, so the rows the harness prints can
// be re-plotted outside Go. One writer per figure's row type.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
func d(v int) string     { return strconv.Itoa(v) }

// WriteFig2CSV writes the Fig. 2 rows.
func WriteFig2CSV(w io.Writer, rows []Fig2Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			d(r.Stations), d(r.Waveforms), d(r.Jobs),
			f(r.RuntimeH), f(r.RuntimeSD), f(r.RuntimeMin), f(r.RuntimeMax),
			f(r.ThroughputJPM), f(r.ThroughputSD),
		}
	}
	return writeCSV(w, []string{
		"stations", "waveforms", "jobs",
		"runtime_h", "runtime_sd", "runtime_min", "runtime_max",
		"jpm", "jpm_sd",
	}, out)
}

// WriteFig3CSV writes the Fig. 3 rows.
func WriteFig3CSV(w io.Writer, rows []Fig3Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			d(r.DAGMans), d(r.WaveformsEach),
			f(r.RuntimeH), f(r.RuntimeSD), f(r.RuntimeMin), f(r.RuntimeMax),
			f(r.ThroughputJPM), f(r.MakespanH),
		}
	}
	return writeCSV(w, []string{
		"dagmans", "waveforms_each",
		"runtime_h", "runtime_sd", "runtime_min", "runtime_max",
		"jpm", "makespan_h",
	}, out)
}

// WriteFig4SeriesCSV writes one concurrency level's per-second series:
// instant throughput and running jobs side by side.
func WriteFig4SeriesCSV(w io.Writer, data Fig4Data) error {
	n := len(data.InstantJPM)
	if len(data.RunningJobs) < n {
		n = len(data.RunningJobs)
	}
	out := make([][]string, n)
	for i := 0; i < n; i++ {
		out[i] = []string{
			f(float64(data.InstantJPM[i].T)),
			f(data.InstantJPM[i].V),
			f(data.RunningJobs[i].V),
		}
	}
	return writeCSV(w, []string{"second", "instant_jpm", "running_jobs"}, out)
}

// WriteFig5CSV writes the bursting sweep cells (Fig. 5 or Fig. 6).
func WriteFig5CSV(w io.Writer, cells []Fig5Cell) error {
	out := make([][]string, len(cells))
	for i, c := range cells {
		control := "0"
		if c.Control {
			control = "1"
		}
		out[i] = []string{
			c.Batch, control, f(c.ProbeSecs), f(c.MaxQueueM),
			f(c.AvgJPM), f(c.MaxJPM), f(c.SDJPM),
			f(c.VDCPct), f(c.BurstedPct), f(c.RuntimeH), f(c.CostUSD),
		}
	}
	return writeCSV(w, []string{
		"batch", "control", "probe_s", "max_queue_min",
		"ait_jpm", "max_jpm", "sd_jpm",
		"vdc_pct", "bursted_pct", "runtime_h", "cost_usd",
	}, out)
}

// WriteSeriesCSV writes any core series as (t, v) pairs.
func WriteSeriesCSV(w io.Writer, name string, series []core.SeriesPoint) error {
	out := make([][]string, len(series))
	for i, p := range series {
		out[i] = []string{f(float64(p.T)), f(p.V)}
	}
	return writeCSV(w, []string{"second", name}, out)
}
