// Package htcondor reimplements the slice of HTCondor that FDW relies
// on: jobs with ClassAd attributes, submit-description files, a schedd
// (job queue) driven by the simulation kernel, and the user event log
// whose text format FDW's monitoring scripts parse.
package htcondor

import (
	"fmt"

	"fdw/internal/classad"
	"fdw/internal/sim"
)

// JobStatus is the HTCondor job state machine (numeric values follow
// HTCondor's JobStatus attribute).
type JobStatus int

// Job states, in HTCondor's numbering.
const (
	Idle      JobStatus = 1
	Running   JobStatus = 2
	Removed   JobStatus = 3
	Completed JobStatus = 4
	Held      JobStatus = 5
)

func (s JobStatus) String() string {
	switch s {
	case Idle:
		return "idle"
	case Running:
		return "running"
	case Removed:
		return "removed"
	case Completed:
		return "completed"
	case Held:
		return "held"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

// Job is one queued unit of work.
type Job struct {
	Cluster int
	Proc    int
	Owner   string // submitting user/DAGMan identity (fair-share key)

	Executable string
	Arguments  string

	RequestCpus     int
	RequestMemoryMB int
	RequestDiskMB   int
	Requirements    string // ClassAd source; empty means "match anything"

	// Attrs carries +CustomAttributes from the submit file plus the
	// Request* values for matchmaking.
	Attrs classad.Ad

	// InputBytes/OutputBytes drive the Stash-cache transfer model.
	// InputKey identifies the shared input artifact (image + matrices);
	// jobs of one phase share a key, so after the first fetch at a site
	// the regional cache is warm.
	InputBytes  int64
	OutputBytes int64
	InputKey    string

	// BaseExecSeconds is the nominal execution time on a reference
	// 4-core OSPool slot; sites scale it by their speed factor.
	BaseExecSeconds float64

	// MaxRetries is the job-level retry budget (HTCondor max_retries):
	// a non-zero exit re-queues the job until the budget is spent.
	MaxRetries int

	// Mutable state, owned by the Schedd.
	Status     JobStatus
	SubmitTime sim.Time
	StartTime  sim.Time
	EndTime    sim.Time
	Site       string
	ExitCode   int
	Evictions  int
	Failures   int

	// matchAd memoizes MatchAd. Requirements, Request*, Owner, and
	// Attrs are fixed once a job is handed to Submit (the schedd only
	// mutates the state block above), so the ad is built at most once
	// per job instead of once per matchmaking probe.
	matchAd classad.Ad

	// fifoIdx is the job's position in each of the schedd's idle-queue
	// structures (jobFIFO); maintained by the owning schedd only.
	fifoIdx [numFIFOSlots]int
}

// ID renders the HTCondor "cluster.proc" identifier.
func (j *Job) ID() string { return fmt.Sprintf("%d.%d", j.Cluster, j.Proc) }

// WaitSeconds returns queue wait (start - submit) for started jobs.
func (j *Job) WaitSeconds() float64 {
	if j.StartTime < j.SubmitTime {
		return 0
	}
	return float64(j.StartTime - j.SubmitTime)
}

// ExecSeconds returns wall execution time for finished jobs.
func (j *Job) ExecSeconds() float64 {
	if j.EndTime < j.StartTime {
		return 0
	}
	return float64(j.EndTime - j.StartTime)
}

// MatchAd builds the ad used as MY during matchmaking. The ad is
// memoized (matchmaking attributes are immutable after submission);
// callers must not mutate it.
func (j *Job) MatchAd() classad.Ad {
	if j.matchAd != nil {
		return j.matchAd
	}
	ad := classad.Ad{
		"RequestCpus":   classad.Number(float64(j.RequestCpus)),
		"RequestMemory": classad.Number(float64(j.RequestMemoryMB)),
		"RequestDisk":   classad.Number(float64(j.RequestDiskMB)),
		"Owner":         classad.String(j.Owner),
	}
	for k, v := range j.Attrs {
		ad[k] = v
	}
	j.matchAd = ad
	return ad
}

// Matches evaluates the job's Requirements against a machine ad,
// and the machine's own requirements (Start expression) if present.
func (j *Job) Matches(machine classad.Ad) (bool, error) {
	if j.RequestCpus > 0 {
		if c, ok := machine.Lookup("Cpus"); ok {
			if n, defined := c.AsNumber(); defined && n < float64(j.RequestCpus) {
				return false, nil
			}
		}
	}
	if j.RequestMemoryMB > 0 {
		if m, ok := machine.Lookup("Memory"); ok {
			if n, defined := m.AsNumber(); defined && n < float64(j.RequestMemoryMB) {
				return false, nil
			}
		}
	}
	if j.Requirements == "" {
		return true, nil
	}
	return classad.EvalBoolCached(j.Requirements, j.MatchAd(), machine)
}
