package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// seamguard enforces the nil-off hook convention: optional seams —
// func-typed struct fields the package itself nil-checks somewhere,
// interface fields whose type name ends in "Hook", and *obs.Registry
// fields — are off when nil, so every call through one must be
// dominated by a nil check of the same field in the same function.
// A guard outside an enclosing function literal does not count: the
// closure may run after the field changed, which is why the pool
// re-guards p.recovery inside its kernel callbacks.

// SeamguardAnalyzer flags calls through nil-off hook fields that no
// nil check dominates.
var SeamguardAnalyzer = &Analyzer{
	Name: "seamguard",
	Doc:  "calls through nil-off hook fields (nil-checked func fields, *Hook interfaces, obs registries) must be dominated by a nil check",
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		nilChecked := nilCheckedFuncFields(pass.Pkg)
		for _, f := range pass.Pkg.Files {
			parents := parentMap(f)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				// Direct call of a func-typed field: p.siteDown(...).
				if obj := funcFieldObj(info, sel); obj != nil && nilChecked[obj] {
					if !nilGuarded(parents, call, sel) {
						pass.Reportf(call.Pos(),
							"call through nil-off hook field %s is not dominated by a nil check: guard it with `if %s != nil`",
							types.ExprString(sel), types.ExprString(sel))
					}
					return true
				}
				// Method call through a hook-typed field:
				// p.recovery.AttemptEnded(...), s.obs.Counter(...).
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					if kind := hookFieldKind(info, inner); kind != "" && !nilGuarded(parents, call, inner) {
						pass.Reportf(call.Pos(),
							"call through nil-off %s field %s is not dominated by a nil check: guard it with `if %s != nil`",
							kind, types.ExprString(inner), types.ExprString(inner))
					}
				}
				return true
			})
		}
	},
}

// nilCheckedFuncFields collects the func-typed struct fields this
// package compares against nil anywhere: the package's own signal that
// the field is an optional hook rather than an always-set callback.
func nilCheckedFuncFields(pkg *Package) map[types.Object]bool {
	fields := map[types.Object]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
				sel, ok := ast.Unparen(pair[0]).(*ast.SelectorExpr)
				if !ok || !isNilExpr(pair[1]) {
					continue
				}
				if obj := funcFieldObj(pkg.Info, sel); obj != nil {
					fields[obj] = true
				}
			}
			return true
		})
	}
	return fields
}

// funcFieldObj resolves sel to a struct field of function type, or nil.
func funcFieldObj(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	if _, ok := s.Obj().Type().Underlying().(*types.Signature); !ok {
		return nil
	}
	return s.Obj()
}

// hookFieldKind classifies sel as a hook-typed struct field: an
// *obs.Registry ("obs registry") or an interface named *Hook ("hook
// interface"). Empty string otherwise.
func hookFieldKind(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	t := types.Unalias(s.Obj().Type())
	if p, ok := t.(*types.Pointer); ok {
		if n, ok := types.Unalias(p.Elem()).(*types.Named); ok &&
			n.Obj().Name() == "Registry" && n.Obj().Pkg() != nil &&
			n.Obj().Pkg().Path() == obsPath {
			return "obs registry"
		}
		return ""
	}
	if n, ok := t.(*types.Named); ok {
		if _, ok := n.Underlying().(*types.Interface); ok &&
			len(n.Obj().Name()) > 4 && n.Obj().Name()[len(n.Obj().Name())-4:] == "Hook" {
			return "hook interface"
		}
	}
	return ""
}

// nilGuarded reports whether a nil check of target dominates call
// within the innermost enclosing function. Recognized shapes:
//
//	if target != nil { ... call ... }          (any &&-conjunct)
//	target != nil && target(...)               (short-circuit)
//	if target == nil { ... } else { call }     (any ||-disjunct)
//	if target == nil { return }; ... call ...  (early return/branch/panic)
func nilGuarded(parents map[ast.Node]ast.Node, call *ast.CallExpr, target ast.Expr) bool {
	want := types.ExprString(ast.Unparen(target))
	for cur := ast.Node(call); cur != nil; cur = parents[cur] {
		switch p := parents[cur].(type) {
		case *ast.BinaryExpr:
			if p.Op == token.LAND && p.Y == cur && condNilCheck(p.X, want, token.NEQ) {
				return true
			}
		case *ast.IfStmt:
			if p.Body == cur && condNilCheck(p.Cond, want, token.NEQ) {
				return true
			}
			if p.Else == cur && condNilCheck(p.Cond, want, token.EQL) {
				return true
			}
		case *ast.BlockStmt:
			// An earlier sibling `if target == nil { return }` dominates
			// everything after it in this block.
			for _, st := range p.List {
				if st.End() >= call.Pos() {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if ok && condNilCheck(ifs.Cond, want, token.EQL) && terminates(ifs.Body) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false // a guard outside the closure may be stale
		}
	}
	return false
}

// condNilCheck reports whether cond establishes `want <op> nil` when it
// evaluates true: for NEQ the check must be an &&-conjunct, for EQL an
// ||-disjunct (so a true cond still pins the field to nil).
func condNilCheck(cond ast.Expr, want string, op token.Token) bool {
	cond = ast.Unparen(cond)
	if be, ok := cond.(*ast.BinaryExpr); ok {
		chain := token.LAND
		if op == token.EQL {
			chain = token.LOR
		}
		if be.Op == chain {
			return condNilCheck(be.X, want, op) || condNilCheck(be.Y, want, op)
		}
		if be.Op == op {
			return (types.ExprString(ast.Unparen(be.X)) == want && isNilExpr(be.Y)) ||
				(types.ExprString(ast.Unparen(be.Y)) == want && isNilExpr(be.X))
		}
	}
	return false
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block always transfers control out:
// its last statement is a return, a branch, or a panic call.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
