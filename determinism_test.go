package fdw_test

// Determinism under concurrency: the parallel linalg kernels and the
// covariance-factor cache must leave every scenario bit-identical by
// seed, whatever GOMAXPROCS says. This is the repo-level guard for the
// contract the kernel-level tests assert element by element.

import (
	"math"
	"runtime"
	"testing"

	"fdw"
)

func sameBits(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: sample %d differs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func TestScenarioDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const (
		seed     = 42
		targetMw = 8.1
		stations = 3
	)
	old := runtime.GOMAXPROCS(1)
	single, err := fdw.GenerateScenario(seed, targetMw, stations)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	// The second run also exercises the warm covariance-cache path: the
	// first run left the factor in the shared cache.
	multi, err := fdw.GenerateScenario(seed, targetMw, stations)
	if err != nil {
		t.Fatal(err)
	}

	if single.Rupture.Hypocenter != multi.Rupture.Hypocenter {
		t.Fatalf("hypocenter %d vs %d", single.Rupture.Hypocenter, multi.Rupture.Hypocenter)
	}
	if single.Rupture.ActualMw != multi.Rupture.ActualMw {
		t.Fatalf("Mw %v vs %v", single.Rupture.ActualMw, multi.Rupture.ActualMw)
	}
	sameBits(t, "slip", single.Rupture.SlipM, multi.Rupture.SlipM)
	sameBits(t, "onsets", single.Rupture.OnsetS, multi.Rupture.OnsetS)
	sameBits(t, "rise", single.Rupture.RiseS, multi.Rupture.RiseS)
	if len(single.Waveforms) != len(multi.Waveforms) {
		t.Fatalf("waveform count %d vs %d", len(single.Waveforms), len(multi.Waveforms))
	}
	for i := range single.Waveforms {
		for c := 0; c < 3; c++ {
			sameBits(t, "waveform "+single.Waveforms[i].Station,
				single.Waveforms[i].ENZ[c], multi.Waveforms[i].ENZ[c])
		}
	}
}
