// Package atomicwrite_bad creates output files in place: every call
// here can leave a truncated artifact under its real name if the
// process dies mid-write.
package atomicwrite_bad

import "os"

// Emit truncates the destination before a single byte is written.
func Emit(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Stream hands back an in-place handle; a kill mid-stream corrupts it.
func Stream(path string) (*os.File, error) {
	return os.Create(path)
}

// Append opens the destination for in-place mutation.
func Append(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
}

// Scratch leaks an orphan temp file on any failure path that forgets
// to remove it.
func Scratch(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "scratch-*")
}
