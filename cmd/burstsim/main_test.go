package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	batchCSV = "batch,submit,start,end\nb1,0,100,4000\n"
	jobsCSV  = "job,class,submit,start,end\n" +
		"1.0,waveform,0,1800,2800\n" +
		"1.1,waveform,30,2000,3000\n" +
		"1.2,waveform,60,3000,4000\n" +
		"1.3,rupture,0,100,250\n"
)

func writeTraces(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	bp := filepath.Join(dir, "batch.csv")
	jp := filepath.Join(dir, "jobs.csv")
	if err := os.WriteFile(bp, []byte(batchCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jp, []byte(jobsCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return bp, jp
}

func TestBurstsimControl(t *testing.T) {
	bp, jp := writeTraces(t)
	if err := run(bp, jp, 0, 34, 0, 0, 0.0017, 0.3, ""); err != nil {
		t.Fatal(err)
	}
}

func TestBurstsimAllPoliciesAndSeries(t *testing.T) {
	bp, jp := writeTraces(t)
	series := filepath.Join(t.TempDir(), "series.csv")
	if err := run(bp, jp, 5, 34, 20, 10, 0.0017, 0.5, series); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(series)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "second,instant_jpm") {
		t.Fatal("series CSV malformed")
	}
}

func TestBurstsimMissingFiles(t *testing.T) {
	bp, _ := writeTraces(t)
	if err := run(bp, "/nonexistent/jobs.csv", 0, 34, 0, 0, 0.0017, 0.3, ""); err == nil {
		t.Fatal("missing jobs file accepted")
	}
	if err := run("/nonexistent/batch.csv", bp, 0, 34, 0, 0, 0.0017, 0.3, ""); err == nil {
		t.Fatal("missing batch file accepted")
	}
}

func TestBurstsimRejectsCorruptTrace(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,real\ntrace,file,x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, jp := writeTraces(t)
	if err := run(bad, jp, 0, 34, 0, 0, 0.0017, 0.3, ""); err == nil {
		t.Fatal("corrupt batch trace accepted")
	}
}
