package fakequakes

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fdw/internal/geom"
	"fdw/internal/mseed"
)

// GFConfig parameterizes Green's-function synthesis (Phase B).
type GFConfig struct {
	Dt       float64 // sample interval (s); GNSS high-rate is 1 Hz
	Nsamples int     // samples per kernel
	VpKmS    float64 // P-wave speed
	VsKmS    float64 // S-wave speed
}

// DefaultGFConfig matches the paper's GNSS use case: 1 Hz, 512 s records.
func DefaultGFConfig() GFConfig {
	return GFConfig{Dt: 1.0, Nsamples: 512, VpKmS: 6.8, VsKmS: 3.9}
}

// Validate reports configuration errors.
func (c GFConfig) Validate() error {
	if c.Dt <= 0 {
		return fmt.Errorf("fakequakes: non-positive Dt %v", c.Dt)
	}
	if c.Nsamples <= 0 {
		return fmt.Errorf("fakequakes: non-positive Nsamples %d", c.Nsamples)
	}
	if c.VsKmS <= 0 || c.VpKmS <= c.VsKmS {
		return fmt.Errorf("fakequakes: implausible velocities vp=%v vs=%v", c.VpKmS, c.VsKmS)
	}
	return nil
}

// Components of GNSS displacement, in MudPy/SEED channel order.
var Components = [3]string{"LXE", "LXN", "LXZ"}

// GreensFunctions holds unit-slip displacement kernels for every
// (station, subfault, component) triple: the Phase B ".mseed" product.
// Kernel[s][f][c] is a time series of Nsamples displacement values (m)
// for 1 m of slip on subfault f observed at station s, component c.
type GreensFunctions struct {
	Cfg      GFConfig
	Stations []geom.Station
	NSub     int
	Kernel   [][][3][]float64
}

// ComputeGreens builds simplified layered-half-space kernels: each
// subfault contributes a permanent (static) offset with Okada-style
// 1/r² geometric decay plus a transient arriving at the S travel time
// with 1/r decay — the far-field/near-field structure real GFs have.
// Cost scales with stations × subfaults × samples, which is why the
// paper's B phase "can span multiple hours" with 121 stations.
func ComputeGreens(f *geom.Fault, stations []geom.Station, d *DistanceMatrices, cfg GFConfig) (*GreensFunctions, error) {
	computeGreensCalls.Add(1)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(f.NumSubfaults(), len(stations)); err != nil {
		return nil, err
	}
	n := f.NumSubfaults()
	g := &GreensFunctions{Cfg: cfg, Stations: stations, NSub: n}
	g.Kernel = make([][][3][]float64, len(stations))
	// Stations are independent: fan the outer loop across the cores
	// (this is the per-node parallelism the real phase B gets from MPI).
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for s := range stations {
		wg.Add(1)
		sem <- struct{}{}
		go func(s int) {
			defer func() { <-sem; wg.Done() }()
			g.computeStation(f, d, s)
		}(s)
	}
	wg.Wait()
	return g, nil
}

// computeStation fills the kernels for one station.
func (g *GreensFunctions) computeStation(f *geom.Fault, d *DistanceMatrices, s int) {
	cfg := g.Cfg
	n := g.NSub
	stations := g.Stations
	{
		g.Kernel[s] = make([][3][]float64, n)
		for sf := 0; sf < n; sf++ {
			sub := &f.Subfaults[sf]
			repi := d.Station.At(s, sf)
			rhyp := math.Sqrt(repi*repi + sub.DepthKm*sub.DepthKm)
			// A point-source kernel diverges as r → 0; clamp to the
			// subfault dimension (the finite-source near-field limit).
			if minR := sub.LengthKm; rhyp < minR {
				rhyp = minR
			}
			// Radiation-pattern-like azimuthal weights from geometry.
			az := azimuthDeg(stations[s].Pos, sub.Center)
			rad := radiation(az, sub.StrikeDeg, sub.DipDeg)
			tS := rhyp / cfg.VsKmS

			// Static offsets (m of displacement per m of slip): the
			// far-field Okada scale u ≈ slip·A/(4π r²), with A the
			// subfault area — dm-level offsets at 100 km for Mw 8.
			staticAmp := sub.AreaKm2() / (4 * math.Pi * rhyp * rhyp)
			// Dynamic peak decays as 1/r and is ~2× the static level
			// in the near field.
			dynAmp := 0.0015 * sub.AreaKm2() / rhyp

			for c := 0; c < 3; c++ {
				k := make([]float64, cfg.Nsamples)
				arr := int(tS / cfg.Dt)
				ramp := int(math.Max(2, 4/cfg.Dt)) // ~4 s ramp to the static level
				for t := arr; t < cfg.Nsamples; t++ {
					// Ramp to static offset.
					p := float64(t-arr) / float64(ramp)
					if p > 1 {
						p = 1
					}
					k[t] = staticAmp * rad[c] * p
					// Transient pulse riding on the ramp.
					x := float64(t-arr) * cfg.Dt / 6.0
					k[t] += dynAmp * rad[c] * x * math.Exp(-x)
				}
				g.Kernel[s][sf][c] = k
			}
		}
	}
}

// azimuthDeg returns the azimuth from src toward sta, degrees from north.
func azimuthDeg(sta, src geom.LatLon) float64 {
	const deg = math.Pi / 180
	dLon := (sta.Lon - src.Lon) * deg
	la1 := src.Lat * deg
	la2 := sta.Lat * deg
	y := math.Sin(dLon) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLon)
	az := math.Atan2(y, x) / deg
	if az < 0 {
		az += 360
	}
	return az
}

// radiation returns smooth, bounded per-component weights that depend
// on source-receiver geometry (a stand-in for the full double-couple
// radiation pattern; preserves azimuthal variation without the tensor
// algebra).
func radiation(azDeg, strikeDeg, dipDeg float64) [3]float64 {
	const deg = math.Pi / 180
	phi := (azDeg - strikeDeg) * deg
	delta := dipDeg * deg
	e := 0.6*math.Sin(phi) + 0.25*math.Cos(2*phi)
	n := 0.6*math.Cos(phi) - 0.25*math.Sin(2*phi)
	z := 0.5 + 0.5*math.Sin(delta)*math.Abs(math.Sin(phi))
	return [3]float64{e, n, z}
}

// validate checks the kernel's internal consistency: one entry per
// station, each holding NSub subfaults. A hand-assembled or corrupt
// value (the cache-load failure mode) reports an error here rather
// than panicking deep in an index expression — the linalg convention:
// errors for data-shaped problems, panics only for caller bugs like a
// negative index the API documents as out of contract.
func (g *GreensFunctions) validate() error {
	if g.NSub < 0 {
		return fmt.Errorf("fakequakes: negative subfault count %d", g.NSub)
	}
	if len(g.Kernel) != len(g.Stations) {
		return fmt.Errorf("fakequakes: kernel holds %d stations, station list %d", len(g.Kernel), len(g.Stations))
	}
	for s := range g.Kernel {
		if len(g.Kernel[s]) != g.NSub {
			return fmt.Errorf("fakequakes: station %d kernel holds %d subfaults, want %d", s, len(g.Kernel[s]), g.NSub)
		}
	}
	return nil
}

// ToRecords flattens the kernels for one subfault into mseed records —
// the unit that Phase B ships through the Stash cache. An out-of-range
// subfault or an inconsistent kernel is an error, never a panic; an
// empty station list yields an empty (non-nil-error) record set, the
// valid degenerate case.
func (g *GreensFunctions) ToRecords(subfault int) ([]mseed.Record, error) {
	if subfault < 0 || subfault >= g.NSub {
		return nil, fmt.Errorf("fakequakes: subfault %d out of %d", subfault, g.NSub)
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	recs := make([]mseed.Record, 0, len(g.Stations)*3)
	for s, st := range g.Stations {
		for c, ch := range Components {
			recs = append(recs, mseed.Record{
				Network: "CL",
				Station: st.Name,
				Channel: ch,
				Start:   0,
				Dt:      g.Cfg.Dt,
				Samples: g.Kernel[s][subfault][c],
			})
		}
	}
	return recs, nil
}

// EncodedSizeBytes estimates the total .mseed payload of the full GF
// set; the paper notes compressed GF archives "possibly exceeding 1GB".
// It used to swallow ToRecords errors and return a silently truncated
// total; now a malformed kernel propagates. A GF set with zero
// subfaults or zero stations is a valid empty payload.
func (g *GreensFunctions) EncodedSizeBytes() (int64, error) {
	if err := g.validate(); err != nil {
		return 0, err
	}
	var total int64
	for sf := 0; sf < g.NSub; sf++ {
		recs, err := g.ToRecords(sf)
		if err != nil {
			return 0, err
		}
		total += mseed.EncodedSize(recs)
	}
	return total, nil
}
