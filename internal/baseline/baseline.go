// Package baseline models the paper's single-machine comparator: an
// automated FakeQuakes run on one AWS instance (4× Intel Xeon Platinum
// 8175M, the machine of §3.1) processing the same workload serially,
// with MudPy's built-in multiprocessing across the local cores. The
// §6 headline — a 56.8% runtime decrease for 1,024 full-input
// waveforms on FDW versus a single host — is measured against this.
//
// Per-unit costs reuse the AWS measurements the bursting simulator is
// built on: a rupture work unit (16 ruptures) takes 287 s and a
// waveform work unit (2 waveforms) 144 s on this machine; the
// Green's-function stage is serial and scales with the station list.
package baseline

import (
	"fmt"

	"fdw/internal/core"
)

// Machine describes the single host.
type Machine struct {
	Name  string
	Cores int // parallel width for the embarrassingly parallel stages
	// Per-work-unit times (seconds) measured on this machine.
	RuptureUnitSecs  float64 // one phase A unit (RupturesPerJob ruptures)
	WaveformUnitSecs float64 // one phase C unit (WaveformsPerJob waveforms)
	GFPerStationSecs float64 // serial Green's-function cost per station
	MatrixSecs       float64 // distance-matrix generation when not recycled
}

// AWSInstance returns the paper's baseline machine.
func AWSInstance() Machine {
	return Machine{
		Name:             "aws-4xXeon8175M",
		Cores:            4,
		RuptureUnitSecs:  287,
		WaveformUnitSecs: 144,
		GFPerStationSecs: 60,
		MatrixSecs:       1200,
	}
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	if m.Cores <= 0 {
		return fmt.Errorf("baseline: non-positive core count")
	}
	if m.RuptureUnitSecs <= 0 || m.WaveformUnitSecs <= 0 || m.GFPerStationSecs <= 0 {
		return fmt.Errorf("baseline: non-positive unit times")
	}
	return nil
}

// Breakdown details a baseline run's stage times (seconds).
type Breakdown struct {
	MatrixSecs   float64
	RuptureSecs  float64
	GFSecs       float64
	WaveformSecs float64
}

// TotalSecs sums the stages (they run sequentially on one host).
func (b Breakdown) TotalSecs() float64 {
	return b.MatrixSecs + b.RuptureSecs + b.GFSecs + b.WaveformSecs
}

// TotalHours is TotalSecs in hours.
func (b Breakdown) TotalHours() float64 { return b.TotalSecs() / 3600 }

// Run estimates the wall time to produce cfg's workload on m. The
// rupture and waveform stages parallelize across the machine's cores;
// the Green's-function stage is serial (it is in MudPy, which is why
// the paper calls it out as spanning hours).
func Run(m Machine, cfg core.Config) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Breakdown{}, err
	}
	_, aUnits, _, cUnits, _ := cfg.JobCounts()
	var b Breakdown
	if !cfg.RecycleMatrices {
		b.MatrixSecs = m.MatrixSecs
	}
	cores := float64(m.Cores)
	b.RuptureSecs = float64(aUnits) * m.RuptureUnitSecs / cores
	b.GFSecs = float64(cfg.Stations) * m.GFPerStationSecs
	b.WaveformSecs = float64(cUnits) * m.WaveformUnitSecs / cores
	return b, nil
}
