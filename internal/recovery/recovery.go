// Package recovery is the deterministic, sim-clock-native adaptive
// recovery layer for the OSPool/HTCondor stack — the defensive
// counterpart of internal/faults. A Policy bundles four individually
// toggleable mechanisms, each a production-HTCondor recovery shape the
// fault engine's pathologies exist to exercise:
//
//  1. exponential backoff with deterministic jitter on DAGMan RETRY
//     resubmissions (instead of the classic same-tick requeue), via
//     dagman.Executor.RetryDelay;
//  2. per-site circuit breakers over execution/transfer failure
//     history: an open breaker vetoes matchmaking at that site
//     (ospool.Pool's RecoveryHook seam) and half-open probing after a
//     cooldown decides whether to close it again;
//  3. per-job wall-clock deadlines (HTCondor periodic_remove analogue)
//     that evict attempts exceeding a multiple of expected runtime, so
//     a black-hole slot cannot absorb a node's whole RETRY budget;
//  4. straggler hedging: when an attempt runs past a quantile of its
//     completed siblings' runtimes, a speculative clone is submitted
//     and the first finisher wins, the loser being cancelled.
//
// Determinism: the policy owns a private sim.RNG stream split from the
// kernel's root (like internal/faults), so attaching a policy never
// perturbs the pool's or workflow's variate sequences, and a fully
// disabled policy is byte-identical to no policy at all. All state is
// keyed by pointer or site name and mutated only inside kernel events,
// so runs are reproducible for any GOMAXPROCS or -j fan-out.
package recovery

import (
	"fmt"
	"sort"

	"fdw/internal/dagman"
	"fdw/internal/htcondor"
	"fdw/internal/obs"
	"fdw/internal/ospool"
	"fdw/internal/sim"
)

// BackoffConfig shapes retry backoff for DAGMan node resubmissions.
type BackoffConfig struct {
	Enabled     bool
	BaseSeconds float64 // delay before the first retry
	Factor      float64 // multiplier per additional failed attempt
	MaxSeconds  float64 // delay ceiling
	Jitter      float64 // ± fractional jitter, in [0,1): delay *= 1 + Jitter*U(-1,1)
}

// BreakerConfig shapes the per-site circuit breakers.
type BreakerConfig struct {
	Enabled          bool
	FailureThreshold int     // consecutive failures that open the breaker
	CooldownSeconds  float64 // open duration before half-open probing
	HalfOpenProbes   int     // attempts admitted while half-open
}

// DeadlineConfig shapes per-job wall-clock deadlines.
type DeadlineConfig struct {
	Enabled      bool
	Multiple     float64 // budget = Multiple × BaseExecSeconds + GraceSeconds
	GraceSeconds float64 // absolute slack for transfers and slow slots
}

// HedgeConfig shapes straggler hedging.
type HedgeConfig struct {
	Enabled     bool
	Quantile    float64 // sibling-runtime quantile the threshold grows from, in (0,1]
	Multiplier  float64 // threshold = Multiplier × quantile runtime
	MinSiblings int     // completed siblings needed before hedging arms
}

// Config bundles the four mechanisms. The zero value disables all of
// them; an attached all-disabled policy leaves every simulation
// byte-identical to an unattached one.
type Config struct {
	Backoff  BackoffConfig
	Breaker  BreakerConfig
	Deadline DeadlineConfig
	Hedge    HedgeConfig
}

// DefaultConfig enables all four mechanisms with settings tuned for
// the standard chaos plans at OSPool scale: backoff spreads retry storms
// without stalling short DAGs, breakers trip on sustained single-site
// failure (a black hole) but tolerate pool-wide probabilistic bursts,
// deadlines give slow sites generous slack, and hedging only chases
// clear stragglers.
func DefaultConfig() Config {
	return Config{
		Backoff: BackoffConfig{
			Enabled:     true,
			BaseSeconds: 30,
			Factor:      2,
			MaxSeconds:  600,
			Jitter:      0.25,
		},
		Breaker: BreakerConfig{
			Enabled:          true,
			FailureThreshold: 4,
			CooldownSeconds:  1800,
			HalfOpenProbes:   2,
		},
		Deadline: DeadlineConfig{
			Enabled:      true,
			Multiple:     6,
			GraceSeconds: 900,
		},
		Hedge: HedgeConfig{
			Enabled:     true,
			Quantile:    0.75,
			Multiplier:  3,
			MinSiblings: 4,
		},
	}
}

// Validate reports configuration errors. Parameters of disabled
// mechanisms are not checked, so the zero Config is always valid.
func (c Config) Validate() error {
	if b := c.Backoff; b.Enabled {
		if b.BaseSeconds <= 0 {
			return fmt.Errorf("recovery: backoff base %v must be positive", b.BaseSeconds)
		}
		if b.Factor < 1 {
			return fmt.Errorf("recovery: backoff factor %v must be >= 1", b.Factor)
		}
		if b.MaxSeconds < b.BaseSeconds {
			return fmt.Errorf("recovery: backoff max %v below base %v", b.MaxSeconds, b.BaseSeconds)
		}
		if b.Jitter < 0 || b.Jitter >= 1 {
			return fmt.Errorf("recovery: backoff jitter %v outside [0,1)", b.Jitter)
		}
	}
	if b := c.Breaker; b.Enabled {
		if b.FailureThreshold <= 0 {
			return fmt.Errorf("recovery: breaker threshold %d must be positive", b.FailureThreshold)
		}
		if b.CooldownSeconds <= 0 {
			return fmt.Errorf("recovery: breaker cooldown %v must be positive", b.CooldownSeconds)
		}
		if b.HalfOpenProbes <= 0 {
			return fmt.Errorf("recovery: breaker probes %d must be positive", b.HalfOpenProbes)
		}
	}
	if d := c.Deadline; d.Enabled {
		if d.Multiple <= 1 {
			return fmt.Errorf("recovery: deadline multiple %v must exceed 1", d.Multiple)
		}
		if d.GraceSeconds < 0 {
			return fmt.Errorf("recovery: negative deadline grace %v", d.GraceSeconds)
		}
	}
	if h := c.Hedge; h.Enabled {
		if h.Quantile <= 0 || h.Quantile > 1 {
			return fmt.Errorf("recovery: hedge quantile %v outside (0,1]", h.Quantile)
		}
		if h.Multiplier <= 1 {
			return fmt.Errorf("recovery: hedge multiplier %v must exceed 1", h.Multiplier)
		}
		if h.MinSiblings < 2 {
			return fmt.Errorf("recovery: hedge min siblings %d must be >= 2", h.MinSiblings)
		}
	}
	return nil
}

// Enabled reports whether any mechanism is on.
func (c Config) Enabled() bool {
	return c.Backoff.Enabled || c.Breaker.Enabled || c.Deadline.Enabled || c.Hedge.Enabled
}

// Stats are the policy's obs-independent decision counters.
type Stats struct {
	BackoffHolds      int     // node retries delayed by backoff
	BackoffSeconds    float64 // total delay imposed
	BreakerOpens      int
	BreakerHalfOpens  int
	BreakerCloses     int
	DeadlineEvictions int
	HedgesSubmitted   int
	HedgeWins         int // clone finished first with exit 0
	HedgeLosses       int // clone cancelled or failed
	HedgeSubmitErrors int // clone submissions the schedd refused
}

// breakerState is the classic circuit-breaker state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breakerState(%d)", int(s))
	}
}

type breaker struct {
	state       breakerState
	consecutive int      // consecutive failures while closed
	openedAt    sim.Time // when the breaker last opened
	probes      int      // attempts admitted while half-open
}

// Policy binds a validated Config to a kernel and implements the
// ospool.RecoveryHook seam plus the DAGMan RetryDelay hook. One policy
// serves one simulated environment; its RNG stream is split from the
// kernel's root at construction, so creation order relative to other
// Split calls is part of the reproducible setup.
type Policy struct {
	cfg    Config
	kernel *sim.Kernel
	rng    *sim.RNG
	obs    *obs.Registry

	pool     *ospool.Pool
	breakers map[string]*breaker

	hedge hedgeState

	stats Stats
}

// New validates cfg and binds it to k.
func New(k *sim.Kernel, cfg Config) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Policy{
		cfg:      cfg,
		kernel:   k,
		rng:      k.RNG().Split(0x4ec0e4),
		breakers: map[string]*breaker{},
		hedge:    newHedgeState(),
	}, nil
}

// Config returns the policy's configuration.
func (r *Policy) Config() Config { return r.cfg }

// Stats returns the policy's cumulative decision counters.
func (r *Policy) Stats() Stats { return r.stats }

// SetObs attaches a metrics registry; decisions are counted but never
// read back (record-never-decide). nil disables instrumentation.
func (r *Policy) SetObs(o *obs.Registry) { r.obs = o }

// Attach installs the policy into a pool and, when hedging is enabled,
// subscribes to the schedds submitting to it. Call once, before the
// simulation runs.
func (r *Policy) Attach(p *ospool.Pool, schedds ...*htcondor.Schedd) {
	r.pool = p
	p.SetRecovery(r)
	if r.cfg.Hedge.Enabled {
		for _, s := range schedds {
			s := s
			s.Subscribe(func(j *htcondor.Job, ev htcondor.EventType) { r.onJobEvent(s, j, ev) })
		}
	}
}

// AttachExecutor installs the backoff hook on a DAGMan executor. With
// backoff disabled the hook returns 0 and the executor's requeue path
// is byte-identical to having no hook at all.
func (r *Policy) AttachExecutor(e *dagman.Executor) { e.RetryDelay = r.RetryDelay }

// RetryDelay implements the dagman.Executor hook: exponential backoff
// with deterministic jitter from the policy's private stream. attempt
// is the just-failed attempt number (1 for the first failure).
func (r *Policy) RetryDelay(node string, attempt int) sim.Time {
	b := r.cfg.Backoff
	if !b.Enabled {
		return 0
	}
	d := b.BaseSeconds
	for i := 1; i < attempt && d < b.MaxSeconds; i++ {
		d *= b.Factor
	}
	if d > b.MaxSeconds {
		d = b.MaxSeconds
	}
	if b.Jitter > 0 {
		d *= 1 + b.Jitter*r.rng.Uniform(-1, 1)
	}
	if d < 1 {
		d = 1
	}
	r.stats.BackoffHolds++
	r.stats.BackoffSeconds += d
	if r.obs != nil {
		r.obs.Histogram("fdw_recovery_backoff_seconds").Observe(d)
	}
	return sim.Time(d)
}

// transition moves a site's breaker to a new state, updating counters.
func (r *Policy) transition(site string, b *breaker, to breakerState, now sim.Time) {
	if b.state == to {
		return
	}
	b.state = to
	switch to {
	case breakerOpen:
		b.openedAt = now
		b.probes = 0
		r.stats.BreakerOpens++
	case breakerHalfOpen:
		b.probes = 0
		r.stats.BreakerHalfOpens++
	case breakerClosed:
		b.consecutive = 0
		r.stats.BreakerCloses++
	}
	if r.obs != nil {
		r.obs.Counter("fdw_recovery_breaker_transitions_total", "site", site, "to", to.String()).Inc()
		r.obs.Gauge("fdw_recovery_breaker_state", "site", site).Set(float64(to))
	}
}

// VetoMatch implements ospool.RecoveryHook: an open breaker vetoes the
// site until its cooldown elapses, then the breaker goes half-open and
// admits a bounded number of probe attempts.
func (r *Policy) VetoMatch(site string, now sim.Time) bool {
	if !r.cfg.Breaker.Enabled {
		return false
	}
	b := r.breakers[site]
	if b == nil {
		return false
	}
	switch b.state {
	case breakerOpen:
		if float64(now-b.openedAt) < r.cfg.Breaker.CooldownSeconds {
			return true
		}
		r.transition(site, b, breakerHalfOpen, now)
		return false
	case breakerHalfOpen:
		return b.probes >= r.cfg.Breaker.HalfOpenProbes
	default:
		return false
	}
}

// JobDeadlineSeconds implements ospool.RecoveryHook: the wall-clock
// budget for one attempt. Each eviction the job has already suffered
// doubles the budget, so a job can never be starved by its own deadline
// — slow sites and cold transfers eventually fit.
func (r *Policy) JobDeadlineSeconds(j *htcondor.Job, now sim.Time) float64 {
	d := r.cfg.Deadline
	if !d.Enabled {
		return 0
	}
	base := j.BaseExecSeconds
	if base < 1 {
		base = 1
	}
	budget := d.Multiple*base + d.GraceSeconds
	for i := 0; i < j.Evictions && i < 8; i++ {
		budget *= 2
	}
	return budget
}

// AttemptStarted implements ospool.RecoveryHook.
func (r *Policy) AttemptStarted(site string, j *htcondor.Job, now sim.Time) {
	if r.cfg.Breaker.Enabled {
		if b := r.breakers[site]; b != nil && b.state == breakerHalfOpen {
			b.probes++
		}
	}
}

// AttemptEnded implements ospool.RecoveryHook: failure accounting for
// the breakers. Deadline evictions and preemptions are site-neutral
// (a slow slot is not a broken site) and do not move breakers.
func (r *Policy) AttemptEnded(site string, j *htcondor.Job, outcome ospool.AttemptOutcome, ranSeconds float64, now sim.Time) {
	if outcome == ospool.AttemptDeadline {
		r.stats.DeadlineEvictions++
	}
	if !r.cfg.Breaker.Enabled {
		return
	}
	switch outcome {
	case ospool.AttemptOK:
		b := r.breakers[site]
		if b == nil {
			return
		}
		switch b.state {
		case breakerHalfOpen:
			// A probe succeeded: the site has recovered.
			r.transition(site, b, breakerClosed, now)
		case breakerClosed:
			b.consecutive = 0
		}
	case ospool.AttemptFailed:
		b := r.breakers[site]
		if b == nil {
			b = &breaker{}
			r.breakers[site] = b
		}
		switch b.state {
		case breakerHalfOpen:
			// A probe failed: reopen for another cooldown.
			r.transition(site, b, breakerOpen, now)
		case breakerClosed:
			b.consecutive++
			if b.consecutive >= r.cfg.Breaker.FailureThreshold {
				r.transition(site, b, breakerOpen, now)
			}
		case breakerOpen:
			// In-flight attempts finishing after the breaker opened.
		}
	}
}

// OpenBreakers implements ospool.RecoveryHook: the sorted list of sites
// whose breakers are currently open (for horizon-timeout diagnostics).
func (r *Policy) OpenBreakers(now sim.Time) []string {
	var open []string
	for site, b := range r.breakers {
		if b.state == breakerOpen {
			open = append(open, site)
		}
	}
	sort.Strings(open)
	return open
}

// breakerStateOf exposes a site's breaker state to tests.
func (r *Policy) breakerStateOf(site string) breakerState {
	if b := r.breakers[site]; b != nil {
		return b.state
	}
	return breakerClosed
}
