package core

import (
	"fmt"
	"io"

	"fdw/internal/dagman"
	"fdw/internal/htcondor"
	"fdw/internal/obs"
	"fdw/internal/ospool"
	"fdw/internal/sim"
	"fdw/internal/stash"
)

// BuildDAG constructs the FDW workflow graph for cfg:
//
//	[matrices] → phaseA ─┐
//	          └→ phaseB ─┴→ phaseC
//
// Phase A (ruptures) and phase B (Green's functions) both need the
// distance matrices but are mutually independent; phase C (waveforms)
// needs both. With RecycleMatrices the matrix node is pre-marked DONE,
// exactly how a rescue DAG resumes completed work.
func BuildDAG(cfg Config) (*dagman.DAG, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := dagman.NewDAG()
	d.Comments = append(d.Comments,
		fmt.Sprintf("FDW workflow %q: %d waveforms, %d stations", cfg.Name, cfg.Waveforms, cfg.Stations))
	matrix := &dagman.Node{Name: "matrices", SubmitFile: "fdw_matrices.sub", Done: cfg.RecycleMatrices}
	phaseA := &dagman.Node{Name: "phaseA", SubmitFile: "fdw_phase_a.sub", Retry: 2}
	phaseB := &dagman.Node{Name: "phaseB", SubmitFile: "fdw_phase_b.sub", Retry: 2}
	phaseC := &dagman.Node{Name: "phaseC", SubmitFile: "fdw_phase_c.sub", Retry: 2}
	for _, n := range []*dagman.Node{matrix, phaseA, phaseB, phaseC} {
		if err := d.AddNode(n); err != nil {
			return nil, err
		}
	}
	for _, e := range [][2]string{
		{"matrices", "phaseA"}, {"matrices", "phaseB"},
		{"phaseA", "phaseC"}, {"phaseB", "phaseC"},
	} {
		if err := d.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Workflow is one FDW run: a DAGMan executor with its own schedd
// identity attached to a pool.
type Workflow struct {
	Cfg    Config
	Exec   *dagman.Executor
	Schedd *htcondor.Schedd

	kernel *sim.Kernel
	rng    *sim.RNG
}

// NewWorkflow wires an FDW run into the kernel and pool. logW receives
// the HTCondor user log (may be nil). The schedd submission throttle
// mirrors DAGMan's default max-idle behaviour.
func NewWorkflow(cfg Config, k *sim.Kernel, pool *ospool.Pool, logW io.Writer) (*Workflow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d, err := BuildDAG(cfg)
	if err != nil {
		return nil, err
	}
	schedd := htcondor.NewSchedd(cfg.Name, k, htcondor.NewUserLog(logW))
	schedd.MaxIdleSubmit = 1000 // DAGMAN_MAX_JOBS_IDLE default
	schedd.SetObs(pool.Obs())
	pool.AddSchedd(schedd)
	rng := k.RNG().Split(cfg.Seed ^ 0xfd8)
	w := &Workflow{Cfg: cfg, Schedd: schedd, kernel: k, rng: rng}
	factory := func(n *dagman.Node) ([]*htcondor.Job, error) {
		switch n.Name {
		case "matrices":
			return buildJobs(cfg, PhaseMatrix, cfg.User, rng)
		case "phaseA":
			return buildJobs(cfg, PhaseA, cfg.User, rng)
		case "phaseB":
			return buildJobs(cfg, PhaseB, cfg.User, rng)
		case "phaseC":
			return buildJobs(cfg, PhaseC, cfg.User, rng)
		default:
			return nil, fmt.Errorf("core: unexpected DAG node %q", n.Name)
		}
	}
	w.Exec, err = dagman.NewExecutor(cfg.Name, d, k, schedd, factory)
	if err != nil {
		return nil, err
	}
	w.Exec.Obs = pool.Obs()
	return w, nil
}

// Start begins the workflow.
func (w *Workflow) Start() error { return w.Exec.Start() }

// Done reports workflow completion.
func (w *Workflow) Done() bool { return w.Exec.Done() }

// TotalJobs returns the number of OSG jobs this run submits.
func (w *Workflow) TotalJobs() int {
	_, _, _, _, total := w.Cfg.JobCounts()
	return total
}

// RuntimeHours returns DAG wall time in hours.
func (w *Workflow) RuntimeHours() float64 { return w.Exec.RuntimeSeconds() / 3600 }

// ThroughputJPM returns total throughput in jobs/minute (formula (2)'s
// per-run term j/r).
func (w *Workflow) ThroughputJPM() float64 {
	secs := w.Exec.RuntimeSeconds()
	if secs <= 0 {
		return 0
	}
	return float64(w.Schedd.Completed()) / (secs / 60)
}

// Env bundles the shared simulation environment for FDW runs.
type Env struct {
	Kernel *sim.Kernel
	Pool   *ospool.Pool
	Cache  *stash.Cache
	Obs    *obs.Registry // nil when observability is off
}

// NewEnv builds a kernel + OSPool + Stash environment with the given
// seed and pool configuration, without observability.
func NewEnv(seed uint64, poolCfg ospool.Config) (*Env, error) {
	return NewEnvObs(seed, poolCfg, nil)
}

// NewEnvObs is NewEnv with a metrics registry attached to every
// subsystem (pool, schedds, executors, stash). reg may be shared by
// several environments — the experiment harness does this across worker
// goroutines, which keeps counter totals exact but makes no ordering
// promises for spans. reg == nil means no instrumentation.
func NewEnvObs(seed uint64, poolCfg ospool.Config, reg *obs.Registry) (*Env, error) {
	k := sim.NewKernel(seed)
	cache, err := stash.New(stash.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cache.SetObs(reg)
	pool, err := ospool.New(k, poolCfg, cache)
	if err != nil {
		return nil, err
	}
	pool.SetObs(reg)
	return &Env{Kernel: k, Pool: pool, Cache: cache, Obs: reg}, nil
}

// NewMeteredEnv builds an environment with a fresh registry clocked by
// the environment's own kernel — the single-run case (cmd/fdw), where
// every metric timestamp is this simulation's time.
func NewMeteredEnv(seed uint64, poolCfg ospool.Config) (*Env, error) {
	reg := obs.NewRegistry(nil)
	env, err := NewEnvObs(seed, poolCfg, reg)
	if err != nil {
		return nil, err
	}
	reg.SetClock(env.Kernel.Now)
	return env, nil
}

// RunBatch launches the given workflows simultaneously (the paper's
// concurrent-DAGMans setup) and advances the simulation until all of
// them complete or the horizon passes.
func RunBatch(env *Env, workflows []*Workflow, horizon sim.Time) error {
	for _, w := range workflows {
		if err := w.Start(); err != nil {
			return err
		}
	}
	env.Pool.Start()
	allDone := func() bool {
		for _, w := range workflows {
			if !w.Done() {
				return false
			}
		}
		return true
	}
	for !allDone() && env.Kernel.Now() < horizon {
		if !env.Kernel.Step() {
			break
		}
	}
	env.Pool.Stop()
	for _, w := range workflows {
		if err := w.Schedd.Log().Flush(); err != nil {
			return fmt.Errorf("core: flushing %s user log: %w", w.Cfg.Name, err)
		}
	}
	if !allDone() {
		return fmt.Errorf("core: batch not finished by horizon %v", horizon)
	}
	return nil
}
