// Package seamguard_clean shows every guard idiom seamguard accepts,
// plus the field shapes it deliberately leaves alone.
package seamguard_clean

import "fdw/internal/obs"

// DoneHook is an optional completion seam.
type DoneHook interface {
	Done(id int)
}

// Runner carries one hook of each kind.
type Runner struct {
	veto func(id int) bool
	hook DoneHook
	reg  *obs.Registry
}

// SetVeto registers the optional veto.
func (r *Runner) SetVeto(fn func(id int) bool) { r.veto = fn }

// Finish: the plain enclosing guard.
func (r *Runner) Finish(id int) {
	if r.hook != nil {
		r.hook.Done(id)
	}
}

// Vetoed: the short-circuit conjunction.
func (r *Runner) Vetoed(id int) bool {
	return r.veto != nil && r.veto(id)
}

// Maybe: the guard as one conjunct of a larger condition.
func (r *Runner) Maybe(id int, on bool) {
	if on && r.hook != nil {
		r.hook.Done(id)
	}
}

// Record: the else branch of an == nil check.
func (r *Runner) Record() {
	if r.reg == nil {
		return
	}
	r.reg.Counter("runner_done_total").Inc()
}

// Export: the else arm directly.
func (r *Runner) Export(id int) {
	if r.reg == nil {
		// metrics off
	} else {
		r.reg.Gauge("runner_last_id").Set(float64(id))
	}
}

// Async re-guards inside the goroutine, where it counts.
func (r *Runner) Async(id int) {
	go func() {
		if r.hook != nil {
			r.hook.Done(id)
		}
	}()
}

// Task.step is never compared to nil anywhere in this package: it is
// an always-set callback, not a nil-off hook, and calls need no guard.
type Task struct {
	step func()
}

// NewTask always sets step.
func NewTask(step func()) *Task { return &Task{step: step} }

// Run calls the always-set callback bare.
func (t *Task) Run() { t.step() }

// Export2 calls through a registry parameter, not a field: locals and
// parameters are the caller's contract, not a seam.
func Export2(reg *obs.Registry) {
	reg.Counter("export_calls_total").Inc()
}
