// Package obsflow_bad lets instrument readings decide behavior in
// every way the obsflow analyzer must flag.
package obsflow_bad

import "fdw/internal/obs"

// Throttle branches on a counter: metrics deciding, the core contract
// violation.
func Throttle(r *obs.Registry) bool {
	if r.Counter("jobs_submitted").Value() > 100 {
		return true
	}
	return false
}

// Drain uses a histogram count as a loop bound.
func Drain(r *obs.Registry) int {
	n := 0
	for i := uint64(0); i < r.Histogram("latency").Count(); i++ {
		n++
	}
	return n
}

// Capture squirrels a gauge reading into simulation state.
func Capture(r *obs.Registry) float64 {
	depth := r.Gauge("queue_depth").Value()
	return depth * 2
}

// Mode switches on a quantile estimate.
func Mode(r *obs.Registry) string {
	switch {
	case r.Histogram("latency").Quantile(0.5) > 60:
		return "slow"
	default:
		return "fast"
	}
}
