// Package errdrop_clean checks every finishing error on its durable
// paths, and shows the receivers errdrop deliberately ignores.
package errdrop_clean

import (
	"encoding/csv"
	"io"
	"os"
	"strings"

	"fdw/internal/core/atomicfile"
)

// WriteChecked propagates the write and returns the close error.
func WriteChecked(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close()
}

// Atomic uses the streaming idiom: Close returns nothing (the abort
// path is best-effort by design) and the Commit error is returned.
func Atomic(path string, data []byte) error {
	f, err := atomicfile.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Commit()
}

// Rows flushes a csv.Writer (which returns no error — the flush error
// surfaces through Error) on a durable handle.
func Rows(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(f)
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return f.Close()
}

// Load reads: os.Open is not a durable write root, so the deferred
// close on the read handle is fine.
func Load(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Render writes into memory; a strings.Builder is not durable.
func Render(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}
