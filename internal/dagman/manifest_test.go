package dagman

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/sim"
)

// The manifest is the rescue DAG in structured form: a failed run's
// Manifest, applied to a fresh DAG, resumes exactly the non-done nodes
// and converges to the same final states — the JSON counterpart of
// TestRescueRoundTripResumesAndConverges.
func TestManifestRoundTripResumesAndConverges(t *testing.T) {
	mkDAG := func() *DAG {
		d := NewDAG()
		for _, n := range []string{"a", "b"} {
			if err := d.AddNode(&Node{Name: n, SubmitFile: n + ".sub"}); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.AddNode(&Node{Name: "c", SubmitFile: "c.sub"}); err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{"a", "b"} {
			if err := d.AddEdge(p, "c"); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	run := func(d *DAG, exit func(node string) int) (*Executor, []submission) {
		k := sim.NewKernel(1)
		s := htcondor.NewSchedd("dag", k, nil)
		var log []submission
		e, err := NewExecutor("dag", d, k, s, namedFactory(k, &log))
		if err != nil {
			t.Fatal(err)
		}
		perNodeRun(k, s, 1, func(string) sim.Time { return 1 }, exit)
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return e, log
	}

	e1, _ := run(mkDAG(), func(node string) int {
		if node == "b" {
			return 1
		}
		return 0
	})
	if !e1.Done() || !e1.Failed() {
		t.Fatalf("run 1: done=%v failed=%v", e1.Done(), e1.Failed())
	}

	m := e1.Manifest()
	if m.DAG != "dag" || len(m.Nodes) != 3 {
		t.Fatalf("manifest %+v", m)
	}
	if m.DoneCount() != 1 {
		t.Fatalf("done count %d, want 1 (only a finished)", m.DoneCount())
	}

	// JSON round trip.
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("round trip changed the manifest: %+v vs %+v", m, back)
	}

	// Apply to a fresh DAG and rerun with the fault fixed.
	resumed := mkDAG()
	if err := resumed.ApplyManifest(back); err != nil {
		t.Fatal(err)
	}
	e2, log2 := run(resumed, func(string) int { return 0 })
	if !e2.Done() || e2.Failed() {
		t.Fatalf("resumed run: done=%v failed=%v", e2.Done(), e2.Failed())
	}
	resubmitted := map[string]bool{}
	for _, sub := range log2 {
		resubmitted[sub.node] = true
	}
	if resubmitted["a"] {
		t.Fatal("resumed run resubmitted a done node")
	}
	if !resubmitted["b"] || !resubmitted["c"] {
		t.Fatalf("resumed run skipped a pending node: submitted %v", resubmitted)
	}
	e3, _ := run(mkDAG(), func(string) int { return 0 })
	if !reflect.DeepEqual(e2.NodeStates(), e3.NodeStates()) {
		t.Fatalf("resumed states %v != uninterrupted states %v", e2.NodeStates(), e3.NodeStates())
	}
	if e2.Manifest().DoneCount() != 3 {
		t.Fatal("resumed run's manifest not fully done")
	}
}

func TestManifestValidation(t *testing.T) {
	cases := map[string]string{
		"truncated":   `{"format":1,"dag":"x","nodes":[{"na`,
		"bad format":  `{"format":99,"dag":"x","nodes":[]}`,
		"no dag":      `{"format":1,"nodes":[]}`,
		"dup node":    `{"format":1,"dag":"x","nodes":[{"name":"a","done":true},{"name":"a","done":false}]}`,
		"empty name":  `{"format":1,"dag":"x","nodes":[{"name":"","done":true}]}`,
		"not json":    `PARENT a CHILD b`,
		"wrong shape": `[1,2,3]`,
	}
	for name, in := range cases {
		if _, err := ReadManifest(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestApplyManifestUnknownNode(t *testing.T) {
	d := NewDAG()
	if err := d.AddNode(&Node{Name: "a", SubmitFile: "a.sub"}); err != nil {
		t.Fatal(err)
	}
	m := Manifest{Format: ManifestFormat, DAG: "dag", Nodes: []ManifestNode{{Name: "ghost", Done: true}}}
	if err := d.ApplyManifest(m); err == nil {
		t.Fatal("manifest for a different DAG accepted")
	}
	// A manifest that omits a node leaves its flag alone.
	ok := Manifest{Format: ManifestFormat, DAG: "dag", Nodes: []ManifestNode{{Name: "a", Done: true}}}
	if err := d.ApplyManifest(ok); err != nil {
		t.Fatal(err)
	}
	if !d.Nodes["a"].Done {
		t.Fatal("done flag not applied")
	}
}
