package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdw/internal/dagman"
	"fdw/internal/htcondor"
	"fdw/internal/ospool"
	"fdw/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.Waveforms = 0 },
		func(c *Config) { c.Stations = 0 },
		func(c *Config) { c.RupturesPerJob = 0 },
		func(c *Config) { c.WaveformsPerJob = 0 },
		func(c *Config) { c.MinMw = 9.5 },
		func(c *Config) { c.SlipKernel = "fractal" },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestJobCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Waveforms = 16000
	m, a, b, c, total := cfg.JobCounts()
	if m != 0 {
		t.Fatalf("matrix jobs %d with recycling", m)
	}
	if a != 1000 || b != 1 || c != 8000 {
		t.Fatalf("counts a=%d b=%d c=%d", a, b, c)
	}
	if total != 9001 {
		t.Fatalf("total %d, want 9001", total)
	}
	// Paper calibration: jobs ≈ 0.56 × waveforms.
	ratio := float64(total) / 16000
	if ratio < 0.5 || ratio > 0.6 {
		t.Fatalf("jobs/waveforms ratio %v", ratio)
	}
	cfg.RecycleMatrices = false
	m, _, _, _, total2 := cfg.JobCounts()
	if m != 1 || total2 != total+1 {
		t.Fatal("matrix job not added without recycling")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Name = "batch-7"
	cfg.Waveforms = 5120
	cfg.Stations = 2
	cfg.Seed = 99
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ParseConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round trip changed config:\n%+v\n%+v", cfg, got)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := map[string]string{
		"no equals":   "waveforms 100\n",
		"unknown key": "frobnication = 7\n",
		"bad int":     "waveforms = lots\n",
		"bad bool":    "recycle_matrices = perhaps\n",
		"invalid":     "waveforms = -5\n",
	}
	for name, src := range cases {
		if _, err := ParseConfig(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestParseConfigCommentsAndDefaults(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader("# comment\n\nwaveforms = 2000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Waveforms != 2000 {
		t.Fatalf("waveforms %d", cfg.Waveforms)
	}
	if cfg.Stations != 121 { // default preserved
		t.Fatalf("stations %d", cfg.Stations)
	}
}

func TestWorkModelCalibration(t *testing.T) {
	// §5.2.3: waveform jobs with 121 stations take 15–20 min.
	full := WaveformJobSecs(121, 2)
	if full < 15*60 || full > 20*60 {
		t.Fatalf("full-input waveform job %v s, want 900–1200", full)
	}
	// With 2 stations, under a minute.
	small := WaveformJobSecs(2, 2)
	if small >= 60 {
		t.Fatalf("small-input waveform job %v s, want <60", small)
	}
	// Rupture jobs ≈ 2.5 minutes.
	if r := RuptureJobSecs(16); r != 150 {
		t.Fatalf("rupture job %v s, want 150", r)
	}
	// B phase spans multiple hours with the full list.
	if gf := GFJobSecs(121); gf < 2*3600 {
		t.Fatalf("phase B %v s, want multiple hours", gf)
	}
	if gf := GFJobSecs(2); gf > 600 {
		t.Fatalf("phase B small input %v s, want minutes", gf)
	}
}

func TestBuildDAGShape(t *testing.T) {
	d, err := BuildDAG(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 4 {
		t.Fatalf("%d nodes", len(d.Nodes))
	}
	if !d.Nodes["matrices"].Done {
		t.Fatal("recycled matrices node should be DONE")
	}
	c := d.Nodes["phaseC"]
	if len(c.Parents) != 2 {
		t.Fatalf("phaseC parents %v", c.Parents)
	}
	cfg := DefaultConfig()
	cfg.RecycleMatrices = false
	d2, err := BuildDAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Nodes["matrices"].Done {
		t.Fatal("matrix node should run without recycling")
	}
}

func TestBuildJobsPhases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Waveforms = 64
	rng := sim.NewRNG(1)
	for _, tc := range []struct {
		phase Phase
		wantN int
	}{
		{PhaseMatrix, 1},
		{PhaseA, 4},
		{PhaseB, 1},
		{PhaseC, 32},
	} {
		jobs, err := buildJobs(cfg, tc.phase, "u", rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) != tc.wantN {
			t.Fatalf("phase %s: %d jobs, want %d", tc.phase, len(jobs), tc.wantN)
		}
		for _, j := range jobs {
			if j.BaseExecSeconds <= 0 || j.RequestCpus != 4 {
				t.Fatalf("phase %s job malformed: %+v", tc.phase, j)
			}
			if j.InputKey == "" || j.InputBytes <= 0 {
				t.Fatalf("phase %s job lacks transfer model", tc.phase)
			}
		}
	}
	if _, err := buildJobs(cfg, Phase("Z"), "u", rng); err == nil {
		t.Fatal("unknown phase accepted")
	}
}

// smallPool returns a fast pool config for end-to-end tests.
func smallPool() ospool.Config {
	cfg := ospool.DefaultConfig()
	cfg.GlideinRampMean = 120
	return cfg
}

func TestWorkflowEndToEnd(t *testing.T) {
	env, err := NewEnv(1, smallPool())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Waveforms = 256
	cfg.Stations = 2
	cfg.Name = "e2e"
	var logBuf bytes.Buffer
	w, err := NewWorkflow(cfg, env.Kernel, env.Pool, &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunBatch(env, []*Workflow{w}, 48*3600); err != nil {
		t.Fatal(err)
	}
	if !w.Done() {
		t.Fatal("workflow not done")
	}
	_, _, _, _, total := cfg.JobCounts()
	if w.Schedd.Completed() != total {
		t.Fatalf("completed %d, want %d", w.Schedd.Completed(), total)
	}
	if w.RuntimeHours() <= 0 || w.ThroughputJPM() <= 0 {
		t.Fatalf("runtime %v h, throughput %v", w.RuntimeHours(), w.ThroughputJPM())
	}

	// The log must reproduce the same statistics.
	b, err := AnalyzeLog("e2e", &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	if b.CompletedJobs != total {
		t.Fatalf("log says %d completed, want %d", b.CompletedJobs, total)
	}
	if b.ThroughputJPM <= 0 {
		t.Fatal("log throughput non-positive")
	}
}

func TestWorkflowPhaseOrderInLog(t *testing.T) {
	env, err := NewEnv(2, smallPool())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Waveforms = 64
	cfg.Stations = 2
	cfg.Name = "order"
	w, err := NewWorkflow(cfg, env.Kernel, env.Pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	var nodeOrder []string
	w.Exec.OnNodeDone = func(n *dagman.Node) { nodeOrder = append(nodeOrder, n.Name) }
	if err := RunBatch(env, []*Workflow{w}, 48*3600); err != nil {
		t.Fatal(err)
	}
	if len(nodeOrder) != 3 {
		t.Fatalf("node completions %v", nodeOrder)
	}
	if nodeOrder[2] != "phaseC" {
		t.Fatalf("phaseC finished out of order: %v", nodeOrder)
	}
}

func TestAnalyzeEventsEmpty(t *testing.T) {
	if _, err := AnalyzeEvents("x", nil); err == nil {
		t.Fatal("empty events accepted")
	}
	// Submit-only stream has no completions.
	ev := []htcondor.JobEvent{{Type: htcondor.EventSubmit, Cluster: 1, At: 5}}
	if _, err := AnalyzeEvents("x", ev); err == nil {
		t.Fatal("completion-free stream accepted")
	}
}

func TestInstantThroughputSeries(t *testing.T) {
	events := []htcondor.JobEvent{
		{Type: htcondor.EventSubmit, Cluster: 1, Proc: 0, At: 0},
		{Type: htcondor.EventSubmit, Cluster: 1, Proc: 1, At: 0},
		{Type: htcondor.EventExecute, Cluster: 1, Proc: 0, At: 10},
		{Type: htcondor.EventTerminated, Cluster: 1, Proc: 0, At: 60},
		{Type: htcondor.EventExecute, Cluster: 1, Proc: 1, At: 10},
		{Type: htcondor.EventTerminated, Cluster: 1, Proc: 1, At: 120},
	}
	series := InstantThroughputSeries(events, 60)
	if len(series) != 3 {
		t.Fatalf("series %v", series)
	}
	// At t=60s (1 min): 1 job complete → 1 JPM. At t=120s: 2/2min = 1.
	if series[1].V != 1 || series[2].V != 1 {
		t.Fatalf("series %v", series)
	}
	if series[0].V != 0 {
		t.Fatalf("throughput at t=0 should be 0: %v", series[0].V)
	}
}

func TestRunningJobsSeries(t *testing.T) {
	events := []htcondor.JobEvent{
		{Type: htcondor.EventSubmit, Cluster: 1, Proc: 0, At: 0},
		{Type: htcondor.EventExecute, Cluster: 1, Proc: 0, At: 5},
		{Type: htcondor.EventExecute, Cluster: 1, Proc: 1, At: 7},
		{Type: htcondor.EventTerminated, Cluster: 1, Proc: 0, At: 20},
		{Type: htcondor.EventEvicted, Cluster: 1, Proc: 1, At: 25},
	}
	series := RunningJobsSeries(events, 5)
	// t=0:0, t=5:1, t=10:2, t=15:2, t=20:1, t=25:0
	want := []float64{0, 1, 2, 2, 1, 0}
	if len(series) != len(want) {
		t.Fatalf("series %v", series)
	}
	for i, p := range series {
		if p.V != want[i] {
			t.Fatalf("series[%d] = %v, want %v", i, p.V, want[i])
		}
	}
}

func TestSeriesEmptyEvents(t *testing.T) {
	if s := InstantThroughputSeries(nil, 1); s != nil {
		t.Fatal("non-nil series from no events")
	}
	if s := RunningJobsSeries(nil, 1); s != nil {
		t.Fatal("non-nil series from no events")
	}
}

func TestBatchStatsReport(t *testing.T) {
	events := []htcondor.JobEvent{
		{Type: htcondor.EventSubmit, Cluster: 1, Proc: 0, At: 0},
		{Type: htcondor.EventExecute, Cluster: 1, Proc: 0, At: 30},
		{Type: htcondor.EventTerminated, Cluster: 1, Proc: 0, At: 90},
	}
	b, err := AnalyzeEvents("rpt", events)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"batch rpt", "runtime", "throughput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWorkflowSurvivesFaultInjection(t *testing.T) {
	// With per-job failures the DAGMan RETRY + job-level max_retries
	// machinery must still drive the workflow to completion.
	poolCfg := smallPool()
	poolCfg.FailureProb = 0.15
	env, err := NewEnv(13, poolCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Waveforms = 128
	cfg.Stations = 2
	cfg.Name = "faulty"
	w, err := NewWorkflow(cfg, env.Kernel, env.Pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunBatch(env, []*Workflow{w}, 96*3600); err != nil {
		t.Fatal(err)
	}
	if !w.Done() || w.Exec.Failed() {
		t.Fatalf("done=%v failed=%v", w.Done(), w.Exec.Failed())
	}
	retries := 0
	for _, j := range w.Schedd.AllJobs() {
		retries += j.Failures
	}
	if retries == 0 {
		t.Fatal("15% failure rate but no job-level retries recorded")
	}
}

func TestWriteArtifactsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Waveforms = 512
	if err := WriteArtifacts(cfg, dir); err != nil {
		t.Fatal(err)
	}
	// The emitted DAG parses with our DAGMan parser.
	df, err := os.Open(filepath.Join(dir, "fdw.dag"))
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	d, err := dagman.Parse(df)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 4 || !d.Nodes["matrices"].Done {
		t.Fatalf("emitted DAG wrong: %d nodes", len(d.Nodes))
	}
	// Every emitted submit file parses and materializes correct counts.
	wantN := map[string]int{
		"fdw_matrices.sub": 1,
		"fdw_phase_a.sub":  32, // 512/16
		"fdw_phase_b.sub":  1,
		"fdw_phase_c.sub":  256, // 512/2
	}
	for file, n := range wantN {
		sf, err := os.Open(filepath.Join(dir, file))
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := htcondor.ParseSubmit(sf)
		sf.Close()
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if parsed.QueueN != n {
			t.Fatalf("%s queues %d jobs, want %d", file, parsed.QueueN, n)
		}
		jobs, err := parsed.Materialize(1, "u")
		if err != nil {
			t.Fatal(err)
		}
		if jobs[0].BaseExecSeconds <= 0 || jobs[0].RequestCpus != 4 {
			t.Fatalf("%s materialized job malformed: %+v", file, jobs[0])
		}
	}
	// The emitted config parses back to the same values.
	cf, err := os.Open(filepath.Join(dir, "fdw.cfg"))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	got, err := ParseConfig(cf)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("config round trip: %+v vs %+v", got, cfg)
	}
}

func TestWriteArtifactsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Waveforms = 0
	if err := WriteArtifacts(cfg, t.TempDir()); err == nil {
		t.Fatal("invalid config accepted")
	}
}
