package htcondor

import (
	"testing"

	"fdw/internal/sim"
)

// The recovery layer finalizes jobs through three narrow entry points:
// AdoptResult (graft a hedge winner's result onto the original),
// AbortRunning (condor_rm of a running job whose claim was already torn
// down), and Remove extended to staged jobs (a hedge clone cancelled
// before it was ever released into the queue).

func TestAdoptResultIdle(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	j := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	var terminated int
	s.Subscribe(func(_ *Job, ev EventType) {
		if ev == EventTerminated {
			terminated++
		}
	})
	k.At(10, func() {
		if err := s.AdoptResult(j, 0); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if j.Status != Completed || j.ExitCode != 0 || j.EndTime != 10 {
		t.Fatalf("status %v exit %d end %v", j.Status, j.ExitCode, j.EndTime)
	}
	if s.QueueDepth() != 0 || s.Completed() != 1 || !s.Done() {
		t.Fatalf("queue %d completed %d done %v", s.QueueDepth(), s.Completed(), s.Done())
	}
	if terminated != 1 {
		t.Fatalf("listener saw %d terminations, want 1 (adoption must look like a normal finish)", terminated)
	}
}

func TestAdoptResultStaged(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	s.MaxIdleSubmit = 1
	jobs := []*Job{{Owner: "u"}, {Owner: "u"}}
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	if s.StagedCount() != 1 {
		t.Fatalf("staged %d, want 1", s.StagedCount())
	}
	if err := s.AdoptResult(jobs[1], 0); err != nil {
		t.Fatal(err)
	}
	if jobs[1].Status != Completed || s.StagedCount() != 0 {
		t.Fatalf("status %v staged %d", jobs[1].Status, s.StagedCount())
	}
}

func TestAdoptResultRunning(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	j := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRunning(j, "h"); err != nil {
		t.Fatal(err)
	}
	// The pool's CancelClaim has (by contract) already freed the slot.
	if err := s.AdoptResult(j, 0); err != nil {
		t.Fatal(err)
	}
	if j.Status != Completed || s.Completed() != 1 || !s.Done() {
		t.Fatalf("status %v completed %d done %v", j.Status, s.Completed(), s.Done())
	}
}

func TestAdoptResultInvalidStates(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	j := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(j); err != nil {
		t.Fatal(err)
	}
	if err := s.AdoptResult(j, 0); err == nil {
		t.Fatal("adopted a removed job")
	}
	stranger := &Job{Owner: "u", Status: Idle}
	if err := s.AdoptResult(stranger, 0); err == nil {
		t.Fatal("adopted a job the schedd never saw")
	}
}

func TestAbortRunning(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	j := &Job{Owner: "u"}
	if _, err := s.Submit([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if err := s.AbortRunning(j); err == nil {
		t.Fatal("aborted an idle job")
	}
	if err := s.MarkRunning(j, "h"); err != nil {
		t.Fatal(err)
	}
	var aborted int
	s.Subscribe(func(_ *Job, ev EventType) {
		if ev == EventAborted {
			aborted++
		}
	})
	if err := s.AbortRunning(j); err != nil {
		t.Fatal(err)
	}
	if j.Status != Removed || s.RunningCount() != 0 || !s.Done() {
		t.Fatalf("status %v running %d done %v", j.Status, s.RunningCount(), s.Done())
	}
	if aborted != 1 {
		t.Fatalf("listener saw %d aborts, want 1", aborted)
	}
	if err := s.AbortRunning(j); err == nil {
		t.Fatal("double abort accepted")
	}
}

func TestRemoveStagedJob(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSchedd("x", k, nil)
	s.MaxIdleSubmit = 1
	jobs := []*Job{{Owner: "u"}, {Owner: "u"}}
	if _, err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(jobs[1]); err != nil {
		t.Fatal(err)
	}
	if jobs[1].Status != Removed || s.StagedCount() != 0 {
		t.Fatalf("status %v staged %d", jobs[1].Status, s.StagedCount())
	}
	// The other job is still queued; finishing it drains the schedd.
	if err := s.MarkRunning(jobs[0], "h"); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkCompleted(jobs[0], 0); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("schedd not done after staged removal + completion")
	}
}
