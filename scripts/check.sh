#!/bin/sh
# Pre-PR gate (see DESIGN.md §7): formatting and go.mod hygiene, vet,
# fdwlint (determinism & invariant analyzers, DESIGN.md §9), build,
# race-enabled tests, and a one-iteration benchmark smoke pass.
# Run from the repo root, directly or via `make check`. CI runs exactly
# this script (.github/workflows/ci.yml).
set -eu

cd "$(dirname "$0")/.." || exit 1

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: these files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go mod tidy -diff"
go mod tidy -diff

echo "== go vet ./..."
go vet ./...

echo "== fdwlint ./... (determinism & invariant analyzers, DESIGN.md §9)"
go run ./cmd/fdwlint ./...

# shellcheck is not part of the Go toolchain, so this stage is gated
# on availability to keep the local gate self-contained; the CI lint
# job runs it unconditionally, so script regressions cannot merge.
if command -v shellcheck >/dev/null 2>&1; then
	echo "== shellcheck scripts/*.sh"
	shellcheck scripts/*.sh
else
	echo "== shellcheck not installed; skipping (CI lint job enforces it)"
fi

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# -short keeps the smoke to the 10k/100k pool configurations; the
# 1M-job ones take tens of seconds and belong to the advisory bench
# job (scripts/benchdiff.sh against BENCH_pool.json). The status check
# is explicit — not left to set -e — so the stage keeps failing the
# gate even if its output is ever piped (POSIX sh has no pipefail and
# set -e only sees the last command of a pipeline) or if stages are
# appended after it.
echo "== bench smoke (-benchtime 1x -short)"
if ! go test -run '^$' -bench . -benchtime 1x -short .; then
	echo "check: bench smoke FAILED" >&2
	exit 1
fi

echo "check: OK"
