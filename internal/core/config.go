// Package core implements FDW — the FakeQuakes DAGMan Workflow, the
// paper's primary contribution. It turns a simulation request
// ("generate W waveforms for this station list") into a three-phase
// DAGMan workflow (A: ruptures, B: Green's functions, C: waveforms),
// submits it to a (simulated) OSPool through HTCondor, recycles the
// expensive distance matrices, and post-processes the HTCondor user
// logs into the runtime/wait/throughput statistics the paper reports.
package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Config mirrors FDW's user-edited configuration file: the simulation
// parameters a researcher sets before running the workflow script.
type Config struct {
	Name string // batch name; also the DAGMan identity on the pool
	// User is the OSG account the jobs run under — the negotiator's
	// fair-share key. Concurrent DAGMans launched by one researcher
	// share a user, so they compete within one priority rather than
	// being equalized against each other (the paper's §4.2 setup).
	User      string
	Waveforms int // requested number of synthetic waveforms
	Stations  int // GNSS station list length (2 = small Chilean input, 121 = full)

	// Fan-out granularity (work per OSG job).
	RupturesPerJob  int // phase A
	WaveformsPerJob int // phase C

	// RecycleMatrices indicates the two .npy distance matrices are
	// already available; otherwise a single extra job generates them.
	RecycleMatrices bool

	// Magnitude range and slip-correlation kernel for FakeQuakes.
	MinMw, MaxMw float64
	SlipKernel   string

	Seed uint64
}

// DefaultConfig returns the paper's experimental setup: full Chilean
// input, MudPy default magnitudes, matrices recycled, 16 ruptures and
// 2 waveforms per job (the calibrated fan-out; see DESIGN.md §5).
func DefaultConfig() Config {
	return Config{
		Name:            "fdw",
		User:            "fdwuser",
		Waveforms:       1024,
		Stations:        121,
		RupturesPerJob:  16,
		WaveformsPerJob: 2,
		RecycleMatrices: true,
		MinMw:           7.8,
		MaxMw:           9.2,
		SlipKernel:      "vonKarman",
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("core: empty workflow name")
	}
	if c.User == "" {
		return fmt.Errorf("core: empty user")
	}
	if c.Waveforms <= 0 {
		return fmt.Errorf("core: non-positive waveform count %d", c.Waveforms)
	}
	if c.Stations <= 0 {
		return fmt.Errorf("core: non-positive station count %d", c.Stations)
	}
	if c.RupturesPerJob <= 0 || c.WaveformsPerJob <= 0 {
		return fmt.Errorf("core: non-positive fan-out (%d ruptures/job, %d waveforms/job)",
			c.RupturesPerJob, c.WaveformsPerJob)
	}
	if c.MinMw >= c.MaxMw {
		return fmt.Errorf("core: magnitude range [%v, %v] is empty", c.MinMw, c.MaxMw)
	}
	switch c.SlipKernel {
	case "exponential", "gaussian", "vonKarman":
	default:
		return fmt.Errorf("core: unknown slip kernel %q", c.SlipKernel)
	}
	return nil
}

// JobCounts returns the number of OSG jobs each phase contributes.
func (c Config) JobCounts() (matrix, phaseA, phaseB, phaseC, total int) {
	if !c.RecycleMatrices {
		matrix = 1
	}
	phaseA = (c.Waveforms + c.RupturesPerJob - 1) / c.RupturesPerJob
	phaseB = 1
	phaseC = (c.Waveforms + c.WaveformsPerJob - 1) / c.WaveformsPerJob
	total = matrix + phaseA + phaseB + phaseC
	return
}

// ParseConfig reads FDW's key = value configuration-file syntax
// (comments with '#', case-insensitive keys).
func ParseConfig(r io.Reader) (Config, error) {
	cfg := DefaultConfig()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return cfg, fmt.Errorf("core: config line %d: expected key = value", lineNo)
		}
		key := strings.ToLower(strings.TrimSpace(line[:eq]))
		val := strings.TrimSpace(line[eq+1:])
		bad := func(err error) error {
			return fmt.Errorf("core: config line %d: bad %s %q: %v", lineNo, key, val, err)
		}
		var err error
		switch key {
		case "name":
			cfg.Name = val
		case "user":
			cfg.User = val
		case "waveforms", "nwaveforms", "nruptures":
			cfg.Waveforms, err = strconv.Atoi(val)
		case "stations", "nstations":
			cfg.Stations, err = strconv.Atoi(val)
		case "ruptures_per_job":
			cfg.RupturesPerJob, err = strconv.Atoi(val)
		case "waveforms_per_job":
			cfg.WaveformsPerJob, err = strconv.Atoi(val)
		case "recycle_matrices":
			cfg.RecycleMatrices, err = strconv.ParseBool(val)
		case "min_mw":
			cfg.MinMw, err = strconv.ParseFloat(val, 64)
		case "max_mw":
			cfg.MaxMw, err = strconv.ParseFloat(val, 64)
		case "slip_kernel":
			cfg.SlipKernel = val
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			return cfg, fmt.Errorf("core: config line %d: unknown key %q", lineNo, key)
		}
		if err != nil {
			return cfg, bad(err)
		}
	}
	if err := sc.Err(); err != nil {
		return cfg, err
	}
	return cfg, cfg.Validate()
}

// WriteConfig renders cfg in the file syntax ParseConfig accepts.
func WriteConfig(w io.Writer, cfg Config) error {
	_, err := fmt.Fprintf(w, `# FDW simulation configuration
name = %s
user = %s
waveforms = %d
stations = %d
ruptures_per_job = %d
waveforms_per_job = %d
recycle_matrices = %t
min_mw = %g
max_mw = %g
slip_kernel = %s
seed = %d
`, cfg.Name, cfg.User, cfg.Waveforms, cfg.Stations, cfg.RupturesPerJob, cfg.WaveformsPerJob,
		cfg.RecycleMatrices, cfg.MinMw, cfg.MaxMw, cfg.SlipKernel, cfg.Seed)
	return err
}
