// Command fdwexp regenerates the paper's evaluation: one subcommand
// per figure plus the §6 headline numbers.
//
// Usage:
//
//	fdwexp [flags] fig1|fig2|fig3|fig4|fig5|fig6|headline|ablate|policy3|elastic|chaos|all
//	fdwexp -shard i/N [-resume] [-cells k] [-out dir] fig2|fig3|fig5|fig6|chaos
//	fdwexp -sched workers=N [-crash-plan name] [-steal=bool] [-hedge] [-resume] [-cells k] [-out dir] fig2|...|schedmatrix
//	fdwexp -merge [-csv dir] [-metrics path] manifest.json...
//	fdwexp -status bundle-dir|manifest.json...
//
// Flags:
//
//	-scale f   workload scale (1.0 = the paper's quantities)
//	-seeds n   repetitions (the paper uses 3)
//	-j n       concurrent simulations (default: all cores; output is
//	           byte-identical for any -j, so -j only changes wall time)
//
// chaos runs the fault-injection sweep as a recovery A/B matrix
// (DESIGN.md §10–11): the Fig. 2 workload under every standard fault
// plan, each cell once with the adaptive recovery layer off and once
// with it on, with termination and job-conservation invariants
// enforced per cell and per-plan makespan / wasted-CPU deltas printed
// at the end.
//
// fig5 runs the bursting sweep uncapped (VDC usage, §5.3.1–5.3.2);
// fig6 reruns it with the paper's 30% bursted-job cap for the cost and
// runtime comparison (§5.3.3–5.3.4).
//
// -shard i/N runs one deterministic slice of a campaign and writes a
// manifest bundle (checkpointed after every cell; -resume picks up an
// interrupted one); -merge verifies a full set of shard bundles and
// reproduces the unsharded report/CSV byte-for-byte (DESIGN.md §13).
//
// -sched workers=N drives a campaign through the fault-tolerant
// scheduler (DESIGN.md §16): N logical workers under cell leases with
// heartbeat deadlines, atomically checkpointed per-worker bundles,
// optional scripted worker faults (-crash-plan), work-stealing
// (-steal, default on) and straggler hedging (-hedge). The merged
// report is byte-identical to the unsharded run under every crash
// plan. The special campaign name schedmatrix runs the scheduler A/B
// matrix: every standard worker plan × {no-steal, steal, steal+hedge}.
//
// -status inventories manifest bundles (shard or scheduler) as JSON:
// per-bundle completion, fingerprint, and sim-clock provenance, plus
// campaign-level coverage rollups; exit 3 when anything is resumable.
//
// Exit codes: 0 success, 1 error, 2 usage, 3 shard incomplete
// (budget hit or merge of an unfinished shard — resume and retry).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fdw"
	"fdw/internal/core/atomicfile"
	"fdw/internal/expt"
	"fdw/internal/faults"
	"fdw/internal/sched"
)

const usageLine = `usage: fdwexp [flags] fig1|fig2|fig3|fig4|fig5|fig6|headline|ablate|policy3|elastic|chaos|all
       fdwexp -shard i/N [-resume] [-cells k] [-out dir] fig2|fig3|fig5|fig6|chaos
       fdwexp -sched workers=N [-crash-plan name] [-steal=bool] [-hedge] [-resume] [-cells k] [-out dir] fig2|fig3|fig5|fig6|chaos|schedmatrix
       fdwexp -merge [-csv dir] [-metrics path] manifest.json...
       fdwexp -status bundle-dir|manifest.json...`

func main() {
	var (
		scale   = flag.Float64("scale", 1.0, "workload scale factor (0,1]")
		seeds   = flag.Int("seeds", 3, "number of repetitions")
		csvDir  = flag.String("csv", "", "also write the figure data as CSV into this directory")
		workers = flag.Int("j", 0, "concurrent simulations (0 = all cores); any value gives byte-identical output")
		metrics = flag.String("metrics", "", "write a JSON metrics snapshot here after the experiments")
		shard   = flag.String("shard", "", "run one shard i/N of a campaign and write its manifest bundle")
		merge   = flag.Bool("merge", false, "merge shard manifest bundles into the unsharded report")
		resume  = flag.Bool("resume", false, "with -shard/-sched: resume existing bundles, rerunning only incomplete cells")
		cells   = flag.Int("cells", 0, "with -shard/-sched: stop after this many cells (exit 3; -resume finishes)")
		outDir  = flag.String("out", ".", "with -shard/-sched: directory for the manifest bundles")
		schedN  = flag.String("sched", "", "run a campaign through the fault-tolerant scheduler with workers=N logical workers")
		plan    = flag.String("crash-plan", "", "with -sched: named scripted worker-fault plan (default none)")
		steal   = flag.Bool("steal", true, "with -sched: let other workers steal cells from expired leases")
		hedge   = flag.Bool("hedge", false, "with -sched: hedge straggler cells with duplicate leases")
		status  = flag.Bool("status", false, "print a JSON status report for manifest bundle dirs/files")
	)
	flag.Parse()
	opt := fdw.DefaultExperimentOptions()
	opt.Scale = *scale
	opt.Out = os.Stdout
	opt.Workers = *workers
	opt.Seeds = nil
	for i := 0; i < *seeds; i++ {
		opt.Seeds = append(opt.Seeds, uint64(11+13*i))
	}
	if *metrics != "" {
		// One registry shared by every simulated environment: counter
		// totals are exact at any -j; report/CSV bytes are unchanged.
		opt.Obs = fdw.NewMetrics(nil)
		fdw.MeterFactorCache(opt.Obs)
	}

	modes := 0
	for _, on := range []bool{*shard != "", *merge, *schedN != "", *status} {
		if on {
			modes++
		}
	}
	var err error
	switch {
	case modes > 1:
		err = usageErrorf("-shard, -merge, -sched, and -status are mutually exclusive")
	case *shard != "":
		if flag.NArg() != 1 {
			err = usageErrorf("-shard needs exactly one campaign argument")
			break
		}
		err = runShardCmd(opt, *shard, flag.Arg(0), *outDir, *cells, *resume)
	case *schedN != "":
		if flag.NArg() != 1 {
			err = usageErrorf("-sched needs exactly one campaign argument")
			break
		}
		err = runSchedCmd(opt, schedOpts{
			spec: *schedN, plan: *plan, steal: *steal, hedge: *hedge,
			dir: *outDir, cells: *cells, resume: *resume,
			csvDir: *csvDir, metricsPath: *metrics,
		}, flag.Arg(0))
	case *merge:
		if flag.NArg() < 1 {
			err = usageErrorf("-merge needs at least one manifest path")
			break
		}
		err = runMergeCmd(opt, *csvDir, *metrics, flag.Args())
	case *status:
		if flag.NArg() < 1 {
			err = usageErrorf("-status needs at least one bundle dir or manifest path")
			break
		}
		err = runStatusCmd(opt, flag.Args())
	default:
		if *resume || *cells != 0 {
			err = usageErrorf("-resume and -cells only apply with -shard or -sched")
			break
		}
		if *plan != "" || *hedge {
			err = usageErrorf("-crash-plan and -hedge only apply with -sched")
			break
		}
		if flag.NArg() != 1 {
			err = usageErrorf("")
			break
		}
		err = dispatch(flag.Arg(0), opt, *csvDir)
		if err == nil && *metrics != "" {
			err = writeMetrics(*metrics, opt.Obs)
		}
	}
	if err != nil {
		if errors.As(err, new(usageError)) {
			if msg := err.Error(); msg != "" {
				fmt.Fprintln(os.Stderr, "fdwexp:", msg)
			}
			fmt.Fprintln(os.Stderr, usageLine)
		} else {
			fmt.Fprintln(os.Stderr, "fdwexp:", err)
		}
		os.Exit(exitCode(err))
	}
}

// usageError marks command-line misuse (exit 2).
type usageError string

func (e usageError) Error() string { return string(e) }

func usageErrorf(format string, args ...any) error {
	return usageError(fmt.Sprintf(format, args...))
}

// exitCode maps an error to the documented process exit code: 2 for
// usage, 3 for an incomplete/resumable shard, 1 otherwise.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.As(err, new(usageError)):
		return 2
	case errors.Is(err, expt.ErrIncomplete):
		return 3
	default:
		return 1
	}
}

// parseShardSpec parses "i/N" (1-based).
func parseShardSpec(s string) (index, total int, err error) {
	if n, err := fmt.Sscanf(s, "%d/%d", &index, &total); err != nil || n != 2 || strings.Count(s, "/") != 1 {
		return 0, 0, usageErrorf("bad -shard %q, want i/N (e.g. 2/4)", s)
	}
	if total < 1 || index < 1 || index > total {
		return 0, 0, usageErrorf("-shard %s out of range", s)
	}
	return index, total, nil
}

// shardBundlePath is the conventional manifest name for a shard.
func shardBundlePath(dir, campaign string, index, total int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.shard%dof%d.json", campaign, index, total))
}

// runShardCmd executes one campaign shard, checkpointing its manifest
// bundle under dir. Incomplete runs surface expt.ErrIncomplete (exit
// 3) with the bundle left resumable on disk.
func runShardCmd(opt fdw.ExperimentOptions, spec, campaign, dir string, maxCells int, resume bool) error {
	index, total, err := parseShardSpec(spec)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := shardBundlePath(dir, campaign, index, total)
	m, err := expt.RunShard(opt, expt.ShardRun{
		Campaign: campaign,
		Index:    index,
		Total:    total,
		Path:     path,
		MaxCells: maxCells,
		Resume:   resume,
	})
	if m != nil {
		fmt.Fprintf(os.Stderr, "fdwexp: shard %d/%d of %s: %d/%d cells done, manifest %s\n",
			index, total, campaign, m.Ledger.DoneCount(), len(m.Ledger.Nodes), path)
	}
	return err
}

// schedOpts carries the -sched flag bundle so runSchedCmd stays
// callable from tests without a ten-argument signature.
type schedOpts struct {
	spec, plan          string
	steal, hedge        bool
	dir                 string
	cells               int
	resume              bool
	csvDir, metricsPath string
}

// parseSchedSpec parses "workers=N" (bare "N" is accepted too).
func parseSchedSpec(s string) (int, error) {
	var n int
	v := strings.TrimPrefix(s, "workers=")
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil || fmt.Sprint(n) != v || n < 1 {
		return 0, usageErrorf("bad -sched %q, want workers=N (N >= 1)", s)
	}
	return n, nil
}

// runSchedCmd drives one campaign through the fault-tolerant
// scheduler (or, for the pseudo-campaign schedmatrix, the full
// plan × policy A/B matrix) and finalizes the merged in-memory ledger
// through the ordinary campaign report path.
func runSchedCmd(opt fdw.ExperimentOptions, so schedOpts, campaign string) error {
	n, err := parseSchedSpec(so.spec)
	if err != nil {
		return err
	}
	wplan, err := faults.WorkerPlanByName(so.plan)
	if err != nil {
		return usageErrorf("%v", err)
	}
	if campaign == "schedmatrix" {
		rows, err := sched.Matrix(opt, "fig2", n, filepath.Join(so.dir, "schedmatrix"))
		if err != nil {
			return err
		}
		if err := writeCSV(so.csvDir, "schedmatrix.csv", func(w io.Writer) error {
			return sched.WriteMatrixCSV(w, rows)
		}); err != nil {
			return err
		}
		if so.metricsPath != "" && opt.Obs != nil {
			return writeMetrics(so.metricsPath, opt.Obs)
		}
		return nil
	}
	h, err := expt.OpenCampaign(campaign, opt)
	if err != nil {
		return err
	}
	res, err := sched.Run(h, sched.Config{
		Workers:  n,
		Steal:    so.steal,
		Hedge:    so.hedge,
		Plan:     wplan,
		Dir:      so.dir,
		MaxCells: so.cells,
		Resume:   so.resume,
		Obs:      opt.Obs,
	})
	if res != nil {
		fmt.Fprintf(os.Stderr, "fdwexp: sched %s: %d workers, plan %s: %d/%d cells acked, %d crashes, %d steals, bundles under %s\n",
			campaign, n, wplan.Name, len(res.Records), len(h.CellIDs()),
			res.Stats.WorkerCrashes, res.Stats.CellsStolen, so.dir)
	}
	if err != nil {
		return err
	}
	mr, err := h.Finalize(nil, res.Records)
	if err != nil {
		return err
	}
	if err := writeCSV(so.csvDir, mr.CSVName, mr.WriteCSV); err != nil {
		return err
	}
	if so.metricsPath != "" && opt.Obs != nil {
		return writeMetrics(so.metricsPath, opt.Obs)
	}
	return nil
}

// runStatusCmd prints the JSON bundle inventory for every argument
// (directories expand to their *.json entries). Unreadable bundles
// exit 1; readable-but-resumable state exits 3.
func runStatusCmd(opt fdw.ExperimentOptions, args []string) error {
	paths, err := expt.StatusPaths(args)
	if err != nil {
		return err
	}
	rep, err := expt.Status(opt, paths)
	if err != nil {
		return err
	}
	if err := expt.WriteStatus(opt.Out, rep); err != nil {
		return err
	}
	if rep.HasErrors() {
		return fmt.Errorf("status: unreadable manifest bundle(s), see report")
	}
	if rep.Resumable() {
		return fmt.Errorf("%w: resumable bundles present", expt.ErrIncomplete)
	}
	return nil
}

// runMergeCmd stitches shard bundles back into the unsharded report
// (stdout), CSV (-csv), and metrics rollup (-metrics).
func runMergeCmd(opt fdw.ExperimentOptions, csvDir, metricsPath string, paths []string) error {
	res, err := expt.MergeManifestFiles(opt, paths)
	if err != nil {
		return err
	}
	if err := writeCSV(csvDir, res.CSVName, res.WriteCSV); err != nil {
		return err
	}
	if metricsPath != "" && res.Metrics != nil {
		return atomicfile.WriteFile(metricsPath, func(w io.Writer) error {
			return fdw.WriteMetricsSnapshot(w, res.Metrics)
		})
	}
	return nil
}

// writeMetrics dumps the shared registry as a JSON snapshot. Like the
// CSVs below it goes through atomicfile: a killed -shard run must
// never leave a partial report next to a valid manifest bundle.
func writeMetrics(path string, reg *fdw.Metrics) error {
	return atomicfile.WriteFile(path, reg.WriteJSON)
}

// writeCSV saves figure data under dir when -csv is set.
func writeCSV(dir, name string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return atomicfile.WriteFile(filepath.Join(dir, name), write)
}

func dispatch(cmd string, opt fdw.ExperimentOptions, csvDir string) error {
	switch cmd {
	case "fig1":
		return runFig1()
	case "fig2":
		rows, err := fdw.Fig2(opt)
		if err != nil {
			return err
		}
		return writeCSV(csvDir, "fig2.csv", func(w io.Writer) error { return expt.WriteFig2CSV(w, rows) })
	case "fig3":
		rows, err := fdw.Fig3(opt)
		if err != nil {
			return err
		}
		return writeCSV(csvDir, "fig3.csv", func(w io.Writer) error { return expt.WriteFig3CSV(w, rows) })
	case "fig4":
		data, err := fdw.Fig4(opt)
		if err != nil {
			return err
		}
		for _, d := range data {
			d := d
			name := fmt.Sprintf("fig4_n%d.csv", d.DAGMans)
			if err := writeCSV(csvDir, name, func(w io.Writer) error { return expt.WriteFig4SeriesCSV(w, d) }); err != nil {
				return err
			}
		}
		return nil
	case "fig5":
		cells, err := fdw.Fig5(opt)
		if err != nil {
			return err
		}
		return writeCSV(csvDir, "fig5.csv", func(w io.Writer) error { return expt.WriteFig5CSV(w, cells) })
	case "fig6":
		cells, err := fdw.Fig6(opt)
		if err != nil {
			return err
		}
		return writeCSV(csvDir, "fig6.csv", func(w io.Writer) error { return expt.WriteFig5CSV(w, cells) })
	case "headline":
		_, err := fdw.Headline(opt)
		return err
	case "ablate":
		if _, err := fdw.AblationRecycling(opt); err != nil {
			return err
		}
		if _, err := fdw.AblationStash(opt); err != nil {
			return err
		}
		if _, err := fdw.AblationFanout(opt); err != nil {
			return err
		}
		_, err := fdw.AblationChurn(opt)
		return err
	case "policy3":
		_, err := fdw.Policy3Sweep(opt)
		return err
	case "elastic":
		_, err := fdw.ElasticComparison(opt)
		return err
	case "chaos":
		rows, err := fdw.Chaos(opt)
		if err != nil {
			return err
		}
		return writeCSV(csvDir, "chaos.csv", func(w io.Writer) error { return expt.WriteChaosCSV(w, rows) })
	case "all":
		for _, c := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "headline", "ablate", "policy3", "elastic"} {
			if err := dispatch(c, opt, csvDir); err != nil {
				return fmt.Errorf("%s: %w", c, err)
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

func runFig1() error {
	prod, err := fdw.Fig1(1, 8.1, 5)
	if err != nil {
		return err
	}
	r := prod.Rupture
	fmt.Printf("Fig. 1 — FakeQuakes data products\n")
	fmt.Printf("rupture %s: target Mw %.2f, realized Mw %.2f, %d subfaults, max slip %.2f m, duration %.0f s\n",
		r.ID, r.TargetMw, r.ActualMw, len(r.Patch), r.MaxSlip(), r.Duration())
	for _, w := range prod.Waveforms {
		fmt.Printf("  station %-5s PGD %.3f m\n", w.Station, w.PGD())
	}
	return nil
}
