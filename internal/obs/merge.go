package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Per-shard metrics rollup: a sharded campaign (internal/expt) runs each
// shard in its own process with its own registry, and the merge step
// combines the per-shard JSON snapshots into one campaign-level view.
// The rollup is an observability artifact, not a determinism contract:
// counters and histogram mass are exact sums, but gauges keep only the
// latest sample and histogram quantiles are re-estimated from the
// merged buckets.

// MergeSnapshots combines snapshots into one rollup:
//
//   - counters add per (name, labels);
//   - gauges keep the sample with the latest At (ties: larger value);
//   - histograms add Count/Sum/buckets per (name, labels), combine
//     Min/Max, and re-estimate P50/P90/P99 from the merged cumulative
//     buckets (bucket-upper-bound estimate, so quantiles are
//     approximate after a merge);
//   - spans concatenate, re-sorted by (start, kind, id);
//   - SimNow is the maximum and SpansDropped the sum.
//
// nil snapshots are skipped; the result is deterministically ordered by
// canonical metric key, so merging the same snapshots always yields the
// same bytes.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{}
	counters := map[string]*CounterSnap{}
	gauges := map[string]*GaugeSnap{}
	hists := map[string]*HistSnap{}
	var order struct{ counters, gauges, hists []string }

	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.SimNow > out.SimNow {
			out.SimNow = s.SimNow
		}
		out.SpansDropped += s.SpansDropped
		out.Spans = append(out.Spans, s.Spans...)
		for _, c := range s.Counters {
			k := mergeKey(c.Name, c.Labels)
			got, ok := counters[k]
			if !ok {
				cc := c
				counters[k] = &cc
				order.counters = append(order.counters, k)
				continue
			}
			got.Value += c.Value
			if c.At > got.At {
				got.At = c.At
			}
		}
		for _, g := range s.Gauges {
			k := mergeKey(g.Name, g.Labels)
			got, ok := gauges[k]
			if !ok {
				gg := g
				gauges[k] = &gg
				order.gauges = append(order.gauges, k)
				continue
			}
			if g.At > got.At || (g.At == got.At && g.Value > got.Value) {
				got.Value, got.At = g.Value, g.At
			}
		}
		for _, h := range s.Histograms {
			k := mergeKey(h.Name, h.Labels)
			got, ok := hists[k]
			if !ok {
				hh := h
				hh.Buckets = append([]BucketSnap(nil), h.Buckets...)
				hists[k] = &hh
				order.hists = append(order.hists, k)
				continue
			}
			mergeHist(got, h)
		}
	}

	sort.Strings(order.counters)
	for _, k := range order.counters {
		out.Counters = append(out.Counters, *counters[k])
	}
	sort.Strings(order.gauges)
	for _, k := range order.gauges {
		out.Gauges = append(out.Gauges, *gauges[k])
	}
	sort.Strings(order.hists)
	for _, k := range order.hists {
		h := hists[k]
		h.P50 = bucketQuantile(h, 0.50)
		h.P90 = bucketQuantile(h, 0.90)
		h.P99 = bucketQuantile(h, 0.99)
		out.Histograms = append(out.Histograms, *h)
	}

	sort.SliceStable(out.Spans, func(a, b int) bool {
		if out.Spans[a].Start != out.Spans[b].Start {
			return out.Spans[a].Start < out.Spans[b].Start
		}
		if out.Spans[a].Kind != out.Spans[b].Kind {
			return out.Spans[a].Kind < out.Spans[b].Kind
		}
		return out.Spans[a].ID < out.Spans[b].ID
	})
	return out
}

// mergeKey is the canonical (name, labels) identity: name plus
// label pairs in sorted-key order.
func mergeKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := name
	for _, k := range keys {
		out += "\x00" + k + "\x01" + labels[k]
	}
	return out
}

// mergeHist folds src into dst: cumulative buckets add per LE bound
// (bounds come from the same registry code, so they line up; a bound
// present on one side only keeps its own count plus the other side's
// cumulative mass below it — exactness only requires identical bound
// sets, which same-binary shards guarantee).
func mergeHist(dst *HistSnap, src HistSnap) {
	if src.Count > 0 && (dst.Count == 0 || src.Min < dst.Min) {
		dst.Min = src.Min
	}
	if src.Count > 0 && (dst.Count == 0 || src.Max > dst.Max) {
		dst.Max = src.Max
	}
	dst.Count += src.Count
	dst.Sum += src.Sum
	if src.At > dst.At {
		dst.At = src.At
	}
	merged := make(map[float64]uint64, len(dst.Buckets)+len(src.Buckets))
	var bounds []float64
	for _, b := range dst.Buckets {
		if _, ok := merged[b.LE]; !ok {
			bounds = append(bounds, b.LE)
		}
		merged[b.LE] += b.Count
	}
	for _, b := range src.Buckets {
		if _, ok := merged[b.LE]; !ok {
			bounds = append(bounds, b.LE)
		}
		merged[b.LE] += b.Count
	}
	sort.Float64s(bounds)
	dst.Buckets = dst.Buckets[:0]
	for _, le := range bounds {
		dst.Buckets = append(dst.Buckets, BucketSnap{LE: le, Count: merged[le]})
	}
}

// bucketQuantile estimates quantile q from merged cumulative buckets:
// the upper bound of the first bucket whose cumulative count reaches
// q·Count, or Max for mass beyond the last finite bucket.
func bucketQuantile(h *HistSnap, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	for _, b := range h.Buckets {
		if float64(b.Count) >= target {
			if b.LE < h.Min {
				return h.Min
			}
			return b.LE
		}
	}
	return h.Max
}

// WriteSnapshotJSON renders a snapshot in the same indented JSON format
// as Registry.WriteJSON, so merged rollups and live dumps are
// interchangeable inputs to ReadSnapshot.
func WriteSnapshotJSON(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
