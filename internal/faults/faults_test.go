package faults

import (
	"strings"
	"testing"

	"fdw/internal/htcondor"
	"fdw/internal/ospool"
	"fdw/internal/sim"
)

func testPoolConfig() ospool.Config {
	cfg := ospool.DefaultConfig()
	cfg.Sites = []ospool.SiteConfig{
		{Name: "a", MaxSlots: 20, Speed: 1, SpeedSD: 0.05, CpusPer: 4, MemoryMB: 16384},
		{Name: "b", MaxSlots: 20, Speed: 1, SpeedSD: 0.05, CpusPer: 4, MemoryMB: 16384},
	}
	cfg.GlideinRampMean = 60
	cfg.GlideinLifetimeMean = 8 * 3600
	return cfg
}

func makeJobs(n int, retries int, execSecs float64) []*htcondor.Job {
	jobs := make([]*htcondor.Job, n)
	for i := range jobs {
		jobs[i] = &htcondor.Job{
			Owner:           "u",
			RequestCpus:     4,
			RequestMemoryMB: 8192,
			BaseExecSeconds: execSecs,
			MaxRetries:      retries,
		}
	}
	return jobs
}

func TestWindowContains(t *testing.T) {
	w := Window{From: 10, Until: 20}
	for tm, want := range map[sim.Time]bool{9: false, 10: true, 15: true, 19.999: true, 20: false} {
		if got := w.Contains(tm); got != want {
			t.Fatalf("Contains(%v) = %v, want %v", tm, got, want)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	bad := map[string]Plan{
		"outage no site":    {SiteOutages: []SiteOutage{{Window: Window{0, 1}}}},
		"outage empty win":  {SiteOutages: []SiteOutage{{Site: "a", Window: Window{5, 5}}}},
		"outage neg win":    {SiteOutages: []SiteOutage{{Site: "a", Window: Window{-1, 5}}}},
		"blackhole no site": {BlackHoles: []BlackHole{{Window: Window{0, 1}}}},
		"burst p=0":         {FailureBursts: []FailureBurst{{Window: Window{0, 1}, Prob: 0}}},
		"burst p>1":         {FailureBursts: []FailureBurst{{Window: Window{0, 1}, Prob: 1.5}}},
		"transfer p<0":      {TransferFaults: []TransferFault{{Window: Window{0, 1}, Prob: -0.1}}},
		"submit p>1":        {SubmitFaults: []SubmitFault{{Window: Window{0, 1}, Prob: 2}}},
	}
	for name, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
		k := sim.NewKernel(1)
		if _, err := New(k, p); err == nil {
			t.Fatalf("%s: New accepted invalid plan", name)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Fatalf("empty plan rejected: %v", err)
	}
	if !(Plan{}).Empty() {
		t.Fatal("zero plan not Empty")
	}
}

func TestStandardPlansValid(t *testing.T) {
	plans := StandardPlans()
	if len(plans) < 5 {
		t.Fatalf("only %d standard plans", len(plans))
	}
	if plans[0].Name != "baseline" || !plans[0].Empty() {
		t.Fatalf("first plan should be the empty baseline, got %q", plans[0].Name)
	}
	seen := map[string]bool{}
	for _, p := range plans {
		if err := p.Validate(); err != nil {
			t.Fatalf("plan %q invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate plan name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

// runWorkload runs n jobs through a pool built on k and returns its
// schedd after the run drains.
func runWorkload(t *testing.T, k *sim.Kernel, attach func(p *ospool.Pool, s *htcondor.Schedd)) *htcondor.Schedd {
	t.Helper()
	p, err := ospool.New(k, testPoolConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	if attach != nil {
		attach(p, s)
	}
	if _, err := s.Submit(makeJobs(30, 0, 300)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAttachDoesNotPerturbBaseline is the determinism contract: a plan
// whose faults never fire (unknown site, so every hook is a pure
// predicate) leaves the run byte-for-byte identical to one where the
// injector was constructed but never attached.
func TestAttachDoesNotPerturbBaseline(t *testing.T) {
	plan := Plan{
		Name:        "phantom",
		SiteOutages: []SiteOutage{{Site: "no-such-site", Window: Window{From: 100, Until: 200}}},
	}
	type outcome struct {
		site string
		exit int
		end  sim.Time
	}
	run := func(attachIt bool) ([]outcome, sim.Time) {
		k := sim.NewKernel(99)
		var out []outcome
		s := runWorkload(t, k, func(p *ospool.Pool, s *htcondor.Schedd) {
			inj, err := New(k, plan)
			if err != nil {
				t.Fatal(err)
			}
			if attachIt {
				inj.Attach(p, s)
			}
		})
		for _, j := range s.AllJobs() {
			out = append(out, outcome{j.Site, j.ExitCode, j.EndTime})
		}
		return out, k.Now()
	}
	withOut, withNow := run(true)
	withoutOut, withoutNow := run(false)
	if withNow != withoutNow {
		t.Fatalf("final time diverged: %v vs %v", withNow, withoutNow)
	}
	for i := range withOut {
		if withOut[i] != withoutOut[i] {
			t.Fatalf("job %d diverged: %+v vs %+v", i, withOut[i], withoutOut[i])
		}
	}
}

func TestSiteOutageDrainsAndRelocates(t *testing.T) {
	// Site "a" goes down 15 min into the run and stays down: jobs that
	// start after the outage begins must all run on "b", and the
	// workload still completes.
	plan := Plan{
		Name:        "outage",
		SiteOutages: []SiteOutage{{Site: "a", Window: Window{From: 900, Until: 48 * 3600}}},
	}
	k := sim.NewKernel(7)
	var inj *Injector
	s := runWorkload(t, k, func(p *ospool.Pool, s *htcondor.Schedd) {
		var err error
		if inj, err = New(k, plan); err != nil {
			t.Fatal(err)
		}
		inj.Attach(p, s)
	})
	for _, j := range s.AllJobs() {
		if j.Status != htcondor.Completed {
			t.Fatalf("job %s in state %v", j.ID(), j.Status)
		}
		if j.StartTime >= 900 && strings.HasSuffix(j.Site, ".a") {
			t.Fatalf("job %s started at %v on down site %s", j.ID(), j.StartTime, j.Site)
		}
	}
}

func TestBlackHoleRecoversViaRetries(t *testing.T) {
	// Site "a" is a black hole for the first two hours. The broken site
	// eats attempts much faster than the healthy one finishes them, so
	// jobs need many requeues — but with job-level retries the workload
	// must converge once the window closes.
	plan := Plan{
		Name:       "bh",
		BlackHoles: []BlackHole{{Site: "a", Window: Window{From: 0, Until: 2 * 3600}}},
	}
	k := sim.NewKernel(8)
	p, err := ospool.New(k, testPoolConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	p.AddSchedd(s)
	inj, err := New(k, plan)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(p, s)
	if _, err := s.Submit(makeJobs(20, 500, 300)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := p.RunUntilDone(48 * 3600); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.AllJobs() {
		if j.Status != htcondor.Completed || j.ExitCode != 0 {
			t.Fatalf("job %s status=%v exit=%d", j.ID(), j.Status, j.ExitCode)
		}
		if strings.HasSuffix(j.Site, ".a") && j.EndTime-sim.Time(j.ExecSeconds()) < 2*3600 {
			t.Fatalf("job %s succeeded on the black hole inside the window", j.ID())
		}
	}
	if _, _, evictions := p.Stats(); evictions == 0 {
		t.Fatal("black hole never cost an attempt")
	}
}

func TestSubmitFaultWindow(t *testing.T) {
	// Prob 1 inside the window makes every submission fail
	// deterministically; outside the window service is normal.
	plan := Plan{
		Name:         "submit",
		SubmitFaults: []SubmitFault{{Window: Window{From: 0, Until: 100}, Prob: 1}},
	}
	k := sim.NewKernel(9)
	s := htcondor.NewSchedd("s", k, nil)
	inj, err := New(k, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Attach only needs a pool for the site hooks; gate schedds directly.
	p, err := ospool.New(k, testPoolConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(p, s)
	if _, err := s.Submit(makeJobs(1, 0, 10)); err == nil {
		t.Fatal("submission inside the fault window accepted")
	}
	var lateErr error
	k.At(150, func() { _, lateErr = s.Submit(makeJobs(1, 0, 10)) })
	k.Run()
	if lateErr != nil {
		t.Fatalf("submission after the fault window failed: %v", lateErr)
	}
}

func TestEmptyPlanAttachIsNoOp(t *testing.T) {
	k := sim.NewKernel(10)
	p, err := ospool.New(k, testPoolConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := htcondor.NewSchedd("s", k, nil)
	inj, err := New(k, Plan{Name: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(p, s)
	if s.SubmitGate != nil {
		t.Fatal("empty plan installed a submit gate")
	}
}
