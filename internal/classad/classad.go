// Package classad implements a miniature ClassAd expression language —
// the attribute/expression system HTCondor uses for matchmaking between
// job requirements and machine offers. It covers the subset FDW's
// submit files need: numeric/string/bool literals, attribute references
// (resolved against a pair of ads, MY./TARGET.-style), arithmetic,
// comparisons, boolean connectives, and three-valued logic with
// UNDEFINED propagation.
package classad

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Value is the result of evaluating an expression: one of
// Undefined, bool, float64, or string.
type Value struct {
	kind kind
	b    bool
	f    float64
	s    string
}

type kind int

const (
	kindUndefined kind = iota
	kindBool
	kindNumber
	kindString
)

// Undefined is the UNDEFINED ClassAd value.
var Undefined = Value{kind: kindUndefined}

// Bool wraps a boolean value.
func Bool(b bool) Value { return Value{kind: kindBool, b: b} }

// Number wraps a numeric value.
func Number(f float64) Value { return Value{kind: kindNumber, f: f} }

// String wraps a string value.
func String(s string) Value { return Value{kind: kindString, s: s} }

// IsUndefined reports whether v is UNDEFINED.
func (v Value) IsUndefined() bool { return v.kind == kindUndefined }

// AsBool returns the boolean interpretation and whether it is defined.
func (v Value) AsBool() (bool, bool) {
	switch v.kind {
	case kindBool:
		return v.b, true
	case kindNumber:
		return v.f != 0, true
	default:
		return false, false
	}
}

// AsNumber returns the numeric interpretation and whether it is defined.
func (v Value) AsNumber() (float64, bool) {
	switch v.kind {
	case kindNumber:
		return v.f, true
	case kindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsString returns the string payload and whether v is a string.
func (v Value) AsString() (string, bool) {
	if v.kind == kindString {
		return v.s, true
	}
	return "", false
}

// String renders the value in ClassAd syntax.
func (v Value) String() string {
	switch v.kind {
	case kindBool:
		if v.b {
			return "true"
		}
		return "false"
	case kindNumber:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case kindString:
		return strconv.Quote(v.s)
	default:
		return "undefined"
	}
}

// Ad is an attribute set (case-insensitive keys, as in HTCondor).
type Ad map[string]Value

// Lookup retrieves attr case-insensitively. An exact-case match wins;
// among case-variant duplicates the lexicographically smallest key is
// chosen, so the result never depends on map iteration order.
func (a Ad) Lookup(attr string) (Value, bool) {
	if v, ok := a[attr]; ok {
		return v, true
	}
	low := strings.ToLower(attr)
	best := ""
	found := false
	for k := range a {
		if strings.ToLower(k) == low && (!found || k < best) {
			best, found = k, true
		}
	}
	if found {
		return a[best], true
	}
	return Undefined, false
}

// Expr is a parsed expression tree.
type Expr interface {
	// Eval resolves the expression against my (the evaluating ad) and
	// target (the ad being matched against); either may be nil.
	Eval(my, target Ad) Value
	String() string
}

// Parse compiles src into an Expr.
func Parse(src string) (Expr, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.typ != tokEOF {
		return nil, fmt.Errorf("classad: trailing input at %q", p.tok.text)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for compile-time constants.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// EvalBool parses and evaluates src, treating UNDEFINED as false —
// HTCondor's matchmaking semantics for Requirements.
func EvalBool(src string, my, target Ad) (bool, error) {
	e, err := Parse(src)
	if err != nil {
		return false, err
	}
	b, ok := e.Eval(my, target).AsBool()
	return b && ok, nil
}

// ---------- lexer ----------

type tokenType int

const (
	tokEOF tokenType = iota
	tokNumber
	tokString
	tokIdent
	tokOp
	tokLParen
	tokRParen
)

type token struct {
	typ  tokenType
	text string
	num  float64
}

type lexer struct {
	src []rune
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src)} }

func (l *lexer) lex() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{typ: tokEOF}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{typ: tokLParen, text: "("}, nil
	case c == ')':
		l.pos++
		return token{typ: tokRParen, text: ")"}, nil
	case c == '"':
		return l.lexString()
	case unicode.IsDigit(c) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1])):
		return l.lexNumber()
	case unicode.IsLetter(c) || c == '_':
		return l.lexIdent()
	default:
		return l.lexOp()
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			sb.WriteRune(l.src[l.pos])
			l.pos++
			continue
		}
		if c == '"' {
			l.pos++
			return token{typ: tokString, text: sb.String()}, nil
		}
		sb.WriteRune(c)
		l.pos++
	}
	return token{}, fmt.Errorf("classad: unterminated string starting at %d", start)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
		l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
		((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
		l.pos++
	}
	text := string(l.src[start:l.pos])
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, fmt.Errorf("classad: bad number %q", text)
	}
	return token{typ: tokNumber, text: text, num: f}, nil
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_' || l.src[l.pos] == '.') {
		l.pos++
	}
	return token{typ: tokIdent, text: string(l.src[start:l.pos])}, nil
}

var twoCharOps = map[string]bool{"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true, "=?": true}

func (l *lexer) lexOp() (token, error) {
	if l.pos+1 < len(l.src) {
		two := string(l.src[l.pos : l.pos+2])
		if twoCharOps[two] {
			l.pos += 2
			return token{typ: tokOp, text: two}, nil
		}
	}
	one := string(l.src[l.pos])
	if strings.ContainsAny(one, "+-*/<>!") {
		l.pos++
		return token{typ: tokOp, text: one}, nil
	}
	return token{}, fmt.Errorf("classad: unexpected character %q", one)
}

// ---------- parser (precedence climbing) ----------

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lex.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.typ == tokOp && p.tok.text == "||" {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binary{"||", left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseCompare()
	if err != nil {
		return nil, err
	}
	for p.tok.typ == tokOp && p.tok.text == "&&" {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseCompare()
		if err != nil {
			return nil, err
		}
		left = &binary{"&&", left, right}
	}
	return left, nil
}

var compareOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseCompare() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for p.tok.typ == tokOp && compareOps[p.tok.text] {
		op := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		left = &binary{op, left, right}
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.typ == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &binary{op, left, right}
	}
	return left, nil
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.typ == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binary{op, left, right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.typ == tokOp && (p.tok.text == "!" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unary{op, operand}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.typ {
	case tokNumber:
		v := p.tok.num
		if err := p.next(); err != nil {
			return nil, err
		}
		return literal{Number(v)}, nil
	case tokString:
		s := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		return literal{String(s)}, nil
	case tokIdent:
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		switch strings.ToLower(name) {
		case "true":
			return literal{Bool(true)}, nil
		case "false":
			return literal{Bool(false)}, nil
		case "undefined":
			return literal{Undefined}, nil
		}
		return &attrRef{name}, nil
	case tokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.typ != tokRParen {
			return nil, fmt.Errorf("classad: expected ')' at %q", p.tok.text)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("classad: unexpected token %q", p.tok.text)
	}
}

// ---------- AST ----------

type literal struct{ v Value }

func (l literal) Eval(_, _ Ad) Value { return l.v }
func (l literal) String() string     { return l.v.String() }

// attrRef resolves MY.x against my, TARGET.x against target, and a bare
// name first against my, then target (HTCondor's matching order).
type attrRef struct{ name string }

func (a *attrRef) Eval(my, target Ad) Value {
	name := a.name
	low := strings.ToLower(name)
	switch {
	case strings.HasPrefix(low, "my."):
		if my == nil {
			return Undefined
		}
		v, _ := my.Lookup(name[3:])
		return v
	case strings.HasPrefix(low, "target."):
		if target == nil {
			return Undefined
		}
		v, _ := target.Lookup(name[7:])
		return v
	}
	if my != nil {
		if v, ok := my.Lookup(name); ok {
			return v
		}
	}
	if target != nil {
		if v, ok := target.Lookup(name); ok {
			return v
		}
	}
	return Undefined
}
func (a *attrRef) String() string { return a.name }

type unary struct {
	op string
	x  Expr
}

func (u *unary) Eval(my, target Ad) Value {
	v := u.x.Eval(my, target)
	switch u.op {
	case "!":
		b, ok := v.AsBool()
		if !ok {
			return Undefined
		}
		return Bool(!b)
	case "-":
		f, ok := v.AsNumber()
		if !ok {
			return Undefined
		}
		return Number(-f)
	}
	return Undefined
}
func (u *unary) String() string { return u.op + u.x.String() }

type binary struct {
	op   string
	l, r Expr
}

func (b *binary) Eval(my, target Ad) Value {
	switch b.op {
	case "&&":
		// Three-valued logic: false && anything == false.
		lv, lok := b.l.Eval(my, target).AsBool()
		if lok && !lv {
			return Bool(false)
		}
		rv, rok := b.r.Eval(my, target).AsBool()
		if rok && !rv {
			return Bool(false)
		}
		if lok && rok {
			return Bool(true)
		}
		return Undefined
	case "||":
		lv, lok := b.l.Eval(my, target).AsBool()
		if lok && lv {
			return Bool(true)
		}
		rv, rok := b.r.Eval(my, target).AsBool()
		if rok && rv {
			return Bool(true)
		}
		if lok && rok {
			return Bool(false)
		}
		return Undefined
	}
	lv := b.l.Eval(my, target)
	rv := b.r.Eval(my, target)
	if lv.IsUndefined() || rv.IsUndefined() {
		return Undefined
	}
	// String comparison when both sides are strings.
	if ls, ok := lv.AsString(); ok {
		if rs, ok2 := rv.AsString(); ok2 {
			switch b.op {
			case "==":
				return Bool(strings.EqualFold(ls, rs))
			case "!=":
				return Bool(!strings.EqualFold(ls, rs))
			case "<":
				return Bool(ls < rs)
			case "<=":
				return Bool(ls <= rs)
			case ">":
				return Bool(ls > rs)
			case ">=":
				return Bool(ls >= rs)
			default:
				return Undefined
			}
		}
	}
	lf, lok := lv.AsNumber()
	rf, rok := rv.AsNumber()
	if !lok || !rok {
		return Undefined
	}
	switch b.op {
	case "+":
		return Number(lf + rf)
	case "-":
		return Number(lf - rf)
	case "*":
		return Number(lf * rf)
	case "/":
		if rf == 0 {
			return Undefined
		}
		return Number(lf / rf)
	case "==":
		return Bool(lf == rf)
	case "!=":
		return Bool(lf != rf)
	case "<":
		return Bool(lf < rf)
	case "<=":
		return Bool(lf <= rf)
	case ">":
		return Bool(lf > rf)
	case ">=":
		return Bool(lf >= rf)
	}
	return Undefined
}
func (b *binary) String() string {
	return "(" + b.l.String() + " " + b.op + " " + b.r.String() + ")"
}
