package obs

import "fdw/internal/sim"

// Span is one job's lifecycle trace: a start time, a sequence of named
// stage events (submit → match → input transfer → execute →
// complete/evict), and a terminal status. Spans are append-only and
// timestamped by the registry's simulation clock unless an explicit
// time is supplied.
type Span struct {
	r    *Registry // nil for spans dropped past the retention limit
	kind string
	id   string

	start  sim.Time
	end    sim.Time
	status string
	ended  bool
	events []SpanEvent
}

// SpanEvent is one stage marker inside a span. Value carries an
// optional stage measurement (e.g. input-transfer seconds); NaN-free
// zero means "no value".
type SpanEvent struct {
	Name  string   `json:"name"`
	At    sim.Time `json:"at"`
	Value float64  `json:"value,omitempty"`
}

// StartSpan opens a span of the given kind and identity, stamped with
// the current simulated time. On a nil registry — or past the span
// retention limit — it returns a no-op span (never nil, so callers
// chain unconditionally); dropped spans are tallied in SpansDropped.
func (r *Registry) StartSpan(kind, id string) *Span {
	if r == nil {
		return &Span{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.spanLimit {
		r.spansDropped++
		return &Span{}
	}
	s := &Span{r: r, kind: kind, id: id, start: r.nowLocked()}
	r.spans = append(r.spans, s)
	return s
}

// Annotate appends a stage event at the current simulated time.
func (s *Span) Annotate(name string) {
	if s == nil || s.r == nil {
		return
	}
	s.r.mu.Lock()
	s.events = append(s.events, SpanEvent{Name: name, At: s.r.nowLocked()})
	s.r.mu.Unlock()
}

// AnnotateAt appends a stage event with an explicit timestamp and
// optional measurement (the transfer model knows stage durations ahead
// of the completion event, so at may lie in the simulated future).
func (s *Span) AnnotateAt(name string, at sim.Time, value float64) {
	if s == nil || s.r == nil {
		return
	}
	s.r.mu.Lock()
	s.events = append(s.events, SpanEvent{Name: name, At: at, Value: value})
	s.r.mu.Unlock()
}

// End closes the span with a terminal status at the current simulated
// time. Ending twice keeps the first closure.
func (s *Span) End(status string) {
	if s == nil || s.r == nil {
		return
	}
	s.r.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = s.r.nowLocked()
		s.status = status
	}
	s.r.mu.Unlock()
}

// Events returns a copy of the span's stage events.
func (s *Span) Events() []SpanEvent {
	if s == nil || s.r == nil {
		return nil
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	out := make([]SpanEvent, len(s.events))
	copy(out, s.events)
	return out
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil || s.r == nil {
		return false
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	return s.ended
}

// Status returns the terminal status ("" while open).
func (s *Span) Status() string {
	if s == nil || s.r == nil {
		return ""
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	return s.status
}

// DurationSeconds returns end-start for ended spans, else 0.
func (s *Span) DurationSeconds() float64 {
	if s == nil || s.r == nil {
		return 0
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if !s.ended {
		return 0
	}
	return float64(s.end - s.start)
}

// SpanCount returns the number of retained spans.
func (r *Registry) SpanCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// SpansDropped returns how many spans were discarded past the limit.
func (r *Registry) SpansDropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spansDropped
}
