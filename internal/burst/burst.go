// Package burst implements the paper's VDC bursting simulator (§3.1):
// it replays the job times of a real DAGMan batch second by second and
// applies OSG-tailored policies that offload jobs to simulated VDC
// cloud resources — Policy 1 (low instant throughput), Policy 2
// (congested queue), Policy 3 (submission gaps). Offloaded jobs
// complete in fixed times (rupture 287 s, waveform 144 s, from AWS
// baseline measurements) and accrue cost at on-demand pricing.
package burst

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"sort"

	"fdw/internal/obs"
	"fdw/internal/stats"
	"fdw/internal/wtrace"
)

// Paper constants (§3.1.1, §4.3).
const (
	// DefaultRuptureVDCSecs is the simulated VDC completion time for a
	// rupture job, measured on the AWS a1-class baseline machine.
	DefaultRuptureVDCSecs = 287
	// DefaultWaveformVDCSecs is the same for a waveform job.
	DefaultWaveformVDCSecs = 144
	// DefaultCostPerMinute is Amazon EC2 on-demand pricing for an
	// a1.xlarge (4 CPUs, 8 GB), USD per minute.
	DefaultCostPerMinute = 0.0017
	// DefaultMaxBurstFraction caps offloading at 30% of the batch.
	DefaultMaxBurstFraction = 0.30
)

// Policy1 addresses low throughput: every ProbeSecs, if instant
// throughput is below ThresholdJPM, burst the last unsubmitted job.
type Policy1 struct {
	ProbeSecs    float64
	ThresholdJPM float64
}

// Policy2 addresses congested queues: jobs idle longer than
// MaxQueueSecs are removed from the OSG queue and bursted. The queue is
// inspected every ProbeSecs ("we regularly analyze submitted OSG
// jobs"); zero means the 60-second default.
type Policy2 struct {
	MaxQueueSecs float64
	ProbeSecs    float64
}

// Policy3 addresses submission gaps: if more than MaxGapSecs have
// passed since the most recent job submission, burst the last
// unsubmitted job (checked every ProbeSecs).
type Policy3 struct {
	MaxGapSecs float64
	ProbeSecs  float64
}

// ElasticPolicy implements the paper's §6 future-work direction: an
// elastic algorithm that scales VDC resources to the throughput
// deficit instead of bursting one job per probe. Each ProbeSecs it
// bursts up to MaxPerProbe jobs, proportionally to how far instant
// throughput sits below TargetJPM — large deficits provision VDC
// aggressively, small ones trickle.
type ElasticPolicy struct {
	TargetJPM   float64
	ProbeSecs   float64
	MaxPerProbe int
}

// Config selects policies and constants for one simulation. Nil
// policies are disabled; all-nil reproduces the control (pure OSG
// replay).
type Config struct {
	P1      *Policy1
	P2      *Policy2
	P3      *Policy3
	Elastic *ElasticPolicy

	RuptureVDCSecs   float64
	WaveformVDCSecs  float64
	CostPerMinute    float64
	MaxBurstFraction float64

	// Obs, if set, receives per-policy burst decisions, VDC occupancy,
	// and accumulated cost. The replay itself never reads it, so results
	// are identical with or without a registry.
	Obs *obs.Registry
}

// DefaultConfig returns the paper's constants with no policies enabled.
func DefaultConfig() Config {
	return Config{
		RuptureVDCSecs:   DefaultRuptureVDCSecs,
		WaveformVDCSecs:  DefaultWaveformVDCSecs,
		CostPerMinute:    DefaultCostPerMinute,
		MaxBurstFraction: DefaultMaxBurstFraction,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.RuptureVDCSecs <= 0 || c.WaveformVDCSecs <= 0 {
		return fmt.Errorf("burst: non-positive VDC completion times")
	}
	if c.CostPerMinute < 0 {
		return fmt.Errorf("burst: negative cost per minute")
	}
	if c.MaxBurstFraction < 0 || c.MaxBurstFraction > 1 {
		return fmt.Errorf("burst: MaxBurstFraction %v outside [0,1]", c.MaxBurstFraction)
	}
	if c.P1 != nil && (c.P1.ProbeSecs <= 0 || c.P1.ThresholdJPM <= 0) {
		return fmt.Errorf("burst: invalid Policy 1 %+v", *c.P1)
	}
	if c.P2 != nil && (c.P2.MaxQueueSecs <= 0 || c.P2.ProbeSecs < 0) {
		return fmt.Errorf("burst: invalid Policy 2 %+v", *c.P2)
	}
	if c.P3 != nil && (c.P3.MaxGapSecs <= 0 || c.P3.ProbeSecs <= 0) {
		return fmt.Errorf("burst: invalid Policy 3 %+v", *c.P3)
	}
	if c.Elastic != nil && (c.Elastic.TargetJPM <= 0 || c.Elastic.ProbeSecs <= 0 || c.Elastic.MaxPerProbe <= 0) {
		return fmt.Errorf("burst: invalid elastic policy %+v", *c.Elastic)
	}
	return nil
}

// Result is one simulation's report (§3.1: "statistics are computed and
// reported in detailed output").
type Result struct {
	Batch    string
	Control  bool // no policies were enabled
	TotalJob int

	RuntimeSecs float64

	// Instant-throughput series statistics (formula (6) and Fig. 5/6).
	AvgInstantJPM float64
	MaxInstantJPM float64
	MinInstantJPM float64
	SDInstantJPM  float64

	BurstedJobs int
	BurstedPct  float64
	VDCMinutes  float64 // simulated VDC compute minutes consumed
	CostUSD     float64 // formula (7)
	// VDCUsagePct is the share of completed jobs that ran on VDC rather
	// than OSG — the paper's "percentage of Cloud/VDC usage compared to
	// OSG" (§5.3.2: up to 85.6% with a 1-second probe).
	VDCUsagePct    float64
	VDCActivePct   float64 // % of runtime seconds with ≥1 VDC job active
	CompletedOSG   int
	CompletedVDC   int
	ThroughputJPM  float64 // total throughput, completions/runtime
	InstantSeries  []float64
	SeriesStepSecs float64
}

type jobState struct {
	rec       wtrace.JobRecord
	submitted bool
	done      bool
	bursted   bool
	vdcLeft   float64 // remaining VDC seconds once bursted
	vdcTotal  float64
}

// Simulate replays the batch under cfg. Jobs of class gf/matrix are
// replayed but never bursted (the B-phase barrier cannot move to VDC —
// its product must land back in the Stash cache either way).
func Simulate(batch wtrace.BatchRecord, jobs []wtrace.JobRecord, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := batch.Validate(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("burst: no jobs in trace")
	}
	states := make([]*jobState, len(jobs))
	finishable := 0
	for i, j := range jobs {
		if j.Submit < batch.Submit {
			return nil, fmt.Errorf("burst: job %s submitted before batch", j.ID)
		}
		states[i] = &jobState{rec: j}
		if j.Finished() {
			finishable++
		}
	}
	if finishable == 0 {
		return nil, fmt.Errorf("burst: trace has no finishable jobs")
	}

	res := &Result{
		Batch:          batch.Name,
		Control:        cfg.P1 == nil && cfg.P2 == nil && cfg.P3 == nil && cfg.Elastic == nil,
		TotalJob:       len(jobs),
		SeriesStepSecs: 1,
		MinInstantJPM:  math.Inf(1),
	}
	maxBurst := int(cfg.MaxBurstFraction * float64(len(jobs)))

	burstDecision := func(policy string) {
		if cfg.Obs != nil {
			cfg.Obs.Counter("fdw_burst_decisions_total", "batch", batch.Name, "policy", policy).Inc()
		}
	}

	vdcSecsFor := func(class wtrace.JobClass) float64 {
		switch class {
		case wtrace.ClassRupture:
			return cfg.RuptureVDCSecs
		case wtrace.ClassWaveform:
			return cfg.WaveformVDCSecs
		default:
			return 0 // not burstable
		}
	}

	// bySubmitAsc is maintained below; burstLastUnsubmitted walks a tail
	// pointer down it to find the job with the latest pending submission
	// time ("the last unsubmitted OSG job for the phase") in amortized
	// O(1) per call.
	var bySubmitAsc []*jobState
	tail := -1        // highest candidate index; set after sorting
	submittedIdx := 0 // everything below this is submitted
	burstLastUnsubmitted := func() *jobState {
		if res.BurstedJobs >= maxBurst {
			return nil
		}
		for tail >= submittedIdx {
			st := bySubmitAsc[tail]
			if st.bursted || st.submitted || st.done || vdcSecsFor(st.rec.Class) == 0 {
				tail--
				continue
			}
			st.bursted = true
			st.vdcTotal = vdcSecsFor(st.rec.Class)
			st.vdcLeft = st.vdcTotal
			res.BurstedJobs++
			tail--
			return st
		}
		return nil
	}

	// burstQueued offloads a specific queued job (Policy 2).
	burstQueued := func(st *jobState) bool {
		if res.BurstedJobs >= maxBurst {
			return false
		}
		if vdcSecsFor(st.rec.Class) == 0 {
			return false
		}
		st.bursted = true
		st.vdcTotal = vdcSecsFor(st.rec.Class)
		st.vdcLeft = st.vdcTotal
		res.BurstedJobs++
		return true
	}

	completed := 0
	lastSubmitSeen := batch.Submit
	var instant []float64
	horizon := batch.End + 24*3600 // safety bound; bursting only shortens runs
	endAt := batch.End

	// Event-ordered views for the per-second loop: jobs by submission
	// and by OSG termination time, plus live queued/VDC sets, so each
	// second costs O(changes) instead of O(jobs).
	bySubmit := make([]*jobState, len(states))
	copy(bySubmit, states)
	sort.Slice(bySubmit, func(i, j int) bool { return bySubmit[i].rec.Submit < bySubmit[j].rec.Submit })
	bySubmitAsc = bySubmit
	tail = len(bySubmit) - 1
	var byEnd []*jobState
	for _, st := range states {
		if st.rec.Finished() {
			byEnd = append(byEnd, st)
		}
	}
	sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].rec.End < byEnd[j].rec.End })
	remaining := len(byEnd) // OSG-finishable jobs not yet done or bursted
	var queued []*jobState  // submitted, waiting to start on OSG
	var vdcActiveJobs []*jobState

	p2Probe := 60.0
	if cfg.P2 != nil && cfg.P2.ProbeSecs > 0 {
		p2Probe = cfg.P2.ProbeSecs
	}

	si, ei := 0, 0
	var t float64
	for t = batch.Submit; t <= horizon; t++ {
		now := t
		elapsedMin := (now - batch.Submit) / 60

		// 1. Mark submissions; track the most recent one (Policy 3).
		for si < len(bySubmit) && bySubmit[si].rec.Submit <= now {
			st := bySubmit[si]
			si++
			submittedIdx = si
			if st.bursted {
				continue
			}
			st.submitted = true
			queued = append(queued, st)
			if st.rec.Submit > lastSubmitSeen {
				lastSubmitSeen = st.rec.Submit
			}
		}

		// 2. OSG completions per the trace.
		for ei < len(byEnd) && byEnd[ei].rec.End <= now {
			st := byEnd[ei]
			ei++
			if st.bursted || st.done {
				continue
			}
			st.done = true
			completed++
			remaining--
			res.CompletedOSG++
		}

		// 3. Advance VDC jobs by one second.
		if len(vdcActiveJobs) > 0 {
			res.VDCActivePct++ // counts seconds; normalized later
			live := vdcActiveJobs[:0]
			for _, st := range vdcActiveJobs {
				st.vdcLeft--
				res.VDCMinutes += 1.0 / 60
				if st.vdcLeft <= 0 {
					st.done = true
					completed++
					res.CompletedVDC++
				} else {
					live = append(live, st)
				}
			}
			vdcActiveJobs = live
		}

		// 4. Policies.
		tick := now - batch.Submit
		if cfg.P1 != nil && tick > 0 && math.Mod(tick, cfg.P1.ProbeSecs) == 0 {
			if stats.InstantThroughput(completed, elapsedMin) < cfg.P1.ThresholdJPM {
				if st := burstLastUnsubmitted(); st != nil {
					burstDecision("p1")
					vdcActiveJobs = append(vdcActiveJobs, st)
					if st.rec.Finished() {
						remaining--
					}
				}
			}
		}
		if cfg.P2 != nil && tick > 0 && math.Mod(tick, p2Probe) == 0 {
			live := queued[:0]
			for _, st := range queued {
				if st.done || st.bursted || (st.rec.Started() && st.rec.Start <= now) {
					continue // left the queue
				}
				if now-st.rec.Submit > cfg.P2.MaxQueueSecs && burstQueued(st) {
					burstDecision("p2")
					vdcActiveJobs = append(vdcActiveJobs, st)
					if st.rec.Finished() {
						remaining--
					}
					continue
				}
				live = append(live, st)
			}
			queued = live
		}
		if cfg.P3 != nil && tick > 0 && math.Mod(tick, cfg.P3.ProbeSecs) == 0 {
			if now-lastSubmitSeen > cfg.P3.MaxGapSecs {
				if st := burstLastUnsubmitted(); st != nil {
					burstDecision("p3")
					vdcActiveJobs = append(vdcActiveJobs, st)
					if st.rec.Finished() {
						remaining--
					}
				}
			}
		}
		if e := cfg.Elastic; e != nil && tick > 0 && math.Mod(tick, e.ProbeSecs) == 0 {
			it := stats.InstantThroughput(completed, elapsedMin)
			if deficit := e.TargetJPM - it; deficit > 0 {
				k := int(math.Ceil(deficit / e.TargetJPM * float64(e.MaxPerProbe)))
				for i := 0; i < k; i++ {
					st := burstLastUnsubmitted()
					if st == nil {
						break
					}
					burstDecision("elastic")
					vdcActiveJobs = append(vdcActiveJobs, st)
					if st.rec.Finished() {
						remaining--
					}
				}
			}
		}

		// 5. Instant throughput sample (formula (5)).
		it := stats.InstantThroughput(completed, elapsedMin)
		instant = append(instant, it)
		if it > res.MaxInstantJPM {
			res.MaxInstantJPM = it
		}
		if it < res.MinInstantJPM {
			res.MinInstantJPM = it
		}

		// 6. Termination: every job that can finish has finished.
		if cfg.Obs != nil {
			cfg.Obs.Gauge("fdw_burst_vdc_active_jobs", "batch", batch.Name).Set(float64(len(vdcActiveJobs)))
		}
		if remaining == 0 && len(vdcActiveJobs) == 0 && si >= len(bySubmit) {
			endAt = now
			break
		}
	}

	res.RuntimeSecs = endAt - batch.Submit
	res.InstantSeries = instant
	res.AvgInstantJPM = stats.AvgInstantThroughput(instant)
	res.SDInstantJPM = stats.SD(instant)
	if math.IsInf(res.MinInstantJPM, 1) {
		res.MinInstantJPM = 0
	}
	if res.RuntimeSecs > 0 {
		res.ThroughputJPM = float64(completed) / (res.RuntimeSecs / 60)
		res.VDCActivePct = res.VDCActivePct / res.RuntimeSecs * 100
	}
	res.BurstedPct = float64(res.BurstedJobs) / float64(len(jobs)) * 100
	if done := res.CompletedOSG + res.CompletedVDC; done > 0 {
		res.VDCUsagePct = float64(res.CompletedVDC) / float64(done) * 100
	}
	res.CostUSD = stats.BurstCost(res.VDCMinutes, cfg.CostPerMinute)
	if cfg.Obs != nil {
		cfg.Obs.Counter("fdw_burst_jobs_total", "batch", batch.Name, "backend", "osg").Add(uint64(res.CompletedOSG))
		cfg.Obs.Counter("fdw_burst_jobs_total", "batch", batch.Name, "backend", "vdc").Add(uint64(res.CompletedVDC))
		cfg.Obs.Gauge("fdw_burst_vdc_minutes", "batch", batch.Name).Set(res.VDCMinutes)
		cfg.Obs.Gauge("fdw_burst_cost_usd", "batch", batch.Name).Set(res.CostUSD)
	}
	return res, nil
}

// WriteSeriesCSV writes the per-second instant-throughput series —
// the simulator's .csv output in the paper.
func WriteSeriesCSV(w io.Writer, r *Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"second", "instant_jpm"}); err != nil {
		return err
	}
	for i, v := range r.InstantSeries {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatFloat(v, 'f', 4, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report renders the detailed output block.
func (r *Result) Report(w io.Writer) error {
	kind := "bursting"
	if r.Control {
		kind = "control"
	}
	_, err := fmt.Fprintf(w, `batch %s (%s)
  runtime            %.2f h
  avg instant tput   %.2f JPM (sd %.2f, min %.2f, max %.2f)
  total throughput   %.2f JPM
  jobs               %d total, %d OSG, %d VDC (%.1f%% bursted)
  VDC usage          %.1f%% of completions, active %.1f%% of runtime, %.1f compute minutes
  simulated cost     $%.2f
`,
		r.Batch, kind, r.RuntimeSecs/3600,
		r.AvgInstantJPM, r.SDInstantJPM, r.MinInstantJPM, r.MaxInstantJPM,
		r.ThroughputJPM,
		r.TotalJob, r.CompletedOSG, r.CompletedVDC, r.BurstedPct,
		r.VDCUsagePct, r.VDCActivePct, r.VDCMinutes,
		r.CostUSD)
	return err
}
